#include "nn/conv_layer.hpp"

#include <cmath>

#include "blas/vector_ops.hpp"

namespace gpucnn::nn {

ConvLayer::ConvLayer(std::string name, ConvConfig geometry,
                     conv::Strategy strategy)
    : Layer(std::move(name)),
      geometry_(geometry),
      engine_(conv::make_engine(strategy)),
      weights_(geometry.filter_shape()),
      bias_(1, geometry.filters, 1, 1),
      grad_weights_(geometry.filter_shape()),
      grad_bias_(1, geometry.filters, 1, 1) {}

void ConvLayer::set_strategy(conv::Strategy strategy) {
  engine_ = conv::make_engine(strategy);
  prepacked_.reset();
}

void ConvLayer::freeze_for_inference() {
  // The pack format is engine-agnostic (the forward GEMM's A operand),
  // but only worth building when some forward could consume it: the
  // static engine, or — under autotuning — the GEMM engines the tuner
  // may pick.
  if (!engine_->supports_prepack() && !auto_tune_) return;
  // Already holding a live pack of this very buffer (packed here
  // earlier, or adopted from the weight owner): keep sharing it.
  if (prepacked_ != nullptr && !prepacked_->groups.empty() &&
      prepacked_->groups.front().valid() &&
      prepacked_->groups.front().origin().data() ==
          weights_.data().data()) {
    return;
  }
  prepacked_ = std::make_shared<const conv::PackedFilters>(
      conv::prepack_filters(geometry_, weights_));
}

void ConvLayer::adopt_prepack(const Layer& owner) {
  const auto* conv_owner = dynamic_cast<const ConvLayer*>(&owner);
  if (conv_owner != nullptr && conv_owner->prepacked_ != nullptr) {
    prepacked_ = conv_owner->prepacked_;
  }
}

ConvConfig ConvLayer::config_for_batch(std::size_t batch) const {
  ConvConfig cfg = geometry_;
  cfg.batch = batch;
  return cfg;
}

const conv::ConvEngine& ConvLayer::engine_for(const ConvConfig& cfg,
                                              tune::Pass pass) const {
  if (auto_tune_) {
    const conv::ConvEngine* tuned =
        tune::Autotuner::instance().choose(cfg, pass);
    if (tuned != nullptr) return *tuned;
  }
  return *engine_;
}

TensorShape ConvLayer::output_shape(const TensorShape& in) const {
  check(in.c == geometry_.channels, "conv: input channel mismatch");
  check(in.h == geometry_.input && in.w == geometry_.input,
        "conv: input spatial size mismatch");
  return config_for_batch(in.n).output_shape();
}

void ConvLayer::forward(const Tensor& in, Tensor& out) {
  const ConvConfig cfg = config_for_batch(in.shape().n);
  out.resize(cfg.output_shape());
  const conv::ConvEngine& engine = engine_for(cfg, tune::Pass::kForward);
  const bool ran_prepacked =
      !training_ && prepacked_ != nullptr &&
      engine.forward_prepacked(cfg, in, *prepacked_, weights_,
                               bias_.data(), fused_relu_, out);
  if (!ran_prepacked &&
      !engine.forward_fused(cfg, in, weights_, bias_.data(), fused_relu_,
                            out)) {
    // Unfused reference sequence; with fused_relu_ the trailing clamp is
    // exactly ActivationLayer(kRelu)'s forward, so both paths match the
    // fused epilogue bit for bit.
    engine.forward(cfg, in, weights_, out);
    blas::add_bias(out.data(), bias_.data(), cfg.batch, cfg.filters,
                   cfg.output() * cfg.output());
    if (fused_relu_) {
      for (float& v : out.data()) v = v > 0.0F ? v : 0.0F;
    }
  }
  if (fused_relu_ && training_) {
    // Save the ReLU mask for backward. Post-clamp out > 0 is equivalent
    // to pre-activation > 0 (the ActivationLayer backward test).
    const auto od = out.data();
    relu_mask_.resize(od.size());
    for (std::size_t i = 0; i < od.size(); ++i) {
      relu_mask_[i] = od[i] > 0.0F ? 1 : 0;
    }
  }
}

void ConvLayer::backward(const Tensor& in, const Tensor& grad_out,
                         Tensor& grad_in) {
  const ConvConfig cfg = config_for_batch(in.shape().n);
  const Tensor* grad = &grad_out;
  Tensor masked;
  if (fused_relu_) {
    // dL/d(pre-relu) = mask .* dL/d(out); everything below then matches
    // the unfused ConvLayer's backward on the masked gradient.
    check(relu_mask_.size() == grad_out.count(),
          "fused conv backward requires a preceding forward");
    masked.resize(grad_out.shape());
    const auto gd = grad_out.data();
    const auto md = masked.data();
    for (std::size_t i = 0; i < gd.size(); ++i) {
      md[i] = relu_mask_[i] != 0 ? gd[i] : 0.0F;
    }
    grad = &masked;
  }

  grad_in.resize(cfg.input_shape());
  engine_for(cfg, tune::Pass::kBackwardData)
      .backward_data(cfg, *grad, weights_, grad_in);

  Tensor gw(cfg.filter_shape());
  engine_for(cfg, tune::Pass::kBackwardFilter)
      .backward_filter(cfg, in, *grad, gw);
  blas::axpy(1.0F, gw.data(), grad_weights_.data());
  blas::reduce_bias_grad(grad->data(), grad_bias_.data(), cfg.batch,
                         cfg.filters, cfg.output() * cfg.output());
}

void ConvLayer::initialize(Rng& rng) {
  const double fan_in = static_cast<double>(
      geometry_.group_channels() * geometry_.kernel * geometry_.kernel);
  const float bound = static_cast<float>(std::sqrt(6.0 / fan_in));
  weights_.fill_uniform(rng, -bound, bound);
  bias_.fill(0.0F);
  prepacked_.reset();  // panels packed from the previous weights
}

}  // namespace gpucnn::nn
