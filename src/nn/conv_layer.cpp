#include "nn/conv_layer.hpp"

#include <cmath>

#include "blas/vector_ops.hpp"

namespace gpucnn::nn {

ConvLayer::ConvLayer(std::string name, ConvConfig geometry,
                     conv::Strategy strategy)
    : Layer(std::move(name)),
      geometry_(geometry),
      engine_(conv::make_engine(strategy)),
      weights_(geometry.filter_shape()),
      bias_(1, geometry.filters, 1, 1),
      grad_weights_(geometry.filter_shape()),
      grad_bias_(1, geometry.filters, 1, 1) {}

void ConvLayer::set_strategy(conv::Strategy strategy) {
  engine_ = conv::make_engine(strategy);
}

ConvConfig ConvLayer::config_for_batch(std::size_t batch) const {
  ConvConfig cfg = geometry_;
  cfg.batch = batch;
  return cfg;
}

TensorShape ConvLayer::output_shape(const TensorShape& in) const {
  check(in.c == geometry_.channels, "conv: input channel mismatch");
  check(in.h == geometry_.input && in.w == geometry_.input,
        "conv: input spatial size mismatch");
  return config_for_batch(in.n).output_shape();
}

void ConvLayer::forward(const Tensor& in, Tensor& out) {
  const ConvConfig cfg = config_for_batch(in.shape().n);
  out.resize(cfg.output_shape());
  engine_->forward(cfg, in, weights_, out);
  blas::add_bias(out.data(), bias_.data(), cfg.batch, cfg.filters,
                 cfg.output() * cfg.output());
}

void ConvLayer::backward(const Tensor& in, const Tensor& grad_out,
                         Tensor& grad_in) {
  const ConvConfig cfg = config_for_batch(in.shape().n);
  grad_in.resize(cfg.input_shape());
  engine_->backward_data(cfg, grad_out, weights_, grad_in);

  Tensor gw(cfg.filter_shape());
  engine_->backward_filter(cfg, in, grad_out, gw);
  blas::axpy(1.0F, gw.data(), grad_weights_.data());
  blas::reduce_bias_grad(grad_out.data(), grad_bias_.data(), cfg.batch,
                         cfg.filters, cfg.output() * cfg.output());
}

void ConvLayer::initialize(Rng& rng) {
  const double fan_in = static_cast<double>(
      geometry_.group_channels() * geometry_.kernel * geometry_.kernel);
  const float bound = static_cast<float>(std::sqrt(6.0 / fan_in));
  weights_.fill_uniform(rng, -bound, bound);
  bias_.fill(0.0F);
}

}  // namespace gpucnn::nn
