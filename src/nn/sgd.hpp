// Mini-batch SGD with momentum and weight decay — the "BP algorithm to
// adjust learnable kernels" of paper §II.A.
#pragma once

#include <vector>

#include "nn/network.hpp"

namespace gpucnn::nn {

struct SgdOptions {
  double learning_rate = 0.01;
  double momentum = 0.9;
  double weight_decay = 0.0;
};

class Sgd {
 public:
  Sgd(Network& net, SgdOptions options)
      : net_(&net), options_(options) {}

  /// Applies one update using the gradients currently accumulated in the
  /// network, then leaves the gradients untouched (caller zeroes them).
  void step();

  [[nodiscard]] const SgdOptions& options() const { return options_; }
  void set_learning_rate(double lr) { options_.learning_rate = lr; }

 private:
  Network* net_;
  SgdOptions options_;
  std::vector<Tensor> velocity_;  ///< lazily shaped to parameters
};

}  // namespace gpucnn::nn
