// Deterministic synthetic datasets.
//
// The paper's experiments are shape-driven (the datasets only set tensor
// sizes), so the reproduction generates class-separable synthetic images
// instead of shipping MNIST/CIFAR/ImageNet: each class is a distinct
// spatial template plus noise, which small CNNs can learn in a few
// hundred SGD steps — enough to demonstrate end-to-end training on every
// engine.
#pragma once

#include <cstddef>
#include <vector>

#include "core/rng.hpp"
#include "core/tensor.hpp"

namespace gpucnn::nn {

struct Batch {
  Tensor images;
  std::vector<std::size_t> labels;
};

/// Generator of class-templated images: label c's template is a smooth
/// 2-D sinusoid pattern unique to c; samples add Gaussian noise.
class SyntheticDataset {
 public:
  SyntheticDataset(std::size_t classes, std::size_t channels,
                   std::size_t image_size, double noise = 0.3,
                   std::uint64_t seed = 7);

  [[nodiscard]] std::size_t classes() const { return classes_; }

  /// Draws a batch of `n` labelled samples.
  [[nodiscard]] Batch sample(std::size_t n);

  /// The noiseless template of one class (tests, visualisation).
  [[nodiscard]] const Tensor& class_template(std::size_t label) const;

 private:
  std::size_t classes_;
  std::size_t channels_;
  std::size_t image_size_;
  double noise_;
  Rng rng_;
  std::vector<Tensor> templates_;
};

}  // namespace gpucnn::nn
