#include "nn/softmax.hpp"

#include <algorithm>
#include <cmath>

namespace gpucnn::nn {
namespace {

std::size_t row_features(const TensorShape& s) { return s.c * s.h * s.w; }

}  // namespace

void SoftmaxLayer::forward(const Tensor& in, Tensor& out) {
  const auto& s = in.shape();
  out.resize(s);
  const std::size_t features = row_features(s);
  check(features >= 1, "softmax needs at least one feature");
  for (std::size_t n = 0; n < s.n; ++n) {
    const float* src = in.raw() + n * features;
    float* dst = out.raw() + n * features;
    const float max_v = *std::max_element(src, src + features);
    double sum = 0.0;
    for (std::size_t i = 0; i < features; ++i) {
      dst[i] = std::exp(src[i] - max_v);
      sum += dst[i];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (std::size_t i = 0; i < features; ++i) dst[i] *= inv;
  }
  last_output_.resize(s);
  std::copy(out.data().begin(), out.data().end(),
            last_output_.data().begin());
}

void SoftmaxLayer::backward(const Tensor& in, const Tensor& grad_out,
                            Tensor& grad_in) {
  const auto& s = in.shape();
  check(grad_out.shape() == s, "softmax: grad_out shape mismatch");
  check(last_output_.shape() == s, "softmax: backward before forward");
  grad_in.resize(s);
  const std::size_t features = row_features(s);
  // dL/dx_i = y_i * (g_i - sum_j g_j y_j)
  for (std::size_t n = 0; n < s.n; ++n) {
    const float* y = last_output_.raw() + n * features;
    const float* g = grad_out.raw() + n * features;
    float* gi = grad_in.raw() + n * features;
    double dot = 0.0;
    for (std::size_t i = 0; i < features; ++i) {
      dot += static_cast<double>(g[i]) * y[i];
    }
    for (std::size_t i = 0; i < features; ++i) {
      gi[i] = y[i] * (g[i] - static_cast<float>(dot));
    }
  }
}

double cross_entropy_loss(const Tensor& probabilities,
                          std::span<const std::size_t> labels) {
  const auto& s = probabilities.shape();
  check(labels.size() == s.n, "one label per image required");
  const std::size_t features = row_features(s);
  double loss = 0.0;
  for (std::size_t n = 0; n < s.n; ++n) {
    check(labels[n] < features, "label out of range");
    const float p = probabilities.raw()[n * features + labels[n]];
    loss -= std::log(std::max(p, 1e-12F));
  }
  return loss / static_cast<double>(s.n);
}

void cross_entropy_grad(const Tensor& probabilities,
                        std::span<const std::size_t> labels,
                        Tensor& grad_logits) {
  const auto& s = probabilities.shape();
  check(labels.size() == s.n, "one label per image required");
  grad_logits.resize(s);
  const std::size_t features = row_features(s);
  const float inv_batch = 1.0F / static_cast<float>(s.n);
  for (std::size_t n = 0; n < s.n; ++n) {
    check(labels[n] < features, "label out of range");
    const float* p = probabilities.raw() + n * features;
    float* g = grad_logits.raw() + n * features;
    for (std::size_t i = 0; i < features; ++i) {
      g[i] = (p[i] - (i == labels[n] ? 1.0F : 0.0F)) * inv_batch;
    }
  }
}

void cross_entropy_prob_grad(const Tensor& probabilities,
                             std::span<const std::size_t> labels,
                             Tensor& grad_probs) {
  const auto& s = probabilities.shape();
  check(labels.size() == s.n, "one label per image required");
  grad_probs.resize(s);
  grad_probs.fill(0.0F);
  const std::size_t features = row_features(s);
  const float inv_batch = 1.0F / static_cast<float>(s.n);
  for (std::size_t n = 0; n < s.n; ++n) {
    check(labels[n] < features, "label out of range");
    const float p = std::max(
        probabilities.raw()[n * features + labels[n]], 1e-12F);
    grad_probs.raw()[n * features + labels[n]] = -inv_batch / p;
  }
}

double accuracy(const Tensor& probabilities,
                std::span<const std::size_t> labels) {
  const auto& s = probabilities.shape();
  check(labels.size() == s.n, "one label per image required");
  const std::size_t features = row_features(s);
  std::size_t correct = 0;
  for (std::size_t n = 0; n < s.n; ++n) {
    const float* p = probabilities.raw() + n * features;
    const auto best = static_cast<std::size_t>(
        std::max_element(p, p + features) - p);
    if (best == labels[n]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(s.n);
}

}  // namespace gpucnn::nn
