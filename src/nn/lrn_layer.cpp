#include "nn/lrn_layer.hpp"

#include <cmath>

#include "core/thread_pool.hpp"

namespace gpucnn::nn {

void LrnLayer::forward(const Tensor& in, Tensor& out) {
  const auto& s = in.shape();
  out.resize(s);
  scale_.resize(s);
  const std::size_t half = size_ / 2;
  const double norm = alpha_ / static_cast<double>(size_);

  parallel_for(0, s.n, [&](std::size_t n) {
    for (std::size_t y = 0; y < s.h; ++y) {
      for (std::size_t x = 0; x < s.w; ++x) {
        for (std::size_t c = 0; c < s.c; ++c) {
          const std::size_t lo = c >= half ? c - half : 0;
          const std::size_t hi = std::min(c + half, s.c - 1);
          double sum_sq = 0.0;
          for (std::size_t cc = lo; cc <= hi; ++cc) {
            const double v = in(n, cc, y, x);
            sum_sq += v * v;
          }
          const double b = k_ + norm * sum_sq;
          scale_(n, c, y, x) = static_cast<float>(b);
          out(n, c, y, x) =
              static_cast<float>(in(n, c, y, x) * std::pow(b, -beta_));
        }
      }
    }
  });
}

void LrnLayer::backward(const Tensor& in, const Tensor& grad_out,
                        Tensor& grad_in) {
  const auto& s = in.shape();
  check(grad_out.shape() == s, "lrn: grad_out shape mismatch");
  check(scale_.shape() == s, "lrn: backward before forward");
  grad_in.resize(s);
  const std::size_t half = size_ / 2;
  const double norm = alpha_ / static_cast<double>(size_);

  parallel_for(0, s.n, [&](std::size_t n) {
    for (std::size_t y = 0; y < s.h; ++y) {
      for (std::size_t x = 0; x < s.w; ++x) {
        // gin(c'') = gout(c'') * b(c'')^-beta
        //          - 2*beta*norm*in(c'') * sum_{c: |c-c''|<=half}
        //            gout(c)*in(c)*b(c)^(-beta-1)
        for (std::size_t ct = 0; ct < s.c; ++ct) {
          const std::size_t lo = ct >= half ? ct - half : 0;
          const std::size_t hi = std::min(ct + half, s.c - 1);
          double cross = 0.0;
          for (std::size_t c = lo; c <= hi; ++c) {
            cross += static_cast<double>(grad_out(n, c, y, x)) *
                     in(n, c, y, x) *
                     std::pow(static_cast<double>(scale_(n, c, y, x)),
                              -beta_ - 1.0);
          }
          const double direct =
              static_cast<double>(grad_out(n, ct, y, x)) *
              std::pow(static_cast<double>(scale_(n, ct, y, x)), -beta_);
          grad_in(n, ct, y, x) = static_cast<float>(
              direct - 2.0 * beta_ * norm * in(n, ct, y, x) * cross);
        }
      }
    }
  });
}

}  // namespace gpucnn::nn
