// Max / average pooling (paper §II.A: "pooling layers ... reduce the
// spatial size of feature map").
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace gpucnn::nn {

enum class PoolMode { kMax, kAverage };

class PoolLayer final : public Layer {
 public:
  PoolLayer(std::string name, std::size_t window, std::size_t stride,
            PoolMode mode = PoolMode::kMax, std::size_t pad = 0);

  [[nodiscard]] std::string_view type() const override { return "pool"; }
  [[nodiscard]] TensorShape output_shape(const TensorShape& in)
      const override;

  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& grad_out,
                Tensor& grad_in) override;

  [[nodiscard]] PoolMode mode() const { return mode_; }

 private:
  std::size_t window_;
  std::size_t stride_;
  std::size_t pad_;
  PoolMode mode_;
  std::vector<std::uint32_t> argmax_;  ///< winner index per output (max)
};

}  // namespace gpucnn::nn
