// GoogLeNet inception module as a composite layer: four parallel
// branches over the same input, concatenated along channels. Packaging
// the branch/join inside one Layer keeps the Network container
// sequential while making GoogLeNet — the paper's Fig. 2 concat model —
// fully executable.
//
// Branches (Szegedy et al.):
//   1x1 conv          -> relu
//   1x1 reduce -> relu -> 3x3 conv (pad 1) -> relu
//   1x1 reduce -> relu -> 5x5 conv (pad 2) -> relu
//   3x3 max pool (stride 1, pad 1) -> 1x1 proj -> relu
#pragma once

#include <array>
#include <memory>
#include <span>
#include <vector>

#include "nn/layer.hpp"

namespace gpucnn::nn {

/// Filter counts of one inception module.
struct InceptionParams {
  const char* name;
  std::size_t c1;          ///< 1x1 branch
  std::size_t c3_reduce;   ///< 3x3 branch reducer
  std::size_t c3;          ///< 3x3 branch
  std::size_t c5_reduce;   ///< 5x5 branch reducer
  std::size_t c5;          ///< 5x5 branch
  std::size_t pool_proj;   ///< pool branch projection

  [[nodiscard]] std::size_t output_channels() const {
    return c1 + c3 + c5 + pool_proj;
  }
};

/// The nine GoogLeNet modules (3a..5b), in network order.
[[nodiscard]] std::span<const InceptionParams> googlenet_inceptions();

class InceptionLayer final : public Layer {
 public:
  /// `in_channels`/`spatial` fix the expected input geometry.
  InceptionLayer(std::string name, std::size_t in_channels,
                 std::size_t spatial, const InceptionParams& params);
  ~InceptionLayer() override;

  [[nodiscard]] std::string_view type() const override {
    return "inception";
  }
  [[nodiscard]] TensorShape output_shape(const TensorShape& in)
      const override;

  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& grad_out,
                Tensor& grad_in) override;

  [[nodiscard]] std::vector<Tensor*> parameters() override;
  [[nodiscard]] std::vector<Tensor*> gradients() override;
  void initialize(Rng& rng) override;
  void set_training(bool training) override;
  void set_auto_tune(bool on) override;
  /// Fuses the conv -> ReLU pairs inside every branch.
  std::size_t fuse_relu_pairs() override;

  [[nodiscard]] const InceptionParams& params() const { return params_; }

 private:
  struct Branch;

  std::size_t in_channels_;
  std::size_t spatial_;
  InceptionParams params_;
  std::array<std::unique_ptr<Branch>, 4> branches_;
};

}  // namespace gpucnn::nn
