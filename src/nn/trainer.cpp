#include "nn/trainer.hpp"

#include "nn/softmax.hpp"

namespace gpucnn::nn {

double TrainHistory::tail_loss(std::size_t window) const {
  if (steps.empty()) return 0.0;
  const std::size_t n = std::min(window, steps.size());
  double sum = 0.0;
  for (std::size_t i = steps.size() - n; i < steps.size(); ++i) {
    sum += steps[i].loss;
  }
  return sum / static_cast<double>(n);
}

TrainHistory fit(Network& net, SyntheticDataset& data,
                 const FitOptions& options) {
  check(options.steps > 0 && options.batch_size > 0,
        "fit needs positive steps and batch size");
  net.set_training(true);
  Sgd sgd(net, options.sgd);
  TrainHistory history;
  history.steps.reserve(options.steps);
  Tensor grad;
  for (std::size_t step = 0; step < options.steps; ++step) {
    const auto batch = data.sample(options.batch_size);
    net.zero_grad();
    const Tensor& probs = net.forward(batch.images);
    TrainStep record;
    record.loss = cross_entropy_loss(probs, batch.labels);
    record.accuracy = accuracy(probs, batch.labels);
    cross_entropy_prob_grad(probs, batch.labels, grad);
    net.backward(grad);
    sgd.step();
    history.steps.push_back(record);
  }
  return history;
}

TrainStep evaluate(Network& net, SyntheticDataset& data,
                   std::size_t batch_size) {
  net.set_training(false);
  const auto batch = data.sample(batch_size);
  const Tensor& probs = net.forward(batch.images);
  TrainStep result;
  result.loss = cross_entropy_loss(probs, batch.labels);
  result.accuracy = accuracy(probs, batch.labels);
  net.set_training(true);
  return result;
}

}  // namespace gpucnn::nn
