// Adam optimiser (Kingma & Ba) — the optimiser that displaced plain SGD
// in the frameworks the paper benchmarks; provided alongside Sgd so
// training examples can compare.
#pragma once

#include <vector>

#include "nn/network.hpp"

namespace gpucnn::nn {

struct AdamOptions {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;
};

class Adam {
 public:
  Adam(Network& net, AdamOptions options)
      : net_(&net), options_(options) {}

  /// One update from the gradients accumulated in the network.
  void step();

  [[nodiscard]] const AdamOptions& options() const { return options_; }
  [[nodiscard]] std::size_t steps_taken() const { return t_; }

 private:
  Network* net_;
  AdamOptions options_;
  std::vector<Tensor> m_;  ///< first-moment estimates
  std::vector<Tensor> v_;  ///< second-moment estimates
  std::size_t t_ = 0;
};

}  // namespace gpucnn::nn
