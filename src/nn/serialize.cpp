#include "nn/serialize.hpp"

#include <array>
#include <cstdint>
#include <fstream>

#include "core/error.hpp"

namespace gpucnn::nn {
namespace {

constexpr std::array<char, 4> kMagic{'G', 'C', 'N', 'N'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  check(is.good(), "checkpoint truncated");
  return value;
}

}  // namespace

void save_parameters(Network& net, std::ostream& os) {
  os.write(kMagic.data(), kMagic.size());
  write_pod(os, kVersion);
  const auto params = net.parameters();
  write_pod(os, static_cast<std::uint64_t>(params.size()));
  for (const Tensor* p : params) {
    const auto& s = p->shape();
    write_pod(os, static_cast<std::uint64_t>(s.n));
    write_pod(os, static_cast<std::uint64_t>(s.c));
    write_pod(os, static_cast<std::uint64_t>(s.h));
    write_pod(os, static_cast<std::uint64_t>(s.w));
    os.write(reinterpret_cast<const char*>(p->raw()),
             static_cast<std::streamsize>(p->count() * sizeof(float)));
  }
  check(os.good(), "checkpoint write failed");
}

void save_parameters(Network& net, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  check(os.is_open(), "cannot open checkpoint for writing: " + path);
  save_parameters(net, os);
}

void load_parameters(Network& net, std::istream& is) {
  std::array<char, 4> magic{};
  is.read(magic.data(), magic.size());
  check(is.good() && magic == kMagic, "not a gpucnn checkpoint");
  const auto version = read_pod<std::uint32_t>(is);
  check(version == kVersion, "unsupported checkpoint version");
  const auto params = net.parameters();
  const auto count = read_pod<std::uint64_t>(is);
  check(count == params.size(),
        "checkpoint parameter-tensor count mismatch");
  for (Tensor* p : params) {
    const TensorShape shape{
        static_cast<std::size_t>(read_pod<std::uint64_t>(is)),
        static_cast<std::size_t>(read_pod<std::uint64_t>(is)),
        static_cast<std::size_t>(read_pod<std::uint64_t>(is)),
        static_cast<std::size_t>(read_pod<std::uint64_t>(is))};
    check(shape == p->shape(),
          "checkpoint tensor shape mismatch (different architecture?)");
    is.read(reinterpret_cast<char*>(p->raw()),
            static_cast<std::streamsize>(p->count() * sizeof(float)));
    check(is.good(), "checkpoint truncated");
  }
}

void load_parameters(Network& net, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  check(is.is_open(), "cannot open checkpoint for reading: " + path);
  load_parameters(net, is);
}

}  // namespace gpucnn::nn
