#include "nn/pool_layer.hpp"

#include <limits>

#include "core/thread_pool.hpp"

namespace gpucnn::nn {

PoolLayer::PoolLayer(std::string name, std::size_t window,
                     std::size_t stride, PoolMode mode, std::size_t pad)
    : Layer(std::move(name)),
      window_(window),
      stride_(stride),
      pad_(pad),
      mode_(mode) {
  check(window_ >= 1 && stride_ >= 1, "pool window/stride must be >= 1");
  check(pad_ < window_, "pool padding must be smaller than the window");
}

TensorShape PoolLayer::output_shape(const TensorShape& in) const {
  check(in.h + 2 * pad_ >= window_ && in.w + 2 * pad_ >= window_,
        "pool window larger than padded input");
  // Caffe-style ceil mode so stride-2 pooling of odd maps keeps the last
  // column (e.g. 13 -> 7 with window 3 stride 2).
  const auto out_dim = [&](std::size_t d) {
    return (d + 2 * pad_ - window_ + stride_ - 1) / stride_ + 1;
  };
  return {in.n, in.c, out_dim(in.h), out_dim(in.w)};
}

void PoolLayer::forward(const Tensor& in, Tensor& out) {
  const auto& is = in.shape();
  const TensorShape os = output_shape(is);
  out.resize(os);
  if (mode_ == PoolMode::kMax) argmax_.assign(os.count(), 0);

  parallel_for(0, is.n * is.c, [&](std::size_t job) {
    const std::size_t n = job / is.c;
    const std::size_t c = job % is.c;
    const float* src = in.plane(n, c);
    float* dst = out.plane(n, c);
    for (std::size_t oy = 0; oy < os.h; ++oy) {
      for (std::size_t ox = 0; ox < os.w; ++ox) {
        float best = -std::numeric_limits<float>::infinity();
        std::uint32_t best_idx = 0;
        double sum = 0.0;
        std::size_t count = 0;
        for (std::size_t wy = 0; wy < window_; ++wy) {
          const std::size_t iy = oy * stride_ + wy;
          if (iy < pad_ || iy >= is.h + pad_) continue;
          for (std::size_t wx = 0; wx < window_; ++wx) {
            const std::size_t ix = ox * stride_ + wx;
            if (ix < pad_ || ix >= is.w + pad_) continue;
            const std::size_t idx = (iy - pad_) * is.w + (ix - pad_);
            const float v = src[idx];
            if (v > best) {
              best = v;
              best_idx = static_cast<std::uint32_t>(idx);
            }
            sum += v;
            ++count;
          }
        }
        const std::size_t out_idx = oy * os.w + ox;
        if (mode_ == PoolMode::kMax) {
          dst[out_idx] = best;
          argmax_[(n * is.c + c) * os.spatial() + out_idx] = best_idx;
        } else {
          dst[out_idx] =
              count > 0 ? static_cast<float>(sum / static_cast<double>(count))
                        : 0.0F;
        }
      }
    }
  });
}

void PoolLayer::backward(const Tensor& in, const Tensor& grad_out,
                         Tensor& grad_in) {
  const auto& is = in.shape();
  const TensorShape os = output_shape(is);
  check(grad_out.shape() == os, "pool: grad_out shape mismatch");
  grad_in.resize(is);

  parallel_for(0, is.n * is.c, [&](std::size_t job) {
    const std::size_t n = job / is.c;
    const std::size_t c = job % is.c;
    const float* gout = grad_out.plane(n, c);
    float* gin = grad_in.plane(n, c);
    for (std::size_t oy = 0; oy < os.h; ++oy) {
      for (std::size_t ox = 0; ox < os.w; ++ox) {
        const std::size_t out_idx = oy * os.w + ox;
        const float g = gout[out_idx];
        if (mode_ == PoolMode::kMax) {
          gin[argmax_[(n * is.c + c) * os.spatial() + out_idx]] += g;
          continue;
        }
        // Average: spread over the window's in-bounds taps.
        std::size_t count = 0;
        for (std::size_t wy = 0; wy < window_; ++wy) {
          const std::size_t iy = oy * stride_ + wy;
          if (iy < pad_ || iy >= is.h + pad_) continue;
          for (std::size_t wx = 0; wx < window_; ++wx) {
            const std::size_t ix = ox * stride_ + wx;
            if (ix < pad_ || ix >= is.w + pad_) continue;
            ++count;
          }
        }
        if (count == 0) continue;
        const float share = g / static_cast<float>(count);
        for (std::size_t wy = 0; wy < window_; ++wy) {
          const std::size_t iy = oy * stride_ + wy;
          if (iy < pad_ || iy >= is.h + pad_) continue;
          for (std::size_t wx = 0; wx < window_; ++wx) {
            const std::size_t ix = ox * stride_ + wx;
            if (ix < pad_ || ix >= is.w + pad_) continue;
            gin[(iy - pad_) * is.w + (ix - pad_)] += share;
          }
        }
      }
    }
  });
}

}  // namespace gpucnn::nn
