#include "nn/synthetic_data.hpp"

#include <cmath>
#include <numbers>

#include "core/error.hpp"

namespace gpucnn::nn {

SyntheticDataset::SyntheticDataset(std::size_t classes,
                                   std::size_t channels,
                                   std::size_t image_size, double noise,
                                   std::uint64_t seed)
    : classes_(classes),
      channels_(channels),
      image_size_(image_size),
      noise_(noise),
      rng_(seed) {
  check(classes >= 2, "need at least two classes");
  templates_.reserve(classes);
  for (std::size_t label = 0; label < classes; ++label) {
    Tensor t(1, channels, image_size, image_size);
    // Distinct orientation + frequency per class.
    const double angle = std::numbers::pi *
                         static_cast<double>(label) /
                         static_cast<double>(classes);
    const double freq =
        2.0 * std::numbers::pi *
        (1.0 + static_cast<double>(label % 4)) /
        static_cast<double>(image_size);
    const double cos_a = std::cos(angle);
    const double sin_a = std::sin(angle);
    for (std::size_t c = 0; c < channels; ++c) {
      for (std::size_t y = 0; y < image_size; ++y) {
        for (std::size_t x = 0; x < image_size; ++x) {
          const double u = cos_a * static_cast<double>(x) +
                           sin_a * static_cast<double>(y);
          const double phase =
              static_cast<double>(c) * 0.5 +
              static_cast<double>(label);
          t(0, c, y, x) =
              static_cast<float>(std::sin(freq * u + phase));
        }
      }
    }
    templates_.push_back(std::move(t));
  }
}

const Tensor& SyntheticDataset::class_template(std::size_t label) const {
  check(label < classes_, "label out of range");
  return templates_[label];
}

Batch SyntheticDataset::sample(std::size_t n) {
  Batch batch;
  batch.images.resize({n, channels_, image_size_, image_size_});
  batch.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t label = rng_.uniform_int(classes_);
    batch.labels[i] = label;
    const Tensor& tpl = templates_[label];
    for (std::size_t c = 0; c < channels_; ++c) {
      const float* src = tpl.plane(0, c);
      float* dst = batch.images.plane(i, c);
      for (std::size_t p = 0; p < image_size_ * image_size_; ++p) {
        dst[p] = src[p] + static_cast<float>(rng_.normal(0.0, noise_));
      }
    }
  }
  return batch;
}

}  // namespace gpucnn::nn
