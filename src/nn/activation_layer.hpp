// Element-wise activations: ReLU (the hotspot-analysis layer type of
// Fig. 2), plus the classic Sigmoid and Tanh the paper's background
// section mentions as direct-convolution activations.
#pragma once

#include "nn/layer.hpp"

namespace gpucnn::nn {

enum class Activation { kRelu, kSigmoid, kTanh };

[[nodiscard]] std::string_view to_string(Activation a);

class ActivationLayer final : public Layer {
 public:
  ActivationLayer(std::string name, Activation fn = Activation::kRelu)
      : Layer(std::move(name)), fn_(fn) {}

  [[nodiscard]] std::string_view type() const override { return "relu"; }
  [[nodiscard]] Activation function() const { return fn_; }

  [[nodiscard]] TensorShape output_shape(const TensorShape& in)
      const override {
    return in;
  }

  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& grad_out,
                Tensor& grad_in) override;

 private:
  Activation fn_;
  Tensor last_output_;  ///< sigmoid/tanh derivatives reuse the output
};

}  // namespace gpucnn::nn
