// Local response normalisation across channels (AlexNet's LRN).
// out(c) = in(c) * (k + alpha/size * sum_{c' in window} in(c')^2)^(-beta)
#pragma once

#include "nn/layer.hpp"

namespace gpucnn::nn {

class LrnLayer final : public Layer {
 public:
  LrnLayer(std::string name, std::size_t size = 5, double alpha = 1e-4,
           double beta = 0.75, double k = 2.0)
      : Layer(std::move(name)), size_(size), alpha_(alpha), beta_(beta),
        k_(k) {
    check(size_ >= 1 && size_ % 2 == 1, "LRN window must be odd");
  }

  [[nodiscard]] std::string_view type() const override { return "lrn"; }
  [[nodiscard]] TensorShape output_shape(const TensorShape& in)
      const override {
    return in;
  }

  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& grad_out,
                Tensor& grad_in) override;

 private:
  std::size_t size_;
  double alpha_;
  double beta_;
  double k_;
  Tensor scale_;  ///< b = k + alpha/size * window sum of squares
};

}  // namespace gpucnn::nn
