// Softmax + cross-entropy loss head: the "probability vector over ...
// different classes" of the paper's LeNet-5 walkthrough (§II.A).
#pragma once

#include <span>

#include "nn/layer.hpp"

namespace gpucnn::nn {

/// Softmax as a layer (row-wise over flattened features).
class SoftmaxLayer final : public Layer {
 public:
  explicit SoftmaxLayer(std::string name) : Layer(std::move(name)) {}

  [[nodiscard]] std::string_view type() const override { return "softmax"; }
  [[nodiscard]] TensorShape output_shape(const TensorShape& in)
      const override {
    return in;
  }

  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& grad_out,
                Tensor& grad_in) override;

 private:
  Tensor last_output_;
};

/// Mean cross-entropy of softmax probabilities against integer labels.
[[nodiscard]] double cross_entropy_loss(const Tensor& probabilities,
                                        std::span<const std::size_t> labels);

/// dL/d(logits) of softmax + mean cross-entropy: (p - onehot) / batch.
/// Use when the network does NOT end in a SoftmaxLayer (raw logits out).
void cross_entropy_grad(const Tensor& probabilities,
                        std::span<const std::size_t> labels,
                        Tensor& grad_logits);

/// dL/d(probabilities) of mean cross-entropy: -1[i==label]/(p_label * N).
/// Use when the network DOES end in a SoftmaxLayer: feeding this through
/// the softmax backward pass reproduces (p - onehot)/N at the logits.
void cross_entropy_prob_grad(const Tensor& probabilities,
                             std::span<const std::size_t> labels,
                             Tensor& grad_probs);

/// Fraction of rows whose argmax equals the label.
[[nodiscard]] double accuracy(const Tensor& probabilities,
                              std::span<const std::size_t> labels);

}  // namespace gpucnn::nn
