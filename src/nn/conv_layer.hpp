// Convolutional layer with a pluggable convolution engine — the paper's
// point that the same layer can be served by direct, unrolling or FFT
// strategies, with identical results but different cost profiles.
//
// Two executor upgrades ride on top of the pluggable engine:
//   * fused ReLU: when set_fused_relu(true), the layer computes
//     relu(conv + bias) in one pass — through the engine's fused
//     epilogue when it has one (GEMM engines apply bias + clamp in the
//     SGEMM write-back tile), with a bit-identical separate-pass
//     fallback otherwise. Backward masks the incoming gradient with the
//     ReLU mask saved in forward, making the fused layer's gradients
//     bit-for-bit equal to ConvLayer followed by ActivationLayer(kRelu).
//   * autotuning: when set_auto_tune(true), every pass asks the
//     process-wide tune::Autotuner for the empirically fastest engine
//     for this (config, pass) key instead of the static strategy.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "conv/conv_engine.hpp"
#include "nn/layer.hpp"
#include "tune/autotuner.hpp"

namespace gpucnn::nn {

class ConvLayer final : public Layer {
 public:
  /// `geometry.batch` is ignored: the layer adapts to the input batch.
  ConvLayer(std::string name, ConvConfig geometry,
            conv::Strategy strategy = conv::Strategy::kUnrolling);

  [[nodiscard]] std::string_view type() const override { return "conv"; }
  [[nodiscard]] TensorShape output_shape(const TensorShape& in)
      const override;

  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& grad_out,
                Tensor& grad_in) override;

  [[nodiscard]] std::vector<Tensor*> parameters() override {
    return {&weights_, &bias_};
  }
  [[nodiscard]] std::vector<Tensor*> gradients() override {
    return {&grad_weights_, &grad_bias_};
  }

  /// Kaiming-uniform initialisation.
  void initialize(Rng& rng) override;

  [[nodiscard]] const ConvConfig& geometry() const { return geometry_; }
  [[nodiscard]] const conv::ConvEngine& engine() const { return *engine_; }

  /// Swaps the convolution strategy (weights are untouched; any packed
  /// filter cache is dropped — the new engine may not consume it).
  void set_strategy(conv::Strategy strategy);

  /// Packs the filters once for the GEMM engines; every subsequent
  /// inference forward consumes the cached panels (zero per-call weight
  /// packing). Skipped when neither the static engine nor the autotuner
  /// could pick a prepack-capable engine.
  void freeze_for_inference() override;

  /// Returning to training drops the packed cache: the optimizer is
  /// about to rewrite the weights the panels were built from.
  void set_training(bool training) override {
    if (training) prepacked_.reset();
    Layer::set_training(training);
  }

  void adopt_prepack(const Layer& owner) override;

  /// The packed filter cache (nullptr until freeze_for_inference);
  /// exposed so tests can assert sharing and invalidation.
  [[nodiscard]] std::shared_ptr<const conv::PackedFilters> prepacked()
      const {
    return prepacked_;
  }

  /// Folds a downstream ReLU into this layer (see the header comment).
  void set_fused_relu(bool fused) { fused_relu_ = fused; }
  [[nodiscard]] bool fused_relu() const { return fused_relu_; }

  void set_auto_tune(bool on) override { auto_tune_ = on; }
  [[nodiscard]] bool auto_tune() const { return auto_tune_; }

  /// The geometry with the batch substituted — the autotuner cache key
  /// for this layer at a given batch size.
  [[nodiscard]] ConvConfig config_for_batch(std::size_t batch) const;

 private:
  /// Engine for one pass: the autotuner's pick when tuning is on (and
  /// the tuner is not in off mode), the static engine otherwise.
  [[nodiscard]] const conv::ConvEngine& engine_for(const ConvConfig& cfg,
                                                   tune::Pass pass) const;

  ConvConfig geometry_;
  std::unique_ptr<conv::ConvEngine> engine_;
  Tensor weights_;
  Tensor bias_;
  Tensor grad_weights_;
  Tensor grad_bias_;
  bool fused_relu_ = false;
  bool auto_tune_ = false;
  std::vector<std::uint8_t> relu_mask_;  ///< out > 0, saved by forward
  /// Filters packed once by freeze_for_inference (or adopted from the
  /// weight owner); shared, never mutated after construction.
  std::shared_ptr<const conv::PackedFilters> prepacked_;
};

}  // namespace gpucnn::nn
