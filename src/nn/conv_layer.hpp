// Convolutional layer with a pluggable convolution engine — the paper's
// point that the same layer can be served by direct, unrolling or FFT
// strategies, with identical results but different cost profiles.
#pragma once

#include <memory>

#include "conv/conv_engine.hpp"
#include "nn/layer.hpp"

namespace gpucnn::nn {

class ConvLayer final : public Layer {
 public:
  /// `geometry.batch` is ignored: the layer adapts to the input batch.
  ConvLayer(std::string name, ConvConfig geometry,
            conv::Strategy strategy = conv::Strategy::kUnrolling);

  [[nodiscard]] std::string_view type() const override { return "conv"; }
  [[nodiscard]] TensorShape output_shape(const TensorShape& in)
      const override;

  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& grad_out,
                Tensor& grad_in) override;

  [[nodiscard]] std::vector<Tensor*> parameters() override {
    return {&weights_, &bias_};
  }
  [[nodiscard]] std::vector<Tensor*> gradients() override {
    return {&grad_weights_, &grad_bias_};
  }

  /// Kaiming-uniform initialisation.
  void initialize(Rng& rng) override;

  [[nodiscard]] const ConvConfig& geometry() const { return geometry_; }
  [[nodiscard]] const conv::ConvEngine& engine() const { return *engine_; }

  /// Swaps the convolution strategy (weights are untouched).
  void set_strategy(conv::Strategy strategy);

 private:
  [[nodiscard]] ConvConfig config_for_batch(std::size_t batch) const;

  ConvConfig geometry_;
  std::unique_ptr<conv::ConvEngine> engine_;
  Tensor weights_;
  Tensor bias_;
  Tensor grad_weights_;
  Tensor grad_bias_;
};

}  // namespace gpucnn::nn
