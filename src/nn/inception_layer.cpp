#include "nn/inception_layer.hpp"

#include "core/thread_pool.hpp"
#include "nn/activation_layer.hpp"
#include "nn/conv_layer.hpp"
#include "nn/pool_layer.hpp"

namespace gpucnn::nn {

std::span<const InceptionParams> googlenet_inceptions() {
  static constexpr std::array<InceptionParams, 9> kModules{{
      {"inception_3a", 64, 96, 128, 16, 32, 32},
      {"inception_3b", 128, 128, 192, 32, 96, 64},
      {"inception_4a", 192, 96, 208, 16, 48, 64},
      {"inception_4b", 160, 112, 224, 24, 64, 64},
      {"inception_4c", 128, 128, 256, 24, 64, 64},
      {"inception_4d", 112, 144, 288, 32, 64, 64},
      {"inception_4e", 256, 160, 320, 32, 128, 128},
      {"inception_5a", 256, 160, 320, 32, 128, 128},
      {"inception_5b", 384, 192, 384, 48, 128, 128},
  }};
  return kModules;
}

// One branch: a small sequential stack with cached activations.
struct InceptionLayer::Branch {
  std::vector<std::unique_ptr<Layer>> layers;
  std::vector<Tensor> activations;
  std::size_t out_channels = 0;

  void forward(const Tensor& in) {
    activations.resize(layers.size());
    const Tensor* current = &in;
    for (std::size_t i = 0; i < layers.size(); ++i) {
      layers[i]->forward(*current, activations[i]);
      current = &activations[i];
    }
  }

  /// Backpropagates `grad` (dL/d branch output) to dL/d branch input.
  void backward(const Tensor& in, Tensor grad, Tensor& grad_in) {
    Tensor scratch;
    for (std::size_t i = layers.size(); i-- > 0;) {
      const Tensor& layer_input = i == 0 ? in : activations[i - 1];
      layers[i]->backward(layer_input, grad, scratch);
      std::swap(grad, scratch);
    }
    grad_in = std::move(grad);
  }

  [[nodiscard]] const Tensor& output() const { return activations.back(); }
};

InceptionLayer::InceptionLayer(std::string name, std::size_t in_channels,
                               std::size_t spatial,
                               const InceptionParams& params)
    : Layer(std::move(name)),
      in_channels_(in_channels),
      spatial_(spatial),
      params_(params) {
  const auto conv = [&](std::size_t channels, std::size_t filters,
                        std::size_t kernel, std::size_t pad,
                        const char* suffix) {
    ConvConfig cfg{.batch = 1, .input = spatial_, .channels = channels,
                   .filters = filters, .kernel = kernel, .stride = 1,
                   .pad = pad};
    return std::make_unique<ConvLayer>(name_ + suffix, cfg);
  };
  const auto relu = [&](const char* suffix) {
    return std::make_unique<ActivationLayer>(name_ + suffix);
  };

  branches_[0] = std::make_unique<Branch>();
  branches_[0]->layers.push_back(
      conv(in_channels_, params_.c1, 1, 0, "/1x1"));
  branches_[0]->layers.push_back(relu("/relu_1x1"));
  branches_[0]->out_channels = params_.c1;

  branches_[1] = std::make_unique<Branch>();
  branches_[1]->layers.push_back(
      conv(in_channels_, params_.c3_reduce, 1, 0, "/3x3_reduce"));
  branches_[1]->layers.push_back(relu("/relu_3x3_reduce"));
  branches_[1]->layers.push_back(
      conv(params_.c3_reduce, params_.c3, 3, 1, "/3x3"));
  branches_[1]->layers.push_back(relu("/relu_3x3"));
  branches_[1]->out_channels = params_.c3;

  branches_[2] = std::make_unique<Branch>();
  branches_[2]->layers.push_back(
      conv(in_channels_, params_.c5_reduce, 1, 0, "/5x5_reduce"));
  branches_[2]->layers.push_back(relu("/relu_5x5_reduce"));
  branches_[2]->layers.push_back(
      conv(params_.c5_reduce, params_.c5, 5, 2, "/5x5"));
  branches_[2]->layers.push_back(relu("/relu_5x5"));
  branches_[2]->out_channels = params_.c5;

  branches_[3] = std::make_unique<Branch>();
  branches_[3]->layers.push_back(std::make_unique<PoolLayer>(
      name_ + "/pool", 3, 1, PoolMode::kMax, /*pad=*/1));
  branches_[3]->layers.push_back(
      conv(in_channels_, params_.pool_proj, 1, 0, "/pool_proj"));
  branches_[3]->layers.push_back(relu("/relu_pool_proj"));
  branches_[3]->out_channels = params_.pool_proj;
}

InceptionLayer::~InceptionLayer() = default;

TensorShape InceptionLayer::output_shape(const TensorShape& in) const {
  check(in.c == in_channels_, "inception: input channel mismatch");
  check(in.h == spatial_ && in.w == spatial_,
        "inception: input spatial size mismatch");
  return {in.n, params_.output_channels(), in.h, in.w};
}

void InceptionLayer::forward(const Tensor& in, Tensor& out) {
  const TensorShape os = output_shape(in.shape());
  out.resize(os);
  // The four branches only read `in` and write disjoint state, so they
  // run concurrently on the pool — the dataflow parallelism the concat
  // topology exposes. The channel concat stays serial (cheap copies).
  parallel_for(0, branches_.size(),
               [&](std::size_t b) { branches_[b]->forward(in); });
  std::size_t channel_offset = 0;
  for (auto& branch : branches_) {
    const Tensor& result = branch->output();
    check(result.shape().c == branch->out_channels,
          "inception branch channel mismatch");
    for (std::size_t n = 0; n < os.n; ++n) {
      for (std::size_t c = 0; c < branch->out_channels; ++c) {
        const float* src = result.plane(n, c);
        float* dst = out.plane(n, channel_offset + c);
        std::copy(src, src + os.spatial(), dst);
      }
    }
    channel_offset += branch->out_channels;
  }
}

void InceptionLayer::backward(const Tensor& in, const Tensor& grad_out,
                              Tensor& grad_in) {
  check(grad_out.shape() == output_shape(in.shape()),
        "inception: grad_out shape mismatch");
  grad_in.resize(in.shape());
  grad_in.fill(0.0F);
  // Slice each branch's channels out of the concatenated gradient
  // (serial — shared reads of grad_out are cheap), then backpropagate
  // the four branches concurrently: parameter gradients live inside
  // each branch's own layers, so the only shared write is the final
  // serial sum into grad_in.
  std::array<Tensor, 4> branch_grads;
  std::array<Tensor, 4> branch_gins;
  std::size_t channel_offset = 0;
  for (std::size_t b = 0; b < branches_.size(); ++b) {
    auto& branch = branches_[b];
    branch_grads[b].resize({in.shape().n, branch->out_channels,
                            in.shape().h, in.shape().w});
    for (std::size_t n = 0; n < in.shape().n; ++n) {
      for (std::size_t c = 0; c < branch->out_channels; ++c) {
        const float* src = grad_out.plane(n, channel_offset + c);
        std::copy(src, src + in.shape().spatial(),
                  branch_grads[b].plane(n, c));
      }
    }
    channel_offset += branch->out_channels;
  }
  parallel_for(0, branches_.size(), [&](std::size_t b) {
    branches_[b]->backward(in, std::move(branch_grads[b]),
                           branch_gins[b]);
  });
  for (const auto& branch_gin : branch_gins) {
    for (std::size_t i = 0; i < grad_in.count(); ++i) {
      grad_in.data()[i] += branch_gin.data()[i];
    }
  }
}

std::vector<Tensor*> InceptionLayer::parameters() {
  std::vector<Tensor*> out;
  for (auto& branch : branches_) {
    for (auto& layer : branch->layers) {
      for (Tensor* p : layer->parameters()) out.push_back(p);
    }
  }
  return out;
}

std::vector<Tensor*> InceptionLayer::gradients() {
  std::vector<Tensor*> out;
  for (auto& branch : branches_) {
    for (auto& layer : branch->layers) {
      for (Tensor* g : layer->gradients()) out.push_back(g);
    }
  }
  return out;
}

void InceptionLayer::initialize(Rng& rng) {
  for (auto& branch : branches_) {
    for (auto& layer : branch->layers) layer->initialize(rng);
  }
}

void InceptionLayer::set_training(bool training) {
  Layer::set_training(training);
  for (auto& branch : branches_) {
    for (auto& layer : branch->layers) layer->set_training(training);
  }
}

void InceptionLayer::set_auto_tune(bool on) {
  for (auto& branch : branches_) {
    for (auto& layer : branch->layers) layer->set_auto_tune(on);
  }
}

std::size_t InceptionLayer::fuse_relu_pairs() {
  std::size_t fused = 0;
  for (auto& branch : branches_) {
    auto& layers = branch->layers;
    for (std::size_t i = 0; i + 1 < layers.size();) {
      auto* conv = dynamic_cast<ConvLayer*>(layers[i].get());
      auto* act = dynamic_cast<ActivationLayer*>(layers[i + 1].get());
      if (conv != nullptr && !conv->fused_relu() && act != nullptr &&
          act->function() == Activation::kRelu) {
        conv->set_fused_relu(true);
        layers.erase(layers.begin() + static_cast<std::ptrdiff_t>(i) + 1);
        ++fused;
        continue;
      }
      ++i;
    }
  }
  return fused;
}

}  // namespace gpucnn::nn
