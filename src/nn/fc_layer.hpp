// Fully connected layer (the FC layers of Fig. 2's breakdown). Input of
// any 4-D shape is treated as (batch, features).
#pragma once

#include <memory>

#include "blas/packed.hpp"
#include "nn/layer.hpp"

namespace gpucnn::nn {

class FcLayer final : public Layer {
 public:
  FcLayer(std::string name, std::size_t in_features,
          std::size_t out_features);

  [[nodiscard]] std::string_view type() const override { return "fc"; }
  [[nodiscard]] TensorShape output_shape(const TensorShape& in)
      const override;

  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& grad_out,
                Tensor& grad_in) override;

  [[nodiscard]] std::vector<Tensor*> parameters() override {
    return {&weights_, &bias_};
  }
  [[nodiscard]] std::vector<Tensor*> gradients() override {
    return {&grad_weights_, &grad_bias_};
  }

  void initialize(Rng& rng) override;

  /// Packs W^T (the forward GEMM's B operand, nr-column panels) once;
  /// inference forwards then skip the per-call B pack entirely — on
  /// small batches the FC GEMM is pack-dominated, so this is the biggest
  /// single win of the packed-weight cache.
  void freeze_for_inference() override;

  void set_training(bool training) override {
    if (training) prepacked_.reset();
    Layer::set_training(training);
  }

  void adopt_prepack(const Layer& owner) override;

  [[nodiscard]] std::shared_ptr<const blas::PackedMatrix> prepacked()
      const {
    return prepacked_;
  }

  [[nodiscard]] std::size_t in_features() const { return in_features_; }
  [[nodiscard]] std::size_t out_features() const { return out_features_; }

 private:
  std::size_t in_features_;
  std::size_t out_features_;
  Tensor weights_;       ///< (out, in) row-major
  Tensor bias_;          ///< (out)
  Tensor grad_weights_;
  Tensor grad_bias_;
  /// W packed as the forward GEMM's B operand (see freeze_for_inference).
  std::shared_ptr<const blas::PackedMatrix> prepacked_;
};

}  // namespace gpucnn::nn
