#include "nn/model_spec.hpp"

#include "nn/activation_layer.hpp"
#include "nn/conv_layer.hpp"
#include "nn/dropout_layer.hpp"
#include "nn/fc_layer.hpp"
#include "nn/inception_layer.hpp"
#include "nn/lrn_layer.hpp"
#include "nn/pool_layer.hpp"
#include "nn/softmax.hpp"

namespace gpucnn::nn {

std::string_view to_string(LayerSpec::Kind k) {
  switch (k) {
    case LayerSpec::Kind::kConv:
      return "conv";
    case LayerSpec::Kind::kPool:
      return "pool";
    case LayerSpec::Kind::kRelu:
      return "relu";
    case LayerSpec::Kind::kFc:
      return "fc";
    case LayerSpec::Kind::kLrn:
      return "lrn";
    case LayerSpec::Kind::kDropout:
      return "dropout";
    case LayerSpec::Kind::kConcat:
      return "concat";
    case LayerSpec::Kind::kSoftmax:
      return "softmax";
  }
  return "unknown";
}

namespace {

// Incremental spec builder tracking the running activation shape.
class Builder {
 public:
  Builder(std::string model_name, std::size_t batch, std::size_t channels,
          std::size_t size)
      : spec_{std::move(model_name), batch, {}},
        shape_{batch, channels, size, size} {}

  Builder& conv(const std::string& name, std::size_t filters,
                std::size_t kernel, std::size_t stride = 1,
                std::size_t pad = 0, std::size_t groups = 1) {
    LayerSpec l;
    l.kind = LayerSpec::Kind::kConv;
    l.name = name;
    l.conv = ConvConfig{.batch = spec_.batch, .input = shape_.h,
                        .channels = shape_.c, .filters = filters,
                        .kernel = kernel, .stride = stride, .pad = pad,
                        .groups = groups};
    l.input = shape_;
    shape_ = l.conv.output_shape();
    l.output = shape_;
    spec_.layers.push_back(std::move(l));
    return *this;
  }

  Builder& relu() { return simple(LayerSpec::Kind::kRelu, "relu"); }
  Builder& lrn() { return simple(LayerSpec::Kind::kLrn, "lrn"); }
  Builder& dropout() { return simple(LayerSpec::Kind::kDropout, "drop"); }
  Builder& softmax() { return simple(LayerSpec::Kind::kSoftmax, "prob"); }

  Builder& pool(std::size_t window, std::size_t stride,
                bool average = false) {
    LayerSpec l;
    l.kind = LayerSpec::Kind::kPool;
    l.name = "pool" + std::to_string(++pool_index_);
    l.pool_window = window;
    l.pool_stride = stride;
    l.pool_average = average;
    l.input = shape_;
    const auto out_dim = [&](std::size_t d) {
      check(d >= window, "pool window larger than input");
      return (d - window + stride - 1) / stride + 1;
    };
    shape_ = {shape_.n, shape_.c, out_dim(shape_.h), out_dim(shape_.w)};
    l.output = shape_;
    spec_.layers.push_back(std::move(l));
    return *this;
  }

  Builder& fc(const std::string& name, std::size_t out_features) {
    LayerSpec l;
    l.kind = LayerSpec::Kind::kFc;
    l.name = name;
    l.fc_in = shape_.c * shape_.h * shape_.w;
    l.fc_out = out_features;
    l.input = shape_;
    shape_ = {shape_.n, out_features, 1, 1};
    l.output = shape_;
    spec_.layers.push_back(std::move(l));
    return *this;
  }

  /// GoogLeNet inception module: four parallel branches on the current
  /// shape, concatenated along channels.
  Builder& inception(const std::string& name, std::size_t c1,
                     std::size_t c3_reduce, std::size_t c3,
                     std::size_t c5_reduce, std::size_t c5,
                     std::size_t pool_proj) {
    const TensorShape entry = shape_;
    const auto branch_conv = [&](const std::string& suffix,
                                 std::size_t filters, std::size_t kernel,
                                 std::size_t pad, const TensorShape& in) {
      LayerSpec l;
      l.kind = LayerSpec::Kind::kConv;
      l.name = name + suffix;
      l.conv = ConvConfig{.batch = spec_.batch, .input = in.h,
                          .channels = in.c, .filters = filters,
                          .kernel = kernel, .stride = 1, .pad = pad};
      l.input = in;
      l.output = l.conv.output_shape();
      spec_.layers.push_back(l);
      return l.output;
    };
    branch_conv("/1x1", c1, 1, 0, entry);
    const auto r3 = branch_conv("/3x3_reduce", c3_reduce, 1, 0, entry);
    branch_conv("/3x3", c3, 3, 1, r3);
    const auto r5 = branch_conv("/5x5_reduce", c5_reduce, 1, 0, entry);
    branch_conv("/5x5", c5, 5, 2, r5);
    branch_conv("/pool_proj", pool_proj, 1, 0, entry);

    LayerSpec cat;
    cat.kind = LayerSpec::Kind::kConcat;
    cat.name = name + "/concat";
    cat.input = entry;
    shape_ = {entry.n, c1 + c3 + c5 + pool_proj, entry.h, entry.w};
    cat.output = shape_;
    spec_.layers.push_back(std::move(cat));
    return *this;
  }

  [[nodiscard]] ModelSpec build() { return std::move(spec_); }

 private:
  Builder& simple(LayerSpec::Kind kind, const std::string& base) {
    LayerSpec l;
    l.kind = kind;
    l.name = base + std::to_string(++simple_index_);
    l.input = shape_;
    l.output = shape_;
    spec_.layers.push_back(std::move(l));
    return *this;
  }

  ModelSpec spec_;
  TensorShape shape_;
  std::size_t pool_index_ = 0;
  std::size_t simple_index_ = 0;
};

}  // namespace

double ModelSpec::parameter_count() const {
  double total = 0.0;
  for (const auto& l : layers) {
    if (l.kind == LayerSpec::Kind::kConv) {
      total += static_cast<double>(l.conv.filter_shape().count()) +
               static_cast<double>(l.conv.filters);
    } else if (l.kind == LayerSpec::Kind::kFc) {
      total += static_cast<double>(l.fc_in) * static_cast<double>(l.fc_out) +
               static_cast<double>(l.fc_out);
    }
  }
  return total;
}

std::size_t ModelSpec::count(LayerSpec::Kind k) const {
  std::size_t n = 0;
  for (const auto& l : layers) n += l.kind == k ? 1 : 0;
  return n;
}

Network ModelSpec::instantiate(conv::Strategy strategy) const {
  Network net;
  for (const auto& l : layers) {
    switch (l.kind) {
      case LayerSpec::Kind::kConv:
        net.emplace<ConvLayer>(l.name, l.conv, strategy);
        break;
      case LayerSpec::Kind::kPool:
        net.emplace<PoolLayer>(l.name, l.pool_window, l.pool_stride,
                               l.pool_average ? PoolMode::kAverage
                                              : PoolMode::kMax);
        break;
      case LayerSpec::Kind::kRelu:
        net.emplace<ActivationLayer>(l.name, Activation::kRelu);
        break;
      case LayerSpec::Kind::kFc:
        net.emplace<FcLayer>(l.name, l.fc_in, l.fc_out);
        break;
      case LayerSpec::Kind::kLrn:
        net.emplace<LrnLayer>(l.name);
        break;
      case LayerSpec::Kind::kDropout:
        net.emplace<DropoutLayer>(l.name, 0.5);
        break;
      case LayerSpec::Kind::kSoftmax:
        net.emplace<SoftmaxLayer>(l.name);
        break;
      case LayerSpec::Kind::kConcat:
        check(false,
              "model '" + name +
                  "' contains concat branches; only sequential models "
                  "can be instantiated");
    }
  }
  return net;
}

ModelSpec lenet5(std::size_t batch) {
  return Builder("LeNet-5", batch, 1, 32)
      .conv("conv1", 6, 5)
      .relu()
      .pool(2, 2)
      .conv("conv2", 16, 5)
      .relu()
      .pool(2, 2)
      .fc("fc3", 120)
      .relu()
      .fc("fc4", 84)
      .relu()
      .fc("fc5", 10)
      .softmax()
      .build();
}

ModelSpec alexnet(std::size_t batch) {
  return Builder("AlexNet", batch, 3, 227)
      .conv("conv1", 96, 11, 4)
      .relu()
      .lrn()
      .pool(3, 2)
      .conv("conv2", 256, 5, 1, 2, 2)
      .relu()
      .lrn()
      .pool(3, 2)
      .conv("conv3", 384, 3, 1, 1)
      .relu()
      .conv("conv4", 384, 3, 1, 1, 2)
      .relu()
      .conv("conv5", 256, 3, 1, 1, 2)
      .relu()
      .pool(3, 2)
      .fc("fc6", 4096)
      .relu()
      .dropout()
      .fc("fc7", 4096)
      .relu()
      .dropout()
      .fc("fc8", 1000)
      .softmax()
      .build();
}

namespace {

ModelSpec vgg(std::size_t batch, bool nineteen) {
  Builder b("VGG-" + std::string(nineteen ? "19" : "16"), batch, 3, 224);
  const auto block = [&](std::size_t filters, std::size_t convs,
                         std::size_t from) {
    for (std::size_t i = 0; i < convs; ++i) {
      b.conv("conv" + std::to_string(from + i), filters, 3, 1, 1).relu();
    }
    b.pool(2, 2);
  };
  block(64, 2, 1);
  block(128, 2, 3);
  block(256, nineteen ? 4 : 3, 5);
  block(512, nineteen ? 4 : 3, nineteen ? 9 : 8);
  block(512, nineteen ? 4 : 3, nineteen ? 13 : 11);
  b.fc("fc1", 4096).relu().dropout();
  b.fc("fc2", 4096).relu().dropout();
  b.fc("fc3", 1000).softmax();
  return b.build();
}

}  // namespace

ModelSpec vgg16(std::size_t batch) { return vgg(batch, false); }
ModelSpec vgg19(std::size_t batch) { return vgg(batch, true); }

ModelSpec googlenet(std::size_t batch) {
  Builder b("GoogLeNet", batch, 3, 224);
  b.conv("conv1/7x7_s2", 64, 7, 2, 3).relu().pool(3, 2).lrn();
  b.conv("conv2/3x3_reduce", 64, 1).relu();
  b.conv("conv2/3x3", 192, 3, 1, 1).relu().lrn().pool(3, 2);
  const auto modules = googlenet_inceptions();
  // Pool placement: after 3b (index 1) and after 4e (index 6).
  for (std::size_t i = 0; i < modules.size(); ++i) {
    const auto& m = modules[i];
    b.inception(m.name, m.c1, m.c3_reduce, m.c3, m.c5_reduce, m.c5,
                m.pool_proj);
    if (i == 1 || i == 6) b.pool(3, 2);
  }
  b.pool(7, 1, /*average=*/true);
  b.dropout();
  b.fc("loss3/classifier", 1000).softmax();
  return b.build();
}

Network googlenet_network(conv::Strategy strategy) {
  Network net;
  const auto conv = [&](const std::string& cname, std::size_t input,
                        std::size_t channels, std::size_t filters,
                        std::size_t kernel, std::size_t stride,
                        std::size_t pad) {
    net.emplace<ConvLayer>(
        cname,
        ConvConfig{.batch = 1, .input = input, .channels = channels,
                   .filters = filters, .kernel = kernel, .stride = stride,
                   .pad = pad},
        strategy);
    net.emplace<ActivationLayer>(cname + "/relu");
  };
  conv("conv1/7x7_s2", 224, 3, 64, 7, 2, 3);   // -> 112
  net.emplace<PoolLayer>("pool1", 3, 2);        // -> 56
  net.emplace<LrnLayer>("lrn1");
  conv("conv2/3x3_reduce", 56, 64, 64, 1, 1, 0);
  conv("conv2/3x3", 56, 64, 192, 3, 1, 1);
  net.emplace<LrnLayer>("lrn2");
  net.emplace<PoolLayer>("pool2", 3, 2);        // -> 28

  const auto modules = googlenet_inceptions();
  std::size_t channels = 192;
  std::size_t spatial = 28;
  for (std::size_t i = 0; i < modules.size(); ++i) {
    const auto& m = modules[i];
    net.emplace<InceptionLayer>(std::string(m.name), channels, spatial, m);
    channels = m.output_channels();
    if (i == 1 || i == 6) {
      net.emplace<PoolLayer>("pool_after_" + std::string(m.name), 3, 2);
      spatial = (spatial - 3 + 1) / 2 + 1;  // ceil mode
    }
  }
  net.emplace<PoolLayer>("global_pool", 7, 1, PoolMode::kAverage);
  net.emplace<DropoutLayer>("drop", 0.4);
  net.emplace<FcLayer>("loss3/classifier", 1024, 1000);
  net.emplace<SoftmaxLayer>("prob");
  return net;
}

ModelSpec overfeat(std::size_t batch) {
  return Builder("OverFeat", batch, 3, 231)
      .conv("conv1", 96, 11, 4)
      .relu()
      .pool(2, 2)
      .conv("conv2", 256, 5)
      .relu()
      .pool(2, 2)
      .conv("conv3", 512, 3, 1, 1)
      .relu()
      .conv("conv4", 1024, 3, 1, 1)
      .relu()
      .conv("conv5", 1024, 3, 1, 1)
      .relu()
      .pool(2, 2)
      .fc("fc6", 3072)
      .relu()
      .dropout()
      .fc("fc7", 4096)
      .relu()
      .dropout()
      .fc("fc8", 1000)
      .softmax()
      .build();
}

ModelSpec mobilenet_v1(std::size_t batch) {
  Builder b("MobileNet-v1", batch, 3, 224);
  b.conv("conv1", 32, 3, 2, 1).relu();
  std::size_t index = 1;
  std::size_t channels = 32;
  // One depthwise-separable block: 3x3 depthwise (groups == channels)
  // then a 1x1 pointwise expansion — the factorisation that replaces a
  // dense 3x3 conv at a fraction of the FLOPs.
  const auto separable = [&](std::size_t out, std::size_t stride) {
    const std::string stem = "conv" + std::to_string(++index);
    b.conv(stem + "/dw", channels, 3, stride, 1, channels).relu();
    b.conv(stem + "/pw", out, 1).relu();
    channels = out;
  };
  separable(64, 1);
  separable(128, 2);
  separable(128, 1);
  separable(256, 2);
  separable(256, 1);
  separable(512, 2);
  for (int i = 0; i < 5; ++i) separable(512, 1);
  separable(1024, 2);
  separable(1024, 1);
  b.pool(7, 1, /*average=*/true);
  b.fc("fc", 1000).softmax();
  return b.build();
}

ModelSpec mobilenet_mini(std::size_t batch) {
  // 32x32 input, two separable blocks; the first depthwise stage uses a
  // channel multiplier of 2 (filters = 2 * channels, still
  // groups == channels).
  return Builder("MobileNet-mini", batch, 3, 32)
      .conv("conv1", 8, 3, 1, 1)
      .relu()
      .conv("conv2/dw", 16, 3, 1, 1, 8)  // multiplier 2 depthwise
      .relu()
      .conv("conv2/pw", 16, 1)
      .relu()
      .pool(2, 2)
      .conv("conv3/dw", 16, 3, 2, 1, 16)
      .relu()
      .conv("conv3/pw", 32, 1)
      .relu()
      .pool(2, 2)
      .fc("fc", 10)
      .softmax()
      .build();
}

std::vector<ModelSpec> figure2_models() {
  std::vector<ModelSpec> models;
  models.push_back(googlenet());
  models.push_back(vgg16());
  models.push_back(overfeat());
  models.push_back(alexnet());
  return models;
}

}  // namespace gpucnn::nn
