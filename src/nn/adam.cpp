#include "nn/adam.hpp"

#include <cmath>

namespace gpucnn::nn {

void Adam::step() {
  const auto params = net_->parameters();
  const auto grads = net_->gradients();
  check(params.size() == grads.size(),
        "parameter/gradient count mismatch");
  if (m_.size() != params.size()) {
    m_.clear();
    v_.clear();
    m_.reserve(params.size());
    v_.reserve(params.size());
    for (const Tensor* p : params) {
      m_.emplace_back(p->shape());
      v_.emplace_back(p->shape());
    }
    t_ = 0;
  }
  ++t_;

  const float lr = static_cast<float>(options_.learning_rate);
  const float b1 = static_cast<float>(options_.beta1);
  const float b2 = static_cast<float>(options_.beta2);
  const float eps = static_cast<float>(options_.epsilon);
  const float wd = static_cast<float>(options_.weight_decay);
  const float correct1 =
      1.0F - std::pow(b1, static_cast<float>(t_));
  const float correct2 =
      1.0F - std::pow(b2, static_cast<float>(t_));

  for (std::size_t i = 0; i < params.size(); ++i) {
    check(m_[i].shape() == params[i]->shape(),
          "parameter shape changed between steps");
    auto p = params[i]->data();
    auto g = grads[i]->data();
    auto m = m_[i].data();
    auto v = v_[i].data();
    for (std::size_t j = 0; j < p.size(); ++j) {
      const float grad = g[j] + wd * p[j];
      m[j] = b1 * m[j] + (1.0F - b1) * grad;
      v[j] = b2 * v[j] + (1.0F - b2) * grad * grad;
      const float m_hat = m[j] / correct1;
      const float v_hat = v[j] / correct2;
      p[j] -= lr * m_hat / (std::sqrt(v_hat) + eps);
    }
  }
}

}  // namespace gpucnn::nn
