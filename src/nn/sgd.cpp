#include "nn/sgd.hpp"

namespace gpucnn::nn {

void Sgd::step() {
  const auto params = net_->parameters();
  const auto grads = net_->gradients();
  check(params.size() == grads.size(),
        "parameter/gradient count mismatch");
  if (velocity_.size() != params.size()) {
    velocity_.clear();
    velocity_.reserve(params.size());
    for (const Tensor* p : params) velocity_.emplace_back(p->shape());
  }

  const float lr = static_cast<float>(options_.learning_rate);
  const float mu = static_cast<float>(options_.momentum);
  const float wd = static_cast<float>(options_.weight_decay);
  for (std::size_t i = 0; i < params.size(); ++i) {
    check(velocity_[i].shape() == params[i]->shape(),
          "parameter shape changed between steps");
    auto p = params[i]->data();
    auto g = grads[i]->data();
    auto v = velocity_[i].data();
    for (std::size_t j = 0; j < p.size(); ++j) {
      const float grad = g[j] + wd * p[j];
      v[j] = mu * v[j] + grad;
      p[j] -= lr * v[j];
    }
  }
}

}  // namespace gpucnn::nn
