#include "nn/fc_layer.hpp"

#include <cmath>

#include "blas/gemm.hpp"
#include "blas/vector_ops.hpp"

namespace gpucnn::nn {

using blas::Trans;

FcLayer::FcLayer(std::string name, std::size_t in_features,
                 std::size_t out_features)
    : Layer(std::move(name)),
      in_features_(in_features),
      out_features_(out_features),
      weights_(1, 1, out_features, in_features),
      bias_(1, out_features, 1, 1),
      grad_weights_(1, 1, out_features, in_features),
      grad_bias_(1, out_features, 1, 1) {}

TensorShape FcLayer::output_shape(const TensorShape& in) const {
  check(in.c * in.h * in.w == in_features_,
        "fc: flattened input feature count mismatch");
  return {in.n, out_features_, 1, 1};
}

void FcLayer::forward(const Tensor& in, Tensor& out) {
  const TensorShape os = output_shape(in.shape());
  out.resize(os);
  const std::size_t n = in.shape().n;
  // out(N x O) = in(N x I) * W^T(I x O)
  if (!training_ && prepacked_ != nullptr) {
    blas::sgemm_prepacked(Trans::kNo, n, out_features_, in_features_, 1.0F,
                          in.data(), in_features_, *prepacked_, 0.0F,
                          out.data(), out_features_);
  } else {
    blas::sgemm(Trans::kNo, Trans::kYes, n, out_features_, in_features_,
                1.0F, in.data(), in_features_, weights_.data(),
                in_features_, 0.0F, out.data(), out_features_);
  }
  blas::add_bias(out.data(), bias_.data(), n, out_features_, 1);
}

void FcLayer::freeze_for_inference() {
  // Already holding a live pack of this very buffer (packed here
  // earlier, or adopted from the weight owner): keep sharing it.
  if (prepacked_ != nullptr && prepacked_->valid() &&
      prepacked_->origin().data() == weights_.data().data()) {
    return;
  }
  prepacked_ = std::make_shared<const blas::PackedMatrix>(
      blas::pack_b(Trans::kYes, in_features_, out_features_,
                   weights_.data(), in_features_));
}

void FcLayer::adopt_prepack(const Layer& owner) {
  const auto* fc_owner = dynamic_cast<const FcLayer*>(&owner);
  if (fc_owner != nullptr && fc_owner->prepacked_ != nullptr) {
    prepacked_ = fc_owner->prepacked_;
  }
}

void FcLayer::backward(const Tensor& in, const Tensor& grad_out,
                       Tensor& grad_in) {
  const std::size_t n = in.shape().n;
  check(grad_out.shape().n == n &&
            grad_out.count() == n * out_features_,
        "fc: grad_out shape mismatch");
  grad_in.resize(in.shape());
  // dIn(N x I) = gOut(N x O) * W(O x I)
  blas::sgemm(Trans::kNo, Trans::kNo, n, in_features_, out_features_, 1.0F,
              grad_out.data(), out_features_, weights_.data(), in_features_,
              0.0F, grad_in.data(), in_features_);
  // dW(O x I) += gOut^T(O x N) * in(N x I)
  blas::sgemm(Trans::kYes, Trans::kNo, out_features_, in_features_, n, 1.0F,
              grad_out.data(), out_features_, in.data(), in_features_, 1.0F,
              grad_weights_.data(), in_features_);
  blas::reduce_bias_grad(grad_out.data(), grad_bias_.data(), n,
                         out_features_, 1);
}

void FcLayer::initialize(Rng& rng) {
  const float bound =
      static_cast<float>(std::sqrt(6.0 / static_cast<double>(in_features_)));
  weights_.fill_uniform(rng, -bound, bound);
  bias_.fill(0.0F);
  prepacked_.reset();  // panels packed from the previous weights
}

}  // namespace gpucnn::nn
