// Binary checkpoint serialisation for network parameters.
//
// Format (little-endian): magic "GCNN", u32 version, u64 tensor count,
// then per tensor: u64 n,c,h,w followed by n*c*h*w raw floats. Loading
// validates shapes against the target network, so a checkpoint can only
// be restored into an architecturally identical model.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/network.hpp"

namespace gpucnn::nn {

/// Writes all network parameters to a stream / file.
void save_parameters(Network& net, std::ostream& os);
void save_parameters(Network& net, const std::string& path);

/// Restores parameters; throws gpucnn::Error on magic/version/shape
/// mismatch or truncated input.
void load_parameters(Network& net, std::istream& is);
void load_parameters(Network& net, const std::string& path);

}  // namespace gpucnn::nn
