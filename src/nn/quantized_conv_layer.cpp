#include "nn/quantized_conv_layer.hpp"

#include <algorithm>

#include "blas/vector_ops.hpp"
#include "core/error.hpp"
#include "obs/metrics.hpp"
#include "tune/autotuner.hpp"

namespace gpucnn::nn {
namespace {

void copy_tensor(const Tensor& src, Tensor& dst) {
  dst.resize(src.shape());
  const auto s = src.data();
  std::copy(s.begin(), s.end(), dst.data().begin());
}

}  // namespace

QuantizedConvLayer::QuantizedConvLayer(ConvLayer& source,
                                       quant::Observer::Kind observer_kind)
    : Layer(std::string(source.name())),
      geometry_(source.geometry()),
      fused_relu_(source.fused_relu()),
      auto_tune_(source.auto_tune()),
      observer_(observer_kind) {
  const auto params = source.parameters();
  copy_tensor(*params[0], weights_);
  copy_tensor(*params[1], bias_);
}

ConvConfig QuantizedConvLayer::config_for_batch(std::size_t batch) const {
  ConvConfig cfg = geometry_;
  cfg.batch = batch;
  return cfg;
}

TensorShape QuantizedConvLayer::output_shape(const TensorShape& in) const {
  check(in.c == geometry_.channels, "qconv: input channel mismatch");
  check(in.h == geometry_.input && in.w == geometry_.input,
        "qconv: input spatial size mismatch");
  return config_for_batch(in.n).output_shape();
}

void QuantizedConvLayer::freeze() {
  if (frozen_) return;
  const std::size_t ckk =
      geometry_.group_channels() * geometry_.kernel * geometry_.kernel;
  qweights_ = quant::quantize_filters(weights_.data(), geometry_.filters,
                                      ckk);
  if (observer_.seen()) {
    aq_ = observer_.quant();
    act_frozen_ = true;
  }
  frozen_ = true;
  obs::metrics().counter("quant.layers.frozen").add(1);
}

void QuantizedConvLayer::freeze_for_inference() {
  freeze();
  // Any live pack is already bit-identical (quantization and packing are
  // deterministic over the shared fp32 weights): keep sharing it.
  if (qprepacked_ != nullptr && !qprepacked_->groups.empty() &&
      qprepacked_->groups.front().valid()) {
    return;
  }
  qprepacked_ = std::make_shared<const conv::PackedQFilters>(
      conv::prepack_quantized_filters(geometry_, qweights_));
}

void QuantizedConvLayer::adopt_prepack(const Layer& owner) {
  const auto* q_owner = dynamic_cast<const QuantizedConvLayer*>(&owner);
  if (q_owner != nullptr && q_owner->qprepacked_ != nullptr) {
    qprepacked_ = q_owner->qprepacked_;
  }
}

void QuantizedConvLayer::fp32_forward(const ConvConfig& cfg,
                                      const conv::ConvEngine& engine,
                                      const Tensor& in, Tensor& out) const {
  if (!engine.forward_fused(cfg, in, weights_, bias_.data(), fused_relu_,
                            out)) {
    engine.forward(cfg, in, weights_, out);
    blas::add_bias(out.data(), bias_.data(), cfg.batch, cfg.filters,
                   cfg.output() * cfg.output());
    if (fused_relu_) {
      for (float& v : out.data()) v = v > 0.0F ? v : 0.0F;
    }
  }
}

void QuantizedConvLayer::forward(const Tensor& in, Tensor& out) {
  const ConvConfig cfg = config_for_batch(in.shape().n);
  out.resize(cfg.output_shape());

  if (!frozen_) {
    // Calibration mode: record the input range, answer in fp32 so the
    // downstream layers (and their observers) see exact activations.
    observer_.observe(in.data());
    fp32_forward(cfg, tune::default_engine(), in, out);
    return;
  }

  quant::ActQuant aq = aq_;
  if (!act_frozen_) {
    // Uncalibrated: dynamic per-batch range.
    const auto d = in.data();
    check(!d.empty(), "qconv forward needs a non-empty input");
    float lo = d[0];
    float hi = d[0];
    for (const float v : d) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    aq = quant::choose_act_quant(lo, hi);
  }

  // Engine selection: with autotuning on, ask for the int8 pool; the
  // tuner hands back an fp32 engine when int8 measured slower, in which
  // case the retained fp32 weights serve the layer unchanged.
  bool implicit = false;
  if (auto_tune_) {
    const conv::ConvEngine* tuned = tune::Autotuner::instance().choose(
        cfg, tune::Pass::kForward, tune::Dtype::kInt8);
    if (tuned != nullptr) {
      const std::string_view name = tuned->name();
      if (name == "implicit-int8") {
        implicit = true;
      } else if (name != "unrolling-int8") {
        fp32_forward(cfg, *tuned, in, out);
        return;
      }
    }
  }

  if (implicit && cfg.groups == 1) {
    if (qprepacked_ != nullptr) {
      conv::quantized_implicit_forward(cfg, in, qweights_, *qprepacked_,
                                       aq, bias_.data(), fused_relu_, out);
    } else {
      conv::quantized_implicit_forward(cfg, in, qweights_, aq,
                                       bias_.data(), fused_relu_, out);
    }
  } else if (qprepacked_ != nullptr) {
    conv::quantized_gemm_forward(cfg, in, qweights_, *qprepacked_, aq,
                                 bias_.data(), fused_relu_, out);
  } else {
    conv::quantized_gemm_forward(cfg, in, qweights_, aq, bias_.data(),
                                 fused_relu_, out);
  }
}

void QuantizedConvLayer::backward(const Tensor&, const Tensor&, Tensor&) {
  throw Error("quantized conv '" + name_ +
              "' is inference-only: no backward pass");
}

}  // namespace gpucnn::nn
