// Inverted dropout: active during training, identity at inference.
#pragma once

#include "nn/layer.hpp"

namespace gpucnn::nn {

class DropoutLayer final : public Layer {
 public:
  DropoutLayer(std::string name, double rate, std::uint64_t seed = 1234)
      : Layer(std::move(name)), rate_(rate), rng_(seed) {
    check(rate >= 0.0 && rate < 1.0, "dropout rate must be in [0, 1)");
  }

  [[nodiscard]] std::string_view type() const override { return "dropout"; }
  [[nodiscard]] TensorShape output_shape(const TensorShape& in)
      const override {
    return in;
  }

  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& grad_out,
                Tensor& grad_in) override;

  [[nodiscard]] double rate() const { return rate_; }

 private:
  double rate_;
  Rng rng_;
  Tensor mask_;  ///< scale per element: 0 or 1/(1-rate)
};

}  // namespace gpucnn::nn
