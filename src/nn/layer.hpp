// Layer abstraction for executable networks.
//
// Layers own their parameters and any state the backward pass needs
// (masks, cached pre-activations). The forward/backward contract is
// Caffe-like: the container passes the layer its input and takes its
// output; backward receives dL/d(output) and produces dL/d(input),
// accumulating parameter gradients internally.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/rng.hpp"
#include "core/shape.hpp"
#include "core/tensor.hpp"

namespace gpucnn::nn {

class Layer {
 public:
  explicit Layer(std::string name) : name_(std::move(name)) {}
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] virtual std::string_view type() const = 0;

  /// Output shape for a given input shape; throws on invalid geometry.
  [[nodiscard]] virtual TensorShape output_shape(
      const TensorShape& in) const = 0;

  /// Computes `out` from `in`; `out` is resized by the layer.
  virtual void forward(const Tensor& in, Tensor& out) = 0;

  /// Computes dL/d`in` from dL/d`out`; parameter gradients accumulate
  /// into the layer's gradient tensors (zeroed by zero_grad()).
  virtual void backward(const Tensor& in, const Tensor& grad_out,
                        Tensor& grad_in) = 0;

  /// Learnable parameters and their gradients, pairwise aligned.
  [[nodiscard]] virtual std::vector<Tensor*> parameters() { return {}; }
  [[nodiscard]] virtual std::vector<Tensor*> gradients() { return {}; }

  /// Zeroes accumulated parameter gradients.
  void zero_grad() {
    for (Tensor* g : gradients()) g->fill(0.0F);
  }

  /// Toggles training-time behaviour (dropout).
  virtual void set_training(bool training) { training_ = training; }
  [[nodiscard]] bool training() const { return training_; }

  /// Enables empirical engine selection (tune::Autotuner) in layers that
  /// dispatch to convolution engines; a no-op elsewhere.
  virtual void set_auto_tune(bool) {}

  /// Fuses internal conv -> ReLU pairs in composite layers (inception
  /// branches); returns how many pairs were fused. Network-level pairs
  /// are fused by Network::fuse_conv_relu() instead.
  virtual std::size_t fuse_relu_pairs() { return 0; }

  /// Initialises parameters (default: nothing to initialise).
  virtual void initialize(Rng&) {}

  /// Pack-once/execute-many inference preparation: layers whose forward
  /// runs a weight GEMM pack the weights into micro-kernel panels here
  /// (blas/packed.hpp) and reuse the panels across every forward until
  /// the weights can change again (set_training(true), initialize,
  /// strategy switch). Default: nothing to prepack.
  virtual void freeze_for_inference() {}

  /// Aliases `owner`'s packed weight panels into this layer (called by
  /// Network::share_parameters after the weight tensors themselves are
  /// aliased): all serving workers then share one packed copy. A no-op
  /// when the owner holds no pack or the layer types differ.
  virtual void adopt_prepack(const Layer& /*owner*/) {}

 protected:
  std::string name_;
  bool training_ = true;
};

}  // namespace gpucnn::nn
