#include "nn/dropout_layer.hpp"

namespace gpucnn::nn {

void DropoutLayer::forward(const Tensor& in, Tensor& out) {
  out.resize(in.shape());
  const auto src = in.data();
  const auto dst = out.data();
  if (!training_ || rate_ == 0.0) {
    std::copy(src.begin(), src.end(), dst.begin());
    return;
  }
  mask_.resize(in.shape());
  const auto mask = mask_.data();
  const float keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  for (std::size_t i = 0; i < src.size(); ++i) {
    mask[i] = rng_.uniform() < rate_ ? 0.0F : keep_scale;
    dst[i] = src[i] * mask[i];
  }
}

void DropoutLayer::backward(const Tensor& in, const Tensor& grad_out,
                            Tensor& grad_in) {
  check(grad_out.shape() == in.shape(), "dropout: shape mismatch");
  grad_in.resize(in.shape());
  const auto g = grad_out.data();
  const auto gi = grad_in.data();
  if (!training_ || rate_ == 0.0) {
    std::copy(g.begin(), g.end(), gi.begin());
    return;
  }
  check(mask_.shape() == in.shape(),
        "dropout: backward before forward or shape changed");
  const auto mask = mask_.data();
  for (std::size_t i = 0; i < g.size(); ++i) gi[i] = g[i] * mask[i];
}

}  // namespace gpucnn::nn
