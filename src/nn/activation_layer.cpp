#include "nn/activation_layer.hpp"

#include <cmath>

namespace gpucnn::nn {

std::string_view to_string(Activation a) {
  switch (a) {
    case Activation::kRelu:
      return "relu";
    case Activation::kSigmoid:
      return "sigmoid";
    case Activation::kTanh:
      return "tanh";
  }
  return "unknown";
}

void ActivationLayer::forward(const Tensor& in, Tensor& out) {
  out.resize(in.shape());
  const auto src = in.data();
  const auto dst = out.data();
  switch (fn_) {
    case Activation::kRelu:
      for (std::size_t i = 0; i < src.size(); ++i) {
        dst[i] = src[i] > 0.0F ? src[i] : 0.0F;
      }
      break;
    case Activation::kSigmoid:
      for (std::size_t i = 0; i < src.size(); ++i) {
        dst[i] = 1.0F / (1.0F + std::exp(-src[i]));
      }
      break;
    case Activation::kTanh:
      for (std::size_t i = 0; i < src.size(); ++i) {
        dst[i] = std::tanh(src[i]);
      }
      break;
  }
  if (fn_ != Activation::kRelu) {
    last_output_.resize(in.shape());
    std::copy(dst.begin(), dst.end(), last_output_.data().begin());
  }
}

void ActivationLayer::backward(const Tensor& in, const Tensor& grad_out,
                               Tensor& grad_in) {
  check(grad_out.shape() == in.shape(), "activation: shape mismatch");
  grad_in.resize(in.shape());
  const auto x = in.data();
  const auto g = grad_out.data();
  const auto gi = grad_in.data();
  switch (fn_) {
    case Activation::kRelu:
      for (std::size_t i = 0; i < x.size(); ++i) {
        gi[i] = x[i] > 0.0F ? g[i] : 0.0F;
      }
      break;
    case Activation::kSigmoid: {
      const auto y = last_output_.data();
      for (std::size_t i = 0; i < x.size(); ++i) {
        gi[i] = g[i] * y[i] * (1.0F - y[i]);
      }
      break;
    }
    case Activation::kTanh: {
      const auto y = last_output_.data();
      for (std::size_t i = 0; i < x.size(); ++i) {
        gi[i] = g[i] * (1.0F - y[i] * y[i]);
      }
      break;
    }
  }
}

}  // namespace gpucnn::nn
