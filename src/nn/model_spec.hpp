// Model zoo: shape-resolved descriptions of the paper's four profiled
// real-life CNNs (AlexNet, GoogLeNet, VGG, OverFeat — Fig. 2) plus
// LeNet-5 (the paper's §II.A walkthrough example).
//
// A ModelSpec serves two purposes:
//   * the Fig. 2 bench walks its layers through the GPU simulator to
//     reproduce the per-layer-type runtime breakdown;
//   * sequential models instantiate into executable nn::Network objects
//     for real (CPU) training in examples and tests.
#pragma once

#include <string>
#include <vector>

#include "conv/conv_engine.hpp"
#include "core/shape.hpp"
#include "nn/network.hpp"

namespace gpucnn::nn {

struct LayerSpec {
  enum class Kind {
    kConv,
    kPool,
    kRelu,
    kFc,
    kLrn,
    kDropout,
    kConcat,
    kSoftmax,
  };

  Kind kind{};
  std::string name;

  ConvConfig conv;  ///< valid when kind == kConv (batch already set)

  std::size_t pool_window = 0;  ///< kPool
  std::size_t pool_stride = 0;
  bool pool_average = false;

  std::size_t fc_in = 0;  ///< kFc
  std::size_t fc_out = 0;

  TensorShape input;   ///< resolved input shape (with batch)
  TensorShape output;  ///< resolved output shape
};

[[nodiscard]] std::string_view to_string(LayerSpec::Kind k);

struct ModelSpec {
  std::string name;
  std::size_t batch = 0;
  std::vector<LayerSpec> layers;

  /// Total learnable parameters (conv + fc weights and biases).
  [[nodiscard]] double parameter_count() const;

  /// Number of layers of one kind.
  [[nodiscard]] std::size_t count(LayerSpec::Kind k) const;

  /// Builds an executable network (sequential models only; throws for
  /// models containing concat, i.e. GoogLeNet).
  [[nodiscard]] Network instantiate(
      conv::Strategy strategy = conv::Strategy::kUnrolling) const;
};

/// LeNet-5 on 32x32 single-channel input (paper Fig. 1).
[[nodiscard]] ModelSpec lenet5(std::size_t batch = 64);
/// AlexNet (227x227x3, ILSVRC-2012 winner; 5 conv + 3 fc).
[[nodiscard]] ModelSpec alexnet(std::size_t batch = 128);
/// VGG-16 (224x224x3; 13 conv + 3 fc).
[[nodiscard]] ModelSpec vgg16(std::size_t batch = 64);
/// VGG-19 (224x224x3; 16 conv + 3 fc — the paper's "VGGNet has 19
/// layers").
[[nodiscard]] ModelSpec vgg19(std::size_t batch = 64);
/// GoogLeNet (224x224x3; 9 inception modules with concat).
[[nodiscard]] ModelSpec googlenet(std::size_t batch = 128);
/// OverFeat fast model (231x231x3; 5 conv + 3 fc).
[[nodiscard]] ModelSpec overfeat(std::size_t batch = 128);
/// MobileNet v1 (224x224x3; post-paper): 13 depthwise-separable blocks —
/// a 3x3 depthwise conv (groups == channels) followed by a pointwise 1x1
/// — the memory-bound workload the DepthwiseConv engine targets.
[[nodiscard]] ModelSpec mobilenet_v1(std::size_t batch = 64);
/// A small MobileNet-style separable net on 32x32 input, cheap enough to
/// instantiate and train in tests; its depthwise stage uses a channel
/// multiplier of 2 to exercise the multiplier > 1 path.
[[nodiscard]] ModelSpec mobilenet_mini(std::size_t batch = 8);

/// The four models of Fig. 2, in the paper's plotting order.
[[nodiscard]] std::vector<ModelSpec> figure2_models();

/// Executable GoogLeNet: the concat branches packaged as
/// nn::InceptionLayer composites, so the whole 22-layer network runs on
/// the real CPU engines (ModelSpec::instantiate cannot express the
/// fork/join).
[[nodiscard]] Network googlenet_network(
    conv::Strategy strategy = conv::Strategy::kUnrolling);

}  // namespace gpucnn::nn
