#include "nn/network.hpp"

namespace gpucnn::nn {

TensorShape Network::output_shape(TensorShape in) const {
  for (const auto& layer : layers_) in = layer->output_shape(in);
  return in;
}

const Tensor& Network::forward(const Tensor& input) {
  check(!layers_.empty(), "network has no layers");
  input_.resize(input.shape());
  std::copy(input.data().begin(), input.data().end(),
            input_.data().begin());
  activations_.resize(layers_.size());
  const Tensor* current = &input_;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->forward(*current, activations_[i]);
    current = &activations_[i];
  }
  has_forward_state_ = true;
  return activations_.back();
}

void Network::backward(const Tensor& grad_output) {
  check(has_forward_state_, "backward requires a preceding forward");
  check(grad_output.shape() == activations_.back().shape(),
        "grad_output shape mismatch");
  Tensor grad = Tensor(grad_output.shape());
  std::copy(grad_output.data().begin(), grad_output.data().end(),
            grad.data().begin());
  Tensor grad_in;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    const Tensor& layer_input = i == 0 ? input_ : activations_[i - 1];
    layers_[i]->backward(layer_input, grad, grad_in);
    std::swap(grad, grad_in);
  }
}

std::vector<Tensor*> Network::parameters() {
  std::vector<Tensor*> out;
  for (const auto& layer : layers_) {
    for (Tensor* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Network::gradients() {
  std::vector<Tensor*> out;
  for (const auto& layer : layers_) {
    for (Tensor* g : layer->gradients()) out.push_back(g);
  }
  return out;
}

void Network::zero_grad() {
  for (const auto& layer : layers_) layer->zero_grad();
}

void Network::set_training(bool training) {
  for (const auto& layer : layers_) layer->set_training(training);
}

void Network::initialize(Rng& rng) {
  for (const auto& layer : layers_) layer->initialize(rng);
}

std::size_t Network::parameter_count() {
  std::size_t count = 0;
  for (Tensor* p : parameters()) count += p->count();
  return count;
}

}  // namespace gpucnn::nn
