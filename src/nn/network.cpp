#include "nn/network.hpp"

#include <algorithm>

#include "nn/activation_layer.hpp"
#include "nn/conv_layer.hpp"
#include "nn/quantized_conv_layer.hpp"
#include "obs/metrics.hpp"

namespace gpucnn::nn {
namespace {

/// Offsets are 64-byte (16-float) aligned so arena slices keep the same
/// alignment guarantee owned tensors get from AlignedAllocator.
constexpr std::size_t kAlignFloats = 16;

std::size_t align_up(std::size_t n) {
  return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}

}  // namespace

TensorShape Network::output_shape(TensorShape in) const {
  for (const auto& layer : layers_) in = layer->output_shape(in);
  return in;
}

void Network::plan_activations(const TensorShape& input_shape) {
  // Lifetime analysis over the sequential schedule: activation i is
  // produced at step i and last read at step i+1 (layer i+1's input), so
  // its interval is [i, i+1] and only adjacent activations ever overlap.
  // The final activation is returned to the caller and stays owned.
  const std::size_t n = layers_.size();
  std::vector<TensorShape> shapes(n);
  TensorShape shape = input_shape;
  naive_bytes_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    shape = layers_[i]->output_shape(shape);
    shapes[i] = shape;
    naive_bytes_ += shape.count() * sizeof(float);
  }

  struct Slot {
    std::size_t offset, size, last_step;
  };
  std::vector<Slot> live;
  std::vector<std::size_t> offsets(n, 0);
  std::size_t arena_floats = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const std::size_t size = align_up(shapes[i].count());
    // Greedy first-fit: lowest offset not overlapping any buffer whose
    // lifetime intersects [i, i+1].
    std::erase_if(live, [i](const Slot& s) { return s.last_step < i; });
    std::sort(live.begin(), live.end(),
              [](const Slot& a, const Slot& b) {
                return a.offset < b.offset;
              });
    std::size_t offset = 0;
    for (const Slot& s : live) {
      if (offset + size <= s.offset) break;
      offset = std::max(offset, s.offset + s.size);
    }
    offsets[i] = offset;
    live.push_back({offset, size, i + 1});
    arena_floats = std::max(arena_floats, offset + size);
  }

  arena_.resize(arena_floats);
  activations_.resize(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    activations_[i].resize({});  // shrink shape before rebinding
    activations_[i].bind_external(arena_.data() + offsets[i],
                                  align_up(shapes[i].count()));
    activations_[i].resize(shapes[i]);
  }
  if (n > 0 && activations_[n - 1].is_view()) activations_[n - 1].unbind();

  planned_bytes_ = arena_floats * sizeof(float) +
                   (n > 0 ? shapes[n - 1].count() * sizeof(float) : 0);
  auto& m = obs::metrics();
  m.gauge("nn.plan.peak_bytes").set(static_cast<double>(planned_bytes_));
  m.gauge("nn.plan.naive_bytes").set(static_cast<double>(naive_bytes_));
  m.gauge("nn.plan.buffers").set(static_cast<double>(n));
}

const Tensor& Network::forward(const Tensor& input) {
  check(!layers_.empty(), "network has no layers");
  const bool planned = memory_planning_ && !training_;
  if (planned) {
    plan_activations(input.shape());
    // Planned forwards stream through the arena: the input is read in
    // place (no defensive copy) and no history survives for backward.
    const Tensor* current = &input;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
      layers_[i]->forward(*current, activations_[i]);
      current = &activations_[i];
    }
    has_forward_state_ = true;
    planned_forward_ = true;
    return activations_.back();
  }

  if (planned_forward_) {
    // Leaving planned mode: drop arena views so training forwards own
    // their activations again.
    for (auto& a : activations_) a.unbind();
    planned_forward_ = false;
  }
  input_.resize(input.shape());
  std::copy(input.data().begin(), input.data().end(),
            input_.data().begin());
  activations_.resize(layers_.size());
  const Tensor* current = &input_;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->forward(*current, activations_[i]);
    current = &activations_[i];
  }
  has_forward_state_ = true;
  return activations_.back();
}

void Network::backward(const Tensor& grad_output) {
  check(has_forward_state_, "backward requires a preceding forward");
  check(!planned_forward_,
        "backward requires an unplanned forward: the activation planner "
        "(set_memory_planning) aliases intermediate buffers and is "
        "inference-only");
  check(grad_output.shape() == activations_.back().shape(),
        "grad_output shape mismatch");
  Tensor grad = Tensor(grad_output.shape());
  std::copy(grad_output.data().begin(), grad_output.data().end(),
            grad.data().begin());
  Tensor grad_in;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    const Tensor& layer_input = i == 0 ? input_ : activations_[i - 1];
    layers_[i]->backward(layer_input, grad, grad_in);
    std::swap(grad, grad_in);
  }
}

std::vector<Tensor*> Network::parameters() {
  std::vector<Tensor*> out;
  for (const auto& layer : layers_) {
    for (Tensor* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Network::gradients() {
  std::vector<Tensor*> out;
  for (const auto& layer : layers_) {
    for (Tensor* g : layer->gradients()) out.push_back(g);
  }
  return out;
}

void Network::zero_grad() {
  for (const auto& layer : layers_) layer->zero_grad();
}

void Network::set_training(bool training) {
  training_ = training;
  for (const auto& layer : layers_) layer->set_training(training);
}

void Network::initialize(Rng& rng) {
  for (const auto& layer : layers_) layer->initialize(rng);
}

std::size_t Network::parameter_count() {
  std::size_t count = 0;
  for (Tensor* p : parameters()) count += p->count();
  return count;
}

void Network::share_parameters(Network& owner) {
  check(&owner != this, "a network cannot share parameters with itself");
  const auto mine = parameters();
  const auto theirs = owner.parameters();
  check(mine.size() == theirs.size(),
        "share_parameters: parameter lists differ — the networks are not "
        "structurally identical");
  for (std::size_t i = 0; i < mine.size(); ++i) {
    check(mine[i]->shape() == theirs[i]->shape(),
          "share_parameters: parameter shape mismatch");
    if (theirs[i]->count() == 0) continue;  // nothing to share
    mine[i]->bind_external(theirs[i]->raw(), theirs[i]->count());
  }
  // Alias the owner's packed weight panels too: the packs reference the
  // owner's parameter buffers, which now back this network's weights as
  // well, so one packed copy serves every sharing network.
  check(layers_.size() == owner.layers_.size(),
        "share_parameters: layer counts differ");
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->adopt_prepack(*owner.layers_[i]);
  }
}

void Network::freeze_for_inference() {
  set_training(false);
  for (const auto& layer : layers_) layer->freeze_for_inference();
}

std::size_t Network::fuse_conv_relu() {
  std::size_t fused = 0;
  for (std::size_t i = 0; i + 1 < layers_.size();) {
    auto* conv = dynamic_cast<ConvLayer*>(layers_[i].get());
    auto* act = dynamic_cast<ActivationLayer*>(layers_[i + 1].get());
    if (conv != nullptr && !conv->fused_relu() && act != nullptr &&
        act->function() == Activation::kRelu) {
      conv->set_fused_relu(true);
      layers_.erase(layers_.begin() +
                    static_cast<std::ptrdiff_t>(i) + 1);
      ++fused;
      continue;  // the erased slot may expose another pair at i
    }
    ++i;
  }
  for (const auto& layer : layers_) fused += layer->fuse_relu_pairs();
  has_forward_state_ = false;  // cached activations no longer line up
  return fused;
}

void Network::enable_autotune(bool on) {
  for (const auto& layer : layers_) layer->set_auto_tune(on);
}

Network::QuantizeReport Network::quantize(
    std::span<const Tensor> calibration,
    quant::Observer::Kind observer_kind) {
  QuantizeReport report;
  std::vector<QuantizedConvLayer*> quantized;
  for (auto& slot : layers_) {
    auto* conv = dynamic_cast<ConvLayer*>(slot.get());
    if (conv == nullptr) continue;
    auto replacement =
        std::make_unique<QuantizedConvLayer>(*conv, observer_kind);
    quantized.push_back(replacement.get());
    slot = std::move(replacement);
  }
  report.layers_quantized = quantized.size();
  if (quantized.empty()) return report;

  // Calibration forwards: quantized layers are still in observe mode,
  // so the whole pass runs fp32 and every observer sees the exact
  // activation distribution its layer will face at inference.
  const bool was_training = training_;
  set_training(false);
  for (const Tensor& batch : calibration) {
    (void)forward(batch);
    ++report.calibration_batches;
  }
  for (QuantizedConvLayer* layer : quantized) {
    layer->freeze();
    report.layers_calibrated += layer->calibrated() ? 1 : 0;
  }
  set_training(was_training);
  has_forward_state_ = false;  // calibration activations are not history
  return report;
}

}  // namespace gpucnn::nn
