// Int8 inference replacement for ConvLayer, installed by
// Network::quantize().
//
// The layer keeps the source layer's fp32 weights (so an fp32 fallback
// and re-calibration stay possible) plus an offline per-channel int8
// copy packed once at freeze(). Activations are quantized per tensor:
// either from a calibrated range — an Observer records the layer's
// input range during the calibration forwards Network::quantize() runs
// — or, when no calibration data was supplied, dynamically from each
// batch's own min/max.
//
// Life cycle: constructed from a ConvLayer the layer starts in observe
// mode (forwards run fp32 and feed the observer); freeze() quantizes
// the weights and pins the activation range; subsequent forwards run
// the int8 path. Output stays fp32 (dequantized in the GEMM epilogue),
// so any layer — including the final classifier — can follow.
//
// Backward throws: quantization is an inference-only transform.
#pragma once

#include "conv/quantized_conv.hpp"
#include "nn/conv_layer.hpp"
#include "quant/quant.hpp"

namespace gpucnn::nn {

class QuantizedConvLayer final : public Layer {
 public:
  /// Copies `source`'s geometry, weights, bias and fused-ReLU /
  /// autotune flags. The layer starts in observe (calibration) mode.
  explicit QuantizedConvLayer(ConvLayer& source,
                              quant::Observer::Kind observer_kind =
                                  quant::Observer::Kind::kMinMax);

  [[nodiscard]] std::string_view type() const override { return "qconv"; }
  [[nodiscard]] TensorShape output_shape(const TensorShape& in)
      const override;

  void forward(const Tensor& in, Tensor& out) override;
  /// Throws Error: the quantized layer cannot train.
  void backward(const Tensor& in, const Tensor& grad_out,
                Tensor& grad_in) override;

  /// The retained fp32 parameters (weight sharing across serving
  /// instances still works; gradients stay empty — nothing trains).
  [[nodiscard]] std::vector<Tensor*> parameters() override {
    return {&weights_, &bias_};
  }

  void set_auto_tune(bool on) override { auto_tune_ = on; }

  /// Packs the int8 weights and pins the activation range from the
  /// observer (when it saw any data; otherwise the layer quantizes
  /// activations dynamically per batch). Idempotent.
  void freeze();
  [[nodiscard]] bool frozen() const { return frozen_; }
  /// True when the activation range came from calibration data.
  [[nodiscard]] bool calibrated() const { return act_frozen_; }

  /// Freezes (if not yet frozen) and packs the int8 weights into igemm
  /// quad tiles; every subsequent forward consumes the cached tiles.
  void freeze_for_inference() override;

  void adopt_prepack(const Layer& owner) override;

  [[nodiscard]] std::shared_ptr<const conv::PackedQFilters> prepacked()
      const {
    return qprepacked_;
  }

  [[nodiscard]] const ConvConfig& geometry() const { return geometry_; }
  [[nodiscard]] bool fused_relu() const { return fused_relu_; }
  /// The frozen activation parameters; meaningful when calibrated().
  [[nodiscard]] const quant::ActQuant& act_quant() const { return aq_; }

 private:
  [[nodiscard]] ConvConfig config_for_batch(std::size_t batch) const;
  void fp32_forward(const ConvConfig& cfg, const conv::ConvEngine& engine,
                    const Tensor& in, Tensor& out) const;

  ConvConfig geometry_;
  Tensor weights_;
  Tensor bias_;
  bool fused_relu_ = false;
  bool auto_tune_ = false;
  bool frozen_ = false;
  bool act_frozen_ = false;
  quant::Observer observer_;
  quant::ActQuant aq_;
  quant::QuantizedFilters qweights_;
  /// Int8 weight tiles packed once by freeze_for_inference; panels
  /// reference qweights_.data, which the layer owns and never rewrites.
  std::shared_ptr<const conv::PackedQFilters> qprepacked_;
};

}  // namespace gpucnn::nn
