// Training-loop helper: the fit/evaluate cycle the examples and tests
// share, with per-step history for convergence checks.
#pragma once

#include <vector>

#include "nn/network.hpp"
#include "nn/sgd.hpp"
#include "nn/synthetic_data.hpp"

namespace gpucnn::nn {

struct TrainStep {
  double loss = 0.0;
  double accuracy = 0.0;
};

struct TrainHistory {
  std::vector<TrainStep> steps;

  [[nodiscard]] double first_loss() const {
    return steps.empty() ? 0.0 : steps.front().loss;
  }
  [[nodiscard]] double last_loss() const {
    return steps.empty() ? 0.0 : steps.back().loss;
  }
  /// Mean loss over the final `window` steps (smooths SGD noise).
  [[nodiscard]] double tail_loss(std::size_t window = 5) const;
};

struct FitOptions {
  std::size_t steps = 100;
  std::size_t batch_size = 32;
  SgdOptions sgd{};
};

/// Runs `options.steps` SGD steps of `net` (which must end in a
/// SoftmaxLayer) on batches drawn from `data`; returns the history.
[[nodiscard]] TrainHistory fit(Network& net, SyntheticDataset& data,
                               const FitOptions& options);

/// Loss and accuracy of the network on one evaluation batch (in
/// inference mode; training mode is restored afterwards).
[[nodiscard]] TrainStep evaluate(Network& net, SyntheticDataset& data,
                                 std::size_t batch_size = 256);

}  // namespace gpucnn::nn
