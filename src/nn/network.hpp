// Sequential network container: owns layers, caches activations for the
// backward pass, exposes parameter/gradient views for the optimiser.
//
// Executor features (all opt-in):
//   * fuse_conv_relu() — rewrites conv -> ReLU layer pairs into a single
//     fused ConvLayer (and fuses pairs inside composite layers), keeping
//     results bit-for-bit identical while removing a full pass over the
//     activation.
//   * enable_autotune() — lets every conv dispatch through the empirical
//     tune::Autotuner.
//   * set_memory_planning() — inference-only activation memory planner:
//     lifetime analysis assigns each intermediate activation an offset in
//     one shared arena (greedy first-fit over lifetime-overlapping
//     intervals), cutting peak activation memory from the sum of all
//     layer outputs to roughly the two largest adjacent ones. Planned
//     forwards keep no per-layer history, so backward() requires a
//     preceding unplanned (training-mode) forward.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "nn/layer.hpp"
#include "quant/quant.hpp"

namespace gpucnn::nn {

class Network {
 public:
  Network() = default;

  /// Appends a layer; returns a reference for further configuration.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  void add(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
  }

  [[nodiscard]] std::size_t size() const { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_.at(i); }
  [[nodiscard]] const Layer& layer(std::size_t i) const {
    return *layers_.at(i);
  }

  /// Output shape after all layers for a given input shape.
  [[nodiscard]] TensorShape output_shape(TensorShape in) const;

  /// Forward pass; keeps activations for backward(). Returns the final
  /// output.
  const Tensor& forward(const Tensor& input);

  /// Backward pass from dL/d(output); requires a preceding forward().
  /// Parameter gradients accumulate inside the layers.
  void backward(const Tensor& grad_output);

  /// All parameters / gradients across layers, pairwise aligned.
  [[nodiscard]] std::vector<Tensor*> parameters();
  [[nodiscard]] std::vector<Tensor*> gradients();

  void zero_grad();
  void set_training(bool training);
  void initialize(Rng& rng);

  /// Total learnable parameter count.
  [[nodiscard]] std::size_t parameter_count();

  /// Rebinds every parameter tensor as a view (Tensor::bind_external)
  /// over the matching parameter of `owner` — a structurally identical
  /// network (same layers, same shapes, e.g. built by the same factory).
  /// Weights are then stored once, however many sharing networks exist:
  /// the serving runtime's concurrent ModelInstances are the motivating
  /// caller. The owner must outlive this network; sharing networks must
  /// not train (their gradients stay private but their weights alias).
  void share_parameters(Network& owner);

  /// Pack-once/execute-many inference preparation: switches to inference
  /// mode and has every conv / FC layer pack its weights into blas
  /// micro-kernel panels (Layer::freeze_for_inference). Subsequent
  /// forwards reuse the cached panels — zero per-call weight packing —
  /// until training resumes (set_training(true) drops the caches).
  void freeze_for_inference();

  /// Fuses every ConvLayer -> ActivationLayer(kRelu) pair (top level and
  /// inside composite layers); returns the number of pairs fused. Safe
  /// to call once, after the network is fully built.
  std::size_t fuse_conv_relu();

  /// Toggles autotuned engine selection on every layer.
  void enable_autotune(bool on = true);

  /// Post-training int8 quantization report.
  struct QuantizeReport {
    std::size_t layers_quantized = 0;   ///< convs rewritten to int8
    std::size_t layers_calibrated = 0;  ///< of those, with observed ranges
    std::size_t calibration_batches = 0;
  };

  /// Rewrites every top-level ConvLayer into an int8 QuantizedConvLayer
  /// (weights quantized per channel offline), runs the given calibration
  /// batches through the network to observe per-layer activation ranges,
  /// then freezes the quantized layers. With no calibration data the
  /// layers quantize activations dynamically per batch. The network
  /// becomes inference-only: backward() through a quantized layer
  /// throws. Call after fuse_conv_relu() so fused ReLUs ride the int8
  /// epilogue. Convs inside composite layers are left in fp32.
  QuantizeReport quantize(std::span<const Tensor> calibration = {},
                          quant::Observer::Kind observer_kind =
                              quant::Observer::Kind::kMinMax);

  /// Toggles the inference activation planner (applies when the network
  /// is in inference mode, i.e. after set_training(false)).
  void set_memory_planning(bool on) { memory_planning_ = on; }
  [[nodiscard]] bool memory_planning() const { return memory_planning_; }

  /// Activation bytes of the last forward: planned (arena + unplanned
  /// tail) vs naive (every activation owned). Valid after a planned
  /// forward; both zero before.
  [[nodiscard]] std::size_t planned_activation_bytes() const {
    return planned_bytes_;
  }
  [[nodiscard]] std::size_t naive_activation_bytes() const {
    return naive_bytes_;
  }

 private:
  void plan_activations(const TensorShape& input_shape);

  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<Tensor> activations_;  ///< activations_[i] = output of layer i
  Tensor input_;                     ///< cached network input
  bool has_forward_state_ = false;
  bool training_ = true;
  bool memory_planning_ = false;
  bool planned_forward_ = false;  ///< last forward used the arena
  std::vector<float, AlignedAllocator<float>> arena_;
  std::size_t planned_bytes_ = 0;
  std::size_t naive_bytes_ = 0;
};

}  // namespace gpucnn::nn
