// Sequential network container: owns layers, caches activations for the
// backward pass, exposes parameter/gradient views for the optimiser.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace gpucnn::nn {

class Network {
 public:
  Network() = default;

  /// Appends a layer; returns a reference for further configuration.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  void add(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
  }

  [[nodiscard]] std::size_t size() const { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_.at(i); }
  [[nodiscard]] const Layer& layer(std::size_t i) const {
    return *layers_.at(i);
  }

  /// Output shape after all layers for a given input shape.
  [[nodiscard]] TensorShape output_shape(TensorShape in) const;

  /// Forward pass; keeps activations for backward(). Returns the final
  /// output.
  const Tensor& forward(const Tensor& input);

  /// Backward pass from dL/d(output); requires a preceding forward().
  /// Parameter gradients accumulate inside the layers.
  void backward(const Tensor& grad_output);

  /// All parameters / gradients across layers, pairwise aligned.
  [[nodiscard]] std::vector<Tensor*> parameters();
  [[nodiscard]] std::vector<Tensor*> gradients();

  void zero_grad();
  void set_training(bool training);
  void initialize(Rng& rng);

  /// Total learnable parameter count.
  [[nodiscard]] std::size_t parameter_count();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<Tensor> activations_;  ///< activations_[i] = output of layer i
  Tensor input_;                     ///< cached network input
  bool has_forward_state_ = false;
};

}  // namespace gpucnn::nn
