#include "quant/quant.hpp"

#include <algorithm>
#include <cmath>

#include "core/cpu_features.hpp"
#include "core/error.hpp"
#include "obs/metrics.hpp"

#if GPUCNN_X86_SIMD
#include <immintrin.h>
#endif

namespace gpucnn::quant {
namespace {

obs::Counter& weight_channels_counter() {
  static obs::Counter& c = obs::metrics().counter("quant.weights.channels");
  return c;
}

obs::Counter& act_tensors_counter() {
  static obs::Counter& c = obs::metrics().counter("quant.acts.tensors");
  return c;
}

obs::Counter& act_clipped_counter() {
  static obs::Counter& c = obs::metrics().counter("quant.acts.clipped");
  return c;
}

// Round-to-nearest (ties away from zero, like std::lround) of x/scale,
// clamped into [0, 255] after the zero-point shift. The comparison
// happens in float space so an arbitrarily large x never reaches a
// float->int conversion it cannot represent (that would be UB). For the
// guarded positive range, floor(x + 0.5) — spelled as a truncating
// cast — equals std::lround; the cast keeps the bulk loop free of libm
// calls so it auto-vectorizes.
std::uint8_t quantize_act_impl(float x, const ActQuant& q) {
  const float shifted =
      x / q.scale + static_cast<float>(q.zero_point);
  if (!(shifted > 0.0F)) return 0;  // also catches NaN
  if (shifted >= 255.0F) return 255;
  return static_cast<std::uint8_t>(
      static_cast<std::int32_t>(shifted + 0.5F));
}

/// Does this element count as clipped? An endpoint value that would
/// round outside [0, 255] does; an endpoint reached exactly does not.
inline bool act_clipped(float shifted) {
  return shifted < -0.5F || shifted >= 255.5F;
}

#if GPUCNN_X86_SIMD
// 8-lane AVX2 twin of quantize_act_impl, bit-identical to the scalar
// path: same division, the clamp in float space before any conversion
// (vmaxps/vminps return their second operand on NaN, so NaN lanes
// become 0 exactly like the scalar `!(shifted > 0)` guard), and
// truncation of shifted + 0.5 for the round.
__attribute__((target("avx2"))) std::size_t quantize_acts_avx2(
    const float* src, std::size_t n, const ActQuant& q,
    std::uint8_t* dst) {
  const __m256 scale = _mm256_set1_ps(q.scale);
  const __m256 zp = _mm256_set1_ps(static_cast<float>(q.zero_point));
  const __m256 zero = _mm256_setzero_ps();
  const __m256 top = _mm256_set1_ps(255.0F);
  const __m256 half = _mm256_set1_ps(0.5F);
  const __m256 clip_lo = _mm256_set1_ps(-0.5F);
  const __m256 clip_hi = _mm256_set1_ps(255.5F);
  std::size_t clipped = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 x = _mm256_loadu_ps(src + i);
    const __m256 shifted =
        _mm256_add_ps(_mm256_div_ps(x, scale), zp);
    const __m256 clamped =
        _mm256_min_ps(_mm256_max_ps(shifted, zero), top);
    const __m256i q32 =
        _mm256_cvttps_epi32(_mm256_add_ps(clamped, half));
    const __m128i p16 =
        _mm_packus_epi32(_mm256_castsi256_si128(q32),
                         _mm256_extracti128_si256(q32, 1));
    const __m128i p8 = _mm_packus_epi16(p16, p16);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + i), p8);
    const __m256 out_of_range = _mm256_or_ps(
        _mm256_cmp_ps(shifted, clip_lo, _CMP_LT_OQ),
        _mm256_cmp_ps(shifted, clip_hi, _CMP_GE_OQ));
    clipped += static_cast<std::size_t>(__builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_ps(out_of_range))));
  }
  for (; i < n; ++i) {
    dst[i] = quantize_act_impl(src[i], q);
    const float shifted =
        src[i] / q.scale + static_cast<float>(q.zero_point);
    clipped += act_clipped(shifted) ? 1 : 0;
  }
  return clipped;
}
#endif  // GPUCNN_X86_SIMD

}  // namespace

void validate(const ActQuant& q) {
  check(std::isfinite(q.scale) && q.scale > 0.0F,
        "activation scale must be positive and finite");
  check(q.zero_point >= 0 && q.zero_point <= kActQMax,
        "activation zero point must lie in [0, 255]");
}

ActQuant choose_act_quant(float lo, float hi) {
  check(std::isfinite(lo) && std::isfinite(hi) && lo <= hi,
        "activation range must be finite and ordered");
  // Widen to include zero so padding (real 0.0) quantizes exactly to
  // the zero point.
  lo = std::min(lo, 0.0F);
  hi = std::max(hi, 0.0F);
  const float range = hi - lo;
  if (range <= 0.0F) return ActQuant{1.0F, 0};
  ActQuant q;
  q.scale = range / static_cast<float>(kActQMax);
  q.zero_point = static_cast<std::int32_t>(std::lround(-lo / q.scale));
  q.zero_point = std::clamp(q.zero_point, 0, kActQMax);
  return q;
}

std::uint8_t quantize_act(float x, const ActQuant& q) {
  validate(q);
  return quantize_act_impl(x, q);
}

std::size_t quantize_acts(std::span<const float> src, const ActQuant& q,
                          std::span<std::uint8_t> dst) {
  check(dst.size() >= src.size(), "quantize_acts destination too small");
  validate(q);
  std::size_t clipped = 0;
#if GPUCNN_X86_SIMD
  if (simd::active() == simd::Level::kAvx2) {
    clipped = quantize_acts_avx2(src.data(), src.size(), q, dst.data());
    act_tensors_counter().add(1);
    act_clipped_counter().add(static_cast<std::int64_t>(clipped));
    return clipped;
  }
#endif
  for (std::size_t i = 0; i < src.size(); ++i) {
    const std::uint8_t v = quantize_act_impl(src[i], q);
    // A value that landed on an endpoint *and* would round outside the
    // range counts as clipped; endpoints reached exactly do not.
    const float shifted =
        src[i] / q.scale + static_cast<float>(q.zero_point);
    clipped += act_clipped(shifted) ? 1 : 0;
    dst[i] = v;
  }
  act_tensors_counter().add(1);
  act_clipped_counter().add(static_cast<std::int64_t>(clipped));
  return clipped;
}

std::uint8_t requantize(float x, const ActQuant& out) {
  validate(out);
  return quantize_act_impl(x, out);
}

QuantizedFilters quantize_filters(std::span<const float> w, std::size_t rows,
                                  std::size_t cols) {
  check(w.size() == rows * cols, "weight matrix size mismatch");
  QuantizedFilters q;
  q.rows = rows;
  q.cols = cols;
  q.data.resize(rows * cols);
  q.scales.resize(rows);
  q.row_sums.resize(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = w.data() + r * cols;
    float absmax = 0.0F;
    for (std::size_t c = 0; c < cols; ++c) {
      absmax = std::max(absmax, std::fabs(row[c]));
    }
    check(std::isfinite(absmax), "weights must be finite to quantize");
    const float scale =
        absmax > 0.0F ? absmax / static_cast<float>(kWeightQMax) : 1.0F;
    q.scales[r] = scale;
    std::int32_t sum = 0;
    std::int8_t* qrow = q.data.data() + r * cols;
    for (std::size_t c = 0; c < cols; ++c) {
      const auto v = static_cast<std::int32_t>(std::lround(row[c] / scale));
      const std::int32_t clamped = std::clamp(v, -kWeightQMax, kWeightQMax);
      qrow[c] = static_cast<std::int8_t>(clamped);
      sum += clamped;
    }
    q.row_sums[r] = sum;
  }
  weight_channels_counter().add(static_cast<std::int64_t>(rows));
  return q;
}

void Observer::observe(std::span<const float> values) {
  if (values.empty()) return;
  float lo = values[0];
  float hi = values[0];
  float absmax = 0.0F;
  for (const float v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    absmax = std::max(absmax, std::fabs(v));
  }
  check(std::isfinite(lo) && std::isfinite(hi),
        "calibration values must be finite");
  min_ = count_ == 0 ? lo : std::min(min_, lo);
  max_ = count_ == 0 ? hi : std::max(max_, hi);
  if (kind_ == Kind::kPercentile) {
    // Grow the histogram range by powers of two, folding existing bins
    // pairwise so earlier observations keep their (coarsened) place.
    while (absmax > bin_top_) {
      for (std::size_t i = 0; i < kBins / 2; ++i) {
        bins_[i] = bins_[2 * i] + bins_[2 * i + 1];
      }
      std::fill(bins_.begin() + kBins / 2, bins_.end(), std::int64_t{0});
      bin_top_ *= 2.0F;
    }
    const float inv_width = static_cast<float>(kBins) / bin_top_;
    for (const float v : values) {
      auto bin = static_cast<std::size_t>(std::fabs(v) * inv_width);
      if (bin >= kBins) bin = kBins - 1;
      ++bins_[bin];
    }
  }
  count_ += values.size();
}

ActQuant Observer::quant() const {
  check(count_ > 0, "observer has seen no values");
  if (kind_ == Kind::kMinMax) return choose_act_quant(min_, max_);
  // Percentile: walk |x| bins until kPercentile of the mass is covered,
  // clip the raw range to that magnitude.
  const auto target = static_cast<double>(count_) * kPercentile;
  double covered = 0.0;
  std::size_t cut = kBins;
  for (std::size_t i = 0; i < kBins; ++i) {
    covered += static_cast<double>(bins_[i]);
    if (covered >= target) {
      cut = i + 1;
      break;
    }
  }
  const float clip =
      bin_top_ * static_cast<float>(cut) / static_cast<float>(kBins);
  return choose_act_quant(std::max(min_, -clip), std::min(max_, clip));
}

}  // namespace gpucnn::quant
