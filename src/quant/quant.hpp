// Int8 quantization primitives for the inference fast path.
//
// The scheme follows the gemmlowp/QNNPACK convention the int8 GEMM in
// src/blas/igemm.* consumes:
//
//   * Weights: per-output-channel symmetric int8. Each filter row f gets
//     its own scale w_scale[f] = absmax_f / kWeightQMax and quantizes to
//     q = round(w / w_scale) in [-kWeightQMax, kWeightQMax]. The range is
//     deliberately ±63 (7 bits), not ±127: the AVX2 kernel multiplies
//     u8 activations against s8 weights with _mm256_maddubs_epi16, which
//     *saturates* its int16 pair sums. With |w_q| <= 63 the worst pair
//     sum is 255*63*2 = 32130 < 32767, so the kernel is exact; the
//     per-channel scales win back most of the lost bit.
//   * Activations: per-tensor asymmetric uint8 with a zero point:
//     q = round(x / scale) + zero_point, zero_point in [0, 255] so that
//     real 0.0 (and thus zero padding) is exactly representable.
//
// The integer accumulator then satisfies
//   sum_k a_q[k] * w_q[k]  =  sum_k (x[k]/s_a + zp) * w_q[k]
// so the real dot product is recovered as
//   s_a * s_w[f] * (acc - zp * row_sum_w[f])
// which is why QuantizedFilters carries per-row q-weight sums.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace gpucnn::quant {

/// Largest quantized weight magnitude. Kept at 63 so the AVX2 maddubs
/// path cannot saturate its int16 intermediates (see header comment).
inline constexpr std::int32_t kWeightQMax = 63;

/// uint8 activation range.
inline constexpr std::int32_t kActQMax = 255;

/// Per-tensor asymmetric uint8 activation quantization parameters.
/// quantize(x) = clamp(round(x / scale) + zero_point, 0, 255).
struct ActQuant {
  float scale = 1.0F;
  std::int32_t zero_point = 0;
};

/// Validates an ActQuant: scale must be positive and finite, the zero
/// point must lie in [0, 255] (a negative zero point cannot arise from
/// choose_act_quant and would silently corrupt the zero-point
/// correction). Throws Error on violation.
void validate(const ActQuant& q);

/// Chooses activation parameters covering [lo, hi]. The range is first
/// widened to include 0 so that zero padding quantizes exactly to the
/// zero point; degenerate ranges get scale 1.
[[nodiscard]] ActQuant choose_act_quant(float lo, float hi);

/// Saturating uint8 cast of an already-shifted integer value.
[[nodiscard]] inline std::uint8_t saturate_u8(std::int32_t v) {
  return static_cast<std::uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
}

/// Saturating int8 cast.
[[nodiscard]] inline std::int8_t saturate_s8(std::int32_t v) {
  return static_cast<std::int8_t>(v < -128 ? -128 : (v > 127 ? 127 : v));
}

/// Quantizes one activation value (round-to-nearest, saturating).
[[nodiscard]] std::uint8_t quantize_act(float x, const ActQuant& q);

/// Dequantizes one activation value.
[[nodiscard]] inline float dequantize_act(std::uint8_t v, const ActQuant& q) {
  return (static_cast<std::int32_t>(v) - q.zero_point) * q.scale;
}

/// Bulk activation quantization: dst[i] = quantize_act(src[i], q).
/// Returns the number of values that clipped to the ends of the uint8
/// range (also accumulated into the quant.acts.clipped counter).
std::size_t quantize_acts(std::span<const float> src, const ActQuant& q,
                          std::span<std::uint8_t> dst);

/// Re-quantizes a dequantized real value into uint8 under `out`:
/// q = clamp(round(x / out.scale) + out.zero_point, 0, 255). Safe for
/// any finite x (the clamp happens before the float->int conversion, so
/// an out-of-range accumulator cannot invoke UB).
[[nodiscard]] std::uint8_t requantize(float x, const ActQuant& out);

/// Per-output-channel symmetrically quantized weight matrix, row-major
/// rows x cols (for convolution: rows = filters of one group, cols =
/// group_channels * k * k).
struct QuantizedFilters {
  std::vector<std::int8_t> data;      ///< rows x cols, |value| <= kWeightQMax
  std::vector<float> scales;          ///< per-row scale, length rows
  std::vector<std::int32_t> row_sums; ///< per-row sum of quantized weights
  std::size_t rows = 0;
  std::size_t cols = 0;
};

/// Quantizes a row-major rows x cols fp32 weight matrix per row
/// (per output channel). All-zero rows get scale 1 and all-zero codes.
[[nodiscard]] QuantizedFilters quantize_filters(std::span<const float> w,
                                                std::size_t rows,
                                                std::size_t cols);

/// Dequantizes one quantized weight.
[[nodiscard]] inline float dequantize_weight(std::int8_t q, float scale) {
  return static_cast<float>(q) * scale;
}

/// Calibration observer: accumulates the value range of every tensor it
/// sees. kMinMax keeps the raw extremes; kPercentile additionally keeps
/// a histogram of |x| (1024 bins, power-of-two range doubling) and clips
/// the range to the 99.9th percentile of |x|, shrugging off outliers.
class Observer {
 public:
  enum class Kind { kMinMax, kPercentile };
  static constexpr std::size_t kBins = 1024;
  static constexpr double kPercentile = 0.999;

  explicit Observer(Kind kind = Kind::kMinMax) : kind_(kind) {}

  void observe(std::span<const float> values);
  [[nodiscard]] bool seen() const { return count_ > 0; }
  [[nodiscard]] float min() const { return min_; }
  [[nodiscard]] float max() const { return max_; }

  /// Activation parameters for the observed range (percentile-clipped
  /// when kind is kPercentile). Requires seen().
  [[nodiscard]] ActQuant quant() const;

 private:
  Kind kind_;
  std::size_t count_ = 0;
  float min_ = 0.0F;
  float max_ = 0.0F;
  float bin_top_ = 1.0F;  ///< |x| covered by the histogram; doubles on overflow
  std::vector<std::int64_t> bins_ = std::vector<std::int64_t>(kBins, 0);
};

}  // namespace gpucnn::quant
