// Level-1 style vector primitives shared by layers and optimisers.
#pragma once

#include <cstddef>
#include <span>

namespace gpucnn::blas {

/// y += alpha * x
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha
void scale(float alpha, std::span<float> x);

/// dot product in double accumulation
[[nodiscard]] double dot(std::span<const float> x, std::span<const float> y);

/// Adds `bias[c]` to every element of channel c for a tensor laid out as
/// (outer, channels, inner) — i.e. NCHW with outer = N and inner = H*W.
void add_bias(std::span<float> data, std::span<const float> bias,
              std::size_t outer, std::size_t channels, std::size_t inner);

/// Accumulates per-channel sums of `data` into `grad` (bias gradient).
void reduce_bias_grad(std::span<const float> data, std::span<float> grad,
                      std::size_t outer, std::size_t channels,
                      std::size_t inner);

}  // namespace gpucnn::blas
