// Single-precision GEMM, the workhorse of unrolling-based convolution.
//
// Two implementations share one interface:
//   * sgemm_naive — triple loop, the correctness oracle.
//   * sgemm       — cache-blocked, panel-packed, parallelised across the
//                   global thread pool. This plays the role cuBLAS plays in
//                   Caffe/Torch-cunn/Theano-CorrMM.
//
// All matrices are row-major. C = alpha * op(A) * op(B) + beta * C.
#pragma once

#include <cstddef>
#include <span>

namespace gpucnn::blas {

/// Whether an operand is used as-is or transposed.
enum class Trans { kNo, kYes };

/// Optional fused epilogue applied to C after its final k update: a
/// per-row bias broadcast (bias[i] added to every element of row i of C)
/// and/or a ReLU clamp, performed in the micro-kernel write-back while
/// the tile is still hot. The operation order matches the unfused
/// sequence (scale, add bias, clamp) exactly, so fused and unfused
/// results are bit-for-bit identical.
struct Epilogue {
  const float* bias = nullptr;  ///< per-row bias, length m; nullptr = none
  bool relu = false;
  [[nodiscard]] bool active() const { return bias != nullptr || relu; }
};

/// Reference GEMM: straightforward triple loop, used as the oracle in tests
/// and as the baseline in the blocking ablation bench.
void sgemm_naive(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
                 std::size_t k, float alpha, std::span<const float> a,
                 std::size_t lda, std::span<const float> b, std::size_t ldb,
                 float beta, std::span<float> c, std::size_t ldc);

/// Blocked, packed, parallel GEMM.
void sgemm(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
           std::size_t k, float alpha, std::span<const float> a,
           std::size_t lda, std::span<const float> b, std::size_t ldb,
           float beta, std::span<float> c, std::size_t ldc);

/// Blocked GEMM with a fused epilogue (bias broadcast + ReLU) applied in
/// the write-back of the final k block. Identical to sgemm followed by
/// the separate bias/ReLU passes, without re-reading C from memory.
void sgemm(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
           std::size_t k, float alpha, std::span<const float> a,
           std::size_t lda, std::span<const float> b, std::size_t ldb,
           float beta, std::span<float> c, std::size_t ldc,
           const Epilogue& epilogue);

/// Convenience for the common dense row-major case with natural leading
/// dimensions (lda = k or m, ldb = n or k, ldc = n).
void sgemm(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
           std::size_t k, float alpha, std::span<const float> a,
           std::span<const float> b, float beta, std::span<float> c);

/// FLOP count of a GEMM call (multiply-add counted as two operations).
[[nodiscard]] constexpr double gemm_flops(std::size_t m, std::size_t n,
                                          std::size_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

}  // namespace gpucnn::blas
