#include "blas/vector_ops.hpp"

#include "core/error.hpp"

namespace gpucnn::blas {

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  check(x.size() == y.size(), "axpy size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(float alpha, std::span<float> x) {
  for (auto& v : x) v *= alpha;
}

double dot(std::span<const float> x, std::span<const float> y) {
  check(x.size() == y.size(), "dot size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += static_cast<double>(x[i]) * y[i];
  }
  return acc;
}

void add_bias(std::span<float> data, std::span<const float> bias,
              std::size_t outer, std::size_t channels, std::size_t inner) {
  check(data.size() == outer * channels * inner, "add_bias size mismatch");
  check(bias.size() == channels, "bias length must equal channel count");
  for (std::size_t o = 0; o < outer; ++o) {
    for (std::size_t ch = 0; ch < channels; ++ch) {
      float* row = data.data() + (o * channels + ch) * inner;
      const float b = bias[ch];
      for (std::size_t i = 0; i < inner; ++i) row[i] += b;
    }
  }
}

void reduce_bias_grad(std::span<const float> data, std::span<float> grad,
                      std::size_t outer, std::size_t channels,
                      std::size_t inner) {
  check(data.size() == outer * channels * inner,
        "reduce_bias_grad size mismatch");
  check(grad.size() == channels, "gradient length must equal channel count");
  for (std::size_t o = 0; o < outer; ++o) {
    for (std::size_t ch = 0; ch < channels; ++ch) {
      const float* row = data.data() + (o * channels + ch) * inner;
      double acc = 0.0;
      for (std::size_t i = 0; i < inner; ++i) acc += row[i];
      grad[ch] += static_cast<float>(acc);
    }
  }
}

}  // namespace gpucnn::blas
