#include "blas/vector_ops.hpp"

#include "core/cpu_features.hpp"
#include "core/error.hpp"

#if GPUCNN_X86_SIMD
#include <immintrin.h>
#endif

namespace gpucnn::blas {
namespace {

#if GPUCNN_X86_SIMD

__attribute__((target("avx2,fma"))) void axpy_avx2(float alpha,
                                                   const float* x, float* y,
                                                   std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vy = _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i),
                                      _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(y + i, vy);
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2,fma"))) void scale_avx2(float alpha, float* x,
                                                    std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(va, _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

// Double-precision accumulation preserved: each 8-float strip is
// widened to two 4-double FMAs, matching the scalar path's accuracy.
__attribute__((target("avx2,fma"))) double dot_avx2(const float* x,
                                                    const float* y,
                                                    std::size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vx = _mm256_loadu_ps(x + i);
    const __m256 vy = _mm256_loadu_ps(y + i);
    acc_lo = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(vx)),
                             _mm256_cvtps_pd(_mm256_castps256_ps128(vy)),
                             acc_lo);
    acc_hi = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(vx, 1)),
                             _mm256_cvtps_pd(_mm256_extractf128_ps(vy, 1)),
                             acc_hi);
  }
  const __m256d acc = _mm256_add_pd(acc_lo, acc_hi);
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) sum += static_cast<double>(x[i]) * y[i];
  return sum;
}

__attribute__((target("avx2,fma"))) void add_scalar_avx2(float* row, float b,
                                                         std::size_t n) {
  const __m256 vb = _mm256_set1_ps(b);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(row + i, _mm256_add_ps(vb, _mm256_loadu_ps(row + i)));
  }
  for (; i < n; ++i) row[i] += b;
}

__attribute__((target("avx2,fma"))) double sum_avx2(const float* row,
                                                    std::size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(row + i);
    acc_lo = _mm256_add_pd(acc_lo,
                           _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
    acc_hi = _mm256_add_pd(acc_hi,
                           _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
  }
  const __m256d acc = _mm256_add_pd(acc_lo, acc_hi);
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) sum += static_cast<double>(row[i]);
  return sum;
}

inline bool use_avx2() { return simd::active() == simd::Level::kAvx2; }

#endif  // GPUCNN_X86_SIMD

}  // namespace

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  check(x.size() == y.size(), "axpy size mismatch");
#if GPUCNN_X86_SIMD
  if (use_avx2()) {
    axpy_avx2(alpha, x.data(), y.data(), x.size());
    return;
  }
#endif
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(float alpha, std::span<float> x) {
#if GPUCNN_X86_SIMD
  if (use_avx2()) {
    scale_avx2(alpha, x.data(), x.size());
    return;
  }
#endif
  for (auto& v : x) v *= alpha;
}

double dot(std::span<const float> x, std::span<const float> y) {
  check(x.size() == y.size(), "dot size mismatch");
#if GPUCNN_X86_SIMD
  if (use_avx2()) return dot_avx2(x.data(), y.data(), x.size());
#endif
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += static_cast<double>(x[i]) * y[i];
  }
  return acc;
}

void add_bias(std::span<float> data, std::span<const float> bias,
              std::size_t outer, std::size_t channels, std::size_t inner) {
  check(data.size() == outer * channels * inner, "add_bias size mismatch");
  check(bias.size() == channels, "bias length must equal channel count");
  for (std::size_t o = 0; o < outer; ++o) {
    for (std::size_t ch = 0; ch < channels; ++ch) {
      float* row = data.data() + (o * channels + ch) * inner;
      const float b = bias[ch];
#if GPUCNN_X86_SIMD
      if (use_avx2()) {
        add_scalar_avx2(row, b, inner);
        continue;
      }
#endif
      for (std::size_t i = 0; i < inner; ++i) row[i] += b;
    }
  }
}

void reduce_bias_grad(std::span<const float> data, std::span<float> grad,
                      std::size_t outer, std::size_t channels,
                      std::size_t inner) {
  check(data.size() == outer * channels * inner,
        "reduce_bias_grad size mismatch");
  check(grad.size() == channels, "gradient length must equal channel count");
  for (std::size_t o = 0; o < outer; ++o) {
    for (std::size_t ch = 0; ch < channels; ++ch) {
      const float* row = data.data() + (o * channels + ch) * inner;
#if GPUCNN_X86_SIMD
      if (use_avx2()) {
        grad[ch] += static_cast<float>(sum_avx2(row, inner));
        continue;
      }
#endif
      double acc = 0.0;
      for (std::size_t i = 0; i < inner; ++i) acc += row[i];
      grad[ch] += static_cast<float>(acc);
    }
  }
}

}  // namespace gpucnn::blas
