#include "blas/igemm.hpp"

#include "blas/packed.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <optional>
#include <type_traits>

#include "core/cpu_features.hpp"
#include "core/error.hpp"
#include "core/thread_pool.hpp"
#include "core/workspace.hpp"
#include "obs/metrics.hpp"

#if GPUCNN_X86_SIMD
#include <immintrin.h>
#endif

namespace gpucnn::blas {
namespace {

// Blocking parameters. The micro tile is 4x16 (4 weight rows, 16
// activation columns, 8 ymm int32 accumulators on AVX2); k advances in
// quads of 4 bytes because maddubs/madd reduce 4 products per int32
// lane per step. kKcI is a multiple of 4; kMcI of 4; kNcI of 16.
constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 16;
constexpr std::size_t kMcI = 96;
constexpr std::size_t kKcI = 1536;

// The packed-operand contract: for each k quad, the B tile stores
// 64 bytes — columns 0..7 x 4 k-bytes, then columns 8..15 x 4 k-bytes —
// and the A tile 16 bytes — rows 0..3 x 4 k-bytes. Zero padding (past
// kc, jn or im) contributes exact zero products, so ragged edges need
// no special casing in the kernels.
struct MicroKernelI {
  void (*fn)(std::size_t quads, const std::uint8_t* __restrict packed_b,
             const std::int8_t* __restrict packed_a,
             std::int32_t* __restrict acc);
};

void micro_kernel_4x16_portable(std::size_t quads,
                                const std::uint8_t* __restrict pb,
                                const std::int8_t* __restrict pa,
                                std::int32_t* __restrict acc) {
  std::memset(acc, 0, kMr * kNr * sizeof(std::int32_t));
  for (std::size_t q = 0; q < quads; ++q) {
    for (std::size_t i = 0; i < kMr; ++i) {
      const std::int8_t* arow = pa + i * 4;
      std::int32_t* accrow = acc + i * kNr;
      for (std::size_t j = 0; j < kNr; ++j) {
        const std::uint8_t* bq = pb + (j < 8 ? j * 4 : 32 + (j - 8) * 4);
        accrow[j] += static_cast<std::int32_t>(arow[0]) * bq[0] +
                     static_cast<std::int32_t>(arow[1]) * bq[1] +
                     static_cast<std::int32_t>(arow[2]) * bq[2] +
                     static_cast<std::int32_t>(arow[3]) * bq[3];
      }
    }
    pa += 16;
    pb += 64;
  }
}

#if GPUCNN_X86_SIMD
// AVX2 4x16 int8 kernel: 8 ymm accumulators (4 rows x 2 vectors of 8
// int32 columns). Per quad step: 2 B loads, then per row a 4-byte
// weight broadcast, maddubs (u8 x s8 -> saturating int16 pair sums; the
// |a| <= 63 precondition keeps every pair sum under 32767, so no
// saturation occurs and the kernel is exact) and madd-by-ones to widen
// the pairs into the int32 accumulators.
__attribute__((target("avx2"))) void micro_kernel_4x16_avx2(
    std::size_t quads, const std::uint8_t* __restrict pb,
    const std::int8_t* __restrict pa, std::int32_t* __restrict acc) {
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i c0[4];
  __m256i c1[4];
#pragma GCC unroll 4
  for (std::size_t i = 0; i < 4; ++i) {
    c0[i] = _mm256_setzero_si256();
    c1[i] = _mm256_setzero_si256();
  }
  for (std::size_t q = 0; q < quads; ++q) {
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb + 32));
    pb += 64;
#pragma GCC unroll 4
    for (std::size_t i = 0; i < 4; ++i) {
      std::int32_t aw;
      std::memcpy(&aw, pa + i * 4, sizeof(aw));
      const __m256i a = _mm256_set1_epi32(aw);
      const __m256i p0 = _mm256_maddubs_epi16(b0, a);
      const __m256i p1 = _mm256_maddubs_epi16(b1, a);
      c0[i] = _mm256_add_epi32(c0[i], _mm256_madd_epi16(p0, ones));
      c1[i] = _mm256_add_epi32(c1[i], _mm256_madd_epi16(p1, ones));
    }
    pa += 16;
  }
#pragma GCC unroll 4
  for (std::size_t i = 0; i < 4; ++i) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i * 16), c0[i]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i * 16 + 8),
                        c1[i]);
  }
}
#endif  // GPUCNN_X86_SIMD

MicroKernelI select_micro_kernel() {
#if GPUCNN_X86_SIMD
  if (simd::active() == simd::Level::kAvx2) {
    return {micro_kernel_4x16_avx2};
  }
#endif
  return {micro_kernel_4x16_portable};
}

obs::Counter& igemm_calls_counter() {
  static obs::Counter& c = obs::metrics().counter("blas.igemm.calls");
  return c;
}

// Packing traffic split by operand: A carries the quantized weights,
// B the quantized activations (see the header's operand convention), so
// the split separates prepack-avoidable weight packing from per-call
// activation packing.
obs::Counter& igemm_bytes_packed_a_counter() {
  static obs::Counter& c =
      obs::metrics().counter("blas.igemm.bytes_packed_a");
  return c;
}

obs::Counter& igemm_bytes_packed_b_counter() {
  static obs::Counter& c =
      obs::metrics().counter("blas.igemm.bytes_packed_b");
  return c;
}

obs::Counter& igemm_prepack_hits_counter() {
  static obs::Counter& c =
      obs::metrics().counter("blas.igemm.prepack_hits");
  return c;
}

obs::Counter& igemm_prepack_bytes_counter() {
  static obs::Counter& c =
      obs::metrics().counter("blas.igemm.prepack_bytes");
  return c;
}

// Packs a kc x jn slice of B at (p0, j0) into one quad-layout tile.
void pack_b_tile(std::span<const std::uint8_t> b, std::size_t ldb,
                 std::size_t p0, std::size_t kc, std::size_t j0,
                 std::size_t jn, std::uint8_t* dst) {
  const std::size_t quads = (kc + 3) / 4;
  for (std::size_t q = 0; q < quads; ++q) {
    std::uint8_t* out = dst + q * 64;
    // Full interior tile: interleave four B rows branch-free (the hot
    // case — ragged k or n edges fall through to the guarded loop).
    if (jn == kNr && q * 4 + 4 <= kc) {
      const std::uint8_t* row = &b[(p0 + q * 4) * ldb + j0];
#pragma GCC unroll 4
      for (std::size_t t = 0; t < 4; ++t, row += ldb) {
        for (std::size_t j = 0; j < 8; ++j) out[j * 4 + t] = row[j];
        for (std::size_t j = 8; j < 16; ++j) {
          out[32 + (j - 8) * 4 + t] = row[j];
        }
      }
      continue;
    }
    for (std::size_t j = 0; j < kNr; ++j) {
      std::uint8_t* cell = out + (j < 8 ? j * 4 : 32 + (j - 8) * 4);
      for (std::size_t t = 0; t < 4; ++t) {
        const std::size_t p = q * 4 + t;
        cell[t] = (j < jn && p < kc) ? b[(p0 + p) * ldb + j0 + j]
                                     : std::uint8_t{0};
      }
    }
  }
}

// Packs an im x kc slice of A at (i0, p0) into one quad-layout tile.
void pack_a_tile(std::span<const std::int8_t> a, std::size_t lda,
                 std::size_t i0, std::size_t im, std::size_t p0,
                 std::size_t kc, std::int8_t* dst) {
  const std::size_t quads = (kc + 3) / 4;
  for (std::size_t q = 0; q < quads; ++q) {
    std::int8_t* out = dst + q * 16;
    for (std::size_t i = 0; i < kMr; ++i) {
      for (std::size_t t = 0; t < 4; ++t) {
        const std::size_t p = q * 4 + t;
        out[i * 4 + t] = (i < im && p < kc) ? a[(i0 + i) * lda + p0 + p]
                                            : std::int8_t{0};
      }
    }
  }
}

// Saturating uint8 re-quantization of one dequantized value. The clamp
// compares in float space before any float->int conversion, so an
// arbitrarily large accumulator can never hit the UB of an
// unrepresentable cast (the classic saturating-cast bug UBSan exists
// to catch).
inline std::uint8_t requantize_u8(float v, float out_scale,
                                  std::int32_t out_zp) {
  const float shifted = v / out_scale + static_cast<float>(out_zp);
  if (!(shifted > 0.0F)) return 0;
  if (shifted >= 255.0F) return 255;
  // floor(x + 0.5) == lround(x) on the guarded positive range; the
  // cast keeps libm out of the write-back loop.
  return static_cast<std::uint8_t>(
      static_cast<std::int32_t>(shifted + 0.5F));
}

// Applies the epilogue to one finished int32 row (stride 1, jn values
// belonging to C row `row`) and stores fp32 or uint8.
template <typename OutT>
void write_final_row(const std::int32_t* acc, std::size_t jn,
                     std::size_t row, const QEpilogue& ep, OutT* out) {
  const float scale = ep.scales[row];
  const std::int32_t off =
      ep.row_offsets != nullptr ? ep.row_offsets[row] : 0;
  const float bias = ep.bias != nullptr ? ep.bias[row] : 0.0F;
  for (std::size_t j = 0; j < jn; ++j) {
    float v = scale * static_cast<float>(acc[j] - off) + bias;
    if (ep.relu && v < 0.0F) v = 0.0F;
    if constexpr (std::is_same_v<OutT, float>) {
      out[j] = v;
    } else {
      out[j] = requantize_u8(v, ep.out_scale, ep.out_zero_point);
    }
  }
}

enum class OutKind { kS32, kF32, kU8 };

struct OutPtr {
  std::int32_t* s32 = nullptr;
  float* f32 = nullptr;
  std::uint8_t* u8 = nullptr;
};

template <typename OutT>
OutT* out_row(const OutPtr& c, std::size_t ldc, std::size_t i,
              std::size_t j) {
  if constexpr (std::is_same_v<OutT, float>) {
    return c.f32 + i * ldc + j;
  } else {
    return c.u8 + i * ldc + j;
  }
}

// `pa` (optional) supplies prepacked weight quad tiles; a pack that no
// longer matches the call (SIMD switch, different dims) is demoted to
// staged packing over the same `a` span, keeping one code shape per
// call so prepacked results are bit-exact by construction.
void igemm_driver(std::size_t m, std::size_t n, std::size_t k,
                  std::span<const std::int8_t> a, std::size_t lda,
                  std::span<const std::uint8_t> b, std::size_t ldb,
                  const QEpilogue* ep, OutKind kind, OutPtr c,
                  std::size_t ldc, const PackedMatrixI8* pa = nullptr) {
  if (m == 0 || n == 0) return;
  check(k <= kMaxIgemmK, "igemm k exceeds the int32 accumulator bound");
  if (kind != OutKind::kS32) {
    check(ep != nullptr && ep->scales != nullptr,
          "igemm epilogue requires per-row scales");
  }
  igemm_calls_counter().add(1);

  // k == 0: the reduction is empty; outputs are the epilogue of zero.
  if (k == 0) {
    ws::Scratch<std::int32_t> zero(n, /*zero=*/true);
    for (std::size_t i = 0; i < m; ++i) {
      if (kind == OutKind::kS32) {
        std::memset(c.s32 + i * ldc, 0, n * sizeof(std::int32_t));
      } else if (kind == OutKind::kF32) {
        write_final_row(zero.data(), n, i, *ep,
                        out_row<float>(c, ldc, i, 0));
      } else {
        write_final_row(zero.data(), n, i, *ep,
                        out_row<std::uint8_t>(c, ldc, i, 0));
      }
    }
    return;
  }

  // Small problems: packing and dispatch overhead dominates; run the
  // naive reduction (into scratch when the output is not int32).
  if (static_cast<double>(m) * static_cast<double>(n) *
          static_cast<double>(k) < 64.0 * 64.0 * 64.0) {
    if (kind == OutKind::kS32) {
      igemm_s32_naive(m, n, k, a, lda, b, ldb,
                      {c.s32, (m - 1) * ldc + n}, ldc);
      return;
    }
    ws::Scratch<std::int32_t> tmp(m * n);
    igemm_s32_naive(m, n, k, a, lda, b, ldb, tmp.span(), n);
    for (std::size_t i = 0; i < m; ++i) {
      if (kind == OutKind::kF32) {
        write_final_row(tmp.data() + i * n, n, i, *ep,
                        out_row<float>(c, ldc, i, 0));
      } else {
        write_final_row(tmp.data() + i * n, n, i, *ep,
                        out_row<std::uint8_t>(c, ldc, i, 0));
      }
    }
    return;
  }

  const MicroKernelI uk = select_micro_kernel();
  if (pa != nullptr && !(pa->valid() && pa->rows() == m &&
                         pa->cols() == k && pa->kc_block() == kKcI)) {
    pa = nullptr;
  }
  if (pa != nullptr) igemm_prepack_hits_counter().add(1);
  const std::size_t a_tiles_total = (m + kMr - 1) / kMr;
  const bool multi_k = k > kKcI;
  // Multi-block reductions stage partial int32 sums (m x n, row stride
  // n); raw-int32 output accumulates straight into C instead.
  std::optional<ws::Scratch<std::int32_t>> staging;
  if (multi_k && kind != OutKind::kS32) staging.emplace(m * n);

  for (std::size_t pc = 0; pc < k; pc += kKcI) {
    const std::size_t kc = std::min(kKcI, k - pc);
    const std::size_t quads = (kc + 3) / 4;
    const bool first = pc == 0;
    const bool last = pc + kc == k;

    const std::size_t n_tiles = (n + kNr - 1) / kNr;
    ws::Scratch<std::uint8_t> packed_b(n_tiles * quads * 64);
    std::uint8_t* pb = packed_b.data();
    parallel_for(
        0, n_tiles,
        [&](std::size_t t) {
          const std::size_t j0 = t * kNr;
          pack_b_tile(b, ldb, pc, kc, j0, std::min(kNr, n - j0),
                      pb + t * quads * 64);
        },
        /*serial_threshold=*/8);
    igemm_bytes_packed_b_counter().add(
        static_cast<std::int64_t>(n_tiles * quads * 64));

    const std::size_t m_blocks = (m + kMcI - 1) / kMcI;
    parallel_for(0, m_blocks, [&](std::size_t block) {
      const std::size_t ic = block * kMcI;
      const std::size_t mc = std::min(kMcI, m - ic);
      const std::size_t m_tiles = (mc + kMr - 1) / kMr;
      ws::Scratch<std::int8_t> packed_a(
          pa == nullptr ? m_tiles * quads * 16 : 0);
      const std::int8_t* pa_tiles = nullptr;
      if (pa == nullptr) {
        for (std::size_t t = 0; t < m_tiles; ++t) {
          const std::size_t i0 = ic + t * kMr;
          pack_a_tile(a, lda, i0, std::min(kMr, m - i0), pc, kc,
                      packed_a.data() + t * quads * 16);
        }
        igemm_bytes_packed_a_counter().add(
            static_cast<std::int64_t>(m_tiles * quads * 16));
        pa_tiles = packed_a.data();
      } else {
        pa_tiles = pa->data() +
                   (pc / kKcI) * a_tiles_total * (kKcI / 4) * 16 +
                   (ic / kMr) * quads * 16;
      }
      alignas(64) std::int32_t acc[kMr * kNr];
      for (std::size_t ti = 0; ti < m_tiles; ++ti) {
        const std::size_t i0 = ic + ti * kMr;
        const std::size_t im = std::min(kMr, m - i0);
        for (std::size_t tj = 0; tj < n_tiles; ++tj) {
          const std::size_t j0 = tj * kNr;
          const std::size_t jn = std::min(kNr, n - j0);
          uk.fn(quads, pb + tj * quads * 64, pa_tiles + ti * quads * 16,
                acc);

          if (kind == OutKind::kS32) {
            for (std::size_t i = 0; i < im; ++i) {
              std::int32_t* crow = c.s32 + (i0 + i) * ldc + j0;
              const std::int32_t* accrow = acc + i * kNr;
              if (first) {
                for (std::size_t j = 0; j < jn; ++j) crow[j] = accrow[j];
              } else {
                for (std::size_t j = 0; j < jn; ++j) crow[j] += accrow[j];
              }
            }
            continue;
          }

          if (multi_k && !last) {
            for (std::size_t i = 0; i < im; ++i) {
              std::int32_t* srow = staging->data() + (i0 + i) * n + j0;
              const std::int32_t* accrow = acc + i * kNr;
              if (first) {
                for (std::size_t j = 0; j < jn; ++j) srow[j] = accrow[j];
              } else {
                for (std::size_t j = 0; j < jn; ++j) srow[j] += accrow[j];
              }
            }
            continue;
          }

          // Final k block: fold staged partials into the registers'
          // spill tile, then dequantize / bias / ReLU / (re-)quantize
          // straight to the output — the int32 never round-trips
          // through an intermediate matrix on the single-block path.
          if (multi_k && !first) {
            for (std::size_t i = 0; i < im; ++i) {
              const std::int32_t* srow =
                  staging->data() + (i0 + i) * n + j0;
              std::int32_t* accrow = acc + i * kNr;
              for (std::size_t j = 0; j < jn; ++j) accrow[j] += srow[j];
            }
          }
          for (std::size_t i = 0; i < im; ++i) {
            if (kind == OutKind::kF32) {
              write_final_row(acc + i * kNr, jn, i0 + i, *ep,
                              out_row<float>(c, ldc, i0 + i, j0));
            } else {
              write_final_row(acc + i * kNr, jn, i0 + i, *ep,
                              out_row<std::uint8_t>(c, ldc, i0 + i, j0));
            }
          }
        }
      }
    });
  }
}

}  // namespace

void igemm_s32_naive(std::size_t m, std::size_t n, std::size_t k,
                     std::span<const std::int8_t> a, std::size_t lda,
                     std::span<const std::uint8_t> b, std::size_t ldb,
                     std::span<std::int32_t> c, std::size_t ldc) {
  check(k <= kMaxIgemmK, "igemm k exceeds the int32 accumulator bound");
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      std::int32_t acc = 0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<std::int32_t>(a[i * lda + p]) *
               static_cast<std::int32_t>(b[p * ldb + j]);
      }
      c[i * ldc + j] = acc;
    }
  }
}

void igemm_s32(std::size_t m, std::size_t n, std::size_t k,
               std::span<const std::int8_t> a, std::size_t lda,
               std::span<const std::uint8_t> b, std::size_t ldb,
               std::span<std::int32_t> c, std::size_t ldc) {
  OutPtr out;
  out.s32 = c.data();
  igemm_driver(m, n, k, a, lda, b, ldb, nullptr, OutKind::kS32, out, ldc);
}

void igemm(std::size_t m, std::size_t n, std::size_t k,
           std::span<const std::int8_t> a, std::size_t lda,
           std::span<const std::uint8_t> b, std::size_t ldb,
           const QEpilogue& ep, std::span<float> c, std::size_t ldc) {
  check(ep.out == QEpilogue::Out::kF32,
        "fp32-output igemm called with a uint8 epilogue");
  OutPtr out;
  out.f32 = c.data();
  igemm_driver(m, n, k, a, lda, b, ldb, &ep, OutKind::kF32, out, ldc);
}

void igemm(std::size_t m, std::size_t n, std::size_t k,
           std::span<const std::int8_t> a, std::size_t lda,
           std::span<const std::uint8_t> b, std::size_t ldb,
           const QEpilogue& ep, std::span<std::uint8_t> c,
           std::size_t ldc) {
  check(ep.out == QEpilogue::Out::kU8,
        "uint8-output igemm called with an fp32 epilogue");
  check(std::isfinite(ep.out_scale) && ep.out_scale > 0.0F,
        "uint8 epilogue needs a positive finite output scale");
  check(ep.out_zero_point >= 0 && ep.out_zero_point <= 255,
        "uint8 epilogue zero point must lie in [0, 255]");
  OutPtr out;
  out.u8 = c.data();
  igemm_driver(m, n, k, a, lda, b, ldb, &ep, OutKind::kU8, out, ldc);
}

PackedMatrixI8 pack_a_i8(std::size_t m, std::size_t k,
                         std::span<const std::int8_t> a, std::size_t lda) {
  PackedMatrixI8 p;
  p.rows_ = m;
  p.cols_ = k;
  p.origin_ = a;
  p.origin_ld_ = lda;
  if (m == 0 || k == 0) return p;
  p.level_ = simd::active();
  p.kc_block_ = kKcI;
  const std::size_t tiles = (m + kMr - 1) / kMr;
  std::size_t total = 0;
  for (std::size_t pc = 0; pc < k; pc += kKcI) {
    const std::size_t kc = std::min(kKcI, k - pc);
    total += tiles * ((kc + 3) / 4) * 16;
  }
  p.data_.resize(total);
  for (std::size_t pc = 0; pc < k; pc += kKcI) {
    const std::size_t kc = std::min(kKcI, k - pc);
    const std::size_t quads = (kc + 3) / 4;
    std::int8_t* block =
        p.data_.data() + (pc / kKcI) * tiles * (kKcI / 4) * 16;
    for (std::size_t t = 0; t < tiles; ++t) {
      const std::size_t i0 = t * kMr;
      pack_a_tile(a, lda, i0, std::min(kMr, m - i0), pc, kc,
                  block + t * quads * 16);
    }
  }
  igemm_prepack_bytes_counter().add(static_cast<std::int64_t>(p.bytes()));
  return p;
}

void igemm_prepacked(std::size_t m, std::size_t n, std::size_t k,
                     const PackedMatrixI8& a,
                     std::span<const std::uint8_t> b, std::size_t ldb,
                     std::span<std::int32_t> c, std::size_t ldc) {
  OutPtr out;
  out.s32 = c.data();
  igemm_driver(m, n, k, a.origin(), a.origin_ld(), b, ldb, nullptr,
               OutKind::kS32, out, ldc, &a);
}

void igemm_prepacked(std::size_t m, std::size_t n, std::size_t k,
                     const PackedMatrixI8& a,
                     std::span<const std::uint8_t> b, std::size_t ldb,
                     const QEpilogue& ep, std::span<float> c,
                     std::size_t ldc) {
  check(ep.out == QEpilogue::Out::kF32,
        "fp32-output igemm called with a uint8 epilogue");
  OutPtr out;
  out.f32 = c.data();
  igemm_driver(m, n, k, a.origin(), a.origin_ld(), b, ldb, &ep,
               OutKind::kF32, out, ldc, &a);
}

void igemm_prepacked(std::size_t m, std::size_t n, std::size_t k,
                     const PackedMatrixI8& a,
                     std::span<const std::uint8_t> b, std::size_t ldb,
                     const QEpilogue& ep, std::span<std::uint8_t> c,
                     std::size_t ldc) {
  check(ep.out == QEpilogue::Out::kU8,
        "uint8-output igemm called with an fp32 epilogue");
  check(std::isfinite(ep.out_scale) && ep.out_scale > 0.0F,
        "uint8 epilogue needs a positive finite output scale");
  check(ep.out_zero_point >= 0 && ep.out_zero_point <= 255,
        "uint8 epilogue zero point must lie in [0, 255]");
  OutPtr out;
  out.u8 = c.data();
  igemm_driver(m, n, k, a.origin(), a.origin_ld(), b, ldb, &ep,
               OutKind::kU8, out, ldc, &a);
}

}  // namespace gpucnn::blas
