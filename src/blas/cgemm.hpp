// Complex single-precision GEMM variants used by FFT-based convolution
// for the per-frequency pointwise product stage (the role fbfft's Cgemm
// kernels play on the GPU).
//
// All matrices are row-major. The three shapes map one-to-one onto the
// three convolution passes (per frequency bin, with N = batch,
// C = channels, F = filters):
//   forward          out(n,f) = sum_c  in(n,c)        * conj(w(f,c))   -> cgemm_nt_conj
//   backward-data    gin(n,c) = sum_f  gout(n,f)      * w(f,c)         -> cgemm_nn
//   backward-filter  gw(f,c)  = sum_n  conj(gout(n,f))* in(n,c)        -> cgemm_ctn
#pragma once

#include <complex>
#include <cstddef>
#include <span>

namespace gpucnn::blas {

using Complex = std::complex<float>;

/// C(i,j) = alpha * sum_p A(i,p) * conj(B(j,p)) + beta * C(i,j).
/// A is m x k (lda), B is n x k (ldb), C is m x n (ldc).
void cgemm_nt_conj(std::size_t m, std::size_t n, std::size_t k,
                   Complex alpha, std::span<const Complex> a, std::size_t lda,
                   std::span<const Complex> b, std::size_t ldb, Complex beta,
                   std::span<Complex> c, std::size_t ldc);

/// C(i,j) = alpha * sum_p A(i,p) * B(p,j) + beta * C(i,j).
/// A is m x k (lda), B is k x n (ldb), C is m x n (ldc).
void cgemm_nn(std::size_t m, std::size_t n, std::size_t k, Complex alpha,
              std::span<const Complex> a, std::size_t lda,
              std::span<const Complex> b, std::size_t ldb, Complex beta,
              std::span<Complex> c, std::size_t ldc);

/// C(i,j) = alpha * sum_p conj(A(p,i)) * B(p,j) + beta * C(i,j).
/// A is k x m (lda), B is k x n (ldb), C is m x n (ldc).
void cgemm_ctn(std::size_t m, std::size_t n, std::size_t k, Complex alpha,
               std::span<const Complex> a, std::size_t lda,
               std::span<const Complex> b, std::size_t ldb, Complex beta,
               std::span<Complex> c, std::size_t ldc);

/// FLOPs of a complex GEMM (one complex multiply-add = 8 real ops).
[[nodiscard]] constexpr double cgemm_flops(std::size_t m, std::size_t n,
                                           std::size_t k) {
  return 8.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

}  // namespace gpucnn::blas
