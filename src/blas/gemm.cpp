#include "blas/gemm.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "core/error.hpp"
#include "core/thread_pool.hpp"

namespace gpucnn::blas {
namespace {

// Blocking parameters (GotoBLAS-style): C is updated in MR x NR micro
// tiles, A is packed in MC x KC panels, B in KC x NC panels. Values chosen
// so the packed A panel fits L2 and a B micro panel fits L1 on typical
// x86 cores; the ablation bench sweeps these.
constexpr std::size_t kMr = 8;
constexpr std::size_t kNr = 8;
constexpr std::size_t kMc = 128;
constexpr std::size_t kKc = 256;
constexpr std::size_t kNc = 2048;

// Logical element accessor honouring the transpose flag: returns
// op(X)(row, col) for an m-by-n logical operand.
inline float element(std::span<const float> x, std::size_t ld, Trans trans,
                     std::size_t row, std::size_t col) {
  return trans == Trans::kNo ? x[row * ld + col] : x[col * ld + row];
}

// Packs a kc x nr slice of op(B) starting at (p0, j0) into `dst` in
// row-of-micro-tile order; columns beyond `jn` are zero padded.
void pack_b_panel(std::span<const float> b, std::size_t ldb, Trans trans_b,
                  std::size_t p0, std::size_t kc, std::size_t j0,
                  std::size_t jn, float* dst) {
  for (std::size_t p = 0; p < kc; ++p) {
    for (std::size_t j = 0; j < kNr; ++j) {
      dst[p * kNr + j] =
          j < jn ? element(b, ldb, trans_b, p0 + p, j0 + j) : 0.0F;
    }
  }
}

// Packs an mr x kc slice of op(A) starting at (i0, p0) into `dst`; rows
// beyond `im` are zero padded.
void pack_a_panel(std::span<const float> a, std::size_t lda, Trans trans_a,
                  std::size_t i0, std::size_t im, std::size_t p0,
                  std::size_t kc, float* dst) {
  for (std::size_t p = 0; p < kc; ++p) {
    for (std::size_t i = 0; i < kMr; ++i) {
      dst[p * kMr + i] =
          i < im ? element(a, lda, trans_a, i0 + i, p0 + p) : 0.0F;
    }
  }
}

// The micro kernel: acc (MR x NR) += packed_a (kc x MR) * packed_b
// (kc x NR). Written so the inner loop vectorises.
void micro_kernel(std::size_t kc, const float* packed_a,
                  const float* packed_b,
                  std::array<float, kMr * kNr>& acc) {
  for (std::size_t p = 0; p < kc; ++p) {
    const float* arow = packed_a + p * kMr;
    const float* brow = packed_b + p * kNr;
    for (std::size_t i = 0; i < kMr; ++i) {
      const float av = arow[i];
      float* accrow = acc.data() + i * kNr;
      for (std::size_t j = 0; j < kNr; ++j) accrow[j] += av * brow[j];
    }
  }
}

}  // namespace

void sgemm_naive(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
                 std::size_t k, float alpha, std::span<const float> a,
                 std::size_t lda, std::span<const float> b, std::size_t ldb,
                 float beta, std::span<float> c, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<double>(element(a, lda, trans_a, i, p)) *
               element(b, ldb, trans_b, p, j);
      }
      float& out = c[i * ldc + j];
      out = alpha * static_cast<float>(acc) + beta * out;
    }
  }
}

void sgemm(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
           std::size_t k, float alpha, std::span<const float> a,
           std::size_t lda, std::span<const float> b, std::size_t ldb,
           float beta, std::span<float> c, std::size_t ldc) {
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0F) {
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) c[i * ldc + j] *= beta;
    }
    return;
  }

  // Small problems: dispatch overhead and packing dominate; fall back.
  if (static_cast<double>(m) * static_cast<double>(n) *
          static_cast<double>(k) < 64.0 * 64.0 * 64.0) {
    sgemm_naive(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c,
                ldc);
    return;
  }

  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t nc = std::min(kNc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kKc) {
      const std::size_t kc = std::min(kKc, k - pc);
      const float beta_block = pc == 0 ? beta : 1.0F;

      // Pack the whole B panel once; row blocks of A proceed in parallel.
      const std::size_t n_tiles = (nc + kNr - 1) / kNr;
      std::vector<float> packed_b(n_tiles * kc * kNr);
      for (std::size_t t = 0; t < n_tiles; ++t) {
        const std::size_t j0 = jc + t * kNr;
        pack_b_panel(b, ldb, trans_b, pc, kc, j0, std::min(kNr, n - j0),
                     packed_b.data() + t * kc * kNr);
      }

      const std::size_t m_blocks = (m + kMc - 1) / kMc;
      parallel_for(0, m_blocks, [&](std::size_t block) {
        const std::size_t ic = block * kMc;
        const std::size_t mc = std::min(kMc, m - ic);
        const std::size_t m_tiles = (mc + kMr - 1) / kMr;
        std::vector<float> packed_a(m_tiles * kc * kMr);
        for (std::size_t t = 0; t < m_tiles; ++t) {
          const std::size_t i0 = ic + t * kMr;
          pack_a_panel(a, lda, trans_a, i0, std::min(kMr, m - i0), pc, kc,
                       packed_a.data() + t * kc * kMr);
        }
        for (std::size_t ti = 0; ti < m_tiles; ++ti) {
          const std::size_t i0 = ic + ti * kMr;
          const std::size_t im = std::min(kMr, m - i0);
          for (std::size_t tj = 0; tj < n_tiles; ++tj) {
            const std::size_t j0 = jc + tj * kNr;
            const std::size_t jn = std::min(kNr, n - j0);
            std::array<float, kMr * kNr> acc{};
            micro_kernel(kc, packed_a.data() + ti * kc * kMr,
                         packed_b.data() + tj * kc * kNr, acc);
            for (std::size_t i = 0; i < im; ++i) {
              float* crow = c.data() + (i0 + i) * ldc + j0;
              for (std::size_t j = 0; j < jn; ++j) {
                crow[j] = alpha * acc[i * kNr + j] + beta_block * crow[j];
              }
            }
          }
        }
      });
    }
  }
}

void sgemm(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
           std::size_t k, float alpha, std::span<const float> a,
           std::span<const float> b, float beta, std::span<float> c) {
  const std::size_t lda = trans_a == Trans::kNo ? k : m;
  const std::size_t ldb = trans_b == Trans::kNo ? n : k;
  sgemm(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, n);
}

}  // namespace gpucnn::blas
