#include "blas/gemm.hpp"

#include <algorithm>
#include <cstring>

#include "blas/packed.hpp"

#include "core/cpu_features.hpp"
#include "core/error.hpp"
#include "core/thread_pool.hpp"
#include "core/workspace.hpp"
#include "obs/metrics.hpp"

#if GPUCNN_X86_SIMD
#include <immintrin.h>
#endif

namespace gpucnn::blas {
namespace {

// Blocking parameters (GotoBLAS-style): C is updated in mr x nr micro
// tiles, A is packed in MC x KC panels, B in KC x NC panels. Values chosen
// so the packed A panel fits L2 and a B micro panel fits L1 on typical
// x86 cores; the ablation bench sweeps these. kMc/kNc are multiples of
// every micro-tile edge (8x8 portable, 6x16 AVX2) so full panels pack
// without ragged tiles.
constexpr std::size_t kMc = 120;
constexpr std::size_t kKc = 256;
constexpr std::size_t kNc = 2048;

// The micro-kernel contract: fn(kc, packed_a, packed_b, acc) fully
// overwrites acc (mr x nr row-major) with packed_a(kc x mr)^T *
// packed_b(kc x nr). Which kernel (and thus which tile shape) runs is
// picked per call from simd::active().
struct MicroKernel {
  std::size_t mr;
  std::size_t nr;
  // __restrict matters: the kernels are called through this pointer, so
  // without it the compiler must assume acc aliases the packed panels
  // and cannot vectorise the accumulation.
  void (*fn)(std::size_t kc, const float* __restrict packed_a,
             const float* __restrict packed_b, float* __restrict acc);
};

// Portable micro kernel (8x8). On GCC/Clang it uses generic vector
// extensions (no ISA-specific intrinsics — the compiler lowers the 4-wide
// ops to whatever the baseline target offers, SSE2 on x86-64, NEON on
// aarch64). Auto-vectorisation is not reliable here: as a standalone
// function reached through a pointer GCC picks a strided scheme ~3x
// slower than this explicit form. Two 4-row halves keep the accumulators
// within 16 vector registers.
#if defined(__GNUC__) || defined(__clang__)
void micro_kernel_8x8_portable(std::size_t kc,
                               const float* __restrict packed_a,
                               const float* __restrict packed_b,
                               float* __restrict acc) {
  constexpr std::size_t mr = 8;
  constexpr std::size_t nr = 8;
  using V4 = float __attribute__((vector_size(16)));
  for (std::size_t ih = 0; ih < mr; ih += 4) {
    V4 c0[4];
    V4 c1[4];
    for (int i = 0; i < 4; ++i) {
      c0[i] = V4{};
      c1[i] = V4{};
    }
    const float* a = packed_a + ih;
    const float* b = packed_b;
    for (std::size_t p = 0; p < kc; ++p) {
      V4 b0;
      V4 b1;
      std::memcpy(&b0, b, sizeof(V4));
      std::memcpy(&b1, b + 4, sizeof(V4));
      for (int i = 0; i < 4; ++i) {
        const V4 av = {a[i], a[i], a[i], a[i]};
        c0[i] += av * b0;
        c1[i] += av * b1;
      }
      a += mr;
      b += nr;
    }
    for (int i = 0; i < 4; ++i) {
      std::memcpy(acc + (ih + i) * nr, &c0[i], sizeof(V4));
      std::memcpy(acc + (ih + i) * nr + 4, &c1[i], sizeof(V4));
    }
  }
}
#else
void micro_kernel_8x8_portable(std::size_t kc, const float* packed_a,
                               const float* packed_b, float* acc) {
  constexpr std::size_t mr = 8;
  constexpr std::size_t nr = 8;
  std::memset(acc, 0, mr * nr * sizeof(float));
  for (std::size_t p = 0; p < kc; ++p) {
    const float* arow = packed_a + p * mr;
    const float* brow = packed_b + p * nr;
    for (std::size_t i = 0; i < mr; ++i) {
      const float av = arow[i];
      float* accrow = acc + i * nr;
      for (std::size_t j = 0; j < nr; ++j) accrow[j] += av * brow[j];
    }
  }
}
#endif

#if GPUCNN_X86_SIMD
// AVX2/FMA micro kernel (6x16): 12 ymm accumulators (6 rows x 2 vectors
// of 8 floats), 2 loads + 6 broadcasts + 12 FMAs per k step — the
// classic Haswell-era register tiling, compiled for avx2+fma via the
// target attribute and selected at runtime.
__attribute__((target("avx2,fma"))) void micro_kernel_6x16_avx2(
    std::size_t kc, const float* __restrict packed_a,
    const float* __restrict packed_b, float* __restrict acc) {
  __m256 c0[6];
  __m256 c1[6];
#pragma GCC unroll 6
  for (std::size_t i = 0; i < 6; ++i) {
    c0[i] = _mm256_setzero_ps();
    c1[i] = _mm256_setzero_ps();
  }
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(packed_b);
    const __m256 b1 = _mm256_loadu_ps(packed_b + 8);
    packed_b += 16;
#pragma GCC unroll 6
    for (std::size_t i = 0; i < 6; ++i) {
      const __m256 a = _mm256_broadcast_ss(packed_a + i);
      c0[i] = _mm256_fmadd_ps(a, b0, c0[i]);
      c1[i] = _mm256_fmadd_ps(a, b1, c1[i]);
    }
    packed_a += 6;
  }
#pragma GCC unroll 6
  for (std::size_t i = 0; i < 6; ++i) {
    _mm256_storeu_ps(acc + i * 16, c0[i]);
    _mm256_storeu_ps(acc + i * 16 + 8, c1[i]);
  }
}
#endif  // GPUCNN_X86_SIMD

MicroKernel select_micro_kernel() {
#if GPUCNN_X86_SIMD
  if (simd::active() == simd::Level::kAvx2) {
    return {6, 16, micro_kernel_6x16_avx2};
  }
#endif
  return {8, 8, micro_kernel_8x8_portable};
}

// Largest mr * nr any kernel uses; micro-tile accumulators live on the
// stack at this size.
constexpr std::size_t kMaxTileElems = 8 * 16;

// Packing traffic split by operand: for the conv engines A is the
// weights and B the im2col'd activations; for FcLayer the roles flip.
// The split lets dashboards separate the weight packing the prepack
// cache eliminates from the unavoidable per-call activation packing.
obs::Counter& bytes_packed_a_counter() {
  static obs::Counter& c =
      obs::metrics().counter("blas.sgemm.bytes_packed_a");
  return c;
}

obs::Counter& bytes_packed_b_counter() {
  static obs::Counter& c =
      obs::metrics().counter("blas.sgemm.bytes_packed_b");
  return c;
}

obs::Counter& prepack_hits_counter() {
  static obs::Counter& c =
      obs::metrics().counter("blas.sgemm.prepack_hits");
  return c;
}

obs::Counter& prepack_bytes_counter() {
  static obs::Counter& c =
      obs::metrics().counter("blas.sgemm.prepack_bytes");
  return c;
}

obs::Counter& epilogue_calls_counter() {
  static obs::Counter& c =
      obs::metrics().counter("blas.sgemm.epilogue_calls");
  return c;
}

obs::Counter& epilogue_elems_counter() {
  static obs::Counter& c =
      obs::metrics().counter("blas.sgemm.epilogue_elems");
  return c;
}

// Logical element accessor honouring the transpose flag: returns
// op(X)(row, col) for an m-by-n logical operand.
inline float element(std::span<const float> x, std::size_t ld, Trans trans,
                     std::size_t row, std::size_t col) {
  return trans == Trans::kNo ? x[row * ld + col] : x[col * ld + row];
}

// Packs a kc x nr slice of op(B) starting at (p0, j0) into `dst` in
// row-of-micro-tile order; columns beyond `jn` are zero padded. The
// no-transpose case copies contiguous rows of B.
void pack_b_panel(std::span<const float> b, std::size_t ldb, Trans trans_b,
                  std::size_t p0, std::size_t kc, std::size_t j0,
                  std::size_t jn, std::size_t nr, float* dst) {
  if (trans_b == Trans::kNo && jn == nr) {
    const float* src = b.data() + p0 * ldb + j0;
    for (std::size_t p = 0; p < kc; ++p) {
      std::memcpy(dst + p * nr, src + p * ldb, nr * sizeof(float));
    }
    return;
  }
  for (std::size_t p = 0; p < kc; ++p) {
    for (std::size_t j = 0; j < nr; ++j) {
      dst[p * nr + j] =
          j < jn ? element(b, ldb, trans_b, p0 + p, j0 + j) : 0.0F;
    }
  }
}

// Packs an mr x kc slice of op(A) starting at (i0, p0) into `dst`; rows
// beyond `im` are zero padded.
void pack_a_panel(std::span<const float> a, std::size_t lda, Trans trans_a,
                  std::size_t i0, std::size_t im, std::size_t p0,
                  std::size_t kc, std::size_t mr, float* dst) {
  for (std::size_t p = 0; p < kc; ++p) {
    for (std::size_t i = 0; i < mr; ++i) {
      dst[p * mr + i] =
          i < im ? element(a, lda, trans_a, i0 + i, p0 + p) : 0.0F;
    }
  }
}

// C-tile writeback: crow = alpha * acc + beta * crow, with beta == 0
// treated as overwrite per BLAS convention (crow may be uninitialised).
inline void write_tile(float* c, std::size_t ldc, const float* acc,
                       std::size_t nr, std::size_t im, std::size_t jn,
                       float alpha, float beta) {
  if (beta == 0.0F) {
    for (std::size_t i = 0; i < im; ++i) {
      float* crow = c + i * ldc;
      const float* accrow = acc + i * nr;
      for (std::size_t j = 0; j < jn; ++j) crow[j] = alpha * accrow[j];
    }
  } else {
    for (std::size_t i = 0; i < im; ++i) {
      float* crow = c + i * ldc;
      const float* accrow = acc + i * nr;
      for (std::size_t j = 0; j < jn; ++j) {
        crow[j] = alpha * accrow[j] + beta * crow[j];
      }
    }
  }
}

// The epilogue on rows [row0, row0 + rows) of C: bias[row] broadcast
// along the row, then the ReLU clamp. Runs after the row's final k
// update — the same scale / add-bias / clamp operation order as the
// unfused add_bias + activation passes, so results are bit-identical.
inline void apply_epilogue(float* c, std::size_t ldc, std::size_t row0,
                           std::size_t rows, std::size_t cols,
                           const Epilogue& ep) {
  for (std::size_t i = 0; i < rows; ++i) {
    float* crow = c + i * ldc;
    if (ep.bias != nullptr) {
      const float b = ep.bias[row0 + i];
      for (std::size_t j = 0; j < cols; ++j) crow[j] += b;
    }
    if (ep.relu) {
      for (std::size_t j = 0; j < cols; ++j) {
        crow[j] = crow[j] > 0.0F ? crow[j] : 0.0F;
      }
    }
  }
}

// beta-only update of an m x n block of C (k == 0 or alpha == 0 paths).
void scale_c(std::size_t m, std::size_t n, float beta, std::span<float> c,
             std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c.data() + i * ldc;
    if (beta == 0.0F) {
      std::memset(crow, 0, n * sizeof(float));
    } else {
      for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
}

// True when `p` can feed the blocked loop in place of staged packing:
// it was packed for the micro-tile shape that will run and describes
// exactly the operand of this call.
bool pack_usable(const PackedMatrix& p, PackedMatrix::Role role,
                 std::size_t rows, std::size_t cols, std::size_t tile) {
  return p.valid() && p.role() == role && p.rows() == rows &&
         p.cols() == cols && p.tile() == tile && p.kc_block() == kKc;
}

// The shared driver behind sgemm and both sgemm_prepacked overloads.
// `pa` / `pb` (either may be null) supply pre-packed panels; a non-null
// pack that fails pack_usable is demoted to staged packing over the
// same a/b spans, so every call runs exactly one code shape and the
// prepacked results are bit-identical by construction.
void sgemm_driver(Trans trans_a, Trans trans_b, std::size_t m,
                  std::size_t n, std::size_t k, float alpha,
                  std::span<const float> a, std::size_t lda,
                  std::span<const float> b, std::size_t ldb, float beta,
                  std::span<float> c, std::size_t ldc, const Epilogue& ep,
                  const PackedMatrix* pa, const PackedMatrix* pb) {
  if (m == 0 || n == 0) return;
  if (ep.active()) {
    epilogue_calls_counter().add(1);
    epilogue_elems_counter().add(static_cast<std::int64_t>(m * n));
  }
  if (k == 0 || alpha == 0.0F) {
    scale_c(m, n, beta, c, ldc);
    if (ep.active()) apply_epilogue(c.data(), ldc, 0, m, n, ep);
    return;
  }

  // Small problems: dispatch overhead and packing dominate; fall back.
  if (static_cast<double>(m) * static_cast<double>(n) *
          static_cast<double>(k) < 64.0 * 64.0 * 64.0) {
    sgemm_naive(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c,
                ldc);
    if (ep.active()) apply_epilogue(c.data(), ldc, 0, m, n, ep);
    return;
  }

  const MicroKernel uk = select_micro_kernel();
  const std::size_t mr = uk.mr;
  const std::size_t nr = uk.nr;

  if (pa != nullptr && !pack_usable(*pa, PackedMatrix::Role::kA, m, k, mr)) {
    pa = nullptr;
  }
  if (pb != nullptr && !pack_usable(*pb, PackedMatrix::Role::kB, k, n, nr)) {
    pb = nullptr;
  }
  if (pa != nullptr || pb != nullptr) prepack_hits_counter().add(1);
  // Global tile counts the pack layouts are blocked by (kNc is a
  // multiple of nr and kMc of mr, so staged windows land on whole
  // global tiles and a window's panels are a contiguous pack slice).
  const std::size_t a_tiles_total = (m + mr - 1) / mr;
  const std::size_t b_tiles_total = (n + nr - 1) / nr;

  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t nc = std::min(kNc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kKc) {
      const std::size_t kc = std::min(kKc, k - pc);
      const float beta_block = pc == 0 ? beta : 1.0F;
      // The epilogue fires only on the write-back that completes a C
      // tile's reduction over k — the tile is hot, bias and ReLU are
      // free bandwidth-wise.
      const bool last_k_block = pc + kc == k;
      const std::size_t block = pc / kKc;  // pc-block index into packs

      // Pack the whole B panel once (tiles in parallel) — or take the
      // k-block's slice of the prepacked panels; row blocks of A then
      // proceed in parallel against the shared panel.
      const std::size_t n_tiles = (nc + nr - 1) / nr;
      ws::Scratch<float> packed_b(pb == nullptr ? n_tiles * kc * nr : 0);
      const float* pb_panel = nullptr;
      if (pb == nullptr) {
        float* dst = packed_b.data();
        parallel_for(
            0, n_tiles,
            [&](std::size_t t) {
              const std::size_t j0 = jc + t * nr;
              pack_b_panel(b, ldb, trans_b, pc, kc, j0,
                           std::min(nr, n - j0), nr, dst + t * kc * nr);
            },
            /*serial_threshold=*/8);
        bytes_packed_b_counter().add(
            static_cast<std::int64_t>(n_tiles * kc * nr * sizeof(float)));
        pb_panel = dst;
      } else {
        pb_panel = pb->data() + block * b_tiles_total * kKc * nr +
                   (jc / nr) * kc * nr;
      }

      const std::size_t m_blocks = (m + kMc - 1) / kMc;
      parallel_for(0, m_blocks, [&](std::size_t mb) {
        const std::size_t ic = mb * kMc;
        const std::size_t mc = std::min(kMc, m - ic);
        const std::size_t m_tiles = (mc + mr - 1) / mr;
        ws::Scratch<float> packed_a(pa == nullptr ? m_tiles * kc * mr : 0);
        const float* pa_panel = nullptr;
        if (pa == nullptr) {
          for (std::size_t t = 0; t < m_tiles; ++t) {
            const std::size_t i0 = ic + t * mr;
            pack_a_panel(a, lda, trans_a, i0, std::min(mr, m - i0), pc, kc,
                         mr, packed_a.data() + t * kc * mr);
          }
          bytes_packed_a_counter().add(static_cast<std::int64_t>(
              m_tiles * kc * mr * sizeof(float)));
          pa_panel = packed_a.data();
        } else {
          pa_panel = pa->data() + block * a_tiles_total * kKc * mr +
                     (ic / mr) * kc * mr;
        }
        alignas(64) float acc[kMaxTileElems];
        for (std::size_t ti = 0; ti < m_tiles; ++ti) {
          const std::size_t i0 = ic + ti * mr;
          const std::size_t im = std::min(mr, m - i0);
          for (std::size_t tj = 0; tj < n_tiles; ++tj) {
            const std::size_t j0 = jc + tj * nr;
            const std::size_t jn = std::min(nr, n - j0);
            uk.fn(kc, pa_panel + ti * kc * mr, pb_panel + tj * kc * nr,
                  acc);
            write_tile(c.data() + i0 * ldc + j0, ldc, acc, nr, im, jn,
                       alpha, beta_block);
            if (last_k_block && ep.active()) {
              apply_epilogue(c.data() + i0 * ldc + j0, ldc, i0, im, jn, ep);
            }
          }
        }
      });
    }
  }
}

}  // namespace

void sgemm_naive(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
                 std::size_t k, float alpha, std::span<const float> a,
                 std::size_t lda, std::span<const float> b, std::size_t ldb,
                 float beta, std::span<float> c, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<double>(element(a, lda, trans_a, i, p)) *
               element(b, ldb, trans_b, p, j);
      }
      float& out = c[i * ldc + j];
      // beta == 0 overwrites: `out` may hold garbage or NaN.
      out = beta == 0.0F ? alpha * static_cast<float>(acc)
                         : alpha * static_cast<float>(acc) + beta * out;
    }
  }
}

void sgemm(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
           std::size_t k, float alpha, std::span<const float> a,
           std::size_t lda, std::span<const float> b, std::size_t ldb,
           float beta, std::span<float> c, std::size_t ldc) {
  sgemm(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
        Epilogue{});
}

void sgemm(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
           std::size_t k, float alpha, std::span<const float> a,
           std::size_t lda, std::span<const float> b, std::size_t ldb,
           float beta, std::span<float> c, std::size_t ldc,
           const Epilogue& ep) {
  sgemm_driver(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c,
               ldc, ep, nullptr, nullptr);
}

void sgemm(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
           std::size_t k, float alpha, std::span<const float> a,
           std::span<const float> b, float beta, std::span<float> c) {
  const std::size_t lda = trans_a == Trans::kNo ? k : m;
  const std::size_t ldb = trans_b == Trans::kNo ? n : k;
  sgemm(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, n);
}

PackedMatrix pack_a(Trans trans_a, std::size_t m, std::size_t k,
                    std::span<const float> a, std::size_t lda) {
  PackedMatrix p;
  p.role_ = PackedMatrix::Role::kA;
  p.trans_ = trans_a;
  p.rows_ = m;
  p.cols_ = k;
  p.origin_ = a;
  p.origin_ld_ = lda;
  if (m == 0 || k == 0) return p;
  const MicroKernel uk = select_micro_kernel();
  const std::size_t mr = uk.mr;
  p.level_ = simd::active();
  p.tile_ = mr;
  p.kc_block_ = kKc;
  const std::size_t tiles = (m + mr - 1) / mr;
  p.data_.resize(tiles * mr * k);  // sum over k blocks of tiles*kc*mr
  for (std::size_t pc = 0; pc < k; pc += kKc) {
    const std::size_t kc = std::min(kKc, k - pc);
    float* block = p.data_.data() + (pc / kKc) * tiles * kKc * mr;
    for (std::size_t t = 0; t < tiles; ++t) {
      const std::size_t i0 = t * mr;
      pack_a_panel(a, lda, trans_a, i0, std::min(mr, m - i0), pc, kc, mr,
                   block + t * kc * mr);
    }
  }
  prepack_bytes_counter().add(static_cast<std::int64_t>(p.bytes()));
  return p;
}

PackedMatrix pack_b(Trans trans_b, std::size_t k, std::size_t n,
                    std::span<const float> b, std::size_t ldb) {
  PackedMatrix p;
  p.role_ = PackedMatrix::Role::kB;
  p.trans_ = trans_b;
  p.rows_ = k;
  p.cols_ = n;
  p.origin_ = b;
  p.origin_ld_ = ldb;
  if (k == 0 || n == 0) return p;
  const MicroKernel uk = select_micro_kernel();
  const std::size_t nr = uk.nr;
  p.level_ = simd::active();
  p.tile_ = nr;
  p.kc_block_ = kKc;
  const std::size_t tiles = (n + nr - 1) / nr;
  p.data_.resize(tiles * nr * k);
  for (std::size_t pc = 0; pc < k; pc += kKc) {
    const std::size_t kc = std::min(kKc, k - pc);
    float* block = p.data_.data() + (pc / kKc) * tiles * kKc * nr;
    for (std::size_t t = 0; t < tiles; ++t) {
      const std::size_t j0 = t * nr;
      pack_b_panel(b, ldb, trans_b, pc, kc, j0, std::min(nr, n - j0), nr,
                   block + t * kc * nr);
    }
  }
  prepack_bytes_counter().add(static_cast<std::int64_t>(p.bytes()));
  return p;
}

void sgemm_prepacked(std::size_t m, std::size_t n, std::size_t k,
                     float alpha, const PackedMatrix& a, Trans trans_b,
                     std::span<const float> b, std::size_t ldb, float beta,
                     std::span<float> c, std::size_t ldc,
                     const Epilogue& ep) {
  sgemm_driver(a.trans(), trans_b, m, n, k, alpha, a.origin(),
               a.origin_ld(), b, ldb, beta, c, ldc, ep, &a, nullptr);
}

void sgemm_prepacked(Trans trans_a, std::size_t m, std::size_t n,
                     std::size_t k, float alpha, std::span<const float> a,
                     std::size_t lda, const PackedMatrix& b, float beta,
                     std::span<float> c, std::size_t ldc,
                     const Epilogue& ep) {
  sgemm_driver(trans_a, b.trans(), m, n, k, alpha, a, lda, b.origin(),
               b.origin_ld(), beta, c, ldc, ep, nullptr, &b);
}

}  // namespace gpucnn::blas
