// Int8 GEMM for the quantized inference path: C = A(s8) * B(u8) with
// int32 accumulation, mirroring the fp32 sgemm next door.
//
// Operand convention (chosen to fit _mm256_maddubs_epi16, whose first
// operand is unsigned and second signed):
//   A: row-major m x k, int8 quantized *weights*, |a| <= 63
//      (quant::kWeightQMax — the bound that makes the AVX2 kernel's
//      int16 intermediates saturation-free, hence exact).
//   B: row-major k x n, uint8 quantized *activations* (full 0..255).
//
// Accumulators are int32; k must stay below kMaxK so a full reduction
// cannot overflow (255 * 63 * kMaxK < 2^31).
//
// The fused write-back (QEpilogue) performs, per row r of C and in this
// order, exactly what a quantized conv layer needs:
//   acc'  = acc - row_offsets[r]          (activation zero-point correction)
//   real  = scales[r] * acc' + bias[r]    (dequantize, add fp32 bias)
//   real  = max(real, 0)                  (optional ReLU)
//   out   = real                          (Out::kF32), or
//   out   = sat_u8(round(real / out_scale) + out_zero_point)  (Out::kU8)
// applied in-register on the hot tile — there is no intermediate fp32
// or int32 matrix in memory on the single-k-block path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace gpucnn::blas {

/// Largest k an int8 GEMM may reduce over without risking int32
/// accumulator overflow (255 * 63 * k < 2^31).
inline constexpr std::size_t kMaxIgemmK = 133000;

/// Fused dequantize / bias / ReLU / re-quantize write-back.
struct QEpilogue {
  const float* scales = nullptr;        ///< per-row dequant scale, required
  const std::int32_t* row_offsets = nullptr;  ///< per-row zp correction
  const float* bias = nullptr;          ///< per-row fp32 bias, optional
  bool relu = false;
  enum class Out { kF32, kU8 };
  Out out = Out::kF32;
  float out_scale = 1.0F;               ///< Out::kU8 only
  std::int32_t out_zero_point = 0;      ///< Out::kU8 only
};

/// Reference triple loop, the exactness oracle: c = a * b (overwrite),
/// int32 accumulation.
void igemm_s32_naive(std::size_t m, std::size_t n, std::size_t k,
                     std::span<const std::int8_t> a, std::size_t lda,
                     std::span<const std::uint8_t> b, std::size_t ldb,
                     std::span<std::int32_t> c, std::size_t ldc);

/// Blocked, packed, parallel int8 GEMM with raw int32 output
/// (overwrite). Bit-exact against igemm_s32_naive for |a| <= 63.
void igemm_s32(std::size_t m, std::size_t n, std::size_t k,
               std::span<const std::int8_t> a, std::size_t lda,
               std::span<const std::uint8_t> b, std::size_t ldb,
               std::span<std::int32_t> c, std::size_t ldc);

/// Blocked int8 GEMM with the fused epilogue, fp32 output
/// (ep.out must be Out::kF32).
void igemm(std::size_t m, std::size_t n, std::size_t k,
           std::span<const std::int8_t> a, std::size_t lda,
           std::span<const std::uint8_t> b, std::size_t ldb,
           const QEpilogue& ep, std::span<float> c, std::size_t ldc);

/// Blocked int8 GEMM with the fused epilogue, re-quantized uint8 output
/// (ep.out must be Out::kU8).
void igemm(std::size_t m, std::size_t n, std::size_t k,
           std::span<const std::int8_t> a, std::size_t lda,
           std::span<const std::uint8_t> b, std::size_t ldb,
           const QEpilogue& ep, std::span<std::uint8_t> c, std::size_t ldc);

}  // namespace gpucnn::blas
