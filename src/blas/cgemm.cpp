#include "blas/cgemm.hpp"

#include "core/cpu_features.hpp"

#if GPUCNN_X86_SIMD
#include <immintrin.h>
#endif

namespace gpucnn::blas {
namespace {

// Generic kernel over an element accessor for B so the three access
// patterns share one implementation. The per-frequency matrices in FFT
// convolution are small (dimensions are batch/channels/filters), so a
// clean double loop with contiguous A rows is sufficient; the heavy
// lifting is the sheer number of frequency bins, which the caller
// parallelises. The AVX2 paths below accelerate the inner products on
// machines that have FMA; this scalar form is the portable fallback and
// the oracle for both.
template <typename AccessA, typename AccessB>
void cgemm_generic(std::size_t m, std::size_t n, std::size_t k,
                   Complex alpha, AccessA access_a, AccessB access_b,
                   Complex beta, std::span<Complex> c, std::size_t ldc) {
  const bool overwrite = beta == Complex{0.0F, 0.0F};
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      Complex acc{0.0F, 0.0F};
      for (std::size_t p = 0; p < k; ++p) {
        acc += access_a(i, p) * access_b(p, j);
      }
      Complex& out = c[i * ldc + j];
      // beta == 0 overwrites: `out` may hold garbage or NaN.
      out = overwrite ? alpha * acc : alpha * acc + beta * out;
    }
  }
}

#if GPUCNN_X86_SIMD

// std::complex<float> guarantees array-compatible layout (re, im), so
// the vector kernels view complex spans as interleaved float arrays.
inline const float* as_floats(std::span<const Complex> x) {
  return reinterpret_cast<const float*>(x.data());
}
inline float* as_floats(std::span<Complex> x) {
  return reinterpret_cast<float*>(x.data());
}

// Interleaved complex multiply of 4 complex pairs: for each pair
// (a, b) -> (ar*br - ai*bi, ar*bi + ai*br).
__attribute__((target("avx2,fma"))) inline __m256 cmul4(__m256 a, __m256 b) {
  const __m256 br = _mm256_moveldup_ps(b);           // (br, br, ...)
  const __m256 bi = _mm256_movehdup_ps(b);           // (bi, bi, ...)
  const __m256 a_swap = _mm256_permute_ps(a, 0xB1);  // (ai, ar, ...)
  // fmaddsub: even lanes a*br - ai*bi, odd lanes a*br + ar*bi.
  return _mm256_fmaddsub_ps(a, br, _mm256_mul_ps(a_swap, bi));
}

// forward pointwise product: rows of A and B are contiguous over p, and
// conj(B) turns the complex inner product into two real dot products:
//   Re = sum(ar*br + ai*bi)  — the plain float dot of the two rows;
//   Im = sum(ai*br - ar*bi)  — the dot of swapped A against sign-flipped B.
__attribute__((target("avx2,fma"))) void cgemm_nt_conj_avx2(
    std::size_t m, std::size_t n, std::size_t k, Complex alpha,
    std::span<const Complex> a, std::size_t lda, std::span<const Complex> b,
    std::size_t ldb, Complex beta, std::span<Complex> c, std::size_t ldc) {
  const bool overwrite = beta == Complex{0.0F, 0.0F};
  const float* af = as_floats(a);
  const float* bf = as_floats(b);
  // Sign mask flipping even (real-slot) lanes: applied to the swapped
  // product so Im accumulates ai*br - ar*bi.
  const __m256 neg_even = _mm256_setr_ps(-0.0F, 0.0F, -0.0F, 0.0F, -0.0F,
                                         0.0F, -0.0F, 0.0F);
  const std::size_t kv = (2 * k) / 8 * 8;  // floats handled vectorised
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = af + 2 * i * lda;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = bf + 2 * j * ldb;
      __m256 acc_re = _mm256_setzero_ps();
      __m256 acc_im = _mm256_setzero_ps();
      for (std::size_t f = 0; f < kv; f += 8) {
        const __m256 va = _mm256_loadu_ps(arow + f);
        const __m256 vb = _mm256_loadu_ps(brow + f);
        acc_re = _mm256_fmadd_ps(va, vb, acc_re);
        const __m256 vb_swap =
            _mm256_xor_ps(_mm256_permute_ps(vb, 0xB1), neg_even);
        acc_im = _mm256_fmadd_ps(va, vb_swap, acc_im);
      }
      // Horizontal sums of both accumulators.
      alignas(32) float re_l[8];
      alignas(32) float im_l[8];
      _mm256_store_ps(re_l, acc_re);
      _mm256_store_ps(im_l, acc_im);
      float re = re_l[0] + re_l[1] + re_l[2] + re_l[3] + re_l[4] + re_l[5] +
                 re_l[6] + re_l[7];
      float im = im_l[0] + im_l[1] + im_l[2] + im_l[3] + im_l[4] + im_l[5] +
                 im_l[6] + im_l[7];
      for (std::size_t p = kv / 2; p < k; ++p) {
        const float ar = arow[2 * p];
        const float ai = arow[2 * p + 1];
        const float br = brow[2 * p];
        const float bi = brow[2 * p + 1];
        re += ar * br + ai * bi;
        im += ai * br - ar * bi;
      }
      const Complex acc{re, im};
      Complex& out = c[i * ldc + j];
      out = overwrite ? alpha * acc : alpha * acc + beta * out;
    }
  }
}

// nn / ctn kernels vectorise over j (columns of C): C's row and B's row
// p are contiguous in j, and op(A)(i, p) broadcasts as one complex.
// acc_row must hold 2*n floats; computes acc(i, :) = sum_p a(i,p)*B(p,:).
__attribute__((target("avx2,fma"))) void cgemm_rowwise_avx2(
    std::size_t m, std::size_t n, std::size_t k, Complex alpha,
    const Complex* a_elems /* m x k, row-major, pre-op */, Complex beta,
    std::span<const Complex> b, std::size_t ldb, std::span<Complex> c,
    std::size_t ldc) {
  const bool overwrite = beta == Complex{0.0F, 0.0F};
  const float* bf = as_floats(b);
  const std::size_t nv = (2 * n) / 8 * 8;
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = as_floats(c) + 2 * i * ldc;
    // Vectorised lanes accumulate in registers per 8-float strip.
    for (std::size_t f = 0; f < nv; f += 8) {
      __m256 acc = _mm256_setzero_ps();
      for (std::size_t p = 0; p < k; ++p) {
        const Complex av = a_elems[i * k + p];
        const __m256 va = _mm256_castpd_ps(_mm256_broadcast_sd(
            reinterpret_cast<const double*>(&av)));
        acc = _mm256_add_ps(
            acc, cmul4(va, _mm256_loadu_ps(bf + 2 * p * ldb + f)));
      }
      const Complex al = alpha;
      const __m256 valpha = _mm256_castpd_ps(
          _mm256_broadcast_sd(reinterpret_cast<const double*>(&al)));
      __m256 out = cmul4(valpha, acc);
      if (!overwrite) {
        const Complex be = beta;
        const __m256 vbeta = _mm256_castpd_ps(
            _mm256_broadcast_sd(reinterpret_cast<const double*>(&be)));
        out = _mm256_add_ps(out, cmul4(vbeta, _mm256_loadu_ps(crow + f)));
      }
      _mm256_storeu_ps(crow + f, out);
    }
    for (std::size_t j = nv / 2; j < n; ++j) {
      Complex acc{0.0F, 0.0F};
      for (std::size_t p = 0; p < k; ++p) {
        acc += a_elems[i * k + p] * b[p * ldb + j];
      }
      Complex& out = c[i * ldc + j];
      out = overwrite ? alpha * acc : alpha * acc + beta * out;
    }
  }
}

// The rowwise kernel wants op(A) rows contiguous; gather them into a
// small stack/heap staging area (matrices here are tiny — dimensions
// are batch/channels/filters).
constexpr std::size_t kStageElems = 64 * 64;

#endif  // GPUCNN_X86_SIMD

}  // namespace

void cgemm_nt_conj(std::size_t m, std::size_t n, std::size_t k,
                   Complex alpha, std::span<const Complex> a, std::size_t lda,
                   std::span<const Complex> b, std::size_t ldb, Complex beta,
                   std::span<Complex> c, std::size_t ldc) {
#if GPUCNN_X86_SIMD
  if (simd::active() == simd::Level::kAvx2 && k >= 4) {
    cgemm_nt_conj_avx2(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    return;
  }
#endif
  cgemm_generic(
      m, n, k, alpha,
      [&](std::size_t i, std::size_t p) { return a[i * lda + p]; },
      [&](std::size_t p, std::size_t j) { return std::conj(b[j * ldb + p]); },
      beta, c, ldc);
}

void cgemm_nn(std::size_t m, std::size_t n, std::size_t k, Complex alpha,
              std::span<const Complex> a, std::size_t lda,
              std::span<const Complex> b, std::size_t ldb, Complex beta,
              std::span<Complex> c, std::size_t ldc) {
#if GPUCNN_X86_SIMD
  if (simd::active() == simd::Level::kAvx2 && n >= 4 &&
      m * k <= kStageElems) {
    Complex stage[kStageElems];
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t p = 0; p < k; ++p) stage[i * k + p] = a[i * lda + p];
    }
    cgemm_rowwise_avx2(m, n, k, alpha, stage, beta, b, ldb, c, ldc);
    return;
  }
#endif
  cgemm_generic(
      m, n, k, alpha,
      [&](std::size_t i, std::size_t p) { return a[i * lda + p]; },
      [&](std::size_t p, std::size_t j) { return b[p * ldb + j]; }, beta, c,
      ldc);
}

void cgemm_ctn(std::size_t m, std::size_t n, std::size_t k, Complex alpha,
               std::span<const Complex> a, std::size_t lda,
               std::span<const Complex> b, std::size_t ldb, Complex beta,
               std::span<Complex> c, std::size_t ldc) {
#if GPUCNN_X86_SIMD
  if (simd::active() == simd::Level::kAvx2 && n >= 4 &&
      m * k <= kStageElems) {
    Complex stage[kStageElems];
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t p = 0; p < k; ++p) {
        stage[i * k + p] = std::conj(a[p * lda + i]);
      }
    }
    cgemm_rowwise_avx2(m, n, k, alpha, stage, beta, b, ldb, c, ldc);
    return;
  }
#endif
  cgemm_generic(
      m, n, k, alpha,
      [&](std::size_t i, std::size_t p) { return std::conj(a[p * lda + i]); },
      [&](std::size_t p, std::size_t j) { return b[p * ldb + j]; }, beta, c,
      ldc);
}

}  // namespace gpucnn::blas
