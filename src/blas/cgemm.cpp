#include "blas/cgemm.hpp"

namespace gpucnn::blas {
namespace {

// Generic kernel over an element accessor for B so the three access
// patterns share one implementation. The per-frequency matrices in FFT
// convolution are small (dimensions are batch/channels/filters), so a
// clean double loop with contiguous A rows is sufficient; the heavy
// lifting is the sheer number of frequency bins, which the caller
// parallelises.
template <typename AccessA, typename AccessB>
void cgemm_generic(std::size_t m, std::size_t n, std::size_t k,
                   Complex alpha, AccessA access_a, AccessB access_b,
                   Complex beta, std::span<Complex> c, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      Complex acc{0.0F, 0.0F};
      for (std::size_t p = 0; p < k; ++p) {
        acc += access_a(i, p) * access_b(p, j);
      }
      Complex& out = c[i * ldc + j];
      out = alpha * acc + beta * out;
    }
  }
}

}  // namespace

void cgemm_nt_conj(std::size_t m, std::size_t n, std::size_t k,
                   Complex alpha, std::span<const Complex> a, std::size_t lda,
                   std::span<const Complex> b, std::size_t ldb, Complex beta,
                   std::span<Complex> c, std::size_t ldc) {
  cgemm_generic(
      m, n, k, alpha,
      [&](std::size_t i, std::size_t p) { return a[i * lda + p]; },
      [&](std::size_t p, std::size_t j) { return std::conj(b[j * ldb + p]); },
      beta, c, ldc);
}

void cgemm_nn(std::size_t m, std::size_t n, std::size_t k, Complex alpha,
              std::span<const Complex> a, std::size_t lda,
              std::span<const Complex> b, std::size_t ldb, Complex beta,
              std::span<Complex> c, std::size_t ldc) {
  cgemm_generic(
      m, n, k, alpha,
      [&](std::size_t i, std::size_t p) { return a[i * lda + p]; },
      [&](std::size_t p, std::size_t j) { return b[p * ldb + j]; }, beta, c,
      ldc);
}

void cgemm_ctn(std::size_t m, std::size_t n, std::size_t k, Complex alpha,
               std::span<const Complex> a, std::size_t lda,
               std::span<const Complex> b, std::size_t ldb, Complex beta,
               std::span<Complex> c, std::size_t ldc) {
  cgemm_generic(
      m, n, k, alpha,
      [&](std::size_t i, std::size_t p) { return std::conj(a[p * lda + i]); },
      [&](std::size_t p, std::size_t j) { return b[p * ldb + j]; }, beta, c,
      ldc);
}

}  // namespace gpucnn::blas
