// Persistent packed operands for pack-once / execute-many GEMMs.
//
// The blocked sgemm/igemm drivers re-pack their operands into
// micro-kernel panels on every call. At inference the weights never
// change, so that packing is pure waste (10–30% of small-batch GEMM
// time). A PackedMatrix holds one operand's panels in exactly the
// per-(k-block, tile) layout the staged driver produces, so a prepacked
// call feeds the very same micro-kernels the very same bytes — results
// are bit-identical to the staged path by construction, fused epilogue
// included.
//
// Operand roles follow the call sites, not a fixed convention:
//   * conv engines run W(F x CKK) * col — weights are operand A, packed
//     in mr-row panels (pack_a);
//   * FcLayer runs in * W^T — weights are operand B, packed in nr-column
//     panels (pack_b);
//   * the int8 path's igemm takes quantized weights as operand A, packed
//     in maddubs quad tiles (pack_a_i8).
//
// Every pack records the SIMD level (and thus micro-tile shape) active
// at pack time. If runtime dispatch changes — GPUCNN_SIMD, a test
// override — the pack no longer matches the kernels that would run, so
// the prepacked entry points detect the mismatch and transparently fall
// back to the staged path over the retained origin span. The origin
// span must outlive the pack (layers pack their own weight tensors,
// which do).
//
// Metrics (docs/METRICS.md): blas.{sgemm,igemm}.prepack_bytes count the
// one-time pack traffic; blas.{sgemm,igemm}.prepack_hits count blocked
// GEMM calls that consumed a cached pack instead of re-packing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "blas/gemm.hpp"
#include "blas/igemm.hpp"
#include "core/cpu_features.hpp"
#include "core/tensor.hpp"

namespace gpucnn::blas {

/// One fp32 operand packed into micro-kernel panels (see file comment).
/// Immutable after packing; safe to share across threads by const
/// reference or shared_ptr.
class PackedMatrix {
 public:
  enum class Role { kA, kB };

  PackedMatrix() = default;

  /// True when the pack holds data (pack_a / pack_b produced panels).
  [[nodiscard]] bool packed() const { return !data_.empty(); }
  /// True when the pack matches the SIMD level currently dispatched —
  /// a stale pack is skipped, not consumed.
  [[nodiscard]] bool valid() const {
    return packed() && level_ == simd::active();
  }

  [[nodiscard]] Role role() const { return role_; }
  /// Logical operand dimensions: op(A) is rows x cols = m x k, op(B) is
  /// k x n with rows = k, cols = n.
  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t bytes() const {
    return data_.size() * sizeof(float);
  }

  [[nodiscard]] simd::Level level() const { return level_; }
  /// Micro-tile edge the panels were packed for (mr for A, nr for B).
  [[nodiscard]] std::size_t tile() const { return tile_; }
  /// k-blocking the panels use (the driver's KC at pack time).
  [[nodiscard]] std::size_t kc_block() const { return kc_block_; }

  /// The unpacked operand the pack was built from (staged/naive
  /// fallback path); the caller guarantees its lifetime.
  [[nodiscard]] Trans trans() const { return trans_; }
  [[nodiscard]] std::span<const float> origin() const { return origin_; }
  [[nodiscard]] std::size_t origin_ld() const { return origin_ld_; }

  [[nodiscard]] const float* data() const { return data_.data(); }

 private:
  friend PackedMatrix pack_a(Trans, std::size_t, std::size_t,
                             std::span<const float>, std::size_t);
  friend PackedMatrix pack_b(Trans, std::size_t, std::size_t,
                             std::span<const float>, std::size_t);

  Role role_ = Role::kA;
  Trans trans_ = Trans::kNo;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  simd::Level level_ = simd::Level::kPortable;
  std::size_t tile_ = 0;
  std::size_t kc_block_ = 0;
  std::vector<float, AlignedAllocator<float>> data_;
  std::span<const float> origin_;
  std::size_t origin_ld_ = 0;
};

/// Packs op(A) (logical m x k) into mr-row panels for the SIMD level
/// active now. Counts blas.sgemm.prepack_bytes.
[[nodiscard]] PackedMatrix pack_a(Trans trans_a, std::size_t m,
                                  std::size_t k, std::span<const float> a,
                                  std::size_t lda);

/// Packs op(B) (logical k x n) into nr-column panels for the SIMD level
/// active now. Counts blas.sgemm.prepack_bytes.
[[nodiscard]] PackedMatrix pack_b(Trans trans_b, std::size_t k,
                                  std::size_t n, std::span<const float> b,
                                  std::size_t ldb);

/// sgemm with a prepacked A operand (role kA, dims m x k). Bit-identical
/// to sgemm(a.trans(), trans_b, ...) over a.origin(); falls back to that
/// staged call when the pack is stale (SIMD switch) or mismatched.
void sgemm_prepacked(std::size_t m, std::size_t n, std::size_t k,
                     float alpha, const PackedMatrix& a, Trans trans_b,
                     std::span<const float> b, std::size_t ldb, float beta,
                     std::span<float> c, std::size_t ldc,
                     const Epilogue& ep = {});

/// sgemm with a prepacked B operand (role kB, dims k x n). Bit-identical
/// to sgemm(trans_a, b.trans(), ...) over b.origin(); same fallback
/// contract as the A overload.
void sgemm_prepacked(Trans trans_a, std::size_t m, std::size_t n,
                     std::size_t k, float alpha, std::span<const float> a,
                     std::size_t lda, const PackedMatrix& b, float beta,
                     std::span<float> c, std::size_t ldc,
                     const Epilogue& ep = {});

/// Int8 weights (igemm operand A) packed into maddubs quad tiles.
class PackedMatrixI8 {
 public:
  PackedMatrixI8() = default;

  [[nodiscard]] bool packed() const { return !data_.empty(); }
  [[nodiscard]] bool valid() const {
    return packed() && level_ == simd::active();
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t bytes() const { return data_.size(); }
  [[nodiscard]] simd::Level level() const { return level_; }
  [[nodiscard]] std::size_t kc_block() const { return kc_block_; }

  [[nodiscard]] std::span<const std::int8_t> origin() const {
    return origin_;
  }
  [[nodiscard]] std::size_t origin_ld() const { return origin_ld_; }
  [[nodiscard]] const std::int8_t* data() const { return data_.data(); }

 private:
  friend PackedMatrixI8 pack_a_i8(std::size_t, std::size_t,
                                  std::span<const std::int8_t>,
                                  std::size_t);

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  simd::Level level_ = simd::Level::kPortable;
  std::size_t kc_block_ = 0;
  std::vector<std::int8_t, AlignedAllocator<std::int8_t>> data_;
  std::span<const std::int8_t> origin_;
  std::size_t origin_ld_ = 0;
};

/// Packs int8 weights A (row-major m x k, |a| <= quant::kWeightQMax)
/// into quad tiles. Counts blas.igemm.prepack_bytes.
[[nodiscard]] PackedMatrixI8 pack_a_i8(std::size_t m, std::size_t k,
                                       std::span<const std::int8_t> a,
                                       std::size_t lda);

/// igemm_s32 with prepacked weights; bit-exact against igemm_s32 over
/// a.origin(), with the same stale-pack fallback as sgemm_prepacked.
void igemm_prepacked(std::size_t m, std::size_t n, std::size_t k,
                     const PackedMatrixI8& a,
                     std::span<const std::uint8_t> b, std::size_t ldb,
                     std::span<std::int32_t> c, std::size_t ldc);

/// Fused igemm with prepacked weights, fp32 output.
void igemm_prepacked(std::size_t m, std::size_t n, std::size_t k,
                     const PackedMatrixI8& a,
                     std::span<const std::uint8_t> b, std::size_t ldb,
                     const QEpilogue& ep, std::span<float> c,
                     std::size_t ldc);

/// Fused igemm with prepacked weights, re-quantized uint8 output.
void igemm_prepacked(std::size_t m, std::size_t n, std::size_t k,
                     const PackedMatrixI8& a,
                     std::span<const std::uint8_t> b, std::size_t ldb,
                     const QEpilogue& ep, std::span<std::uint8_t> c,
                     std::size_t ldc);

}  // namespace gpucnn::blas
