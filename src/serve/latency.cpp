#include "serve/latency.hpp"

#include <algorithm>
#include <numeric>

namespace gpucnn::serve {
namespace {

/// Nearest-rank percentile of an ascending-sorted sample set:
/// the smallest value with at least q of the population at or below it.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size());
  std::size_t index = static_cast<std::size_t>(rank);
  if (static_cast<double>(index) < rank) ++index;  // ceil
  if (index > 0) --index;                          // 1-based -> 0-based
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

LatencySummary summarize_latencies(std::vector<double> samples) {
  LatencySummary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.mean_us = std::accumulate(samples.begin(), samples.end(), 0.0) /
              static_cast<double>(samples.size());
  s.p50_us = percentile(samples, 0.50);
  s.p95_us = percentile(samples, 0.95);
  s.p99_us = percentile(samples, 0.99);
  s.max_us = samples.back();
  return s;
}

void LatencyRecorder::record(double sample_us) {
  const std::scoped_lock lock(mutex_);
  samples_us_.push_back(sample_us);
}

std::size_t LatencyRecorder::count() const {
  const std::scoped_lock lock(mutex_);
  return samples_us_.size();
}

LatencySummary LatencyRecorder::summary() const {
  std::vector<double> copy;
  {
    const std::scoped_lock lock(mutex_);
    copy = samples_us_;
  }
  return summarize_latencies(std::move(copy));
}

std::vector<double> LatencyRecorder::take() {
  const std::scoped_lock lock(mutex_);
  std::vector<double> out;
  out.swap(samples_us_);
  return out;
}

}  // namespace gpucnn::serve
