#include "serve/request_queue.hpp"

#include <algorithm>
#include <utility>

#include "core/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gpucnn::serve {

RequestQueue::RequestQueue(BatchPolicy policy) : policy_(policy) {
  check(policy_.max_batch >= 1, "BatchPolicy.max_batch must be positive");
  check(policy_.max_delay_us >= 0,
        "BatchPolicy.max_delay_us must be non-negative");
}

std::future<Tensor> RequestQueue::submit(const Tensor& input) {
  Request req;
  req.input = input;
  std::future<Tensor> future = req.response.get_future();
  {
    const std::scoped_lock lock(mutex_);
    check(!closed_, "RequestQueue: submit after close");
    req.id = next_id_++;
    req.enqueued = std::chrono::steady_clock::now();
    if (obs::tracer().enabled()) req.submit_us = obs::tracer().now_us();
    queue_.push_back(std::move(req));
    obs::metrics().gauge("serve.queue.depth")
        .set(static_cast<double>(queue_.size()));
  }
  obs::metrics().counter("serve.requests.submitted").add(1);
  // notify_all: collectors wait at two different points (non-empty and
  // batch-full / deadline) with different predicates.
  changed_.notify_all();
  return future;
}

bool RequestQueue::collect(std::vector<Request>& batch) {
  batch.clear();
  std::unique_lock lock(mutex_);
  for (;;) {
    changed_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return false;  // closed and fully drained
    if (closed_ || queue_.size() >= policy_.max_batch) break;
    // Wait out the latency budget of the current oldest request; a
    // concurrent collector may drain the queue meanwhile, so a woken
    // wait re-evaluates from the top against the new front.
    const auto deadline =
        queue_.front().enqueued + std::chrono::microseconds(policy_.max_delay_us);
    if (changed_.wait_until(lock, deadline, [this] {
          return closed_ || queue_.size() >= policy_.max_batch;
        })) {
      continue;
    }
    if (!queue_.empty()) break;  // deadline fired: take what is waiting
  }

  const std::size_t n = std::min(queue_.size(), policy_.max_batch);
  const auto now = std::chrono::steady_clock::now();
  auto& wait_hist = obs::metrics().histogram("serve.queue.wait_us");
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    wait_hist.record(std::chrono::duration<double, std::micro>(
                         now - queue_.front().enqueued)
                         .count());
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  obs::metrics().gauge("serve.queue.depth")
      .set(static_cast<double>(queue_.size()));
  obs::metrics().counter("serve.batches").add(1);
  obs::metrics().histogram("serve.batch.size")
      .record(static_cast<double>(n));
  return true;
}

void RequestQueue::close() {
  {
    const std::scoped_lock lock(mutex_);
    closed_ = true;
  }
  changed_.notify_all();
}

bool RequestQueue::closed() const {
  const std::scoped_lock lock(mutex_);
  return closed_;
}

std::size_t RequestQueue::depth() const {
  const std::scoped_lock lock(mutex_);
  return queue_.size();
}

std::uint64_t RequestQueue::submitted() const {
  const std::scoped_lock lock(mutex_);
  return next_id_;
}

}  // namespace gpucnn::serve
