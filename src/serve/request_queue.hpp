// Request queue with dynamic batching — the serving runtime's front door.
//
// Producers submit single-image requests and receive a future; consumer
// (worker) threads collect *batches*. A batch closes on whichever comes
// first:
//   * size  — max_batch requests are waiting, or
//   * time  — the oldest waiting request has been queued max_delay_us
//             microseconds (the latency budget a request may spend
//             waiting for co-batching company).
//
// close() stops new submissions (submit throws) but keeps collect()
// serving until every queued request has been handed to a worker, so a
// shutting-down server drains instead of dropping — collect() returns
// false only once the queue is both closed and empty.
//
// All state is guarded by one mutex; any number of submitters and
// collectors may run concurrently, and each queued request is handed to
// exactly one collector (the response promise is moved out with it).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "core/tensor.hpp"

namespace gpucnn::serve {

/// The two dynamic-batching knobs (docs/SERVING.md discusses tuning).
struct BatchPolicy {
  std::size_t max_batch = 8;        ///< close a batch at this many requests
  std::int64_t max_delay_us = 2000; ///< ... or when the oldest waited this long
};

/// One queued inference request, handed from submit() to a collector.
struct Request {
  std::uint64_t id = 0;
  Tensor input;  ///< a single image, shape (1, C, H, W)
  std::promise<Tensor> response;
  std::chrono::steady_clock::time_point enqueued;
  double submit_us = 0.0;  ///< tracer timestamp at submit (0 if not tracing)
};

class RequestQueue {
 public:
  explicit RequestQueue(BatchPolicy policy);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Enqueues a copy of `input`; the future resolves when a worker has
  /// computed the response (or fails with the worker's exception).
  /// Throws gpucnn::Error once the queue is closed.
  std::future<Tensor> submit(const Tensor& input);

  /// Blocks until a batch closes (size or deadline, see above) and moves
  /// it into `batch` (previous contents discarded). Returns false — with
  /// `batch` empty — once the queue is closed and fully drained.
  bool collect(std::vector<Request>& batch);

  /// Rejects future submissions; wakes all collectors so they can drain.
  void close();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] const BatchPolicy& policy() const { return policy_; }
  /// Total requests ever accepted by submit().
  [[nodiscard]] std::uint64_t submitted() const;

 private:
  const BatchPolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable changed_;  ///< submit/close happened
  std::deque<Request> queue_;
  std::uint64_t next_id_ = 0;
  bool closed_ = false;
};

}  // namespace gpucnn::serve
