// In-process inference serving runtime (docs/SERVING.md).
//
// An InferenceServer turns the one-shot library into a request/response
// system: callers submit single images and receive futures; a
// RequestQueue coalesces requests into batches under a latency budget
// (BatchPolicy); a pool of worker threads — each owning one
// ModelInstance whose weights alias the shared prototype — executes the
// batches. The workers are thin drivers: all numeric work inside a
// forward lands on the process-wide ThreadPool through the kernels'
// parallel_for, so serving adds no second compute pool. With autotuning
// enabled, every realized batch shape gets its own empirical engine
// choice (the tune::Autotuner keys on the full ConvConfig including
// batch).
//
// Observability: serve.* counters/gauges/histograms (docs/METRICS.md),
// per-batch spans on the worker thread tracks and per-request
// queue/latency events on the serve:requests virtual track of the
// Chrome trace (docs/OBSERVABILITY.md). Exact p50/p95/p99 latency comes
// from the raw-sample LatencyRecorder.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/shape.hpp"
#include "core/tensor.hpp"
#include "nn/network.hpp"
#include "serve/latency.hpp"
#include "serve/model_instance.hpp"
#include "serve/request_queue.hpp"

namespace gpucnn::serve {

struct ServerOptions {
  std::size_t workers = 2;    ///< worker threads == concurrent instances
  BatchPolicy batch;          ///< dynamic batching knobs
  TensorShape input;          ///< expected request shape; n is ignored
  std::uint64_t seed = 7;     ///< prototype weight initialisation seed
  bool fuse_conv_relu = true; ///< rewrite conv->ReLU pairs before serving
  bool autotune = false;      ///< dispatch convs through tune::Autotuner
  bool memory_planning = true; ///< per-instance activation arena
  /// Serve int8: each instance's conv layers are rewritten to the
  /// quantized inference path (Network::quantize) after weight sharing,
  /// calibrated on synthetic batches drawn from the request
  /// distribution. Outputs stay fp32; accuracy shifts by quantization
  /// error (docs/QUANTIZATION.md).
  bool int8 = false;
  std::size_t int8_calibration_batches = 4;
  /// Run warm-up forwards before the workers start taking requests: one
  /// instance covers every batch size up to batch.max_batch (priming the
  /// process-wide autotune memo for each realized batch shape), the rest
  /// run one max-batch forward (sizing their activation arenas). The
  /// measurement window then starts with tuned engines, sized arenas and
  /// prepacked weights — no first-request outlier.
  bool warmup = true;
};

/// A consistent snapshot of the server's lifetime counters.
struct ServerStats {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t rejected = 0;  ///< submissions after shutdown began
  std::int64_t failed = 0;    ///< requests whose batch threw
  std::int64_t batches = 0;
  double mean_batch = 0.0;
  std::size_t max_batch_observed = 0;
  std::size_t queue_depth = 0;
  LatencySummary latency;  ///< submit -> response, microseconds
};

class InferenceServer {
 public:
  /// `make_network` builds one structurally identical, uninitialised
  /// network per call (prototype + one per worker). The server
  /// initialises only the prototype's weights (options.seed); instance
  /// weights become views of it via Network::share_parameters.
  InferenceServer(const std::function<nn::Network()>& make_network,
                  ServerOptions options);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Submits one image of the configured shape (n must be 1); the
  /// future resolves with the network output for that image. Throws
  /// gpucnn::Error on a shape mismatch or after shutdown() began.
  std::future<Tensor> submit(const Tensor& image);

  /// Stops accepting requests, drains every queued request through the
  /// workers, and joins them. Idempotent; the destructor calls it.
  void shutdown();

  [[nodiscard]] ServerStats stats() const;

  /// Drains the raw per-request latency samples (microseconds) gathered
  /// since the last call — the load generator's per-window percentiles.
  [[nodiscard]] std::vector<double> take_latencies_us();

  [[nodiscard]] const ServerOptions& options() const { return options_; }
  /// The weight-owning network. Safe to read once shutdown() returned;
  /// must not be mutated while workers are running.
  [[nodiscard]] nn::Network& prototype() { return prototype_; }

 private:
  void warmup_instances();
  void worker_loop(std::size_t index);
  void run_batch(ModelInstance& instance, std::vector<Request>& batch);

  ServerOptions options_;
  nn::Network prototype_;
  RequestQueue queue_;
  std::vector<std::unique_ptr<ModelInstance>> instances_;
  std::vector<std::thread> workers_;
  LatencyRecorder latency_;

  std::atomic<std::int64_t> submitted_{0};
  std::atomic<std::int64_t> completed_{0};
  std::atomic<std::int64_t> rejected_{0};
  std::atomic<std::int64_t> failed_{0};
  std::atomic<std::int64_t> batches_{0};
  std::atomic<std::int64_t> batched_requests_{0};
  std::atomic<std::size_t> max_batch_{0};

  std::mutex shutdown_mutex_;
  bool shut_down_ = false;
};

}  // namespace gpucnn::serve
