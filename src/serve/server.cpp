#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <exception>
#include <string>
#include <utility>

#include "core/error.hpp"
#include "core/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gpucnn::serve {
namespace {

/// Raises an atomic maximum (relaxed; stats only).
void raise_max(std::atomic<std::size_t>& target, std::size_t value) {
  std::size_t seen = target.load(std::memory_order_relaxed);
  while (seen < value &&
         !target.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

InferenceServer::InferenceServer(
    const std::function<nn::Network()>& make_network, ServerOptions options)
    : options_(options),
      prototype_(make_network()),
      queue_(options.batch) {
  check(options_.workers >= 1, "InferenceServer needs at least one worker");
  check(options_.input.c * options_.input.h * options_.input.w > 0,
        "ServerOptions.input must name the request image shape");

  prototype_.set_training(false);
  if (options_.fuse_conv_relu) prototype_.fuse_conv_relu();
  Rng rng(options_.seed);
  prototype_.initialize(rng);
  // Pack the prototype's weights once; every instance then aliases the
  // packed panels through share_parameters (one packed copy per server).
  prototype_.freeze_for_inference();

  // Synthetic calibration set for --int8: the load generator draws
  // request images uniform in [-1, 1], so calibrating on the same
  // distribution gives every instance a representative activation range.
  std::vector<Tensor> calibration;
  if (options_.int8) {
    Rng calib_rng(options_.seed + 1);
    calibration.resize(options_.int8_calibration_batches);
    for (auto& t : calibration) {
      t.resize({1, options_.input.c, options_.input.h, options_.input.w});
      t.fill_uniform(calib_rng, -1.0F, 1.0F);
    }
  }

  instances_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    nn::Network net = make_network();
    net.set_training(false);
    if (options_.fuse_conv_relu) net.fuse_conv_relu();
    net.enable_autotune(options_.autotune);
    auto instance = std::make_unique<ModelInstance>(
        std::move(net), prototype_, options_.memory_planning);
    if (options_.int8) {
      (void)instance->network().quantize(calibration);
      // Quantization replaced the conv layers after weight sharing; the
      // new int8 layers pack their own quantized weights here.
      instance->network().freeze_for_inference();
    }
    instances_.push_back(std::move(instance));
  }
  obs::metrics().gauge("serve.workers")
      .set(static_cast<double>(options_.workers));
  obs::metrics().gauge("serve.int8").set(options_.int8 ? 1.0 : 0.0);

  if (options_.warmup) warmup_instances();

  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

void InferenceServer::warmup_instances() {
  // Warm-up forwards run before any worker thread exists, so instances
  // can be driven directly. Instance 0 sweeps every batch size the
  // dynamic batcher can realize — with autotuning on, each sweep step
  // pays that shape's measurement cost here, once, instead of inside a
  // served request. The remaining instances run one max-batch forward:
  // the autotune memo is process-wide (already primed), so they only
  // need their own activation arenas sized.
  const TensorShape in = options_.input;
  Rng rng(options_.seed + 2);
  Tensor image;
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    const std::size_t lo = i == 0 ? 1 : options_.batch.max_batch;
    for (std::size_t b = lo; b <= options_.batch.max_batch; ++b) {
      image.resize({b, in.c, in.h, in.w});
      image.fill_uniform(rng, -1.0F, 1.0F);
      (void)instances_[i]->run(image);
    }
  }
  obs::metrics().counter("serve.warmup.forwards")
      .add(static_cast<std::int64_t>(options_.batch.max_batch +
                                     instances_.size() - 1));
}

std::future<Tensor> InferenceServer::submit(const Tensor& image) {
  const TensorShape& s = image.shape();
  check(s.n == 1 && s.c == options_.input.c && s.h == options_.input.h &&
            s.w == options_.input.w,
        "submit: image shape does not match the served model's input");
  try {
    std::future<Tensor> future = queue_.submit(image);
    submitted_.fetch_add(1, std::memory_order_relaxed);
    return future;
  } catch (const Error&) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().counter("serve.requests.rejected").add(1);
    throw;
  }
}

void InferenceServer::shutdown() {
  {
    const std::scoped_lock lock(shutdown_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queue_.close();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
}

void InferenceServer::worker_loop(std::size_t index) {
  ModelInstance& instance = *instances_[index];
  std::vector<Request> batch;
  while (queue_.collect(batch)) {
    run_batch(instance, batch);
  }
}

void InferenceServer::run_batch(ModelInstance& instance,
                                std::vector<Request>& batch) {
  auto& m = obs::metrics();
  const std::size_t b = batch.size();
  const TensorShape in = options_.input;
  const std::size_t image_floats = in.c * in.h * in.w;

  obs::Span span(obs::tracer(), "serve.batch[" + std::to_string(b) + "]",
                 "serve");
  const double collected_us =
      obs::tracer().enabled() ? obs::tracer().now_us() : 0.0;

  Tensor input(b, in.c, in.h, in.w);
  for (std::size_t i = 0; i < b; ++i) {
    std::memcpy(input.plane(i, 0), batch[i].input.raw(),
                image_floats * sizeof(float));
  }

  Timer compute;
  const Tensor* output = nullptr;
  try {
    obs::Span forward(obs::tracer(), "serve.forward", "serve");
    output = &instance.run(input);
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    for (Request& req : batch) req.response.set_exception(error);
    failed_.fetch_add(static_cast<std::int64_t>(b),
                      std::memory_order_relaxed);
    m.counter("serve.requests.failed").add(static_cast<std::int64_t>(b));
    return;
  }
  const double compute_us = compute.elapsed_us();
  m.histogram("serve.compute_us").record(compute_us);

  const TensorShape out = output->shape();
  check(out.n == b, "served network changed the batch dimension");
  const std::size_t result_floats = out.c * out.h * out.w;
  const auto now = std::chrono::steady_clock::now();
  const bool tracing = obs::tracer().enabled();
  const std::uint32_t track =
      tracing ? obs::tracer().virtual_track("serve:requests") : 0;

  for (std::size_t i = 0; i < b; ++i) {
    Tensor result(1, out.c, out.h, out.w);
    std::memcpy(result.raw(), output->plane(i, 0),
                result_floats * sizeof(float));
    const double latency_us =
        std::chrono::duration<double, std::micro>(now - batch[i].enqueued)
            .count();
    latency_.record(latency_us);
    m.histogram("serve.latency_us").record(latency_us);
    if (tracing) {
      // Per-request events: the whole submit->response interval and the
      // queue-wait prefix. Concurrent requests overlap on this track by
      // design; validate_export.py relaxes nesting for serve:* tracks
      // when the manifest carries a run.serve annotation.
      const double done_us = obs::tracer().now_us();
      obs::TraceArgs args{{"id", std::to_string(batch[i].id)},
                          {"batch", std::to_string(b)}};
      obs::tracer().complete_event(track, "request", "serve.request",
                                   batch[i].submit_us,
                                   done_us - batch[i].submit_us, args);
      obs::tracer().complete_event(track, "queue", "serve.queue",
                                   batch[i].submit_us,
                                   collected_us - batch[i].submit_us,
                                   std::move(args));
    }
    batch[i].response.set_value(std::move(result));
  }
  completed_.fetch_add(static_cast<std::int64_t>(b),
                       std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(static_cast<std::int64_t>(b),
                              std::memory_order_relaxed);
  raise_max(max_batch_, b);
  m.counter("serve.requests.completed").add(static_cast<std::int64_t>(b));
}

ServerStats InferenceServer::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  const std::int64_t in_batches =
      batched_requests_.load(std::memory_order_relaxed);
  s.mean_batch = s.batches > 0 ? static_cast<double>(in_batches) /
                                     static_cast<double>(s.batches)
                               : 0.0;
  s.max_batch_observed = max_batch_.load(std::memory_order_relaxed);
  s.queue_depth = queue_.depth();
  s.latency = latency_.summary();
  return s;
}

std::vector<double> InferenceServer::take_latencies_us() {
  return latency_.take();
}

}  // namespace gpucnn::serve
