// Exact latency percentiles for the serving runtime.
//
// The obs::Histogram's power-of-two buckets are fine for dashboards but
// too coarse for the p99 numbers the BENCH_serving table reports (one
// bucket spans a 2x latency range). The recorder keeps every raw sample
// instead — one double per request is cheap at loadgen scales — and
// summaries are computed exactly with nearest-rank percentiles.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

namespace gpucnn::serve {

/// Nearest-rank percentile summary of a latency population, in the unit
/// the samples were recorded in (the server records microseconds).
struct LatencySummary {
  std::size_t count = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

/// Summarises a sample set (sorted internally; the argument is consumed).
[[nodiscard]] LatencySummary summarize_latencies(std::vector<double> samples);

/// Thread-safe raw-sample collector. record() appends under a mutex;
/// take() drains the accumulated samples so a load generator can compute
/// per-measurement-window percentiles from one long-lived server.
class LatencyRecorder {
 public:
  void record(double sample_us);

  [[nodiscard]] std::size_t count() const;

  /// Summary of everything recorded since the last take().
  [[nodiscard]] LatencySummary summary() const;

  /// Removes and returns all accumulated samples.
  [[nodiscard]] std::vector<double> take();

 private:
  mutable std::mutex mutex_;
  std::vector<double> samples_us_;
};

}  // namespace gpucnn::serve
