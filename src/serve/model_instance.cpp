#include "serve/model_instance.hpp"

#include <utility>

namespace gpucnn::serve {

ModelInstance::ModelInstance(nn::Network net, nn::Network& weight_owner,
                             bool memory_planning)
    : net_(std::move(net)) {
  net_.set_training(false);
  net_.set_memory_planning(memory_planning);
  net_.share_parameters(weight_owner);
}

const Tensor& ModelInstance::run(const Tensor& batch) {
  ++batches_run_;
  return net_.forward(batch);
}

}  // namespace gpucnn::serve
