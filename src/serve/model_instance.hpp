// One concurrent copy of the served model.
//
// Every worker thread owns one ModelInstance: a structurally identical
// nn::Network whose *parameters are views* (Tensor::bind_external) over
// the server's prototype network, so N instances cost N activation
// arenas but only one copy of the weights — the singa-style split of
// request-handling state (cheap, per worker) from model state (shared,
// read-only during serving). Activations stay cheap because instances
// run with the PR-5 inference memory planner on: each forward binds all
// intermediate activations into one greedy-first-fit arena.
#pragma once

#include <cstddef>
#include <functional>

#include "core/tensor.hpp"
#include "nn/network.hpp"

namespace gpucnn::serve {

class ModelInstance {
 public:
  /// Takes ownership of an already-configured network (inference mode,
  /// fusion/autotune applied) and rebinds its parameters onto
  /// `weight_owner`'s storage. The owner must outlive the instance and
  /// must not be mutated while instances are running.
  ModelInstance(nn::Network net, nn::Network& weight_owner,
                bool memory_planning);

  ModelInstance(const ModelInstance&) = delete;
  ModelInstance& operator=(const ModelInstance&) = delete;

  /// Runs one forward pass over a batch tensor (B, C, H, W); the
  /// returned reference is valid until the next run().
  const Tensor& run(const Tensor& batch);

  [[nodiscard]] std::size_t batches_run() const { return batches_run_; }
  [[nodiscard]] nn::Network& network() { return net_; }

 private:
  nn::Network net_;
  std::size_t batches_run_ = 0;
};

}  // namespace gpucnn::serve
