#include "conv/conv_engine.hpp"

#include "conv/direct_conv.hpp"
#include "conv/fft_conv.hpp"
#include "conv/gemm_conv.hpp"
#include "conv/winograd_conv.hpp"

namespace gpucnn::conv {

std::string_view to_string(Strategy s) {
  switch (s) {
    case Strategy::kDirect:
      return "direct";
    case Strategy::kUnrolling:
      return "unrolling";
    case Strategy::kFft:
      return "fft";
    case Strategy::kWinograd:
      return "winograd";
  }
  return "unknown";
}

PackedFilters prepack_filters(const ConvConfig& cfg, const Tensor& filters) {
  check(filters.shape() == cfg.filter_shape(), "filter shape mismatch");
  const std::size_t group_filters = cfg.group_filters();
  const std::size_t ckk =
      cfg.group_channels() * cfg.kernel * cfg.kernel;
  PackedFilters packed;
  packed.groups.reserve(cfg.groups);
  for (std::size_t g = 0; g < cfg.groups; ++g) {
    packed.groups.push_back(blas::pack_a(
        blas::Trans::kNo, group_filters, ckk,
        {filters.plane(g * group_filters, 0), group_filters * ckk}, ckk));
  }
  if (WinogradConv{}.supports(cfg)) {
    prepack_winograd_filters(cfg, filters, WinogradTile::kF2,
                             packed.winograd_f2_data, packed.winograd_f2);
    prepack_winograd_filters(cfg, filters, WinogradTile::kF4,
                             packed.winograd_f4_data, packed.winograd_f4);
  }
  return packed;
}

void ConvEngine::validate_forward(const ConvConfig& cfg, const Tensor& input,
                                  const Tensor& filters,
                                  const Tensor& output) {
  check(input.shape() == cfg.input_shape(), "input shape mismatch");
  check(filters.shape() == cfg.filter_shape(), "filter shape mismatch");
  check(output.shape() == cfg.output_shape(), "output shape mismatch");
}

std::unique_ptr<ConvEngine> make_engine(Strategy strategy) {
  switch (strategy) {
    case Strategy::kDirect:
      return std::make_unique<DirectConv>();
    case Strategy::kUnrolling:
      return std::make_unique<GemmConv>();
    case Strategy::kFft:
      return std::make_unique<FftConv>();
    case Strategy::kWinograd:
      return std::make_unique<WinogradConv>();
  }
  check(false, "unknown convolution strategy");
  return nullptr;
}

}  // namespace gpucnn::conv
