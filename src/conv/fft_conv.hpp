// FFT-based convolution (paper §II.B, strategy of fbfft and Theano-fft).
//
// Pipeline, mirroring fbfft's kernel structure:
//   1. zero-pad images/filters to S x S, S = next_pow2(i + 2p + k - 1),
//      and transform to the frequency domain (2-D FFT);
//   2. transpose to frequency-major layout and run one small complex GEMM
//      per frequency bin (fbfft's BDHW -> HWBD Transpose + Cgemm);
//   3. transpose back, inverse-transform, and crop the valid region.
//
// Cross-correlation (forward, backward-filter) multiplies by the
// conjugated spectrum; true convolution (backward-data) multiplies
// directly. Stride must be 1 — exactly the shape limitation the paper
// reports for fbfft and Theano-fft.
#pragma once

#include "conv/conv_engine.hpp"

namespace gpucnn::conv {

class FftConv final : public ConvEngine {
 public:
  [[nodiscard]] Strategy strategy() const override { return Strategy::kFft; }
  [[nodiscard]] std::string_view name() const override { return "fft"; }
  [[nodiscard]] bool supports(const ConvConfig& cfg) const override {
    return cfg.stride == 1 && cfg.groups == 1 &&
           cfg.kernel <= cfg.input + 2 * cfg.pad;
  }

  void forward(const ConvConfig& cfg, const Tensor& input,
               const Tensor& filters, Tensor& output) const override;
  void backward_data(const ConvConfig& cfg, const Tensor& grad_output,
                     const Tensor& filters, Tensor& grad_input) const override;
  void backward_filter(const ConvConfig& cfg, const Tensor& input,
                       const Tensor& grad_output,
                       Tensor& grad_filters) const override;

  /// Padded transform size used for a configuration (exposed for tests
  /// and for the memory model, which keys off the same quantity).
  [[nodiscard]] static std::size_t transform_size(const ConvConfig& cfg);
};

}  // namespace gpucnn::conv
