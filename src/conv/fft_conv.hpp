// FFT-based convolution (paper §II.B, strategy of fbfft and Theano-fft).
//
// Pipeline, mirroring fbfft's kernel structure:
//   1. zero-pad images/filters to S x S, S = next_pow2(i + 2p + k - 1),
//      and transform to the frequency domain (real-input R2C 2-D FFT —
//      only the Hermitian half-spectrum, S x (S/2+1) bins, is kept);
//   2. transpose to frequency-major layout and run one small complex GEMM
//      per retained frequency bin (fbfft's BDHW -> HWBD Transpose +
//      Cgemm — halved bin count is where fbfft's real-input win comes
//      from, per Vasilache et al.);
//   3. transpose back, inverse C2R transform, and crop the valid region.
//
// Cross-correlation (forward, backward-filter) multiplies by the
// conjugated spectrum; true convolution (backward-data) multiplies
// directly. Stride must be 1 — exactly the shape limitation the paper
// reports for fbfft and Theano-fft. Transform plans come from the
// process-wide fft::PlanCache, so repeated layer calls of one geometry
// never rebuild twiddles.
#pragma once

#include "conv/conv_engine.hpp"

namespace gpucnn::conv {

class FftConv final : public ConvEngine {
 public:
  /// Spectrum storage. kHalf (default) exploits real-input conjugate
  /// symmetry: half the transform work, half the Cgemm bins. kFull
  /// keeps the full complex S x S grid; it exists as the cross-check
  /// reference for tests, the conv fuzzer and the before/after bench.
  enum class Spectrum { kHalf, kFull };

  explicit FftConv(Spectrum spectrum = Spectrum::kHalf)
      : spectrum_(spectrum) {}

  [[nodiscard]] Strategy strategy() const override { return Strategy::kFft; }
  [[nodiscard]] std::string_view name() const override {
    return spectrum_ == Spectrum::kHalf ? "fft" : "fft-complex";
  }
  [[nodiscard]] bool supports(const ConvConfig& cfg) const override {
    return cfg.stride == 1 && cfg.groups == 1 &&
           cfg.kernel <= cfg.input + 2 * cfg.pad;
  }

  void forward(const ConvConfig& cfg, const Tensor& input,
               const Tensor& filters, Tensor& output) const override;
  void backward_data(const ConvConfig& cfg, const Tensor& grad_output,
                     const Tensor& filters, Tensor& grad_input) const override;
  void backward_filter(const ConvConfig& cfg, const Tensor& input,
                       const Tensor& grad_output,
                       Tensor& grad_filters) const override;

  /// Padded transform size used for a configuration (exposed for tests
  /// and for the memory model, which keys off the same quantity).
  [[nodiscard]] static std::size_t transform_size(const ConvConfig& cfg);

 private:
  /// Frequency bins the pointwise stage iterates for transform size s:
  /// s*(s/2+1) Hermitian bins or the full s*s grid.
  [[nodiscard]] std::size_t bins_for(std::size_t s) const;

  Spectrum spectrum_;
};

}  // namespace gpucnn::conv
