// Int8 quantized convolution forwards (inference only).
//
// Two algorithm shapes mirror the fp32 engines: an im2col + int8-GEMM
// path (QuantizedGemmConv) and a tiled implicit-GEMM path
// (QuantizedImplicitGemmConv). Both are *adapters*: fp32 tensors in,
// fp32 tensors out, quantizing internally — so they are drop-in
// candidates for the autotuner's timing harness and the fuzzer's
// cross-checks. The engine forms quantize dynamically per call
// (per-channel weights, per-tensor activations from the batch's own
// min/max); QuantizedConvLayer instead calls the *_forward free
// functions below with offline-quantized weights and a calibrated
// activation scale, skipping the per-call weight pass.
//
// Backward passes throw: quantization is an inference transform, and
// the autotuner only ever offers these engines for the forward pass.
#pragma once

#include "conv/conv_engine.hpp"
#include "quant/quant.hpp"

namespace gpucnn::conv {

/// Quantized filters packed once into igemm quad tiles (blas/packed.hpp),
/// one PackedMatrixI8 per group — the int8 twin of PackedFilters. Each
/// pack retains a span over qw.data, which must outlive the pack (the
/// layer owns both).
struct PackedQFilters {
  std::vector<blas::PackedMatrixI8> groups;

  [[nodiscard]] std::size_t bytes() const {
    std::size_t total = 0;
    for (const auto& g : groups) total += g.bytes();
    return total;
  }
};

/// Packs offline-quantized weights for reuse across every quantized
/// forward.
[[nodiscard]] PackedQFilters prepack_quantized_filters(
    const ConvConfig& cfg, const quant::QuantizedFilters& qw);

/// im2col + int8 GEMM forward with prepacked quantized weights `qw`
/// (rows = cfg.filters, cols = group_channels * k * k) and fixed
/// activation parameters `aq`. Bias (length cfg.filters) and ReLU ride
/// the GEMM's re-quantizing write-back; output is dequantized fp32.
void quantized_gemm_forward(const ConvConfig& cfg, const Tensor& input,
                            const quant::QuantizedFilters& qw,
                            const quant::ActQuant& aq,
                            std::span<const float> bias, bool relu,
                            Tensor& output);

/// Tiled implicit-GEMM forward (groups == 1 only), same contract.
void quantized_implicit_forward(const ConvConfig& cfg, const Tensor& input,
                                const quant::QuantizedFilters& qw,
                                const quant::ActQuant& aq,
                                std::span<const float> bias, bool relu,
                                Tensor& output);

/// quantized_gemm_forward consuming cached weight tiles: bit-exact
/// against the overload above, with the blas-level stale-pack fallback
/// reading from qw (which `packed` was built from).
void quantized_gemm_forward(const ConvConfig& cfg, const Tensor& input,
                            const quant::QuantizedFilters& qw,
                            const PackedQFilters& packed,
                            const quant::ActQuant& aq,
                            std::span<const float> bias, bool relu,
                            Tensor& output);

/// Prepacked twin of quantized_implicit_forward, same contract.
void quantized_implicit_forward(const ConvConfig& cfg, const Tensor& input,
                                const quant::QuantizedFilters& qw,
                                const PackedQFilters& packed,
                                const quant::ActQuant& aq,
                                std::span<const float> bias, bool relu,
                                Tensor& output);

/// Dynamic-quantizing engine adapter over quantized_gemm_forward.
class QuantizedGemmConv final : public ConvEngine {
 public:
  [[nodiscard]] Strategy strategy() const override {
    return Strategy::kUnrolling;
  }
  [[nodiscard]] std::string_view name() const override {
    return "unrolling-int8";
  }
  [[nodiscard]] bool supports(const ConvConfig&) const override {
    return true;
  }

  void forward(const ConvConfig& cfg, const Tensor& input,
               const Tensor& filters, Tensor& output) const override;
  [[nodiscard]] bool forward_fused(const ConvConfig& cfg,
                                   const Tensor& input,
                                   const Tensor& filters,
                                   std::span<const float> bias, bool relu,
                                   Tensor& output) const override;
  [[noreturn]] void backward_data(const ConvConfig&, const Tensor&,
                                  const Tensor&, Tensor&) const override;
  [[noreturn]] void backward_filter(const ConvConfig&, const Tensor&,
                                    const Tensor&, Tensor&) const override;
};

/// Dynamic-quantizing engine adapter over quantized_implicit_forward.
class QuantizedImplicitGemmConv final : public ConvEngine {
 public:
  [[nodiscard]] Strategy strategy() const override {
    return Strategy::kUnrolling;
  }
  [[nodiscard]] std::string_view name() const override {
    return "implicit-int8";
  }
  [[nodiscard]] bool supports(const ConvConfig& cfg) const override {
    return cfg.groups == 1;
  }

  void forward(const ConvConfig& cfg, const Tensor& input,
               const Tensor& filters, Tensor& output) const override;
  [[nodiscard]] bool forward_fused(const ConvConfig& cfg,
                                   const Tensor& input,
                                   const Tensor& filters,
                                   std::span<const float> bias, bool relu,
                                   Tensor& output) const override;
  [[noreturn]] void backward_data(const ConvConfig&, const Tensor&,
                                  const Tensor&, Tensor&) const override;
  [[noreturn]] void backward_filter(const ConvConfig&, const Tensor&,
                                    const Tensor&, Tensor&) const override;
};

}  // namespace gpucnn::conv
