#include "conv/depthwise_conv.hpp"

#include <algorithm>

#include "core/cpu_features.hpp"
#include "core/thread_pool.hpp"

#if GPUCNN_X86_SIMD
#include <immintrin.h>
#endif

namespace gpucnn::conv {
namespace {

#if GPUCNN_X86_SIMD

// out[i] += w * in[i] across one valid output-row segment: the stride-1
// forward inner loop, one kernel tap against one image row. The access
// pattern is unit-stride on both operands, which is the whole point of
// the depthwise engine — no im2col staging, just streamed rows.
__attribute__((target("avx2,fma"))) void tap_fmadd_avx2(float* out,
                                                        const float* in,
                                                        float w,
                                                        std::size_t n) {
  const __m256 vw = _mm256_set1_ps(w);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vo = _mm256_fmadd_ps(vw, _mm256_loadu_ps(in + i),
                                      _mm256_loadu_ps(out + i));
    _mm256_storeu_ps(out + i, vo);
  }
  for (; i < n; ++i) out[i] += w * in[i];
}

// row[i] = relu?(row[i] + b): the fused bias+ReLU write-back. Addition
// and max round identically scalar or vector, so the fused result stays
// bit-identical to forward() + add_bias + ReLU.
__attribute__((target("avx2,fma"))) void bias_relu_avx2(float* row, float b,
                                                        bool relu,
                                                        std::size_t n) {
  const __m256 vb = _mm256_set1_ps(b);
  const __m256 zero = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 v = _mm256_add_ps(vb, _mm256_loadu_ps(row + i));
    if (relu) v = _mm256_max_ps(v, zero);
    _mm256_storeu_ps(row + i, v);
  }
  for (; i < n; ++i) {
    float v = row[i] + b;
    if (relu) v = std::max(v, 0.0F);
    row[i] = v;
  }
}

inline bool use_avx2() { return simd::active() == simd::Level::kAvx2; }

#endif  // GPUCNN_X86_SIMD

void tap_fmadd(float* out, const float* in, float w, std::size_t n) {
#if GPUCNN_X86_SIMD
  if (use_avx2()) {
    tap_fmadd_avx2(out, in, w, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) out[i] += w * in[i];
}

void bias_relu(float* row, float b, bool relu, std::size_t n) {
#if GPUCNN_X86_SIMD
  if (use_avx2()) {
    bias_relu_avx2(row, b, relu, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    float v = row[i] + b;
    if (relu) v = std::max(v, 0.0F);
    row[i] = v;
  }
}

}  // namespace

void DepthwiseConv::run_forward(const ConvConfig& cfg, const Tensor& input,
                                const Tensor& filters, const float* bias,
                                bool relu, Tensor& output) {
  validate_forward(cfg, input, filters, output);
  check(cfg.groups == cfg.channels, "depthwise requires groups == channels");
  const std::size_t o = cfg.output();
  const std::size_t in = cfg.input;
  const std::size_t k = cfg.kernel;
  const std::size_t s = cfg.stride;
  const std::size_t p = cfg.pad;
  const std::size_t mult = cfg.group_filters();

  // Each (image, filter) output plane reads exactly one input plane.
  parallel_for(0, cfg.batch * cfg.filters, [&](std::size_t job) {
    const std::size_t n = job / cfg.filters;
    const std::size_t f = job % cfg.filters;
    const std::size_t c = f / mult;  // the one channel this filter sees
    const float* in_plane = input.plane(n, c);
    const float* w_plane = filters.plane(f, 0);
    float* out_plane = output.plane(n, f);

    if (s == 1) {
      // Stride 1: each kernel tap contributes a shifted copy of an
      // input row to an output row; accumulate tap-by-tap with a
      // vectorised unit-stride fmadd over the valid x segment.
      for (std::size_t y = 0; y < o; ++y) {
        float* out_row = out_plane + y * o;
        std::fill(out_row, out_row + o, 0.0F);
        for (std::size_t ky = 0; ky < k; ++ky) {
          const std::size_t iy = y + ky;
          if (iy < p || iy >= in + p) continue;
          const float* in_row = in_plane + (iy - p) * in;
          for (std::size_t kx = 0; kx < k; ++kx) {
            if (in + p <= kx) continue;
            const std::size_t x0 = kx >= p ? 0 : p - kx;
            const std::size_t x1 = std::min(o, in + p - kx);
            if (x0 >= x1) continue;
            tap_fmadd(out_row + x0, in_row + (x0 + kx - p),
                      w_plane[ky * k + kx], x1 - x0);
          }
        }
        if (bias != nullptr || relu) {
          bias_relu(out_row, bias != nullptr ? bias[f] : 0.0F, relu, o);
        }
      }
    } else {
      // Strided: the window positions no longer share rows; fall back
      // to the per-pixel loop with a double accumulator (k*k taps).
      for (std::size_t y = 0; y < o; ++y) {
        float* out_row = out_plane + y * o;
        for (std::size_t x = 0; x < o; ++x) {
          double acc = 0.0;
          for (std::size_t ky = 0; ky < k; ++ky) {
            const std::size_t iy = y * s + ky;
            if (iy < p || iy >= in + p) continue;
            const float* in_row = in_plane + (iy - p) * in;
            const float* w_row = w_plane + ky * k;
            for (std::size_t kx = 0; kx < k; ++kx) {
              const std::size_t ix = x * s + kx;
              if (ix < p || ix >= in + p) continue;
              acc += static_cast<double>(in_row[ix - p]) * w_row[kx];
            }
          }
          out_row[x] = static_cast<float>(acc);
        }
        if (bias != nullptr || relu) {
          bias_relu(out_row, bias != nullptr ? bias[f] : 0.0F, relu, o);
        }
      }
    }
  });
}

void DepthwiseConv::forward(const ConvConfig& cfg, const Tensor& input,
                            const Tensor& filters, Tensor& output) const {
  run_forward(cfg, input, filters, nullptr, false, output);
}

bool DepthwiseConv::forward_fused(const ConvConfig& cfg, const Tensor& input,
                                  const Tensor& filters,
                                  std::span<const float> bias, bool relu,
                                  Tensor& output) const {
  check(bias.empty() || bias.size() == cfg.filters,
        "fused bias length must equal filter count");
  run_forward(cfg, input, filters, bias.empty() ? nullptr : bias.data(), relu,
              output);
  return true;
}

void DepthwiseConv::backward_data(const ConvConfig& cfg,
                                  const Tensor& grad_output,
                                  const Tensor& filters,
                                  Tensor& grad_input) const {
  check(grad_output.shape() == cfg.output_shape(),
        "grad_output shape mismatch");
  check(filters.shape() == cfg.filter_shape(), "filter shape mismatch");
  check(grad_input.shape() == cfg.input_shape(), "grad_input shape mismatch");
  check(cfg.groups == cfg.channels, "depthwise requires groups == channels");
  const std::size_t o = cfg.output();
  const std::size_t in = cfg.input;
  const std::size_t k = cfg.kernel;
  const std::size_t s = cfg.stride;
  const std::size_t p = cfg.pad;
  const std::size_t mult = cfg.group_filters();

  // Each (image, channel) gradient plane gathers from the multiplier's
  // worth of filters that read this channel.
  parallel_for(0, cfg.batch * cfg.channels, [&](std::size_t job) {
    const std::size_t n = job / cfg.channels;
    const std::size_t c = job % cfg.channels;
    float* gin_plane = grad_input.plane(n, c);
    for (std::size_t iy = 0; iy < in; ++iy) {
      for (std::size_t ix = 0; ix < in; ++ix) {
        double acc = 0.0;
        for (std::size_t m = 0; m < mult; ++m) {
          const std::size_t f = c * mult + m;
          const float* gout_plane = grad_output.plane(n, f);
          const float* w_plane = filters.plane(f, 0);
          for (std::size_t ky = 0; ky < k; ++ky) {
            const std::size_t target_y = iy + p;
            if (target_y < ky) break;
            const std::size_t ydist = target_y - ky;
            if (ydist % s != 0) continue;
            const std::size_t y = ydist / s;
            if (y >= o) continue;
            for (std::size_t kx = 0; kx < k; ++kx) {
              const std::size_t target_x = ix + p;
              if (target_x < kx) break;
              const std::size_t xdist = target_x - kx;
              if (xdist % s != 0) continue;
              const std::size_t x = xdist / s;
              if (x >= o) continue;
              acc += static_cast<double>(gout_plane[y * o + x]) *
                     w_plane[ky * k + kx];
            }
          }
        }
        gin_plane[iy * in + ix] = static_cast<float>(acc);
      }
    }
  });
}

void DepthwiseConv::backward_filter(const ConvConfig& cfg, const Tensor& input,
                                    const Tensor& grad_output,
                                    Tensor& grad_filters) const {
  check(input.shape() == cfg.input_shape(), "input shape mismatch");
  check(grad_output.shape() == cfg.output_shape(),
        "grad_output shape mismatch");
  check(grad_filters.shape() == cfg.filter_shape(),
        "grad_filters shape mismatch");
  check(cfg.groups == cfg.channels, "depthwise requires groups == channels");
  const std::size_t o = cfg.output();
  const std::size_t in = cfg.input;
  const std::size_t k = cfg.kernel;
  const std::size_t s = cfg.stride;
  const std::size_t p = cfg.pad;
  const std::size_t mult = cfg.group_filters();

  // Each filter's k*k weight plane is independent; the batch + spatial
  // reduction happens inside the job with double accumulators.
  parallel_for(0, cfg.filters, [&](std::size_t f) {
    const std::size_t c = f / mult;
    float* gw_plane = grad_filters.plane(f, 0);
    for (std::size_t ky = 0; ky < k; ++ky) {
      for (std::size_t kx = 0; kx < k; ++kx) {
        double acc = 0.0;
        for (std::size_t n = 0; n < cfg.batch; ++n) {
          const float* gout_plane = grad_output.plane(n, f);
          const float* in_plane = input.plane(n, c);
          for (std::size_t y = 0; y < o; ++y) {
            const std::size_t iy = y * s + ky;
            if (iy < p || iy >= in + p) continue;
            const float* in_row = in_plane + (iy - p) * in;
            const float* gout_row = gout_plane + y * o;
            for (std::size_t x = 0; x < o; ++x) {
              const std::size_t ix = x * s + kx;
              if (ix < p || ix >= in + p) continue;
              acc += static_cast<double>(gout_row[x]) * in_row[ix - p];
            }
          }
        }
        gw_plane[ky * k + kx] = static_cast<float>(acc);
      }
    }
  });
}

}  // namespace gpucnn::conv
