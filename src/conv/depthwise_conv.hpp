// Depthwise convolution: the memory-bound degenerate grouping
// (groups == channels) popularised by MobileNet-style separable blocks.
//
// The paper's seven frameworks predate depthwise-separable convolution;
// this engine is the reproduction's post-paper extension for it. Each
// filter reads exactly one input channel (channel multiplier M =
// filters / channels filters share each channel), so there is no
// reduction over channels to feed a GEMM — im2col-based engines waste
// their data movement here. Instead the engine walks the spatial window
// directly with a vectorised row inner loop, needs no workspace, and
// parallelises over independent (image, channel/filter) planes.
#pragma once

#include "conv/conv_engine.hpp"

namespace gpucnn::conv {

/// Sliding-window engine specialised for groups == channels (any
/// channel multiplier). Declines everything else in supports().
class DepthwiseConv final : public ConvEngine {
 public:
  [[nodiscard]] Strategy strategy() const override {
    return Strategy::kDirect;
  }
  [[nodiscard]] std::string_view name() const override {
    return "depthwise";
  }
  /// Only depthwise-degenerate groupings: one input channel per group.
  [[nodiscard]] bool supports(const ConvConfig& cfg) const override {
    return cfg.groups == cfg.channels && cfg.channels % cfg.groups == 0 &&
           cfg.filters % cfg.groups == 0;
  }

  void forward(const ConvConfig& cfg, const Tensor& input,
               const Tensor& filters, Tensor& output) const override;
  [[nodiscard]] bool forward_fused(const ConvConfig& cfg, const Tensor& input,
                                   const Tensor& filters,
                                   std::span<const float> bias, bool relu,
                                   Tensor& output) const override;
  void backward_data(const ConvConfig& cfg, const Tensor& grad_output,
                     const Tensor& filters, Tensor& grad_input) const override;
  void backward_filter(const ConvConfig& cfg, const Tensor& input,
                       const Tensor& grad_output,
                       Tensor& grad_filters) const override;

 private:
  static void run_forward(const ConvConfig& cfg, const Tensor& input,
                          const Tensor& filters, const float* bias, bool relu,
                          Tensor& output);
};

}  // namespace gpucnn::conv
