#include "conv/gemm_conv.hpp"

#include <atomic>

#include "blas/gemm.hpp"
#include "blas/packed.hpp"
#include "conv/im2col.hpp"
#include "core/workspace.hpp"

namespace gpucnn::conv {

using blas::Trans;

namespace {

// One group's geometry, as a standalone ungrouped configuration; the
// per-image loops below offset channel/filter planes per group.
ConvConfig group_view(const ConvConfig& cfg) {
  ConvConfig g = cfg;
  g.channels = cfg.group_channels();
  g.filters = cfg.group_filters();
  g.groups = 1;
  return g;
}

std::atomic<bool> g_pointwise_fast_path{true};

// For a 1x1 stride-1 pad-0 convolution, im2col is the identity: the
// column matrix is (C x OhOw) with OhOw == input^2 — exactly the input
// plane block, same values, same leading dimension. The GEMMs can then
// consume (and col2im targets receive) the NCHW activations directly,
// skipping the staging copy entirely (cuConv's observation: the
// transform adds no locality on pointwise shapes).
bool pointwise(const ConvConfig& cfg) {
  return cfg.kernel == 1 && cfg.stride == 1 && cfg.pad == 0 &&
         g_pointwise_fast_path.load(std::memory_order_relaxed);
}

}  // namespace

bool set_pointwise_fast_path(bool enabled) {
  return g_pointwise_fast_path.exchange(enabled, std::memory_order_relaxed);
}

void GemmConv::forward(const ConvConfig& cfg, const Tensor& input,
                       const Tensor& filters, Tensor& output) const {
  run_forward(cfg, input, filters, output, nullptr, false);
}

bool GemmConv::forward_fused(const ConvConfig& cfg, const Tensor& input,
                             const Tensor& filters,
                             std::span<const float> bias, bool relu,
                             Tensor& output) const {
  check(bias.empty() || bias.size() == cfg.filters,
        "fused bias length must equal the filter count");
  run_forward(cfg, input, filters, output,
              bias.empty() ? nullptr : bias.data(), relu);
  return true;
}

bool GemmConv::forward_prepacked(const ConvConfig& cfg, const Tensor& input,
                                 const PackedFilters& packed,
                                 const Tensor& filters,
                                 std::span<const float> bias, bool relu,
                                 Tensor& output) const {
  if (packed.groups.size() != cfg.groups) return false;
  check(bias.empty() || bias.size() == cfg.filters,
        "fused bias length must equal the filter count");
  run_forward(cfg, input, filters, output,
              bias.empty() ? nullptr : bias.data(), relu, &packed);
  return true;
}

void GemmConv::run_forward(const ConvConfig& cfg, const Tensor& input,
                           const Tensor& filters, Tensor& output,
                           const float* bias, bool relu,
                           const PackedFilters* packed) {
  validate_forward(cfg, input, filters, output);
  const ConvConfig gv = group_view(cfg);
  const std::size_t o = cfg.output();
  const std::size_t ckk = gv.channels * cfg.kernel * cfg.kernel;
  const std::size_t cols = o * o;
  const bool direct_b = pointwise(cfg);
  ws::Scratch<float> col(direct_b ? 0 : col_buffer_size(gv));

  // Per image and group: out(F_g x OhOw) = W_g(F_g x CKK) * col. The
  // GEMM itself is parallel, matching Caffe's per-image cuBLAS calls.
  // Bias + ReLU (when requested) ride the GEMM's write-back epilogue:
  // the GEMM rows are this group's filters, so row i gets bias[g*F_g+i].
  // Pointwise shapes feed the GEMM the input planes directly (see
  // pointwise() above) — no im2col, same result bit-for-bit.
  for (std::size_t n = 0; n < cfg.batch; ++n) {
    for (std::size_t g = 0; g < cfg.groups; ++g) {
      std::span<const float> b{
          input.plane(n, g * gv.channels),
          gv.channels * cfg.input * cfg.input};
      if (!direct_b) {
        im2col(gv, b, col.span());
        b = col.span();
      }
      const blas::Epilogue ep{
          .bias = bias == nullptr ? nullptr : bias + g * gv.filters,
          .relu = relu};
      const std::span<float> out{output.plane(n, g * gv.filters),
                                 gv.filters * cols};
      if (packed != nullptr) {
        // Weights come from the per-group pack; a stale or mismatched
        // pack falls back to the staged path inside the driver.
        blas::sgemm_prepacked(gv.filters, cols, ckk, 1.0F,
                              packed->groups[g], Trans::kNo, b, cols, 0.0F,
                              out, cols, ep);
      } else {
        blas::sgemm(Trans::kNo, Trans::kNo, gv.filters, cols, ckk, 1.0F,
                    {filters.plane(g * gv.filters, 0), gv.filters * ckk},
                    ckk, b, cols, 0.0F, out, cols, ep);
      }
    }
  }
}

void GemmConv::backward_data(const ConvConfig& cfg, const Tensor& grad_output,
                             const Tensor& filters,
                             Tensor& grad_input) const {
  check(grad_output.shape() == cfg.output_shape(),
        "grad_output shape mismatch");
  check(filters.shape() == cfg.filter_shape(), "filter shape mismatch");
  check(grad_input.shape() == cfg.input_shape(), "grad_input shape mismatch");
  const ConvConfig gv = group_view(cfg);
  const std::size_t o = cfg.output();
  const std::size_t ckk = gv.channels * cfg.kernel * cfg.kernel;
  const std::size_t cols = o * o;
  const bool direct_c = pointwise(cfg);
  ws::Scratch<float> col(direct_c ? 0 : col_buffer_size(gv));
  if (!direct_c) grad_input.fill(0.0F);

  // Per image and group: col_grad(CKK x OhOw) = W_g^T(CKK x F_g) *
  // gout_g(F_g x OhOw), then col2im scatters into the input gradient.
  // On pointwise shapes every input cell receives exactly one column
  // cell, so the GEMM writes the gradient planes directly (beta = 0
  // replaces the zero-fill + scatter-add).
  for (std::size_t n = 0; n < cfg.batch; ++n) {
    for (std::size_t g = 0; g < cfg.groups; ++g) {
      std::span<float> gin{grad_input.plane(n, g * gv.channels),
                           gv.channels * cfg.input * cfg.input};
      blas::sgemm(Trans::kYes, Trans::kNo, ckk, cols, gv.filters, 1.0F,
                  {filters.plane(g * gv.filters, 0), gv.filters * ckk},
                  ckk,
                  {grad_output.plane(n, g * gv.filters), gv.filters * cols},
                  cols, 0.0F, direct_c ? gin : col.span(), cols);
      if (!direct_c) col2im(gv, col.span(), gin);
    }
  }
}

void GemmConv::backward_filter(const ConvConfig& cfg, const Tensor& input,
                               const Tensor& grad_output,
                               Tensor& grad_filters) const {
  check(input.shape() == cfg.input_shape(), "input shape mismatch");
  check(grad_output.shape() == cfg.output_shape(),
        "grad_output shape mismatch");
  check(grad_filters.shape() == cfg.filter_shape(),
        "grad_filters shape mismatch");
  const ConvConfig gv = group_view(cfg);
  const std::size_t o = cfg.output();
  const std::size_t ckk = gv.channels * cfg.kernel * cfg.kernel;
  const std::size_t cols = o * o;
  const bool direct_b = pointwise(cfg);
  ws::Scratch<float> col(direct_b ? 0 : col_buffer_size(gv));
  grad_filters.fill(0.0F);

  // Per image and group: gw_g(F_g x CKK) += gout_g * col^T. Pointwise
  // shapes read the input planes as the column matrix directly.
  for (std::size_t n = 0; n < cfg.batch; ++n) {
    for (std::size_t g = 0; g < cfg.groups; ++g) {
      std::span<const float> b{
          input.plane(n, g * gv.channels),
          gv.channels * cfg.input * cfg.input};
      if (!direct_b) {
        im2col(gv, b, col.span());
        b = col.span();
      }
      blas::sgemm(Trans::kNo, Trans::kYes, gv.filters, ckk, cols, 1.0F,
                  {grad_output.plane(n, g * gv.filters), gv.filters * cols},
                  cols, b, cols, 1.0F,
                  {grad_filters.plane(g * gv.filters, 0),
                   gv.filters * ckk},
                  ckk);
    }
  }
}

}  // namespace gpucnn::conv
