#include "conv/tiled_fft_conv.hpp"

#include <cmath>

#include "core/thread_pool.hpp"
#include "fft/fft.hpp"

namespace gpucnn::conv {

TiledFftConv::TiledFftConv(std::size_t tile) : tile_(tile) {
  check(tile == 0 || (fft::is_pow2(tile)),
        "tile size must be 0 (auto) or a power of two");
}

std::size_t TiledFftConv::tile_for(const ConvConfig& cfg) const {
  const std::size_t single = FftConv::transform_size(cfg);
  if (tile_ != 0) {
    check(tile_ > cfg.kernel, "tile must exceed the kernel size");
    return std::min(tile_, single);
  }
  // Auto: smallest power of two >= 2k whose total transform area does
  // not exceed the single transform's.
  const double out_span =
      static_cast<double>(cfg.input + 2 * cfg.pad - cfg.kernel + 1);
  std::size_t best = single;
  double best_area = static_cast<double>(single) * single;
  for (std::size_t t = fft::next_pow2(2 * cfg.kernel); t < single;
       t *= 2) {
    const double stride = static_cast<double>(t - cfg.kernel + 1);
    const double nt = std::ceil(out_span / stride);
    const double area = nt * nt * static_cast<double>(t) * t;
    if (area <= best_area) {
      best = t;
      best_area = area;
    }
  }
  return best;
}

void TiledFftConv::forward(const ConvConfig& cfg, const Tensor& input,
                           const Tensor& filters, Tensor& output) const {
  validate_forward(cfg, input, filters, output);
  check(supports(cfg), "FFT convolution requires stride 1");
  const std::size_t tile = tile_for(cfg);
  if (tile >= FftConv::transform_size(cfg)) {
    untiled_.forward(cfg, input, filters, output);
    return;
  }

  const std::size_t o = cfg.output();
  const std::size_t in = cfg.input;
  const std::size_t p = cfg.pad;
  const std::size_t out_tile = tile - cfg.kernel + 1;
  const std::size_t tiles = (o + out_tile - 1) / out_tile;

  // Per-tile configuration: a `tile`-sized valid convolution, unpadded
  // (padding is materialised while gathering patches).
  ConvConfig tcfg = cfg;
  tcfg.input = tile;
  tcfg.pad = 0;
  check(tcfg.output() == out_tile, "tile geometry mismatch");

  parallel_for(0, tiles * tiles, [&](std::size_t t_index) {
    const std::size_t ty = t_index / tiles;
    const std::size_t tx = t_index % tiles;
    // Gather the input patch (zero beyond the padded image).
    Tensor patch(cfg.batch, cfg.channels, tile, tile);
    for (std::size_t n = 0; n < cfg.batch; ++n) {
      for (std::size_t c = 0; c < cfg.channels; ++c) {
        const float* src = input.plane(n, c);
        float* dst = patch.plane(n, c);
        for (std::size_t y = 0; y < tile; ++y) {
          const std::size_t iy = ty * out_tile + y;  // padded coords
          if (iy < p || iy >= in + p) continue;
          for (std::size_t x = 0; x < tile; ++x) {
            const std::size_t ix = tx * out_tile + x;
            if (ix < p || ix >= in + p) continue;
            dst[y * tile + x] = src[(iy - p) * in + (ix - p)];
          }
        }
      }
    }
    Tensor tile_out(tcfg.output_shape());
    untiled_.forward(tcfg, patch, filters, tile_out);
    // Scatter the valid region into the output.
    for (std::size_t n = 0; n < cfg.batch; ++n) {
      for (std::size_t f = 0; f < cfg.filters; ++f) {
        const float* src = tile_out.plane(n, f);
        float* dst = output.plane(n, f);
        for (std::size_t y = 0; y < out_tile; ++y) {
          const std::size_t oy = ty * out_tile + y;
          if (oy >= o) break;
          for (std::size_t x = 0; x < out_tile; ++x) {
            const std::size_t ox = tx * out_tile + x;
            if (ox >= o) break;
            dst[oy * o + ox] = src[y * out_tile + x];
          }
        }
      }
    }
  });
}

void TiledFftConv::backward_data(const ConvConfig& cfg,
                                 const Tensor& grad_output,
                                 const Tensor& filters,
                                 Tensor& grad_input) const {
  untiled_.backward_data(cfg, grad_output, filters, grad_input);
}

void TiledFftConv::backward_filter(const ConvConfig& cfg,
                                   const Tensor& input,
                                   const Tensor& grad_output,
                                   Tensor& grad_filters) const {
  untiled_.backward_filter(cfg, input, grad_output, grad_filters);
}

}  // namespace gpucnn::conv
