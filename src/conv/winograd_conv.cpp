#include "conv/winograd_conv.hpp"

#include <algorithm>
#include <cstring>

#include "blas/gemm.hpp"
#include "core/cpu_features.hpp"
#include "core/thread_pool.hpp"
#include "core/workspace.hpp"
#include "obs/metrics.hpp"

#if GPUCNN_X86_SIMD
#include <immintrin.h>
#endif

namespace gpucnn::conv {
namespace {

obs::Counter& fallback_counter() {
  static obs::Counter& c = obs::metrics().counter("conv.winograd.fallbacks");
  return c;
}

// ---------------------------------------------------------------------------
// Scalar transforms, strided: element e of the source lives at s[e * ss],
// element t of the destination at d[t * ds]. One function per (tile size,
// transform); each is a two-pass application of the defining matrix pair.
// Operation order is chosen once here and mirrored exactly by the AVX2
// versions, so both dispatch paths produce bit-identical results.
// ---------------------------------------------------------------------------

// F(2x2,3x3): B^T = [1 0 -1 0; 0 1 1 0; 0 -1 1 0; 0 1 0 -1]
void data_tf_f2(const float* s, std::size_t ss, float* d, std::size_t ds) {
  float t[16];
  for (int col = 0; col < 4; ++col) {
    const float a0 = s[(0 * 4 + col) * ss];
    const float a1 = s[(1 * 4 + col) * ss];
    const float a2 = s[(2 * 4 + col) * ss];
    const float a3 = s[(3 * 4 + col) * ss];
    t[0 * 4 + col] = a0 - a2;
    t[1 * 4 + col] = a1 + a2;
    t[2 * 4 + col] = a2 - a1;
    t[3 * 4 + col] = a1 - a3;
  }
  for (int row = 0; row < 4; ++row) {
    const float a0 = t[row * 4 + 0];
    const float a1 = t[row * 4 + 1];
    const float a2 = t[row * 4 + 2];
    const float a3 = t[row * 4 + 3];
    d[(row * 4 + 0) * ds] = a0 - a2;
    d[(row * 4 + 1) * ds] = a1 + a2;
    d[(row * 4 + 2) * ds] = a2 - a1;
    d[(row * 4 + 3) * ds] = a1 - a3;
  }
}

// F(4x4,3x3): B^T = [4 0 -5 0 1 0; 0 -4 -4 1 1 0; 0 4 -4 -1 1 0;
//                    0 -2 -1 2 1 0; 0 2 -1 -2 1 0; 0 4 0 -5 0 1]
void data_tf_f4(const float* s, std::size_t ss, float* d, std::size_t ds) {
  float t[36];
  for (int col = 0; col < 6; ++col) {
    const float a0 = s[(0 * 6 + col) * ss];
    const float a1 = s[(1 * 6 + col) * ss];
    const float a2 = s[(2 * 6 + col) * ss];
    const float a3 = s[(3 * 6 + col) * ss];
    const float a4 = s[(4 * 6 + col) * ss];
    const float a5 = s[(5 * 6 + col) * ss];
    t[0 * 6 + col] = (4.0F * a0 - 5.0F * a2) + a4;
    t[1 * 6 + col] = (a3 + a4) - 4.0F * (a1 + a2);
    t[2 * 6 + col] = 4.0F * (a1 - a2) + (a4 - a3);
    t[3 * 6 + col] = 2.0F * (a3 - a1) + (a4 - a2);
    t[4 * 6 + col] = 2.0F * (a1 - a3) + (a4 - a2);
    t[5 * 6 + col] = (4.0F * a1 - 5.0F * a3) + a5;
  }
  for (int row = 0; row < 6; ++row) {
    const float a0 = t[row * 6 + 0];
    const float a1 = t[row * 6 + 1];
    const float a2 = t[row * 6 + 2];
    const float a3 = t[row * 6 + 3];
    const float a4 = t[row * 6 + 4];
    const float a5 = t[row * 6 + 5];
    d[(row * 6 + 0) * ds] = (4.0F * a0 - 5.0F * a2) + a4;
    d[(row * 6 + 1) * ds] = (a3 + a4) - 4.0F * (a1 + a2);
    d[(row * 6 + 2) * ds] = 4.0F * (a1 - a2) + (a4 - a3);
    d[(row * 6 + 3) * ds] = 2.0F * (a3 - a1) + (a4 - a2);
    d[(row * 6 + 4) * ds] = 2.0F * (a1 - a3) + (a4 - a2);
    d[(row * 6 + 5) * ds] = (4.0F * a1 - 5.0F * a3) + a5;
  }
}

// F(2x2,3x3): G = [1 0 0; .5 .5 .5; .5 -.5 .5; 0 0 1]
void filter_tf_f2(const float* s, std::size_t ss, float* d, std::size_t ds) {
  float t[12];
  for (int col = 0; col < 3; ++col) {
    const float g0 = s[(0 * 3 + col) * ss];
    const float g1 = s[(1 * 3 + col) * ss];
    const float g2 = s[(2 * 3 + col) * ss];
    t[0 * 3 + col] = g0;
    t[1 * 3 + col] = 0.5F * ((g0 + g1) + g2);
    t[2 * 3 + col] = 0.5F * ((g0 - g1) + g2);
    t[3 * 3 + col] = g2;
  }
  for (int row = 0; row < 4; ++row) {
    const float g0 = t[row * 3 + 0];
    const float g1 = t[row * 3 + 1];
    const float g2 = t[row * 3 + 2];
    d[(row * 4 + 0) * ds] = g0;
    d[(row * 4 + 1) * ds] = 0.5F * ((g0 + g1) + g2);
    d[(row * 4 + 2) * ds] = 0.5F * ((g0 - g1) + g2);
    d[(row * 4 + 3) * ds] = g2;
  }
}

// F(4x4,3x3): G = [1/4 0 0; -1/6 -1/6 -1/6; -1/6 1/6 -1/6;
//                  1/24 1/12 1/6; 1/24 -1/12 1/6; 0 0 1]
constexpr float kN6 = -1.0F / 6.0F;
constexpr float kP6 = 1.0F / 6.0F;
constexpr float kP12 = 1.0F / 12.0F;
constexpr float kP24 = 1.0F / 24.0F;

void filter_tf_f4(const float* s, std::size_t ss, float* d, std::size_t ds) {
  float t[18];
  for (int col = 0; col < 3; ++col) {
    const float g0 = s[(0 * 3 + col) * ss];
    const float g1 = s[(1 * 3 + col) * ss];
    const float g2 = s[(2 * 3 + col) * ss];
    t[0 * 3 + col] = 0.25F * g0;
    t[1 * 3 + col] = kN6 * ((g0 + g1) + g2);
    t[2 * 3 + col] = kP6 * ((g1 - g0) - g2);
    t[3 * 3 + col] = (kP24 * g0 + kP12 * g1) + kP6 * g2;
    t[4 * 3 + col] = (kP24 * g0 - kP12 * g1) + kP6 * g2;
    t[5 * 3 + col] = g2;
  }
  for (int row = 0; row < 6; ++row) {
    const float g0 = t[row * 3 + 0];
    const float g1 = t[row * 3 + 1];
    const float g2 = t[row * 3 + 2];
    d[(row * 6 + 0) * ds] = 0.25F * g0;
    d[(row * 6 + 1) * ds] = kN6 * ((g0 + g1) + g2);
    d[(row * 6 + 2) * ds] = kP6 * ((g1 - g0) - g2);
    d[(row * 6 + 3) * ds] = (kP24 * g0 + kP12 * g1) + kP6 * g2;
    d[(row * 6 + 4) * ds] = (kP24 * g0 - kP12 * g1) + kP6 * g2;
    d[(row * 6 + 5) * ds] = g2;
  }
}

// F(2x2,3x3): A^T = [1 1 1 0; 0 1 -1 -1]
void output_tf_f2(const float* s, std::size_t ss, float* d, std::size_t ds) {
  float t[8];
  for (int col = 0; col < 4; ++col) {
    const float m0 = s[(0 * 4 + col) * ss];
    const float m1 = s[(1 * 4 + col) * ss];
    const float m2 = s[(2 * 4 + col) * ss];
    const float m3 = s[(3 * 4 + col) * ss];
    t[0 * 4 + col] = (m0 + m1) + m2;
    t[1 * 4 + col] = (m1 - m2) - m3;
  }
  for (int row = 0; row < 2; ++row) {
    const float m0 = t[row * 4 + 0];
    const float m1 = t[row * 4 + 1];
    const float m2 = t[row * 4 + 2];
    const float m3 = t[row * 4 + 3];
    d[(row * 2 + 0) * ds] = (m0 + m1) + m2;
    d[(row * 2 + 1) * ds] = (m1 - m2) - m3;
  }
}

// F(4x4,3x3): A^T = [1 1 1 1 1 0; 0 1 -1 2 -2 0; 0 1 1 4 4 0;
//                    0 1 -1 8 -8 1]
void output_tf_f4(const float* s, std::size_t ss, float* d, std::size_t ds) {
  float t[24];
  for (int col = 0; col < 6; ++col) {
    const float m0 = s[(0 * 6 + col) * ss];
    const float m1 = s[(1 * 6 + col) * ss];
    const float m2 = s[(2 * 6 + col) * ss];
    const float m3 = s[(3 * 6 + col) * ss];
    const float m4 = s[(4 * 6 + col) * ss];
    const float m5 = s[(5 * 6 + col) * ss];
    const float p1 = m1 + m2;
    const float p2 = m3 + m4;
    const float q1 = m1 - m2;
    const float q2 = m3 - m4;
    t[0 * 6 + col] = (m0 + p1) + p2;
    t[1 * 6 + col] = q1 + 2.0F * q2;
    t[2 * 6 + col] = p1 + 4.0F * p2;
    t[3 * 6 + col] = (q1 + 8.0F * q2) + m5;
  }
  for (int row = 0; row < 4; ++row) {
    const float m0 = t[row * 6 + 0];
    const float m1 = t[row * 6 + 1];
    const float m2 = t[row * 6 + 2];
    const float m3 = t[row * 6 + 3];
    const float m4 = t[row * 6 + 4];
    const float m5 = t[row * 6 + 5];
    const float p1 = m1 + m2;
    const float p2 = m3 + m4;
    const float q1 = m1 - m2;
    const float q2 = m3 - m4;
    d[(row * 4 + 0) * ds] = (m0 + p1) + p2;
    d[(row * 4 + 1) * ds] = q1 + 2.0F * q2;
    d[(row * 4 + 2) * ds] = p1 + 4.0F * p2;
    d[(row * 4 + 3) * ds] = (q1 + 8.0F * q2) + m5;
  }
}

// Backward-filter: dM = A dY A^T, the adjoint of the output transform.
// F(2x2,3x3): A (4x2) rows = (1,0), (1,1), (1,-1), (0,-1).
void grad_out_tf_f2(const float* s, std::size_t ss, float* d, std::size_t ds) {
  float t[8];
  for (int col = 0; col < 2; ++col) {
    const float y0 = s[(0 * 2 + col) * ss];
    const float y1 = s[(1 * 2 + col) * ss];
    t[0 * 2 + col] = y0;
    t[1 * 2 + col] = y0 + y1;
    t[2 * 2 + col] = y0 - y1;
    t[3 * 2 + col] = -y1;
  }
  for (int row = 0; row < 4; ++row) {
    const float y0 = t[row * 2 + 0];
    const float y1 = t[row * 2 + 1];
    d[(row * 4 + 0) * ds] = y0;
    d[(row * 4 + 1) * ds] = y0 + y1;
    d[(row * 4 + 2) * ds] = y0 - y1;
    d[(row * 4 + 3) * ds] = -y1;
  }
}

// F(4x4,3x3): A (6x4) rows = (1,0,0,0), (1,1,1,1), (1,-1,1,-1),
// (1,2,4,8), (1,-2,4,-8), (0,0,0,1).
void grad_out_tf_f4(const float* s, std::size_t ss, float* d, std::size_t ds) {
  float t[24];
  for (int col = 0; col < 4; ++col) {
    const float y0 = s[(0 * 4 + col) * ss];
    const float y1 = s[(1 * 4 + col) * ss];
    const float y2 = s[(2 * 4 + col) * ss];
    const float y3 = s[(3 * 4 + col) * ss];
    t[0 * 4 + col] = y0;
    t[1 * 4 + col] = (y0 + y1) + (y2 + y3);
    t[2 * 4 + col] = (y0 - y1) + (y2 - y3);
    t[3 * 4 + col] = (y0 + 2.0F * y1) + (4.0F * y2 + 8.0F * y3);
    t[4 * 4 + col] = (y0 - 2.0F * y1) + (4.0F * y2 - 8.0F * y3);
    t[5 * 4 + col] = y3;
  }
  for (int row = 0; row < 6; ++row) {
    const float y0 = t[row * 4 + 0];
    const float y1 = t[row * 4 + 1];
    const float y2 = t[row * 4 + 2];
    const float y3 = t[row * 4 + 3];
    d[(row * 6 + 0) * ds] = y0;
    d[(row * 6 + 1) * ds] = (y0 + y1) + (y2 + y3);
    d[(row * 6 + 2) * ds] = (y0 - y1) + (y2 - y3);
    d[(row * 6 + 3) * ds] = (y0 + 2.0F * y1) + (4.0F * y2 + 8.0F * y3);
    d[(row * 6 + 4) * ds] = (y0 - 2.0F * y1) + (4.0F * y2 - 8.0F * y3);
    d[(row * 6 + 5) * ds] = y3;
  }
}

// Backward-filter: dg = G^T dU G, the adjoint of the filter transform.
void grad_filter_tf_f2(const float* s, std::size_t ss, float* d,
                       std::size_t ds) {
  float t[12];
  for (int col = 0; col < 4; ++col) {
    const float u0 = s[(0 * 4 + col) * ss];
    const float u1 = s[(1 * 4 + col) * ss];
    const float u2 = s[(2 * 4 + col) * ss];
    const float u3 = s[(3 * 4 + col) * ss];
    t[0 * 4 + col] = u0 + 0.5F * (u1 + u2);
    t[1 * 4 + col] = 0.5F * (u1 - u2);
    t[2 * 4 + col] = 0.5F * (u1 + u2) + u3;
  }
  for (int row = 0; row < 3; ++row) {
    const float u0 = t[row * 4 + 0];
    const float u1 = t[row * 4 + 1];
    const float u2 = t[row * 4 + 2];
    const float u3 = t[row * 4 + 3];
    d[(row * 3 + 0) * ds] = u0 + 0.5F * (u1 + u2);
    d[(row * 3 + 1) * ds] = 0.5F * (u1 - u2);
    d[(row * 3 + 2) * ds] = 0.5F * (u1 + u2) + u3;
  }
}

void grad_filter_tf_f4(const float* s, std::size_t ss, float* d,
                       std::size_t ds) {
  float t[18];
  for (int col = 0; col < 6; ++col) {
    const float u0 = s[(0 * 6 + col) * ss];
    const float u1 = s[(1 * 6 + col) * ss];
    const float u2 = s[(2 * 6 + col) * ss];
    const float u3 = s[(3 * 6 + col) * ss];
    const float u4 = s[(4 * 6 + col) * ss];
    const float u5 = s[(5 * 6 + col) * ss];
    t[0 * 6 + col] = (0.25F * u0 + kN6 * (u1 + u2)) + kP24 * (u3 + u4);
    t[1 * 6 + col] = kP6 * (u2 - u1) + kP12 * (u3 - u4);
    t[2 * 6 + col] = kP6 * ((u3 + u4) - (u1 + u2)) + u5;
  }
  for (int row = 0; row < 3; ++row) {
    const float u0 = t[row * 6 + 0];
    const float u1 = t[row * 6 + 1];
    const float u2 = t[row * 6 + 2];
    const float u3 = t[row * 6 + 3];
    const float u4 = t[row * 6 + 4];
    const float u5 = t[row * 6 + 5];
    d[(row * 3 + 0) * ds] = (0.25F * u0 + kN6 * (u1 + u2)) + kP24 * (u3 + u4);
    d[(row * 3 + 1) * ds] = kP6 * (u2 - u1) + kP12 * (u3 - u4);
    d[(row * 3 + 2) * ds] = kP6 * ((u3 + u4) - (u1 + u2)) + u5;
  }
}

// ---------------------------------------------------------------------------
// AVX2 transforms: 8 tiles at a time in SoA form — element e of the 8
// gathered tiles lives at b[e * 8 + lane], one __m256 per tile element.
// Same operation order as the scalar functions above (mul + add, no FMA
// contraction), so the two dispatch paths stay bit-identical.
// ---------------------------------------------------------------------------
#if GPUCNN_X86_SIMD

inline bool use_avx2() { return simd::active() == simd::Level::kAvx2; }

__attribute__((target("avx2"))) void data_tf8_f2_avx2(const float* b,
                                                      float* dst,
                                                      std::size_t ts) {
  __m256 t[16];
  for (int col = 0; col < 4; ++col) {
    const __m256 a0 = _mm256_loadu_ps(b + (0 * 4 + col) * 8);
    const __m256 a1 = _mm256_loadu_ps(b + (1 * 4 + col) * 8);
    const __m256 a2 = _mm256_loadu_ps(b + (2 * 4 + col) * 8);
    const __m256 a3 = _mm256_loadu_ps(b + (3 * 4 + col) * 8);
    t[0 * 4 + col] = _mm256_sub_ps(a0, a2);
    t[1 * 4 + col] = _mm256_add_ps(a1, a2);
    t[2 * 4 + col] = _mm256_sub_ps(a2, a1);
    t[3 * 4 + col] = _mm256_sub_ps(a1, a3);
  }
  for (int row = 0; row < 4; ++row) {
    const __m256 a0 = t[row * 4 + 0];
    const __m256 a1 = t[row * 4 + 1];
    const __m256 a2 = t[row * 4 + 2];
    const __m256 a3 = t[row * 4 + 3];
    _mm256_storeu_ps(dst + (row * 4 + 0) * ts, _mm256_sub_ps(a0, a2));
    _mm256_storeu_ps(dst + (row * 4 + 1) * ts, _mm256_add_ps(a1, a2));
    _mm256_storeu_ps(dst + (row * 4 + 2) * ts, _mm256_sub_ps(a2, a1));
    _mm256_storeu_ps(dst + (row * 4 + 3) * ts, _mm256_sub_ps(a1, a3));
  }
}

__attribute__((target("avx2"))) void data_tf8_f4_avx2(const float* b,
                                                      float* dst,
                                                      std::size_t ts) {
  const __m256 k2 = _mm256_set1_ps(2.0F);
  const __m256 k4 = _mm256_set1_ps(4.0F);
  const __m256 k5 = _mm256_set1_ps(5.0F);
  __m256 t[36];
  for (int col = 0; col < 6; ++col) {
    const __m256 a0 = _mm256_loadu_ps(b + (0 * 6 + col) * 8);
    const __m256 a1 = _mm256_loadu_ps(b + (1 * 6 + col) * 8);
    const __m256 a2 = _mm256_loadu_ps(b + (2 * 6 + col) * 8);
    const __m256 a3 = _mm256_loadu_ps(b + (3 * 6 + col) * 8);
    const __m256 a4 = _mm256_loadu_ps(b + (4 * 6 + col) * 8);
    const __m256 a5 = _mm256_loadu_ps(b + (5 * 6 + col) * 8);
    t[0 * 6 + col] = _mm256_add_ps(
        _mm256_sub_ps(_mm256_mul_ps(k4, a0), _mm256_mul_ps(k5, a2)), a4);
    t[1 * 6 + col] = _mm256_sub_ps(_mm256_add_ps(a3, a4),
                                   _mm256_mul_ps(k4, _mm256_add_ps(a1, a2)));
    t[2 * 6 + col] = _mm256_add_ps(_mm256_mul_ps(k4, _mm256_sub_ps(a1, a2)),
                                   _mm256_sub_ps(a4, a3));
    t[3 * 6 + col] = _mm256_add_ps(_mm256_mul_ps(k2, _mm256_sub_ps(a3, a1)),
                                   _mm256_sub_ps(a4, a2));
    t[4 * 6 + col] = _mm256_add_ps(_mm256_mul_ps(k2, _mm256_sub_ps(a1, a3)),
                                   _mm256_sub_ps(a4, a2));
    t[5 * 6 + col] = _mm256_add_ps(
        _mm256_sub_ps(_mm256_mul_ps(k4, a1), _mm256_mul_ps(k5, a3)), a5);
  }
  for (int row = 0; row < 6; ++row) {
    const __m256 a0 = t[row * 6 + 0];
    const __m256 a1 = t[row * 6 + 1];
    const __m256 a2 = t[row * 6 + 2];
    const __m256 a3 = t[row * 6 + 3];
    const __m256 a4 = t[row * 6 + 4];
    const __m256 a5 = t[row * 6 + 5];
    _mm256_storeu_ps(
        dst + (row * 6 + 0) * ts,
        _mm256_add_ps(
            _mm256_sub_ps(_mm256_mul_ps(k4, a0), _mm256_mul_ps(k5, a2)), a4));
    _mm256_storeu_ps(dst + (row * 6 + 1) * ts,
                     _mm256_sub_ps(_mm256_add_ps(a3, a4),
                                   _mm256_mul_ps(k4, _mm256_add_ps(a1, a2))));
    _mm256_storeu_ps(dst + (row * 6 + 2) * ts,
                     _mm256_add_ps(_mm256_mul_ps(k4, _mm256_sub_ps(a1, a2)),
                                   _mm256_sub_ps(a4, a3)));
    _mm256_storeu_ps(dst + (row * 6 + 3) * ts,
                     _mm256_add_ps(_mm256_mul_ps(k2, _mm256_sub_ps(a3, a1)),
                                   _mm256_sub_ps(a4, a2)));
    _mm256_storeu_ps(dst + (row * 6 + 4) * ts,
                     _mm256_add_ps(_mm256_mul_ps(k2, _mm256_sub_ps(a1, a3)),
                                   _mm256_sub_ps(a4, a2)));
    _mm256_storeu_ps(
        dst + (row * 6 + 5) * ts,
        _mm256_add_ps(
            _mm256_sub_ps(_mm256_mul_ps(k4, a1), _mm256_mul_ps(k5, a3)), a5));
  }
}

__attribute__((target("avx2"))) void filter_tf8_f2_avx2(const float* b,
                                                        float* dst,
                                                        std::size_t ts) {
  const __m256 kh = _mm256_set1_ps(0.5F);
  __m256 t[12];
  for (int col = 0; col < 3; ++col) {
    const __m256 g0 = _mm256_loadu_ps(b + (0 * 3 + col) * 8);
    const __m256 g1 = _mm256_loadu_ps(b + (1 * 3 + col) * 8);
    const __m256 g2 = _mm256_loadu_ps(b + (2 * 3 + col) * 8);
    t[0 * 3 + col] = g0;
    t[1 * 3 + col] =
        _mm256_mul_ps(kh, _mm256_add_ps(_mm256_add_ps(g0, g1), g2));
    t[2 * 3 + col] =
        _mm256_mul_ps(kh, _mm256_add_ps(_mm256_sub_ps(g0, g1), g2));
    t[3 * 3 + col] = g2;
  }
  for (int row = 0; row < 4; ++row) {
    const __m256 g0 = t[row * 3 + 0];
    const __m256 g1 = t[row * 3 + 1];
    const __m256 g2 = t[row * 3 + 2];
    _mm256_storeu_ps(dst + (row * 4 + 0) * ts, g0);
    _mm256_storeu_ps(
        dst + (row * 4 + 1) * ts,
        _mm256_mul_ps(kh, _mm256_add_ps(_mm256_add_ps(g0, g1), g2)));
    _mm256_storeu_ps(
        dst + (row * 4 + 2) * ts,
        _mm256_mul_ps(kh, _mm256_add_ps(_mm256_sub_ps(g0, g1), g2)));
    _mm256_storeu_ps(dst + (row * 4 + 3) * ts, g2);
  }
}

__attribute__((target("avx2"))) void filter_tf8_f4_avx2(const float* b,
                                                        float* dst,
                                                        std::size_t ts) {
  const __m256 kq = _mm256_set1_ps(0.25F);
  const __m256 kn6 = _mm256_set1_ps(kN6);
  const __m256 kp6 = _mm256_set1_ps(kP6);
  const __m256 kp12 = _mm256_set1_ps(kP12);
  const __m256 kp24 = _mm256_set1_ps(kP24);
  __m256 t[18];
  for (int col = 0; col < 3; ++col) {
    const __m256 g0 = _mm256_loadu_ps(b + (0 * 3 + col) * 8);
    const __m256 g1 = _mm256_loadu_ps(b + (1 * 3 + col) * 8);
    const __m256 g2 = _mm256_loadu_ps(b + (2 * 3 + col) * 8);
    t[0 * 3 + col] = _mm256_mul_ps(kq, g0);
    t[1 * 3 + col] =
        _mm256_mul_ps(kn6, _mm256_add_ps(_mm256_add_ps(g0, g1), g2));
    t[2 * 3 + col] =
        _mm256_mul_ps(kp6, _mm256_sub_ps(_mm256_sub_ps(g1, g0), g2));
    t[3 * 3 + col] = _mm256_add_ps(
        _mm256_add_ps(_mm256_mul_ps(kp24, g0), _mm256_mul_ps(kp12, g1)),
        _mm256_mul_ps(kp6, g2));
    t[4 * 3 + col] = _mm256_add_ps(
        _mm256_sub_ps(_mm256_mul_ps(kp24, g0), _mm256_mul_ps(kp12, g1)),
        _mm256_mul_ps(kp6, g2));
    t[5 * 3 + col] = g2;
  }
  for (int row = 0; row < 6; ++row) {
    const __m256 g0 = t[row * 3 + 0];
    const __m256 g1 = t[row * 3 + 1];
    const __m256 g2 = t[row * 3 + 2];
    _mm256_storeu_ps(dst + (row * 6 + 0) * ts, _mm256_mul_ps(kq, g0));
    _mm256_storeu_ps(
        dst + (row * 6 + 1) * ts,
        _mm256_mul_ps(kn6, _mm256_add_ps(_mm256_add_ps(g0, g1), g2)));
    _mm256_storeu_ps(
        dst + (row * 6 + 2) * ts,
        _mm256_mul_ps(kp6, _mm256_sub_ps(_mm256_sub_ps(g1, g0), g2)));
    _mm256_storeu_ps(
        dst + (row * 6 + 3) * ts,
        _mm256_add_ps(
            _mm256_add_ps(_mm256_mul_ps(kp24, g0), _mm256_mul_ps(kp12, g1)),
            _mm256_mul_ps(kp6, g2)));
    _mm256_storeu_ps(
        dst + (row * 6 + 4) * ts,
        _mm256_add_ps(
            _mm256_sub_ps(_mm256_mul_ps(kp24, g0), _mm256_mul_ps(kp12, g1)),
            _mm256_mul_ps(kp6, g2)));
    _mm256_storeu_ps(dst + (row * 6 + 5) * ts, g2);
  }
}

__attribute__((target("avx2"))) void output_tf8_f2_avx2(const float* msrc,
                                                        std::size_t ts,
                                                        float* y) {
  __m256 t[8];
  for (int col = 0; col < 4; ++col) {
    const __m256 m0 = _mm256_loadu_ps(msrc + (0 * 4 + col) * ts);
    const __m256 m1 = _mm256_loadu_ps(msrc + (1 * 4 + col) * ts);
    const __m256 m2 = _mm256_loadu_ps(msrc + (2 * 4 + col) * ts);
    const __m256 m3 = _mm256_loadu_ps(msrc + (3 * 4 + col) * ts);
    t[0 * 4 + col] = _mm256_add_ps(_mm256_add_ps(m0, m1), m2);
    t[1 * 4 + col] = _mm256_sub_ps(_mm256_sub_ps(m1, m2), m3);
  }
  for (int row = 0; row < 2; ++row) {
    const __m256 m0 = t[row * 4 + 0];
    const __m256 m1 = t[row * 4 + 1];
    const __m256 m2 = t[row * 4 + 2];
    const __m256 m3 = t[row * 4 + 3];
    _mm256_storeu_ps(y + (row * 2 + 0) * 8,
                     _mm256_add_ps(_mm256_add_ps(m0, m1), m2));
    _mm256_storeu_ps(y + (row * 2 + 1) * 8,
                     _mm256_sub_ps(_mm256_sub_ps(m1, m2), m3));
  }
}

__attribute__((target("avx2"))) void output_tf8_f4_avx2(const float* msrc,
                                                        std::size_t ts,
                                                        float* y) {
  const __m256 k2 = _mm256_set1_ps(2.0F);
  const __m256 k4 = _mm256_set1_ps(4.0F);
  const __m256 k8 = _mm256_set1_ps(8.0F);
  __m256 t[24];
  for (int col = 0; col < 6; ++col) {
    const __m256 m0 = _mm256_loadu_ps(msrc + (0 * 6 + col) * ts);
    const __m256 m1 = _mm256_loadu_ps(msrc + (1 * 6 + col) * ts);
    const __m256 m2 = _mm256_loadu_ps(msrc + (2 * 6 + col) * ts);
    const __m256 m3 = _mm256_loadu_ps(msrc + (3 * 6 + col) * ts);
    const __m256 m4 = _mm256_loadu_ps(msrc + (4 * 6 + col) * ts);
    const __m256 m5 = _mm256_loadu_ps(msrc + (5 * 6 + col) * ts);
    const __m256 p1 = _mm256_add_ps(m1, m2);
    const __m256 p2 = _mm256_add_ps(m3, m4);
    const __m256 q1 = _mm256_sub_ps(m1, m2);
    const __m256 q2 = _mm256_sub_ps(m3, m4);
    t[0 * 6 + col] = _mm256_add_ps(_mm256_add_ps(m0, p1), p2);
    t[1 * 6 + col] = _mm256_add_ps(q1, _mm256_mul_ps(k2, q2));
    t[2 * 6 + col] = _mm256_add_ps(p1, _mm256_mul_ps(k4, p2));
    t[3 * 6 + col] =
        _mm256_add_ps(_mm256_add_ps(q1, _mm256_mul_ps(k8, q2)), m5);
  }
  for (int row = 0; row < 4; ++row) {
    const __m256 m0 = t[row * 6 + 0];
    const __m256 m1 = t[row * 6 + 1];
    const __m256 m2 = t[row * 6 + 2];
    const __m256 m3 = t[row * 6 + 3];
    const __m256 m4 = t[row * 6 + 4];
    const __m256 m5 = t[row * 6 + 5];
    const __m256 p1 = _mm256_add_ps(m1, m2);
    const __m256 p2 = _mm256_add_ps(m3, m4);
    const __m256 q1 = _mm256_sub_ps(m1, m2);
    const __m256 q2 = _mm256_sub_ps(m3, m4);
    _mm256_storeu_ps(y + (row * 4 + 0) * 8,
                     _mm256_add_ps(_mm256_add_ps(m0, p1), p2));
    _mm256_storeu_ps(y + (row * 4 + 1) * 8,
                     _mm256_add_ps(q1, _mm256_mul_ps(k2, q2)));
    _mm256_storeu_ps(y + (row * 4 + 2) * 8,
                     _mm256_add_ps(p1, _mm256_mul_ps(k4, p2)));
    _mm256_storeu_ps(
        y + (row * 4 + 3) * 8,
        _mm256_add_ps(_mm256_add_ps(q1, _mm256_mul_ps(k8, q2)), m5));
  }
}

#endif  // GPUCNN_X86_SIMD

// ---------------------------------------------------------------------------
// Scattered-GEMM driver
// ---------------------------------------------------------------------------

struct Geometry {
  std::size_t alpha;      ///< input tile side (4 or 6)
  std::size_t m;          ///< output tile side (2 or 4)
  std::size_t positions;  ///< alpha^2 tile positions = GEMM count
  std::size_t o;          ///< output spatial side
  std::size_t in;         ///< input spatial side
  std::size_t pad;
  std::size_t tiles;      ///< tiles per spatial side
  std::size_t per_image;  ///< tiles^2
  std::size_t patches;    ///< batch * tiles^2 = GEMM n extent
  std::size_t block;      ///< patch-block size (multiple of 8)
  std::size_t channels;
  std::size_t filters;
};

Geometry make_geometry(const ConvConfig& cfg, WinogradTile tile) {
  Geometry g{};
  g.alpha = tile == WinogradTile::kF2 ? 4 : 6;
  g.m = g.alpha - 2;
  g.positions = g.alpha * g.alpha;
  g.o = cfg.output();
  g.in = cfg.input;
  g.pad = cfg.pad;
  g.tiles = (g.o + g.m - 1) / g.m;
  g.per_image = g.tiles * g.tiles;
  g.patches = cfg.batch * g.per_image;
  g.channels = cfg.channels;
  g.filters = cfg.filters;
  // Block the patch dimension so the V and M planes — positions *
  // (C + F) * block floats — stay within a fixed workspace budget.
  // Multiples of 8 keep the SIMD strips inside the block edge.
  constexpr std::size_t kWorkspaceBudget = 8U << 20U;
  std::size_t block =
      kWorkspaceBudget /
      (sizeof(float) * g.positions * (g.channels + g.filters));
  block = std::min(block, (g.patches + 7) / 8 * 8);
  g.block = std::max<std::size_t>(block / 8 * 8, 8);
  return g;
}

/// Scatters one patch block of the input through V = B^T d B into the
/// SoA planes v[t][c][p] (plane stride C * block).
void scatter_data_transform(const Geometry& g, WinogradTile tile,
                            const Tensor& input, std::size_t p0,
                            std::size_t pb, float* v) {
  const std::size_t groups8 = (pb + 7) / 8;
  const std::size_t ts = g.channels * g.block;
  parallel_for(0, g.channels * groups8, [&](std::size_t unit) {
    const std::size_t c = unit / groups8;
    const std::size_t pl = (unit % groups8) * 8;
    alignas(32) float buf[36 * 8];
    std::memset(buf, 0, g.positions * 8 * sizeof(float));
    const std::size_t lanes = std::min<std::size_t>(8, pb - pl);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const std::size_t p = p0 + pl + lane;
      const std::size_t r = p % g.per_image;
      const float* plane = input.plane(p / g.per_image, c);
      const long iy0 = static_cast<long>(r / g.tiles * g.m) -
                       static_cast<long>(g.pad);
      const long ix0 = static_cast<long>(r % g.tiles * g.m) -
                       static_cast<long>(g.pad);
      const long dy_lo = std::max(0L, -iy0);
      const long dy_hi =
          std::min<long>(static_cast<long>(g.alpha),
                         static_cast<long>(g.in) - iy0);
      const long dx_lo = std::max(0L, -ix0);
      const long dx_hi =
          std::min<long>(static_cast<long>(g.alpha),
                         static_cast<long>(g.in) - ix0);
      for (long dy = dy_lo; dy < dy_hi; ++dy) {
        const float* row = plane + (iy0 + dy) * static_cast<long>(g.in) + ix0;
        for (long dx = dx_lo; dx < dx_hi; ++dx) {
          buf[(static_cast<std::size_t>(dy) * g.alpha +
               static_cast<std::size_t>(dx)) *
                  8 +
              lane] = row[dx];
        }
      }
    }
    float* dst = v + c * g.block + pl;
#if GPUCNN_X86_SIMD
    if (use_avx2()) {
      if (tile == WinogradTile::kF2) {
        data_tf8_f2_avx2(buf, dst, ts);
      } else {
        data_tf8_f4_avx2(buf, dst, ts);
      }
      return;
    }
#endif
    for (std::size_t lane = 0; lane < 8; ++lane) {
      if (tile == WinogradTile::kF2) {
        data_tf_f2(buf + lane, 8, dst + lane, ts);
      } else {
        data_tf_f4(buf + lane, 8, dst + lane, ts);
      }
    }
  });
}

/// Transforms every filter through U = G g G^T into u[t][f][c]
/// (plane stride F * C).
void transform_filters(const Geometry& g, WinogradTile tile,
                       const Tensor& filters, float* u) {
  const std::size_t groups8 = (g.channels + 7) / 8;
  const std::size_t ts = g.filters * g.channels;
  parallel_for(0, g.filters * groups8, [&](std::size_t unit) {
    const std::size_t f = unit / groups8;
    const std::size_t c0 = (unit % groups8) * 8;
    const std::size_t lanes = std::min<std::size_t>(8, g.channels - c0);
    alignas(32) float buf[9 * 8];
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const float* gsrc = filters.plane(f, c0 + lane);
      for (std::size_t e = 0; e < 9; ++e) buf[e * 8 + lane] = gsrc[e];
    }
    float* dst = u + f * g.channels + c0;
#if GPUCNN_X86_SIMD
    if (lanes == 8 && use_avx2()) {
      if (tile == WinogradTile::kF2) {
        filter_tf8_f2_avx2(buf, dst, ts);
      } else {
        filter_tf8_f4_avx2(buf, dst, ts);
      }
      return;
    }
#endif
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      if (tile == WinogradTile::kF2) {
        filter_tf_f2(buf + lane, 8, dst + lane, ts);
      } else {
        filter_tf_f4(buf + lane, 8, dst + lane, ts);
      }
    }
  });
}

/// Gathers one patch block of the product planes m[t][f][p] through
/// Y = A^T m A and scatters the (clipped) m x m output tiles, fusing the
/// bias broadcast and ReLU clamp into the write-back. Addition and max
/// round identically here and in the unfused passes, so fused and
/// unfused results are bit-identical.
void gather_output_transform(const Geometry& g, WinogradTile tile,
                             const float* mbuf, std::size_t p0,
                             std::size_t pb, const float* bias, bool relu,
                             Tensor& output) {
  const std::size_t groups8 = (pb + 7) / 8;
  const std::size_t ts = g.filters * g.block;
  parallel_for(0, g.filters * groups8, [&](std::size_t unit) {
    const std::size_t f = unit / groups8;
    const std::size_t pl = (unit % groups8) * 8;
    const float* msrc = mbuf + f * g.block + pl;
    alignas(32) float y[16 * 8];
#if GPUCNN_X86_SIMD
    if (use_avx2()) {
      if (tile == WinogradTile::kF2) {
        output_tf8_f2_avx2(msrc, ts, y);
      } else {
        output_tf8_f4_avx2(msrc, ts, y);
      }
    } else
#endif
    {
      for (std::size_t lane = 0; lane < 8; ++lane) {
        if (tile == WinogradTile::kF2) {
          output_tf_f2(msrc + lane, ts, y + lane, 8);
        } else {
          output_tf_f4(msrc + lane, ts, y + lane, 8);
        }
      }
    }
    const float b = bias != nullptr ? bias[f] : 0.0F;
    const std::size_t lanes = std::min<std::size_t>(8, pb - pl);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const std::size_t p = p0 + pl + lane;
      const std::size_t r = p % g.per_image;
      const std::size_t ty = r / g.tiles;
      const std::size_t tx = r % g.tiles;
      float* out_plane = output.plane(p / g.per_image, f);
      for (std::size_t dy = 0; dy < g.m; ++dy) {
        const std::size_t oy = ty * g.m + dy;
        if (oy >= g.o) break;
        for (std::size_t dx = 0; dx < g.m; ++dx) {
          const std::size_t ox = tx * g.m + dx;
          if (ox >= g.o) break;
          float val = y[(dy * g.m + dx) * 8 + lane];
          if (bias != nullptr) val += b;
          if (relu) val = std::max(val, 0.0F);
          out_plane[oy * g.o + ox] = val;
        }
      }
    }
  });
}

/// Scatters one patch block of grad_output through dM = A dY A^T (the
/// output transform's adjoint) into dm[t][f][p]; tile overhang past the
/// output edge contributes zero.
void scatter_grad_transform(const Geometry& g, WinogradTile tile,
                            const Tensor& grad_output, std::size_t p0,
                            std::size_t pb, float* dm) {
  const std::size_t groups8 = (pb + 7) / 8;
  const std::size_t ts = g.filters * g.block;
  parallel_for(0, g.filters * groups8, [&](std::size_t unit) {
    const std::size_t f = unit / groups8;
    const std::size_t pl = (unit % groups8) * 8;
    alignas(32) float buf[16 * 8];
    std::memset(buf, 0, g.m * g.m * 8 * sizeof(float));
    const std::size_t lanes = std::min<std::size_t>(8, pb - pl);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const std::size_t p = p0 + pl + lane;
      const std::size_t r = p % g.per_image;
      const std::size_t ty = r / g.tiles;
      const std::size_t tx = r % g.tiles;
      const float* plane = grad_output.plane(p / g.per_image, f);
      for (std::size_t dy = 0; dy < g.m; ++dy) {
        const std::size_t oy = ty * g.m + dy;
        if (oy >= g.o) break;
        for (std::size_t dx = 0; dx < g.m; ++dx) {
          const std::size_t ox = tx * g.m + dx;
          if (ox >= g.o) break;
          buf[(dy * g.m + dx) * 8 + lane] = plane[oy * g.o + ox];
        }
      }
    }
    float* dst = dm + f * g.block + pl;
    for (std::size_t lane = 0; lane < 8; ++lane) {
      if (tile == WinogradTile::kF2) {
        grad_out_tf_f2(buf + lane, 8, dst + lane, ts);
      } else {
        grad_out_tf_f4(buf + lane, 8, dst + lane, ts);
      }
    }
  });
}

/// The multiply stage: one (F x C) x (C x pb) sgemm per tile position,
/// from prepacked panels when available.
void multiply_stage(const Geometry& g, const float* u,
                    const std::vector<blas::PackedMatrix>* panels,
                    const float* v, float* m, std::size_t pb) {
  const std::size_t vplane = g.channels * g.block;
  const std::size_t mplane = g.filters * g.block;
  for (std::size_t t = 0; t < g.positions; ++t) {
    const std::span<const float> vt{v + t * vplane, vplane};
    const std::span<float> mt{m + t * mplane, mplane};
    if (panels != nullptr) {
      blas::sgemm_prepacked(g.filters, pb, g.channels, 1.0F, (*panels)[t],
                            blas::Trans::kNo, vt, g.block, 0.0F, mt, g.block);
    } else {
      blas::sgemm(blas::Trans::kNo, blas::Trans::kNo, g.filters, pb,
                  g.channels, 1.0F,
                  {u + t * g.filters * g.channels, g.filters * g.channels},
                  g.channels, vt, g.block, 0.0F, mt, g.block);
    }
  }
}

void run_forward(const ConvConfig& cfg, WinogradTile tile,
                 const Tensor& input, const Tensor& filters,
                 const std::vector<blas::PackedMatrix>* panels,
                 const float* bias, bool relu, Tensor& output) {
  const Geometry g = make_geometry(cfg, tile);
  ws::Scratch<float> v(g.positions * g.channels * g.block);
  ws::Scratch<float> m(g.positions * g.filters * g.block);
  ws::Scratch<float> u(panels != nullptr
                           ? 1
                           : g.positions * g.filters * g.channels);
  if (panels == nullptr) transform_filters(g, tile, filters, u.data());
  for (std::size_t p0 = 0; p0 < g.patches; p0 += g.block) {
    const std::size_t pb = std::min(g.block, g.patches - p0);
    scatter_data_transform(g, tile, input, p0, pb, v.data());
    multiply_stage(g, u.data(), panels, v.data(), m.data(), pb);
    gather_output_transform(g, tile, m.data(), p0, pb, bias, relu, output);
  }
}

}  // namespace

void WinogradConv::forward(const ConvConfig& cfg, const Tensor& input,
                           const Tensor& filters, Tensor& output) const {
  validate_forward(cfg, input, filters, output);
  check(supports(cfg),
        "Winograd F(m,3) requires kernel 3, stride 1, pad <= 2, ungrouped");
  run_forward(cfg, tile_, input, filters, nullptr, nullptr, false, output);
}

bool WinogradConv::forward_fused(const ConvConfig& cfg, const Tensor& input,
                                 const Tensor& filters,
                                 std::span<const float> bias, bool relu,
                                 Tensor& output) const {
  if (!supports(cfg)) return false;
  validate_forward(cfg, input, filters, output);
  check(bias.empty() || bias.size() == cfg.filters, "bias length mismatch");
  run_forward(cfg, tile_, input, filters, nullptr,
              bias.empty() ? nullptr : bias.data(), relu, output);
  return true;
}

bool WinogradConv::forward_prepacked(const ConvConfig& cfg,
                                     const Tensor& input,
                                     const PackedFilters& packed,
                                     const Tensor& filters,
                                     std::span<const float> bias, bool relu,
                                     Tensor& output) const {
  if (!supports(cfg)) return false;
  const auto& panels = tile_ == WinogradTile::kF2 ? packed.winograd_f2
                                                  : packed.winograd_f4;
  if (panels.size() != winograd_positions(tile_)) {
    // The pack was built without Winograd panels (e.g. for a config the
    // transform rejects); degrade to the transform-on-the-fly path.
    fallback_counter().add(1);
    return false;
  }
  if (!panels.front().valid()) {
    // Stale pack (SIMD dispatch changed since packing): sgemm_prepacked
    // stages each panel's origin per call — correct, but the slow path.
    fallback_counter().add(1);
  }
  validate_forward(cfg, input, filters, output);
  check(bias.empty() || bias.size() == cfg.filters, "bias length mismatch");
  run_forward(cfg, tile_, input, filters, &panels,
              bias.empty() ? nullptr : bias.data(), relu, output);
  return true;
}

void WinogradConv::backward_data(const ConvConfig& cfg,
                                 const Tensor& grad_output,
                                 const Tensor& filters,
                                 Tensor& grad_input) const {
  check(grad_output.shape() == cfg.output_shape(),
        "grad_output shape mismatch");
  check(filters.shape() == cfg.filter_shape(), "filter shape mismatch");
  check(grad_input.shape() == cfg.input_shape(), "grad_input shape mismatch");
  check(supports(cfg),
        "Winograd F(m,3) requires kernel 3, stride 1, pad <= 2, ungrouped");

  // The data gradient of a stride-1 3x3 correlation is itself a stride-1
  // 3x3 correlation: gin = corr(gout, rot180(W)^T) with padding 2 - p.
  ConvConfig back = cfg;
  back.input = cfg.output();
  back.channels = cfg.filters;
  back.filters = cfg.channels;
  back.pad = 2 - cfg.pad;
  check(back.output() == cfg.input, "winograd backward geometry mismatch");

  Tensor rotated(back.filter_shape());
  for (std::size_t c = 0; c < cfg.channels; ++c) {
    for (std::size_t f = 0; f < cfg.filters; ++f) {
      for (std::size_t ky = 0; ky < 3; ++ky) {
        for (std::size_t kx = 0; kx < 3; ++kx) {
          rotated(c, f, ky, kx) = filters(f, c, 2 - ky, 2 - kx);
        }
      }
    }
  }
  forward(back, grad_output, rotated, grad_input);
}

void WinogradConv::backward_filter(const ConvConfig& cfg, const Tensor& input,
                                   const Tensor& grad_output,
                                   Tensor& grad_filters) const {
  check(input.shape() == cfg.input_shape(), "input shape mismatch");
  check(grad_output.shape() == cfg.output_shape(),
        "grad_output shape mismatch");
  check(grad_filters.shape() == cfg.filter_shape(),
        "grad_filters shape mismatch");
  check(supports(cfg),
        "Winograd F(m,3) requires kernel 3, stride 1, pad <= 2, ungrouped");

  // Transpose formulation: with M_t = U_t V_t in the forward,
  //   dU_t = dM_t V_t^T   (F x C, accumulated over patch blocks),
  //   dg   = G^T dU G     (the filter transform's adjoint).
  const Geometry g = make_geometry(cfg, tile_);
  ws::Scratch<float> v(g.positions * g.channels * g.block);
  ws::Scratch<float> dm(g.positions * g.filters * g.block);
  ws::Scratch<float> du(g.positions * g.filters * g.channels);
  const std::size_t uplane = g.filters * g.channels;
  for (std::size_t p0 = 0; p0 < g.patches; p0 += g.block) {
    const std::size_t pb = std::min(g.block, g.patches - p0);
    scatter_data_transform(g, tile_, input, p0, pb, v.data());
    scatter_grad_transform(g, tile_, grad_output, p0, pb, dm.data());
    const float beta = p0 == 0 ? 0.0F : 1.0F;
    for (std::size_t t = 0; t < g.positions; ++t) {
      blas::sgemm(blas::Trans::kNo, blas::Trans::kYes, g.filters, g.channels,
                  pb, 1.0F,
                  {dm.data() + t * g.filters * g.block, g.filters * g.block},
                  g.block,
                  {v.data() + t * g.channels * g.block, g.channels * g.block},
                  g.block, beta, {du.data() + t * uplane, uplane},
                  g.channels);
    }
  }
  parallel_for(0, g.filters * g.channels, [&](std::size_t i) {
    const std::size_t f = i / g.channels;
    const std::size_t c = i % g.channels;
    float ubuf[36];
    for (std::size_t t = 0; t < g.positions; ++t) {
      ubuf[t] = du.data()[t * uplane + f * g.channels + c];
    }
    float* gout = grad_filters.plane(f, c);
    if (tile_ == WinogradTile::kF2) {
      grad_filter_tf_f2(ubuf, 1, gout, 1);
    } else {
      grad_filter_tf_f4(ubuf, 1, gout, 1);
    }
  });
}

void prepack_winograd_filters(const ConvConfig& cfg, const Tensor& filters,
                              WinogradTile tile, std::vector<float>& backing,
                              std::vector<blas::PackedMatrix>& panels) {
  check(filters.shape() == cfg.filter_shape(), "filter shape mismatch");
  const Geometry g = make_geometry(cfg, tile);
  const std::size_t uplane = g.filters * g.channels;
  backing.assign(g.positions * uplane, 0.0F);
  transform_filters(g, tile, filters, backing.data());
  panels.clear();
  panels.reserve(g.positions);
  for (std::size_t t = 0; t < g.positions; ++t) {
    panels.push_back(blas::pack_a(blas::Trans::kNo, g.filters, g.channels,
                                  {backing.data() + t * uplane, uplane},
                                  g.channels));
  }
}

namespace wino_detail {

void transform_data(WinogradTile tile, const float* d, float* v) {
  if (tile == WinogradTile::kF2) {
    data_tf_f2(d, 1, v, 1);
  } else {
    data_tf_f4(d, 1, v, 1);
  }
}

void transform_filter(WinogradTile tile, const float* g, float* u) {
  if (tile == WinogradTile::kF2) {
    filter_tf_f2(g, 1, u, 1);
  } else {
    filter_tf_f4(g, 1, u, 1);
  }
}

void transform_output(WinogradTile tile, const float* m, float* y) {
  if (tile == WinogradTile::kF2) {
    output_tf_f2(m, 1, y, 1);
  } else {
    output_tf_f4(m, 1, y, 1);
  }
}

}  // namespace wino_detail

}  // namespace gpucnn::conv
