#include "conv/winograd_conv.hpp"

#include <array>
#include <vector>

#include "core/thread_pool.hpp"

namespace gpucnn::conv {
namespace {

using Tile4 = std::array<float, 16>;  // row-major 4x4

// U = G g G^T for a 3x3 kernel g:
//   G = [1 0 0; .5 .5 .5; .5 -.5 .5; 0 0 1]
Tile4 filter_transform(const float* g) {
  // Gg: 4x3
  std::array<float, 12> t{};
  for (int col = 0; col < 3; ++col) {
    const float g0 = g[0 * 3 + col];
    const float g1 = g[1 * 3 + col];
    const float g2 = g[2 * 3 + col];
    t[0 * 3 + col] = g0;
    t[1 * 3 + col] = 0.5F * (g0 + g1 + g2);
    t[2 * 3 + col] = 0.5F * (g0 - g1 + g2);
    t[3 * 3 + col] = g2;
  }
  // (Gg) G^T: 4x4
  Tile4 u{};
  for (int row = 0; row < 4; ++row) {
    const float a = t[row * 3 + 0];
    const float b = t[row * 3 + 1];
    const float c = t[row * 3 + 2];
    u[row * 4 + 0] = a;
    u[row * 4 + 1] = 0.5F * (a + b + c);
    u[row * 4 + 2] = 0.5F * (a - b + c);
    u[row * 4 + 3] = c;
  }
  return u;
}

// V = B^T d B for a 4x4 data tile d:
//   B^T = [1 0 -1 0; 0 1 1 0; 0 -1 1 0; 0 1 0 -1]
Tile4 data_transform(const Tile4& d) {
  Tile4 t{};
  for (int col = 0; col < 4; ++col) {
    const float d0 = d[0 * 4 + col];
    const float d1 = d[1 * 4 + col];
    const float d2 = d[2 * 4 + col];
    const float d3 = d[3 * 4 + col];
    t[0 * 4 + col] = d0 - d2;
    t[1 * 4 + col] = d1 + d2;
    t[2 * 4 + col] = d2 - d1;
    t[3 * 4 + col] = d1 - d3;
  }
  Tile4 v{};
  for (int row = 0; row < 4; ++row) {
    const float t0 = t[row * 4 + 0];
    const float t1 = t[row * 4 + 1];
    const float t2 = t[row * 4 + 2];
    const float t3 = t[row * 4 + 3];
    v[row * 4 + 0] = t0 - t2;
    v[row * 4 + 1] = t1 + t2;
    v[row * 4 + 2] = t2 - t1;
    v[row * 4 + 3] = t1 - t3;
  }
  return v;
}

// Y = A^T m A for the element-wise product accumulator m:
//   A^T = [1 1 1 0; 0 1 -1 -1]
std::array<float, 4> output_transform(const Tile4& m) {
  std::array<float, 8> t{};  // 2x4
  for (int col = 0; col < 4; ++col) {
    const float m0 = m[0 * 4 + col];
    const float m1 = m[1 * 4 + col];
    const float m2 = m[2 * 4 + col];
    const float m3 = m[3 * 4 + col];
    t[0 * 4 + col] = m0 + m1 + m2;
    t[1 * 4 + col] = m1 - m2 - m3;
  }
  std::array<float, 4> y{};
  for (int row = 0; row < 2; ++row) {
    const float t0 = t[row * 4 + 0];
    const float t1 = t[row * 4 + 1];
    const float t2 = t[row * 4 + 2];
    const float t3 = t[row * 4 + 3];
    y[row * 2 + 0] = t0 + t1 + t2;
    y[row * 2 + 1] = t1 - t2 - t3;
  }
  return y;
}

}  // namespace

void WinogradConv::forward(const ConvConfig& cfg, const Tensor& input,
                           const Tensor& filters, Tensor& output) const {
  validate_forward(cfg, input, filters, output);
  check(supports(cfg),
        "Winograd F(2x2,3x3) requires kernel 3, stride 1, pad <= 2");
  const std::size_t o = cfg.output();
  const std::size_t in = cfg.input;
  const std::size_t p = cfg.pad;
  const std::size_t tiles = (o + 1) / 2;

  // Pre-transform every filter once: U[f][c].
  std::vector<Tile4> u(cfg.filters * cfg.channels);
  parallel_for(0, cfg.filters * cfg.channels, [&](std::size_t i) {
    u[i] = filter_transform(
        filters.plane(i / cfg.channels, i % cfg.channels));
  });

  parallel_for(0, cfg.batch, [&](std::size_t n) {
    std::vector<Tile4> v(cfg.channels);
    for (std::size_t ty = 0; ty < tiles; ++ty) {
      for (std::size_t tx = 0; tx < tiles; ++tx) {
        // Gather the 4x4 input tile per channel (zero padded).
        for (std::size_t c = 0; c < cfg.channels; ++c) {
          const float* plane = input.plane(n, c);
          Tile4 d{};
          for (std::size_t dy = 0; dy < 4; ++dy) {
            const std::size_t iy = ty * 2 + dy;  // padded coords
            if (iy < p || iy >= in + p) continue;
            for (std::size_t dx = 0; dx < 4; ++dx) {
              const std::size_t ix = tx * 2 + dx;
              if (ix < p || ix >= in + p) continue;
              d[dy * 4 + dx] = plane[(iy - p) * in + (ix - p)];
            }
          }
          v[c] = data_transform(d);
        }
        // Per filter: accumulate the element-wise products, then apply
        // the output transform and scatter the (up to) 2x2 result.
        for (std::size_t f = 0; f < cfg.filters; ++f) {
          Tile4 m{};
          const Tile4* uf = u.data() + f * cfg.channels;
          for (std::size_t c = 0; c < cfg.channels; ++c) {
            for (int i = 0; i < 16; ++i) m[i] += uf[c][i] * v[c][i];
          }
          const auto y = output_transform(m);
          float* out_plane = output.plane(n, f);
          for (std::size_t dy = 0; dy < 2; ++dy) {
            const std::size_t oy = ty * 2 + dy;
            if (oy >= o) continue;
            for (std::size_t dx = 0; dx < 2; ++dx) {
              const std::size_t ox = tx * 2 + dx;
              if (ox >= o) continue;
              out_plane[oy * o + ox] = y[dy * 2 + dx];
            }
          }
        }
      }
    }
  });
}

void WinogradConv::backward_data(const ConvConfig& cfg,
                                 const Tensor& grad_output,
                                 const Tensor& filters,
                                 Tensor& grad_input) const {
  check(grad_output.shape() == cfg.output_shape(),
        "grad_output shape mismatch");
  check(filters.shape() == cfg.filter_shape(), "filter shape mismatch");
  check(grad_input.shape() == cfg.input_shape(), "grad_input shape mismatch");
  check(supports(cfg),
        "Winograd F(2x2,3x3) requires kernel 3, stride 1, pad <= 2");

  // The data gradient of a stride-1 3x3 correlation is itself a stride-1
  // 3x3 correlation: gin = corr(gout, rot180(W)^T) with padding 2 - p.
  ConvConfig back = cfg;
  back.input = cfg.output();
  back.channels = cfg.filters;
  back.filters = cfg.channels;
  back.pad = 2 - cfg.pad;
  check(back.output() == cfg.input, "winograd backward geometry mismatch");

  Tensor rotated(back.filter_shape());
  for (std::size_t c = 0; c < cfg.channels; ++c) {
    for (std::size_t f = 0; f < cfg.filters; ++f) {
      for (std::size_t ky = 0; ky < 3; ++ky) {
        for (std::size_t kx = 0; kx < 3; ++kx) {
          rotated(c, f, ky, kx) = filters(f, c, 2 - ky, 2 - kx);
        }
      }
    }
  }
  forward(back, grad_output, rotated, grad_input);
}

void WinogradConv::backward_filter(const ConvConfig& cfg,
                                   const Tensor& input,
                                   const Tensor& grad_output,
                                   Tensor& grad_filters) const {
  // The filter-gradient reduction has no small-tile Winograd form; use
  // the unrolling engine (as cuDNN v5 did).
  fallback_.backward_filter(cfg, input, grad_output, grad_filters);
}

}  // namespace gpucnn::conv
