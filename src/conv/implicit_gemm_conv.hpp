// Implicit-GEMM convolution: the unrolling strategy without the unrolled
// buffer — cuDNN's design point (paper §V.B: "although cuDNN does not
// need extra memory for unrolling, it consumes more memory than other
// unrolling-based implementations to achieve a better performance";
// ours needs no extra memory at all).
//
// The GEMM loop indexes the virtual column matrix directly: element
// (c*k*k + ky*k + kx, y*o + x) is read from input(c, y*s+ky-p, x*s+kx-p)
// on the fly, so the lowering never materialises. Numerically identical
// to GemmConv; memory profile identical to DirectConv.
#pragma once

#include "conv/conv_engine.hpp"

namespace gpucnn::conv {

class ImplicitGemmConv final : public ConvEngine {
 public:
  [[nodiscard]] Strategy strategy() const override {
    return Strategy::kUnrolling;
  }
  [[nodiscard]] std::string_view name() const override {
    return "implicit-gemm";
  }
  [[nodiscard]] bool supports(const ConvConfig& cfg) const override {
    return cfg.groups == 1;  // the tile gather assumes dense channels
  }

  void forward(const ConvConfig& cfg, const Tensor& input,
               const Tensor& filters, Tensor& output) const override;
  /// Bias + ReLU fuse into the per-tile SGEMM epilogue (the tile GEMM's
  /// M rows are the full filter set, so bias indexes rows directly).
  [[nodiscard]] bool forward_fused(const ConvConfig& cfg,
                                   const Tensor& input,
                                   const Tensor& filters,
                                   std::span<const float> bias, bool relu,
                                   Tensor& output) const override;
  [[nodiscard]] bool supports_prepack() const override { return true; }
  /// Every output tile re-reads the whole filter matrix, so the cached
  /// weight panels are reused positions/kTile times per image.
  [[nodiscard]] bool forward_prepacked(const ConvConfig& cfg,
                                       const Tensor& input,
                                       const PackedFilters& packed,
                                       const Tensor& filters,
                                       std::span<const float> bias, bool relu,
                                       Tensor& output) const override;
  void backward_data(const ConvConfig& cfg, const Tensor& grad_output,
                     const Tensor& filters, Tensor& grad_input) const override;
  void backward_filter(const ConvConfig& cfg, const Tensor& input,
                       const Tensor& grad_output,
                       Tensor& grad_filters) const override;

 private:
  static void run_forward(const ConvConfig& cfg, const Tensor& input,
                          const Tensor& filters, Tensor& output,
                          const float* bias, bool relu,
                          const PackedFilters* packed = nullptr);
};

}  // namespace gpucnn::conv
