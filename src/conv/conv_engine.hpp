// The common interface of the three convolution strategies the paper
// surveys (§II.B): direct, unrolling-based (im2col + GEMM) and FFT-based.
//
// Convolution follows the deep-learning convention (cross-correlation):
//   out(n,f,y,x) = sum_{c,ky,kx} in(n,c, y*s + ky - p, x*s + kx - p)
//                                * w(f,c,ky,kx)
// All three engines implement forward, backward-data and backward-filter
// passes and must agree bit-for-tolerance with each other; the agreement
// is enforced by parameterised tests.
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "blas/packed.hpp"
#include "core/shape.hpp"
#include "core/tensor.hpp"

namespace gpucnn::conv {

/// The paper's three convolution strategies, plus Winograd minimal
/// filtering — the post-paper fourth strategy (Lavin & Gray) this
/// reproduction adds as an extension.
enum class Strategy { kDirect, kUnrolling, kFft, kWinograd };

[[nodiscard]] std::string_view to_string(Strategy s);

/// A conv layer's filters packed once into blas micro-kernel panels
/// (blas/packed.hpp), one PackedMatrix per group — the GEMM engines'
/// weight operand. Immutable after construction, so instances are shared
/// by const reference / shared_ptr across serving workers; each pack
/// retains a span over the filter tensor it was built from, which must
/// outlive the pack (the layer owns both).
struct PackedFilters {
  std::vector<blas::PackedMatrix> groups;

  /// Winograd scattered-GEMM panels: pre-transformed filters U = G g G^T
  /// laid out [alpha^2][F][C], one PackedMatrix per tile position over
  /// the owned backing buffer. Built only for Winograd-eligible configs
  /// (k=3, s=1, pad <= 2, ungrouped); empty otherwise. The backing
  /// vectors are owned here because — unlike the GEMM groups, whose
  /// origin is the caller's filter tensor — the transformed values exist
  /// nowhere else. Move-only: a copy would leave the copied panels'
  /// origin spans pointing into the source's backing storage.
  std::vector<float> winograd_f2_data;
  std::vector<blas::PackedMatrix> winograd_f2;
  std::vector<float> winograd_f4_data;
  std::vector<blas::PackedMatrix> winograd_f4;

  PackedFilters() = default;
  PackedFilters(PackedFilters&&) = default;
  PackedFilters& operator=(PackedFilters&&) = default;
  PackedFilters(const PackedFilters&) = delete;
  PackedFilters& operator=(const PackedFilters&) = delete;

  [[nodiscard]] std::size_t bytes() const {
    std::size_t total = 0;
    for (const auto& g : groups) total += g.bytes();
    for (const auto& t : winograd_f2) total += t.bytes();
    for (const auto& t : winograd_f4) total += t.bytes();
    total += (winograd_f2_data.size() + winograd_f4_data.size()) *
             sizeof(float);
    return total;
  }
};

/// Packs `filters` (cfg.filter_shape()) for the GEMM engines: per group,
/// W_g(F_g x CKK) becomes the A operand of the forward GEMM. Engines
/// consume the result through forward_prepacked().
[[nodiscard]] PackedFilters prepack_filters(const ConvConfig& cfg,
                                            const Tensor& filters);

/// A convolution implementation: stateless and thread-compatible; all
/// buffers are caller-owned.
class ConvEngine {
 public:
  virtual ~ConvEngine() = default;

  [[nodiscard]] virtual Strategy strategy() const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// True when the engine can run this configuration (e.g. FFT engines
  /// require stride 1).
  [[nodiscard]] virtual bool supports(const ConvConfig& cfg) const = 0;

  /// output must be pre-shaped to cfg.output_shape(); it is overwritten.
  virtual void forward(const ConvConfig& cfg, const Tensor& input,
                       const Tensor& filters, Tensor& output) const = 0;

  /// Fused forward: output = relu?(conv(input, filters) + bias), with the
  /// per-filter bias broadcast (length cfg.filters) and the optional ReLU
  /// applied inside the engine's own write-back — bit-for-bit identical
  /// to forward() followed by the separate bias/activation passes.
  /// Returns false when the engine has no fused path (the default); the
  /// caller then runs the unfused sequence itself.
  [[nodiscard]] virtual bool forward_fused(const ConvConfig&, const Tensor&,
                                           const Tensor&,
                                           std::span<const float> /*bias*/,
                                           bool /*relu*/, Tensor&) const {
    return false;
  }

  /// True when the engine can consume prepack_filters() output via
  /// forward_prepacked() — the pack-once/execute-many inference path.
  [[nodiscard]] virtual bool supports_prepack() const { return false; }

  /// Fused forward over prepacked filters: bit-identical to
  /// forward_fused(cfg, input, filters, bias, relu, output), reading the
  /// weight panels from `packed` instead of re-packing per GEMM call.
  /// `filters` stays the fallback operand: a stale pack (SIMD dispatch
  /// changed since packing) or shape-mismatched pack degrades to the
  /// staged path inside blas, never to a wrong answer. Returns false when
  /// the engine has no prepacked path (the default); the caller then runs
  /// forward_fused / the unfused sequence itself.
  [[nodiscard]] virtual bool forward_prepacked(
      const ConvConfig&, const Tensor&, const PackedFilters& /*packed*/,
      const Tensor& /*filters*/, std::span<const float> /*bias*/,
      bool /*relu*/, Tensor&) const {
    return false;
  }

  /// grad_input must be pre-shaped to cfg.input_shape(); overwritten.
  virtual void backward_data(const ConvConfig& cfg, const Tensor& grad_output,
                             const Tensor& filters,
                             Tensor& grad_input) const = 0;

  /// grad_filters must be pre-shaped to cfg.filter_shape(); overwritten.
  virtual void backward_filter(const ConvConfig& cfg, const Tensor& input,
                               const Tensor& grad_output,
                               Tensor& grad_filters) const = 0;

 protected:
  /// Shared argument validation for the three passes.
  static void validate_forward(const ConvConfig& cfg, const Tensor& input,
                               const Tensor& filters, const Tensor& output);
};

/// Factory for the built-in engines.
[[nodiscard]] std::unique_ptr<ConvEngine> make_engine(Strategy strategy);

}  // namespace gpucnn::conv
