#include "conv/direct_conv.hpp"

#include "core/thread_pool.hpp"

namespace gpucnn::conv {

void DirectConv::forward(const ConvConfig& cfg, const Tensor& input,
                         const Tensor& filters, Tensor& output) const {
  validate_forward(cfg, input, filters, output);
  const std::size_t o = cfg.output();
  const std::size_t in = cfg.input;
  const std::size_t k = cfg.kernel;
  const std::size_t s = cfg.stride;
  const std::size_t p = cfg.pad;

  // Each (image, filter) plane is independent.
  parallel_for(0, cfg.batch * cfg.filters, [&](std::size_t job) {
    const std::size_t n = job / cfg.filters;
    const std::size_t f = job % cfg.filters;
    const std::size_t group = f / cfg.group_filters();
    const std::size_t c0 = group * cfg.group_channels();
    float* out_plane = output.plane(n, f);
    for (std::size_t y = 0; y < o; ++y) {
      for (std::size_t x = 0; x < o; ++x) {
        double acc = 0.0;
        for (std::size_t c = 0; c < cfg.group_channels(); ++c) {
          const float* in_plane = input.plane(n, c0 + c);
          const float* w_plane = filters.plane(f, c);
          for (std::size_t ky = 0; ky < k; ++ky) {
            const std::size_t iy = y * s + ky;
            if (iy < p || iy >= in + p) continue;
            const float* in_row = in_plane + (iy - p) * in;
            const float* w_row = w_plane + ky * k;
            for (std::size_t kx = 0; kx < k; ++kx) {
              const std::size_t ix = x * s + kx;
              if (ix < p || ix >= in + p) continue;
              acc += static_cast<double>(in_row[ix - p]) * w_row[kx];
            }
          }
        }
        out_plane[y * o + x] = static_cast<float>(acc);
      }
    }
  });
}

void DirectConv::backward_data(const ConvConfig& cfg,
                               const Tensor& grad_output,
                               const Tensor& filters,
                               Tensor& grad_input) const {
  check(grad_output.shape() == cfg.output_shape(),
        "grad_output shape mismatch");
  check(filters.shape() == cfg.filter_shape(), "filter shape mismatch");
  check(grad_input.shape() == cfg.input_shape(), "grad_input shape mismatch");
  const std::size_t o = cfg.output();
  const std::size_t in = cfg.input;
  const std::size_t k = cfg.kernel;
  const std::size_t s = cfg.stride;
  const std::size_t p = cfg.pad;

  // Each (image, channel) plane of the input gradient is independent.
  parallel_for(0, cfg.batch * cfg.channels, [&](std::size_t job) {
    const std::size_t n = job / cfg.channels;
    const std::size_t c = job % cfg.channels;
    const std::size_t group = c / cfg.group_channels();
    const std::size_t f0 = group * cfg.group_filters();
    const std::size_t c_in_group = c % cfg.group_channels();
    float* gin_plane = grad_input.plane(n, c);
    for (std::size_t iy = 0; iy < in; ++iy) {
      for (std::size_t ix = 0; ix < in; ++ix) {
        double acc = 0.0;
        // out position y satisfies y*s + ky = iy + p.
        for (std::size_t fg = 0; fg < cfg.group_filters(); ++fg) {
          const std::size_t f = f0 + fg;
          const float* gout_plane = grad_output.plane(n, f);
          const float* w_plane = filters.plane(f, c_in_group);
          for (std::size_t ky = 0; ky < k; ++ky) {
            const std::size_t target_y = iy + p;
            if (target_y < ky) break;
            const std::size_t ydist = target_y - ky;
            if (ydist % s != 0) continue;
            const std::size_t y = ydist / s;
            if (y >= o) continue;
            for (std::size_t kx = 0; kx < k; ++kx) {
              const std::size_t target_x = ix + p;
              if (target_x < kx) break;
              const std::size_t xdist = target_x - kx;
              if (xdist % s != 0) continue;
              const std::size_t x = xdist / s;
              if (x >= o) continue;
              acc += static_cast<double>(gout_plane[y * o + x]) *
                     w_plane[ky * k + kx];
            }
          }
        }
        gin_plane[iy * in + ix] = static_cast<float>(acc);
      }
    }
  });
}

void DirectConv::backward_filter(const ConvConfig& cfg, const Tensor& input,
                                 const Tensor& grad_output,
                                 Tensor& grad_filters) const {
  check(input.shape() == cfg.input_shape(), "input shape mismatch");
  check(grad_output.shape() == cfg.output_shape(),
        "grad_output shape mismatch");
  check(grad_filters.shape() == cfg.filter_shape(),
        "grad_filters shape mismatch");
  const std::size_t o = cfg.output();
  const std::size_t in = cfg.input;
  const std::size_t k = cfg.kernel;
  const std::size_t s = cfg.stride;
  const std::size_t p = cfg.pad;

  // Each (filter, channel) weight plane is independent; the batch
  // reduction happens inside the job, so no atomics are needed.
  parallel_for(0, cfg.filters * cfg.group_channels(), [&](std::size_t job) {
    const std::size_t f = job / cfg.group_channels();
    const std::size_t c_in_group = job % cfg.group_channels();
    const std::size_t c =
        (f / cfg.group_filters()) * cfg.group_channels() + c_in_group;
    float* gw_plane = grad_filters.plane(f, c_in_group);
    for (std::size_t ky = 0; ky < k; ++ky) {
      for (std::size_t kx = 0; kx < k; ++kx) {
        double acc = 0.0;
        for (std::size_t n = 0; n < cfg.batch; ++n) {
          const float* gout_plane = grad_output.plane(n, f);
          const float* in_plane = input.plane(n, c);
          for (std::size_t y = 0; y < o; ++y) {
            const std::size_t iy = y * s + ky;
            if (iy < p || iy >= in + p) continue;
            const float* in_row = in_plane + (iy - p) * in;
            const float* gout_row = gout_plane + y * o;
            for (std::size_t x = 0; x < o; ++x) {
              const std::size_t ix = x * s + kx;
              if (ix < p || ix >= in + p) continue;
              acc += static_cast<double>(gout_row[x]) * in_row[ix - p];
            }
          }
        }
        gw_plane[ky * k + kx] = static_cast<float>(acc);
      }
    }
  });
}

}  // namespace gpucnn::conv
