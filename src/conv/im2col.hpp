// im2col / col2im: the unrolling primitives of Chellapilla et al. that
// Caffe, Torch-cunn, Theano-CorrMM and cuDNN build on (paper §II.B).
//
// im2col lowers one image (C, H, W) to a column matrix of shape
// (C*k*k) x (Ho*Wo): row (c*k*k + ky*k + kx), column (y*Wo + x) holds
// input(c, y*s + ky - p, x*s + kx - p), zero outside the image.
// col2im is its adjoint (scatter-add), used by the backward-data pass.
#pragma once

#include <cstddef>
#include <span>

#include "core/shape.hpp"

namespace gpucnn::conv {

/// Number of elements in the column matrix of one image.
[[nodiscard]] std::size_t col_buffer_size(const ConvConfig& cfg);

/// Lowers one image plane set `input` (C x H x W, contiguous) into `col`.
void im2col(const ConvConfig& cfg, std::span<const float> input,
            std::span<float> col);

/// Adjoint of im2col: accumulates `col` back into `input` (which the
/// caller must zero first when a pure scatter is wanted).
void col2im(const ConvConfig& cfg, std::span<const float> col,
            std::span<float> input);

}  // namespace gpucnn::conv
