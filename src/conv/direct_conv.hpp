// Direct convolution: the traditional sliding-window dot product
// (paper §II.B, strategy of cuda-convnet2 and Theano-legacy).
#pragma once

#include "conv/conv_engine.hpp"

namespace gpucnn::conv {

/// Loop-nest convolution, parallelised over independent output slices.
/// Needs no workspace, mirroring cuda-convnet2's direct strategy.
class DirectConv final : public ConvEngine {
 public:
  [[nodiscard]] Strategy strategy() const override {
    return Strategy::kDirect;
  }
  [[nodiscard]] std::string_view name() const override { return "direct"; }
  [[nodiscard]] bool supports(const ConvConfig&) const override {
    return true;
  }

  void forward(const ConvConfig& cfg, const Tensor& input,
               const Tensor& filters, Tensor& output) const override;
  void backward_data(const ConvConfig& cfg, const Tensor& grad_output,
                     const Tensor& filters, Tensor& grad_input) const override;
  void backward_filter(const ConvConfig& cfg, const Tensor& input,
                       const Tensor& grad_output,
                       Tensor& grad_filters) const override;
};

}  // namespace gpucnn::conv
