// Overlap-save tiled FFT convolution.
//
// Large inputs make single-transform FFT convolution pay for
// next-power-of-two padding (the Fig. 5(b) memory steps). The
// overlap-save decomposition instead covers the output with tiles of
// size (T - k + 1), each computed from a T x T input patch with a small
// transform; patches overlap by k - 1. This is the real algorithm behind
// the fbfft tile planner the performance model uses — implemented here
// in full so the numerics can be tested, not just costed.
//
// Each tile runs through the untiled engine, so tiles use the same
// half-spectrum R2C path, and every tile of a layer shares one cached
// plan (fft::PlanCache) — the tile transform is built once per process,
// not once per patch.
#pragma once

#include "conv/conv_engine.hpp"
#include "conv/fft_conv.hpp"

namespace gpucnn::conv {

class TiledFftConv final : public ConvEngine {
 public:
  /// `tile` is the transform edge length (power of two, > kernel). 0
  /// selects automatically: the smallest power of two >= 2k that yields
  /// no more total transform area than the single-transform approach.
  explicit TiledFftConv(std::size_t tile = 0);

  [[nodiscard]] Strategy strategy() const override { return Strategy::kFft; }
  [[nodiscard]] std::string_view name() const override {
    return "fft-tiled";
  }
  [[nodiscard]] bool supports(const ConvConfig& cfg) const override {
    return FftConv{}.supports(cfg);
  }

  void forward(const ConvConfig& cfg, const Tensor& input,
               const Tensor& filters, Tensor& output) const override;
  /// Backward passes use the single-transform engine (as fbfft did:
  /// tiling was a forward-path optimisation).
  void backward_data(const ConvConfig& cfg, const Tensor& grad_output,
                     const Tensor& filters, Tensor& grad_input) const override;
  void backward_filter(const ConvConfig& cfg, const Tensor& input,
                       const Tensor& grad_output,
                       Tensor& grad_filters) const override;

  /// The tile size that forward() will use for this configuration.
  [[nodiscard]] std::size_t tile_for(const ConvConfig& cfg) const;

 private:
  std::size_t tile_;
  FftConv untiled_;
};

}  // namespace gpucnn::conv
