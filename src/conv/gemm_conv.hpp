// Unrolling-based convolution: im2col + SGEMM (+ col2im on the backward
// path). This is the strategy of Caffe, Torch-cunn, Theano-CorrMM and
// cuDNN (paper §II.B), structured as Caffe structures it: one GEMM per
// image over a reused column workspace.
#pragma once

#include "conv/conv_engine.hpp"

namespace gpucnn::conv {

/// Test hook: enables/disables the pointwise (1x1, stride 1, pad 0)
/// im2col-skip fast path, returning the previous setting. The fast path
/// is bit-identical to the staged path (the column matrix of a 1x1
/// stride-1 convolution IS the input plane block), so tests flip this to
/// compare the two; production code leaves it on.
bool set_pointwise_fast_path(bool enabled);

class GemmConv final : public ConvEngine {
 public:
  [[nodiscard]] Strategy strategy() const override {
    return Strategy::kUnrolling;
  }
  [[nodiscard]] std::string_view name() const override { return "unrolling"; }
  [[nodiscard]] bool supports(const ConvConfig&) const override {
    return true;
  }

  void forward(const ConvConfig& cfg, const Tensor& input,
               const Tensor& filters, Tensor& output) const override;
  /// Bias + ReLU ride the per-group SGEMM's write-back epilogue (the
  /// GEMM's M rows are exactly this group's filters).
  [[nodiscard]] bool forward_fused(const ConvConfig& cfg,
                                   const Tensor& input,
                                   const Tensor& filters,
                                   std::span<const float> bias, bool relu,
                                   Tensor& output) const override;
  [[nodiscard]] bool supports_prepack() const override { return true; }
  /// Per-group SGEMMs consume the cached weight panels (A operand)
  /// instead of re-packing them every call; the 1x1 fast path benefits
  /// the most since the GEMM is then the whole forward.
  [[nodiscard]] bool forward_prepacked(const ConvConfig& cfg,
                                       const Tensor& input,
                                       const PackedFilters& packed,
                                       const Tensor& filters,
                                       std::span<const float> bias, bool relu,
                                       Tensor& output) const override;
  void backward_data(const ConvConfig& cfg, const Tensor& grad_output,
                     const Tensor& filters, Tensor& grad_input) const override;
  void backward_filter(const ConvConfig& cfg, const Tensor& input,
                       const Tensor& grad_output,
                       Tensor& grad_filters) const override;

 private:
  static void run_forward(const ConvConfig& cfg, const Tensor& input,
                          const Tensor& filters, Tensor& output,
                          const float* bias, bool relu,
                          const PackedFilters* packed = nullptr);
};

}  // namespace gpucnn::conv
