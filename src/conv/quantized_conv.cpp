#include "conv/quantized_conv.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "blas/igemm.hpp"
#include "blas/packed.hpp"
#include "core/error.hpp"
#include "core/thread_pool.hpp"
#include "core/workspace.hpp"

namespace gpucnn::conv {
namespace {

// Tile width of the implicit path, matching the fp32 engine.
constexpr std::size_t kTile = 64;

// One group's geometry as a standalone ungrouped configuration.
ConvConfig group_view(const ConvConfig& cfg) {
  ConvConfig g = cfg;
  g.channels = cfg.group_channels();
  g.filters = cfg.group_filters();
  g.groups = 1;
  return g;
}

void validate_quantized_forward(const ConvConfig& cfg, const Tensor& input,
                                const quant::QuantizedFilters& qw,
                                const quant::ActQuant& aq,
                                std::span<const float> bias,
                                const Tensor& output) {
  check(input.shape() == cfg.input_shape(), "input shape mismatch");
  check(output.shape() == cfg.output_shape(), "output shape mismatch");
  const std::size_t ckk =
      cfg.group_channels() * cfg.kernel * cfg.kernel;
  check(qw.rows == cfg.filters && qw.cols == ckk,
        "quantized filter matrix shape mismatch");
  check(bias.empty() || bias.size() == cfg.filters,
        "bias length must equal the filter count");
  quant::validate(aq);
}

// im2col over an already-quantized uint8 image (C x H x W planes).
// Padding positions hold the activation zero point — the quantization
// of real 0.0 — so the zero-point correction (which assumes every
// column entry was quantized under `aq`) stays exact under padding.
void im2col_u8(const ConvConfig& gv, const std::uint8_t* input,
               std::uint8_t pad_value, std::uint8_t* col) {
  const std::size_t o = gv.output();
  const std::size_t in = gv.input;
  const std::size_t k = gv.kernel;
  const std::size_t s = gv.stride;
  const std::size_t p = gv.pad;
  for (std::size_t c = 0; c < gv.channels; ++c) {
    const std::uint8_t* plane = input + c * in * in;
    for (std::size_t ky = 0; ky < k; ++ky) {
      for (std::size_t kx = 0; kx < k; ++kx) {
        std::uint8_t* row = col + ((c * k + ky) * k + kx) * o * o;
        for (std::size_t y = 0; y < o; ++y) {
          const std::size_t iy = y * s + ky;
          std::uint8_t* dst = row + y * o;
          if (iy < p || iy >= in + p) {
            std::memset(dst, pad_value, o);
            continue;
          }
          const std::uint8_t* src = plane + (iy - p) * in;
          if (s == 1) {
            // ix = x + kx is monotone in x: the valid span
            // p <= ix < in + p is one contiguous run, so the row is
            // pad | memcpy | pad.
            const std::size_t x_lo = kx < p ? p - kx : 0;
            const std::size_t x_hi =
                kx >= in + p ? 0 : std::min(o, in + p - kx);
            if (x_lo > 0) std::memset(dst, pad_value, std::min(x_lo, o));
            if (x_hi > x_lo) {
              std::memcpy(dst + x_lo, src + x_lo + kx - p, x_hi - x_lo);
            }
            if (x_hi < o) std::memset(dst + x_hi, pad_value, o - x_hi);
            continue;
          }
          for (std::size_t x = 0; x < o; ++x) {
            const std::size_t ix = x * s + kx;
            dst[x] = (ix >= p && ix < in + p) ? src[ix - p] : pad_value;
          }
        }
      }
    }
  }
}

// uint8 twin of the fp32 implicit engine's gather_tile.
void gather_tile_u8(const ConvConfig& cfg, const std::uint8_t* image,
                    std::uint8_t pad_value, std::size_t col0,
                    std::size_t cols, std::uint8_t* tile) {
  const std::size_t o = cfg.output();
  const std::size_t in = cfg.input;
  const std::size_t k = cfg.kernel;
  const std::size_t s = cfg.stride;
  const std::size_t p = cfg.pad;
  for (std::size_t c = 0; c < cfg.channels; ++c) {
    const std::uint8_t* plane = image + c * in * in;
    for (std::size_t ky = 0; ky < k; ++ky) {
      for (std::size_t kx = 0; kx < k; ++kx) {
        std::uint8_t* row = tile + ((c * k + ky) * k + kx) * cols;
        for (std::size_t j = 0; j < cols; ++j) {
          const std::size_t pos = col0 + j;
          const std::size_t y = pos / o;
          const std::size_t x = pos % o;
          const std::size_t iy = y * s + ky;
          const std::size_t ix = x * s + kx;
          row[j] = (iy >= p && iy < in + p && ix >= p && ix < in + p)
                       ? plane[(iy - p) * in + (ix - p)]
                       : pad_value;
        }
      }
    }
  }
}

// Per-row epilogue arrays: combined dequant scale s_a * s_w[f] and the
// activation-zero-point correction zp * sum(w_q[f]).
void fill_epilogue_arrays(const quant::QuantizedFilters& qw,
                          const quant::ActQuant& aq, float* scales,
                          std::int32_t* offsets) {
  for (std::size_t r = 0; r < qw.rows; ++r) {
    scales[r] = aq.scale * qw.scales[r];
    offsets[r] = aq.zero_point * qw.row_sums[r];
  }
}

// Dynamic-quantization front end shared by both engine adapters:
// activations quantized per-tensor from this batch's own range, weights
// per-channel from the filter tensor.
void dynamic_forward(const ConvConfig& cfg, const Tensor& input,
                     const Tensor& filters, std::span<const float> bias,
                     bool relu, Tensor& output, bool implicit) {
  check(filters.shape() == cfg.filter_shape(), "filter shape mismatch");
  const std::span<const float> in = input.data();
  check(!in.empty(), "quantized forward needs a non-empty input");
  float lo = in[0];
  float hi = in[0];
  for (const float v : in) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const quant::ActQuant aq = quant::choose_act_quant(lo, hi);
  const std::size_t ckk =
      cfg.group_channels() * cfg.kernel * cfg.kernel;
  const quant::QuantizedFilters qw =
      quant::quantize_filters(filters.data(), cfg.filters, ckk);
  if (implicit) {
    quantized_implicit_forward(cfg, input, qw, aq, bias, relu, output);
  } else {
    quantized_gemm_forward(cfg, input, qw, aq, bias, relu, output);
  }
}

// Shared bodies of the staged and prepacked quantized forwards; `packed`
// == nullptr re-packs weights inside each igemm call.
void gemm_forward_impl(const ConvConfig& cfg, const Tensor& input,
                       const quant::QuantizedFilters& qw,
                       const PackedQFilters* packed,
                       const quant::ActQuant& aq,
                       std::span<const float> bias, bool relu,
                       Tensor& output) {
  validate_quantized_forward(cfg, input, qw, aq, bias, output);
  const ConvConfig gv = group_view(cfg);
  const std::size_t o = cfg.output();
  const std::size_t ckk = gv.channels * cfg.kernel * cfg.kernel;
  const std::size_t cols = o * o;

  ws::Scratch<std::uint8_t> qin(input.count());
  quant::quantize_acts(input.data(), aq, qin.span());
  const auto pad_byte = static_cast<std::uint8_t>(aq.zero_point);

  ws::Scratch<float> scales(cfg.filters);
  ws::Scratch<std::int32_t> offsets(cfg.filters);
  fill_epilogue_arrays(qw, aq, scales.data(), offsets.data());

  ws::Scratch<std::uint8_t> col(ckk * cols);
  const std::size_t image_elems = cfg.channels * cfg.input * cfg.input;
  for (std::size_t n = 0; n < cfg.batch; ++n) {
    for (std::size_t g = 0; g < cfg.groups; ++g) {
      im2col_u8(gv,
                qin.data() + n * image_elems +
                    g * gv.channels * cfg.input * cfg.input,
                pad_byte, col.data());
      blas::QEpilogue ep;
      ep.scales = scales.data() + g * gv.filters;
      ep.row_offsets = offsets.data() + g * gv.filters;
      ep.bias = bias.empty() ? nullptr : bias.data() + g * gv.filters;
      ep.relu = relu;
      const std::span<float> out{output.plane(n, g * gv.filters),
                                 gv.filters * cols};
      if (packed != nullptr) {
        blas::igemm_prepacked(gv.filters, cols, ckk, packed->groups[g],
                              col.span(), cols, ep, out, cols);
      } else {
        blas::igemm(gv.filters, cols, ckk,
                    {qw.data.data() + g * gv.filters * ckk,
                     gv.filters * ckk},
                    ckk, col.span(), cols, ep, out, cols);
      }
    }
  }
}

void implicit_forward_impl(const ConvConfig& cfg, const Tensor& input,
                           const quant::QuantizedFilters& qw,
                           const PackedQFilters* packed,
                           const quant::ActQuant& aq,
                           std::span<const float> bias, bool relu,
                           Tensor& output) {
  validate_quantized_forward(cfg, input, qw, aq, bias, output);
  check(cfg.groups == 1,
        "quantized implicit GEMM does not support grouped filters");
  const std::size_t o = cfg.output();
  const std::size_t ckk = cfg.channels * cfg.kernel * cfg.kernel;
  const std::size_t positions = o * o;

  ws::Scratch<std::uint8_t> qin(input.count());
  quant::quantize_acts(input.data(), aq, qin.span());
  const auto pad_byte = static_cast<std::uint8_t>(aq.zero_point);

  ws::Scratch<float> scales(cfg.filters);
  ws::Scratch<std::int32_t> offsets(cfg.filters);
  fill_epilogue_arrays(qw, aq, scales.data(), offsets.data());
  blas::QEpilogue ep;
  ep.scales = scales.data();
  ep.row_offsets = offsets.data();
  ep.bias = bias.empty() ? nullptr : bias.data();
  ep.relu = relu;

  const std::size_t image_elems = cfg.channels * cfg.input * cfg.input;
  parallel_for(0, cfg.batch, [&](std::size_t n) {
    ws::Scratch<std::uint8_t> tile(ckk * kTile);
    ws::Scratch<float> out_tile(cfg.filters * kTile);
    const std::uint8_t* image = qin.data() + n * image_elems;
    float* out_image = output.plane(n, 0);
    for (std::size_t col0 = 0; col0 < positions; col0 += kTile) {
      const std::size_t cols = std::min(kTile, positions - col0);
      gather_tile_u8(cfg, image, pad_byte, col0, cols, tile.data());
      if (packed != nullptr) {
        blas::igemm_prepacked(cfg.filters, cols, ckk, packed->groups[0],
                              {tile.data(), ckk * cols}, cols, ep,
                              {out_tile.data(), cfg.filters * cols}, cols);
      } else {
        blas::igemm(cfg.filters, cols, ckk,
                    {qw.data.data(), qw.data.size()}, ckk,
                    {tile.data(), ckk * cols}, cols, ep,
                    {out_tile.data(), cfg.filters * cols}, cols);
      }
      for (std::size_t f = 0; f < cfg.filters; ++f) {
        for (std::size_t j = 0; j < cols; ++j) {
          out_image[f * positions + col0 + j] =
              out_tile.data()[f * cols + j];
        }
      }
    }
  });
}

}  // namespace

PackedQFilters prepack_quantized_filters(const ConvConfig& cfg,
                                         const quant::QuantizedFilters& qw) {
  const std::size_t group_filters = cfg.group_filters();
  const std::size_t ckk =
      cfg.group_channels() * cfg.kernel * cfg.kernel;
  check(qw.rows == cfg.filters && qw.cols == ckk,
        "quantized filter matrix shape mismatch");
  PackedQFilters packed;
  packed.groups.reserve(cfg.groups);
  for (std::size_t g = 0; g < cfg.groups; ++g) {
    packed.groups.push_back(blas::pack_a_i8(
        group_filters, ckk,
        {qw.data.data() + g * group_filters * ckk, group_filters * ckk},
        ckk));
  }
  return packed;
}

void quantized_gemm_forward(const ConvConfig& cfg, const Tensor& input,
                            const quant::QuantizedFilters& qw,
                            const quant::ActQuant& aq,
                            std::span<const float> bias, bool relu,
                            Tensor& output) {
  gemm_forward_impl(cfg, input, qw, nullptr, aq, bias, relu, output);
}

void quantized_gemm_forward(const ConvConfig& cfg, const Tensor& input,
                            const quant::QuantizedFilters& qw,
                            const PackedQFilters& packed,
                            const quant::ActQuant& aq,
                            std::span<const float> bias, bool relu,
                            Tensor& output) {
  check(packed.groups.size() == cfg.groups,
        "packed filter group count mismatch");
  gemm_forward_impl(cfg, input, qw, &packed, aq, bias, relu, output);
}

void quantized_implicit_forward(const ConvConfig& cfg, const Tensor& input,
                                const quant::QuantizedFilters& qw,
                                const quant::ActQuant& aq,
                                std::span<const float> bias, bool relu,
                                Tensor& output) {
  implicit_forward_impl(cfg, input, qw, nullptr, aq, bias, relu, output);
}

void quantized_implicit_forward(const ConvConfig& cfg, const Tensor& input,
                                const quant::QuantizedFilters& qw,
                                const PackedQFilters& packed,
                                const quant::ActQuant& aq,
                                std::span<const float> bias, bool relu,
                                Tensor& output) {
  check(packed.groups.size() == 1,
        "packed filter group count mismatch");
  implicit_forward_impl(cfg, input, qw, &packed, aq, bias, relu, output);
}

void QuantizedGemmConv::forward(const ConvConfig& cfg, const Tensor& input,
                                const Tensor& filters,
                                Tensor& output) const {
  dynamic_forward(cfg, input, filters, {}, false, output,
                  /*implicit=*/false);
}

bool QuantizedGemmConv::forward_fused(const ConvConfig& cfg,
                                      const Tensor& input,
                                      const Tensor& filters,
                                      std::span<const float> bias,
                                      bool relu, Tensor& output) const {
  dynamic_forward(cfg, input, filters, bias, relu, output,
                  /*implicit=*/false);
  return true;
}

void QuantizedGemmConv::backward_data(const ConvConfig&, const Tensor&,
                                      const Tensor&, Tensor&) const {
  throw Error("unrolling-int8 is inference-only: no backward_data");
}

void QuantizedGemmConv::backward_filter(const ConvConfig&, const Tensor&,
                                        const Tensor&, Tensor&) const {
  throw Error("unrolling-int8 is inference-only: no backward_filter");
}

void QuantizedImplicitGemmConv::forward(const ConvConfig& cfg,
                                        const Tensor& input,
                                        const Tensor& filters,
                                        Tensor& output) const {
  dynamic_forward(cfg, input, filters, {}, false, output,
                  /*implicit=*/true);
}

bool QuantizedImplicitGemmConv::forward_fused(const ConvConfig& cfg,
                                              const Tensor& input,
                                              const Tensor& filters,
                                              std::span<const float> bias,
                                              bool relu,
                                              Tensor& output) const {
  dynamic_forward(cfg, input, filters, bias, relu, output,
                  /*implicit=*/true);
  return true;
}

void QuantizedImplicitGemmConv::backward_data(const ConvConfig&,
                                              const Tensor&, const Tensor&,
                                              Tensor&) const {
  throw Error("implicit-int8 is inference-only: no backward_data");
}

void QuantizedImplicitGemmConv::backward_filter(const ConvConfig&,
                                                const Tensor&,
                                                const Tensor&,
                                                Tensor&) const {
  throw Error("implicit-int8 is inference-only: no backward_filter");
}

}  // namespace gpucnn::conv
