#include "conv/im2col.hpp"

#include <algorithm>
#include <cstring>

#include "core/error.hpp"
#include "core/thread_pool.hpp"

namespace gpucnn::conv {
namespace {

// For one (ky/kx, output-row) combination, the x loop splits into a
// zero prefix (ix < pad), a dense middle where every tap is in bounds,
// and a zero suffix (ix >= in + pad). Precomputing the split turns the
// per-element bounds checks of the naive loop into memset/memcpy (or a
// strided copy when stride > 1), which is what "vectorised im2col"
// means on a CPU: the copies saturate the load/store units.
struct XSplit {
  std::size_t lo;  ///< first in-bounds output x
  std::size_t hi;  ///< one past the last in-bounds output x
};

XSplit x_split(std::size_t o, std::size_t in, std::size_t s, std::size_t p,
               std::size_t kx) {
  // In bounds: p <= x*s + kx < in + p.
  const std::size_t lo = kx >= p ? 0 : (p - kx + s - 1) / s;
  std::size_t hi = 0;
  if (in + p > kx) {
    hi = std::min(o, (in + p - 1 - kx) / s + 1);
  }
  return {std::min(lo, hi), hi};
}

}  // namespace

std::size_t col_buffer_size(const ConvConfig& cfg) {
  const std::size_t o = cfg.output();
  return cfg.channels * cfg.kernel * cfg.kernel * o * o;
}

void im2col(const ConvConfig& cfg, std::span<const float> input,
            std::span<float> col) {
  const std::size_t o = cfg.output();
  const std::size_t in = cfg.input;
  const std::size_t k = cfg.kernel;
  const std::size_t s = cfg.stride;
  const std::size_t p = cfg.pad;
  check(input.size() == cfg.channels * in * in, "im2col input size mismatch");
  check(col.size() == col_buffer_size(cfg), "im2col col size mismatch");

  // Each channel writes a disjoint k*k*o*o block of `col`; lowering a
  // many-channel layer spreads planes across the pool.
  parallel_for(0, cfg.channels, [&](std::size_t c) {
    const float* plane = input.data() + c * in * in;
    float* dst = col.data() + c * k * k * o * o;
    for (std::size_t ky = 0; ky < k; ++ky) {
      for (std::size_t kx = 0; kx < k; ++kx) {
        const auto [x_lo, x_hi] = x_split(o, in, s, p, kx);
        for (std::size_t y = 0; y < o; ++y, dst += o) {
          const std::size_t iy = y * s + ky;
          if (iy < p || iy >= in + p) {
            std::memset(dst, 0, o * sizeof(float));
            continue;
          }
          const float* in_row = plane + (iy - p) * in;
          if (x_lo > 0) std::memset(dst, 0, x_lo * sizeof(float));
          if (s == 1) {
            // ix - p = x + kx - p is consecutive in x: one dense copy.
            std::memcpy(dst + x_lo, in_row + (x_lo + kx - p),
                        (x_hi - x_lo) * sizeof(float));
          } else {
            for (std::size_t x = x_lo; x < x_hi; ++x) {
              dst[x] = in_row[x * s + kx - p];
            }
          }
          if (x_hi < o) {
            std::memset(dst + x_hi, 0, (o - x_hi) * sizeof(float));
          }
        }
      }
    }
  });
}

void col2im(const ConvConfig& cfg, std::span<const float> col,
            std::span<float> input) {
  const std::size_t o = cfg.output();
  const std::size_t in = cfg.input;
  const std::size_t k = cfg.kernel;
  const std::size_t s = cfg.stride;
  const std::size_t p = cfg.pad;
  check(input.size() == cfg.channels * in * in, "col2im input size mismatch");
  check(col.size() == col_buffer_size(cfg), "col2im col size mismatch");

  // Distinct channels scatter into disjoint input planes, so the
  // channel loop parallelises safely; within a channel the (ky, kx)
  // taps overlap and stay sequential.
  parallel_for(0, cfg.channels, [&](std::size_t c) {
    float* plane = input.data() + c * in * in;
    const float* src = col.data() + c * k * k * o * o;
    for (std::size_t ky = 0; ky < k; ++ky) {
      for (std::size_t kx = 0; kx < k; ++kx) {
        const auto [x_lo, x_hi] = x_split(o, in, s, p, kx);
        for (std::size_t y = 0; y < o; ++y, src += o) {
          const std::size_t iy = y * s + ky;
          if (iy < p || iy >= in + p) continue;
          float* in_row = plane + (iy - p) * in;
          if (s == 1) {
            float* out = in_row + (x_lo + kx - p);
            for (std::size_t x = x_lo; x < x_hi; ++x) {
              out[x - x_lo] += src[x];
            }
          } else {
            for (std::size_t x = x_lo; x < x_hi; ++x) {
              in_row[x * s + kx - p] += src[x];
            }
          }
        }
      }
    }
  });
}

}  // namespace gpucnn::conv
