#include "conv/im2col.hpp"

#include "core/error.hpp"

namespace gpucnn::conv {

std::size_t col_buffer_size(const ConvConfig& cfg) {
  const std::size_t o = cfg.output();
  return cfg.channels * cfg.kernel * cfg.kernel * o * o;
}

void im2col(const ConvConfig& cfg, std::span<const float> input,
            std::span<float> col) {
  const std::size_t o = cfg.output();
  const std::size_t in = cfg.input;
  const std::size_t k = cfg.kernel;
  const std::size_t s = cfg.stride;
  const std::size_t p = cfg.pad;
  check(input.size() == cfg.channels * in * in, "im2col input size mismatch");
  check(col.size() == col_buffer_size(cfg), "im2col col size mismatch");

  float* dst = col.data();
  for (std::size_t c = 0; c < cfg.channels; ++c) {
    const float* plane = input.data() + c * in * in;
    for (std::size_t ky = 0; ky < k; ++ky) {
      for (std::size_t kx = 0; kx < k; ++kx) {
        for (std::size_t y = 0; y < o; ++y) {
          const std::size_t iy = y * s + ky;
          const bool row_in = iy >= p && iy < in + p;
          const float* in_row = row_in ? plane + (iy - p) * in : nullptr;
          for (std::size_t x = 0; x < o; ++x) {
            const std::size_t ix = x * s + kx;
            *dst++ = (row_in && ix >= p && ix < in + p) ? in_row[ix - p]
                                                        : 0.0F;
          }
        }
      }
    }
  }
}

void col2im(const ConvConfig& cfg, std::span<const float> col,
            std::span<float> input) {
  const std::size_t o = cfg.output();
  const std::size_t in = cfg.input;
  const std::size_t k = cfg.kernel;
  const std::size_t s = cfg.stride;
  const std::size_t p = cfg.pad;
  check(input.size() == cfg.channels * in * in, "col2im input size mismatch");
  check(col.size() == col_buffer_size(cfg), "col2im col size mismatch");

  const float* src = col.data();
  for (std::size_t c = 0; c < cfg.channels; ++c) {
    float* plane = input.data() + c * in * in;
    for (std::size_t ky = 0; ky < k; ++ky) {
      for (std::size_t kx = 0; kx < k; ++kx) {
        for (std::size_t y = 0; y < o; ++y) {
          const std::size_t iy = y * s + ky;
          const bool row_in = iy >= p && iy < in + p;
          float* in_row = row_in ? plane + (iy - p) * in : nullptr;
          for (std::size_t x = 0; x < o; ++x) {
            const std::size_t ix = x * s + kx;
            const float v = *src++;
            if (row_in && ix >= p && ix < in + p) in_row[ix - p] += v;
          }
        }
      }
    }
  }
}

}  // namespace gpucnn::conv
