#include "conv/implicit_gemm_conv.hpp"

#include <vector>

#include "blas/gemm.hpp"
#include "blas/packed.hpp"
#include "core/thread_pool.hpp"

namespace gpucnn::conv {
namespace {

// Tile width in output positions; the gathered column tile (CKK x kTile)
// is the only temporary, playing the role of cuDNN's shared-memory tile.
constexpr std::size_t kTile = 64;

struct Geometry {
  std::size_t o, in, k, s, p, ckk, positions;
};

// All three passes assume ungrouped geometry (ckk spans every channel,
// filter planes are channels wide); supports() declines groups > 1, so
// the autotuner/advisor never select this engine for grouped shapes.
// The guard keeps a direct mis-call from reading out of bounds.
Geometry geometry_of(const ConvConfig& cfg) {
  check(cfg.groups == 1, "implicit GEMM does not support grouped filters");
  const std::size_t o = cfg.output();
  return {o,
          cfg.input,
          cfg.kernel,
          cfg.stride,
          cfg.pad,
          cfg.channels * cfg.kernel * cfg.kernel,
          o * o};
}

// Gathers columns [col0, col0+cols) of the virtual im2col matrix of one
// image into `tile` (ckk x cols, row-major).
void gather_tile(const Geometry& g, std::size_t channels,
                 const float* image, std::size_t col0, std::size_t cols,
                 float* tile) {
  for (std::size_t c = 0; c < channels; ++c) {
    const float* plane = image + c * g.in * g.in;
    for (std::size_t ky = 0; ky < g.k; ++ky) {
      for (std::size_t kx = 0; kx < g.k; ++kx) {
        float* row =
            tile + ((c * g.k + ky) * g.k + kx) * cols;
        for (std::size_t j = 0; j < cols; ++j) {
          const std::size_t pos = col0 + j;
          const std::size_t y = pos / g.o;
          const std::size_t x = pos % g.o;
          const std::size_t iy = y * g.s + ky;
          const std::size_t ix = x * g.s + kx;
          row[j] = (iy >= g.p && iy < g.in + g.p && ix >= g.p &&
                    ix < g.in + g.p)
                       ? plane[(iy - g.p) * g.in + (ix - g.p)]
                       : 0.0F;
        }
      }
    }
  }
}

// Adjoint of gather_tile: scatter-adds the tile back into the image.
void scatter_tile(const Geometry& g, std::size_t channels, float* image,
                  std::size_t col0, std::size_t cols, const float* tile) {
  for (std::size_t c = 0; c < channels; ++c) {
    float* plane = image + c * g.in * g.in;
    for (std::size_t ky = 0; ky < g.k; ++ky) {
      for (std::size_t kx = 0; kx < g.k; ++kx) {
        const float* row =
            tile + ((c * g.k + ky) * g.k + kx) * cols;
        for (std::size_t j = 0; j < cols; ++j) {
          const std::size_t pos = col0 + j;
          const std::size_t y = pos / g.o;
          const std::size_t x = pos % g.o;
          const std::size_t iy = y * g.s + ky;
          const std::size_t ix = x * g.s + kx;
          if (iy >= g.p && iy < g.in + g.p && ix >= g.p &&
              ix < g.in + g.p) {
            plane[(iy - g.p) * g.in + (ix - g.p)] += row[j];
          }
        }
      }
    }
  }
}

}  // namespace

void ImplicitGemmConv::forward(const ConvConfig& cfg, const Tensor& input,
                               const Tensor& filters,
                               Tensor& output) const {
  run_forward(cfg, input, filters, output, nullptr, false);
}

bool ImplicitGemmConv::forward_fused(const ConvConfig& cfg,
                                     const Tensor& input,
                                     const Tensor& filters,
                                     std::span<const float> bias, bool relu,
                                     Tensor& output) const {
  check(bias.empty() || bias.size() == cfg.filters,
        "fused bias length must equal the filter count");
  run_forward(cfg, input, filters, output,
              bias.empty() ? nullptr : bias.data(), relu);
  return true;
}

bool ImplicitGemmConv::forward_prepacked(const ConvConfig& cfg,
                                         const Tensor& input,
                                         const PackedFilters& packed,
                                         const Tensor& filters,
                                         std::span<const float> bias,
                                         bool relu, Tensor& output) const {
  if (packed.groups.size() != 1 || cfg.groups != 1) return false;
  check(bias.empty() || bias.size() == cfg.filters,
        "fused bias length must equal the filter count");
  run_forward(cfg, input, filters, output,
              bias.empty() ? nullptr : bias.data(), relu, &packed);
  return true;
}

void ImplicitGemmConv::run_forward(const ConvConfig& cfg,
                                   const Tensor& input,
                                   const Tensor& filters, Tensor& output,
                                   const float* bias, bool relu,
                                   const PackedFilters* packed) {
  validate_forward(cfg, input, filters, output);
  const Geometry g = geometry_of(cfg);

  parallel_for(0, cfg.batch, [&](std::size_t n) {
    std::vector<float> tile(g.ckk * kTile);
    std::vector<float> out_tile(cfg.filters * kTile);
    const float* image = input.plane(n, 0);
    for (std::size_t col0 = 0; col0 < g.positions; col0 += kTile) {
      const std::size_t cols = std::min(kTile, g.positions - col0);
      gather_tile(g, cfg.channels, image, col0, cols, tile.data());
      // out_tile(F x cols) = W(F x CKK) * tile(CKK x cols); the gathered
      // tile is reused across every filter — implicit GEMM's win. Bias
      // and ReLU land in the tile epilogue (rows are the filters), so
      // the copy-out below moves finished values.
      if (packed != nullptr) {
        blas::sgemm_prepacked(cfg.filters, cols, g.ckk, 1.0F,
                              packed->groups[0], blas::Trans::kNo,
                              {tile.data(), g.ckk * cols}, cols, 0.0F,
                              {out_tile.data(), cfg.filters * cols}, cols,
                              blas::Epilogue{.bias = bias, .relu = relu});
      } else {
        blas::sgemm(blas::Trans::kNo, blas::Trans::kNo, cfg.filters, cols,
                    g.ckk, 1.0F, filters.data(), g.ckk,
                    {tile.data(), g.ckk * cols}, cols, 0.0F,
                    {out_tile.data(), cfg.filters * cols}, cols,
                    blas::Epilogue{.bias = bias, .relu = relu});
      }
      float* out_image = output.plane(n, 0);
      for (std::size_t f = 0; f < cfg.filters; ++f) {
        for (std::size_t j = 0; j < cols; ++j) {
          out_image[f * g.positions + col0 + j] = out_tile[f * cols + j];
        }
      }
    }
  });
}

void ImplicitGemmConv::backward_data(const ConvConfig& cfg,
                                     const Tensor& grad_output,
                                     const Tensor& filters,
                                     Tensor& grad_input) const {
  check(grad_output.shape() == cfg.output_shape(),
        "grad_output shape mismatch");
  check(filters.shape() == cfg.filter_shape(), "filter shape mismatch");
  check(grad_input.shape() == cfg.input_shape(),
        "grad_input shape mismatch");
  const Geometry g = geometry_of(cfg);
  grad_input.fill(0.0F);

  parallel_for(0, cfg.batch, [&](std::size_t n) {
    std::vector<float> gout_tile(cfg.filters * kTile);
    std::vector<float> col_tile(g.ckk * kTile);
    const float* gout_image = grad_output.plane(n, 0);
    float* gin_image = grad_input.plane(n, 0);
    for (std::size_t col0 = 0; col0 < g.positions; col0 += kTile) {
      const std::size_t cols = std::min(kTile, g.positions - col0);
      for (std::size_t f = 0; f < cfg.filters; ++f) {
        for (std::size_t j = 0; j < cols; ++j) {
          gout_tile[f * cols + j] = gout_image[f * g.positions + col0 + j];
        }
      }
      // col_tile(CKK x cols) = W^T(CKK x F) * gout_tile(F x cols)
      blas::sgemm(blas::Trans::kYes, blas::Trans::kNo, g.ckk, cols,
                  cfg.filters, 1.0F, filters.data(), g.ckk,
                  {gout_tile.data(), cfg.filters * cols}, cols, 0.0F,
                  {col_tile.data(), g.ckk * cols}, cols);
      scatter_tile(g, cfg.channels, gin_image, col0, cols,
                   col_tile.data());
    }
  });
}

void ImplicitGemmConv::backward_filter(const ConvConfig& cfg,
                                       const Tensor& input,
                                       const Tensor& grad_output,
                                       Tensor& grad_filters) const {
  check(input.shape() == cfg.input_shape(), "input shape mismatch");
  check(grad_output.shape() == cfg.output_shape(),
        "grad_output shape mismatch");
  check(grad_filters.shape() == cfg.filter_shape(),
        "grad_filters shape mismatch");
  const Geometry g = geometry_of(cfg);
  grad_filters.fill(0.0F);

  // Serial over images (the accumulation target is shared); the inner
  // GEMM parallelises.
  std::vector<float> tile(g.ckk * kTile);
  std::vector<float> gout_tile(cfg.filters * kTile);
  for (std::size_t n = 0; n < cfg.batch; ++n) {
    const float* image = input.plane(n, 0);
    const float* gout_image = grad_output.plane(n, 0);
    for (std::size_t col0 = 0; col0 < g.positions; col0 += kTile) {
      const std::size_t cols = std::min(kTile, g.positions - col0);
      gather_tile(g, cfg.channels, image, col0, cols, tile.data());
      for (std::size_t f = 0; f < cfg.filters; ++f) {
        for (std::size_t j = 0; j < cols; ++j) {
          gout_tile[f * cols + j] = gout_image[f * g.positions + col0 + j];
        }
      }
      // gw(F x CKK) += gout_tile(F x cols) * tile^T(cols x CKK)
      blas::sgemm(blas::Trans::kNo, blas::Trans::kYes, cfg.filters, g.ckk,
                  cols, 1.0F, {gout_tile.data(), cfg.filters * cols}, cols,
                  {tile.data(), g.ckk * cols}, cols, 1.0F,
                  grad_filters.data(), g.ckk);
    }
  }
}

}  // namespace gpucnn::conv
