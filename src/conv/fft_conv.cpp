#include "conv/fft_conv.hpp"

#include <vector>

#include "blas/cgemm.hpp"
#include "core/thread_pool.hpp"
#include "core/workspace.hpp"
#include "fft/fft.hpp"

namespace gpucnn::conv {
namespace {

using blas::Complex;
using fft::Direction;
using fft::Plan;

// Frequency-major spectrum store: bin-major, `rows * cols` complex values
// per bin, so each bin exposes a contiguous rows x cols matrix for the
// pointwise GEMM stage.
struct FreqMajor {
  FreqMajor(std::size_t bins, std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(bins * rows * cols) {}

  [[nodiscard]] std::span<Complex> bin(std::size_t b) {
    return {data_.data() + b * rows_ * cols_, rows_ * cols_};
  }
  [[nodiscard]] std::span<const Complex> bin(std::size_t b) const {
    return {data_.data() + b * rows_ * cols_, rows_ * cols_};
  }
  /// Element (row, col) of bin b.
  [[nodiscard]] Complex& at(std::size_t b, std::size_t row, std::size_t col) {
    return data_[(b * rows_ + row) * cols_ + col];
  }

  std::size_t rows_;
  std::size_t cols_;
  std::vector<Complex> data_;
};

// Pads `src` (src_h x src_w real) into an S x S complex buffer, runs the
// forward 2-D FFT, and scatters bin j into dst.at(j, row, col).
void transform_scatter(std::span<const float> src, std::size_t src_h,
                       std::size_t src_w, const Plan& plan, FreqMajor& dst,
                       std::size_t row, std::size_t col) {
  const std::size_t s = plan.size();
  ws::Scratch<Complex> buf(s * s, /*zero=*/true);
  for (std::size_t y = 0; y < src_h; ++y) {
    for (std::size_t x = 0; x < src_w; ++x) {
      buf.data()[y * s + x] = Complex(src[y * src_w + x], 0.0F);
    }
  }
  fft::transform_2d(buf.span(), plan, plan, Direction::kForward);
  for (std::size_t j = 0; j < s * s; ++j) dst.at(j, row, col) = buf.data()[j];
}

// Gathers one (row, col) series from `src` across bins, inverse-transforms
// it, and writes real parts of the (off_y, off_x)-anchored dst_h x dst_w
// window to `dst`.
void gather_inverse(const FreqMajor& src, std::size_t row, std::size_t col,
                    const Plan& plan, std::span<float> dst, std::size_t dst_h,
                    std::size_t dst_w, std::size_t off_y, std::size_t off_x) {
  const std::size_t s = plan.size();
  ws::Scratch<Complex> buf(s * s);
  for (std::size_t j = 0; j < s * s; ++j) {
    buf.data()[j] = src.data_[(j * src.rows_ + row) * src.cols_ + col];
  }
  fft::transform_2d(buf.span(), plan, plan, Direction::kInverse);
  for (std::size_t y = 0; y < dst_h; ++y) {
    for (std::size_t x = 0; x < dst_w; ++x) {
      dst[y * dst_w + x] = buf.data()[(y + off_y) * s + (x + off_x)].real();
    }
  }
}

// Transforms every (n, c) plane of a tensor into freq-major storage with
// bin matrices of shape (outer = tensor.n) x (inner = tensor.c). When
// `pad` is nonzero the real data is anchored at (pad, pad) inside the
// padded tile (used for padded inputs; filters and gradients use pad 0).
FreqMajor spectra_of(const Tensor& t, const Plan& plan, std::size_t pad) {
  const auto& sh = t.shape();
  const std::size_t s = plan.size();
  FreqMajor out(s * s, sh.n, sh.c);
  parallel_for(0, sh.n * sh.c, [&](std::size_t job) {
    const std::size_t n = job / sh.c;
    const std::size_t c = job % sh.c;
    if (pad == 0) {
      transform_scatter({t.plane(n, c), sh.h * sh.w}, sh.h, sh.w, plan, out,
                        n, c);
    } else {
      ws::Scratch<float> padded((sh.h + 2 * pad) * (sh.w + 2 * pad),
                                /*zero=*/true);
      const float* src = t.plane(n, c);
      for (std::size_t y = 0; y < sh.h; ++y) {
        for (std::size_t x = 0; x < sh.w; ++x) {
          padded.data()[(y + pad) * (sh.w + 2 * pad) + (x + pad)] =
              src[y * sh.w + x];
        }
      }
      transform_scatter(padded.span(), sh.h + 2 * pad, sh.w + 2 * pad, plan,
                        out, n, c);
    }
  });
  return out;
}

}  // namespace

std::size_t FftConv::transform_size(const ConvConfig& cfg) {
  // next_pow2(i + 2p) suffices for all three passes: the largest index
  // any circular product touches is (o-1) + (k-1) = i + 2p - 1 for the
  // correlations, and the backward-data convolution's support is
  // o + k - 1 = i + 2p. This is the "extend the filter bank to the size
  // of the input" padding the paper attributes to fbfft.
  return fft::next_pow2(cfg.input + 2 * cfg.pad);
}

void FftConv::forward(const ConvConfig& cfg, const Tensor& input,
                      const Tensor& filters, Tensor& output) const {
  validate_forward(cfg, input, filters, output);
  check(supports(cfg), "FFT convolution requires stride 1");
  const std::size_t s = transform_size(cfg);
  const Plan plan(s);
  const std::size_t bins = s * s;
  const std::size_t o = cfg.output();

  const FreqMajor x = spectra_of(input, plan, cfg.pad);    // (N, C) per bin
  const FreqMajor w = spectra_of(filters, plan, 0);        // (F, C) per bin

  // Pointwise stage: out(n,f) = sum_c x(n,c) * conj(w(f,c)) per bin.
  FreqMajor y(bins, cfg.batch, cfg.filters);
  parallel_for_chunks(0, bins, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t b = lo; b < hi; ++b) {
      blas::cgemm_nt_conj(cfg.batch, cfg.filters, cfg.channels,
                          Complex{1.0F, 0.0F}, x.bin(b), cfg.channels,
                          w.bin(b), cfg.channels, Complex{0.0F, 0.0F},
                          y.bin(b), cfg.filters);
    }
  });

  parallel_for(0, cfg.batch * cfg.filters, [&](std::size_t job) {
    const std::size_t n = job / cfg.filters;
    const std::size_t f = job % cfg.filters;
    gather_inverse(y, n, f, plan, {output.plane(n, f), o * o}, o, o, 0, 0);
  });
}

void FftConv::backward_data(const ConvConfig& cfg, const Tensor& grad_output,
                            const Tensor& filters,
                            Tensor& grad_input) const {
  check(grad_output.shape() == cfg.output_shape(),
        "grad_output shape mismatch");
  check(filters.shape() == cfg.filter_shape(), "filter shape mismatch");
  check(grad_input.shape() == cfg.input_shape(), "grad_input shape mismatch");
  check(supports(cfg), "FFT convolution requires stride 1");
  const std::size_t s = transform_size(cfg);
  const Plan plan(s);
  const std::size_t bins = s * s;
  const std::size_t in = cfg.input;

  const FreqMajor g = spectra_of(grad_output, plan, 0);  // (N, F) per bin
  const FreqMajor w = spectra_of(filters, plan, 0);      // (F, C) per bin

  // gin_padded = gout (*) w, a true convolution: plain spectral product.
  FreqMajor gi(bins, cfg.batch, cfg.channels);
  parallel_for_chunks(0, bins, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t b = lo; b < hi; ++b) {
      blas::cgemm_nn(cfg.batch, cfg.channels, cfg.filters,
                     Complex{1.0F, 0.0F}, g.bin(b), cfg.filters, w.bin(b),
                     cfg.channels, Complex{0.0F, 0.0F}, gi.bin(b),
                     cfg.channels);
    }
  });

  // The padded gradient lives on [0, i + 2p); the real input window is
  // anchored at (pad, pad).
  parallel_for(0, cfg.batch * cfg.channels, [&](std::size_t job) {
    const std::size_t n = job / cfg.channels;
    const std::size_t c = job % cfg.channels;
    gather_inverse(gi, n, c, plan, {grad_input.plane(n, c), in * in}, in, in,
                   cfg.pad, cfg.pad);
  });
}

void FftConv::backward_filter(const ConvConfig& cfg, const Tensor& input,
                              const Tensor& grad_output,
                              Tensor& grad_filters) const {
  check(input.shape() == cfg.input_shape(), "input shape mismatch");
  check(grad_output.shape() == cfg.output_shape(),
        "grad_output shape mismatch");
  check(grad_filters.shape() == cfg.filter_shape(),
        "grad_filters shape mismatch");
  check(supports(cfg), "FFT convolution requires stride 1");
  const std::size_t s = transform_size(cfg);
  const Plan plan(s);
  const std::size_t bins = s * s;
  const std::size_t k = cfg.kernel;

  const FreqMajor x = spectra_of(input, plan, cfg.pad);   // (N, C) per bin
  const FreqMajor g = spectra_of(grad_output, plan, 0);   // (N, F) per bin

  // gw = corr(padded input, gout): gw(f,c) = sum_n conj(g(n,f)) * x(n,c).
  FreqMajor gw(bins, cfg.filters, cfg.channels);
  parallel_for_chunks(0, bins, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t b = lo; b < hi; ++b) {
      blas::cgemm_ctn(cfg.filters, cfg.channels, cfg.batch,
                      Complex{1.0F, 0.0F}, g.bin(b), cfg.filters, x.bin(b),
                      cfg.channels, Complex{0.0F, 0.0F}, gw.bin(b),
                      cfg.channels);
    }
  });

  parallel_for(0, cfg.filters * cfg.channels, [&](std::size_t job) {
    const std::size_t f = job / cfg.channels;
    const std::size_t c = job % cfg.channels;
    gather_inverse(gw, f, c, plan, {grad_filters.plane(f, c), k * k}, k, k,
                   0, 0);
  });
}

}  // namespace gpucnn::conv
