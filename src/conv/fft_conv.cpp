#include "conv/fft_conv.hpp"

#include <vector>

#include "blas/cgemm.hpp"
#include "core/thread_pool.hpp"
#include "core/workspace.hpp"
#include "fft/fft.hpp"
#include "fft/plan_cache.hpp"
#include "fft/rfft.hpp"

namespace gpucnn::conv {
namespace {

using blas::Complex;
using fft::Direction;
using fft::Plan;

using Spectrum = FftConv::Spectrum;

/// Bins a spectrum of transform size s stores in the given mode.
std::size_t bins_of(std::size_t s, Spectrum spectrum) {
  return spectrum == Spectrum::kHalf ? fft::half_spectrum_size(s) : s * s;
}

// Frequency-major spectrum store: bin-major, `rows * cols` complex values
// per bin, so each bin exposes a contiguous rows x cols matrix for the
// pointwise GEMM stage. In kHalf mode only the s*(s/2+1) Hermitian bins
// exist — products of Hermitian spectra stay Hermitian, so the whole
// pointwise pipeline runs on half the bins.
struct FreqMajor {
  FreqMajor(std::size_t bins, std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(bins * rows * cols) {}

  [[nodiscard]] std::span<Complex> bin(std::size_t b) {
    return {data_.data() + b * rows_ * cols_, rows_ * cols_};
  }
  [[nodiscard]] std::span<const Complex> bin(std::size_t b) const {
    return {data_.data() + b * rows_ * cols_, rows_ * cols_};
  }
  /// Element (row, col) of bin b.
  [[nodiscard]] Complex& at(std::size_t b, std::size_t row, std::size_t col) {
    return data_[(b * rows_ + row) * cols_ + col];
  }

  std::size_t rows_;
  std::size_t cols_;
  std::vector<Complex> data_;
};

// Pads `src` (src_h x src_w real, anchored at (pad, pad)) into an S x S
// real tile, runs the forward transform (R2C half-spectrum or full
// complex), and scatters bin j into dst.at(j, row, col).
void transform_scatter(const float* src, std::size_t src_h,
                       std::size_t src_w, std::size_t pad, const Plan& plan,
                       Spectrum spectrum, FreqMajor& dst, std::size_t row,
                       std::size_t col) {
  const std::size_t s = plan.size();
  ws::Scratch<float> padded(s * s, /*zero=*/true);
  for (std::size_t y = 0; y < src_h; ++y) {
    float* out_row = padded.data() + (y + pad) * s + pad;
    const float* in_row = src + y * src_w;
    for (std::size_t x = 0; x < src_w; ++x) out_row[x] = in_row[x];
  }
  if (spectrum == Spectrum::kHalf) {
    ws::Scratch<Complex> spec(fft::half_spectrum_size(s));
    fft::rfft2(padded.span(), spec.span(), plan);
    for (std::size_t j = 0; j < spec.size(); ++j) {
      dst.at(j, row, col) = spec.data()[j];
    }
  } else {
    ws::Scratch<Complex> buf(s * s);
    for (std::size_t j = 0; j < s * s; ++j) {
      buf.data()[j] = Complex(padded.data()[j], 0.0F);
    }
    fft::transform_2d(buf.span(), plan, plan, Direction::kForward);
    for (std::size_t j = 0; j < s * s; ++j) {
      dst.at(j, row, col) = buf.data()[j];
    }
  }
}

// Gathers one (row, col) series from `src` across bins, inverse-transforms
// it, and writes real parts of the (off_y, off_x)-anchored dst_h x dst_w
// window to `dst`.
void gather_inverse(const FreqMajor& src, std::size_t row, std::size_t col,
                    const Plan& plan, Spectrum spectrum, std::span<float> dst,
                    std::size_t dst_h, std::size_t dst_w, std::size_t off_y,
                    std::size_t off_x) {
  const std::size_t s = plan.size();
  const std::size_t bins = bins_of(s, spectrum);
  ws::Scratch<Complex> buf(bins);
  for (std::size_t j = 0; j < bins; ++j) {
    buf.data()[j] = src.data_[(j * src.rows_ + row) * src.cols_ + col];
  }
  if (spectrum == Spectrum::kHalf) {
    ws::Scratch<float> tile(s * s);
    fft::irfft2(buf.span(), tile.span(), plan);
    for (std::size_t y = 0; y < dst_h; ++y) {
      const float* in_row = tile.data() + (y + off_y) * s + off_x;
      float* out_row = dst.data() + y * dst_w;
      for (std::size_t x = 0; x < dst_w; ++x) out_row[x] = in_row[x];
    }
  } else {
    fft::transform_2d(buf.span(), plan, plan, Direction::kInverse);
    for (std::size_t y = 0; y < dst_h; ++y) {
      for (std::size_t x = 0; x < dst_w; ++x) {
        dst[y * dst_w + x] = buf.data()[(y + off_y) * s + (x + off_x)].real();
      }
    }
  }
}

// Transforms every (n, c) plane of a tensor into freq-major storage with
// bin matrices of shape (outer = tensor.n) x (inner = tensor.c). When
// `pad` is nonzero the real data is anchored at (pad, pad) inside the
// padded tile (used for padded inputs; filters and gradients use pad 0).
FreqMajor spectra_of(const Tensor& t, const Plan& plan, std::size_t pad,
                     Spectrum spectrum) {
  const auto& sh = t.shape();
  const std::size_t s = plan.size();
  FreqMajor out(bins_of(s, spectrum), sh.n, sh.c);
  parallel_for(0, sh.n * sh.c, [&](std::size_t job) {
    const std::size_t n = job / sh.c;
    const std::size_t c = job % sh.c;
    transform_scatter(t.plane(n, c), sh.h, sh.w, pad, plan, spectrum, out,
                      n, c);
  });
  return out;
}

}  // namespace

std::size_t FftConv::transform_size(const ConvConfig& cfg) {
  // next_pow2(i + 2p) suffices for all three passes: the largest index
  // any circular product touches is (o-1) + (k-1) = i + 2p - 1 for the
  // correlations, and the backward-data convolution's support is
  // o + k - 1 = i + 2p. This is the "extend the filter bank to the size
  // of the input" padding the paper attributes to fbfft.
  return fft::next_pow2(cfg.input + 2 * cfg.pad);
}

std::size_t FftConv::bins_for(std::size_t s) const {
  return bins_of(s, spectrum_);
}

void FftConv::forward(const ConvConfig& cfg, const Tensor& input,
                      const Tensor& filters, Tensor& output) const {
  validate_forward(cfg, input, filters, output);
  check(supports(cfg), "FFT convolution requires stride 1");
  const std::size_t s = transform_size(cfg);
  const auto plan = fft::cached_plan(s);
  const std::size_t bins = bins_for(s);
  const std::size_t o = cfg.output();

  const FreqMajor x = spectra_of(input, *plan, cfg.pad, spectrum_);
  const FreqMajor w = spectra_of(filters, *plan, 0, spectrum_);

  // Pointwise stage: out(n,f) = sum_c x(n,c) * conj(w(f,c)) per bin.
  FreqMajor y(bins, cfg.batch, cfg.filters);
  parallel_for_chunks(0, bins, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t b = lo; b < hi; ++b) {
      blas::cgemm_nt_conj(cfg.batch, cfg.filters, cfg.channels,
                          Complex{1.0F, 0.0F}, x.bin(b), cfg.channels,
                          w.bin(b), cfg.channels, Complex{0.0F, 0.0F},
                          y.bin(b), cfg.filters);
    }
  });

  parallel_for(0, cfg.batch * cfg.filters, [&](std::size_t job) {
    const std::size_t n = job / cfg.filters;
    const std::size_t f = job % cfg.filters;
    gather_inverse(y, n, f, *plan, spectrum_, {output.plane(n, f), o * o},
                   o, o, 0, 0);
  });
}

void FftConv::backward_data(const ConvConfig& cfg, const Tensor& grad_output,
                            const Tensor& filters,
                            Tensor& grad_input) const {
  check(grad_output.shape() == cfg.output_shape(),
        "grad_output shape mismatch");
  check(filters.shape() == cfg.filter_shape(), "filter shape mismatch");
  check(grad_input.shape() == cfg.input_shape(), "grad_input shape mismatch");
  check(supports(cfg), "FFT convolution requires stride 1");
  const std::size_t s = transform_size(cfg);
  const auto plan = fft::cached_plan(s);
  const std::size_t bins = bins_for(s);
  const std::size_t in = cfg.input;

  const FreqMajor g = spectra_of(grad_output, *plan, 0, spectrum_);
  const FreqMajor w = spectra_of(filters, *plan, 0, spectrum_);

  // gin_padded = gout (*) w, a true convolution: plain spectral product.
  FreqMajor gi(bins, cfg.batch, cfg.channels);
  parallel_for_chunks(0, bins, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t b = lo; b < hi; ++b) {
      blas::cgemm_nn(cfg.batch, cfg.channels, cfg.filters,
                     Complex{1.0F, 0.0F}, g.bin(b), cfg.filters, w.bin(b),
                     cfg.channels, Complex{0.0F, 0.0F}, gi.bin(b),
                     cfg.channels);
    }
  });

  // The padded gradient lives on [0, i + 2p); the real input window is
  // anchored at (pad, pad).
  parallel_for(0, cfg.batch * cfg.channels, [&](std::size_t job) {
    const std::size_t n = job / cfg.channels;
    const std::size_t c = job % cfg.channels;
    gather_inverse(gi, n, c, *plan, spectrum_,
                   {grad_input.plane(n, c), in * in}, in, in, cfg.pad,
                   cfg.pad);
  });
}

void FftConv::backward_filter(const ConvConfig& cfg, const Tensor& input,
                              const Tensor& grad_output,
                              Tensor& grad_filters) const {
  check(input.shape() == cfg.input_shape(), "input shape mismatch");
  check(grad_output.shape() == cfg.output_shape(),
        "grad_output shape mismatch");
  check(grad_filters.shape() == cfg.filter_shape(),
        "grad_filters shape mismatch");
  check(supports(cfg), "FFT convolution requires stride 1");
  const std::size_t s = transform_size(cfg);
  const auto plan = fft::cached_plan(s);
  const std::size_t bins = bins_for(s);
  const std::size_t k = cfg.kernel;

  const FreqMajor x = spectra_of(input, *plan, cfg.pad, spectrum_);
  const FreqMajor g = spectra_of(grad_output, *plan, 0, spectrum_);

  // gw = corr(padded input, gout): gw(f,c) = sum_n conj(g(n,f)) * x(n,c).
  FreqMajor gw(bins, cfg.filters, cfg.channels);
  parallel_for_chunks(0, bins, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t b = lo; b < hi; ++b) {
      blas::cgemm_ctn(cfg.filters, cfg.channels, cfg.batch,
                      Complex{1.0F, 0.0F}, g.bin(b), cfg.filters, x.bin(b),
                      cfg.channels, Complex{0.0F, 0.0F}, gw.bin(b),
                      cfg.channels);
    }
  });

  parallel_for(0, cfg.filters * cfg.channels, [&](std::size_t job) {
    const std::size_t f = job / cfg.channels;
    const std::size_t c = job % cfg.channels;
    gather_inverse(gw, f, c, *plan, spectrum_,
                   {grad_filters.plane(f, c), k * k}, k, k, 0, 0);
  });
}

}  // namespace gpucnn::conv
