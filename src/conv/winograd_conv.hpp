// Winograd convolution F(2x2, 3x3) — the fourth convolution strategy,
// which post-dates the paper (Lavin & Gray, 2015) and became cuDNN v5's
// answer to the small-kernel regime where the paper finds FFT
// convolution losing to unrolling (Fig. 3(d), k < 7).
//
// The minimal-filtering algorithm computes each 2x2 output tile from a
// 4x4 input tile with 16 multiplies instead of 36: per-tile transforms
//   V = B^T d B,   U = G g G^T,   Y = A^T (U .* V) A
// with the standard F(2,3) matrices. Only 3x3 kernels at stride 1 (pad
// <= 2) are supported; backward-data reuses the forward kernel on the
// rotated filters, backward-filter delegates to the unrolling engine
// (mirroring cuDNN v5, whose Winograd path was forward/data only).
#pragma once

#include "conv/conv_engine.hpp"
#include "conv/gemm_conv.hpp"

namespace gpucnn::conv {

class WinogradConv final : public ConvEngine {
 public:
  [[nodiscard]] Strategy strategy() const override {
    return Strategy::kWinograd;
  }
  [[nodiscard]] std::string_view name() const override { return "winograd"; }
  [[nodiscard]] bool supports(const ConvConfig& cfg) const override {
    return cfg.kernel == 3 && cfg.stride == 1 && cfg.pad <= 2 &&
           cfg.groups == 1;
  }

  void forward(const ConvConfig& cfg, const Tensor& input,
               const Tensor& filters, Tensor& output) const override;
  void backward_data(const ConvConfig& cfg, const Tensor& grad_output,
                     const Tensor& filters, Tensor& grad_input) const override;
  void backward_filter(const ConvConfig& cfg, const Tensor& input,
                       const Tensor& grad_output,
                       Tensor& grad_filters) const override;

  /// Multiplies per output element: 16/36 of direct convolution's.
  [[nodiscard]] static double arithmetic_reduction() { return 16.0 / 36.0; }

 private:
  GemmConv fallback_;  ///< backward-filter path
};

}  // namespace gpucnn::conv
