// Winograd convolution — the fourth convolution strategy, which
// post-dates the paper (Lavin & Gray, 2015) and became cuDNN v5's answer
// to the small-kernel regime where the paper finds FFT convolution
// losing to unrolling (Fig. 3(d), k < 7).
//
// The minimal-filtering algorithm computes each m x m output tile from
// an alpha x alpha input tile (alpha = m + 2) via per-tile transforms
//   V = B^T d B,   U = G g G^T,   Y = A^T (U .* V) A
// Two tile sizes are provided: F(2x2,3x3) (16 multiplies instead of 36
// per tile) and F(4x4,3x3) (36 instead of 144). Rather than the naive
// per-tile element-wise accumulation, the engine uses the scattered-GEMM
// formulation: transforms scatter every tile into alpha^2 SoA planes so
// the multiply stage becomes one (F x C) x (C x P) sgemm per tile
// position over P = batch * tiles^2 patches, batched over a P-block to
// bound workspace. The transforms are AVX2-vectorized 8 tiles at a time
// (runtime-dispatched, with a portable scalar path), and the inverse
// transform's write-back fuses the bias+ReLU epilogue.
//
// Only 3x3 kernels at stride 1 (pad <= 2, ungrouped) are supported;
// backward-data reuses the forward kernel on the rotated filters, and
// backward-filter uses the transpose formulation (dU_t = dM_t V_t^T,
// dg = G^T dU G) — no silent fallback to another engine. Any residual
// fallback (e.g. a prepack without Winograd panels) increments the
// conv.winograd.fallbacks counter.
#pragma once

#include <vector>

#include "conv/conv_engine.hpp"

namespace gpucnn::conv {

/// Output-tile size of the minimal-filtering algorithm.
enum class WinogradTile {
  kF2,  ///< F(2x2,3x3): 4x4 tiles, 16 tile positions, 2.25x fewer multiplies
  kF4,  ///< F(4x4,3x3): 6x6 tiles, 36 tile positions, 4x fewer multiplies
};

/// Tile positions (alpha^2) of a Winograd tile size — the number of
/// scattered GEMMs and of prepacked filter panels.
[[nodiscard]] constexpr std::size_t winograd_positions(WinogradTile tile) {
  return tile == WinogradTile::kF2 ? 16 : 36;
}

class WinogradConv final : public ConvEngine {
 public:
  explicit WinogradConv(WinogradTile tile = WinogradTile::kF2)
      : tile_(tile) {}

  [[nodiscard]] Strategy strategy() const override {
    return Strategy::kWinograd;
  }
  [[nodiscard]] std::string_view name() const override {
    return tile_ == WinogradTile::kF2 ? "winograd" : "winograd-f4";
  }
  [[nodiscard]] bool supports(const ConvConfig& cfg) const override {
    return cfg.kernel == 3 && cfg.stride == 1 && cfg.pad <= 2 &&
           cfg.groups == 1;
  }
  [[nodiscard]] WinogradTile tile() const { return tile_; }

  void forward(const ConvConfig& cfg, const Tensor& input,
               const Tensor& filters, Tensor& output) const override;
  [[nodiscard]] bool forward_fused(const ConvConfig& cfg, const Tensor& input,
                                   const Tensor& filters,
                                   std::span<const float> bias, bool relu,
                                   Tensor& output) const override;
  [[nodiscard]] bool supports_prepack() const override { return true; }
  [[nodiscard]] bool forward_prepacked(const ConvConfig& cfg,
                                       const Tensor& input,
                                       const PackedFilters& packed,
                                       const Tensor& filters,
                                       std::span<const float> bias, bool relu,
                                       Tensor& output) const override;
  void backward_data(const ConvConfig& cfg, const Tensor& grad_output,
                     const Tensor& filters, Tensor& grad_input) const override;
  void backward_filter(const ConvConfig& cfg, const Tensor& input,
                       const Tensor& grad_output,
                       Tensor& grad_filters) const override;

  /// Multiplies per output element relative to direct convolution, for
  /// the classic F(2x2,3x3) tile: 16/36.
  [[nodiscard]] static double arithmetic_reduction() { return 16.0 / 36.0; }

 private:
  WinogradTile tile_;
};

/// Builds the pre-transformed filter panels for one tile size: `backing`
/// receives U laid out [alpha^2][F][C] and `panels[t]` packs the F x C
/// plane of tile position t as a GEMM-A operand. `backing` must stay
/// alive (and un-reallocated) for the panels' lifetime — PackedFilters
/// owns both.
void prepack_winograd_filters(const ConvConfig& cfg, const Tensor& filters,
                              WinogradTile tile, std::vector<float>& backing,
                              std::vector<blas::PackedMatrix>& panels);

namespace wino_detail {
// Scalar reference transforms over a single tile, exposed for the
// round-trip identity tests. Layouts are row-major and contiguous:
//   transform_data    d[alpha^2]  -> v[alpha^2]   (V = B^T d B)
//   transform_filter  g[9]        -> u[alpha^2]   (U = G g G^T)
//   transform_output  m[alpha^2]  -> y[m^2]       (Y = A^T m A)
void transform_data(WinogradTile tile, const float* d, float* v);
void transform_filter(WinogradTile tile, const float* g, float* u);
void transform_output(WinogradTile tile, const float* m, float* y);
}  // namespace wino_detail

}  // namespace gpucnn::conv
