#include "tune/autotuner.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "analysis/recommend.hpp"
#include "conv/depthwise_conv.hpp"
#include "conv/direct_conv.hpp"
#include "conv/fft_conv.hpp"
#include "conv/gemm_conv.hpp"
#include "conv/implicit_gemm_conv.hpp"
#include "conv/quantized_conv.hpp"
#include "conv/tiled_fft_conv.hpp"
#include "conv/winograd_conv.hpp"
#include "core/cpu_features.hpp"
#include "core/rng.hpp"
#include "core/tensor.hpp"
#include "core/thread_pool.hpp"
#include "core/timer.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace gpucnn::tune {
namespace {

// Version 2: the key grew a dtype word and the file header an "engines"
// field naming the engine set the writer shipped. Version-1 caches
// (pre-int8) are rejected wholesale on load — their decisions were made
// without the int8 candidates and would pin stale fp32-only picks.
constexpr int kCacheVersion = 2;
/// Prune a candidate whose single warm-up run is already this many times
/// slower than the best engine seen so far for the key.
constexpr double kPruneFactor = 2.5;

obs::Counter& hits_counter() {
  static obs::Counter& c = obs::metrics().counter("tune.hits");
  return c;
}
obs::Counter& misses_counter() {
  static obs::Counter& c = obs::metrics().counter("tune.misses");
  return c;
}
obs::Counter& trials_counter() {
  static obs::Counter& c = obs::metrics().counter("tune.trials");
  return c;
}
obs::Gauge& ms_spent_gauge() {
  static obs::Gauge& g = obs::metrics().gauge("tune.ms_spent");
  return g;
}

/// The fp32 candidate pool: every distinct exact engine, in a fixed base
/// order. Index 1 (unrolling) is the static default every ConvLayer
/// starts with.
std::span<const conv::ConvEngine* const> candidates() {
  static const conv::DirectConv direct;
  static const conv::GemmConv gemm;
  static const conv::ImplicitGemmConv implicit;
  static const conv::FftConv fft;              // half-spectrum
  static const conv::TiledFftConv fft_tiled;
  static const conv::WinogradConv winograd;
  static const conv::DepthwiseConv depthwise;
  static const conv::WinogradConv winograd_f4(conv::WinogradTile::kF4);
  static const conv::ConvEngine* const all[] = {
      &direct,    &gemm,      &implicit,   &fft,
      &fft_tiled, &winograd,  &depthwise,  &winograd_f4};
  return all;
}

/// The int8 pool, offered *in addition* to the fp32 pool, and only to
/// Dtype::kInt8 callers on the forward pass (the engines are
/// inference-only and lossy).
std::span<const conv::ConvEngine* const> int8_candidates() {
  static const conv::QuantizedGemmConv gemm_int8;
  static const conv::QuantizedImplicitGemmConv implicit_int8;
  static const conv::ConvEngine* const all[] = {&gemm_int8,
                                                &implicit_int8};
  return all;
}

constexpr std::size_t kDefaultIndex = 1;  // GemmConv ("unrolling")

/// Combined indexing: [0, candidates().size()) are the fp32 engines,
/// the int8 engines follow.
const conv::ConvEngine* engine_at(std::size_t idx) {
  const auto fp32 = candidates();
  return idx < fp32.size() ? fp32[idx]
                           : int8_candidates()[idx - fp32.size()];
}

bool int8_pool_eligible(Pass pass, Dtype dtype) {
  return dtype == Dtype::kInt8 && pass == Pass::kForward;
}

/// Comma-joined names of every engine this binary ships, in pool order —
/// the cache header field that invalidates caches written by binaries
/// with a different engine set.
std::string engine_set_string() {
  std::string out;
  for (const auto* e : candidates()) {
    if (!out.empty()) out += ',';
    out += std::string(e->name());
  }
  for (const auto* e : int8_candidates()) {
    out += ',';
    out += std::string(e->name());
  }
  return out;
}

/// Search order for `cfg`: candidates sorted by the recommend model's
/// simulated runtimes (fastest strategy first), so on real hardware the
/// likely winner is measured first and slow candidates hit the prune
/// check. Engines the model cannot rank (Winograd post-dates the paper)
/// append in base order.
std::vector<std::size_t> prior_order(const ConvConfig& cfg, Pass pass,
                                     Dtype dtype) {
  std::vector<std::size_t> order;
  order.reserve(candidates().size() + int8_candidates().size());
  const auto push_unique = [&order](std::size_t idx) {
    if (std::find(order.begin(), order.end(), idx) == order.end()) {
      order.push_back(idx);
    }
  };

  // Int8 callers: the quantized engines lead the search — they are the
  // likely winners, so measuring them first arms the prune check before
  // the slower fp32 candidates run.
  if (int8_pool_eligible(pass, dtype)) {
    for (std::size_t i = 0; i < int8_candidates().size(); ++i) {
      push_unique(candidates().size() + i);
    }
  }

  // Depthwise-degenerate shapes: the specialised engine is the likely
  // winner (no im2col traffic, no wasted reduction), so it leads the
  // search; the recommend model below only knows the paper's strategies.
  if (cfg.groups == cfg.channels && cfg.groups > 1) push_unique(6);

  // Zoo-dominant 3x3/stride-1 shapes: the scattered-GEMM Winograd
  // engines win once the GEMMs are deep and wide enough to amortise the
  // transforms — measured ≥2x over im2col GEMM at C,F ≥ 64 on 28²+
  // feature maps. F(4x4,3x3) (4x multiply reduction) leads F(2x2,3x3).
  // The size gate keeps small shapes (LeNet, fuzzer degenerates) on the
  // unchanged prior.
  if (cfg.kernel == 3 && cfg.stride == 1 && cfg.groups == 1 &&
      cfg.pad <= 2 && cfg.channels >= 64 && cfg.filters >= 64 &&
      cfg.input >= 28) {
    push_unique(7);
    push_unique(5);
  }

  analysis::Recommendation rec;
  try {
    rec = analysis::recommend(cfg);
  } catch (const Error&) {
    // Model failure is not fatal: fall back to the base order.
  }
  std::vector<const analysis::LayerResult*> ranked;
  for (const auto& r : rec.results) {
    if (r.supported && !r.out_of_memory) ranked.push_back(&r);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto* a, const auto* b) {
              return a->runtime_ms < b->runtime_ms;
            });
  for (const auto* r : ranked) {
    switch (frameworks::framework(r->framework).strategy()) {
      case conv::Strategy::kUnrolling:
        push_unique(1);  // im2col GEMM, then its zero-workspace variant
        push_unique(2);
        break;
      case conv::Strategy::kDirect:
        push_unique(0);
        break;
      case conv::Strategy::kFft:
        push_unique(3);
        push_unique(4);
        break;
      case conv::Strategy::kWinograd:
        push_unique(5);
        push_unique(7);
        break;
    }
  }
  for (std::size_t i = 0; i < candidates().size(); ++i) push_unique(i);
  return order;
}

/// Scratch tensors for timing one (cfg, pass) key. Deterministic fill so
/// repeated measurements exercise identical data.
struct Workload {
  Tensor input, filters, output, grad_output, grad_input, grad_filters;

  std::unique_ptr<conv::PackedFilters> packed;

  explicit Workload(const ConvConfig& cfg) {
    Rng rng(0x7u);
    input.resize(cfg.input_shape());
    input.fill_uniform(rng, -1.0F, 1.0F);
    filters.resize(cfg.filter_shape());
    filters.fill_uniform(rng, -0.5F, 0.5F);
    output.resize(cfg.output_shape());
    grad_output.resize(cfg.output_shape());
    grad_output.fill_uniform(rng, -1.0F, 1.0F);
    grad_input.resize(cfg.input_shape());
    grad_filters.resize(cfg.filter_shape());
  }

  /// Builds the packed-filter cache when `engine` can consume it on the
  /// forward pass. Called outside every timed region: the timed runs
  /// then measure the pack-once/execute-many form the inference layers
  /// actually execute after freeze_for_inference(). The pack is
  /// engine-agnostic, so one build serves every candidate.
  void prepare(const conv::ConvEngine& engine, const ConvConfig& cfg,
               Pass pass) {
    if (pass == Pass::kForward && packed == nullptr &&
        engine.supports_prepack()) {
      packed = std::make_unique<conv::PackedFilters>(
          conv::prepack_filters(cfg, filters));
    }
  }

  void run(const conv::ConvEngine& engine, const ConvConfig& cfg,
           Pass pass) {
    switch (pass) {
      case Pass::kForward:
        if (packed != nullptr &&
            engine.forward_prepacked(cfg, input, *packed, filters, {},
                                     false, output)) {
          break;
        }
        engine.forward(cfg, input, filters, output);
        break;
      case Pass::kBackwardData:
        engine.backward_data(cfg, grad_output, filters, grad_input);
        break;
      case Pass::kBackwardFilter:
        engine.backward_filter(cfg, input, grad_output, grad_filters);
        break;
    }
  }
};

/// Times `engine` on the workload: one warm-up run (returned through
/// `warmup_ms`) then `trials` timed runs, reporting the minimum. Every
/// run counts as a trial and its wall time accumulates in `spent_ms`.
double time_engine(Workload& work, const conv::ConvEngine& engine,
                   const ConvConfig& cfg, Pass pass, int trials,
                   double& warmup_ms, double& spent_ms) {
  work.prepare(engine, cfg, pass);
  Timer timer;
  work.run(engine, cfg, pass);
  warmup_ms = timer.elapsed_ms();
  trials_counter().add(1);
  spent_ms += warmup_ms;

  double best = warmup_ms;
  for (int t = 0; t < trials; ++t) {
    timer.reset();
    work.run(engine, cfg, pass);
    const double ms = timer.elapsed_ms();
    trials_counter().add(1);
    spent_ms += ms;
    best = std::min(best, ms);
  }
  return best;
}

std::size_t pass_index(Pass pass) { return static_cast<std::size_t>(pass); }

std::optional<Pass> pass_from_name(std::string_view name) {
  if (name == "forward") return Pass::kForward;
  if (name == "backward-data") return Pass::kBackwardData;
  if (name == "backward-filter") return Pass::kBackwardFilter;
  return std::nullopt;
}

std::size_t dtype_index(Dtype dtype) {
  return static_cast<std::size_t>(dtype);
}

std::optional<Dtype> dtype_from_name(std::string_view name) {
  if (name == "fp32") return Dtype::kF32;
  if (name == "int8") return Dtype::kInt8;
  return std::nullopt;
}

const conv::ConvEngine* engine_from_name(std::string_view name) {
  for (const auto* e : candidates()) {
    if (e->name() == name) return e;
  }
  for (const auto* e : int8_candidates()) {
    if (e->name() == name) return e;
  }
  return nullptr;
}

bool is_int8_engine(const conv::ConvEngine* engine) {
  for (const auto* e : int8_candidates()) {
    if (e == engine) return true;
  }
  return false;
}

// --- minimal JSON parser (obs::Json is a writer-only document model) ---
// Accepts exactly the subset the cache writer emits: objects, arrays,
// strings with \"\\/bfnrt(u) escapes, numbers, true/false/null.

struct JsonParser {
  std::string_view text;
  std::size_t pos = 0;
  bool ok = true;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  }
  [[nodiscard]] char peek() {
    skip_ws();
    return pos < text.size() ? text[pos] : '\0';
  }
  bool consume(char c) {
    if (peek() != c) {
      ok = false;
      return false;
    }
    ++pos;
    return true;
  }
  bool consume_word(std::string_view word) {
    skip_ws();
    if (text.substr(pos, word.size()) != word) {
      ok = false;
      return false;
    }
    pos += word.size();
    return true;
  }

  obs::Json parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return obs::Json(parse_string());
      case 't': consume_word("true"); return obs::Json(true);
      case 'f': consume_word("false"); return obs::Json(false);
      case 'n': consume_word("null"); return {};
      default: return parse_number();
    }
  }

  std::string parse_string() {
    std::string out;
    if (!consume('"')) return out;
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\' && pos < text.size()) {
        const char esc = text[pos++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u':
            pos = std::min(pos + 4, text.size());  // non-ASCII: drop
            continue;
          default: c = esc; break;  // \" \\ \/
        }
      }
      out.push_back(c);
    }
    consume('"');
    return out;
  }

  obs::Json parse_number() {
    skip_ws();
    const char* begin = text.data() + pos;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) {
      ok = false;
      return {};
    }
    pos += static_cast<std::size_t>(end - begin);
    return obs::Json(v);
  }

  obs::Json parse_array() {
    obs::Json arr = obs::Json::array();
    consume('[');
    if (peek() == ']') {
      ++pos;
      return arr;
    }
    while (ok) {
      arr.push(parse_value());
      if (peek() == ',') {
        ++pos;
        continue;
      }
      consume(']');
      break;
    }
    return arr;
  }

  obs::Json parse_object() {
    obs::Json obj = obs::Json::object();
    consume('{');
    if (peek() == '}') {
      ++pos;
      return obj;
    }
    while (ok) {
      std::string key = parse_string();
      consume(':');
      obj.set(std::move(key), parse_value());
      if (peek() == ',') {
        ++pos;
        continue;
      }
      consume('}');
      break;
    }
    return obj;
  }
};

/// Parses `text`; returns nullopt on any syntax error.
std::optional<obs::Json> parse_json(std::string_view text) {
  JsonParser p{text};
  obs::Json v = p.parse_value();
  if (!p.ok) return std::nullopt;
  p.skip_ws();
  if (p.pos != text.size()) return std::nullopt;
  return v;
}

double number_or(const obs::Json& obj, std::string_view key, double fallback) {
  const obs::Json* v = obj.find(key);
  return v != nullptr && v->type() == obs::Json::Type::kNumber ? v->as_number()
                                                               : fallback;
}

std::string string_or(const obs::Json& obj, std::string_view key) {
  const obs::Json* v = obj.find(key);
  return v != nullptr && v->type() == obs::Json::Type::kString ? v->as_string()
                                                               : std::string{};
}

/// Thread count folded into the cache key: workers + the caller-runs
/// thread, the parallelism every engine actually sees.
std::size_t active_threads() { return global_pool().size() + 1; }

}  // namespace

std::string_view to_string(Pass pass) {
  switch (pass) {
    case Pass::kForward: return "forward";
    case Pass::kBackwardData: return "backward-data";
    case Pass::kBackwardFilter: return "backward-filter";
  }
  return "?";
}

std::string_view to_string(Mode mode) {
  switch (mode) {
    case Mode::kOff: return "off";
    case Mode::kHeuristic: return "heuristic";
    case Mode::kMeasure: return "measure";
  }
  return "?";
}

std::optional<Mode> parse_mode(std::string_view text) {
  if (text == "off") return Mode::kOff;
  if (text == "heuristic") return Mode::kHeuristic;
  if (text == "measure") return Mode::kMeasure;
  return std::nullopt;
}

std::string_view to_string(Dtype dtype) {
  switch (dtype) {
    case Dtype::kF32: return "fp32";
    case Dtype::kInt8: return "int8";
  }
  return "?";
}

Autotuner& Autotuner::instance() {
  static Autotuner tuner;
  return tuner;
}

Autotuner::Autotuner() : mode_(Mode::kHeuristic) {
  if (const char* env = std::getenv("GPUCNN_TUNE")) {
    if (const auto parsed = parse_mode(env)) mode_ = *parsed;
  }
  if (const char* env = std::getenv("GPUCNN_TUNE_CACHE")) {
    cache_path_ = env;
  }
}

Mode Autotuner::mode() const {
  std::lock_guard lock(mutex_);
  return mode_;
}

void Autotuner::set_mode(Mode mode) {
  std::lock_guard lock(mutex_);
  mode_ = mode;
}

Autotuner::Key Autotuner::make_key(const ConvConfig& cfg, Pass pass,
                                   Dtype dtype) {
  return {cfg.batch,  cfg.input, cfg.channels, cfg.filters,
          cfg.kernel, cfg.stride, cfg.pad,     cfg.groups,
          pass_index(pass), dtype_index(dtype)};
}

std::uint64_t Autotuner::key_hash(const ConvConfig& cfg, Pass pass,
                                  Dtype dtype) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a over the key words
  for (const std::size_t word : make_key(cfg, pass, dtype)) {
    auto v = static_cast<std::uint64_t>(word);
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xFFU;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

const conv::ConvEngine* Autotuner::choose(const ConvConfig& cfg, Pass pass,
                                          Dtype dtype) {
  std::lock_guard lock(mutex_);
  if (mode_ == Mode::kOff) return nullptr;
  return decide_locked(cfg, pass, dtype).engine;
}

Decision Autotuner::decide(const ConvConfig& cfg, Pass pass, Dtype dtype) {
  std::lock_guard lock(mutex_);
  return decide_locked(cfg, pass, dtype);
}

Decision Autotuner::decide_locked(const ConvConfig& cfg, Pass pass,
                                  Dtype dtype) {
  if (!cache_loaded_ && !cache_path_.empty()) {
    cache_loaded_ = true;  // one attempt per process, hit or miss
    // Re-entrancy is safe: load_cache locks nothing below this level.
    std::size_t kept = 0;
    std::ifstream in(cache_path_);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      kept = ingest_cache_text(buf.str());
    }
    (void)kept;
  }
  const Key key = make_key(cfg, pass, dtype);
  const auto it = memo_.find(key);
  if (it != memo_.end() &&
      (mode_ != Mode::kMeasure || it->second.measured)) {
    hits_counter().add(1);
    return it->second;
  }
  misses_counter().add(1);
  Decision d = mode_ == Mode::kMeasure ? measure_locked(cfg, pass, dtype)
                                       : heuristic_locked(cfg, pass, dtype);
  memo_[key] = d;
  if (d.measured) persist_locked();
  return d;
}

Decision Autotuner::heuristic_locked(const ConvConfig& cfg, Pass pass,
                                     Dtype dtype) {
  (void)pass;  // the model prior does not distinguish passes
  for (const std::size_t idx : prior_order(cfg, pass, dtype)) {
    const conv::ConvEngine* engine = engine_at(idx);
    if (engine->supports(cfg)) {
      return {.engine = engine,
              .engine_name = engine->name(),
              .best_ms = 0.0,
              .baseline_ms = 0.0,
              .measured = false};
    }
  }
  const conv::ConvEngine* fallback = candidates()[kDefaultIndex];
  return {.engine = fallback, .engine_name = fallback->name()};
}

Decision Autotuner::measure_locked(const ConvConfig& cfg, Pass pass,
                                   Dtype dtype) {
  Workload work(cfg);
  const conv::ConvEngine* best_engine = nullptr;
  double best_ms = 0.0;
  double baseline_ms = 0.0;

  for (const std::size_t idx : prior_order(cfg, pass, dtype)) {
    const conv::ConvEngine* engine = engine_at(idx);
    if (!engine->supports(cfg)) continue;
    work.prepare(*engine, cfg, pass);
    double warmup = 0.0;
    Timer probe;
    work.run(*engine, cfg, pass);
    warmup = probe.elapsed_ms();
    trials_counter().add(1);
    ms_spent_ += warmup;
    double ms = warmup;
    // A warm-up already far behind the leader cannot win: skip its
    // timed repetitions (the prior ordering makes this prune common).
    const bool pruned =
        best_engine != nullptr && warmup > kPruneFactor * best_ms;
    if (!pruned) {
      for (int t = 0; t < trials_; ++t) {
        Timer timer;
        work.run(*engine, cfg, pass);
        const double rep = timer.elapsed_ms();
        trials_counter().add(1);
        ms_spent_ += rep;
        ms = std::min(ms, rep);
      }
    }
    if (idx == kDefaultIndex) baseline_ms = ms;
    if (best_engine == nullptr || ms < best_ms) {
      best_engine = engine;
      best_ms = ms;
    }
  }
  ms_spent_gauge().set(ms_spent_);
  if (best_engine == nullptr) best_engine = candidates()[kDefaultIndex];
  return {.engine = best_engine,
          .engine_name = best_engine->name(),
          .best_ms = best_ms,
          .baseline_ms = baseline_ms,
          .measured = true};
}

std::vector<EngineTiming> Autotuner::measure_all(const ConvConfig& cfg,
                                                 Pass pass, Dtype dtype) {
  std::lock_guard lock(mutex_);
  Workload work(cfg);
  const std::size_t pool_size =
      candidates().size() +
      (int8_pool_eligible(pass, dtype) ? int8_candidates().size() : 0);
  std::vector<EngineTiming> timings;
  timings.reserve(pool_size);
  for (std::size_t idx = 0; idx < pool_size; ++idx) {
    const conv::ConvEngine* engine = engine_at(idx);
    EngineTiming t{.engine_name = engine->name()};
    if (engine->supports(cfg)) {
      t.eligible = true;
      double warmup = 0.0;
      t.ms = time_engine(work, *engine, cfg, pass, trials_, warmup,
                         ms_spent_);
    }
    timings.push_back(t);
  }
  ms_spent_gauge().set(ms_spent_);
  return timings;
}

bool Autotuner::save_cache(const std::string& path) {
  std::lock_guard lock(mutex_);
  cache_path_ = path;
  cache_loaded_ = true;  // what we are about to write is the cache
  std::ofstream out(path);
  if (!out) return false;
  out << cache_json_locked().dump_string(2) << '\n';
  return out.good();
}

obs::Json Autotuner::cache_json_locked() const {
  obs::Json root = obs::Json::object();
  root.set("tune_cache_version", obs::Json(kCacheVersion));
  root.set("simd", obs::Json(simd::name(simd::active())));
  root.set("threads", obs::Json(active_threads()));
  root.set("engines", obs::Json(engine_set_string()));
  obs::Json entries = obs::Json::array();
  for (const auto& [key, decision] : memo_) {
    if (!decision.measured) continue;  // heuristic picks are free to redo
    const ConvConfig cfg{key[0], key[1], key[2], key[3],
                         key[4], key[5], key[6], key[7]};
    const auto pass = static_cast<Pass>(key[8]);
    const auto dtype = static_cast<Dtype>(key[9]);
    obs::Json entry = obs::Json::object();
    entry.set("batch", obs::Json(cfg.batch));
    entry.set("input", obs::Json(cfg.input));
    entry.set("channels", obs::Json(cfg.channels));
    entry.set("filters", obs::Json(cfg.filters));
    entry.set("kernel", obs::Json(cfg.kernel));
    entry.set("stride", obs::Json(cfg.stride));
    entry.set("pad", obs::Json(cfg.pad));
    entry.set("groups", obs::Json(cfg.groups));
    entry.set("pass", obs::Json(std::string(to_string(pass))));
    entry.set("dtype", obs::Json(std::string(to_string(dtype))));
    // Hex string: a JSON double cannot carry 64 hash bits exactly.
    char hex[19];
    std::snprintf(
        hex, sizeof hex, "0x%016llx",
        static_cast<unsigned long long>(key_hash(cfg, pass, dtype)));
    entry.set("hash", obs::Json(std::string(hex)));
    entry.set("engine", obs::Json(std::string(decision.engine_name)));
    entry.set("best_ms", obs::Json(decision.best_ms));
    entry.set("baseline_ms", obs::Json(decision.baseline_ms));
    entries.push(std::move(entry));
  }
  root.set("entries", std::move(entries));
  return root;
}

std::size_t Autotuner::load_cache(const std::string& path) {
  std::lock_guard lock(mutex_);
  cache_path_ = path;
  cache_loaded_ = true;
  std::ifstream in(path);
  if (!in) return 0;
  std::ostringstream buf;
  buf << in.rdbuf();
  return ingest_cache_text(buf.str());
}

std::size_t Autotuner::ingest_cache_text(const std::string& text) {
  const auto parsed = parse_json(text);
  if (!parsed) return 0;
  const obs::Json& root = *parsed;
  // Whole-file key: version, SIMD level and thread count must all match
  // this process, otherwise every timing in the file is suspect.
  if (static_cast<int>(number_or(root, "tune_cache_version", -1)) !=
      kCacheVersion) {
    return 0;
  }
  if (string_or(root, "simd") != simd::name(simd::active())) return 0;
  if (static_cast<std::size_t>(number_or(root, "threads", 0)) !=
      active_threads()) {
    return 0;
  }
  // The engine set must match the running binary: a cache written by a
  // binary with fewer (or different) engines never compared against the
  // ones this binary ships, so its winners are not trustworthy.
  if (string_or(root, "engines") != engine_set_string()) return 0;
  const obs::Json* entries = root.find("entries");
  if (entries == nullptr || entries->type() != obs::Json::Type::kArray) {
    return 0;
  }
  std::size_t kept = 0;
  for (const obs::Json& entry : entries->items()) {
    if (entry.type() != obs::Json::Type::kObject) continue;
    const ConvConfig cfg{
        static_cast<std::size_t>(number_or(entry, "batch", 0)),
        static_cast<std::size_t>(number_or(entry, "input", 0)),
        static_cast<std::size_t>(number_or(entry, "channels", 0)),
        static_cast<std::size_t>(number_or(entry, "filters", 0)),
        static_cast<std::size_t>(number_or(entry, "kernel", 0)),
        static_cast<std::size_t>(number_or(entry, "stride", 0)),
        static_cast<std::size_t>(number_or(entry, "pad", 0)),
        static_cast<std::size_t>(number_or(entry, "groups", 0))};
    const auto pass = pass_from_name(string_or(entry, "pass"));
    if (!pass) continue;
    const auto dtype = dtype_from_name(string_or(entry, "dtype"));
    if (!dtype) continue;
    // Per-entry key check: recompute the hash from the stored fields; a
    // mismatch means the entry was edited or the key schema changed.
    char hex[19];
    std::snprintf(
        hex, sizeof hex, "0x%016llx",
        static_cast<unsigned long long>(key_hash(cfg, *pass, *dtype)));
    if (string_or(entry, "hash") != hex) continue;
    const conv::ConvEngine* engine =
        engine_from_name(string_or(entry, "engine"));
    if (engine == nullptr || !engine->supports(cfg)) continue;
    // An int8 engine can only ever have won in the int8 forward pool.
    if (is_int8_engine(engine) && !int8_pool_eligible(*pass, *dtype)) {
      continue;
    }
    memo_[make_key(cfg, *pass, *dtype)] =
        Decision{.engine = engine,
                 .engine_name = engine->name(),
                 .best_ms = number_or(entry, "best_ms", 0.0),
                 .baseline_ms = number_or(entry, "baseline_ms", 0.0),
                 .measured = true};
    ++kept;
  }
  return kept;
}

void Autotuner::persist_locked() {
  if (cache_path_.empty()) return;
  std::ofstream out(cache_path_);
  if (!out) return;
  out << cache_json_locked().dump_string(2) << '\n';
}

std::string Autotuner::set_cache_path(std::string path) {
  std::lock_guard lock(mutex_);
  std::string previous = std::move(cache_path_);
  cache_path_ = std::move(path);
  cache_loaded_ = cache_path_.empty();  // a new path loads on first use
  return previous;
}

std::vector<Autotuner::Entry> Autotuner::entries() {
  std::lock_guard lock(mutex_);
  std::vector<Entry> out;
  out.reserve(memo_.size());
  for (const auto& [key, decision] : memo_) {
    out.push_back({ConvConfig{key[0], key[1], key[2], key[3], key[4],
                              key[5], key[6], key[7]},
                   static_cast<Pass>(key[8]), static_cast<Dtype>(key[9]),
                   decision});
  }
  return out;
}

void Autotuner::clear() {
  std::lock_guard lock(mutex_);
  memo_.clear();
}

std::size_t Autotuner::size() {
  std::lock_guard lock(mutex_);
  return memo_.size();
}

int Autotuner::set_trials_for_testing(int trials) {
  std::lock_guard lock(mutex_);
  const int previous = trials_;
  trials_ = std::max(trials, 0);
  return previous;
}

const conv::ConvEngine& default_engine() {
  return *candidates()[kDefaultIndex];
}

}  // namespace gpucnn::tune
