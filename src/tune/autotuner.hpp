// Empirical convolution engine selection — the paper's central finding
// ("no single implementation wins everywhere", Figs. 3–4) turned into an
// executor policy. For a (ConvConfig, pass) key the autotuner times every
// eligible real engine, seeded in search order by the analysis/recommend
// model prior so bad candidates are pruned after one warm-up run, picks
// the fastest and memoizes the decision process-wide. Decisions persist
// in a versioned on-disk JSON cache keyed by config hash + dtype +
// active SIMD level + thread count + the engine set the binary ships
// (so a cache written before an engine existed — e.g. any pre-int8
// cache — is invalidated instead of silently pinning stale decisions);
// entries whose key no longer matches the running process are discarded
// on load.
//
// Modes (GPUCNN_TUNE environment override, lowest priority; set_mode
// wins):
//   off        no tuning — layers keep their statically chosen engine;
//   heuristic  pick the model prior's top eligible engine, no timing;
//   measure    time candidates on first use, warm decisions are free.
//
// Metrics: tune.hits / tune.misses (memo lookups), tune.trials (timed
// engine executions, warm-ups included), tune.ms_spent (gauge, total
// wall time spent measuring).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "conv/conv_engine.hpp"
#include "core/shape.hpp"
#include "obs/json.hpp"

namespace gpucnn::tune {

/// The three training passes tuned independently (the paper's per-pass
/// runtime splits show the winner flips between them).
enum class Pass { kForward, kBackwardData, kBackwardFilter };

enum class Mode { kOff, kHeuristic, kMeasure };

/// Numeric flavour a caller wants tuned. kF32 callers see only the six
/// exact fp32 engines (quantized engines would silently change results);
/// kInt8 callers — quantized conv layers, which have already accepted
/// quantization error — additionally get the int8 engines in the
/// forward-pass candidate pool, so a measured decision picks int8 only
/// when it is actually faster than the best fp32 engine.
enum class Dtype { kF32, kInt8 };

[[nodiscard]] std::string_view to_string(Pass pass);
[[nodiscard]] std::string_view to_string(Mode mode);
[[nodiscard]] std::string_view to_string(Dtype dtype);
/// Parses "off" / "heuristic" / "measure"; nullopt otherwise.
[[nodiscard]] std::optional<Mode> parse_mode(std::string_view text);

/// One resolved (config, pass) choice.
struct Decision {
  const conv::ConvEngine* engine = nullptr;
  std::string_view engine_name;
  double best_ms = 0.0;      ///< winner's measured time (0 if unmeasured)
  double baseline_ms = 0.0;  ///< static default's time (0 if unmeasured)
  bool measured = false;
};

/// One engine's timing from a full measurement sweep.
struct EngineTiming {
  std::string_view engine_name;
  bool eligible = false;
  double ms = 0.0;  ///< best-of-trials wall time; 0 when ineligible
};

/// Process-wide tuner. Thread-safe; decisions are memoized under one
/// mutex, so a concurrent first use of a key measures exactly once.
class Autotuner {
 public:
  static Autotuner& instance();

  [[nodiscard]] Mode mode() const;
  void set_mode(Mode mode);

  /// The engine (cfg, pass) should run with under the current mode, or
  /// nullptr in kOff mode (callers keep their static engine).
  [[nodiscard]] const conv::ConvEngine* choose(const ConvConfig& cfg,
                                               Pass pass,
                                               Dtype dtype = Dtype::kF32);

  /// The memoized decision for (cfg, pass, dtype), measuring candidates
  /// on a miss when the mode is kMeasure (kOff / kHeuristic never time).
  Decision decide(const ConvConfig& cfg, Pass pass,
                  Dtype dtype = Dtype::kF32);

  /// Times every engine in the (pass, dtype) candidate pool on cfg — no
  /// memo, no pruning. The engine_advisor --measure comparison and
  /// tests use this.
  [[nodiscard]] std::vector<EngineTiming> measure_all(
      const ConvConfig& cfg, Pass pass, Dtype dtype = Dtype::kF32);

  /// Writes every measured decision to `path` (versioned JSON, keyed by
  /// config hash + SIMD level + thread count). Returns false on I/O
  /// failure.
  bool save_cache(const std::string& path);
  /// Loads `path`, keeping only entries whose version, SIMD level,
  /// thread count and per-entry config hash all match this process.
  /// Returns the number of entries kept.
  std::size_t load_cache(const std::string& path);

  /// Points the persistent cache at `path` ("" disables persistence);
  /// returns the previous path. New measured decisions write through.
  std::string set_cache_path(std::string path);

  /// One memoized decision with its reconstructed key, for reporting.
  struct Entry {
    ConvConfig config;
    Pass pass{};
    Dtype dtype{};
    Decision decision;
  };
  /// Snapshot of every memoized decision, in key order (examples print
  /// this as the "which engine won where" table).
  [[nodiscard]] std::vector<Entry> entries();

  /// Drops all memoized decisions (test hook).
  void clear();
  [[nodiscard]] std::size_t size();

  /// Trial repetitions per candidate after the warm-up run (default 2;
  /// tests and the fuzz round-trip use 1 to stay cheap). Returns the
  /// previous value.
  int set_trials_for_testing(int trials);

  /// FNV-1a hash of the config fields + pass + dtype, the cache entry
  /// key.
  [[nodiscard]] static std::uint64_t key_hash(const ConvConfig& cfg,
                                              Pass pass,
                                              Dtype dtype = Dtype::kF32);

 private:
  Autotuner();

  using Key = std::array<std::size_t, 10>;  // 8 config fields+pass+dtype
  static Key make_key(const ConvConfig& cfg, Pass pass, Dtype dtype);

  Decision decide_locked(const ConvConfig& cfg, Pass pass, Dtype dtype);
  Decision measure_locked(const ConvConfig& cfg, Pass pass, Dtype dtype);
  Decision heuristic_locked(const ConvConfig& cfg, Pass pass, Dtype dtype);
  [[nodiscard]] obs::Json cache_json_locked() const;
  std::size_t ingest_cache_text(const std::string& text);
  void persist_locked();

  mutable std::mutex mutex_;
  Mode mode_;
  int trials_ = 2;
  std::map<Key, Decision> memo_;
  std::string cache_path_;  ///< from GPUCNN_TUNE_CACHE; empty = no disk
  bool cache_loaded_ = false;
  double ms_spent_ = 0.0;
};

/// The static-default engine an untuned layer would use (im2col + GEMM),
/// the baseline the acceptance comparisons are made against.
[[nodiscard]] const conv::ConvEngine& default_engine();

}  // namespace gpucnn::tune
