#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace gpucnn::obs {

namespace {

std::size_t bucket_index(double value) {
  if (!(value > 0.0)) return 0;
  const int exp =
      static_cast<int>(std::ceil(std::log2(value))) - Histogram::kMinExponent;
  return static_cast<std::size_t>(
      std::clamp(exp, 0, static_cast<int>(Histogram::kBuckets) - 1));
}

}  // namespace

void Histogram::record(double value) {
  const std::scoped_lock lock(mutex_);
  ++state_.count;
  state_.sum += value;
  state_.min = std::min(state_.min, value);
  state_.max = std::max(state_.max, value);
  ++state_.buckets[bucket_index(value)];
}

Histogram::Snapshot Histogram::snapshot() const {
  const std::scoped_lock lock(mutex_);
  return state_;
}

void Histogram::reset() {
  const std::scoped_lock lock(mutex_);
  state_ = Snapshot{};
}

double Histogram::bucket_upper_bound(std::size_t i) {
  if (i + 1 >= kBuckets) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, kMinExponent + static_cast<int>(i));
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

Json MetricsRegistry::snapshot() const {
  const std::scoped_lock lock(mutex_);
  Json counters = Json::object();
  for (const auto& [name, c] : counters_) {
    counters.set(name, static_cast<double>(c->value()));
  }
  Json gauges = Json::object();
  for (const auto& [name, g] : gauges_) gauges.set(name, g->value());
  Json histograms = Json::object();
  for (const auto& [name, h] : histograms_) {
    const auto s = h->snapshot();
    Json entry = Json::object();
    entry.set("count", static_cast<double>(s.count));
    entry.set("sum", s.sum);
    entry.set("min", s.count > 0 ? Json(s.min) : Json());
    entry.set("max", s.count > 0 ? Json(s.max) : Json());
    entry.set("mean", s.mean());
    Json buckets = Json::array();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (s.buckets[i] == 0) continue;  // sparse: only occupied buckets
      buckets.push(Json::object()
                       .set("le", Histogram::bucket_upper_bound(i))
                       .set("count", static_cast<double>(s.buckets[i])));
    }
    entry.set("buckets", std::move(buckets));
    histograms.set(name, std::move(entry));
  }
  return Json::object()
      .set("counters", std::move(counters))
      .set("gauges", std::move(gauges))
      .set("histograms", std::move(histograms));
}

bool MetricsRegistry::empty() const {
  const std::scoped_lock lock(mutex_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

void MetricsRegistry::reset() {
  const std::scoped_lock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry instance;
  return instance;
}

}  // namespace gpucnn::obs
