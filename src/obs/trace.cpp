#include "obs/trace.hpp"

#include <algorithm>
#include <ostream>

#include "obs/json.hpp"

namespace gpucnn::obs {

Span::Span(Tracer& tracer, std::string name, std::string category) {
  if (!tracer.enabled()) return;
  tracer_ = &tracer;
  name_ = std::move(name);
  category_ = std::move(category);
  start_us_ = tracer.now_us();
}

Span::~Span() {
  if (tracer_ == nullptr || !tracer_->enabled()) return;
  const double end_us = tracer_->now_us();
  tracer_->record(TraceEvent{std::move(name_), std::move(category_),
                             tracer_->thread_track(), start_us_,
                             end_us - start_us_, std::move(args_)});
}

void Span::arg(std::string key, std::string value) {
  if (tracer_ == nullptr) return;
  args_.emplace_back(std::move(key), std::move(value));
}

std::uint32_t Tracer::thread_track() {
  const auto id = std::this_thread::get_id();
  const std::scoped_lock lock(mutex_);
  const auto it = thread_tracks_.find(id);
  if (it != thread_tracks_.end()) return it->second;
  const std::uint32_t track = next_track_++;
  thread_tracks_.emplace(id, track);
  track_names_.emplace(
      track, track == 0 ? "cpu:main" : "cpu:thread-" + std::to_string(track));
  return track;
}

std::uint32_t Tracer::virtual_track(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  const auto it = virtual_tracks_.find(name);
  if (it != virtual_tracks_.end()) return it->second;
  const std::uint32_t track = next_track_++;
  virtual_tracks_.emplace(name, track);
  track_names_.emplace(track, name);
  return track;
}

void Tracer::record(TraceEvent event) {
  const std::scoped_lock lock(mutex_);
  events_.push_back(std::move(event));
}

void Tracer::complete_event(std::uint32_t track, std::string name,
                            std::string category, double start_us,
                            double duration_us, TraceArgs args) {
  if (!enabled()) return;
  record(TraceEvent{std::move(name), std::move(category), track, start_us,
                    duration_us, std::move(args)});
}

double Tracer::append_at_cursor(std::uint32_t track, std::string name,
                                std::string category, double duration_us,
                                TraceArgs args) {
  if (!enabled()) return 0.0;
  double start_us = 0.0;
  {
    const std::scoped_lock lock(mutex_);
    start_us = cursors_[track];
    cursors_[track] = start_us + duration_us;
    events_.push_back(TraceEvent{std::move(name), std::move(category), track,
                                 start_us, duration_us, std::move(args)});
  }
  return start_us;
}

double Tracer::cursor_us(std::uint32_t track) const {
  const std::scoped_lock lock(mutex_);
  const auto it = cursors_.find(track);
  return it == cursors_.end() ? 0.0 : it->second;
}

void Tracer::advance_cursor(std::uint32_t track, double to_us) {
  const std::scoped_lock lock(mutex_);
  auto& cursor = cursors_[track];
  cursor = std::max(cursor, to_us);
}

std::size_t Tracer::event_count() const {
  const std::scoped_lock lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  const std::scoped_lock lock(mutex_);
  return events_;
}

void Tracer::clear() {
  const std::scoped_lock lock(mutex_);
  events_.clear();
  cursors_.clear();
}

void Tracer::write_chrome_json(std::ostream& os) const {
  std::vector<TraceEvent> events;
  std::map<std::uint32_t, std::string> names;
  {
    const std::scoped_lock lock(mutex_);
    events = events_;
    names = track_names_;
  }

  Json root = Json::object();
  root.set("displayTimeUnit", "ms");
  root.set("otherData", Json::object().set("generator", "gpucnn-obs"));
  Json trace_events = Json::array();
  // Thread-name metadata first, so viewers label every track.
  for (const auto& [track, name] : names) {
    trace_events.push(Json::object()
                          .set("ph", "M")
                          .set("pid", 1)
                          .set("tid", std::size_t{track})
                          .set("name", "thread_name")
                          .set("args", Json::object().set("name", name)));
  }
  for (const auto& e : events) {
    Json ev = Json::object()
                  .set("ph", "X")
                  .set("pid", 1)
                  .set("tid", std::size_t{e.track})
                  .set("ts", e.start_us)
                  .set("dur", e.duration_us)
                  .set("name", e.name)
                  .set("cat", e.category);
    if (!e.args.empty()) {
      Json args = Json::object();
      for (const auto& [k, v] : e.args) args.set(k, v);
      ev.set("args", std::move(args));
    }
    trace_events.push(std::move(ev));
  }
  root.set("traceEvents", std::move(trace_events));
  root.dump(os, 1);
  os << '\n';
}

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

}  // namespace gpucnn::obs
