// Run exporter: the one reporting path shared by every figure bench and
// reproduce_all. Writes a self-describing artifact directory —
// per-table CSV/JSON files, a metrics.json snapshot, a Chrome trace and
// a versioned manifest.json tying them together (schema reference:
// docs/METRICS.md; usage: docs/OBSERVABILITY.md).
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace gpucnn::obs {

/// Version of the export schema documented in docs/METRICS.md. Bump on
/// any breaking change to manifest/table/metrics/trace layout.
inline constexpr const char* kSchemaVersion = "1.0.0";

/// The shared `--json / --csv / --trace [--out DIR | DIR]` flag set.
struct ExportOptions {
  bool json = false;
  bool csv = false;
  bool trace = false;
  std::filesystem::path dir = "paper_output";

  [[nodiscard]] bool any() const { return json || csv || trace; }

  /// Parses and strips the recognised flags from argv (adjusting argc);
  /// the first bare argument names the output directory, matching the
  /// historical `reproduce_all [output_dir]` convention. Unrecognised
  /// flags are left in place for the caller.
  static ExportOptions parse(int& argc, char** argv);
};

/// Collects a run's artifacts and writes them plus the manifest.
/// Inactive (all methods no-ops) when no export flag was given, so
/// benches call it unconditionally. Construction with `trace` set
/// enables the global tracer; finish() (or destruction) writes
/// trace.json, metrics.json and manifest.json.
class RunExporter {
 public:
  RunExporter(ExportOptions options, std::string tool);
  ~RunExporter();

  RunExporter(const RunExporter&) = delete;
  RunExporter& operator=(const RunExporter&) = delete;

  [[nodiscard]] bool active() const { return options_.any(); }
  [[nodiscard]] const ExportOptions& options() const { return options_; }
  [[nodiscard]] std::size_t artifact_count() const {
    return artifacts_.size();
  }

  /// Adds a run-level key/value recorded in the manifest (device name,
  /// base configuration, ...).
  void annotate(const std::string& key, const std::string& value);

  /// Exports one table as `<stem>.csv` (RFC 4180) and/or `<stem>.json`.
  /// Column names are sanitised to snake_case identifiers (see
  /// docs/METRICS.md); JSON cells are typed: numeric text becomes a
  /// number, empty text null, anything else a string.
  void add_table(const std::string& stem, const std::string& description,
                 const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows);

  /// Exports an arbitrary JSON document as `<stem>.json` (only when
  /// --json was given).
  void add_json(const std::string& stem, const std::string& description,
                const Json& doc);

  /// Writes metrics.json (when --json), trace.json (when --trace) and
  /// manifest.json; returns the manifest path (empty when inactive).
  /// Idempotent; called by the destructor if not called explicitly.
  std::filesystem::path finish();

 private:
  void record_artifact(const std::string& file, const std::string& kind,
                       const std::string& description, std::size_t rows);

  ExportOptions options_;
  std::string tool_;
  Json artifacts_ = Json::array();
  std::vector<std::pair<std::string, std::string>> annotations_;
  bool finished_ = false;
};

/// Lower-cases a column label and maps every non-alphanumeric run to one
/// '_' ("time (ms)" -> "time_ms", "Theano-CorrMM" -> "theano_corrmm").
[[nodiscard]] std::string sanitize_column(const std::string& label);

}  // namespace gpucnn::obs
