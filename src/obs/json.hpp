// Minimal ordered JSON document model backing every observability export
// (run manifests, metric snapshots, Chrome traces — see docs/METRICS.md).
// Objects preserve insertion order so exports are deterministic and
// diffable; numbers render via shortest-round-trip formatting. No
// external dependencies.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gpucnn::obs {

/// One JSON value: null, bool, number, string, array or object.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  ///< null
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(double value) : type_(Type::kNumber), number_(value) {}
  Json(int value) : Json(static_cast<double>(value)) {}
  Json(std::size_t value) : Json(static_cast<double>(value)) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}

  [[nodiscard]] static Json array() { return Json(Type::kArray); }
  [[nodiscard]] static Json object() { return Json(Type::kObject); }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }

  /// Object member insertion (replaces an existing key); returns *this
  /// for chaining. The value must be an object.
  Json& set(std::string key, Json value);
  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const;

  /// Array append; the value must be an array.
  Json& push(Json value);

  /// Element count of an array or object; 0 for scalars.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const std::vector<Json>& items() const { return items_; }
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const {
    return members_;
  }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return number_; }
  [[nodiscard]] const std::string& as_string() const { return string_; }

  /// Serialises the value. indent == 0 renders compact single-line JSON;
  /// indent > 0 pretty-prints with that many spaces per level.
  void dump(std::ostream& os, int indent = 0) const;
  [[nodiscard]] std::string dump_string(int indent = 0) const;

 private:
  explicit Json(Type t) : type_(t) {}
  void dump_impl(std::ostream& os, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;                             // kArray
  std::vector<std::pair<std::string, Json>> members_;   // kObject
};

/// Escapes a string for inclusion inside JSON quotes.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Renders a double the way Json does: shortest round-trip decimal;
/// non-finite values become "null" (JSON has no NaN/inf literals).
[[nodiscard]] std::string json_number(double value);

}  // namespace gpucnn::obs
