#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <ostream>
#include <sstream>

#include "core/error.hpp"

namespace gpucnn::obs {

Json& Json::set(std::string key, Json value) {
  check(type_ == Type::kObject, "Json::set on a non-object");
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::push(Json value) {
  check(type_ == Type::kArray, "Json::push on a non-array");
  items_.push_back(std::move(value));
  return *this;
}

std::size_t Json::size() const {
  switch (type_) {
    case Type::kArray:
      return items_.size();
    case Type::kObject:
      return members_.size();
    default:
      return 0;
  }
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) return "null";
  return std::string(buf, ptr);
}

namespace {

void write_indent(std::ostream& os, int indent, int depth) {
  if (indent <= 0) return;
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}

}  // namespace

void Json::dump_impl(std::ostream& os, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      os << "null";
      return;
    case Type::kBool:
      os << (bool_ ? "true" : "false");
      return;
    case Type::kNumber:
      os << json_number(number_);
      return;
    case Type::kString:
      os << '"' << json_escape(string_) << '"';
      return;
    case Type::kArray: {
      if (items_.empty()) {
        os << "[]";
        return;
      }
      os << '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i != 0) os << ',';
        write_indent(os, indent, depth + 1);
        items_[i].dump_impl(os, indent, depth + 1);
      }
      write_indent(os, indent, depth);
      os << ']';
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        os << "{}";
        return;
      }
      os << '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i != 0) os << ',';
        write_indent(os, indent, depth + 1);
        os << '"' << json_escape(members_[i].first) << "\":";
        if (indent > 0) os << ' ';
        members_[i].second.dump_impl(os, indent, depth + 1);
      }
      write_indent(os, indent, depth);
      os << '}';
      return;
    }
  }
}

void Json::dump(std::ostream& os, int indent) const {
  dump_impl(os, indent, 0);
}

std::string Json::dump_string(int indent) const {
  std::ostringstream os;
  dump(os, indent);
  return os.str();
}

}  // namespace gpucnn::obs
