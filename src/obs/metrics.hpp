// Process-wide metrics registry: named counters, gauges and histograms
// exported as metrics.json (schema: docs/METRICS.md).
//
// Lookup is mutex-guarded; the returned references stay valid for the
// registry's lifetime, and updates are lock-free (counters/gauges) or
// take a per-histogram mutex, so instrumented hot paths — including
// parallel_for bodies — may record concurrently.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/json.hpp"

namespace gpucnn::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-written value (e.g. a configuration knob or high-water mark).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Distribution summary: count/sum/min/max plus power-of-two buckets
/// covering [2^-20, 2^20) — wide enough for microseconds through
/// megabytes. Values at or below 0 land in the first bucket.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 41;
  static constexpr int kMinExponent = -20;

  void record(double value);

  struct Snapshot {
    std::int64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    std::array<std::int64_t, kBuckets> buckets{};
    [[nodiscard]] double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
  };
  [[nodiscard]] Snapshot snapshot() const;
  void reset();

  /// Upper bound (inclusive) of bucket `i`: 2^(kMinExponent + i); the
  /// last bucket is unbounded.
  [[nodiscard]] static double bucket_upper_bound(std::size_t i);

 private:
  mutable std::mutex mutex_;
  Snapshot state_;
};

/// Name -> metric registry. Counter/gauge/histogram names live in
/// separate namespaces; creation is idempotent.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with names
  /// sorted (std::map order) for deterministic exports.
  [[nodiscard]] Json snapshot() const;
  [[nodiscard]] bool empty() const;

  /// Zeroes every registered metric in place; references stay valid.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Process-wide registry used by the instrumented library code.
MetricsRegistry& metrics();

}  // namespace gpucnn::obs
