#include "obs/exporter.hpp"

#include <cctype>
#include <charconv>
#include <cstring>
#include <fstream>

#include "core/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#ifndef GPUCNN_GIT_DESCRIBE
#define GPUCNN_GIT_DESCRIBE "unknown"
#endif
#ifndef GPUCNN_VERSION
#define GPUCNN_VERSION "0.0.0"
#endif

namespace gpucnn::obs {

ExportOptions ExportOptions::parse(int& argc, char** argv) {
  ExportOptions opts;
  bool dir_set = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--csv") {
      opts.csv = true;
    } else if (arg == "--trace") {
      opts.trace = true;
    } else if (arg == "--out" && i + 1 < argc) {
      opts.dir = argv[++i];
      dir_set = true;
    } else if (!arg.starts_with("--") && !dir_set) {
      opts.dir = argv[i];
      dir_set = true;
    } else {
      argv[out++] = argv[i];  // leave unrecognised args for the caller
    }
  }
  argc = out;
  return opts;
}

std::string sanitize_column(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  for (const char c : label) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out.empty() ? "column" : out;
}

namespace {

/// Typed JSON cell: full numeric text -> number, empty -> null, rest ->
/// string ("n/s", "OOM", names).
Json typed_cell(const std::string& cell) {
  if (cell.empty()) return Json();
  double value = 0.0;
  const char* end = cell.data() + cell.size();
  const auto [ptr, ec] = std::from_chars(cell.data(), end, value);
  if (ec == std::errc{} && ptr == end) return Json(value);
  return Json(cell);
}

void write_csv_cell(std::ostream& os, const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    os << cell;
    return;
  }
  os << '"';
  for (const char c : cell) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

void write_csv_row(std::ostream& os, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i != 0) os << ',';
    write_csv_cell(os, row[i]);
  }
  os << '\n';
}

std::ofstream open_for_write(const std::filesystem::path& path) {
  std::ofstream os(path);
  check(os.is_open(), "cannot write " + path.string());
  return os;
}

}  // namespace

RunExporter::RunExporter(ExportOptions options, std::string tool)
    : options_(std::move(options)), tool_(std::move(tool)) {
  if (!active()) return;
  std::filesystem::create_directories(options_.dir);
  if (options_.trace) tracer().enable(true);
}

RunExporter::~RunExporter() {
  try {
    finish();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
    // Destructors must not throw; explicit finish() reports errors.
  }
}

void RunExporter::annotate(const std::string& key, const std::string& value) {
  if (!active()) return;
  annotations_.emplace_back(key, value);
}

void RunExporter::record_artifact(const std::string& file,
                                  const std::string& kind,
                                  const std::string& description,
                                  std::size_t rows) {
  Json entry = Json::object();
  entry.set("file", file);
  entry.set("kind", kind);
  if (!description.empty()) entry.set("description", description);
  if (kind == "table_csv" || kind == "table_json") entry.set("rows", rows);
  artifacts_.push(std::move(entry));
}

void RunExporter::add_table(const std::string& stem,
                            const std::string& description,
                            const std::vector<std::string>& header,
                            const std::vector<std::vector<std::string>>& rows) {
  if (!options_.csv && !options_.json) return;
  std::vector<std::string> columns;
  columns.reserve(header.size());
  for (const auto& h : header) columns.push_back(sanitize_column(h));

  if (options_.csv) {
    const std::string file = stem + ".csv";
    auto os = open_for_write(options_.dir / file);
    write_csv_row(os, columns);
    for (const auto& r : rows) write_csv_row(os, r);
    record_artifact(file, "table_csv", description, rows.size());
  }
  if (options_.json) {
    Json doc = Json::object();
    doc.set("schema_version", kSchemaVersion);
    doc.set("table", stem);
    if (!description.empty()) doc.set("description", description);
    Json cols = Json::array();
    for (const auto& c : columns) cols.push(c);
    doc.set("columns", std::move(cols));
    Json out_rows = Json::array();
    for (const auto& r : rows) {
      Json row = Json::object();
      for (std::size_t i = 0; i < r.size() && i < columns.size(); ++i) {
        row.set(columns[i], typed_cell(r[i]));
      }
      out_rows.push(std::move(row));
    }
    doc.set("rows", std::move(out_rows));
    const std::string file = stem + ".json";
    auto os = open_for_write(options_.dir / file);
    doc.dump(os, 1);
    os << '\n';
    record_artifact(file, "table_json", description, rows.size());
  }
}

void RunExporter::add_json(const std::string& stem,
                           const std::string& description, const Json& doc) {
  if (!options_.json) return;
  const std::string file = stem + ".json";
  auto os = open_for_write(options_.dir / file);
  doc.dump(os, 1);
  os << '\n';
  record_artifact(file, "json", description, doc.size());
}

std::filesystem::path RunExporter::finish() {
  if (!active() || finished_) return {};
  finished_ = true;

  if (options_.json && !metrics().empty()) {
    Json doc = Json::object();
    doc.set("schema_version", kSchemaVersion);
    doc.set("tool", tool_);
    const Json snap = metrics().snapshot();
    for (const auto& [key, value] : snap.members()) doc.set(key, value);
    auto os = open_for_write(options_.dir / "metrics.json");
    doc.dump(os, 1);
    os << '\n';
    record_artifact("metrics.json", "metrics",
                    "counter/gauge/histogram snapshot", 0);
  }
  if (options_.trace) {
    auto os = open_for_write(options_.dir / "trace.json");
    tracer().write_chrome_json(os);
    record_artifact("trace.json", "trace",
                    "Chrome trace_event timeline (open in Perfetto)", 0);
    tracer().enable(false);  // symmetric with the enable in the ctor
  }

  Json manifest = Json::object();
  manifest.set("schema_version", kSchemaVersion);
  manifest.set("tool", tool_);
  manifest.set("version", GPUCNN_VERSION);
  manifest.set("git", GPUCNN_GIT_DESCRIBE);
  Json run = Json::object();
#ifdef GPUCNN_SANITIZE_LABEL
  // Instrumented builds run ~2-20x slower; the annotation lets schema
  // validators (tools/validate_export.py) allow for distorted timings.
  run.set("sanitizer", GPUCNN_SANITIZE_LABEL);
#endif
  for (const auto& [key, value] : annotations_) run.set(key, value);
  manifest.set("run", std::move(run));
  manifest.set("artifacts", artifacts_);

  const auto path = options_.dir / "manifest.json";
  auto os = open_for_write(path);
  manifest.dump(os, 1);
  os << '\n';
  return path;
}

}  // namespace gpucnn::obs
