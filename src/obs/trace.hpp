// Span-based tracer rendering Chrome trace_event JSON (loadable in
// chrome://tracing and Perfetto; see docs/OBSERVABILITY.md).
//
// Two kinds of tracks coexist on one timeline:
//   * thread tracks — RAII Spans stamp real wall-clock intervals on the
//     calling thread's track; spans nest naturally because destruction
//     is LIFO per thread;
//   * virtual tracks — explicitly placed events carrying *simulated*
//     time (the gpusim kernel/transfer timeline). Each virtual track
//     keeps a cursor so successive replays append end-to-end, forming
//     one continuous simulated timeline per run.
//
// The tracer is disabled by default; every entry point is a cheap no-op
// until enable(true). All mutation is mutex-guarded and thread-safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/timer.hpp"

namespace gpucnn::obs {

/// String key/value pairs attached to an event ("args" in the Chrome
/// trace format).
using TraceArgs = std::vector<std::pair<std::string, std::string>>;

/// One complete ("ph":"X") event.
struct TraceEvent {
  std::string name;
  std::string category;
  std::uint32_t track = 0;  ///< rendered as the Chrome "tid"
  double start_us = 0.0;
  double duration_us = 0.0;
  TraceArgs args;
};

class Tracer;

/// RAII scope recording one complete event on the calling thread's track,
/// from construction to destruction. Inactive (and free) while the
/// tracer is disabled.
class Span {
 public:
  Span(Tracer& tracer, std::string name, std::string category = "cpu");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a key/value pair emitted when the span closes.
  void arg(std::string key, std::string value);
  [[nodiscard]] bool active() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_ = nullptr;  ///< nullptr when the span is a no-op
  std::string name_;
  std::string category_;
  double start_us_ = 0.0;
  TraceArgs args_;
};

/// Thread-safe trace event collector.
class Tracer {
 public:
  void enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Microseconds of wall clock since the tracer was constructed; the
  /// common timebase of all thread tracks.
  [[nodiscard]] double now_us() const { return epoch_.elapsed_us(); }

  /// Returns the id of the named virtual track, creating it on first use.
  std::uint32_t virtual_track(const std::string& name);

  /// Appends a complete event at an explicit position on a track.
  void complete_event(std::uint32_t track, std::string name,
                      std::string category, double start_us,
                      double duration_us, TraceArgs args = {});

  /// Appends a complete event at the track's cursor and advances the
  /// cursor past it; returns the event's start time.
  double append_at_cursor(std::uint32_t track, std::string name,
                          std::string category, double duration_us,
                          TraceArgs args = {});

  /// Current cursor (end of the last appended event) of a track.
  [[nodiscard]] double cursor_us(std::uint32_t track) const;
  /// Moves a track's cursor forward (never backwards).
  void advance_cursor(std::uint32_t track, double to_us);

  [[nodiscard]] std::size_t event_count() const;
  /// Snapshot of all recorded events (copies; thread-safe).
  [[nodiscard]] std::vector<TraceEvent> events() const;
  void clear();

  /// Writes the Chrome trace_event JSON object format: thread-name
  /// metadata events followed by every recorded "X" event.
  void write_chrome_json(std::ostream& os) const;

 private:
  friend class Span;
  /// Track id of the calling thread, assigned on first use.
  std::uint32_t thread_track();
  void record(TraceEvent event);

  std::atomic<bool> enabled_{false};
  Timer epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::map<std::thread::id, std::uint32_t> thread_tracks_;
  std::map<std::string, std::uint32_t> virtual_tracks_;
  std::map<std::uint32_t, std::string> track_names_;
  std::map<std::uint32_t, double> cursors_;
  std::uint32_t next_track_ = 0;
};

/// Process-wide tracer used by the instrumented library code. Disabled
/// until a tool (bench/example flag --trace) enables it.
Tracer& tracer();

}  // namespace gpucnn::obs
