#include "analysis/sweep.hpp"

#include "core/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gpucnn::analysis {

std::string to_string(SweepParameter p) {
  switch (p) {
    case SweepParameter::kBatch:
      return "mini-batch";
    case SweepParameter::kInput:
      return "input-size";
    case SweepParameter::kFilters:
      return "filter-number";
    case SweepParameter::kKernel:
      return "kernel-size";
    case SweepParameter::kStride:
      return "stride";
  }
  return "unknown";
}

ConvConfig base_config() {
  return ConvConfig{.batch = 64, .input = 128, .channels = 3, .filters = 64,
                    .kernel = 11, .stride = 1};
}

ConvConfig depthwise_base_config() {
  return ConvConfig{.batch = 64, .input = 56, .channels = 64, .filters = 64,
                    .kernel = 3, .stride = 1, .pad = 1, .groups = 64};
}

ConvConfig SweepSpec::config_for(std::size_t value) const {
  ConvConfig cfg = base.batch != 0 ? base : base_config();
  switch (parameter) {
    case SweepParameter::kBatch:
      cfg.batch = value;
      break;
    case SweepParameter::kInput:
      cfg.input = value;
      break;
    case SweepParameter::kFilters:
      cfg.filters = value;
      break;
    case SweepParameter::kKernel:
      cfg.kernel = value;
      break;
    case SweepParameter::kStride:
      cfg.stride = value;
      break;
  }
  check(cfg.input >= cfg.kernel, "swept config has kernel > input");
  check(cfg.filters % cfg.groups == 0,
        "swept filter count must stay a multiple of the group count");
  return cfg;
}

std::vector<SweepSpec> paper_sweeps() {
  std::vector<SweepSpec> sweeps(5);
  sweeps[0].parameter = SweepParameter::kBatch;
  for (std::size_t b = 32; b <= 512; b += 32) sweeps[0].values.push_back(b);
  sweeps[1].parameter = SweepParameter::kInput;
  for (std::size_t i = 32; i <= 256; i += 16) sweeps[1].values.push_back(i);
  sweeps[2].parameter = SweepParameter::kFilters;
  for (std::size_t f = 32; f <= 512; f += 16) sweeps[2].values.push_back(f);
  sweeps[3].parameter = SweepParameter::kKernel;
  for (std::size_t k = 3; k <= 31; k += 2) sweeps[3].values.push_back(k);
  sweeps[4].parameter = SweepParameter::kStride;
  for (std::size_t s = 1; s <= 4; ++s) sweeps[4].values.push_back(s);
  return sweeps;
}

std::vector<SweepSpec> depthwise_sweeps() {
  std::vector<SweepSpec> sweeps(5);
  for (auto& s : sweeps) s.base = depthwise_base_config();
  sweeps[0].parameter = SweepParameter::kBatch;
  for (std::size_t b = 32; b <= 256; b += 32) sweeps[0].values.push_back(b);
  sweeps[1].parameter = SweepParameter::kInput;
  for (std::size_t i = 8; i <= 64; i += 8) sweeps[1].values.push_back(i);
  // Sweeping filters on a groups == channels base steps the channel
  // multiplier: 64 filters = multiplier 1, 128 = 2, ...
  sweeps[2].parameter = SweepParameter::kFilters;
  for (std::size_t f = 64; f <= 256; f += 64) sweeps[2].values.push_back(f);
  sweeps[3].parameter = SweepParameter::kKernel;
  for (std::size_t k = 3; k <= 11; k += 2) sweeps[3].values.push_back(k);
  sweeps[4].parameter = SweepParameter::kStride;
  for (std::size_t s = 1; s <= 4; ++s) sweeps[4].values.push_back(s);
  return sweeps;
}

ConvConfig winograd_base_config() {
  return ConvConfig{.batch = 64, .input = 56, .channels = 64, .filters = 64,
                    .kernel = 3, .stride = 1, .pad = 1, .groups = 1};
}

std::vector<SweepSpec> winograd_sweeps() {
  // Kernel and stride stay pinned at (3, 1): sweeping either would leave
  // the family the Winograd engines (and cuDNN's winograd algorithms)
  // dispatch on, so only the three eligibility-preserving parameters
  // vary.
  std::vector<SweepSpec> sweeps(3);
  for (auto& s : sweeps) s.base = winograd_base_config();
  sweeps[0].parameter = SweepParameter::kBatch;
  for (std::size_t b = 32; b <= 256; b += 32) sweeps[0].values.push_back(b);
  sweeps[1].parameter = SweepParameter::kInput;
  for (std::size_t i = 8; i <= 64; i += 8) sweeps[1].values.push_back(i);
  sweeps[2].parameter = SweepParameter::kFilters;
  for (std::size_t f = 32; f <= 256; f += 32) sweeps[2].values.push_back(f);
  return sweeps;
}

std::vector<SweepPoint> run_sweep(const SweepSpec& spec) {
  obs::Span span(obs::tracer(), "sweep " + to_string(spec.parameter),
                 "analysis");
  std::vector<SweepPoint> points;
  points.reserve(spec.values.size());
  for (const std::size_t value : spec.values) {
    obs::Span point_span(obs::tracer(),
                         to_string(spec.parameter) + "=" +
                             std::to_string(value),
                         "analysis");
    obs::metrics().counter("analysis.sweep.points").add(1);
    SweepPoint point;
    point.value = value;
    point.config = spec.config_for(value);
    point.results = evaluate_all(point.config);
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace gpucnn::analysis
