// Figure 2 machinery: per-layer simulated runtimes for whole CNN models,
// rolled up by layer type ("hotspot layer analysis", paper §IV.A).
//
// Convolutional layers go through the full framework plan (Caffe, the
// framework the paper profiles the models in); the remaining layer types
// use bandwidth/GEMM cost models on the same device.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "frameworks/framework.hpp"
#include "gpusim/device.hpp"
#include "nn/model_spec.hpp"

namespace gpucnn::analysis {

struct LayerTime {
  std::string name;
  nn::LayerSpec::Kind kind{};
  double time_ms = 0.0;
};

struct ModelBreakdown {
  std::string model;
  std::vector<LayerTime> layers;
  std::map<nn::LayerSpec::Kind, double> by_kind;
  double total_ms = 0.0;

  /// Fraction of total runtime spent in one layer kind.
  [[nodiscard]] double share(nn::LayerSpec::Kind k) const;
};

/// Simulates one training iteration (forward + backward) of the model
/// layer by layer.
[[nodiscard]] ModelBreakdown breakdown_model(
    const nn::ModelSpec& model,
    frameworks::FrameworkId conv_framework = frameworks::FrameworkId::kCaffe,
    const gpusim::DeviceSpec& dev = gpusim::tesla_k40c());

}  // namespace gpucnn::analysis
