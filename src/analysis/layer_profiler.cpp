#include "analysis/layer_profiler.hpp"

#include "core/error.hpp"
#include "core/timer.hpp"

namespace gpucnn::analysis {

std::map<std::string, double> NetworkProfile::share_by_type() const {
  std::map<std::string, double> shares;
  if (total_ms <= 0.0) return shares;
  for (const auto& l : layers) shares[l.type] += l.total_ms() / total_ms;
  return shares;
}

NetworkProfile profile_network(nn::Network& net, const Tensor& input,
                               std::size_t iterations) {
  check(iterations > 0, "need at least one iteration");
  check(net.size() > 0, "network has no layers");

  NetworkProfile profile;
  profile.layers.resize(net.size());
  for (std::size_t i = 0; i < net.size(); ++i) {
    profile.layers[i].name = net.layer(i).name();
    profile.layers[i].type = std::string(net.layer(i).type());
  }

  std::vector<Tensor> activations(net.size());
  Tensor grad;
  Tensor grad_in;
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    // Forward, timing each layer.
    const Tensor* current = &input;
    for (std::size_t i = 0; i < net.size(); ++i) {
      Timer timer;
      net.layer(i).forward(*current, activations[i]);
      profile.layers[i].forward_ms += timer.elapsed_ms();
      current = &activations[i];
    }
    // Backward with a unit gradient (timing, not learning).
    grad.resize(activations.back().shape());
    grad.fill(1.0F);
    for (std::size_t i = net.size(); i-- > 0;) {
      const Tensor& layer_input = i == 0 ? input : activations[i - 1];
      Timer timer;
      net.layer(i).backward(layer_input, grad, grad_in);
      profile.layers[i].backward_ms += timer.elapsed_ms();
      std::swap(grad, grad_in);
    }
  }

  const double inv = 1.0 / static_cast<double>(iterations);
  for (auto& l : profile.layers) {
    l.forward_ms *= inv;
    l.backward_ms *= inv;
    profile.total_ms += l.total_ms();
  }
  return profile;
}

}  // namespace gpucnn::analysis
