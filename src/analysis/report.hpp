// Fixed-width ASCII table rendering shared by the figure benches: every
// bench prints the rows/series its paper figure reports.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gpucnn::analysis {

/// A simple column-aligned table with a title, header row and data rows.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& header(std::vector<std::string> cells);
  Table& row(std::vector<std::string> cells);

  /// Renders with column widths fitted to content.
  void print(std::ostream& os) const;

  /// Renders as RFC-4180-style CSV (quotes cells containing commas,
  /// quotes or newlines) for downstream plotting.
  void to_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimals.
[[nodiscard]] std::string fmt(double value, int digits = 1);
/// Formats a fraction as "12.3%".
[[nodiscard]] std::string fmt_percent(double fraction, int digits = 1);

}  // namespace gpucnn::analysis
