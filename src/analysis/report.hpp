// Fixed-width ASCII table rendering shared by the figure benches: every
// bench prints the rows/series its paper figure reports.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gpucnn::obs {
class RunExporter;
}

namespace gpucnn::analysis {

/// A simple column-aligned table with a title, header row and data rows.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& header(std::vector<std::string> cells);
  Table& row(std::vector<std::string> cells);

  /// Renders with column widths fitted to content.
  void print(std::ostream& os) const;

  /// Renders as RFC-4180-style CSV (quotes cells containing commas,
  /// quotes or newlines) for downstream plotting.
  void to_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] const std::vector<std::string>& header_cells() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& data_rows()
      const {
    return rows_;
  }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Registers `table` with a run exporter under `<stem>.csv` / `<stem>.json`
/// (schema: docs/METRICS.md); the table's title becomes the artifact
/// description. No-op when the exporter is inactive.
void export_table(obs::RunExporter& exporter, const Table& table,
                  const std::string& stem);

/// Formats a double with `digits` decimals.
[[nodiscard]] std::string fmt(double value, int digits = 1);
/// Formats a fraction as "12.3%".
[[nodiscard]] std::string fmt_percent(double fraction, int digits = 1);

}  // namespace gpucnn::analysis
