// What-if optimisation analysis.
//
// The paper closes each profiling subsection with an optimisation
// suggestion ("memory padding is another way to avoid bank conflict",
// "converting the control statement into non-control statement", "using
// pinned memory", "asynchronous transfer", "organizing many small data
// transfers to a large data transfer", "carefully balance these
// factors"). This module makes those suggestions executable: each
// Optimization is a transform on an implementation's execution plan, and
// the simulator predicts the resulting speedup.
#pragma once

#include <string_view>
#include <vector>

#include "analysis/conv_runner.hpp"

namespace gpucnn::analysis {

/// The paper's optimisation suggestions (§V.C–V.D summaries).
enum class Optimization {
  kFixBankConflicts,     ///< pad shared memory; conflict-free accesses
  kReduceDivergence,     ///< restructure control flow (WEE -> 97%)
  kCoalesceGlobal,       ///< aligned/coalesced global access
  kRebalanceOccupancy,   ///< trim register pressure where latency-bound
  kPinnedTransfers,      ///< stage copies through pinned memory
  kAsyncTransfers,       ///< overlap copies with compute
  kBatchSmallTransfers,  ///< fuse many small copies into one
};

inline constexpr Optimization kAllOptimizations[] = {
    Optimization::kFixBankConflicts, Optimization::kReduceDivergence,
    Optimization::kCoalesceGlobal,   Optimization::kRebalanceOccupancy,
    Optimization::kPinnedTransfers,  Optimization::kAsyncTransfers,
    Optimization::kBatchSmallTransfers,
};

[[nodiscard]] std::string_view to_string(Optimization o);

/// Returns a copy of `plan` with the optimisation applied.
[[nodiscard]] frameworks::ExecutionPlan apply_optimization(
    const frameworks::ExecutionPlan& plan, Optimization opt,
    const gpusim::DeviceSpec& dev = gpusim::tesla_k40c());

struct WhatIfResult {
  Optimization optimization{};
  double baseline_ms = 0.0;
  double optimized_ms = 0.0;
  /// baseline / optimized; 1.0 means the suggestion does not help here.
  [[nodiscard]] double speedup() const {
    return optimized_ms > 0.0 ? baseline_ms / optimized_ms : 0.0;
  }
};

/// Evaluates every suggestion on one (framework, config) pair.
[[nodiscard]] std::vector<WhatIfResult> what_if(
    frameworks::FrameworkId id, const ConvConfig& cfg,
    const gpusim::DeviceSpec& dev = gpusim::tesla_k40c());

/// Runtime of a plan (kernels + exposed transfers) on `dev`.
[[nodiscard]] double plan_runtime_ms(const frameworks::ExecutionPlan& plan,
                                     const gpusim::DeviceSpec& dev);

}  // namespace gpucnn::analysis
