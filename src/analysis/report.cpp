#include "analysis/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "obs/exporter.hpp"

namespace gpucnn::analysis {

Table& Table::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  const auto widen = [&](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  os << "\n== " << title_ << " ==\n";
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
         << cells[i];
    }
    os << '\n';
  };
  if (!header_.empty()) {
    print_row(header_);
    std::size_t total = 0;
    for (const auto w : widths) total += w + 2;
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) print_row(r);
}

namespace {

void write_csv_cell(std::ostream& os, const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    os << cell;
    return;
  }
  os << '"';
  for (const char c : cell) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

void write_csv_row(std::ostream& os, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i != 0) os << ',';
    write_csv_cell(os, row[i]);
  }
  os << '\n';
}

}  // namespace

void Table::to_csv(std::ostream& os) const {
  if (!header_.empty()) write_csv_row(os, header_);
  for (const auto& r : rows_) write_csv_row(os, r);
}

void export_table(obs::RunExporter& exporter, const Table& table,
                  const std::string& stem) {
  exporter.add_table(stem, table.title(), table.header_cells(),
                     table.data_rows());
}

std::string fmt(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string fmt_percent(double fraction, int digits) {
  return fmt(fraction * 100.0, digits) + "%";
}

}  // namespace gpucnn::analysis
