#include "analysis/conv_fuzz.hpp"

#include <array>
#include <cmath>
#include <initializer_list>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/conv_runner.hpp"
#include "conv/conv_engine.hpp"
#include "conv/depthwise_conv.hpp"
#include "conv/fft_conv.hpp"
#include "conv/implicit_gemm_conv.hpp"
#include "conv/quantized_conv.hpp"
#include "conv/tiled_fft_conv.hpp"
#include "conv/winograd_conv.hpp"
#include "core/rng.hpp"
#include "core/tensor.hpp"
#include "core/workspace.hpp"
#include "frameworks/framework.hpp"
#include "nn/activation_layer.hpp"
#include "nn/conv_layer.hpp"
#include "tune/autotuner.hpp"

namespace gpucnn::analysis {
namespace {

/// Decorrelates (seed, index) into an Rng seed; the golden-ratio stride
/// keeps neighbouring indices far apart in state space.
std::uint64_t mix(std::uint64_t seed, std::size_t index) {
  return seed ^ (0x9E3779B97F4A7C15ULL * (index + 1));
}

std::size_t pick(Rng& rng, std::initializer_list<std::size_t> choices) {
  return *(choices.begin() + rng.uniform_int(choices.size()));
}

/// Keeps a fuzz config checkable in milliseconds: the point is shape
/// adversity, not arithmetic volume.
constexpr double kMaxForwardFlops = 2.0e8;
constexpr std::size_t kMaxElements = 1'500'000;

bool affordable(const ConvConfig& cfg) {
  return cfg.forward_flops() <= kMaxForwardFlops &&
         cfg.input_shape().count() <= kMaxElements &&
         cfg.output_shape().count() <= kMaxElements &&
         cfg.filter_shape().count() <= kMaxElements;
}

/// All finite (poisoned scratch read before write propagates NaN).
bool finite(const Tensor& t) {
  for (const float v : t.data()) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

/// Forward tolerance matching tests/test_conv_agreement.cpp: FFT error
/// grows with the reduction size.
double forward_tolerance(const ConvConfig& cfg) {
  const double scale =
      static_cast<double>(cfg.group_channels() * cfg.kernel * cfg.kernel);
  return 1e-4 * (1.0 + scale * 0.02);
}

double filter_tolerance(const ConvConfig& cfg) {
  return forward_tolerance(cfg) *
         (1.0 + 0.05 * static_cast<double>(cfg.batch) *
                    static_cast<double>(cfg.output()));
}

void add_failure(FuzzReport& report, std::size_t index,
                 const ConvConfig& cfg, std::string what) {
  report.failures.push_back({index, cfg, std::move(what)});
}

/// The non-reference engines: factory strategies plus the variants the
/// factory does not expose directly — implicit GEMM, tiled FFT, and the
/// full-complex spectrum path kept as the rfft cross-check.
std::vector<std::unique_ptr<conv::ConvEngine>> make_checked_engines() {
  std::vector<std::unique_ptr<conv::ConvEngine>> engines;
  engines.push_back(conv::make_engine(conv::Strategy::kUnrolling));
  engines.push_back(std::make_unique<conv::ImplicitGemmConv>());
  engines.push_back(conv::make_engine(conv::Strategy::kFft));
  engines.push_back(
      std::make_unique<conv::FftConv>(conv::FftConv::Spectrum::kFull));
  engines.push_back(std::make_unique<conv::TiledFftConv>());
  engines.push_back(conv::make_engine(conv::Strategy::kWinograd));
  engines.push_back(
      std::make_unique<conv::WinogradConv>(conv::WinogradTile::kF4));
  engines.push_back(std::make_unique<conv::DepthwiseConv>());
  return engines;
}

void check_engines(const ConvConfig& cfg, std::uint64_t seed,
                   std::size_t index, FuzzReport& report) {
  Rng rng(mix(seed, index) + 1);
  Tensor input(cfg.input_shape());
  input.fill_uniform(rng);
  Tensor filters(cfg.filter_shape());
  filters.fill_uniform(rng);
  Tensor grad_output(cfg.output_shape());
  grad_output.fill_uniform(rng);

  const auto direct = conv::make_engine(conv::Strategy::kDirect);
  Tensor ref_out(cfg.output_shape());
  Tensor ref_gin(cfg.input_shape());
  Tensor ref_gfilt(cfg.filter_shape());
  try {
    direct->forward(cfg, input, filters, ref_out);
    direct->backward_data(cfg, grad_output, filters, ref_gin);
    direct->backward_filter(cfg, input, grad_output, ref_gfilt);
  } catch (const std::exception& e) {
    add_failure(report, index, cfg,
                std::string("direct reference threw: ") + e.what());
    return;
  }
  if (!finite(ref_out) || !finite(ref_gin) || !finite(ref_gfilt)) {
    add_failure(report, index, cfg,
                "direct reference produced non-finite values");
    return;
  }

  enum class PassKind { kForward, kBackwardData, kBackwardFilter };
  struct PassCheck {
    PassKind kind;
    const char* label;
    const Tensor& reference;
    double tolerance;
  };
  const PassCheck passes[] = {
      {PassKind::kForward, "forward", ref_out, forward_tolerance(cfg)},
      {PassKind::kBackwardData, "backward_data", ref_gin,
       forward_tolerance(cfg)},
      {PassKind::kBackwardFilter, "backward_filter", ref_gfilt,
       filter_tolerance(cfg)},
  };

  for (const auto& engine : make_checked_engines()) {
    if (!engine->supports(cfg)) {
      ++report.engine_skips;
      continue;
    }
    for (const auto& pass : passes) {
      Tensor got(pass.reference.shape());
      try {
        switch (pass.kind) {
          case PassKind::kForward:
            engine->forward(cfg, input, filters, got);
            break;
          case PassKind::kBackwardData:
            engine->backward_data(cfg, grad_output, filters, got);
            break;
          case PassKind::kBackwardFilter:
            engine->backward_filter(cfg, input, grad_output, got);
            break;
        }
      } catch (const std::exception& e) {
        add_failure(report, index, cfg,
                    std::string(engine->name()) + " " + pass.label +
                        " threw on a supported config: " + e.what());
        continue;
      }
      ++report.engine_checks;
      if (!finite(got)) {
        add_failure(report, index, cfg,
                    std::string(engine->name()) + " " + pass.label +
                        " produced non-finite values");
        continue;
      }
      const double diff = max_abs_diff(pass.reference, got);
      if (!(diff < pass.tolerance)) {
        std::ostringstream os;
        os << engine->name() << ' ' << pass.label
           << " disagrees with direct: max|diff| = " << diff
           << " (tolerance " << pass.tolerance << ')';
        add_failure(report, index, cfg, os.str());
      }
    }
  }
}

/// Non-negative and finite.
bool sane(double v) { return std::isfinite(v) && v >= 0.0; }

void check_plans(const ConvConfig& cfg, std::size_t index,
                 FuzzReport& report) {
  for (const auto id : frameworks::all_frameworks()) {
    const auto& fw = frameworks::framework(id);
    if (!fw.supports(cfg).ok) {
      ++report.plan_skips;
      continue;
    }
    const std::string who(fw.name());
    frameworks::ExecutionPlan plan;
    LayerResult result;
    try {
      plan = fw.plan(cfg);
      result = evaluate(id, cfg);
    } catch (const std::exception& e) {
      add_failure(report, index, cfg,
                  who + " plan/evaluate threw on a supported config: " +
                      e.what());
      continue;
    }
    ++report.plan_checks;
    auto fail = [&](const std::string& what) {
      add_failure(report, index, cfg, who + ": " + what);
    };

    if (plan.kernels.empty()) fail("plan has no kernels");
    for (const auto& k : plan.kernels) {
      if (k.block_threads == 0 || k.grid_blocks == 0) {
        fail("kernel '" + k.name + "' has an empty launch geometry");
      }
      if (!sane(k.flops) || !sane(k.global_load_bytes) ||
          !sane(k.global_store_bytes) || !sane(k.shared_bytes)) {
        fail("kernel '" + k.name + "' has negative or non-finite work");
      }
    }
    // Workspace accounting balances: item sizes are sane, transient
    // workspace never exceeds the peak it is part of.
    double workspace = 0.0;
    for (const auto& m : plan.memory) {
      if (!sane(m.bytes)) fail("memory item '" + m.label + "' is negative");
      if (m.workspace) workspace += m.bytes;
    }
    if (workspace != plan.workspace_bytes()) {
      fail("workspace_bytes() does not match the item sum");
    }
    if (plan.workspace_bytes() > plan.peak_bytes()) {
      fail("workspace exceeds the reported peak");
    }

    // Simulated timing invariants (non-negative, consistent shares).
    if (!sane(result.runtime_ms) || !sane(result.kernel_ms) ||
        !sane(result.transfer_ms)) {
      fail("simulated times are negative or non-finite");
    }
    if (!(result.transfer_share >= 0.0 && result.transfer_share <= 1.0)) {
      fail("transfer share outside [0, 1]");
    }
    if (!sane(result.peak_mb)) fail("peak memory is negative");
    for (const auto& [pass, ms] : result.pass_ms) {
      if (!sane(ms)) fail("per-pass time is negative or non-finite");
    }
  }
}

}  // namespace

ConvConfig fuzz_config(std::uint64_t seed, std::size_t index) {
  Rng rng(mix(seed, index));
  for (int attempt = 0; attempt < 64; ++attempt) {
    ConvConfig cfg;
    // One draw in six lands the depthwise-degenerate family
    // (groups == channels, multiplier >= 1) the DepthwiseConv engine
    // owns; the rest keeps the original grouped/ungrouped mix.
    if (pick(rng, {0, 0, 0, 0, 0, 1}) == 1) {
      cfg.groups = pick(rng, {2, 3, 4, 6, 8});
      cfg.channels = cfg.groups;
      cfg.filters = cfg.groups * pick(rng, {1, 1, 2, 3});
    } else {
      cfg.groups = pick(rng, {1, 1, 1, 1, 1, 2, 2, 3, 4});
      cfg.channels = cfg.groups * pick(rng, {1, 1, 2, 3, 5, 8});
      cfg.filters = cfg.groups * pick(rng, {1, 2, 3, 4, 8});
    }
    cfg.batch = pick(rng, {1, 1, 2, 3, 4});
    cfg.kernel = pick(rng, {1, 2, 3, 3, 3, 4, 5, 7, 9, 11});
    // Stride beyond the kernel skips input pixels entirely; stride
    // beyond the input collapses the output to one pixel per border.
    cfg.stride = pick(rng, {1, 1, 1, 1, 2, 2, 3, 4, 5});
    // pad >= kernel means whole filter taps land in the halo.
    cfg.pad = pick(rng, {0, 0, 0, 1, 2, cfg.kernel - 1, cfg.kernel,
                         cfg.kernel + 1});
    // Non-powers of two around FFT padding boundaries (17 and 33 pad to
    // 32 and 64; 63/64/65 straddle the 64 -> 128 jump), primes, and
    // inputs at or below the kernel size.
    cfg.input = pick(rng, {1, 2, 3, 5, 6, 7, 9, 11, 12, 13, 15, 16, 17, 19,
                           23, 25, 28, 31, 32, 33, 63, 64, 65});
    if (cfg.input + 2 * cfg.pad < cfg.kernel) continue;
    if (!affordable(cfg)) continue;
    return cfg;
  }
  // Statistically unreachable: 64 draws without a valid geometry. Fall
  // back to a fixed minimal config so the run stays deterministic.
  return ConvConfig{.batch = 1, .input = 8, .channels = 1, .filters = 1,
                    .kernel = 3, .stride = 1, .pad = 0, .groups = 1};
}

ConvConfig fuzz_depthwise_config(std::uint64_t seed, std::size_t index) {
  // A distinct mix offset decorrelates this sequence from fuzz_config's.
  Rng rng(mix(seed, index) ^ 0xD3E7);
  for (int attempt = 0; attempt < 64; ++attempt) {
    ConvConfig cfg;
    cfg.groups = pick(rng, {1, 2, 3, 4, 6, 8, 16, 32});
    cfg.channels = cfg.groups;
    // Multipliers > 1 weighted heavily: the filter-indexing bugs a
    // depthwise engine can have (filter f reading channel f instead of
    // f / M) only show up with a multiplier.
    cfg.filters = cfg.groups * pick(rng, {1, 2, 2, 3, 4});
    cfg.batch = pick(rng, {1, 1, 2, 3, 4});
    cfg.kernel = pick(rng, {1, 2, 3, 3, 3, 5, 7, 9});
    cfg.stride = pick(rng, {1, 1, 1, 1, 2, 2, 3, 4});
    cfg.pad = pick(rng, {0, 0, 1, 1, 2, cfg.kernel - 1, cfg.kernel,
                         cfg.kernel + 1});
    cfg.input = pick(rng, {1, 3, 5, 7, 9, 12, 15, 16, 17, 23, 28, 31, 32,
                           33, 56, 63, 64, 65});
    if (cfg.input + 2 * cfg.pad < cfg.kernel) continue;
    if (!affordable(cfg)) continue;
    return cfg;
  }
  return ConvConfig{.batch = 1, .input = 8, .channels = 4, .filters = 8,
                    .kernel = 3, .stride = 1, .pad = 1, .groups = 4};
}

ConvConfig fuzz_winograd_config(std::uint64_t seed, std::size_t index) {
  // A distinct mix offset decorrelates this sequence from the others'.
  Rng rng(mix(seed, index) ^ 0x3A9D);
  for (int attempt = 0; attempt < 64; ++attempt) {
    ConvConfig cfg;
    cfg.kernel = 3;
    cfg.stride = 1;
    cfg.groups = 1;
    // The whole supported pad range: pad 0 shrinks, pad 1 preserves,
    // pad 2 grows the map — each puts the tile overhang in a different
    // place relative to the zero halo.
    cfg.pad = pick(rng, {0, 0, 1, 1, 1, 2, 2});
    // C = 1 / F = 1 degenerates keep the per-position GEMMs rank-1;
    // larger draws exercise the blocked panels.
    cfg.channels = pick(rng, {1, 1, 2, 3, 5, 8, 16, 24});
    cfg.filters = pick(rng, {1, 1, 2, 3, 4, 8, 16, 17});
    cfg.batch = pick(rng, {1, 1, 2, 3, 4});
    // Inputs below one tile (3 < alpha for both tile sizes), odd sizes
    // whose last tile row overhangs the padded edge, and sizes whose
    // output is odd for one tile size but tile-aligned for the other.
    cfg.input = pick(rng, {3, 4, 5, 6, 7, 9, 11, 12, 13, 15, 17, 21, 23,
                           28, 31, 32, 33, 56});
    if (cfg.input + 2 * cfg.pad < cfg.kernel) continue;
    if (!affordable(cfg)) continue;
    return cfg;
  }
  return ConvConfig{.batch = 1, .input = 7, .channels = 1, .filters = 1,
                    .kernel = 3, .stride = 1, .pad = 1, .groups = 1};
}

void check_config(const ConvConfig& cfg, std::uint64_t seed,
                  std::size_t index, FuzzReport& report) {
  check_engines(cfg, seed, index, report);
  check_plans(cfg, index, report);
  ++report.configs_run;
}

void check_fused(const ConvConfig& cfg, std::uint64_t seed,
                 std::size_t index, FuzzReport& report) {
  // Two layer stacks with identical parameters: fused conv+bias+ReLU vs
  // the conv -> separate ReLU reference. Identical initialisation comes
  // from reseeding the same Rng for both.
  nn::ConvLayer fused("fuzz_fused", cfg);
  fused.set_fused_relu(true);
  nn::ConvLayer plain("fuzz_plain", cfg);
  nn::ActivationLayer relu("fuzz_relu", nn::Activation::kRelu);
  {
    Rng init(mix(seed, index) + 2);
    fused.initialize(init);
  }
  {
    Rng init(mix(seed, index) + 2);
    plain.initialize(init);
  }

  Rng rng(mix(seed, index) + 3);
  Tensor input(cfg.input_shape());
  input.fill_uniform(rng);
  Tensor grad_output(cfg.output_shape());
  grad_output.fill_uniform(rng);

  auto fail = [&](const std::string& what) {
    add_failure(report, index, cfg, "fused conv+bias+relu: " + what);
  };

  Tensor fused_out;
  Tensor plain_conv;
  Tensor plain_out;
  fused.forward(input, fused_out);
  plain.forward(input, plain_conv);
  relu.forward(plain_conv, plain_out);
  ++report.fused_checks;
  if (max_abs_diff(fused_out, plain_out) != 0.0) {
    fail("forward is not bit-identical to the unfused sequence");
    return;
  }

  Tensor fused_gin;
  fused.backward(input, grad_output, fused_gin);
  Tensor relu_gin;
  relu.backward(plain_conv, grad_output, relu_gin);
  Tensor plain_gin;
  plain.backward(input, relu_gin, plain_gin);
  if (max_abs_diff(fused_gin, plain_gin) != 0.0) {
    fail("backward grad_input differs from the unfused sequence");
  }
  const auto fused_grads = fused.gradients();
  const auto plain_grads = plain.gradients();
  if (max_abs_diff(*fused_grads[0], *plain_grads[0]) != 0.0) {
    fail("accumulated grad_weights differ from the unfused sequence");
  }
  if (max_abs_diff(*fused_grads[1], *plain_grads[1]) != 0.0) {
    fail("accumulated grad_bias differs from the unfused sequence");
  }
}

void check_int8(const ConvConfig& cfg, std::uint64_t seed,
                std::size_t index, FuzzReport& report) {
  Rng rng(mix(seed, index) + 4);
  Tensor input(cfg.input_shape());
  input.fill_uniform(rng);
  Tensor filters(cfg.filter_shape());
  filters.fill_uniform(rng);
  std::vector<float> bias(cfg.filters);
  for (auto& b : bias) b = static_cast<float>(rng.uniform(-0.5, 0.5));

  auto fail = [&](const std::string& what) {
    add_failure(report, index, cfg, "int8 forward: " + what);
  };

  // fp32 reference: the same im2col+GEMM algorithm the int8 path
  // quantizes, so the only differences left are quantization error.
  const auto fp32 = conv::make_engine(conv::Strategy::kUnrolling);
  Tensor ref_plain(cfg.output_shape());
  Tensor ref_fused(cfg.output_shape());
  try {
    fp32->forward(cfg, input, filters, ref_plain);
    if (!fp32->forward_fused(cfg, input, filters, bias, true, ref_fused)) {
      fail("fp32 reference has no fused epilogue");
      return;
    }
  } catch (const std::exception& e) {
    fail(std::string("fp32 reference threw: ") + e.what());
    return;
  }

  // Quantization-aware tolerance (see the header comment).
  float act_absmax = 0.0F;
  for (const float v : input.data()) {
    act_absmax = std::max(act_absmax, std::fabs(v));
  }
  float w_absmax = 0.0F;
  for (const float v : filters.data()) {
    w_absmax = std::max(w_absmax, std::fabs(v));
  }
  const double k = static_cast<double>(cfg.group_channels()) * cfg.kernel *
                   cfg.kernel;
  const double da = 2.0 * static_cast<double>(act_absmax) / 255.0;
  const double dw = static_cast<double>(w_absmax) / 63.0;
  const double tolerance =
      k * (static_cast<double>(act_absmax) * dw / 2.0 +
           static_cast<double>(w_absmax) * da / 2.0 + da * dw / 4.0) +
      1e-5;

  const std::size_t ckk =
      cfg.group_channels() * cfg.kernel * cfg.kernel;
  const quant::QuantizedFilters qw =
      quant::quantize_filters(filters.data(), cfg.filters, ckk);
  const quant::ActQuant aq =
      quant::choose_act_quant(-act_absmax, act_absmax);

  struct Variant {
    const char* label;
    bool implicit;
    bool relu;
  };
  const Variant variants[] = {
      {"unrolling-int8 plain", false, false},
      {"unrolling-int8 fused", false, true},
      {"implicit-int8 plain", true, false},
      {"implicit-int8 fused", true, true},
  };
  for (const auto& v : variants) {
    if (v.implicit && cfg.groups != 1) continue;
    const Tensor& reference = v.relu ? ref_fused : ref_plain;
    const std::span<const float> b =
        v.relu ? std::span<const float>(bias) : std::span<const float>();
    Tensor got(cfg.output_shape());
    try {
      if (v.implicit) {
        conv::quantized_implicit_forward(cfg, input, qw, aq, b, v.relu,
                                         got);
      } else {
        conv::quantized_gemm_forward(cfg, input, qw, aq, b, v.relu, got);
      }
    } catch (const std::exception& e) {
      fail(std::string(v.label) + " threw: " + e.what());
      continue;
    }
    ++report.int8_checks;
    if (!finite(got)) {
      fail(std::string(v.label) + " produced non-finite values");
      continue;
    }
    const double diff = max_abs_diff(reference, got);
    if (!(diff < tolerance)) {
      std::ostringstream os;
      os << v.label << " disagrees with fp32: max|diff| = " << diff
         << " (quantization tolerance " << tolerance << ')';
      fail(os.str());
    }
  }
}

void check_prepack(const ConvConfig& cfg, std::uint64_t seed,
                   std::size_t index, FuzzReport& report) {
  Rng rng(mix(seed, index) + 5);
  Tensor input(cfg.input_shape());
  input.fill_uniform(rng);
  Tensor filters(cfg.filter_shape());
  filters.fill_uniform(rng);
  std::vector<float> bias(cfg.filters);
  for (auto& b : bias) b = static_cast<float>(rng.uniform(-0.5, 0.5));

  auto fail = [&](const std::string& what) {
    add_failure(report, index, cfg, "prepacked forward: " + what);
  };

  // The staged twin of each variant below runs the same kernels with the
  // same epilogue; only the weight panels come from a per-call pack
  // instead of the cache, so agreement must be exact.
  struct Variant {
    bool implicit;
    bool relu;
  };
  constexpr Variant kVariants[] = {
      {false, false}, {false, true}, {true, false}, {true, true}};

  const auto gemm = conv::make_engine(conv::Strategy::kUnrolling);
  const conv::ImplicitGemmConv implicit;
  const conv::PackedFilters packed = conv::prepack_filters(cfg, filters);
  for (const auto& v : kVariants) {
    if (v.implicit && cfg.groups != 1) continue;
    const conv::ConvEngine& engine =
        v.implicit ? static_cast<const conv::ConvEngine&>(implicit) : *gemm;
    const std::string label = std::string(engine.name()) +
                              (v.relu ? " fused" : " plain");
    const std::span<const float> b =
        v.relu ? std::span<const float>(bias) : std::span<const float>();
    Tensor staged(cfg.output_shape());
    Tensor reused(cfg.output_shape());
    try {
      if (!engine.forward_fused(cfg, input, filters, b, v.relu, staged)) {
        fail(label + ": staged forward refused the config");
        continue;
      }
      if (!engine.forward_prepacked(cfg, input, packed, filters, b, v.relu,
                                    reused)) {
        fail(label + ": forward_prepacked refused its own pack");
        continue;
      }
    } catch (const std::exception& e) {
      fail(label + " threw: " + e.what());
      continue;
    }
    ++report.prepack_checks;
    if (!finite(reused)) {
      fail(label + " produced non-finite values");
      continue;
    }
    if (max_abs_diff(staged, reused) != 0.0) {
      fail(label + " is not bit-identical to the staged forward");
    }
  }

  // Winograd packs pre-transformed U panels instead of im2col panels,
  // but the staged path runs the identical filter transform per call, so
  // the bit-identity bar holds for both tile sizes too.
  const conv::WinogradConv wino_f2(conv::WinogradTile::kF2);
  const conv::WinogradConv wino_f4(conv::WinogradTile::kF4);
  for (const conv::WinogradConv* wino : {&wino_f2, &wino_f4}) {
    if (!wino->supports(cfg)) continue;
    for (const bool relu : {false, true}) {
      const std::string label = std::string(wino->name()) +
                                (relu ? " fused" : " plain");
      const std::span<const float> b =
          relu ? std::span<const float>(bias) : std::span<const float>();
      Tensor staged(cfg.output_shape());
      Tensor reused(cfg.output_shape());
      try {
        if (!wino->forward_fused(cfg, input, filters, b, relu, staged)) {
          fail(label + ": staged forward refused the config");
          continue;
        }
        if (!wino->forward_prepacked(cfg, input, packed, filters, b, relu,
                                     reused)) {
          fail(label + ": forward_prepacked refused its own pack");
          continue;
        }
      } catch (const std::exception& e) {
        fail(label + " threw: " + e.what());
        continue;
      }
      ++report.prepack_checks;
      if (!finite(reused)) {
        fail(label + " produced non-finite values");
        continue;
      }
      if (max_abs_diff(staged, reused) != 0.0) {
        fail(label + " is not bit-identical to the staged forward");
      }
    }
  }

  // The int8 packed overloads share every quantized step with the staged
  // ones except the weight tiling, so they face the same exact bar.
  float act_absmax = 0.0F;
  for (const float v : input.data()) {
    act_absmax = std::max(act_absmax, std::fabs(v));
  }
  const std::size_t ckk =
      cfg.group_channels() * cfg.kernel * cfg.kernel;
  const quant::QuantizedFilters qw =
      quant::quantize_filters(filters.data(), cfg.filters, ckk);
  const quant::ActQuant aq =
      quant::choose_act_quant(-act_absmax, act_absmax);
  const conv::PackedQFilters qpacked =
      conv::prepack_quantized_filters(cfg, qw);
  for (const auto& v : kVariants) {
    if (v.implicit && cfg.groups != 1) continue;
    const std::string label =
        std::string(v.implicit ? "implicit-int8" : "unrolling-int8") +
        (v.relu ? " fused" : " plain");
    const std::span<const float> b =
        v.relu ? std::span<const float>(bias) : std::span<const float>();
    Tensor staged(cfg.output_shape());
    Tensor reused(cfg.output_shape());
    try {
      if (v.implicit) {
        conv::quantized_implicit_forward(cfg, input, qw, aq, b, v.relu,
                                         staged);
        conv::quantized_implicit_forward(cfg, input, qw, qpacked, aq, b,
                                         v.relu, reused);
      } else {
        conv::quantized_gemm_forward(cfg, input, qw, aq, b, v.relu,
                                     staged);
        conv::quantized_gemm_forward(cfg, input, qw, qpacked, aq, b,
                                     v.relu, reused);
      }
    } catch (const std::exception& e) {
      fail(label + " threw: " + e.what());
      continue;
    }
    ++report.prepack_checks;
    if (!finite(reused)) {
      fail(label + " produced non-finite values");
      continue;
    }
    if (max_abs_diff(staged, reused) != 0.0) {
      fail(label + " is not bit-identical to the staged forward");
    }
  }
}

void check_tune_roundtrip(const ConvConfig& cfg, std::size_t index,
                          FuzzReport& report, const std::string& path) {
  auto& tuner = tune::Autotuner::instance();
  const tune::Mode mode_before = tuner.mode();
  const int trials_before = tuner.set_trials_for_testing(1);
  std::string path_before = tuner.set_cache_path(path);
  tuner.set_mode(tune::Mode::kMeasure);
  // Consume the lazy first-use load (the file may hold a previous
  // config's entries), then start this round-trip from an empty memo.
  (void)tuner.load_cache(path);
  tuner.clear();

  auto fail = [&](const std::string& what) {
    add_failure(report, index, cfg, "tune cache round-trip: " + what);
  };
  constexpr tune::Pass kPasses[] = {tune::Pass::kForward,
                                    tune::Pass::kBackwardData,
                                    tune::Pass::kBackwardFilter};
  try {
    std::array<tune::Decision, 3> measured;
    for (std::size_t p = 0; p < 3; ++p) {
      measured[p] = tuner.decide(cfg, kPasses[p]);
      if (!measured[p].measured) {
        fail("measure-mode decision came back unmeasured");
      }
      // The winner is the min over candidates including the default, so
      // it can never lose to the default — the acceptance bound is 5%.
      if (measured[p].baseline_ms > 0.0 &&
          measured[p].best_ms > measured[p].baseline_ms * 1.05) {
        std::ostringstream os;
        os << tune::to_string(kPasses[p]) << " pick "
           << measured[p].engine_name << " is " << measured[p].best_ms
           << " ms vs default " << measured[p].baseline_ms << " ms";
        fail(os.str());
      }
    }
    if (!tuner.save_cache(path)) {
      fail("save_cache failed");
    } else {
      tuner.clear();
      const std::size_t kept = tuner.load_cache(path);
      if (kept != 3) {
        std::ostringstream os;
        os << "reload kept " << kept << " of 3 entries";
        fail(os.str());
      }
      for (std::size_t p = 0; p < 3; ++p) {
        const tune::Decision warm = tuner.decide(cfg, kPasses[p]);
        if (!warm.measured || warm.engine_name != measured[p].engine_name) {
          std::ostringstream os;
          os << tune::to_string(kPasses[p]) << " reloaded pick '"
             << warm.engine_name << "' != measured pick '"
             << measured[p].engine_name << '\'';
          fail(os.str());
        }
      }
    }
    ++report.tune_checks;
  } catch (const std::exception& e) {
    fail(std::string("threw: ") + e.what());
  }

  tuner.clear();
  (void)tuner.set_cache_path(std::move(path_before));
  tuner.set_trials_for_testing(trials_before);
  tuner.set_mode(mode_before);
}

std::string repro_command(std::uint64_t seed, std::size_t index,
                          bool depthwise, bool winograd) {
  std::ostringstream os;
  os << "tools/conv_fuzz --seed " << seed << " --start " << index
     << " --count 1";
  if (depthwise) os << " --depthwise";
  if (winograd) os << " --winograd";
  return os.str();
}

FuzzReport run_fuzz(const FuzzOptions& options) {
  const bool poison_before = ws::set_poison_scratch(options.poison);
  FuzzReport report;
  const std::string tune_path = options.tune_cache_path.empty()
                                    ? std::string("fuzz_tune_cache.json")
                                    : options.tune_cache_path;
  for (std::size_t i = options.start; i < options.start + options.count;
       ++i) {
    const ConvConfig cfg =
        options.depthwise ? fuzz_depthwise_config(options.seed, i)
        : options.winograd ? fuzz_winograd_config(options.seed, i)
                           : fuzz_config(options.seed, i);
    const std::size_t failures_before = report.failures.size();
    check_config(cfg, options.seed, i, report);
    if (options.fused) check_fused(cfg, options.seed, i, report);
    if (options.int8) check_int8(cfg, options.seed, i, report);
    if (options.prepack) check_prepack(cfg, options.seed, i, report);
    if (options.tune_cache) {
      check_tune_roundtrip(cfg, i, report, tune_path);
    }
    if (options.log != nullptr) {
      *options.log << '[' << i << "] " << cfg.to_string() << " groups="
                   << cfg.groups << " pad=" << cfg.pad << " -> "
                   << (report.failures.size() == failures_before ? "ok"
                                                                 : "FAIL")
                   << '\n';
    }
  }
  ws::set_poison_scratch(poison_before);
  ws::trim();
  return report;
}

}  // namespace gpucnn::analysis
