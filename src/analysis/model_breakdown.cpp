#include "analysis/model_breakdown.hpp"

#include "gpusim/profiler.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gpucnn::analysis {
namespace {

using nn::LayerSpec;

// One training iteration of a convolutional layer: kernel time of the
// chosen framework's plan.
double conv_time_ms(const ConvConfig& cfg, frameworks::FrameworkId id,
                    const gpusim::DeviceSpec& dev) {
  gpusim::Profiler profiler(dev);
  for (const auto& k : frameworks::framework(id).plan(cfg).kernels) {
    profiler.launch(k);
  }
  return profiler.kernel_ms();
}

// FC layer: three large dense GEMMs (fwd, bwd-data, bwd-filter); cuBLAS
// runs these batch-wide shapes near its sustained peak.
double fc_time_ms(const LayerSpec& l, const gpusim::DeviceSpec& dev) {
  const double flops = 3.0 * 2.0 * static_cast<double>(l.input.n) *
                       static_cast<double>(l.fc_in) *
                       static_cast<double>(l.fc_out);
  const double compute_s = flops / (dev.peak_sp_gflops() * 1e9 * 0.55);
  // Weight traffic dominates memory-wise for small batches.
  const double bytes = 3.0 * (static_cast<double>(l.fc_in) * l.fc_out +
                              static_cast<double>(l.input.n) *
                                  (l.fc_in + l.fc_out)) *
                       4.0;
  const double memory_s = bytes / (dev.sustained_bandwidth_gbs() * 1e9);
  return (std::max(compute_s, memory_s) +
          3.0 * dev.launch_overhead_us * 1e-6) *
         1e3;
}

// Bandwidth-bound element-wise layer: `sweeps` full passes over input +
// output per training iteration. Caffe's auxiliary layer kernels
// (pooling, LRN, ReLU) reach only a fraction of STREAM bandwidth —
// one-thread-per-output indexing with unaligned windows — hence the
// derate.
constexpr double kAuxKernelBandwidthFraction = 0.40;

double elementwise_time_ms(const LayerSpec& l, double sweeps,
                           const gpusim::DeviceSpec& dev) {
  const double bytes =
      sweeps *
      (static_cast<double>(l.input.count()) +
       static_cast<double>(l.output.count())) *
      4.0;
  return (bytes / (dev.sustained_bandwidth_gbs() * 1e9 *
                   kAuxKernelBandwidthFraction) +
          2.0 * dev.launch_overhead_us * 1e-6) *
         1e3;
}

double layer_time_ms(const LayerSpec& l, frameworks::FrameworkId id,
                     const gpusim::DeviceSpec& dev) {
  switch (l.kind) {
    case LayerSpec::Kind::kConv:
      return conv_time_ms(l.conv, id, dev);
    case LayerSpec::Kind::kFc:
      return fc_time_ms(l, dev);
    case LayerSpec::Kind::kPool:
      // fwd read+write, bwd scatter with mask: ~2.5 sweeps.
      return elementwise_time_ms(l, 2.5, dev);
    case LayerSpec::Kind::kRelu:
    case LayerSpec::Kind::kDropout:
      return elementwise_time_ms(l, 2.0, dev);
    case LayerSpec::Kind::kLrn:
      // windowed sums forward and backward: ~5 sweeps.
      return elementwise_time_ms(l, 5.0, dev);
    case LayerSpec::Kind::kConcat:
      // copy in, copy out, and the same again for gradients.
      return elementwise_time_ms(l, 2.0, dev);
    case LayerSpec::Kind::kSoftmax:
      return elementwise_time_ms(l, 2.0, dev);
  }
  return 0.0;
}

}  // namespace

double ModelBreakdown::share(nn::LayerSpec::Kind k) const {
  const auto it = by_kind.find(k);
  if (it == by_kind.end() || total_ms <= 0.0) return 0.0;
  return it->second / total_ms;
}

ModelBreakdown breakdown_model(const nn::ModelSpec& model,
                               frameworks::FrameworkId conv_framework,
                               const gpusim::DeviceSpec& dev) {
  obs::Span span(obs::tracer(), "breakdown " + model.name, "analysis");
  obs::metrics().counter("analysis.breakdown.models").add(1);
  ModelBreakdown out;
  out.model = model.name;
  for (const auto& l : model.layers) {
    obs::Span layer_span(obs::tracer(), model.name + "/" + l.name,
                         "analysis");
    LayerTime t;
    t.name = l.name;
    t.kind = l.kind;
    t.time_ms = layer_time_ms(l, conv_framework, dev);
    layer_span.arg("simulated_ms", std::to_string(t.time_ms));
    out.by_kind[l.kind] += t.time_ms;
    out.total_ms += t.time_ms;
    out.layers.push_back(std::move(t));
  }
  return out;
}

}  // namespace gpucnn::analysis
