// Real (wall-clock) per-layer profiling of executable networks — the
// paper's §IV.A methodology ("the runtime we collected is the average
// runtime of each layer for 10 training iterations. Each training
// iteration includes one forward propagation and one backward
// propagation"), applied to this library's own CPU engines.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "nn/network.hpp"

namespace gpucnn::analysis {

struct RealLayerProfile {
  std::string name;
  std::string type;
  double forward_ms = 0.0;   ///< average per iteration
  double backward_ms = 0.0;  ///< average per iteration
  [[nodiscard]] double total_ms() const { return forward_ms + backward_ms; }
};

struct NetworkProfile {
  std::vector<RealLayerProfile> layers;
  double total_ms = 0.0;

  /// Aggregated share per layer type, in [0, 1].
  [[nodiscard]] std::map<std::string, double> share_by_type() const;
};

/// Runs `iterations` training iterations (forward + backward with a unit
/// output gradient) and averages each layer's time. The network's
/// parameters are not updated.
[[nodiscard]] NetworkProfile profile_network(nn::Network& net,
                                             const Tensor& input,
                                             std::size_t iterations = 10);

}  // namespace gpucnn::analysis
