// The paper's five parameter sweeps (§IV.B): one of (b, i, f, k, s)
// varies while the other four stay at the base 5-tuple (64, 128, 64, 11,
// 1). Figures 3 (runtime) and 5 (memory) both walk these sweeps.
#pragma once

#include <string>
#include <vector>

#include "analysis/conv_runner.hpp"
#include "core/shape.hpp"

namespace gpucnn::analysis {

/// Which of the five tuple positions a sweep varies.
enum class SweepParameter { kBatch, kInput, kFilters, kKernel, kStride };

[[nodiscard]] std::string to_string(SweepParameter p);

/// One sweep: the varied parameter and its values.
struct SweepSpec {
  SweepParameter parameter{};
  std::vector<std::size_t> values;
  /// The tuple held fixed while `parameter` varies; empty (batch == 0)
  /// means the paper's base_config(). Depthwise sweeps substitute a
  /// groups == channels base here.
  ConvConfig base{.batch = 0};

  /// Materialises the configuration for one swept value, holding the
  /// base tuple for the rest. For a grouped base, sweeping the filter
  /// count steps the channel multiplier (values must stay multiples of
  /// the group count).
  [[nodiscard]] ConvConfig config_for(std::size_t value) const;
};

/// The base 5-tuple (64, 128, 64, 11, 1) with 3 input channels (the
/// convnet-benchmarks L1 depth the tuple mirrors).
[[nodiscard]] ConvConfig base_config();

/// Post-paper depthwise base: a MobileNet-style interior layer
/// (64, 56, 64, 3, 1) with pad 1 and groups == channels == 64.
[[nodiscard]] ConvConfig depthwise_base_config();

/// The five sweeps with the paper's ranges: b in [32, 512] step 32,
/// i in [32, 256] step 16, f in [32, 512] step 16, k in [3, 31] step 2,
/// s in [1, 4].
[[nodiscard]] std::vector<SweepSpec> paper_sweeps();

/// Fig-3-style sweeps over the depthwise base: b in [32, 256] step 32,
/// i in [8, 64] step 8, f in {64..256 step 64} (the channel multiplier),
/// k in [3, 11] step 2, s in [1, 4].
[[nodiscard]] std::vector<SweepSpec> depthwise_sweeps();

/// Post-paper Winograd base: a VGG/ResNet-style interior layer
/// (64, 56, 64, 3, 1) with pad 1, ungrouped — the family the Winograd
/// engines own and cuDNN's later winograd algorithms dispatch on.
[[nodiscard]] ConvConfig winograd_base_config();

/// Fig-3-style sweeps over the Winograd base. Only the three parameters
/// that keep every point Winograd-eligible vary — b in [32, 256] step
/// 32, i in [8, 64] step 8, f in [32, 256] step 32; kernel and stride
/// are pinned at (3, 1) by the algorithm family. Pair the run with
/// frameworks::set_cudnn_winograd_plan(true) to put the cuDNN model on
/// its winograd dispatch for these points.
[[nodiscard]] std::vector<SweepSpec> winograd_sweeps();

/// Result of one sweep point: every framework evaluated on the config.
struct SweepPoint {
  std::size_t value = 0;
  ConvConfig config;
  std::vector<LayerResult> results;
};

/// Runs one sweep across all seven implementations.
[[nodiscard]] std::vector<SweepPoint> run_sweep(const SweepSpec& spec);

}  // namespace gpucnn::analysis
