// Seeded convolution-configuration fuzzer.
//
// The paper's credibility rests on seven implementation models agreeing
// over a wide parameter space, not just the Table I grid. This harness
// generates adversarial-but-valid ConvConfigs (stride > kernel,
// pad >= kernel, single-channel / single-image shapes, non-power-of-two
// sizes that stress FFT padding, grouped and odd geometries), runs each
// through every real numeric engine (direct / im2col+GEMM /
// implicit-GEMM / FFT / tiled-FFT / Winograd) on all three passes,
// cross-checks outputs against the direct reference, and validates the
// seven framework plans against the gpusim invariants (finite
// non-negative times, workspace accounting balances).
//
// Everything is deterministic per (seed, index): config `index` of seed
// `S` is identical no matter which subrange runs, so a failure is
// reproduced by `tools/conv_fuzz --seed S --start INDEX --count 1`.
// The harness runs with workspace scratch poisoning on by default so
// kernels reading recycled arena memory before writing it surface as
// NaN mismatches (see docs/TESTING.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/shape.hpp"

namespace gpucnn::analysis {

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::size_t count = 200;
  std::size_t start = 0;     ///< first config index (repro subranges)
  bool poison = true;        ///< scratch-poison the arena for the run
  bool fused = true;         ///< cross-check fused conv+bias+ReLU layers
  bool int8 = false;         ///< cross-check int8 forwards against fp32
  bool prepack = false;      ///< cross-check prepacked vs staged forwards
  bool depthwise = false;    ///< depthwise-only generator (groups == C)
  bool winograd = false;     ///< winograd-only generator (k = 3, s = 1)
  bool tune_cache = false;   ///< round-trip autotuner decisions via disk
  std::string tune_cache_path;  ///< cache file (tune_cache); "" = default
  std::ostream* log = nullptr;  ///< per-config progress when non-null
};

/// One failed check, with everything needed to rerun it.
struct FuzzFailure {
  std::size_t index = 0;
  ConvConfig config;
  std::string what;
};

/// Outcome and coverage accounting of a fuzz run.
struct FuzzReport {
  std::size_t configs_run = 0;
  std::size_t engine_checks = 0;  ///< (engine, pass) output comparisons
  std::size_t engine_skips = 0;   ///< unsupported (engine, config) pairs
  std::size_t plan_checks = 0;    ///< framework plans validated
  std::size_t plan_skips = 0;     ///< shape-limited (framework, config)
  std::size_t fused_checks = 0;   ///< fused-vs-unfused layer comparisons
  std::size_t int8_checks = 0;    ///< int8-vs-fp32 forward comparisons
  std::size_t prepack_checks = 0;  ///< prepacked-vs-staged comparisons
  std::size_t tune_checks = 0;    ///< tune-cache round-trips validated
  std::vector<FuzzFailure> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// The adversarial config at (seed, index); pure function of its
/// arguments, independent of any other index.
[[nodiscard]] ConvConfig fuzz_config(std::uint64_t seed, std::size_t index);

/// The depthwise-degenerate config at (seed, index): always
/// groups == channels, channel multipliers > 1 included — the family the
/// DepthwiseConv engine owns. Pure function of its arguments.
[[nodiscard]] ConvConfig fuzz_depthwise_config(std::uint64_t seed,
                                               std::size_t index);

/// The Winograd-eligible config at (seed, index): always k = 3, s = 1,
/// pad 0–2, ungrouped — the family both WinogradConv tile sizes own —
/// weighted toward the adversarial corners: odd output sizes whose tile
/// overhang crosses the zero-padding, C = 1 / F = 1 degenerates, and
/// inputs smaller than one tile. Pure function of its arguments.
[[nodiscard]] ConvConfig fuzz_winograd_config(std::uint64_t seed,
                                              std::size_t index);

/// Checks one config (engines + plans). Failure strings are appended to
/// `report.failures` tagged with `index`; counters accumulate.
void check_config(const ConvConfig& cfg, std::uint64_t seed,
                  std::size_t index, FuzzReport& report);

/// Cross-checks a fused conv+bias+ReLU ConvLayer against the unfused
/// ConvLayer -> ActivationLayer pair with identical parameters: forward
/// output and all three gradients must match bit for bit, on all passes.
void check_fused(const ConvConfig& cfg, std::uint64_t seed,
                 std::size_t index, FuzzReport& report);

/// Cross-checks the int8 quantized forwards (im2col+int8-GEMM and,
/// when groups == 1, tiled implicit) against the fp32 im2col+GEMM
/// reference — plain and fused bias+ReLU — under a quantization-aware
/// tolerance: K * (|a|max * dw/2 + |w|max * da/2 + da * dw/4), the
/// worst-case dequantized rounding error of a K-term dot product with
/// activation step da and weight step dw. A zero-point-correction or
/// saturation bug exceeds that bound by orders of magnitude.
void check_int8(const ConvConfig& cfg, std::uint64_t seed,
                std::size_t index, FuzzReport& report);

/// Cross-checks the prepacked forwards against their staged twins with
/// identical inputs, weights, and fused bias+ReLU epilogues: im2col+GEMM
/// and (groups == 1) implicit-GEMM in fp32, plus both int8 quantized
/// paths. Pack-once/execute-many reuses the exact panel bytes the staged
/// path packs per call, so every comparison demands bit-identity — any
/// difference is a packing-layout or offset bug, not rounding.
void check_prepack(const ConvConfig& cfg, std::uint64_t seed,
                   std::size_t index, FuzzReport& report);

/// Round-trips measured autotuner decisions for `cfg` through the disk
/// cache at `path`: decide (measure, 1 trial) on all three passes, save,
/// clear, reload, decide again — the reloaded decisions must name the
/// same engines without re-measuring, and the winner must never be more
/// than 5% slower than the static default's measured time.
void check_tune_roundtrip(const ConvConfig& cfg, std::size_t index,
                          FuzzReport& report, const std::string& path);

/// The one-line command rerunning exactly config (seed, index);
/// `depthwise` / `winograd` select the family generator's sequence.
[[nodiscard]] std::string repro_command(std::uint64_t seed,
                                        std::size_t index,
                                        bool depthwise = false,
                                        bool winograd = false);

/// Generates and checks options.count configs starting at options.start.
[[nodiscard]] FuzzReport run_fuzz(const FuzzOptions& options);

}  // namespace gpucnn::analysis
