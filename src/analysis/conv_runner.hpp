// Evaluation driver: runs one framework on one convolution configuration
// through the GPU simulator and collects everything the paper's figures
// need — runtime, memory peak, hotspot kernels, weighted metrics and the
// transfer share.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/shape.hpp"
#include "frameworks/framework.hpp"
#include "gpusim/device.hpp"
#include "gpusim/profiler.hpp"

namespace gpucnn::analysis {

/// Everything measured for one (framework, config) pair.
struct LayerResult {
  frameworks::FrameworkId framework{};
  ConvConfig config;

  bool supported = true;
  std::string unsupported_reason;
  bool out_of_memory = false;

  double runtime_ms = 0.0;   ///< kernels + exposed transfers
  double kernel_ms = 0.0;
  double transfer_ms = 0.0;
  double transfer_share = 0.0;  ///< [0, 1]
  double peak_mb = 0.0;         ///< would-be peak even when OOM

  std::vector<gpusim::KernelSummary> hotspots;
  gpusim::WeightedMetrics metrics;

  /// Kernel time split by training pass (convnet-benchmarks style).
  std::map<gpusim::Pass, double> pass_ms;
  [[nodiscard]] double forward_ms() const;
  [[nodiscard]] double backward_ms() const;  ///< data + filter + aux
};

/// Simulates one training iteration. Unsupported shapes return
/// supported=false with the reason; plans that exceed device memory set
/// out_of_memory (the paper's "program crush" cases) but still report
/// the attempted peak.
[[nodiscard]] LayerResult evaluate(frameworks::FrameworkId id,
                                   const ConvConfig& cfg,
                                   const gpusim::DeviceSpec& dev =
                                       gpusim::tesla_k40c());

/// Evaluates all seven implementations on one configuration.
[[nodiscard]] std::vector<LayerResult> evaluate_all(
    const ConvConfig& cfg,
    const gpusim::DeviceSpec& dev = gpusim::tesla_k40c());

}  // namespace gpucnn::analysis
