#include "analysis/whatif.hpp"

#include <algorithm>

#include "gpusim/profiler.hpp"

namespace gpucnn::analysis {

std::string_view to_string(Optimization o) {
  switch (o) {
    case Optimization::kFixBankConflicts:
      return "fix shared-memory bank conflicts";
    case Optimization::kReduceDivergence:
      return "reduce warp divergence";
    case Optimization::kCoalesceGlobal:
      return "coalesce global accesses";
    case Optimization::kRebalanceOccupancy:
      return "rebalance occupancy (trim registers)";
    case Optimization::kPinnedTransfers:
      return "use pinned transfer staging";
    case Optimization::kAsyncTransfers:
      return "overlap transfers with compute";
    case Optimization::kBatchSmallTransfers:
      return "batch small transfers";
  }
  return "unknown";
}

double plan_runtime_ms(const frameworks::ExecutionPlan& plan,
                       const gpusim::DeviceSpec& dev) {
  gpusim::Profiler profiler(dev);
  for (const auto& k : plan.kernels) profiler.launch(k);
  for (const auto& t : plan.transfers) profiler.transfer(t);
  return profiler.total_ms();
}

frameworks::ExecutionPlan apply_optimization(
    const frameworks::ExecutionPlan& plan, Optimization opt,
    const gpusim::DeviceSpec& dev) {
  frameworks::ExecutionPlan out = plan;
  switch (opt) {
    case Optimization::kFixBankConflicts:
      // Padding removes serialised replays; broadcast-friendly kernels
      // (efficiency > 1) are already conflict-free.
      for (auto& k : out.kernels) {
        k.shared_efficiency = std::max(k.shared_efficiency, 1.0);
      }
      break;

    case Optimization::kReduceDivergence:
      for (auto& k : out.kernels) {
        k.warp_exec_efficiency = std::max(k.warp_exec_efficiency, 0.97);
      }
      break;

    case Optimization::kCoalesceGlobal:
      for (auto& k : out.kernels) {
        k.gld_efficiency = std::max(k.gld_efficiency, 0.80);
        k.gst_efficiency = std::max(k.gst_efficiency, 0.80);
        // Coalesced requests reach DRAM without replay amplification.
        if (k.gld_dram_factor == 0.0 || k.gld_dram_factor > 1.05) {
          k.gld_dram_factor = 1.05;
        }
        if (k.gst_dram_factor == 0.0 || k.gst_dram_factor > 1.05) {
          k.gst_dram_factor = 1.05;
        }
      }
      break;

    case Optimization::kRebalanceOccupancy:
      // Where latency hiding is the binding constraint, trim register
      // pressure just enough to admit one more resident block (the
      // paper: "using them too much can reduce the total active warps").
      for (auto& k : out.kernels) {
        const auto m = gpusim::simulate_kernel(dev, k);
        if (m.latency_hiding >= 1.0) continue;
        const std::size_t target_blocks =
            m.occupancy.active_blocks_per_sm + 1;
        const std::size_t new_regs =
            dev.registers_per_sm / (k.block_threads * target_blocks);
        if (new_regs >= 32 && new_regs < k.regs_per_thread) {
          k.regs_per_thread = new_regs;
        }
      }
      break;

    case Optimization::kPinnedTransfers:
      for (auto& t : out.transfers) t.pinned = true;
      break;

    case Optimization::kAsyncTransfers:
      for (auto& t : out.transfers) {
        t.overlap = std::max(t.overlap, 0.95);
      }
      break;

    case Optimization::kBatchSmallTransfers: {
      // One fused copy per direction: the bytes add up, the per-copy
      // latency is paid once, and the worst overlap applies.
      double bytes[2] = {0.0, 0.0};
      double overlap[2] = {1.0, 1.0};
      bool pinned[2] = {true, true};
      bool any[2] = {false, false};
      for (const auto& t : out.transfers) {
        const int d =
            t.direction == gpusim::TransferDirection::kHostToDevice ? 0
                                                                    : 1;
        bytes[d] += t.bytes;
        overlap[d] = std::min(overlap[d], t.overlap);
        pinned[d] = pinned[d] && t.pinned;
        any[d] = true;
      }
      out.transfers.clear();
      if (any[0]) {
        out.transfers.push_back({"batched h2d",
                                 gpusim::TransferDirection::kHostToDevice,
                                 bytes[0], pinned[0], overlap[0]});
      }
      if (any[1]) {
        out.transfers.push_back({"batched d2h",
                                 gpusim::TransferDirection::kDeviceToHost,
                                 bytes[1], pinned[1], overlap[1]});
      }
      break;
    }
  }
  return out;
}

std::vector<WhatIfResult> what_if(frameworks::FrameworkId id,
                                  const ConvConfig& cfg,
                                  const gpusim::DeviceSpec& dev) {
  const auto plan = frameworks::framework(id).plan(cfg);
  const double baseline = plan_runtime_ms(plan, dev);
  std::vector<WhatIfResult> out;
  for (const auto opt : kAllOptimizations) {
    WhatIfResult r;
    r.optimization = opt;
    r.baseline_ms = baseline;
    r.optimized_ms = plan_runtime_ms(apply_optimization(plan, opt, dev),
                                     dev);
    out.push_back(r);
  }
  return out;
}

}  // namespace gpucnn::analysis
