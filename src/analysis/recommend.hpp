// Implementation recommendation — the paper's stated goal ("assist
// practitioners identifying the implementations that best serve their
// CNN computation needs in different scenarios", §I) as a library call.
#pragma once

#include <optional>

#include "analysis/conv_runner.hpp"

namespace gpucnn::analysis {

struct Recommendation {
  /// Fastest implementation that fits the device.
  std::optional<frameworks::FrameworkId> fastest;
  /// Lowest peak-memory implementation that fits.
  std::optional<frameworks::FrameworkId> most_memory_lean;
  /// Fastest among implementations within `balance_factor` x of the
  /// leanest footprint (the paper's "good balance between memory, speed
  /// and flexibility" — it names cuDNN).
  std::optional<frameworks::FrameworkId> balanced;

  std::vector<LayerResult> results;  ///< the full comparison
};

/// Evaluates all implementations on `cfg` and derives the three picks.
/// Implementations that are shape-unsupported or exceed device memory are
/// excluded from every pick.
[[nodiscard]] Recommendation recommend(
    const ConvConfig& cfg, double balance_factor = 2.0,
    const gpusim::DeviceSpec& dev = gpusim::tesla_k40c());

}  // namespace gpucnn::analysis
