#include "analysis/conv_runner.hpp"

#include "gpusim/memory_tracker.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gpucnn::analysis {

double LayerResult::forward_ms() const {
  const auto it = pass_ms.find(gpusim::Pass::kForward);
  return it == pass_ms.end() ? 0.0 : it->second;
}

double LayerResult::backward_ms() const {
  double total = 0.0;
  for (const auto& [pass, ms] : pass_ms) {
    if (pass != gpusim::Pass::kForward) total += ms;
  }
  return total;
}

LayerResult evaluate(frameworks::FrameworkId id, const ConvConfig& cfg,
                     const gpusim::DeviceSpec& dev) {
  LayerResult result;
  result.framework = id;
  result.config = cfg;

  const std::string fw_name(frameworks::to_string(id));
  obs::Span span(obs::tracer(), "evaluate " + fw_name, "analysis");
  span.arg("config", cfg.to_string());
  obs::metrics().counter("analysis.evaluate.calls").add(1);

  const auto& fw = frameworks::framework(id);
  const auto support = fw.supports(cfg);
  if (!support.ok) {
    obs::metrics().counter("analysis.evaluate.unsupported").add(1);
    result.supported = false;
    result.unsupported_reason = support.reason;
    return result;
  }

  const auto plan = fw.plan(cfg);

  // Memory: replay the allocations through the tracker; the attempted
  // peak is reported even when the device capacity is exceeded.
  gpusim::MemoryTracker tracker(dev);
  for (const auto& item : plan.memory) {
    try {
      tracker.allocate(item.label, item.bytes);
    } catch (const gpusim::OutOfDeviceMemory&) {
      result.out_of_memory = true;
    }
  }
  result.peak_mb = plan.peak_bytes() / 1048576.0;

  // Runtime and metrics.
  gpusim::Profiler profiler(dev);
  for (const auto& kernel : plan.kernels) {
    result.pass_ms[kernel.pass] += profiler.launch(kernel).duration_ms;
  }
  for (const auto& transfer : plan.transfers) profiler.transfer(transfer);
  result.kernel_ms = profiler.kernel_ms();
  result.transfer_ms = profiler.transfer_ms();
  result.runtime_ms = profiler.total_ms();
  result.transfer_share = profiler.transfer_share();
  result.hotspots = profiler.hotspots();
  result.metrics = profiler.weighted_metrics();

  if (result.out_of_memory) {
    obs::metrics().counter("analysis.evaluate.oom").add(1);
  }
  obs::metrics()
      .histogram("analysis.evaluate.runtime_ms")
      .record(result.runtime_ms);
  obs::metrics().histogram("analysis.evaluate.peak_mb").record(result.peak_mb);
  obs::metrics()
      .histogram("analysis.evaluate.transfer_share")
      .record(result.transfer_share);
  profiler.replay_trace(obs::tracer(), fw_name + " " + cfg.to_string());
  return result;
}

std::vector<LayerResult> evaluate_all(const ConvConfig& cfg,
                                      const gpusim::DeviceSpec& dev) {
  std::vector<LayerResult> out;
  out.reserve(frameworks::kAllFrameworks.size());
  for (const auto id : frameworks::all_frameworks()) {
    out.push_back(evaluate(id, cfg, dev));
  }
  return out;
}

}  // namespace gpucnn::analysis
