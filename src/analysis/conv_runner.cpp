#include "analysis/conv_runner.hpp"

#include "gpusim/memory_tracker.hpp"

namespace gpucnn::analysis {

double LayerResult::forward_ms() const {
  const auto it = pass_ms.find(gpusim::Pass::kForward);
  return it == pass_ms.end() ? 0.0 : it->second;
}

double LayerResult::backward_ms() const {
  double total = 0.0;
  for (const auto& [pass, ms] : pass_ms) {
    if (pass != gpusim::Pass::kForward) total += ms;
  }
  return total;
}

LayerResult evaluate(frameworks::FrameworkId id, const ConvConfig& cfg,
                     const gpusim::DeviceSpec& dev) {
  LayerResult result;
  result.framework = id;
  result.config = cfg;

  const auto& fw = frameworks::framework(id);
  const auto support = fw.supports(cfg);
  if (!support.ok) {
    result.supported = false;
    result.unsupported_reason = support.reason;
    return result;
  }

  const auto plan = fw.plan(cfg);

  // Memory: replay the allocations through the tracker; the attempted
  // peak is reported even when the device capacity is exceeded.
  gpusim::MemoryTracker tracker(dev);
  for (const auto& item : plan.memory) {
    try {
      tracker.allocate(item.label, item.bytes);
    } catch (const gpusim::OutOfDeviceMemory&) {
      result.out_of_memory = true;
    }
  }
  result.peak_mb = plan.peak_bytes() / 1048576.0;

  // Runtime and metrics.
  gpusim::Profiler profiler(dev);
  for (const auto& kernel : plan.kernels) {
    result.pass_ms[kernel.pass] += profiler.launch(kernel).duration_ms;
  }
  for (const auto& transfer : plan.transfers) profiler.transfer(transfer);
  result.kernel_ms = profiler.kernel_ms();
  result.transfer_ms = profiler.transfer_ms();
  result.runtime_ms = profiler.total_ms();
  result.transfer_share = profiler.transfer_share();
  result.hotspots = profiler.hotspots();
  result.metrics = profiler.weighted_metrics();
  return result;
}

std::vector<LayerResult> evaluate_all(const ConvConfig& cfg,
                                      const gpusim::DeviceSpec& dev) {
  std::vector<LayerResult> out;
  out.reserve(frameworks::kAllFrameworks.size());
  for (const auto id : frameworks::all_frameworks()) {
    out.push_back(evaluate(id, cfg, dev));
  }
  return out;
}

}  // namespace gpucnn::analysis
