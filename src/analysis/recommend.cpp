#include "analysis/recommend.hpp"

namespace gpucnn::analysis {

Recommendation recommend(const ConvConfig& cfg, double balance_factor,
                         const gpusim::DeviceSpec& dev) {
  check(balance_factor >= 1.0, "balance factor must be >= 1");
  Recommendation rec;
  rec.results = evaluate_all(cfg, dev);

  const LayerResult* fastest = nullptr;
  const LayerResult* leanest = nullptr;
  for (const auto& r : rec.results) {
    if (!r.supported || r.out_of_memory) continue;
    if (fastest == nullptr || r.runtime_ms < fastest->runtime_ms) {
      fastest = &r;
    }
    if (leanest == nullptr || r.peak_mb < leanest->peak_mb) {
      leanest = &r;
    }
  }
  if (fastest == nullptr) return rec;  // nothing fits
  rec.fastest = fastest->framework;
  rec.most_memory_lean = leanest->framework;

  const LayerResult* balanced = nullptr;
  for (const auto& r : rec.results) {
    if (!r.supported || r.out_of_memory) continue;
    if (r.peak_mb > balance_factor * leanest->peak_mb) continue;
    if (balanced == nullptr || r.runtime_ms < balanced->runtime_ms) {
      balanced = &r;
    }
  }
  if (balanced != nullptr) rec.balanced = balanced->framework;
  return rec;
}

}  // namespace gpucnn::analysis
