#include "gpusim/profiler.hpp"

#include <algorithm>
#include <map>

#include "obs/metrics.hpp"

namespace gpucnn::gpusim {

const KernelMetrics& Profiler::launch(const KernelProfile& profile) {
  LaunchRecord rec;
  rec.profile = profile;
  rec.metrics = simulate_kernel(dev_, profile);
  obs::metrics().counter("sim.kernel.launches").add(1);
  obs::metrics()
      .histogram("sim.kernel.duration_ms")
      .record(rec.metrics.duration_ms);
  records_.push_back(std::move(rec));
  return records_.back().metrics;
}

void Profiler::transfer(const Transfer& t) { transfers_.push_back(t); }

double Profiler::kernel_ms() const {
  double total = 0.0;
  for (const auto& r : records_) total += r.metrics.duration_ms;
  return total;
}

double Profiler::transfer_ms() const {
  return total_exposed_ms(dev_, transfers_);
}

double Profiler::total_ms() const { return kernel_ms() + transfer_ms(); }

double Profiler::transfer_share() const {
  const double total = total_ms();
  return total > 0.0 ? transfer_ms() / total : 0.0;
}

std::vector<KernelSummary> Profiler::hotspots() const {
  std::map<std::string, KernelSummary> by_name;
  for (const auto& r : records_) {
    auto& s = by_name[r.profile.name];
    s.name = r.profile.name;
    s.kind = r.profile.kind;
    ++s.launches;
    s.total_ms += r.metrics.duration_ms;
  }
  std::vector<KernelSummary> out;
  out.reserve(by_name.size());
  const double total = kernel_ms();
  for (auto& [name, s] : by_name) {
    s.share = total > 0.0 ? s.total_ms / total : 0.0;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.total_ms > b.total_ms;
  });
  return out;
}

WeightedMetrics Profiler::weighted_metrics(double coverage) const {
  // Aggregate per kernel name, walk hotspots until `coverage` of kernel
  // time is covered, then runtime-weight the metric averages across the
  // covered launches.
  const auto hot = hotspots();
  double covered = 0.0;
  std::vector<std::string> top_names;
  for (const auto& h : hot) {
    top_names.push_back(h.name);
    covered += h.share;
    if (covered >= coverage) break;
  }

  WeightedMetrics wm;
  double weight_total = 0.0;
  for (const auto& r : records_) {
    if (std::find(top_names.begin(), top_names.end(), r.profile.name) ==
        top_names.end()) {
      continue;
    }
    const double w = r.metrics.duration_ms;
    weight_total += w;
    wm.achieved_occupancy += w * r.metrics.achieved_occupancy * 100.0;
    wm.ipc += w * r.metrics.ipc;
    wm.warp_execution_efficiency +=
        w * r.metrics.warp_execution_efficiency;
    wm.gld_efficiency += w * r.metrics.gld_efficiency;
    wm.gst_efficiency += w * r.metrics.gst_efficiency;
    wm.shared_efficiency += w * r.metrics.shared_efficiency;
  }
  if (weight_total > 0.0) {
    wm.achieved_occupancy /= weight_total;
    wm.ipc /= weight_total;
    wm.warp_execution_efficiency /= weight_total;
    wm.gld_efficiency /= weight_total;
    wm.gst_efficiency /= weight_total;
    wm.shared_efficiency /= weight_total;
  }
  return wm;
}

void Profiler::reset() {
  records_.clear();
  transfers_.clear();
}

void Profiler::replay_trace(obs::Tracer& tracer,
                            const std::string& label) const {
  if (!tracer.enabled()) return;
  const auto gpu = tracer.virtual_track("sim:gpu");
  const auto pcie = tracer.virtual_track("sim:pcie");
  // Start both tracks together so the region's copies line up under it.
  const double t0 = std::max(tracer.cursor_us(gpu), tracer.cursor_us(pcie));
  tracer.advance_cursor(gpu, t0);
  tracer.advance_cursor(pcie, t0);

  const double total_us = total_ms() * 1e3;
  tracer.complete_event(gpu, label, "sim.region", t0, total_us,
                        {{"kernel_ms", std::to_string(kernel_ms())},
                         {"transfer_ms", std::to_string(transfer_ms())},
                         {"device", dev_.name}});
  for (const auto& r : records_) {
    tracer.append_at_cursor(
        gpu, r.profile.name, "sim.kernel", r.metrics.duration_ms * 1e3,
        {{"class", to_string(r.profile.kind)},
         {"pass", to_string(r.profile.pass)},
         {"bottleneck", to_string(r.metrics.bottleneck)},
         {"achieved_occupancy", std::to_string(r.metrics.achieved_occupancy)},
         {"ipc", std::to_string(r.metrics.ipc)}});
  }
  if (transfer_ms() > 0.0) {
    tracer.append_at_cursor(gpu, "exposed transfers", "sim.transfer",
                            transfer_ms() * 1e3);
  }
  for (const auto& t : transfers_) {
    tracer.append_at_cursor(
        pcie, t.label.empty() ? "copy" : t.label, "sim.transfer",
        raw_transfer_ms(dev_, t) * 1e3,
        {{"direction", t.direction == TransferDirection::kHostToDevice
                           ? "host_to_device"
                           : "device_to_host"},
         {"bytes", std::to_string(t.bytes)},
         {"pinned", t.pinned ? "true" : "false"},
         {"overlap", std::to_string(t.overlap)},
         {"exposed_ms", std::to_string(exposed_transfer_ms(dev_, t))}});
  }
  // Close the region: both tracks resume after it.
  tracer.advance_cursor(gpu, t0 + total_us);
  tracer.advance_cursor(pcie, t0 + total_us);
}

}  // namespace gpucnn::gpusim
