// The CUDA occupancy calculation for compute capability 3.5, reproducing
// the analysis of paper §V.C.1: occupancy is limited by register usage,
// shared-memory usage, block size, or the hardware block/warp caps —
// whichever bites first.
#pragma once

#include <cstddef>
#include <string_view>

#include "gpusim/device.hpp"

namespace gpucnn::gpusim {

/// Which resource capped the number of resident blocks.
enum class OccupancyLimiter {
  kWarps,         // warp/thread count per SM
  kRegisters,     // register file
  kSharedMemory,  // shared memory
  kBlocks,        // max resident blocks per SM
};

[[nodiscard]] std::string_view to_string(OccupancyLimiter l);

struct Occupancy {
  std::size_t active_blocks_per_sm = 0;
  std::size_t active_warps_per_sm = 0;
  std::size_t active_threads_per_sm = 0;
  double theoretical = 0.0;  ///< active warps / max warps, in [0, 1]
  OccupancyLimiter limiter = OccupancyLimiter::kWarps;
};

/// Computes the theoretical occupancy of a kernel with the given launch
/// configuration on `dev`. Throws gpucnn::Error when the configuration
/// cannot launch at all (zero threads, block too large, registers or
/// shared memory exceeding hardware limits).
[[nodiscard]] Occupancy compute_occupancy(const DeviceSpec& dev,
                                          std::size_t block_threads,
                                          std::size_t regs_per_thread,
                                          std::size_t smem_per_block);

}  // namespace gpucnn::gpusim
