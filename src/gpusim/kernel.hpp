// Kernel descriptors for the GPU performance model.
//
// A KernelProfile captures the structural properties a real CUDA kernel
// exposes to nvprof: launch geometry, register/shared-memory footprint,
// useful work (FLOPs and bytes), and the access-quality factors the paper
// profiles (coalescing, bank conflicts, divergence). The execution model
// (exec_model.hpp) turns a profile into a duration plus the full metric
// set of the paper's Figure 6.
#pragma once

#include <cstddef>
#include <string>

namespace gpucnn::gpusim {

/// Coarse functional classes used for Figure 4's hotspot grouping
/// ("we group the similar kernels who have the same functionalities").
enum class KernelClass {
  kGemm,        // matrix-matrix / matrix-vector products
  kUnroll,      // im2col / col2im lowering
  kFft,         // forward FFT
  kFftInverse,  // inverse FFT
  kTranspose,   // data layout conversion
  kDirectConv,  // direct convolution kernels (cuda-convnet2)
  kDepthwise,   // depthwise (groups == channels) convolution kernels
  kWinograd,    // Winograd tile-GEMM batched multiplies (cuDNN winograd)
  kPointwise,   // bias/activation/scale helpers
  kPrecompute,  // preparatory kernels (cuDNN pre-transforms, Theano prep)
};

[[nodiscard]] const char* to_string(KernelClass c);

/// Which training pass a kernel belongs to. Enables per-pass runtime
/// splits (the convnet-benchmarks presentation the paper builds on).
enum class Pass { kForward, kBackwardData, kBackwardFilter, kAuxiliary };

[[nodiscard]] const char* to_string(Pass p);

/// Structural description of one kernel launch.
struct KernelProfile {
  std::string name;                ///< e.g. "sgemm_128x64", "im2col_gpu_kernel"
  KernelClass kind = KernelClass::kGemm;
  Pass pass = Pass::kAuxiliary;

  // Launch configuration.
  std::size_t block_threads = 256;
  std::size_t grid_blocks = 1024;

  // Per-thread / per-block resource usage (Table II of the paper).
  std::size_t regs_per_thread = 32;
  std::size_t smem_per_block = 0;  ///< bytes

  // Useful work.
  double flops = 0.0;                ///< single-precision operations
  double global_load_bytes = 0.0;    ///< requested (useful) load traffic
  double global_store_bytes = 0.0;   ///< requested (useful) store traffic
  double shared_bytes = 0.0;         ///< requested shared-memory traffic

  // Access-quality factors, each observable as an nvprof metric.
  double gld_efficiency = 1.0;     ///< requested / required load throughput
  double gst_efficiency = 1.0;     ///< requested / required store throughput

  // DRAM amplification. nvprof's gld/gst efficiency counts transaction
  // replays, most of which hit L2 rather than DRAM; the *_dram_factor
  // fields give the true DRAM amplification of the requested traffic.
  // 0 means "derive from 1/efficiency" (uncached scatter/gather).
  double gld_dram_factor = 0.0;
  double gst_dram_factor = 0.0;
  double shared_efficiency = 1.0;  ///< >1 possible via broadcast
  double warp_exec_efficiency = 1.0;  ///< 1 - divergence penalty

  // Implementation quality.
  double compute_efficiency = 0.6;  ///< sustainable fraction of peak FLOPs
                                    ///< at full latency hiding
  double achieved_occupancy_factor = 0.85;  ///< achieved / theoretical
  double occupancy_needed = 0.18;  ///< occupancy sufficient for full
                                   ///< latency hiding (ILP-dependent)
  double instr_per_flop = 0.75;    ///< non-FMA overhead instructions; used
                                   ///< by the IPC estimate

  /// Total requested global traffic.
  [[nodiscard]] double global_bytes() const {
    return global_load_bytes + global_store_bytes;
  }
};

}  // namespace gpucnn::gpusim
