#include "gpusim/timeline.hpp"

#include <algorithm>
#include <map>

#include "core/error.hpp"

namespace gpucnn::gpusim {

TimelineResult schedule(std::span<const TimelineItem> items) {
  TimelineResult result;
  result.start_ms.resize(items.size());
  result.end_ms.resize(items.size());
  std::map<std::size_t, double> stream_free;

  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& item = items[i];
    check(item.duration_ms >= 0.0, "negative duration");
    double ready = stream_free[item.stream];
    for (const std::size_t dep : item.dependencies) {
      check(dep < i, "dependency must reference an earlier item");
      ready = std::max(ready, result.end_ms[dep]);
    }
    result.start_ms[i] = ready;
    result.end_ms[i] = ready + item.duration_ms;
    stream_free[item.stream] = result.end_ms[i];
    result.makespan_ms = std::max(result.makespan_ms, result.end_ms[i]);
  }

  // Compute-stream idle time: makespan minus stream-0 busy time.
  double busy = 0.0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].stream == 0) busy += items[i].duration_ms;
  }
  result.compute_idle_fraction =
      result.makespan_ms > 0.0
          ? std::max(0.0, (result.makespan_ms - busy) / result.makespan_ms)
          : 0.0;
  return result;
}

void append_trace(obs::Tracer& tracer, std::span<const TimelineItem> items,
                  const TimelineResult& result, const std::string& prefix) {
  if (!tracer.enabled() || items.empty()) return;
  check(result.start_ms.size() == items.size() &&
            result.end_ms.size() == items.size(),
        "schedule result does not match the item list");

  // One virtual track per stream, shifted past whatever is already there.
  std::map<std::size_t, std::uint32_t> tracks;
  double offset_us = 0.0;
  for (const auto& item : items) {
    if (tracks.contains(item.stream)) continue;
    const auto track = tracer.virtual_track(
        prefix + ":stream" + std::to_string(item.stream));
    tracks.emplace(item.stream, track);
    offset_us = std::max(offset_us, tracer.cursor_us(track));
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& item = items[i];
    tracer.complete_event(
        tracks.at(item.stream), item.label,
        item.kind == TimelineItem::Kind::kKernel ? "sim.kernel"
                                                 : "sim.transfer",
        offset_us + result.start_ms[i] * 1e3,
        (result.end_ms[i] - result.start_ms[i]) * 1e3,
        {{"stream", std::to_string(item.stream)}});
  }
  for (const auto& [stream, track] : tracks) {
    tracer.advance_cursor(track, offset_us + result.makespan_ms * 1e3);
  }
}

}  // namespace gpucnn::gpusim
