// Roofline-style analytical execution model.
//
// A kernel's duration is bounded by three pipelines:
//   compute : flops / (peak * compute-eff * WEE * latency-hiding)
//   global  : required bytes (requested / coalescing eff) / sustained BW
//   shared  : required traffic (requested / bank-conflict eff) / shared BW
// The slowest pipeline wins, plus a fixed launch overhead. Latency hiding
// degrades when achieved occupancy falls below the kernel's
// occupancy_needed (paper §V.C.1: "long access latencies can be hidden by
// zero-overhead context switching when there are enough parallel
// threads").
//
// Every nvprof metric of the paper's Figure 6 is derived from the same
// factors that determine the duration, so metrics and runtimes are
// mutually consistent by construction.
#pragma once

#include "gpusim/device.hpp"
#include "gpusim/kernel.hpp"
#include "gpusim/occupancy.hpp"

namespace gpucnn::gpusim {

/// What bounded the kernel's duration.
enum class Bottleneck { kCompute, kGlobalMemory, kSharedMemory, kLaunch };

[[nodiscard]] const char* to_string(Bottleneck b);

/// The nvprof-style result of one simulated kernel launch: the five
/// metrics and two shared-memory events the paper collects (§V.C), plus
/// the duration and diagnostic fields.
struct KernelMetrics {
  double duration_ms = 0.0;
  Bottleneck bottleneck = Bottleneck::kCompute;

  // Occupancy.
  Occupancy occupancy;
  double achieved_occupancy = 0.0;  // [0, 1]

  // The paper's five metrics.
  double ipc = 0.0;
  double warp_execution_efficiency = 0.0;  // percent
  double gld_efficiency = 0.0;             // percent
  double gst_efficiency = 0.0;             // percent
  double shared_efficiency = 0.0;          // percent

  // The two events: shared-memory bank-conflict replays.
  double shared_load_bank_conflicts = 0.0;
  double shared_store_bank_conflicts = 0.0;

  // Diagnostics.
  double sustained_gflops = 0.0;
  double latency_hiding = 0.0;  // [0, 1]
};

/// Evaluates one kernel launch on `dev`.
[[nodiscard]] KernelMetrics simulate_kernel(const DeviceSpec& dev,
                                            const KernelProfile& profile);

}  // namespace gpucnn::gpusim
