#include "gpusim/kernel.hpp"

namespace gpucnn::gpusim {

const char* to_string(KernelClass c) {
  switch (c) {
    case KernelClass::kGemm:
      return "GEMM";
    case KernelClass::kUnroll:
      return "unroll";
    case KernelClass::kFft:
      return "FFT";
    case KernelClass::kFftInverse:
      return "FFT-inverse";
    case KernelClass::kTranspose:
      return "transpose";
    case KernelClass::kDirectConv:
      return "direct-conv";
    case KernelClass::kDepthwise:
      return "depthwise";
    case KernelClass::kWinograd:
      return "winograd";
    case KernelClass::kPointwise:
      return "pointwise";
    case KernelClass::kPrecompute:
      return "precompute";
  }
  return "unknown";
}

const char* to_string(Pass p) {
  switch (p) {
    case Pass::kForward:
      return "forward";
    case Pass::kBackwardData:
      return "backward-data";
    case Pass::kBackwardFilter:
      return "backward-filter";
    case Pass::kAuxiliary:
      return "auxiliary";
  }
  return "unknown";
}

}  // namespace gpucnn::gpusim
