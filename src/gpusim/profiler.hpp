// nvprof-like profiler over the simulator (paper §III.B, §V).
//
// The profiler records every simulated kernel launch and transfer of an
// execution plan, then answers the paper's questions:
//   * hotspot kernels: per-kernel runtime share (Figure 4);
//   * top-kernel weighted metrics: runtime-weighted averages of the five
//     metrics over the kernels that dominate runtime (Figure 6 — "take a
//     weighted average of those top kernels", §V.C);
//   * data-transfer share of total runtime (Figure 7).
#pragma once

#include <string>
#include <vector>

#include "gpusim/exec_model.hpp"
#include "gpusim/transfer.hpp"
#include "obs/trace.hpp"

namespace gpucnn::gpusim {

/// One recorded launch.
struct LaunchRecord {
  KernelProfile profile;
  KernelMetrics metrics;
};

/// Aggregated view of one kernel name.
struct KernelSummary {
  std::string name;
  KernelClass kind = KernelClass::kGemm;
  std::size_t launches = 0;
  double total_ms = 0.0;
  double share = 0.0;  ///< fraction of kernel time, [0, 1]
};

/// Runtime-weighted metric averages (the Figure 6 rows).
struct WeightedMetrics {
  double achieved_occupancy = 0.0;      // percent
  double ipc = 0.0;
  double warp_execution_efficiency = 0.0;  // percent
  double gld_efficiency = 0.0;             // percent
  double gst_efficiency = 0.0;             // percent
  double shared_efficiency = 0.0;          // percent
};

class Profiler {
 public:
  explicit Profiler(const DeviceSpec& dev) : dev_(dev) {}

  /// Simulates `profile` and records the launch; returns its metrics.
  const KernelMetrics& launch(const KernelProfile& profile);

  /// Records a host/device transfer.
  void transfer(const Transfer& t);

  [[nodiscard]] const DeviceSpec& device() const { return dev_; }
  [[nodiscard]] const std::vector<LaunchRecord>& launches() const {
    return records_;
  }

  /// Total simulated kernel time.
  [[nodiscard]] double kernel_ms() const;
  /// Exposed (non-overlapped) transfer time.
  [[nodiscard]] double transfer_ms() const;
  /// Kernel time + exposed transfer time.
  [[nodiscard]] double total_ms() const;
  /// Transfer share of total runtime, in [0, 1] (Figure 7).
  [[nodiscard]] double transfer_share() const;

  /// Per-kernel-name aggregation sorted by runtime, descending (Fig. 4).
  [[nodiscard]] std::vector<KernelSummary> hotspots() const;

  /// Runtime-weighted metrics over the top kernels covering at least
  /// `coverage` of kernel time (Fig. 6; the paper weights "top kernels"
  /// by their runtime share).
  [[nodiscard]] WeightedMetrics weighted_metrics(double coverage = 0.9) const;

  /// Replays the recorded launches and transfers onto the tracer's
  /// virtual "sim:gpu" and "sim:pcie" tracks in *simulated* time: an
  /// enclosing region named `label`, every kernel back to back, then the
  /// exposed-transfer tail (so the region's extent equals total_ms());
  /// raw copies ride the pcie track. Successive replays append after
  /// whatever is already on the tracks, forming one continuous simulated
  /// timeline. No-op while the tracer is disabled.
  void replay_trace(obs::Tracer& tracer, const std::string& label) const;

  void reset();

 private:
  DeviceSpec dev_;
  std::vector<LaunchRecord> records_;
  std::vector<Transfer> transfers_;
};

}  // namespace gpucnn::gpusim
