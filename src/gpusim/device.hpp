// Device model of the paper's testbed GPU: NVIDIA Tesla K40c (Kepler
// GK110B). All constants come from §III.A of the paper and the CUDA
// occupancy documentation for compute capability 3.5.
#pragma once

#include <cstddef>

namespace gpucnn::gpusim {

/// Static hardware description used by the occupancy calculator and the
/// execution model.
struct DeviceSpec {
  const char* name = "Tesla K40c";

  // Compute resources (paper §III.A).
  std::size_t sm_count = 15;
  std::size_t cores_per_sm = 192;
  double core_clock_ghz = 0.745;
  std::size_t warp_size = 32;

  // Per-SM scheduling limits (CC 3.5).
  std::size_t max_threads_per_sm = 2048;
  std::size_t max_warps_per_sm = 64;
  std::size_t max_blocks_per_sm = 16;
  std::size_t max_threads_per_block = 1024;

  // Per-SM storage (paper: 256KB register file = 65536 4-byte registers,
  // 48KB shared memory).
  std::size_t registers_per_sm = 65536;
  std::size_t max_registers_per_thread = 255;
  std::size_t shared_bytes_per_sm = 48 * 1024;
  std::size_t shared_banks = 32;

  // Memory system.
  double device_memory_mb = 12288.0;       // 12 GB GDDR5
  double memory_bandwidth_gbs = 288.0;     // peak
  double sustained_bandwidth_fraction = 0.78;  // achievable on STREAM-like
                                               // access, per K40 reports

  // PCIe gen3 x16 host link.
  double pcie_pageable_gbs = 6.0;
  double pcie_pinned_gbs = 10.5;
  double pcie_latency_us = 8.0;

  // Kernel launch overhead.
  double launch_overhead_us = 5.0;

  /// Peak single-precision throughput in GFLOP/s: 2 ops per core-cycle.
  [[nodiscard]] double peak_sp_gflops() const {
    return 2.0 * static_cast<double>(sm_count) *
           static_cast<double>(cores_per_sm) * core_clock_ghz;
  }

  /// Aggregate shared-memory bandwidth in GB/s: each SM can service one
  /// 4-byte word per bank per clock.
  [[nodiscard]] double shared_bandwidth_gbs() const {
    return static_cast<double>(sm_count) *
           static_cast<double>(shared_banks) * 4.0 * core_clock_ghz;
  }

  /// Sustained global-memory bandwidth in GB/s.
  [[nodiscard]] double sustained_bandwidth_gbs() const {
    return memory_bandwidth_gbs * sustained_bandwidth_fraction;
  }
};

/// The default device used across benches: the paper's K40c.
[[nodiscard]] inline DeviceSpec tesla_k40c() { return DeviceSpec{}; }

/// GTX Titan X (Maxwell GM200) — the GPU that succeeded the K40 in the
/// deep-learning benchmarking literature; used by bench_device_comparison
/// to check that the paper's findings carry over to a newer part.
/// CC 5.2: 24 SMs x 128 cores at 1.0 GHz, 96 KB shared per SM (48 KB per
/// block), 336 GB/s.
[[nodiscard]] inline DeviceSpec gtx_titan_x() {
  DeviceSpec dev;
  dev.name = "GTX Titan X";
  dev.sm_count = 24;
  dev.cores_per_sm = 128;
  dev.core_clock_ghz = 1.0;
  dev.max_blocks_per_sm = 32;
  dev.shared_bytes_per_sm = 96 * 1024;
  dev.device_memory_mb = 12288.0;
  dev.memory_bandwidth_gbs = 336.0;
  dev.sustained_bandwidth_fraction = 0.80;
  dev.pcie_pinned_gbs = 11.5;
  return dev;
}

}  // namespace gpucnn::gpusim
