// Stream timeline scheduling: a structural model of CUDA streams.
//
// The flat profiler charges every exposed transfer to the critical path
// via a scalar overlap factor. This module models the mechanism behind
// that factor: work items (kernels, copies) are placed on streams, items
// on one stream serialise, dependencies order items across streams, and
// the makespan emerges. The async-transfer ablation bench uses it to show
// *why* Caffe's prefetch thread erases the Fig. 7 overhead: the copy for
// iteration i+1 rides the copy stream while iteration i computes.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace gpucnn::gpusim {

struct TimelineItem {
  enum class Kind { kKernel, kTransfer };
  Kind kind = Kind::kKernel;
  std::string label;
  std::size_t stream = 0;  ///< items on one stream serialise in order
  double duration_ms = 0.0;
  /// Indices (into the item span) that must finish before this starts.
  std::vector<std::size_t> dependencies;
};

struct TimelineResult {
  double makespan_ms = 0.0;
  std::vector<double> start_ms;
  std::vector<double> end_ms;
  /// Fraction of the makespan where the compute stream (stream 0) idles.
  double compute_idle_fraction = 0.0;
};

/// List-schedules items in declaration order: each starts when its stream
/// is free and all dependencies have finished. Throws on forward
/// references (an item may only depend on earlier items) or negative
/// durations.
[[nodiscard]] TimelineResult schedule(std::span<const TimelineItem> items);

/// Renders a scheduled timeline onto the tracer's virtual tracks
/// "<prefix>:stream<s>", one per stream, using the schedule's simulated
/// start/end times. Appends after anything already on those tracks.
/// No-op while the tracer is disabled.
void append_trace(obs::Tracer& tracer, std::span<const TimelineItem> items,
                  const TimelineResult& result, const std::string& prefix);

}  // namespace gpucnn::gpusim
