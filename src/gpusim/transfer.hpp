// Host <-> device transfer model (paper §V.D).
//
// Transfer time follows a latency + bandwidth model over PCIe. Each
// framework declares how its transfers are issued: pageable vs pinned
// staging, and how much of the copy a prefetch thread or async stream
// overlaps with compute (Caffe's data-prefetch thread hides nearly all of
// its input copies, which is why the paper measures ~0% for it).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "gpusim/device.hpp"

namespace gpucnn::gpusim {

enum class TransferDirection { kHostToDevice, kDeviceToHost };

/// One host/device copy in an execution plan.
struct Transfer {
  std::string label;            ///< e.g. "input batch", "col buffer"
  TransferDirection direction = TransferDirection::kHostToDevice;
  double bytes = 0.0;
  bool pinned = false;          ///< staged through pinned memory
  double overlap = 0.0;         ///< fraction hidden behind compute [0, 1]
};

/// Wall-clock cost of the copy before overlap is applied.
[[nodiscard]] double raw_transfer_ms(const DeviceSpec& dev,
                                     const Transfer& t);

/// Cost that actually lands on the critical path (after overlap).
[[nodiscard]] double exposed_transfer_ms(const DeviceSpec& dev,
                                         const Transfer& t);

/// Sum of exposed costs of a transfer sequence.
[[nodiscard]] double total_exposed_ms(const DeviceSpec& dev,
                                      const std::vector<Transfer>& ts);

}  // namespace gpucnn::gpusim
