// Device-memory accounting (paper §V.B, Figure 5).
//
// MemoryTracker mimics what nvidia-smi observes: a running total of live
// cudaMalloc'd bytes and its peak. Frameworks register persistent
// allocations (parameters, activations) and transient workspaces; the
// peak across one training iteration is the Figure 5 quantity. Exceeding
// the device capacity raises OutOfDeviceMemory — the "program crush" the
// paper observes for FFT implementations at extreme shapes.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/error.hpp"
#include "gpusim/device.hpp"

namespace gpucnn::gpusim {

/// Thrown when a simulated allocation exceeds device memory.
class OutOfDeviceMemory : public Error {
 public:
  using Error::Error;
};

/// Opaque allocation handle.
using AllocId = std::size_t;

class MemoryTracker {
 public:
  explicit MemoryTracker(const DeviceSpec& dev) : capacity_bytes_(
      dev.device_memory_mb * 1024.0 * 1024.0) {}

  /// Records an allocation; throws OutOfDeviceMemory when the running
  /// total would exceed device capacity.
  AllocId allocate(const std::string& label, double bytes);

  /// Releases a previous allocation.
  void release(AllocId id);

  [[nodiscard]] double current_bytes() const { return current_; }
  [[nodiscard]] double peak_bytes() const { return peak_; }
  [[nodiscard]] double peak_mb() const { return peak_ / (1024.0 * 1024.0); }
  [[nodiscard]] double capacity_bytes() const { return capacity_bytes_; }
  [[nodiscard]] std::size_t live_allocations() const { return live_.size(); }

  /// Labelled breakdown of live allocations (diagnostics, DESIGN audit).
  [[nodiscard]] std::vector<std::pair<std::string, double>> live() const;

  /// Clears all allocations and the peak.
  void reset();

 private:
  struct Allocation {
    std::string label;
    double bytes = 0.0;
  };

  double capacity_bytes_;
  double current_ = 0.0;
  double peak_ = 0.0;
  AllocId next_id_ = 1;
  std::unordered_map<AllocId, Allocation> live_;
};

}  // namespace gpucnn::gpusim
