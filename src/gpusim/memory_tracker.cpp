#include "gpusim/memory_tracker.hpp"

#include <algorithm>

namespace gpucnn::gpusim {

AllocId MemoryTracker::allocate(const std::string& label, double bytes) {
  check(bytes >= 0.0, "allocation size must be non-negative");
  if (current_ + bytes > capacity_bytes_) {
    throw OutOfDeviceMemory("device memory exhausted allocating '" + label +
                            "' (" + std::to_string(bytes / 1048576.0) +
                            " MB on top of " +
                            std::to_string(current_ / 1048576.0) + " MB)");
  }
  current_ += bytes;
  peak_ = std::max(peak_, current_);
  const AllocId id = next_id_++;
  live_.emplace(id, Allocation{label, bytes});
  return id;
}

void MemoryTracker::release(AllocId id) {
  const auto it = live_.find(id);
  check(it != live_.end(), "release of unknown allocation id");
  current_ -= it->second.bytes;
  live_.erase(it);
}

std::vector<std::pair<std::string, double>> MemoryTracker::live() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(live_.size());
  for (const auto& [id, alloc] : live_) {
    out.emplace_back(alloc.label, alloc.bytes);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

void MemoryTracker::reset() {
  current_ = 0.0;
  peak_ = 0.0;
  live_.clear();
}

}  // namespace gpucnn::gpusim
