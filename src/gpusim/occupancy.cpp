#include "gpusim/occupancy.hpp"

#include <algorithm>
#include <limits>

#include "core/error.hpp"

namespace gpucnn::gpusim {

std::string_view to_string(OccupancyLimiter l) {
  switch (l) {
    case OccupancyLimiter::kWarps:
      return "warps";
    case OccupancyLimiter::kRegisters:
      return "registers";
    case OccupancyLimiter::kSharedMemory:
      return "shared-memory";
    case OccupancyLimiter::kBlocks:
      return "blocks";
  }
  return "unknown";
}

Occupancy compute_occupancy(const DeviceSpec& dev, std::size_t block_threads,
                            std::size_t regs_per_thread,
                            std::size_t smem_per_block) {
  check(block_threads > 0, "block must have at least one thread");
  check(block_threads <= dev.max_threads_per_block,
        "block exceeds max threads per block");
  check(regs_per_thread <= dev.max_registers_per_thread,
        "kernel exceeds per-thread register limit");
  check(smem_per_block <= dev.shared_bytes_per_sm,
        "kernel exceeds shared memory per SM");

  const std::size_t warps_per_block =
      (block_threads + dev.warp_size - 1) / dev.warp_size;

  // Candidate block counts per limiting resource.
  const std::size_t by_warps = dev.max_warps_per_sm / warps_per_block;
  const std::size_t regs_per_block =
      std::max<std::size_t>(regs_per_thread, 1) * block_threads;
  const std::size_t by_regs = dev.registers_per_sm / regs_per_block;
  const std::size_t by_smem =
      smem_per_block == 0
          ? std::numeric_limits<std::size_t>::max()
          : dev.shared_bytes_per_sm / smem_per_block;
  const std::size_t by_blocks = dev.max_blocks_per_sm;

  Occupancy occ;
  occ.active_blocks_per_sm = by_warps;
  occ.limiter = OccupancyLimiter::kWarps;
  if (by_regs < occ.active_blocks_per_sm) {
    occ.active_blocks_per_sm = by_regs;
    occ.limiter = OccupancyLimiter::kRegisters;
  }
  if (by_smem < occ.active_blocks_per_sm) {
    occ.active_blocks_per_sm = by_smem;
    occ.limiter = OccupancyLimiter::kSharedMemory;
  }
  if (by_blocks < occ.active_blocks_per_sm) {
    occ.active_blocks_per_sm = by_blocks;
    occ.limiter = OccupancyLimiter::kBlocks;
  }

  check(occ.active_blocks_per_sm > 0,
        "kernel cannot fit a single block on an SM");
  occ.active_warps_per_sm = occ.active_blocks_per_sm * warps_per_block;
  occ.active_threads_per_sm = occ.active_warps_per_sm * dev.warp_size;
  occ.theoretical = static_cast<double>(occ.active_warps_per_sm) /
                    static_cast<double>(dev.max_warps_per_sm);
  return occ;
}

}  // namespace gpucnn::gpusim
