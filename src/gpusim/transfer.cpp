#include "gpusim/transfer.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace gpucnn::gpusim {

double raw_transfer_ms(const DeviceSpec& dev, const Transfer& t) {
  check(t.bytes >= 0.0, "transfer bytes must be non-negative");
  check(t.overlap >= 0.0 && t.overlap <= 1.0, "overlap must be in [0, 1]");
  const double bw_gbs = t.pinned ? dev.pcie_pinned_gbs : dev.pcie_pageable_gbs;
  return dev.pcie_latency_us * 1e-3 + t.bytes / (bw_gbs * 1e9) * 1e3;
}

double exposed_transfer_ms(const DeviceSpec& dev, const Transfer& t) {
  return raw_transfer_ms(dev, t) * (1.0 - t.overlap);
}

double total_exposed_ms(const DeviceSpec& dev,
                        const std::vector<Transfer>& ts) {
  double total = 0.0;
  for (const auto& t : ts) total += exposed_transfer_ms(dev, t);
  return total;
}

}  // namespace gpucnn::gpusim
