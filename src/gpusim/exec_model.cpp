#include "gpusim/exec_model.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace gpucnn::gpusim {

const char* to_string(Bottleneck b) {
  switch (b) {
    case Bottleneck::kCompute:
      return "compute";
    case Bottleneck::kGlobalMemory:
      return "global-memory";
    case Bottleneck::kSharedMemory:
      return "shared-memory";
    case Bottleneck::kLaunch:
      return "launch-overhead";
  }
  return "unknown";
}

KernelMetrics simulate_kernel(const DeviceSpec& dev,
                              const KernelProfile& p) {
  check(p.gld_efficiency > 0.0 && p.gst_efficiency > 0.0 &&
            p.shared_efficiency > 0.0,
        "access efficiencies must be positive");
  check(p.warp_exec_efficiency > 0.0 && p.warp_exec_efficiency <= 1.0,
        "warp execution efficiency must be in (0, 1]");
  check(p.compute_efficiency > 0.0 && p.compute_efficiency <= 1.0,
        "compute efficiency must be in (0, 1]");

  KernelMetrics m;
  m.occupancy =
      compute_occupancy(dev, p.block_threads, p.regs_per_thread,
                        p.smem_per_block);
  m.achieved_occupancy = std::min(
      1.0, m.occupancy.theoretical * p.achieved_occupancy_factor);

  // Latency hiding: full when achieved occupancy reaches the kernel's
  // need (high-ILP kernels need fewer warps), degrading linearly below.
  m.latency_hiding =
      std::min(1.0, m.achieved_occupancy / std::max(p.occupancy_needed,
                                                    1e-6));

  // --- the three pipelines -------------------------------------------
  const double peak_flops = dev.peak_sp_gflops() * 1e9;
  const double compute_s =
      p.flops > 0.0
          ? p.flops / (peak_flops * p.compute_efficiency *
                       p.warp_exec_efficiency * m.latency_hiding)
          : 0.0;

  const double load_amp =
      p.gld_dram_factor > 0.0 ? p.gld_dram_factor : 1.0 / p.gld_efficiency;
  const double store_amp =
      p.gst_dram_factor > 0.0 ? p.gst_dram_factor : 1.0 / p.gst_efficiency;
  const double required_global = p.global_load_bytes * load_amp +
                                 p.global_store_bytes * store_amp;
  const double global_s =
      required_global > 0.0
          ? required_global /
                (dev.sustained_bandwidth_gbs() * 1e9 * m.latency_hiding)
          : 0.0;

  const double required_shared = p.shared_bytes / p.shared_efficiency;
  const double shared_s =
      required_shared > 0.0
          ? required_shared / (dev.shared_bandwidth_gbs() * 1e9)
          : 0.0;

  const double pipelines =
      std::max({compute_s, global_s, shared_s});
  const double launch_s = dev.launch_overhead_us * 1e-6;
  m.duration_ms = (pipelines + launch_s) * 1e3;

  if (pipelines <= launch_s * 0.5) {
    m.bottleneck = Bottleneck::kLaunch;
  } else if (pipelines == compute_s) {
    m.bottleneck = Bottleneck::kCompute;
  } else if (pipelines == global_s) {
    m.bottleneck = Bottleneck::kGlobalMemory;
  } else {
    m.bottleneck = Bottleneck::kSharedMemory;
  }

  // --- derived nvprof metrics ----------------------------------------
  m.warp_execution_efficiency = p.warp_exec_efficiency * 100.0;
  m.gld_efficiency = p.gld_efficiency * 100.0;
  m.gst_efficiency = p.gst_efficiency * 100.0;
  m.shared_efficiency = p.shared_efficiency * 100.0;

  // Instruction estimate: FMA pairs plus per-flop overhead instructions
  // plus load/store instructions; divergence inflates the warp-level
  // count (inactive lanes still occupy issue slots).
  const double thread_instr =
      p.flops / 2.0 * (1.0 + p.instr_per_flop) +
      (p.global_bytes() + p.shared_bytes) / 16.0;
  const double warp_instr =
      thread_instr /
      (static_cast<double>(dev.warp_size) * p.warp_exec_efficiency);
  const double total_cycles = m.duration_ms * 1e-3 *
                              dev.core_clock_ghz * 1e9 *
                              static_cast<double>(dev.sm_count);
  m.ipc = total_cycles > 0.0 ? std::min(warp_instr / total_cycles, 7.0)
                             : 0.0;

  m.sustained_gflops =
      m.duration_ms > 0.0 ? p.flops / (m.duration_ms * 1e6) : 0.0;

  // Bank-conflict events: replays beyond the conflict-free transaction
  // count. One conflict-free transaction serves warp_size * 4 bytes.
  const double shared_transactions =
      p.shared_bytes / (static_cast<double>(dev.warp_size) * 4.0);
  const double replays =
      shared_transactions * std::max(0.0, 1.0 / p.shared_efficiency - 1.0);
  m.shared_load_bank_conflicts = replays * 0.6;
  m.shared_store_bank_conflicts = replays * 0.4;

  return m;
}

}  // namespace gpucnn::gpusim
