// Tensor shapes and the convolution configuration 5-tuple used throughout
// the paper: (b, i, f, k, s) = (mini-batch, input size, filter count,
// kernel size, stride), plus channels and padding which the paper holds
// implicit (channels default to the layer's input depth, padding to 0).
#pragma once

#include <cstddef>
#include <ostream>
#include <string>

#include "core/error.hpp"

namespace gpucnn {

/// Shape of a 4-D tensor in NCHW layout.
struct TensorShape {
  std::size_t n = 0;  ///< batch
  std::size_t c = 0;  ///< channels
  std::size_t h = 0;  ///< height
  std::size_t w = 0;  ///< width

  [[nodiscard]] std::size_t count() const { return n * c * h * w; }
  [[nodiscard]] std::size_t spatial() const { return h * w; }

  friend bool operator==(const TensorShape&, const TensorShape&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const TensorShape& s) {
  return os << '[' << s.n << ',' << s.c << ',' << s.h << ',' << s.w << ']';
}

/// The paper's (b, i, f, k, s) 5-tuple, extended with input channels and
/// zero padding. Inputs and kernels are square, matching the paper's
/// evaluation space.
struct ConvConfig {
  std::size_t batch = 64;     ///< b: mini-batch size
  std::size_t input = 128;    ///< i: square input spatial size
  std::size_t channels = 3;   ///< input depth (paper: layer-dependent)
  std::size_t filters = 64;   ///< f: number of filters (output depth)
  std::size_t kernel = 11;    ///< k: square kernel size
  std::size_t stride = 1;     ///< s: stride
  std::size_t pad = 0;        ///< zero padding on each border
  std::size_t groups = 1;     ///< filter groups (AlexNet-style); each
                              ///< group sees channels/groups inputs

  /// Output spatial size; throws if the geometry is invalid.
  [[nodiscard]] std::size_t output() const {
    check(kernel >= 1 && stride >= 1, "kernel and stride must be positive");
    check(input + 2 * pad >= kernel, "kernel larger than padded input");
    check(groups >= 1 && channels % groups == 0 && filters % groups == 0,
          "channels and filters must divide evenly into groups");
    return (input + 2 * pad - kernel) / stride + 1;
  }

  /// Input channels seen by one group's filters.
  [[nodiscard]] std::size_t group_channels() const {
    return channels / groups;
  }
  /// Filters produced by one group.
  [[nodiscard]] std::size_t group_filters() const {
    return filters / groups;
  }

  [[nodiscard]] TensorShape input_shape() const {
    return {batch, channels, input, input};
  }
  [[nodiscard]] TensorShape filter_shape() const {
    return {filters, group_channels(), kernel, kernel};
  }
  [[nodiscard]] TensorShape output_shape() const {
    const std::size_t o = output();
    return {batch, filters, o, o};
  }

  /// FLOPs of one forward pass (multiply–add counted as 2 ops), the
  /// standard cost model for direct/unrolled convolution. Grouping
  /// divides the per-filter reduction depth.
  [[nodiscard]] double forward_flops() const {
    const auto o = static_cast<double>(output());
    return 2.0 * static_cast<double>(batch) * static_cast<double>(filters) *
           static_cast<double>(group_channels()) * o * o *
           static_cast<double>(kernel) * static_cast<double>(kernel);
  }

  /// Paper-style rendering "(b,i,f,k,s)".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const ConvConfig&, const ConvConfig&) = default;
};

std::ostream& operator<<(std::ostream& os, const ConvConfig& c);

/// The five benchmarking configurations of Table I. Channel depths follow
/// the convnet-benchmarks layer definitions the paper cites ([27]).
/// Conv1 (128,128,96,11,1) c=3; Conv2 (128,128,96,3,1) c=64;
/// Conv3 (128,32,128,9,1) c=128; Conv4 (128,16,128,7,1) c=128;
/// Conv5 (128,13,384,3,1) c=384.
struct TableOne {
  static constexpr std::size_t kCount = 5;
  /// Returns configuration Conv{index+1}.
  static ConvConfig layer(std::size_t index);
  /// Human label "Conv1".."Conv5".
  static std::string name(std::size_t index);
};

}  // namespace gpucnn
