// A small fixed-size thread pool with a low-overhead chunked parallel_for.
//
// The numeric kernels (GEMM, FFT batches, im2col, direct convolution) are
// data-parallel over independent ranges; parallel_for dispatches the range
// to worker threads and joins before returning. The pool is created once
// per process (see global_pool()) so kernels never pay thread start-up
// costs on the hot path.
//
// Dispatch design (the part that matters for fine-grained loops):
//   * Bodies are passed by lightweight non-owning reference
//     (ChunkFnRef — a {void*, fn*} pair), never std::function, so a
//     dispatch performs no heap allocation and no virtual call setup.
//   * A dispatch publishes one Job; workers claim chunk indices from the
//     job's shared atomic counter (fetch_add) instead of popping tasks
//     from a mutex-guarded queue. The pool mutex is touched once to
//     publish and once to retire a job — not once per chunk.
//   * The calling thread claims chunks too (caller-runs), so a dispatch
//     on an idle pool costs one cv broadcast, not a context switch.
//   * Nested parallel_for from inside a pool task runs inline; the outer
//     loop already saturates the workers, and inlining cannot deadlock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace gpucnn {

/// Non-owning reference to a callable with signature
/// void(std::size_t chunk_begin, std::size_t chunk_end). Valid only for
/// the duration of the parallel_for call that receives it — which always
/// joins before returning, so stack-allocated lambdas are safe.
///
/// Only lvalue callables can bind: constructing from a temporary is
/// deleted, so a ChunkFnRef stored past the originating full-expression
/// cannot silently point at a dead functor. The parallel_for entry
/// points accept temporaries by first binding them to a named (lvalue)
/// parameter that lives for the whole dispatch.
class ChunkFnRef {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, ChunkFnRef>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design,
  // call sites pass lambdas directly.
  ChunkFnRef(F& f) noexcept
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* obj, std::size_t lo, std::size_t hi) {
          (*static_cast<F*>(obj))(lo, hi);
        }) {}

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, ChunkFnRef>>>
  ChunkFnRef(const F&& f) = delete;  ///< no rvalue temporaries

  void operator()(std::size_t lo, std::size_t hi) const {
    call_(obj_, lo, hi);
  }

 private:
  void* obj_;
  void (*call_)(void*, std::size_t, std::size_t);
};

/// Fixed-size worker pool executing [begin, end) index ranges.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Runs body(chunk_begin, chunk_end) over disjoint chunks covering
  /// [begin, end); chunks are claimed dynamically by workers and the
  /// calling thread. Blocks until all chunks finish. Exceptions thrown
  /// by `body` are rethrown on the calling thread (first one wins).
  void parallel_for_chunks(std::size_t begin, std::size_t end,
                           ChunkFnRef body);

  /// Same, accepting any callable — including a temporary lambda at
  /// the call site, which binds to the named parameter (an lvalue that
  /// outlives the joining dispatch) before a ChunkFnRef is formed.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, ChunkFnRef>>>
  void parallel_for_chunks(std::size_t begin, std::size_t end, F&& body) {
    parallel_for_chunks(begin, end, ChunkFnRef(body));
  }

  /// Runs body(i) for every i in [begin, end). Same execution contract
  /// as parallel_for_chunks; accepts any callable, no std::function.
  template <typename F>
  void parallel_for(std::size_t begin, std::size_t end, F&& body) {
    auto chunk = [&body](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    };
    parallel_for_chunks(begin, end, ChunkFnRef(chunk));
  }

 private:
  struct Job;

  void worker_loop();
  /// Claims and runs chunks of `job` until the claim counter is
  /// exhausted; records the first exception in the job.
  void work_on(Job& job, bool caller);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;  ///< workers: a job was published
  std::condition_variable job_done_;    ///< caller: chunks done / detached
  Job* current_job_ = nullptr;          ///< guarded by mutex_
  bool stop_ = false;
};

/// Process-wide pool shared by all kernels.
ThreadPool& global_pool();

namespace detail {
/// Out-of-line guts of the free parallel_for (serial fallback + metrics
/// live here so the template below stays tiny).
void parallel_for_impl(std::size_t begin, std::size_t end, ChunkFnRef body,
                       std::size_t serial_threshold);
}  // namespace detail

/// Convenience: chunked parallel loop on the global pool. Falls back to
/// a serial loop for tiny ranges where dispatch overhead would dominate.
template <typename F>
void parallel_for(std::size_t begin, std::size_t end, F&& body,
                  std::size_t serial_threshold = 2) {
  auto chunk = [&body](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
  };
  detail::parallel_for_impl(begin, end, ChunkFnRef(chunk),
                            serial_threshold);
}

/// Chunk-granular variant on the global pool.
void parallel_for_chunks(std::size_t begin, std::size_t end, ChunkFnRef body);

/// Same, accepting any callable (see the ThreadPool member overload).
template <typename F,
          typename = std::enable_if_t<
              !std::is_same_v<std::remove_cvref_t<F>, ChunkFnRef>>>
void parallel_for_chunks(std::size_t begin, std::size_t end, F&& body) {
  parallel_for_chunks(begin, end, ChunkFnRef(body));
}

}  // namespace gpucnn
