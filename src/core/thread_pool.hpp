// A small fixed-size thread pool with a chunked parallel_for.
//
// The numeric kernels (GEMM, FFT batches, im2col, direct convolution) are
// data-parallel over independent ranges; parallel_for dispatches contiguous
// chunks to worker threads and joins before returning. The pool is created
// once per process (see global_pool()) so kernels never pay thread start-up
// costs on the hot path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gpucnn {

/// Fixed-size worker pool executing [begin, end) index ranges.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Runs body(i) for every i in [begin, end), splitting the range into
  /// one contiguous chunk per worker. Blocks until all chunks finish.
  /// Exceptions thrown by `body` are rethrown on the calling thread.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Like parallel_for but hands each worker its whole [chunk_begin,
  /// chunk_end) range, letting the body amortise per-chunk setup.
  void parallel_for_chunks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& body);

 private:
  struct Invocation;
  struct Task {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::shared_ptr<Invocation> invocation;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  void worker_loop();
  void run_task(const Task& task);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::vector<Task> queue_;
  bool stop_ = false;
};

/// Process-wide pool shared by all kernels.
ThreadPool& global_pool();

/// Convenience: chunked parallel loop on the global pool. Falls back to a
/// serial loop for tiny ranges where dispatch overhead would dominate.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t serial_threshold = 2);

/// Chunk-granular variant on the global pool.
void parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace gpucnn
