#include "core/tensor.hpp"

#include <algorithm>
#include <cmath>

namespace gpucnn {

float& Tensor::at(std::size_t n, std::size_t c, std::size_t h,
                  std::size_t w) {
  check(n < shape_.n && c < shape_.c && h < shape_.h && w < shape_.w,
        "tensor index out of range");
  return base()[offset(n, c, h, w)];
}

float Tensor::at(std::size_t n, std::size_t c, std::size_t h,
                 std::size_t w) const {
  check(n < shape_.n && c < shape_.c && h < shape_.h && w < shape_.w,
        "tensor index out of range");
  return base()[offset(n, c, h, w)];
}

void Tensor::bind_external(float* data, std::size_t capacity) {
  check(data != nullptr, "bind_external requires a buffer");
  check(shape_.count() <= capacity,
        "bind_external: current shape exceeds the bound capacity");
  data_.clear();
  data_.shrink_to_fit();
  view_data_ = data;
  view_capacity_ = capacity;
}

void Tensor::unbind() {
  if (!is_view()) return;
  view_data_ = nullptr;
  view_capacity_ = 0;
  shape_ = {};
}

void Tensor::reshape(TensorShape shape) {
  check(shape.count() == count(),
        "reshape must preserve the element count");
  shape_ = shape;
}

void Tensor::resize(TensorShape shape) {
  if (is_view()) {
    // Planned activations: the producer overwrites every element, so a
    // view resize is a reshape within the arena slot — no zeroing.
    check(shape.count() <= view_capacity_,
          "resize exceeds the bound view capacity");
    shape_ = shape;
    return;
  }
  shape_ = shape;
  data_.assign(shape.count(), 0.0F);
}

void Tensor::fill(float value) {
  const auto d = data();
  std::fill(d.begin(), d.end(), value);
}

void Tensor::fill_uniform(Rng& rng, float lo, float hi) {
  for (auto& v : data()) v = static_cast<float>(rng.uniform(lo, hi));
}

void Tensor::fill_normal(Rng& rng, float mean, float stddev) {
  for (auto& v : data()) v = static_cast<float>(rng.normal(mean, stddev));
}

double Tensor::sum() const {
  double total = 0.0;
  for (const float v : data()) total += v;
  return total;
}

float Tensor::max_abs() const {
  float m = 0.0F;
  for (const float v : data()) m = std::max(m, std::fabs(v));
  return m;
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  check(a.shape() == b.shape(), "shape mismatch in max_abs_diff");
  double m = 0.0;
  const auto da = a.data();
  const auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(da[i]) - db[i]));
  }
  return m;
}

}  // namespace gpucnn
