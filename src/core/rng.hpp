// Deterministic pseudo-random number generation.
//
// Every experiment in the reproduction is seeded, so runs are exactly
// repeatable. The generator is xoshiro256**, seeded via SplitMix64, which
// is both faster and of higher statistical quality than std::mt19937 while
// keeping the library free of platform-dependent distributions (we
// implement uniform/normal draws ourselves so sequences are identical on
// every standard library).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace gpucnn {

/// xoshiro256** seeded deterministically from a single 64-bit value.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialises the state from `seed` via SplitMix64.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
    has_cached_normal_ = false;
  }

  /// Next raw 64-bit draw.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform draw in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform draw in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal draw (Box–Muller, cached pair).
  double normal() {
    if (has_cached_normal_) {
      has_cached_normal_ = false;
      return cached_normal_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    cached_normal_ = radius * std::sin(angle);
    has_cached_normal_ = true;
    return radius * std::cos(angle);
  }

  /// Normal draw with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace gpucnn
