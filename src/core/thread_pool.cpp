#include "core/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gpucnn {
namespace {

// Set while a thread is executing pool work; nested parallel_for calls
// from inside a task run serially instead of deadlocking on the pool.
thread_local bool tls_in_pool_task = false;

// Chunks per dispatch: a few per worker so dynamic claiming can absorb
// uneven chunk costs, but few enough that the fetch_add per chunk stays
// negligible next to the work.
constexpr std::size_t kChunksPerWorker = 4;

obs::Counter& calls_counter() {
  static obs::Counter& c = obs::metrics().counter("core.parallel_for.calls");
  return c;
}
obs::Counter& caller_chunks_counter() {
  static obs::Counter& c =
      obs::metrics().counter("core.parallel_for.chunks_caller");
  return c;
}
obs::Counter& worker_chunks_counter() {
  static obs::Counter& c =
      obs::metrics().counter("core.parallel_for.chunks_worker");
  return c;
}
obs::Histogram& items_histogram() {
  static obs::Histogram& h =
      obs::metrics().histogram("core.parallel_for.items");
  return h;
}

}  // namespace

// One published dispatch. Lives on the calling thread's stack; workers
// only hold a pointer between attaching (under the pool mutex, while
// the job is still published) and detaching (refs drop), and the caller
// retires the job only after refs reaches zero.
struct ThreadPool::Job {
  ChunkFnRef body;
  std::size_t begin;
  std::size_t end;
  std::size_t chunk_len;  ///< nominal chunk length (last chunk clamps)
  std::size_t nchunks;
  std::atomic<std::size_t> next{0};  ///< next chunk index to claim
  std::atomic<std::size_t> done{0};  ///< chunks fully executed
  std::atomic<int> refs{0};          ///< threads currently inside the job
  std::exception_ptr first_error;    ///< guarded by the pool mutex

  // nchunks is re-derived from the rounded-up chunk length: asking for
  // 16 chunks of 100 items yields 15 chunks of 7 — never a trailing
  // chunk whose start would fall past `end`.
  Job(ChunkFnRef b, std::size_t lo, std::size_t hi, std::size_t chunks)
      : body(b),
        begin(lo),
        end(hi),
        chunk_len((hi - lo + chunks - 1) / chunks),
        nchunks((hi - lo + chunk_len - 1) / chunk_len) {}

  [[nodiscard]] bool exhausted() const {
    return next.load(std::memory_order_relaxed) >= nchunks;
  }
};

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads != 0 ? threads : std::thread::hardware_concurrency();
  n = std::max<std::size_t>(n, 1);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::work_on(Job& job, bool caller) {
  const bool was_in_task = tls_in_pool_task;
  tls_in_pool_task = true;
  std::size_t executed = 0;
  std::exception_ptr error;
  for (;;) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.nchunks) break;
    const std::size_t lo = job.begin + c * job.chunk_len;
    const std::size_t hi = std::min(lo + job.chunk_len, job.end);
    try {
      // One span per chunk on the executing thread's track, so a trace
      // shows how evenly the pool's workers are loaded.
      if (obs::tracer().enabled()) {
        obs::Span span(obs::tracer(),
                       "chunk[" + std::to_string(hi - lo) + "]", "core");
        job.body(lo, hi);
      } else {
        job.body(lo, hi);
      }
    } catch (...) {
      if (!error) error = std::current_exception();
    }
    ++executed;
    job.done.fetch_add(1, std::memory_order_acq_rel);
  }
  tls_in_pool_task = was_in_task;
  if (executed > 0) {
    (caller ? caller_chunks_counter() : worker_chunks_counter())
        .add(static_cast<std::int64_t>(executed));
  }
  if (error) {
    const std::scoped_lock lock(mutex_);
    if (!job.first_error) job.first_error = error;
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock lock(mutex_);
      work_ready_.wait(lock, [this] {
        return stop_ || (current_job_ != nullptr && !current_job_->exhausted());
      });
      if (stop_) return;
      job = current_job_;
      // Attach under the lock: the job cannot be retired while refs > 0.
      job->refs.fetch_add(1, std::memory_order_relaxed);
    }
    work_on(*job, /*caller=*/false);
    if (job->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last thread out: the caller may be waiting to retire the job.
      const std::scoped_lock lock(mutex_);
      job_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for_chunks(std::size_t begin, std::size_t end,
                                     ChunkFnRef body) {
  if (begin >= end) return;
  if (tls_in_pool_task || workers_.size() == 1) {
    // Nested call from inside a pool task: run inline. The outer loop
    // already saturates the workers.
    body(begin, end);
    return;
  }

  const std::size_t total = end - begin;
  const std::size_t chunks =
      std::min(total, workers_.size() * kChunksPerWorker);
  Job job(body, begin, end, chunks);
  bool pool_busy = false;
  {
    const std::scoped_lock lock(mutex_);
    if (current_job_ != nullptr) {
      // Another caller thread already owns the pool; run this dispatch
      // inline rather than queueing behind it.
      pool_busy = true;
    } else {
      current_job_ = &job;
    }
  }
  if (pool_busy) {
    // The body runs after the lock is released — it may be arbitrarily
    // slow and must not block worker attach/detach or the owner's
    // retire wait. tls_in_pool_task is set so a nested parallel_for
    // from inside the body also runs inline instead of re-locking the
    // (non-recursive) pool mutex.
    const bool was_in_task = tls_in_pool_task;
    tls_in_pool_task = true;
    try {
      body(begin, end);
    } catch (...) {
      tls_in_pool_task = was_in_task;
      throw;
    }
    tls_in_pool_task = was_in_task;
    return;
  }
  work_ready_.notify_all();

  // Caller-runs: claim chunks alongside the workers.
  work_on(job, /*caller=*/true);

  {
    std::unique_lock lock(mutex_);
    job_done_.wait(lock, [&job] {
      return job.done.load(std::memory_order_acquire) == job.nchunks &&
             job.refs.load(std::memory_order_acquire) == 0;
    });
    // Retire under the same lock acquisition that observed refs == 0:
    // no worker can attach concurrently, so `job` may leave scope.
    current_job_ = nullptr;
  }
  if (job.first_error) std::rethrow_exception(job.first_error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

namespace detail {

void parallel_for_impl(std::size_t begin, std::size_t end, ChunkFnRef body,
                       std::size_t serial_threshold) {
  if (end <= begin) return;
  if (end - begin < serial_threshold) {
    body(begin, end);
    return;
  }
  calls_counter().add(1);
  items_histogram().record(static_cast<double>(end - begin));
  if (obs::tracer().enabled()) {
    obs::Span span(obs::tracer(),
                   "parallel_for[" + std::to_string(end - begin) + "]",
                   "core");
    global_pool().parallel_for_chunks(begin, end, body);
  } else {
    global_pool().parallel_for_chunks(begin, end, body);
  }
}

}  // namespace detail

void parallel_for_chunks(std::size_t begin, std::size_t end,
                         ChunkFnRef body) {
  if (end <= begin) return;
  calls_counter().add(1);
  items_histogram().record(static_cast<double>(end - begin));
  global_pool().parallel_for_chunks(begin, end, body);
}

}  // namespace gpucnn
