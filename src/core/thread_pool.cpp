#include "core/thread_pool.hpp"

#include <algorithm>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gpucnn {
namespace {
// Set while a thread is executing pool work; nested parallel_for calls
// from inside a task run serially instead of deadlocking on the pool.
thread_local bool tls_in_pool_task = false;
}  // namespace

// Per-parallel_for control block so concurrent invocations from different
// caller threads never share completion state.
struct ThreadPool::Invocation {
  std::size_t pending = 0;
  std::exception_ptr first_error;
};

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads != 0 ? threads : std::thread::hardware_concurrency();
  n = std::max<std::size_t>(n, 1);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_task(const Task& task) {
  std::exception_ptr error;
  const bool was_in_task = tls_in_pool_task;
  tls_in_pool_task = true;
  try {
    // One span per chunk on the executing thread's track, so a trace
    // shows how evenly the pool's workers are loaded.
    obs::Span span(obs::tracer(),
                   "chunk[" + std::to_string(task.end - task.begin) + "]",
                   "core");
    (*task.body)(task.begin, task.end);
  } catch (...) {
    error = std::current_exception();
  }
  tls_in_pool_task = was_in_task;
  {
    const std::scoped_lock lock(mutex_);
    if (error && !task.invocation->first_error) {
      task.invocation->first_error = error;
    }
    if (--task.invocation->pending == 0) work_done_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      work_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.back());
      queue_.pop_back();
    }
    run_task(task);
  }
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  if (tls_in_pool_task || workers_.size() == 1) {
    // Nested call from inside a pool task: run inline. The outer loop
    // already saturates the workers.
    body(begin, end);
    return;
  }
  obs::metrics().counter("core.parallel_for.calls").add(1);
  obs::metrics()
      .histogram("core.parallel_for.items")
      .record(static_cast<double>(end - begin));
  obs::Span span(obs::tracer(),
                 "parallel_for[" + std::to_string(end - begin) + "]", "core");
  const std::size_t total = end - begin;
  const std::size_t chunks = std::min(total, workers_.size());
  const std::size_t base = total / chunks;
  const std::size_t remainder = total % chunks;

  auto invocation = std::make_shared<Invocation>();
  {
    const std::scoped_lock lock(mutex_);
    invocation->pending = chunks;
    std::size_t cursor = begin;
    for (std::size_t i = 0; i < chunks; ++i) {
      const std::size_t len = base + (i < remainder ? 1 : 0);
      queue_.push_back(Task{&body, invocation, cursor, cursor + len});
      cursor += len;
    }
  }
  work_ready_.notify_all();

  // Caller-runs: help drain the queue instead of idling. Tasks from other
  // invocations may be executed too; that is still forward progress.
  for (;;) {
    Task task;
    {
      const std::scoped_lock lock(mutex_);
      if (queue_.empty()) break;
      task = std::move(queue_.back());
      queue_.pop_back();
    }
    run_task(task);
  }

  std::unique_lock lock(mutex_);
  work_done_.wait(lock, [&] { return invocation->pending == 0; });
  if (invocation->first_error) std::rethrow_exception(invocation->first_error);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_chunks(begin, end,
                      [&body](std::size_t lo, std::size_t hi) {
                        for (std::size_t i = lo; i < hi; ++i) body(i);
                      });
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t serial_threshold) {
  if (end <= begin) return;
  if (end - begin < serial_threshold) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  global_pool().parallel_for(begin, end, body);
}

void parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (end <= begin) return;
  global_pool().parallel_for_chunks(begin, end, body);
}

}  // namespace gpucnn
