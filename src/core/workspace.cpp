#include "core/workspace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>
#include <vector>

#include "obs/metrics.hpp"

namespace gpucnn::ws {
namespace {

using detail::class_bytes;
using detail::class_of;
using detail::kNumClasses;

// Default per-thread retention cap: a thread keeps at most this many
// freed bytes parked; beyond the cap, released blocks are returned to
// the system instead (prevents a burst of huge FFT tiles from pinning
// memory for the process lifetime). Atomic so tests can lower it while
// worker threads are live.
constexpr std::size_t kDefaultRetainCapBytes = std::size_t{1} << 28;
std::atomic<std::size_t> g_retain_cap{kDefaultRetainCapBytes};

// Process-wide parked-bytes total. Each arena adds/subtracts deltas as
// blocks park and unpark; the retained_bytes gauge is set from this
// total, never from one thread's private count (with >1 thread the
// gauge would otherwise read as whichever thread wrote last).
std::atomic<std::size_t> g_total_retained{0};

std::atomic<bool> g_poison{[] {
  const char* env = std::getenv("GPUCNN_POISON_SCRATCH");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}()};

struct Arena {
  // Guards the free lists against a cross-thread trim(); uncontended on
  // the owner's acquire/release fast path.
  std::mutex mutex;
  std::vector<void*> free_lists[kNumClasses];
  std::size_t retained = 0;

  Arena();
  ~Arena();

  /// Frees every parked block. Caller holds `mutex`.
  std::size_t drain_locked() {
    for (auto& list : free_lists) {
      for (void* p : list) {
        ::operator delete(p, std::align_val_t{kAlignment});
      }
      list.clear();
    }
    const std::size_t freed = retained;
    retained = 0;
    return freed;
  }
};

// Live-arena registry so trim() can drain worker-thread arenas that are
// parked in a pool, not just the caller's. Heap-allocated and never
// destroyed: worker threads may exit (running ~Arena) during static
// destruction, after a function-local static registry would be gone.
struct Registry {
  std::mutex mutex;
  std::vector<Arena*> arenas;
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

Arena::Arena() {
  Registry& r = registry();
  const std::lock_guard lock(r.mutex);
  r.arenas.push_back(this);
}

Arena::~Arena() {
  Registry& r = registry();
  {
    const std::lock_guard lock(r.mutex);
    std::erase(r.arenas, this);
  }
  const std::lock_guard lock(mutex);
  const std::size_t freed = drain_locked();
  // Thread exit can race static destruction of the metrics registry, so
  // only the plain atomic total is maintained here; the gauge catches up
  // on the next acquire/release from a live thread.
  g_total_retained.fetch_sub(freed, std::memory_order_relaxed);
}

Arena& arena() {
  thread_local Arena tls_arena;
  return tls_arena;
}

// Counter lookups go through a mutex-guarded map; resolve each name
// once and keep the stable reference.
obs::Counter& hits_counter() {
  static obs::Counter& c = obs::metrics().counter("core.workspace.hits");
  return c;
}
obs::Counter& misses_counter() {
  static obs::Counter& c = obs::metrics().counter("core.workspace.misses");
  return c;
}
obs::Counter& alloc_bytes_counter() {
  static obs::Counter& c =
      obs::metrics().counter("core.workspace.alloc_bytes");
  return c;
}
obs::Gauge& retained_gauge() {
  static obs::Gauge& g =
      obs::metrics().gauge("core.workspace.retained_bytes");
  return g;
}

/// Records `delta` parked bytes (negative = unparked) in the process
/// total and mirrors the new total to the exported gauge.
void note_retained_delta(std::ptrdiff_t delta) {
  const std::size_t total =
      g_total_retained.fetch_add(static_cast<std::size_t>(delta),
                                 std::memory_order_relaxed) +
      static_cast<std::size_t>(delta);
  retained_gauge().set(static_cast<double>(total));
}

/// Tiles kPoisonWord over the block so any float read before a write
/// hits a signaling NaN (blocks are 64-byte aligned; capacities are
/// multiples of 4 except an oversized tail, poisoned bytewise).
void poison_block(void* ptr, std::size_t bytes) {
  auto* p = static_cast<unsigned char*>(ptr);
  const std::size_t words = bytes / sizeof(detail::kPoisonWord);
  for (std::size_t i = 0; i < words; ++i) {
    std::memcpy(p + i * sizeof(detail::kPoisonWord), &detail::kPoisonWord,
                sizeof(detail::kPoisonWord));
  }
  for (std::size_t i = words * sizeof(detail::kPoisonWord); i < bytes; ++i) {
    p[i] = 0xA5;
  }
}

}  // namespace

void* acquire(std::size_t bytes) {
  Arena& a = arena();
  const std::size_t cls = class_of(bytes);
  void* reused = nullptr;
  {
    const std::lock_guard lock(a.mutex);
    auto& list = a.free_lists[cls];
    // Parked blocks hold exactly class_bytes(cls); a beyond-last-class
    // request is larger than that, so it can't reuse one.
    if (!list.empty() && bytes <= class_bytes(cls)) {
      reused = list.back();
      list.pop_back();
      a.retained -= class_bytes(cls);
    }
  }
  if (reused != nullptr) {
    note_retained_delta(-static_cast<std::ptrdiff_t>(class_bytes(cls)));
    hits_counter().add(1);
    if (g_poison.load(std::memory_order_relaxed)) {
      poison_block(reused, class_bytes(cls));
    }
    return reused;
  }
  // The last size class is open-ended: allocate the exact (aligned)
  // request so a 5 GiB tensor doesn't round to a power of two.
  const std::size_t alloc =
      cls == kNumClasses - 1 ? std::max(bytes, class_bytes(cls))
                             : class_bytes(cls);
  misses_counter().add(1);
  alloc_bytes_counter().add(static_cast<std::int64_t>(alloc));
  void* fresh = ::operator new(alloc, std::align_val_t{kAlignment});
  if (g_poison.load(std::memory_order_relaxed)) poison_block(fresh, alloc);
  return fresh;
}

void release(void* ptr, std::size_t bytes) noexcept {
  Arena& a = arena();
  const std::size_t cls = class_of(bytes);
  const std::size_t cb = class_bytes(cls);
  bool parked = false;
  {
    const std::lock_guard lock(a.mutex);
    // Oversized last-class blocks have no recorded capacity; parking
    // them as `cb` could hand out a too-small block later, so free
    // them. Same for any release beyond the retention cap.
    if (!detail::oversized(bytes) &&
        a.retained + cb <= g_retain_cap.load(std::memory_order_relaxed)) {
      a.free_lists[cls].push_back(ptr);
      a.retained += cb;
      parked = true;
    }
  }
  if (parked) {
    note_retained_delta(static_cast<std::ptrdiff_t>(cb));
  } else {
    ::operator delete(ptr, std::align_val_t{kAlignment});
  }
}

std::size_t retained_bytes() {
  Arena& a = arena();
  const std::lock_guard lock(a.mutex);
  return a.retained;
}

std::size_t process_retained_bytes() {
  return g_total_retained.load(std::memory_order_relaxed);
}

void trim() {
  // The registry lock is held for the whole drain: ~Arena deregisters
  // under it, so no arena in the list can be destroyed mid-drain. Each
  // arena's own mutex is taken inside (registry -> arena order, same
  // everywhere) to exclude its owner's concurrent acquire/release.
  Registry& r = registry();
  const std::lock_guard registry_lock(r.mutex);
  for (Arena* a : r.arenas) {
    std::size_t freed = 0;
    {
      const std::lock_guard lock(a->mutex);
      freed = a->drain_locked();
    }
    if (freed > 0) note_retained_delta(-static_cast<std::ptrdiff_t>(freed));
  }
}

void trim_thread() {
  Arena& a = arena();
  std::size_t freed = 0;
  {
    const std::lock_guard lock(a.mutex);
    freed = a.drain_locked();
  }
  if (freed > 0) note_retained_delta(-static_cast<std::ptrdiff_t>(freed));
}

bool poison_scratch_enabled() {
  return g_poison.load(std::memory_order_relaxed);
}

bool set_poison_scratch(bool enabled) {
  return g_poison.exchange(enabled, std::memory_order_relaxed);
}

std::size_t set_retain_cap_for_testing(std::size_t bytes) {
  return g_retain_cap.exchange(bytes, std::memory_order_relaxed);
}

}  // namespace gpucnn::ws
