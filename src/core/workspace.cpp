#include "core/workspace.hpp"

#include <algorithm>
#include <bit>
#include <new>
#include <vector>

#include "obs/metrics.hpp"

namespace gpucnn::ws {
namespace {

// Smallest block handed out; sub-256-byte requests share one class so
// tiny scratches don't fragment the list space.
constexpr std::size_t kMinClassBytes = 256;
// log2 of the largest class (2^32 = 4 GiB) — requests beyond this are
// still served, in the last class.
constexpr std::size_t kNumClasses = 33 - std::bit_width(kMinClassBytes - 1);

// A thread keeps at most this many freed bytes parked; beyond the cap,
// released blocks are returned to the system instead (prevents a burst
// of huge FFT tiles from pinning memory for the process lifetime).
constexpr std::size_t kRetainCapBytes = std::size_t{1} << 28;  // 256 MiB

std::size_t class_of(std::size_t bytes) {
  const std::size_t rounded = std::max(bytes, kMinClassBytes);
  const std::size_t cls =
      std::bit_width(rounded - 1) - std::bit_width(kMinClassBytes - 1);
  return std::min(cls, kNumClasses - 1);
}

std::size_t class_bytes(std::size_t cls) {
  return kMinClassBytes << cls;
}

struct Arena {
  std::vector<void*> free_lists[kNumClasses];
  std::size_t retained = 0;

  ~Arena() {
    for (std::size_t cls = 0; cls < kNumClasses; ++cls) {
      for (void* p : free_lists[cls]) {
        ::operator delete(p, std::align_val_t{kAlignment});
      }
    }
  }
};

Arena& arena() {
  thread_local Arena tls_arena;
  return tls_arena;
}

// Counter lookups go through a mutex-guarded map; resolve each name
// once and keep the stable reference.
obs::Counter& hits_counter() {
  static obs::Counter& c = obs::metrics().counter("core.workspace.hits");
  return c;
}
obs::Counter& misses_counter() {
  static obs::Counter& c = obs::metrics().counter("core.workspace.misses");
  return c;
}
obs::Counter& alloc_bytes_counter() {
  static obs::Counter& c =
      obs::metrics().counter("core.workspace.alloc_bytes");
  return c;
}
obs::Gauge& retained_gauge() {
  static obs::Gauge& g =
      obs::metrics().gauge("core.workspace.retained_bytes");
  return g;
}

}  // namespace

void* acquire(std::size_t bytes) {
  Arena& a = arena();
  const std::size_t cls = class_of(bytes);
  auto& list = a.free_lists[cls];
  // Parked blocks hold exactly class_bytes(cls); a beyond-last-class
  // request is larger than that, so it can't reuse one.
  if (!list.empty() && bytes <= class_bytes(cls)) {
    void* p = list.back();
    list.pop_back();
    a.retained -= class_bytes(cls);
    retained_gauge().set(static_cast<double>(a.retained));
    hits_counter().add(1);
    return p;
  }
  // The last size class is open-ended: allocate the exact (aligned)
  // request so a 5 GiB tensor doesn't round to a power of two.
  const std::size_t alloc =
      cls == kNumClasses - 1 ? std::max(bytes, class_bytes(cls))
                             : class_bytes(cls);
  misses_counter().add(1);
  alloc_bytes_counter().add(static_cast<std::int64_t>(alloc));
  return ::operator new(alloc, std::align_val_t{kAlignment});
}

void release(void* ptr, std::size_t bytes) noexcept {
  Arena& a = arena();
  const std::size_t cls = class_of(bytes);
  const std::size_t cb = class_bytes(cls);
  // Oversized last-class blocks have no recorded capacity; parking them
  // as `cb` could hand out a too-small block later, so free them.
  const bool oversized = cls == kNumClasses - 1 && bytes > cb;
  if (oversized || a.retained + cb > kRetainCapBytes) {
    ::operator delete(ptr, std::align_val_t{kAlignment});
    return;
  }
  a.free_lists[cls].push_back(ptr);
  a.retained += cb;
  retained_gauge().set(static_cast<double>(a.retained));
}

std::size_t retained_bytes() { return arena().retained; }

void trim() {
  Arena& a = arena();
  for (std::size_t cls = 0; cls < kNumClasses; ++cls) {
    for (void* p : a.free_lists[cls]) {
      ::operator delete(p, std::align_val_t{kAlignment});
    }
    a.free_lists[cls].clear();
  }
  a.retained = 0;
  retained_gauge().set(0.0);
}

}  // namespace gpucnn::ws
