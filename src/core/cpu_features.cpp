#include "core/cpu_features.hpp"

#include <cstdlib>
#include <cstring>

namespace gpucnn::simd {
namespace {

bool detect_avx2() {
#if GPUCNN_X86_SIMD
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

Level detect() {
  const bool has_avx2 = detect_avx2();
  if (const char* env = std::getenv("GPUCNN_SIMD")) {
    if (std::strcmp(env, "portable") == 0 || std::strcmp(env, "scalar") == 0) {
      return Level::kPortable;
    }
    // Any other value (including "avx2") means "best the CPU offers";
    // an explicit avx2 request on a machine without it falls back
    // rather than crashing on an illegal instruction.
  }
  return has_avx2 ? Level::kAvx2 : Level::kPortable;
}

Level& active_slot() {
  static Level level = detect();
  return level;
}

}  // namespace

Level active() { return active_slot(); }

bool cpu_has_avx2() {
  static const bool has = detect_avx2();
  return has;
}

Level set_active_for_testing(Level level) {
  if (level == Level::kAvx2 && !cpu_has_avx2()) level = Level::kPortable;
  active_slot() = level;
  return level;
}

const char* name(Level level) {
  switch (level) {
    case Level::kAvx2:
      return "avx2";
    case Level::kPortable:
      break;
  }
  return "portable";
}

}  // namespace gpucnn::simd
