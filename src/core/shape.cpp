#include "core/shape.hpp"

#include <array>
#include <sstream>

namespace gpucnn {

std::string ConvConfig::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const ConvConfig& c) {
  return os << '(' << c.batch << ',' << c.input << ',' << c.filters << ','
            << c.kernel << ',' << c.stride << ')';
}

ConvConfig TableOne::layer(std::size_t index) {
  check(index < kCount, "Table I has five layers (index 0..4)");
  static constexpr std::array<ConvConfig, kCount> kLayers{{
      {.batch = 128, .input = 128, .channels = 3, .filters = 96, .kernel = 11, .stride = 1},
      {.batch = 128, .input = 128, .channels = 64, .filters = 96, .kernel = 3, .stride = 1},
      {.batch = 128, .input = 32, .channels = 128, .filters = 128, .kernel = 9, .stride = 1},
      {.batch = 128, .input = 16, .channels = 128, .filters = 128, .kernel = 7, .stride = 1},
      {.batch = 128, .input = 13, .channels = 384, .filters = 384, .kernel = 3, .stride = 1},
  }};
  return kLayers[index];
}

std::string TableOne::name(std::size_t index) {
  check(index < kCount, "Table I has five layers (index 0..4)");
  return "Conv" + std::to_string(index + 1);
}

}  // namespace gpucnn
