// Error handling for the gpucnn library.
//
// All precondition violations throw gpucnn::Error carrying the source
// location of the failed check. Checks are plain functions (no macros),
// per the C++ Core Guidelines.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace gpucnn {

/// Exception type thrown by every failed precondition in the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(std::string_view message,
                              const std::source_location& loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << " (" << loc.function_name()
     << "): " << message;
  throw Error(os.str());
}
}  // namespace detail

/// Throws gpucnn::Error with the caller's source location when `condition`
/// is false. Use for argument and invariant validation on public APIs.
inline void check(bool condition, std::string_view message,
                  const std::source_location loc =
                      std::source_location::current()) {
  if (!condition) detail::fail(message, loc);
}

/// Overload that lazily formats an arbitrary stream of values, avoiding
/// string construction on the happy path.
template <typename... Parts>
void check_fmt(bool condition, const std::source_location loc, Parts&&... parts) {
  if (condition) return;
  std::ostringstream os;
  (os << ... << parts);
  detail::fail(os.str(), loc);
}

}  // namespace gpucnn
