// Thread-local workspace arena for hot-path scratch buffers.
//
// The CPU kernels need short-lived temporaries on every call — GEMM
// packing panels, im2col column buffers, FFT tile scratch. Allocating
// them as std::vector pays an allocator round-trip (and a page-fault
// storm on first touch) per call; at the call rates of a sweep that is
// measurable. The arena keeps freed blocks in per-thread, per-size-class
// free lists so steady-state kernels recycle the same hot memory:
//
//   ws::Scratch<float> packed(n);        // acquire (hit = reuse)
//   fill(packed.span()); ...             // 64-byte aligned storage
//   // destructor returns the block to this thread's free list
//
// Blocks are rounded up to power-of-two size classes, every block is
// 64-byte aligned (cache line / AVX-512 friendly), and each thread owns
// its arena outright, so acquire/release never contend: they take only
// the owning arena's mutex, which is uncontended except while a trim()
// from another thread is draining the arena. A per-thread retention cap
// bounds the memory a burst can pin; trim() drains every live arena in
// the process (worker threads park scratch too — see the registry in
// workspace.cpp), and trim_thread() drains only the caller's.
//
// Debugging: with GPUCNN_POISON_SCRATCH=1 in the environment (or
// set_poison_scratch(true)), every acquired block is filled with
// signaling-NaN bytes before being handed out, so a kernel that reads
// recycled scratch before writing it computes NaNs instead of silently
// reusing stale data. The conv-config fuzzer (tools/conv_fuzz) runs
// with poisoning on so such reads show up as cross-engine mismatches.
// See docs/TESTING.md.
//
// Observability: core.workspace.hits / misses count reuse vs fresh
// allocation, core.workspace.alloc_bytes sums fresh allocation sizes,
// and the core.workspace.retained_bytes gauge tracks the process-wide
// free-list footprint across all threads (see docs/METRICS.md).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

namespace gpucnn::ws {

/// Cache-line alignment every arena block satisfies.
inline constexpr std::size_t kAlignment = 64;

/// Acquires a block of at least `bytes` (rounded to a size class) from
/// the calling thread's arena. Contents are indeterminate (signaling-NaN
/// bytes when poisoning is enabled).
[[nodiscard]] void* acquire(std::size_t bytes);

/// Returns a block obtained from acquire() with the same byte count.
void release(void* ptr, std::size_t bytes) noexcept;

/// Bytes currently parked in the calling thread's free lists.
[[nodiscard]] std::size_t retained_bytes();

/// Bytes currently parked across every live arena in the process.
[[nodiscard]] std::size_t process_retained_bytes();

/// Frees every block parked in every live thread's free lists (worker
/// threads can each pin up to the retention cap until thread exit;
/// draining them must not require their cooperation).
void trim();

/// Frees only the calling thread's parked blocks (used by tests that
/// want deterministic per-thread hit/miss counts).
void trim_thread();

/// Scratch poisoning: when enabled, acquire() fills blocks with
/// signaling-NaN bytes. Initialised once from the GPUCNN_POISON_SCRATCH
/// environment variable ("0" / unset = off); the setter overrides it at
/// runtime (tests, fuzz harness) and returns the previous value.
[[nodiscard]] bool poison_scratch_enabled();
bool set_poison_scratch(bool enabled);

/// Test hook: overrides the per-thread retention cap (bytes) so the
/// eviction path is exercisable without parking 256 MiB. Returns the
/// previous cap.
std::size_t set_retain_cap_for_testing(std::size_t bytes);

namespace detail {

/// Smallest block handed out; sub-256-byte requests share one class so
/// tiny scratches don't fragment the list space.
inline constexpr std::size_t kMinClassBytes = 256;
/// Number of classes up to the largest (2^32 = 4 GiB); requests beyond
/// the last class are still served, at their exact (aligned) size.
inline constexpr std::size_t kNumClasses =
    33 - std::bit_width(kMinClassBytes - 1);

/// Size class serving a request of `bytes`.
[[nodiscard]] constexpr std::size_t class_of(std::size_t bytes) {
  const std::size_t rounded = bytes < kMinClassBytes ? kMinClassBytes : bytes;
  const std::size_t cls =
      std::bit_width(rounded - 1) - std::bit_width(kMinClassBytes - 1);
  return cls < kNumClasses - 1 ? cls : kNumClasses - 1;
}

/// Capacity of every parked block in class `cls`.
[[nodiscard]] constexpr std::size_t class_bytes(std::size_t cls) {
  return kMinClassBytes << cls;
}

/// True when a request exceeds the last class's nominal capacity: such
/// blocks are allocated at exact size and never parked (parking one as
/// class capacity could hand out a too-small block later).
[[nodiscard]] constexpr bool oversized(std::size_t bytes) {
  return bytes > class_bytes(kNumClasses - 1);
}

/// The 32-bit word acquire() tiles over poisoned blocks: sign 0,
/// exponent all-ones, quiet bit clear, mantissa non-zero — a signaling
/// NaN at every 4-byte-aligned float position.
inline constexpr std::uint32_t kPoisonWord = 0x7FA0'A5A5U;

}  // namespace detail

/// RAII scratch buffer of `n` elements of trivially-destructible T.
/// Move-only; storage is uninitialised unless `zero` is requested.
template <typename T>
class Scratch {
  static_assert(std::is_trivially_destructible_v<T> &&
                    std::is_trivially_copyable_v<T>,
                "arena scratch holds raw POD-like elements only");

 public:
  explicit Scratch(std::size_t n, bool zero = false)
      : n_(n), data_(static_cast<T*>(acquire(n * sizeof(T)))) {
    if (zero) {
      for (std::size_t i = 0; i < n_; ++i) data_[i] = T{};
    }
  }
  ~Scratch() {
    if (data_ != nullptr) release(data_, n_ * sizeof(T));
  }

  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;
  Scratch(Scratch&& other) noexcept : n_(other.n_), data_(other.data_) {
    other.data_ = nullptr;
    other.n_ = 0;
  }
  Scratch& operator=(Scratch&&) = delete;

  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] std::span<T> span() { return {data_, n_}; }
  [[nodiscard]] std::span<const T> span() const { return {data_, n_}; }

  /// Overwrites every element with `value`.
  void fill(T value) {
    for (std::size_t i = 0; i < n_; ++i) data_[i] = value;
  }

 private:
  std::size_t n_;
  T* data_;
};

}  // namespace gpucnn::ws
