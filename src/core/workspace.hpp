// Thread-local workspace arena for hot-path scratch buffers.
//
// The CPU kernels need short-lived temporaries on every call — GEMM
// packing panels, im2col column buffers, FFT tile scratch. Allocating
// them as std::vector pays an allocator round-trip (and a page-fault
// storm on first touch) per call; at the call rates of a sweep that is
// measurable. The arena keeps freed blocks in per-thread, per-size-class
// free lists so steady-state kernels recycle the same hot memory:
//
//   ws::Scratch<float> packed(n);        // acquire (hit = reuse)
//   fill(packed.span()); ...             // 64-byte aligned storage
//   // destructor returns the block to this thread's free list
//
// Blocks are rounded up to power-of-two size classes, every block is
// 64-byte aligned (cache line / AVX-512 friendly), and each thread owns
// its arena outright, so acquire/release take no locks. A per-thread
// retention cap bounds the memory a burst can pin.
//
// Observability: core.workspace.hits / misses count reuse vs fresh
// allocation, core.workspace.alloc_bytes sums fresh allocation sizes,
// and the core.workspace.retained_bytes gauge tracks the calling
// thread's current free-list footprint (see docs/METRICS.md).
#pragma once

#include <cstddef>
#include <span>
#include <type_traits>

namespace gpucnn::ws {

/// Cache-line alignment every arena block satisfies.
inline constexpr std::size_t kAlignment = 64;

/// Acquires a block of at least `bytes` (rounded to a size class) from
/// the calling thread's arena. Contents are indeterminate.
[[nodiscard]] void* acquire(std::size_t bytes);

/// Returns a block obtained from acquire() with the same byte count.
void release(void* ptr, std::size_t bytes) noexcept;

/// Bytes currently parked in the calling thread's free lists.
[[nodiscard]] std::size_t retained_bytes();

/// Frees every block parked in the calling thread's free lists (used by
/// tests to get deterministic hit/miss counts).
void trim();

/// RAII scratch buffer of `n` elements of trivially-destructible T.
/// Move-only; storage is uninitialised unless `zero` is requested.
template <typename T>
class Scratch {
  static_assert(std::is_trivially_destructible_v<T> &&
                    std::is_trivially_copyable_v<T>,
                "arena scratch holds raw POD-like elements only");

 public:
  explicit Scratch(std::size_t n, bool zero = false)
      : n_(n), data_(static_cast<T*>(acquire(n * sizeof(T)))) {
    if (zero) {
      for (std::size_t i = 0; i < n_; ++i) data_[i] = T{};
    }
  }
  ~Scratch() {
    if (data_ != nullptr) release(data_, n_ * sizeof(T));
  }

  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;
  Scratch(Scratch&& other) noexcept : n_(other.n_), data_(other.data_) {
    other.data_ = nullptr;
    other.n_ = 0;
  }
  Scratch& operator=(Scratch&&) = delete;

  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] std::span<T> span() { return {data_, n_}; }
  [[nodiscard]] std::span<const T> span() const { return {data_, n_}; }

  /// Overwrites every element with `value`.
  void fill(T value) {
    for (std::size_t i = 0; i < n_; ++i) data_[i] = value;
  }

 private:
  std::size_t n_;
  T* data_;
};

}  // namespace gpucnn::ws
