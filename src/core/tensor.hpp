// A minimal dense 4-D float tensor in NCHW layout.
//
// This is the numeric substrate shared by every convolution strategy and
// every neural-network layer. Storage is a cache-line-aligned contiguous
// buffer; views are exposed as std::span.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "core/shape.hpp"

namespace gpucnn {

/// Allocator producing 64-byte-aligned buffers so vectorised kernels can
/// use aligned loads regardless of the element offset arithmetic.
template <typename T>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::size_t kAlignment = 64;

  AlignedAllocator() = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T),
                                          std::align_val_t{kAlignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kAlignment});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// Dense NCHW float tensor. Copyable, movable; all indexing is
/// bounds-unchecked on the hot path (at(...) checks, operator() does not).
///
/// A tensor normally owns its storage. bind_external() turns it into a
/// view over caller-owned memory (the activation memory planner's shared
/// arena): resize() then only reshapes within the bound capacity and no
/// longer zero-initialises — every producer fully overwrites its output.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(TensorShape shape) : shape_(shape), data_(shape.count()) {}
  Tensor(std::size_t n, std::size_t c, std::size_t h, std::size_t w)
      : Tensor(TensorShape{n, c, h, w}) {}

  [[nodiscard]] const TensorShape& shape() const { return shape_; }
  [[nodiscard]] std::size_t count() const {
    return is_view() ? shape_.count() : data_.size();
  }
  [[nodiscard]] bool empty() const { return count() == 0; }

  /// True when the storage is caller-owned (bind_external).
  [[nodiscard]] bool is_view() const { return view_data_ != nullptr; }

  /// Rebinds the tensor onto `capacity` floats of caller-owned storage.
  /// The current shape must fit; the previous owned buffer is released.
  /// The caller keeps the memory alive for the view's whole lifetime.
  void bind_external(float* data, std::size_t capacity);
  /// Returns to owned storage (empty; resize() reallocates).
  void unbind();

  [[nodiscard]] std::span<float> data() { return {base(), count()}; }
  [[nodiscard]] std::span<const float> data() const {
    return {base(), count()};
  }
  [[nodiscard]] float* raw() { return base(); }
  [[nodiscard]] const float* raw() const { return base(); }

  /// Unchecked element access (hot path).
  float& operator()(std::size_t n, std::size_t c, std::size_t h,
                    std::size_t w) {
    return base()[offset(n, c, h, w)];
  }
  float operator()(std::size_t n, std::size_t c, std::size_t h,
                   std::size_t w) const {
    return base()[offset(n, c, h, w)];
  }

  /// Checked element access (tests, debugging).
  float& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  [[nodiscard]] float at(std::size_t n, std::size_t c, std::size_t h,
                         std::size_t w) const;

  /// Pointer to the start of image (n, c)'s H×W plane.
  [[nodiscard]] float* plane(std::size_t n, std::size_t c) {
    return base() + offset(n, c, 0, 0);
  }
  [[nodiscard]] const float* plane(std::size_t n, std::size_t c) const {
    return base() + offset(n, c, 0, 0);
  }

  /// Reshape without reallocating; element count must be preserved.
  void reshape(TensorShape shape);

  void fill(float value);
  /// Fills with i.i.d. uniform draws in [lo, hi).
  void fill_uniform(Rng& rng, float lo = -1.0F, float hi = 1.0F);
  /// Fills with i.i.d. normal draws.
  void fill_normal(Rng& rng, float mean = 0.0F, float stddev = 1.0F);

  /// Resizes to `shape`, zero-initialising fresh storage.
  void resize(TensorShape shape);

  [[nodiscard]] double sum() const;
  [[nodiscard]] float max_abs() const;

 private:
  [[nodiscard]] std::size_t offset(std::size_t n, std::size_t c,
                                   std::size_t h, std::size_t w) const {
    return ((n * shape_.c + c) * shape_.h + h) * shape_.w + w;
  }

  [[nodiscard]] float* base() {
    return is_view() ? view_data_ : data_.data();
  }
  [[nodiscard]] const float* base() const {
    return is_view() ? view_data_ : data_.data();
  }

  TensorShape shape_{};
  std::vector<float, AlignedAllocator<float>> data_;
  float* view_data_ = nullptr;     ///< non-null in view mode
  std::size_t view_capacity_ = 0;  ///< floats available at view_data_
};

/// Maximum absolute element-wise difference between two same-shaped tensors.
double max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace gpucnn
