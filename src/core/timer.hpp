// Wall-clock timing helpers used by the real (CPU) kernels and examples.
// Simulated GPU timings come from gpusim and never touch this clock.
#pragma once

#include <chrono>

namespace gpucnn {

/// Monotonic stopwatch returning elapsed milliseconds.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(clock::now() - start_)
        .count();
  }

  /// Elapsed microseconds; the timebase of obs trace events, which the
  /// Chrome trace_event format expresses in us.
  [[nodiscard]] double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(clock::now() - start_)
        .count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace gpucnn
