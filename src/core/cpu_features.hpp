// Runtime SIMD capability detection and dispatch level selection.
//
// The numeric kernels (sgemm, cgemm, vector_ops, FFT butterflies) ship
// two code paths: a portable scalar loop compiled for the baseline ISA
// and an AVX2/FMA micro-kernel compiled per-function via
// __attribute__((target(...))). Which path runs is decided once per
// process from CPUID — never at compile time — so one binary runs
// everywhere and uses the wide units where they exist.
//
// The environment variable GPUCNN_SIMD overrides detection:
//   GPUCNN_SIMD=portable   force the scalar fallback (used by tests/CI
//                          to validate both paths on one machine);
//   GPUCNN_SIMD=avx2       request AVX2 (ignored if the CPU lacks it).
#pragma once

// GPUCNN_X86_SIMD gates compilation of the AVX2/FMA kernels; they are
// only built with GCC/Clang targeting x86-64, where per-function
// target attributes and <immintrin.h> are available.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define GPUCNN_X86_SIMD 1
#else
#define GPUCNN_X86_SIMD 0
#endif

namespace gpucnn::simd {

/// Instruction-set level a kernel dispatch may select.
enum class Level {
  kPortable,  ///< baseline scalar loops, available everywhere
  kAvx2,      ///< AVX2 + FMA micro-kernels (x86-64 only)
};

/// The level every kernel dispatches on. Detected once (CPUID +
/// GPUCNN_SIMD override) and cached; cheap enough to query per call.
[[nodiscard]] Level active();

/// Human-readable level name ("portable", "avx2") for logs/exports.
[[nodiscard]] const char* name(Level level);

/// True when this build carries AVX2 kernels and the CPU supports them,
/// regardless of the GPUCNN_SIMD override.
[[nodiscard]] bool cpu_has_avx2();

/// Test hook: pins active() to `level` (clamped to what the CPU
/// supports) so one process can exercise both code paths. Returns the
/// level actually installed.
Level set_active_for_testing(Level level);

}  // namespace gpucnn::simd
