// Real-input 2-D FFT (R2C forward, C2R inverse) over the Hermitian
// half-spectrum.
//
// A real s x s image has a conjugate-symmetric spectrum:
//   F[ky, kx] == conj(F[(s-ky) % s, (s-kx) % s])
// so only kx in [0, s/2] carries information — s * (s/2 + 1) bins
// instead of s^2. This is the fbfft / Mathieu et al. formulation the
// paper's FFT engines exploit on the GPU: it halves both the transform
// work and the per-bin pointwise (Cgemm) stage of FFT convolution.
//
// The forward transform uses the classic pack-two-real-rows trick: rows
// y and y+1 are packed into one complex row z = row_y + i*row_{y+1},
// one complex FFT of length s transforms both at once, and the two
// Hermitian row spectra are separated as
//   A[k] = (Z[k] + conj(Z[-k])) / 2,   B[k] = (Z[k] - conj(Z[-k])) / 2i.
// The column pass then runs plain complex FFTs down the s/2+1 retained
// columns — all of them at once through Plan::transform_columns, which
// vectorises across columns. The inverse mirrors every step.
//
// Layout: the half-spectrum of an s x s image is row-major
// s x (s/2 + 1); bin (ky, kx) lives at spec[ky * half_cols(s) + kx].
// Pointwise products of half-spectra stay Hermitian, so FFT convolution
// can run its whole frequency-domain pipeline in this layout and
// reconstruct exact real outputs.
#pragma once

#include <cstddef>
#include <span>

#include "fft/fft.hpp"

namespace gpucnn::fft {

/// Retained columns of the Hermitian half-spectrum of width s.
[[nodiscard]] constexpr std::size_t half_cols(std::size_t s) {
  return s / 2 + 1;
}

/// Complex bins in the half-spectrum of an s x s real image.
[[nodiscard]] constexpr std::size_t half_spectrum_size(std::size_t s) {
  return s * half_cols(s);
}

/// Forward R2C transform: real s x s row-major `src` into the
/// s x (s/2+1) half-spectrum `spec` (s = plan.size(), a power of two).
void rfft2(std::span<const float> src, std::span<Complex> spec,
           const Plan& plan);

/// Inverse C2R transform: consumes (overwrites) the half-spectrum
/// `spec` and writes the real s x s image to `dst`. Includes the full
/// 1/s^2 normalisation, so irfft2(rfft2(x)) == x.
void irfft2(std::span<Complex> spec, std::span<float> dst, const Plan& plan);

}  // namespace gpucnn::fft
