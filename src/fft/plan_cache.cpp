#include "fft/plan_cache.hpp"

#include "obs/metrics.hpp"

namespace gpucnn::fft {
namespace {

struct CacheMetrics {
  obs::Counter& hits = obs::metrics().counter("fft.plan_cache.hits");
  obs::Counter& misses = obs::metrics().counter("fft.plan_cache.misses");
  obs::Gauge& bytes = obs::metrics().gauge("fft.plan_cache.bytes");
};

CacheMetrics& cache_metrics() {
  static CacheMetrics m;
  return m;
}

}  // namespace

std::shared_ptr<const Plan> PlanCache::get(std::size_t n,
                                           Schedule schedule) {
  auto& metrics = cache_metrics();
  const std::lock_guard<std::mutex> lock(mutex_);
  const Key key{n, schedule};
  const auto it = plans_.find(key);
  if (it != plans_.end()) {
    metrics.hits.add();
    return it->second;
  }
  // Built under the lock: a concurrent first use of the same size must
  // construct exactly one plan (and count exactly one miss).
  auto plan = std::make_shared<const Plan>(n, schedule);
  resident_bytes_ += plan->footprint_bytes();
  metrics.misses.add();
  metrics.bytes.set(static_cast<double>(resident_bytes_));
  plans_.emplace(key, plan);
  return plan;
}

std::size_t PlanCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return plans_.size();
}

void PlanCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  plans_.clear();
  resident_bytes_ = 0;
  cache_metrics().bytes.set(0.0);
}

PlanCache& PlanCache::instance() {
  // Leaked: engines may transform during static destruction of other
  // objects; the cache must outlive them all.
  static auto* cache = new PlanCache();
  return *cache;
}

std::shared_ptr<const Plan> cached_plan(std::size_t n, Schedule schedule) {
  return PlanCache::instance().get(n, schedule);
}

}  // namespace gpucnn::fft
