#include "fft/rfft.hpp"

#include "core/error.hpp"
#include "core/workspace.hpp"

namespace gpucnn::fft {

void rfft2(std::span<const float> src, std::span<Complex> spec,
           const Plan& plan) {
  const std::size_t s = plan.size();
  const std::size_t hc = half_cols(s);
  check(src.size() == s * s, "rfft2 input size mismatch");
  check(spec.size() == half_spectrum_size(s), "rfft2 spectrum size mismatch");
  if (s == 1) {
    spec[0] = Complex(src[0], 0.0F);
    return;
  }

  // Row pass: rows y and y+1 packed into one complex transform, then
  // separated into their Hermitian halves (s is a power of two >= 2,
  // so the row count is even).
  ws::Scratch<Complex> z(s);
  for (std::size_t y = 0; y < s; y += 2) {
    const float* r0 = src.data() + y * s;
    const float* r1 = r0 + s;
    for (std::size_t x = 0; x < s; ++x) z.data()[x] = Complex(r0[x], r1[x]);
    plan.transform(z.span(), Direction::kForward);
    Complex* even = spec.data() + y * hc;
    Complex* odd = even + hc;
    for (std::size_t k = 0; k < hc; ++k) {
      const Complex zk = z.data()[k];
      const Complex zmk = std::conj(z.data()[(s - k) & (s - 1)]);
      even[k] = 0.5F * (zk + zmk);
      odd[k] = Complex(0.0F, -0.5F) * (zk - zmk);
    }
  }

  // Column pass: complex FFT down every retained column at once.
  plan.transform_columns(spec, hc, hc, Direction::kForward);
}

void irfft2(std::span<Complex> spec, std::span<float> dst,
            const Plan& plan) {
  const std::size_t s = plan.size();
  const std::size_t hc = half_cols(s);
  check(spec.size() == half_spectrum_size(s),
        "irfft2 spectrum size mismatch");
  check(dst.size() == s * s, "irfft2 output size mismatch");
  if (s == 1) {
    dst[0] = spec[0].real();
    return;
  }

  // Column pass first (1/s of the normalisation lives here)...
  plan.transform_columns(spec, hc, hc, Direction::kInverse);

  // ...then each row pair is re-merged into one full-length complex
  // spectrum via Hermitian symmetry and inverse-transformed together:
  // the real part is row y, the imaginary part row y+1.
  ws::Scratch<Complex> z(s);
  for (std::size_t y = 0; y < s; y += 2) {
    const Complex* even = spec.data() + y * hc;
    const Complex* odd = even + hc;
    for (std::size_t k = 0; k < hc; ++k) {
      z.data()[k] = even[k] + Complex(0.0F, 1.0F) * odd[k];
    }
    for (std::size_t k = hc; k < s; ++k) {
      z.data()[k] = std::conj(even[s - k]) +
                    Complex(0.0F, 1.0F) * std::conj(odd[s - k]);
    }
    plan.transform(z.span(), Direction::kInverse);
    float* r0 = dst.data() + y * s;
    float* r1 = r0 + s;
    for (std::size_t x = 0; x < s; ++x) {
      r0[x] = z.data()[x].real();
      r1[x] = z.data()[x].imag();
    }
  }
}

}  // namespace gpucnn::fft
