#include "fft/fft.hpp"

#include <cmath>
#include <numbers>

#include "core/cpu_features.hpp"
#include "core/error.hpp"

#if GPUCNN_X86_SIMD
#include <immintrin.h>
#endif

namespace gpucnn::fft {
namespace {

inline Complex twiddle_for(const std::vector<Complex>& table, std::size_t k,
                           Direction dir) {
  const Complex w = table[k];
  return dir == Direction::kForward ? w : std::conj(w);
}

#if GPUCNN_X86_SIMD

// Interleaved complex multiply of 4 complex pairs:
// (wr*xr - wi*xi, wr*xi + wi*xr) per pair.
__attribute__((target("avx2,fma"))) inline __m256 cmul4(__m256 w, __m256 x) {
  const __m256 wr = _mm256_moveldup_ps(w);
  const __m256 wi = _mm256_movehdup_ps(w);
  const __m256 x_swap = _mm256_permute_ps(x, 0xB1);
  return _mm256_fmaddsub_ps(x, wr, _mm256_mul_ps(x_swap, wi));
}

// Conjugates 4 interleaved complex pairs (flips imaginary lanes).
__attribute__((target("avx2,fma"))) inline __m256 conj4(__m256 w) {
  const __m256 neg_odd = _mm256_setr_ps(0.0F, -0.0F, 0.0F, -0.0F, 0.0F,
                                        -0.0F, 0.0F, -0.0F);
  return _mm256_xor_ps(w, neg_odd);
}

// One DIT block's butterflies for k in [0, half), contiguous data:
//   t = w*hi; hi = lo - t; lo = lo + t.
// `tw` is the stage's contiguous twiddle row (see Plan::stage_twiddles_).
__attribute__((target("avx2,fma"))) void butterfly_block_dit_avx2(
    Complex* lo_c, Complex* hi_c, const Complex* tw, std::size_t half,
    bool conjugate) {
  auto* lo = reinterpret_cast<float*>(lo_c);
  auto* hi = reinterpret_cast<float*>(hi_c);
  const auto* twf = reinterpret_cast<const float*>(tw);
  std::size_t k = 0;
  for (; k + 4 <= half; k += 4) {
    __m256 w = _mm256_loadu_ps(twf + 2 * k);
    if (conjugate) w = conj4(w);
    const __m256 vlo = _mm256_loadu_ps(lo + 2 * k);
    const __m256 t = cmul4(w, _mm256_loadu_ps(hi + 2 * k));
    _mm256_storeu_ps(hi + 2 * k, _mm256_sub_ps(vlo, t));
    _mm256_storeu_ps(lo + 2 * k, _mm256_add_ps(vlo, t));
  }
  for (; k < half; ++k) {
    const Complex w = conjugate ? std::conj(tw[k]) : tw[k];
    const Complex t = w * hi_c[k];
    hi_c[k] = lo_c[k] - t;
    lo_c[k] = lo_c[k] + t;
  }
}

// One DIF block's butterflies:
//   t = lo - hi; lo = lo + hi; hi = w*t.
__attribute__((target("avx2,fma"))) void butterfly_block_dif_avx2(
    Complex* lo_c, Complex* hi_c, const Complex* tw, std::size_t half,
    bool conjugate) {
  auto* lo = reinterpret_cast<float*>(lo_c);
  auto* hi = reinterpret_cast<float*>(hi_c);
  const auto* twf = reinterpret_cast<const float*>(tw);
  std::size_t k = 0;
  for (; k + 4 <= half; k += 4) {
    __m256 w = _mm256_loadu_ps(twf + 2 * k);
    if (conjugate) w = conj4(w);
    const __m256 vlo = _mm256_loadu_ps(lo + 2 * k);
    const __m256 vhi = _mm256_loadu_ps(hi + 2 * k);
    const __m256 t = _mm256_sub_ps(vlo, vhi);
    _mm256_storeu_ps(lo + 2 * k, _mm256_add_ps(vlo, vhi));
    _mm256_storeu_ps(hi + 2 * k, cmul4(w, t));
  }
  for (; k < half; ++k) {
    const Complex w = conjugate ? std::conj(tw[k]) : tw[k];
    const Complex t = lo_c[k] - hi_c[k];
    lo_c[k] = lo_c[k] + hi_c[k];
    hi_c[k] = w * t;
  }
}

// One DIT butterfly applied to `ncols` adjacent columns: the twiddle is
// shared by the whole row pair, so it broadcasts into both lanes kinds
// and the loop runs 4 complex columns per iteration.
__attribute__((target("avx2,fma"))) void butterfly_cols_dit_avx2(
    Complex* lo_c, Complex* hi_c, Complex w, std::size_t ncols) {
  auto* lo = reinterpret_cast<float*>(lo_c);
  auto* hi = reinterpret_cast<float*>(hi_c);
  const __m256 wr = _mm256_set1_ps(w.real());
  const __m256 wi = _mm256_set1_ps(w.imag());
  std::size_t c = 0;
  for (; c + 4 <= ncols; c += 4) {
    const __m256 x = _mm256_loadu_ps(hi + 2 * c);
    const __m256 x_swap = _mm256_permute_ps(x, 0xB1);
    const __m256 t = _mm256_fmaddsub_ps(x, wr, _mm256_mul_ps(x_swap, wi));
    const __m256 vlo = _mm256_loadu_ps(lo + 2 * c);
    _mm256_storeu_ps(hi + 2 * c, _mm256_sub_ps(vlo, t));
    _mm256_storeu_ps(lo + 2 * c, _mm256_add_ps(vlo, t));
  }
  for (; c < ncols; ++c) {
    const Complex t = w * hi_c[c];
    hi_c[c] = lo_c[c] - t;
    lo_c[c] = lo_c[c] + t;
  }
}

// One DIF butterfly across `ncols` adjacent columns:
//   t = lo - hi; lo = lo + hi; hi = w*t.
__attribute__((target("avx2,fma"))) void butterfly_cols_dif_avx2(
    Complex* lo_c, Complex* hi_c, Complex w, std::size_t ncols) {
  auto* lo = reinterpret_cast<float*>(lo_c);
  auto* hi = reinterpret_cast<float*>(hi_c);
  const __m256 wr = _mm256_set1_ps(w.real());
  const __m256 wi = _mm256_set1_ps(w.imag());
  std::size_t c = 0;
  for (; c + 4 <= ncols; c += 4) {
    const __m256 vlo = _mm256_loadu_ps(lo + 2 * c);
    const __m256 vhi = _mm256_loadu_ps(hi + 2 * c);
    const __m256 t = _mm256_sub_ps(vlo, vhi);
    _mm256_storeu_ps(lo + 2 * c, _mm256_add_ps(vlo, vhi));
    const __m256 t_swap = _mm256_permute_ps(t, 0xB1);
    _mm256_storeu_ps(hi + 2 * c,
                     _mm256_fmaddsub_ps(t, wr, _mm256_mul_ps(t_swap, wi)));
  }
  for (; c < ncols; ++c) {
    const Complex t = lo_c[c] - hi_c[c];
    lo_c[c] = lo_c[c] + hi_c[c];
    hi_c[c] = w * t;
  }
}

#endif  // GPUCNN_X86_SIMD

}  // namespace

Plan::Plan(std::size_t n, Schedule schedule) : n_(n), schedule_(schedule) {
  check(is_pow2(n), "FFT length must be a power of two");
  twiddles_.resize(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double angle =
        -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
    twiddles_[k] = Complex(static_cast<float>(std::cos(angle)),
                           static_cast<float>(std::sin(angle)));
  }
  // Stage-major twiddle rows: the stage with butterfly span `len` uses
  // w[k * (n/len)] for k in [0, len/2); storing each stage's row
  // contiguously turns the strided table walk into unit-stride loads
  // the vector butterflies (and the hardware prefetcher) like. Rows are
  // laid out smallest stage first: offset for `len` is len/2 - 1... the
  // sum of all smaller stages' halves, i.e. len/2 - 1.
  if (n >= 2) {
    stage_twiddles_.resize(n - 1);
    std::size_t offset = 0;
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const std::size_t half = len / 2;
      const std::size_t step = n / len;
      for (std::size_t k = 0; k < half; ++k) {
        stage_twiddles_[offset + k] = twiddles_[k * step];
      }
      offset += half;
    }
  }
  reversal_.resize(n);
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < bits; ++b) {
      r |= ((i >> b) & 1U) << (bits - 1 - b);
    }
    reversal_[i] = static_cast<std::uint32_t>(r);
  }
}

void Plan::bit_reverse(std::span<Complex> data, std::size_t stride) const {
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = reversal_[i];
    if (i < j) std::swap(data[i * stride], data[j * stride]);
  }
}

void Plan::butterflies_dit(std::span<Complex> data, std::size_t stride,
                           Direction dir) const {
#if GPUCNN_X86_SIMD
  if (stride == 1 && simd::active() == simd::Level::kAvx2) {
    const bool conj = dir == Direction::kInverse;
    std::size_t offset = 0;
    for (std::size_t len = 2; len <= n_; len <<= 1) {
      const std::size_t half = len / 2;
      const Complex* tw = stage_twiddles_.data() + offset;
      for (std::size_t start = 0; start < n_; start += len) {
        butterfly_block_dit_avx2(data.data() + start,
                                 data.data() + start + half, tw, half, conj);
      }
      offset += half;
    }
    return;
  }
#endif
  // Stages of doubling butterfly span; input must be bit-reversed.
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t twiddle_step = n_ / len;
    for (std::size_t start = 0; start < n_; start += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const Complex w = twiddle_for(twiddles_, k * twiddle_step, dir);
        Complex& lo = data[(start + k) * stride];
        Complex& hi = data[(start + k + half) * stride];
        const Complex t = w * hi;
        hi = lo - t;
        lo = lo + t;
      }
    }
  }
}

void Plan::butterflies_dif(std::span<Complex> data, std::size_t stride,
                           Direction dir) const {
#if GPUCNN_X86_SIMD
  if (stride == 1 && simd::active() == simd::Level::kAvx2) {
    const bool conj = dir == Direction::kInverse;
    std::size_t offset = static_cast<std::size_t>(n_ - 1);
    for (std::size_t len = n_; len >= 2; len >>= 1) {
      const std::size_t half = len / 2;
      offset -= half;
      const Complex* tw = stage_twiddles_.data() + offset;
      for (std::size_t start = 0; start < n_; start += len) {
        butterfly_block_dif_avx2(data.data() + start,
                                 data.data() + start + half, tw, half, conj);
      }
    }
    return;
  }
#endif
  // Stages of halving butterfly span; output comes out bit-reversed.
  for (std::size_t len = n_; len >= 2; len >>= 1) {
    const std::size_t half = len / 2;
    const std::size_t twiddle_step = n_ / len;
    for (std::size_t start = 0; start < n_; start += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const Complex w = twiddle_for(twiddles_, k * twiddle_step, dir);
        Complex& lo = data[(start + k) * stride];
        Complex& hi = data[(start + k + half) * stride];
        const Complex t = lo - hi;
        lo = lo + hi;
        hi = w * t;
      }
    }
  }
}

void Plan::transform_strided(std::span<Complex> data, std::size_t stride,
                             Direction dir) const {
  check(data.size() >= (n_ - 1) * stride + 1, "FFT buffer too small");
  if (schedule_ == Schedule::kDit) {
    bit_reverse(data, stride);
    butterflies_dit(data, stride, dir);
  } else {
    butterflies_dif(data, stride, dir);
    bit_reverse(data, stride);
  }
  if (dir == Direction::kInverse) {
    const float norm = 1.0F / static_cast<float>(n_);
    for (std::size_t i = 0; i < n_; ++i) data[i * stride] *= norm;
  }
}

void Plan::transform(std::span<Complex> data, Direction dir) const {
  transform_strided(data, 1, dir);
}

void Plan::bit_reverse_rows(Complex* data, std::size_t stride,
                            std::size_t ncols) const {
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = reversal_[i];
    if (i >= j) continue;
    Complex* a = data + i * stride;
    Complex* b = data + j * stride;
    for (std::size_t c = 0; c < ncols; ++c) std::swap(a[c], b[c]);
  }
}

void Plan::butterflies_dit_cols(Complex* data, std::size_t stride,
                                std::size_t ncols, Direction dir) const {
  std::size_t offset = 0;
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len / 2;
    const Complex* tw = stage_twiddles_.data() + offset;
    for (std::size_t start = 0; start < n_; start += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const Complex w =
            dir == Direction::kForward ? tw[k] : std::conj(tw[k]);
        Complex* lo = data + (start + k) * stride;
        Complex* hi = data + (start + k + half) * stride;
#if GPUCNN_X86_SIMD
        if (simd::active() == simd::Level::kAvx2) {
          butterfly_cols_dit_avx2(lo, hi, w, ncols);
          continue;
        }
#endif
        for (std::size_t c = 0; c < ncols; ++c) {
          const Complex t = w * hi[c];
          hi[c] = lo[c] - t;
          lo[c] = lo[c] + t;
        }
      }
    }
    offset += half;
  }
}

void Plan::butterflies_dif_cols(Complex* data, std::size_t stride,
                                std::size_t ncols, Direction dir) const {
  std::size_t offset = n_ - 1;
  for (std::size_t len = n_; len >= 2; len >>= 1) {
    const std::size_t half = len / 2;
    offset -= half;
    const Complex* tw = stage_twiddles_.data() + offset;
    for (std::size_t start = 0; start < n_; start += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const Complex w =
            dir == Direction::kForward ? tw[k] : std::conj(tw[k]);
        Complex* lo = data + (start + k) * stride;
        Complex* hi = data + (start + k + half) * stride;
#if GPUCNN_X86_SIMD
        if (simd::active() == simd::Level::kAvx2) {
          butterfly_cols_dif_avx2(lo, hi, w, ncols);
          continue;
        }
#endif
        for (std::size_t c = 0; c < ncols; ++c) {
          const Complex t = lo[c] - hi[c];
          lo[c] = lo[c] + hi[c];
          hi[c] = w * t;
        }
      }
    }
  }
}

void Plan::transform_columns(std::span<Complex> data, std::size_t stride,
                             std::size_t ncols, Direction dir) const {
  check(ncols >= 1 && ncols <= stride,
        "column-block width must fit inside the row stride");
  check(data.size() >= (n_ - 1) * stride + ncols,
        "FFT column-block buffer too small");
  if (n_ == 1) return;
  if (schedule_ == Schedule::kDit) {
    bit_reverse_rows(data.data(), stride, ncols);
    butterflies_dit_cols(data.data(), stride, ncols, dir);
  } else {
    butterflies_dif_cols(data.data(), stride, ncols, dir);
    bit_reverse_rows(data.data(), stride, ncols);
  }
  if (dir == Direction::kInverse) {
    const float norm = 1.0F / static_cast<float>(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      Complex* row = data.data() + i * stride;
      for (std::size_t c = 0; c < ncols; ++c) row[c] *= norm;
    }
  }
}

std::size_t Plan::footprint_bytes() const {
  return sizeof(Plan) + twiddles_.size() * sizeof(Complex) +
         stage_twiddles_.size() * sizeof(Complex) +
         reversal_.size() * sizeof(std::uint32_t);
}

void transform_2d(std::span<Complex> data, const Plan& row_plan,
                  const Plan& col_plan, Direction dir) {
  const std::size_t cols = row_plan.size();
  const std::size_t rows = col_plan.size();
  check(data.size() == rows * cols, "2-D FFT buffer size mismatch");
  for (std::size_t r = 0; r < rows; ++r) {
    row_plan.transform(data.subspan(r * cols, cols), dir);
  }
  // Column pass: all columns at once, vectorised across columns.
  col_plan.transform_columns(data, cols, cols, dir);
}

void dft_reference(std::span<const Complex> in, std::span<Complex> out,
                   Direction dir) {
  const std::size_t n = in.size();
  check(out.size() == n, "DFT output size mismatch");
  const double sign = dir == Direction::kForward ? -1.0 : 1.0;
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc{0.0, 0.0};
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = sign * 2.0 * std::numbers::pi *
                           static_cast<double>(k) * static_cast<double>(t) /
                           static_cast<double>(n);
      acc += std::complex<double>(in[t]) *
             std::complex<double>(std::cos(angle), std::sin(angle));
    }
    if (dir == Direction::kInverse) acc /= static_cast<double>(n);
    out[k] = Complex(static_cast<float>(acc.real()),
                     static_cast<float>(acc.imag()));
  }
}

}  // namespace gpucnn::fft
