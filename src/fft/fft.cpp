#include "fft/fft.hpp"

#include <cmath>
#include <numbers>

#include "core/error.hpp"

namespace gpucnn::fft {
namespace {

inline Complex twiddle_for(const std::vector<Complex>& table, std::size_t k,
                           Direction dir) {
  const Complex w = table[k];
  return dir == Direction::kForward ? w : std::conj(w);
}

}  // namespace

Plan::Plan(std::size_t n, Schedule schedule) : n_(n), schedule_(schedule) {
  check(is_pow2(n), "FFT length must be a power of two");
  twiddles_.resize(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double angle =
        -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
    twiddles_[k] = Complex(static_cast<float>(std::cos(angle)),
                           static_cast<float>(std::sin(angle)));
  }
  reversal_.resize(n);
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < bits; ++b) {
      r |= ((i >> b) & 1U) << (bits - 1 - b);
    }
    reversal_[i] = static_cast<std::uint32_t>(r);
  }
}

void Plan::bit_reverse(std::span<Complex> data, std::size_t stride) const {
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = reversal_[i];
    if (i < j) std::swap(data[i * stride], data[j * stride]);
  }
}

void Plan::butterflies_dit(std::span<Complex> data, std::size_t stride,
                           Direction dir) const {
  // Stages of doubling butterfly span; input must be bit-reversed.
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t twiddle_step = n_ / len;
    for (std::size_t start = 0; start < n_; start += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const Complex w = twiddle_for(twiddles_, k * twiddle_step, dir);
        Complex& lo = data[(start + k) * stride];
        Complex& hi = data[(start + k + half) * stride];
        const Complex t = w * hi;
        hi = lo - t;
        lo = lo + t;
      }
    }
  }
}

void Plan::butterflies_dif(std::span<Complex> data, std::size_t stride,
                           Direction dir) const {
  // Stages of halving butterfly span; output comes out bit-reversed.
  for (std::size_t len = n_; len >= 2; len >>= 1) {
    const std::size_t half = len / 2;
    const std::size_t twiddle_step = n_ / len;
    for (std::size_t start = 0; start < n_; start += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const Complex w = twiddle_for(twiddles_, k * twiddle_step, dir);
        Complex& lo = data[(start + k) * stride];
        Complex& hi = data[(start + k + half) * stride];
        const Complex t = lo - hi;
        lo = lo + hi;
        hi = w * t;
      }
    }
  }
}

void Plan::transform_strided(std::span<Complex> data, std::size_t stride,
                             Direction dir) const {
  check(data.size() >= (n_ - 1) * stride + 1, "FFT buffer too small");
  if (schedule_ == Schedule::kDit) {
    bit_reverse(data, stride);
    butterflies_dit(data, stride, dir);
  } else {
    butterflies_dif(data, stride, dir);
    bit_reverse(data, stride);
  }
  if (dir == Direction::kInverse) {
    const float norm = 1.0F / static_cast<float>(n_);
    for (std::size_t i = 0; i < n_; ++i) data[i * stride] *= norm;
  }
}

void Plan::transform(std::span<Complex> data, Direction dir) const {
  transform_strided(data, 1, dir);
}

void transform_2d(std::span<Complex> data, const Plan& row_plan,
                  const Plan& col_plan, Direction dir) {
  const std::size_t cols = row_plan.size();
  const std::size_t rows = col_plan.size();
  check(data.size() == rows * cols, "2-D FFT buffer size mismatch");
  for (std::size_t r = 0; r < rows; ++r) {
    row_plan.transform(data.subspan(r * cols, cols), dir);
  }
  for (std::size_t c = 0; c < cols; ++c) {
    col_plan.transform_strided(data.subspan(c), cols, dir);
  }
}

void dft_reference(std::span<const Complex> in, std::span<Complex> out,
                   Direction dir) {
  const std::size_t n = in.size();
  check(out.size() == n, "DFT output size mismatch");
  const double sign = dir == Direction::kForward ? -1.0 : 1.0;
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc{0.0, 0.0};
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = sign * 2.0 * std::numbers::pi *
                           static_cast<double>(k) * static_cast<double>(t) /
                           static_cast<double>(n);
      acc += std::complex<double>(in[t]) *
             std::complex<double>(std::cos(angle), std::sin(angle));
    }
    if (dir == Direction::kInverse) acc /= static_cast<double>(n);
    out[k] = Complex(static_cast<float>(acc.real()),
                     static_cast<float>(acc.imag()));
  }
}

}  // namespace gpucnn::fft
