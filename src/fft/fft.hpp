// Iterative power-of-two FFT used by FFT-based convolution.
//
// Two butterfly schedules are provided:
//   * decimation-in-time  (DIT): bit-reverse first, then butterflies.
//   * decimation-in-frequency (DIF): butterflies first, bit-reverse last —
//     the schedule fbfft's decimateInFrequency kernels use; exposed here so
//     the ablation bench can compare the two schedules on equal terms.
//
// A Plan precomputes twiddles and the bit-reversal permutation for one
// size; its transform methods are const and safe to share across threads,
// which the batched 2-D transforms in FFT convolution rely on.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace gpucnn::fft {

using Complex = std::complex<float>;

enum class Direction { kForward, kInverse };
enum class Schedule { kDit, kDif };

[[nodiscard]] constexpr bool is_pow2(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n.
[[nodiscard]] constexpr std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Precomputed transform of one power-of-two length.
class Plan {
 public:
  explicit Plan(std::size_t n, Schedule schedule = Schedule::kDit);

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] Schedule schedule() const { return schedule_; }

  /// In-place transform of `data` (length n). Inverse includes the 1/n
  /// normalisation, so inverse(forward(x)) == x.
  void transform(std::span<Complex> data, Direction dir) const;

  /// Strided in-place transform: element i lives at data[i * stride].
  /// Used for the column pass of 2-D transforms without a transpose.
  void transform_strided(std::span<Complex> data, std::size_t stride,
                         Direction dir) const;

  /// In-place transform of `ncols` adjacent columns of a row-major
  /// matrix at once: column c's element i lives at data[i * stride + c]
  /// (ncols <= stride). Every column runs the same length-n plan, so
  /// each butterfly's twiddle is shared across the whole row pair and
  /// the inner loop vectorises across columns (broadcast twiddle) —
  /// this is how the 2-D transforms run their column pass at SIMD
  /// width without a transpose.
  void transform_columns(std::span<Complex> data, std::size_t stride,
                         std::size_t ncols, Direction dir) const;

  /// Resident bytes of the precomputed tables (twiddles, stage rows,
  /// bit-reversal permutation); what the plan cache accounts under
  /// fft.plan_cache.bytes.
  [[nodiscard]] std::size_t footprint_bytes() const;

 private:
  void butterflies_dit(std::span<Complex> data, std::size_t stride,
                       Direction dir) const;
  void butterflies_dif(std::span<Complex> data, std::size_t stride,
                       Direction dir) const;
  void bit_reverse(std::span<Complex> data, std::size_t stride) const;
  void butterflies_dit_cols(Complex* data, std::size_t stride,
                            std::size_t ncols, Direction dir) const;
  void butterflies_dif_cols(Complex* data, std::size_t stride,
                            std::size_t ncols, Direction dir) const;
  void bit_reverse_rows(Complex* data, std::size_t stride,
                        std::size_t ncols) const;

  std::size_t n_;
  Schedule schedule_;
  std::vector<Complex> twiddles_;       // e^{-2πi k / n}, k in [0, n/2)
  // Per-stage contiguous twiddle rows (smallest stage first, n-1 total):
  // the stage with span `len` reads its len/2 twiddles unit-stride,
  // which the vectorised butterflies require.
  std::vector<Complex> stage_twiddles_;
  std::vector<std::uint32_t> reversal_; // bit-reversal permutation
};

/// In-place 2-D transform of a rows x cols matrix (both powers of two),
/// row-major. Applies `row_plan` (length cols) to every row and
/// `col_plan` (length rows) to every column.
void transform_2d(std::span<Complex> data, const Plan& row_plan,
                  const Plan& col_plan, Direction dir);

/// Reference O(n^2) DFT for testing.
void dft_reference(std::span<const Complex> in, std::span<Complex> out,
                   Direction dir);

}  // namespace gpucnn::fft
