// Process-wide cache of fft::Plan objects, keyed by (length, schedule).
//
// A Plan precomputes twiddles, per-stage contiguous twiddle rows and the
// bit-reversal permutation — O(n) memory and O(n log n) trigonometry.
// The FFT convolution engines need the same one or two sizes on every
// layer call; rebuilding the plan per call (the pre-cache behaviour of
// conv/fft_conv.cpp) wasted that setup on the hot path. The cache
// builds each (n, schedule) once per process and hands out shared
// ownership, so plans outlive any caller and are safe to use from any
// thread (Plan's transform methods are const).
//
// Lookup takes one mutex; a miss constructs the plan under the same
// lock, so a concurrent first use of one size builds exactly one plan.
// Observability (docs/METRICS.md): fft.plan_cache.hits / misses count
// lookups, the fft.plan_cache.bytes gauge tracks the resident footprint
// of every cached plan.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "fft/fft.hpp"

namespace gpucnn::fft {

class PlanCache {
 public:
  /// The cached plan of length `n` (a power of two) and `schedule`,
  /// building it on first use. Never returns null.
  [[nodiscard]] std::shared_ptr<const Plan> get(
      std::size_t n, Schedule schedule = Schedule::kDit);

  /// Number of distinct (length, schedule) plans currently cached.
  [[nodiscard]] std::size_t size() const;

  /// Drops every cached plan (outstanding shared_ptrs stay valid) and
  /// zeroes the bytes gauge. Tests use this for deterministic counts.
  void clear();

  /// The process-wide instance every engine shares.
  static PlanCache& instance();

 private:
  using Key = std::pair<std::size_t, Schedule>;

  mutable std::mutex mutex_;
  std::map<Key, std::shared_ptr<const Plan>> plans_;
  std::size_t resident_bytes_ = 0;
};

/// Convenience: PlanCache::instance().get(n, schedule).
[[nodiscard]] std::shared_ptr<const Plan> cached_plan(
    std::size_t n, Schedule schedule = Schedule::kDit);

}  // namespace gpucnn::fft
