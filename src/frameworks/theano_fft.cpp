// Theano-fft (paper ref [19]): conv2d_fft, FFT convolution built from
// cuFFT plans plus Theano-generated elementwise/batched-dot kernels. The
// paper's profile of it is bleak on every axis, and each deficiency is
// encoded structurally here:
//   * kernels use almost no registers or shared memory (Table II: 2 regs,
//     4.5 KB) — occupancy is high (39–59%) but useless;
//   * heavy bank conflicts (shared efficiency 8–20%) and divergent
//     control flow (WEE 66–81%) serialise the inner loops;
//   * "most of the runtime is spent on data preparation and data
//     transfer between CPU and GPU" (§V.A) — Theano stages the padded
//     arrays through host memory every iteration;
//   * cuFFT pads to the exact linear-convolution size i + 2p + k - 1; when
//     that length contains a large prime factor, cuFFT falls back to a
//     Bluestein plan with roughly doubled workspace — the non-monotonic
//     memory spikes of Fig. 5(b, d).
// Stride must be 1 (§IV.B).
#include <algorithm>
#include <cmath>

#include "frameworks/common.hpp"
#include "frameworks/impl_factory.hpp"

namespace gpucnn::frameworks::detail {
namespace {

std::size_t largest_prime_factor(std::size_t n) {
  std::size_t largest = 1;
  for (std::size_t p = 2; p * p <= n; ++p) {
    while (n % p == 0) {
      largest = p;
      n /= p;
    }
  }
  return std::max(largest, n);
}

/// cuFFT transform length: exact linear-convolution size, padded to even.
std::size_t cufft_size(const ConvConfig& cfg) {
  const std::size_t t = cfg.input + 2 * cfg.pad + cfg.kernel - 1;
  return t + (t % 2);
}

/// Bluestein fallback multiplier for awkward lengths.
double plan_overhead(std::size_t t) {
  return largest_prime_factor(t) > 13 ? 2.0 : 1.0;
}

double fft2d_flops(double t) {
  return 10.0 * t * t * std::log2(std::max(t, 2.0));
}

gpusim::KernelProfile theano_fft_kernel(double t, double transforms,
                                        bool inverse,
                                        double plan_factor) {
  gpusim::KernelProfile k;
  k.name = inverse ? "cufft_inverse_c2r" : "cufft_forward_r2c";
  k.kind = inverse ? gpusim::KernelClass::kFftInverse
                   : gpusim::KernelClass::kFft;
  k.block_threads = 128;
  k.regs_per_thread = 2;  // Table II: almost everything lives in gmem
  k.smem_per_block = static_cast<std::size_t>(4.5 * 1024);
  k.grid_blocks = grid_for(transforms * t, k.block_threads);
  k.flops = transforms * fft2d_flops(t) * plan_factor;
  // cuFFT fuses a few butterfly stages per kernel; the inter-stage data
  // still round-trips global memory a couple of times per transform.
  k.global_load_bytes = transforms * t * t * 8.0 * 1.5;
  k.global_store_bytes = k.global_load_bytes;
  k.gld_efficiency = 0.18;
  k.gst_efficiency = 0.35;
  // Within a stage everything funnels through conflicted shared memory —
  // the paper's "bank conflicts are the primary concern" for Theano-fft.
  k.shared_bytes = k.flops * 1.1;
  k.shared_efficiency = 0.14;  // the paper's 8–20% band
  // Divergence varies with the mix of radix stages for this length.
  k.warp_exec_efficiency =
      0.66 + 0.15 * std::fmod(t, 32.0) / 32.0;
  k.compute_efficiency = 0.10;
  k.achieved_occupancy_factor = 0.78;  // high occupancy, little use
  k.occupancy_needed = 0.35;
  return k;
}

gpusim::KernelProfile theano_batched_dot(const ConvConfig& cfg, double t) {
  gpusim::KernelProfile k;
  k.name = "theano_batched_complex_dot";
  k.kind = gpusim::KernelClass::kGemm;
  k.block_threads = 128;
  k.regs_per_thread = 2;
  k.smem_per_block = static_cast<std::size_t>(4.5 * 1024);
  k.grid_blocks = grid_for(t * t, 2);
  k.flops = t * t * 8.0 * static_cast<double>(cfg.batch) *
            static_cast<double>(cfg.channels) *
            static_cast<double>(cfg.filters);
  const double spectra =
      t * t * 8.0 *
      (static_cast<double>(cfg.batch * cfg.channels) +
       static_cast<double>(cfg.filters * cfg.channels) +
       static_cast<double>(cfg.batch * cfg.filters));
  k.global_load_bytes = spectra;
  k.global_store_bytes = spectra * 0.3;
  k.gld_efficiency = 0.20;
  k.gst_efficiency = 0.40;
  k.shared_bytes = k.flops * 0.3;
  k.shared_efficiency = 0.14;
  k.warp_exec_efficiency = 0.75;
  k.compute_efficiency = 0.12;
  k.achieved_occupancy_factor = 0.78;
  k.occupancy_needed = 0.35;
  return k;
}

class TheanoFft final : public Framework {
 public:
  [[nodiscard]] FrameworkId id() const override {
    return FrameworkId::kTheanoFft;
  }
  [[nodiscard]] conv::Strategy strategy() const override {
    return conv::Strategy::kFft;
  }

  [[nodiscard]] ShapeSupport supports(const ConvConfig& cfg) const override {
    if (cfg.stride != 1) return {false, "FFT convolution requires stride 1"};
    if (cfg.groups != 1) {
      return {false, "FFT convolution does not support filter groups"};
    }
    if (cfg.kernel > cfg.input + 2 * cfg.pad) {
      return {false, "kernel larger than padded input"};
    }
    return {};
  }

  [[nodiscard]] ExecutionPlan plan(const ConvConfig& cfg) const override {
    const PlanScope obs_scope("theano-fft");
    const auto support = supports(cfg);
    check(support.ok, "theano-fft: " + support.reason);
    const auto t_int = cufft_size(cfg);
    const double t = static_cast<double>(t_int);
    const double plan_factor = plan_overhead(t_int);
    const double nc = static_cast<double>(cfg.batch * cfg.channels);
    const double fc = static_cast<double>(cfg.filters * cfg.channels);
    const double nf = static_cast<double>(cfg.batch * cfg.filters);

    ExecutionPlan plan;
    const struct {
      gpusim::Pass pass;
      double fwd_transforms;
      double inv_transforms;
    } passes[] = {
        {gpusim::Pass::kForward, nc + fc, nf},
        {gpusim::Pass::kBackwardData, nf + fc, nc},
        {gpusim::Pass::kBackwardFilter, nc + nf, fc}};
    for (const auto& p : passes) {
      plan.kernels.push_back(tagged(
          theano_fft_kernel(t, p.fwd_transforms, false, plan_factor),
          p.pass));
      plan.kernels.push_back(tagged(theano_batched_dot(cfg, t), p.pass));
      plan.kernels.push_back(tagged(
          theano_fft_kernel(t, p.inv_transforms, true, plan_factor),
          p.pass));
    }

    add_activation_memory(plan, cfg, /*with_gradient_buffers=*/true, 115.0,
                          "theano-fft");
    // Bluestein fallback scratch applies to the transform working set,
    // not the whole spectra store.
    const double spectra_bytes = (nc + fc + nf) * t * t * 8.0;
    plan.memory.push_back({"theano-fft:spectra",
                           spectra_bytes * (1.0 + (plan_factor - 1.0) * 0.5),
                           /*workspace=*/true});

    // Host-side data preparation: padded arrays are assembled on the CPU
    // and shipped over per iteration (pageable, unoverlapped).
    const double prep_bytes = (nc + fc) * t * t * kFloatBytes;
    plan.transfers.push_back({"padded arrays h2d",
                              gpusim::TransferDirection::kHostToDevice,
                              prep_bytes, false, 0.0});
    plan.transfers.push_back({"host zero-pad memcpy",
                              gpusim::TransferDirection::kHostToDevice,
                              prep_bytes * 0.6, false, 0.0});
    add_batch_transfers(plan, cfg, /*pinned=*/false, /*overlap=*/0.0);
    return plan;
  }

  [[nodiscard]] const conv::ConvEngine& engine() const override {
    return shared_engine(conv::Strategy::kFft);
  }
  [[nodiscard]] std::size_t table2_registers() const override { return 2; }
  [[nodiscard]] double table2_smem_kb() const override { return 4.5; }
};

}  // namespace

std::unique_ptr<Framework> make_theano_fft() {
  return std::make_unique<TheanoFft>();
}

}  // namespace gpucnn::frameworks::detail
