#include <array>
#include <memory>

#include "conv/direct_conv.hpp"
#include "conv/fft_conv.hpp"
#include "conv/gemm_conv.hpp"
#include "conv/winograd_conv.hpp"
#include "core/error.hpp"
#include "frameworks/framework.hpp"
#include "frameworks/impl_factory.hpp"

namespace gpucnn::frameworks {

std::string_view to_string(FrameworkId id) {
  switch (id) {
    case FrameworkId::kCaffe:
      return "Caffe";
    case FrameworkId::kCudnn:
      return "cuDNN";
    case FrameworkId::kTorchCunn:
      return "Torch-cunn";
    case FrameworkId::kTheanoCorrMM:
      return "Theano-CorrMM";
    case FrameworkId::kCudaConvnet2:
      return "cuda-convnet2";
    case FrameworkId::kFbfft:
      return "fbfft";
    case FrameworkId::kTheanoFft:
      return "Theano-fft";
  }
  return "unknown";
}

namespace detail {

const conv::ConvEngine& shared_engine(conv::Strategy s) {
  static const conv::DirectConv direct;
  static const conv::GemmConv unrolling;
  static const conv::FftConv fft;
  static const conv::WinogradConv winograd;
  switch (s) {
    case conv::Strategy::kDirect:
      return direct;
    case conv::Strategy::kUnrolling:
      return unrolling;
    case conv::Strategy::kFft:
      return fft;
    case conv::Strategy::kWinograd:
      return winograd;
  }
  check(false, "unknown strategy");
  return direct;
}

}  // namespace detail

const Framework& framework(FrameworkId id) {
  static const auto instances = [] {
    std::array<std::unique_ptr<Framework>, kAllFrameworks.size()> out;
    out[static_cast<std::size_t>(FrameworkId::kCaffe)] =
        detail::make_caffe();
    out[static_cast<std::size_t>(FrameworkId::kCudnn)] =
        detail::make_cudnn();
    out[static_cast<std::size_t>(FrameworkId::kTorchCunn)] =
        detail::make_torch_cunn();
    out[static_cast<std::size_t>(FrameworkId::kTheanoCorrMM)] =
        detail::make_theano_corrmm();
    out[static_cast<std::size_t>(FrameworkId::kCudaConvnet2)] =
        detail::make_cuda_convnet2();
    out[static_cast<std::size_t>(FrameworkId::kFbfft)] =
        detail::make_fbfft();
    out[static_cast<std::size_t>(FrameworkId::kTheanoFft)] =
        detail::make_theano_fft();
    return out;
  }();
  const auto index = static_cast<std::size_t>(id);
  check(index < instances.size(), "unknown framework id");
  return *instances[index];
}

std::span<const FrameworkId> all_frameworks() { return kAllFrameworks; }

}  // namespace gpucnn::frameworks
