// fbfft (paper ref [25], Fig. 4(e)-right): Facebook's FFT convolution.
// Kernel structure straight from the paper's §V.A analysis: "the kernel
// decimateInFrequency uses DIF algorithm to transform input and weight
// data from spatial domain to frequency domain … the Transpose kernel is
// used to convert the BDHW layout into HWBD and then conducts Cgemm
// matrix multiplications … converts the Cgemm results back … and performs
// an inverse FFT by using decimateInFrequencyInverse".
//
// Transforms are padded to the next power of two covering i + 2p + k - 1
// (identical to conv::FftConv::transform_size), which is what produces
// both the kernel-size-independent runtime of Fig. 3(d) and the stepwise
// memory jumps of Fig. 5(b). Spectra for input (N*C), filters (F*C) and
// output (N*F, batch-tiled at 128 images) dominate memory — the paper's
// "unreasonable memory consumption". Stride must be 1 (§IV.B).
#include <algorithm>
#include <cmath>

#include "conv/fft_conv.hpp"
#include "fft/fft.hpp"
#include "frameworks/common.hpp"
#include "frameworks/impl_factory.hpp"

namespace gpucnn::frameworks::detail {
namespace {

// Real-input (Hermitian-symmetric) 2-D transform: half the complex cost.
double fft2d_flops(double s) {
  return 5.0 * s * s * std::log2(std::max(s, 2.0));
}

// Hermitian symmetry: only s*(s/2+1) frequency bins carry information.
double hermitian_bins(double s) { return s * (s / 2.0 + 1.0); }

// fbfft's tiling heuristic: a non-power-of-two input can either be padded
// up to one big power-of-two transform or covered by overlapping
// power-of-two tiles (overlap k-1, each tile yielding (T-k+1)^2 outputs).
// The planner picks whichever minimises total transform area per
// image-channel. The discrete tile-count jumps are a source of the
// paper's Fig. 5 memory fluctuations.
struct TilePlan {
  double tile_size = 0.0;   ///< transform edge length
  double tile_count = 1.0;  ///< tiles per image (nt^2)
  /// Total transform area per 2-D plane.
  [[nodiscard]] double area() const {
    return tile_count * tile_size * tile_size;
  }
};

TilePlan fbfft_tile_plan(const ConvConfig& cfg) {
  const double span = static_cast<double>(cfg.input + 2 * cfg.pad);
  const double k = static_cast<double>(cfg.kernel);
  const double out_span = span - k + 1.0;

  TilePlan best;
  best.tile_size =
      static_cast<double>(fft::next_pow2(cfg.input + 2 * cfg.pad));
  best.tile_count = 1.0;
  for (double t = 32.0; t < best.tile_size; t *= 2.0) {
    if (t < 2.0 * k) continue;  // overlap would dominate
    const double stride = t - k + 1.0;
    const double nt = std::ceil(out_span / stride);
    TilePlan candidate{t, nt * nt};
    if (candidate.area() < best.area()) best = candidate;
  }
  return best;
}

gpusim::KernelProfile fbfft_transform(double s, double transforms,
                                      bool inverse) {
  gpusim::KernelProfile k;
  k.name = inverse ? "decimateInFrequencyInverse" : "decimateInFrequency";
  k.kind = inverse ? gpusim::KernelClass::kFftInverse
                   : gpusim::KernelClass::kFft;
  k.block_threads = 128;
  k.regs_per_thread = 106;  // Table II
  k.smem_per_block = 10 * 1024;
  k.grid_blocks = grid_for(transforms * s, k.block_threads);
  k.flops = transforms * fft2d_flops(s);
  // The butterflies run in registers/shared memory (fbfft's design
  // point); DRAM sees each Hermitian-packed grid once in, once out.
  k.global_load_bytes = transforms * hermitian_bins(s) * 8.0;
  k.global_store_bytes = transforms * hermitian_bins(s) * 8.0;
  k.gld_efficiency = 0.50;
  k.gst_efficiency = 0.70;
  k.gld_dram_factor = 1.0;
  k.gst_dram_factor = 1.0;
  k.shared_bytes = k.flops * 0.4;
  k.shared_efficiency = 0.95;
  k.warp_exec_efficiency = 0.97;
  k.compute_efficiency = 0.33;
  k.achieved_occupancy_factor = 0.80;
  k.occupancy_needed = 0.15;
  return k;
}

gpusim::KernelProfile fbfft_transpose(double spectra_bytes,
                                      const char* pass) {
  gpusim::KernelProfile k;
  // Part of the layout conversion is fused into the FFT kernels' load/
  // store stages; the standalone Transpose kernel moves the remainder.
  spectra_bytes *= 0.75;
  k.name = std::string("Transpose.") + pass;
  k.kind = gpusim::KernelClass::kTranspose;
  k.block_threads = 256;
  k.regs_per_thread = 28;
  k.smem_per_block = 12 * 1024;  // staging tile
  k.grid_blocks = grid_for(spectra_bytes / 8.0, k.block_threads);
  k.global_load_bytes = spectra_bytes;
  k.global_store_bytes = spectra_bytes;
  k.gld_efficiency = 0.85;  // tiled transpose coalesces both sides
  k.gst_efficiency = 0.85;
  k.gld_dram_factor = 1.05;
  k.gst_dram_factor = 1.15;
  k.shared_bytes = spectra_bytes * 2.0;
  k.shared_efficiency = 0.94;  // padded tiles avoid most conflicts
  k.warp_exec_efficiency = 0.99;
  k.compute_efficiency = 0.5;
  k.achieved_occupancy_factor = 0.70;
  k.occupancy_needed = 0.30;
  return k;
}

// Zero-padding / layout kernel preparing the real buffers of one pass.
gpusim::KernelProfile fbfft_pad(const ConvConfig& cfg, const char* pass) {
  gpusim::KernelProfile k;
  k.name = std::string("padAlongDim.") + pass;
  k.kind = gpusim::KernelClass::kPointwise;
  k.block_threads = 256;
  k.regs_per_thread = 20;
  const double bytes = (input_bytes(cfg) + output_bytes(cfg)) * 0.5;
  k.grid_blocks = grid_for(bytes / kFloatBytes, k.block_threads);
  k.global_load_bytes = bytes;
  k.global_store_bytes = bytes;
  k.gld_efficiency = 0.80;
  k.gst_efficiency = 0.80;
  k.gld_dram_factor = 1.0;
  k.gst_dram_factor = 1.0;
  k.shared_efficiency = 1.0;
  k.warp_exec_efficiency = 0.99;
  k.compute_efficiency = 0.5;
  k.achieved_occupancy_factor = 0.70;
  k.occupancy_needed = 0.30;
  return k;
}

gpusim::KernelProfile fbfft_cgemm(const ConvConfig& cfg, double s,
                                  double tile_count) {
  gpusim::KernelProfile k;
  k.name = "Cgemm";
  k.kind = gpusim::KernelClass::kGemm;
  k.block_threads = 256;
  k.regs_per_thread = 90;
  k.smem_per_block = 8 * 1024;
  const double bins = hermitian_bins(s) * tile_count;
  k.grid_blocks = grid_for(bins, 4);
  // One small complex GEMM per informative frequency bin, per pass.
  k.flops = bins * 8.0 * static_cast<double>(cfg.batch) *
            static_cast<double>(cfg.channels) *
            static_cast<double>(cfg.filters);
  const double operand =
      bins * 8.0 *
      (static_cast<double>(cfg.batch) * static_cast<double>(cfg.channels) +
       static_cast<double>(cfg.filters) *
           static_cast<double>(cfg.channels));
  k.global_load_bytes = operand;
  k.global_store_bytes = bins * 8.0 * static_cast<double>(cfg.batch) *
                         static_cast<double>(cfg.filters);
  k.gld_dram_factor = 1.1;
  k.gst_dram_factor = 1.1;
  k.gld_efficiency = 0.60;
  k.gst_efficiency = 0.75;
  k.shared_bytes = k.flops * 0.4;
  k.shared_efficiency = 1.05;
  k.warp_exec_efficiency = 0.98;
  k.compute_efficiency = 0.50;
  k.achieved_occupancy_factor = 0.80;
  k.occupancy_needed = 0.16;
  return k;
}

class Fbfft final : public Framework {
 public:
  [[nodiscard]] FrameworkId id() const override {
    return FrameworkId::kFbfft;
  }
  [[nodiscard]] conv::Strategy strategy() const override {
    return conv::Strategy::kFft;
  }

  [[nodiscard]] ShapeSupport supports(const ConvConfig& cfg) const override {
    if (cfg.stride != 1) return {false, "FFT convolution requires stride 1"};
    if (cfg.groups != 1) {
      return {false, "FFT convolution does not support filter groups"};
    }
    if (cfg.kernel > cfg.input + 2 * cfg.pad) {
      return {false, "kernel larger than padded input"};
    }
    return {};
  }

  [[nodiscard]] ExecutionPlan plan(const ConvConfig& cfg) const override {
    const PlanScope obs_scope("fbfft");
    const auto support = supports(cfg);
    check(support.ok, "fbfft: " + support.reason);
    const TilePlan tiles = fbfft_tile_plan(cfg);
    const double s = tiles.tile_size;
    const double nc = static_cast<double>(cfg.batch * cfg.channels);
    const double fc = static_cast<double>(cfg.filters * cfg.channels);
    const double nf = static_cast<double>(cfg.batch * cfg.filters);
    // Transposed (frequency-major) data is Hermitian-packed.
    const double packed_bin_bytes =
        tiles.tile_count * hermitian_bins(s) * 8.0;

    ExecutionPlan plan;
    // Three passes: fwd (in+filt -> out), bwd-data (gout+filt -> gin),
    // bwd-filter (in+gout -> gw). Each: forward FFTs, transpose in,
    // Cgemm, transpose out, inverse FFT.
    const struct {
      const char* pass;
      double fwd_transforms;
      double inv_transforms;
    } passes[] = {
        {"fwd", nc + fc, nf},
        {"bwd_data", nf + fc, nc},
        {"bwd_filter", nc + nf, fc},
    };
    for (const auto& p : passes) {
      const gpusim::Pass pass = pass_from_label(p.pass);
      plan.kernels.push_back(tagged(fbfft_pad(cfg, p.pass), pass));
      plan.kernels.push_back(tagged(
          fbfft_transform(s, p.fwd_transforms * tiles.tile_count, false),
          pass));
      plan.kernels.push_back(tagged(
          fbfft_transpose(p.fwd_transforms * packed_bin_bytes, p.pass),
          pass));
      plan.kernels.push_back(
          tagged(fbfft_cgemm(cfg, s, tiles.tile_count), pass));
      plan.kernels.push_back(tagged(
          fbfft_transpose(p.inv_transforms * packed_bin_bytes, p.pass),
          pass));
      plan.kernels.push_back(tagged(
          fbfft_transform(s, p.inv_transforms * tiles.tile_count, true),
          pass));
    }

    add_activation_memory(plan, cfg, /*with_gradient_buffers=*/false,
                          150.0, "fbfft");
    // Frequency-domain workspace: Hermitian-packed S x (S/2+1) spectra
    // for the input, filter and output planes, held four ways — the
    // image-major (BDHW) and transposed frequency-major (HWBD) layouts,
    // each double-buffered so transpose and Cgemm stages can overlap.
    // This is the paper's "unreasonable memory consumption": packing
    // halves each grid, but fbfft spends the savings on layout copies.
    plan.memory.push_back({"fbfft:spectra",
                           4.0 * (nc + fc + nf) * tiles.tile_count *
                               hermitian_bins(s) * 8.0,
                           /*workspace=*/true});
    plan.memory.push_back(
        {"fbfft:transpose-staging", 256.0 * 1048576.0, /*workspace=*/true});

    add_batch_transfers(plan, cfg, /*pinned=*/true, /*overlap=*/0.97);
    return plan;
  }

  [[nodiscard]] const conv::ConvEngine& engine() const override {
    return shared_engine(conv::Strategy::kFft);
  }
  [[nodiscard]] std::size_t table2_registers() const override {
    return 106;
  }
  [[nodiscard]] double table2_smem_kb() const override { return 10.0; }
};

}  // namespace

std::unique_ptr<Framework> make_fbfft() { return std::make_unique<Fbfft>(); }

}  // namespace gpucnn::frameworks::detail
