// Internal factory functions, one per implementation model; used by the
// registry only.
#pragma once

#include <memory>

#include "frameworks/framework.hpp"

namespace gpucnn::frameworks::detail {

[[nodiscard]] std::unique_ptr<Framework> make_caffe();
[[nodiscard]] std::unique_ptr<Framework> make_cudnn();
[[nodiscard]] std::unique_ptr<Framework> make_torch_cunn();
[[nodiscard]] std::unique_ptr<Framework> make_theano_corrmm();
[[nodiscard]] std::unique_ptr<Framework> make_cuda_convnet2();
[[nodiscard]] std::unique_ptr<Framework> make_fbfft();
[[nodiscard]] std::unique_ptr<Framework> make_theano_fft();

/// Shared per-strategy numeric engines (stateless, thread-compatible).
[[nodiscard]] const conv::ConvEngine& shared_engine(conv::Strategy s);

}  // namespace gpucnn::frameworks::detail
