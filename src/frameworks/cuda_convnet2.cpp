// cuda-convnet2 (paper ref [18], Fig. 4(e)-left): direct convolution via
// three hand-written kernel families — filterActs (forward),
// img_acts (backward data) and weight_acts (backward filter). It needs no
// workspace at all ("computes the convolution directly and thus does not
// need temporary memory", §V.B) which makes it the most memory-efficient
// implementation, but its 116 registers/thread cap theoretical occupancy
// near 25% (the paper derives 17 active warps) and its batch loop is
// hard-tuned for multiples of 128 images.
//
// Shape limits (paper §IV.B): square input and kernel only (our configs
// are always square), mini-batch % 32 == 0, filters % 16 == 0.
#include <algorithm>

#include "frameworks/common.hpp"
#include "frameworks/impl_factory.hpp"

namespace gpucnn::frameworks::detail {
namespace {

// The batch loop processes 128-image blocks at full throughput; other
// 32-multiples fall off the fast path.
double convnet2_efficiency(const ConvConfig& cfg) {
  const double base = 0.48;
  return cfg.batch % 128 == 0 ? base : base * 0.85;
}

gpusim::KernelProfile convnet2_kernel(const ConvConfig& cfg,
                                      const char* name) {
  gpusim::KernelProfile k;
  k.name = name;
  k.kind = gpusim::KernelClass::kDirectConv;
  k.block_threads = 128;
  k.regs_per_thread = 116;  // Table II; yields the paper's ~25% ceiling
  k.smem_per_block = 16 * 1024;
  k.grid_blocks = grid_for(
      static_cast<double>(cfg.output_shape().count()) / 4.0,
      k.block_threads);
  k.flops = conv_pass_flops(cfg);
  // Direct convolution re-reads input windows from global/texture; the
  // traffic is higher than GEMM staging but access is well coalesced.
  k.global_load_bytes =
      input_bytes(cfg) * static_cast<double>(cfg.kernel) / 2.0 +
      filter_bytes(cfg) * static_cast<double>(cfg.batch) / 32.0;
  k.global_store_bytes = output_bytes(cfg);
  k.gld_efficiency = 0.55;
  k.gst_efficiency = 0.80;
  k.shared_bytes = k.flops * 0.35;
  k.shared_efficiency = 1.10;
  k.warp_exec_efficiency = 0.98;
  k.compute_efficiency = convnet2_efficiency(cfg);
  k.achieved_occupancy_factor = 0.82;  // paper: 14–22% achieved
  k.occupancy_needed = 0.14;           // heavy ILP per thread
  return k;
}

class CudaConvnet2 final : public Framework {
 public:
  [[nodiscard]] FrameworkId id() const override {
    return FrameworkId::kCudaConvnet2;
  }
  [[nodiscard]] conv::Strategy strategy() const override {
    return conv::Strategy::kDirect;
  }

  [[nodiscard]] ShapeSupport supports(const ConvConfig& cfg) const override {
    if (cfg.batch % 32 != 0) {
      return {false, "mini-batch must be a multiple of 32"};
    }
    if (cfg.filters % 16 != 0) {
      return {false, "filter count must be a multiple of 16"};
    }
    return {};
  }

  [[nodiscard]] ExecutionPlan plan(const ConvConfig& cfg) const override {
    const PlanScope obs_scope("cuda-convnet2");
    const auto support = supports(cfg);
    check(support.ok, "cuda-convnet2: " + support.reason);
    ExecutionPlan plan;
    plan.kernels.push_back(tagged(
        convnet2_kernel(cfg, "filterActs_YxX_color"),
        gpusim::Pass::kForward));
    plan.kernels.push_back(tagged(convnet2_kernel(cfg, "img_acts_color"),
                                  gpusim::Pass::kBackwardData));
    plan.kernels.push_back(tagged(
        convnet2_kernel(cfg, "conv_weight_acts_c_preload"),
        gpusim::Pass::kBackwardFilter));

    add_activation_memory(plan, cfg, /*with_gradient_buffers=*/false,
                          105.0, "convnet2");
    // No workspace: the defining property of direct convolution.
    add_batch_transfers(plan, cfg, /*pinned=*/false, /*overlap=*/0.35);
    return plan;
  }

  [[nodiscard]] const conv::ConvEngine& engine() const override {
    return shared_engine(conv::Strategy::kDirect);
  }
  [[nodiscard]] std::size_t table2_registers() const override {
    return 116;
  }
  [[nodiscard]] double table2_smem_kb() const override { return 16.0; }
};

}  // namespace

std::unique_ptr<Framework> make_cuda_convnet2() {
  return std::make_unique<CudaConvnet2>();
}

}  // namespace gpucnn::frameworks::detail
