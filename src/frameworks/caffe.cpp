// Caffe's convolutional layer (paper refs [23], Fig. 4(a)): explicit
// im2col lowering plus one cuBLAS GEMM per image. Caffe allocates diff
// blobs for every tensor (doubling activation memory) and hides input
// transfers behind a data-prefetch thread (paper §V.D: "a data
// prefetching thread is used to hide the latency from CPU-GPU data
// transfer" — its Fig. 7 share is ~0%).
#include "frameworks/common.hpp"
#include "frameworks/impl_factory.hpp"

namespace gpucnn::frameworks::detail {
namespace {

UnrollingTraits caffe_traits() {
  UnrollingTraits t;
  t.gemm_kernel_name = "magma_sgemm";     // cuBLAS kernel family
  t.gemm_regs = 86;                       // Table II
  t.gemm_smem = static_cast<std::size_t>(8.5 * 1024);
  t.gemm_block = 256;
  t.gemm_base_eff = 0.32;
  t.gemm_gld_eff = 0.18;
  t.gemm_gst_eff = 0.55;
  t.gemm_shared_eff = 1.12;
  t.unroll_gld_eff = 0.25;
  t.unroll_gst_eff = 0.85;
  t.achieved_occ_factor = 0.80;
  t.gradient_buffers = true;
  t.context_mb = 110.0;
  t.pinned_input = true;
  t.input_overlap = 0.98;  // prefetch thread
  return t;
}

class Caffe final : public Framework {
 public:
  [[nodiscard]] FrameworkId id() const override {
    return FrameworkId::kCaffe;
  }
  [[nodiscard]] conv::Strategy strategy() const override {
    return conv::Strategy::kUnrolling;
  }
  [[nodiscard]] ShapeSupport supports(const ConvConfig&) const override {
    return {};  // unrolling supports any shape (paper §IV.B summary)
  }
  [[nodiscard]] ExecutionPlan plan(const ConvConfig& cfg) const override {
    const PlanScope obs_scope("caffe");
    return make_unrolling_plan(cfg, caffe_traits(), "caffe");
  }
  [[nodiscard]] const conv::ConvEngine& engine() const override {
    return shared_engine(conv::Strategy::kUnrolling);
  }
  [[nodiscard]] std::size_t table2_registers() const override { return 86; }
  [[nodiscard]] double table2_smem_kb() const override { return 8.5; }
};

}  // namespace

std::unique_ptr<Framework> make_caffe() { return std::make_unique<Caffe>(); }

}  // namespace gpucnn::frameworks::detail
