// cuDNN v3 (paper ref [24], Fig. 4(d)): implicit-GEMM convolution. The
// unrolling and the multiply are fused — "the unrolling operations and
// matrix-matrix multiplications are optimized by using shared memory and
// tiled matrix multiplication", so no im2col/col2im traffic appears and
// the dominant kernels (cuDNN_gemm, wgrad_alg0_engine) run almost
// entirely out of shared memory (the paper measures ~0% global access
// efficiency for them, and >130% shared efficiency from broadcasts).
//
// Its fixed-tile kernels lose steam as the filter count grows (redundant
// halo recompute per tile), which is what lets Theano-CorrMM's plain
// cuBLAS edge past it above ~160 filters (Fig. 3(c)).
#include <algorithm>

#include "frameworks/common.hpp"
#include "frameworks/impl_factory.hpp"

namespace gpucnn::frameworks::detail {
namespace {

// Implicit-GEMM sustained fraction of peak: 0.66 at the base shape,
// decaying once the filter dimension spills past the tile plan.
double cudnn_efficiency(const ConvConfig& cfg) {
  const double f = static_cast<double>(cfg.filters);
  const double decay = std::clamp((f - 64.0) / 192.0, 0.0, 0.60);
  return 0.66 * (1.0 - 0.55 * decay);
}

gpusim::KernelProfile cudnn_main_kernel(const ConvConfig& cfg,
                                        const char* name,
                                        const GemmDims& dims,
                                        double extra_flops_factor) {
  gpusim::KernelProfile k;
  k.name = name;
  k.kind = gpusim::KernelClass::kGemm;
  k.block_threads = 256;
  k.regs_per_thread = 80;  // Table II
  k.smem_per_block = static_cast<std::size_t>(8.4 * 1024);
  k.grid_blocks = grid_for(static_cast<double>(cfg.batch) *
                               static_cast<double>(dims.m) *
                               static_cast<double>(dims.n) / 16.0,
                           k.block_threads);
  k.flops = conv_pass_flops(cfg) * extra_flops_factor;
  // Operands are staged once through read-only cache into shared memory;
  // the result is the only significant store.
  k.global_load_bytes = input_bytes(cfg) + filter_bytes(cfg);
  k.global_store_bytes =
      static_cast<double>(cfg.batch) * static_cast<double>(dims.m) *
      static_cast<double>(dims.n) * kFloatBytes;
  // The fused kernels compute out of shared memory; nvprof sees almost
  // no global transactions (the paper reports ~0% for these kernels).
  k.gld_efficiency = 0.02;
  k.gst_efficiency = 0.40;
  k.gld_dram_factor = 1.15;
  k.gst_dram_factor = 1.10;
  k.shared_bytes = k.flops * 0.5;
  k.shared_efficiency = 1.32;  // broadcast-heavy tiles (paper: >130%)
  k.warp_exec_efficiency = 0.99;
  k.compute_efficiency = cudnn_efficiency(cfg) * gemm_utilization(dims);
  k.achieved_occupancy_factor = 0.88;
  k.occupancy_needed = 0.16;
  return k;
}

// Small preparatory kernels (offset tables, tensor transforms); these
// carry cuDNN's low measured global efficiency.
gpusim::KernelProfile cudnn_precompute(const ConvConfig& cfg,
                                       const char* name) {
  gpusim::KernelProfile k;
  k.name = name;
  k.kind = gpusim::KernelClass::kPrecompute;
  k.block_threads = 128;
  k.regs_per_thread = 24;
  k.smem_per_block = 0;
  const double bytes = (input_bytes(cfg) + output_bytes(cfg)) * 0.12;
  k.grid_blocks = grid_for(bytes / kFloatBytes, k.block_threads);
  k.global_load_bytes = bytes;
  k.global_store_bytes = bytes;
  k.gld_efficiency = 0.14;
  k.gst_efficiency = 0.40;
  k.shared_efficiency = 1.0;
  k.warp_exec_efficiency = 0.97;
  k.compute_efficiency = 0.5;
  k.achieved_occupancy_factor = 0.85;
  k.occupancy_needed = 0.30;
  return k;
}

// Depthwise (groups == channels) shapes: cuDNN dispatches a dedicated
// per-channel kernel instead of implicit GEMM. With only k*k MACs per
// output element there is no reduction to tile, so the kernel is
// memory-bound: it streams input + filters in and output out with
// near-unit coalescing and touches no shared memory.
gpusim::KernelProfile cudnn_depthwise_kernel(const ConvConfig& cfg,
                                             const char* name) {
  gpusim::KernelProfile k;
  k.name = name;
  k.kind = gpusim::KernelClass::kDepthwise;
  k.block_threads = 256;
  k.regs_per_thread = 40;
  k.smem_per_block = 0;
  const auto o = static_cast<double>(cfg.output());
  k.grid_blocks = grid_for(static_cast<double>(cfg.batch) *
                               static_cast<double>(cfg.filters) * o * o,
                           k.block_threads);
  k.flops = conv_pass_flops(cfg);  // group-aware: 2*N*F*o^2*k^2
  k.global_load_bytes = input_bytes(cfg) + filter_bytes(cfg);
  k.global_store_bytes = output_bytes(cfg);
  // One thread per output pixel walking a contiguous row window:
  // coalesced apart from the halo columns.
  k.gld_efficiency = 0.85;
  k.gst_efficiency = 0.90;
  k.gld_dram_factor = 1.05;
  k.gst_dram_factor = 1.05;
  k.shared_bytes = 0.0;
  k.shared_efficiency = 1.0;
  k.warp_exec_efficiency = 0.97;
  k.compute_efficiency = 0.45;  // latency-bound at k*k MACs per element
  k.achieved_occupancy_factor = 0.90;
  k.occupancy_needed = 0.25;    // no ILP from a reduction loop
  return k;
}

class Cudnn final : public Framework {
 public:
  [[nodiscard]] FrameworkId id() const override {
    return FrameworkId::kCudnn;
  }
  [[nodiscard]] conv::Strategy strategy() const override {
    return conv::Strategy::kUnrolling;
  }
  [[nodiscard]] ShapeSupport supports(const ConvConfig&) const override {
    return {};
  }

  [[nodiscard]] ExecutionPlan plan(const ConvConfig& cfg) const override {
    const PlanScope obs_scope("cudnn");
    ExecutionPlan plan;
    if (cfg.groups == cfg.channels && cfg.groups > 1) {
      // Depthwise path: no im2col identity to exploit, no pre-transforms,
      // no algorithm workspace — three memory-bound streaming kernels.
      plan.kernels.push_back(tagged(
          cudnn_depthwise_kernel(cfg, "cuDNN_depthwise.fwd"),
          gpusim::Pass::kForward));
      plan.kernels.push_back(tagged(
          cudnn_depthwise_kernel(cfg, "cuDNN_depthwise.bwd_data"),
          gpusim::Pass::kBackwardData));
      plan.kernels.push_back(tagged(
          cudnn_depthwise_kernel(cfg, "cuDNN_depthwise.bwd_filter"),
          gpusim::Pass::kBackwardFilter));
      add_activation_memory(plan, cfg, /*with_gradient_buffers=*/true,
                            120.0, "cudnn");
      add_batch_transfers(plan, cfg, /*pinned=*/true, /*overlap=*/0.98);
      return plan;
    }
    plan.kernels.push_back(tagged(
        cudnn_precompute(cfg, "cudnn_transform.fwd"),
        gpusim::Pass::kForward));
    plan.kernels.push_back(tagged(
        cudnn_main_kernel(cfg, "cuDNN_gemm.fwd", forward_gemm(cfg), 1.0),
        gpusim::Pass::kForward));
    plan.kernels.push_back(tagged(
        cudnn_main_kernel(cfg, "cuDNN_gemm.bwd_data",
                          backward_data_gemm(cfg), 1.0),
        gpusim::Pass::kBackwardData));
    plan.kernels.push_back(tagged(
        cudnn_precompute(cfg, "cudnn_transform.bwd"),
        gpusim::Pass::kBackwardData));
    // wgrad alg0 recomputes tile halos: ~15% extra arithmetic.
    plan.kernels.push_back(tagged(
        cudnn_main_kernel(cfg, "wgrad_alg0_engine",
                          backward_filter_gemm(cfg), 1.15),
        gpusim::Pass::kBackwardFilter));

    // Runs inside Caffe in the paper's setup: diff blobs + prefetching.
    add_activation_memory(plan, cfg, /*with_gradient_buffers=*/true, 120.0,
                          "cudnn");
    plan.memory.push_back({"cudnn:algo-workspace",
                           2.0 * col_image_bytes(cfg), /*workspace=*/true});
    add_batch_transfers(plan, cfg, /*pinned=*/true, /*overlap=*/0.98);
    return plan;
  }

  [[nodiscard]] const conv::ConvEngine& engine() const override {
    return shared_engine(conv::Strategy::kUnrolling);
  }
  [[nodiscard]] std::size_t table2_registers() const override { return 80; }
  [[nodiscard]] double table2_smem_kb() const override { return 8.4; }
};

}  // namespace

std::unique_ptr<Framework> make_cudnn() { return std::make_unique<Cudnn>(); }

}  // namespace gpucnn::frameworks::detail
