// cuDNN v3 (paper ref [24], Fig. 4(d)): implicit-GEMM convolution. The
// unrolling and the multiply are fused — "the unrolling operations and
// matrix-matrix multiplications are optimized by using shared memory and
// tiled matrix multiplication", so no im2col/col2im traffic appears and
// the dominant kernels (cuDNN_gemm, wgrad_alg0_engine) run almost
// entirely out of shared memory (the paper measures ~0% global access
// efficiency for them, and >130% shared efficiency from broadcasts).
//
// Its fixed-tile kernels lose steam as the filter count grows (redundant
// halo recompute per tile), which is what lets Theano-CorrMM's plain
// cuBLAS edge past it above ~160 filters (Fig. 3(c)).
#include <algorithm>
#include <atomic>
#include <cmath>

#include "frameworks/common.hpp"
#include "frameworks/impl_factory.hpp"

namespace gpucnn::frameworks::detail {
namespace {

// Default off: the paper profiles cuDNN v3, whose implicit GEMM predates
// the winograd algorithms. set_cudnn_winograd_plan(true) models the later
// winograd dispatch on eligible shapes.
std::atomic<bool> g_winograd_plan{false};

// Implicit-GEMM sustained fraction of peak: 0.66 at the base shape,
// decaying once the filter dimension spills past the tile plan.
double cudnn_efficiency(const ConvConfig& cfg) {
  const double f = static_cast<double>(cfg.filters);
  const double decay = std::clamp((f - 64.0) / 192.0, 0.0, 0.60);
  return 0.66 * (1.0 - 0.55 * decay);
}

gpusim::KernelProfile cudnn_main_kernel(const ConvConfig& cfg,
                                        const char* name,
                                        const GemmDims& dims,
                                        double extra_flops_factor) {
  gpusim::KernelProfile k;
  k.name = name;
  k.kind = gpusim::KernelClass::kGemm;
  k.block_threads = 256;
  k.regs_per_thread = 80;  // Table II
  k.smem_per_block = static_cast<std::size_t>(8.4 * 1024);
  k.grid_blocks = grid_for(static_cast<double>(cfg.batch) *
                               static_cast<double>(dims.m) *
                               static_cast<double>(dims.n) / 16.0,
                           k.block_threads);
  k.flops = conv_pass_flops(cfg) * extra_flops_factor;
  // Operands are staged once through read-only cache into shared memory;
  // the result is the only significant store.
  k.global_load_bytes = input_bytes(cfg) + filter_bytes(cfg);
  k.global_store_bytes =
      static_cast<double>(cfg.batch) * static_cast<double>(dims.m) *
      static_cast<double>(dims.n) * kFloatBytes;
  // The fused kernels compute out of shared memory; nvprof sees almost
  // no global transactions (the paper reports ~0% for these kernels).
  k.gld_efficiency = 0.02;
  k.gst_efficiency = 0.40;
  k.gld_dram_factor = 1.15;
  k.gst_dram_factor = 1.10;
  k.shared_bytes = k.flops * 0.5;
  k.shared_efficiency = 1.32;  // broadcast-heavy tiles (paper: >130%)
  k.warp_exec_efficiency = 0.99;
  k.compute_efficiency = cudnn_efficiency(cfg) * gemm_utilization(dims);
  k.achieved_occupancy_factor = 0.88;
  k.occupancy_needed = 0.16;
  return k;
}

// Small preparatory kernels (offset tables, tensor transforms); these
// carry cuDNN's low measured global efficiency.
gpusim::KernelProfile cudnn_precompute(const ConvConfig& cfg,
                                       const char* name) {
  gpusim::KernelProfile k;
  k.name = name;
  k.kind = gpusim::KernelClass::kPrecompute;
  k.block_threads = 128;
  k.regs_per_thread = 24;
  k.smem_per_block = 0;
  const double bytes = (input_bytes(cfg) + output_bytes(cfg)) * 0.12;
  k.grid_blocks = grid_for(bytes / kFloatBytes, k.block_threads);
  k.global_load_bytes = bytes;
  k.global_store_bytes = bytes;
  k.gld_efficiency = 0.14;
  k.gst_efficiency = 0.40;
  k.shared_efficiency = 1.0;
  k.warp_exec_efficiency = 0.97;
  k.compute_efficiency = 0.5;
  k.achieved_occupancy_factor = 0.85;
  k.occupancy_needed = 0.30;
  return k;
}

// Depthwise (groups == channels) shapes: cuDNN dispatches a dedicated
// per-channel kernel instead of implicit GEMM. With only k*k MACs per
// output element there is no reduction to tile, so the kernel is
// memory-bound: it streams input + filters in and output out with
// near-unit coalescing and touches no shared memory.
gpusim::KernelProfile cudnn_depthwise_kernel(const ConvConfig& cfg,
                                             const char* name) {
  gpusim::KernelProfile k;
  k.name = name;
  k.kind = gpusim::KernelClass::kDepthwise;
  k.block_threads = 256;
  k.regs_per_thread = 40;
  k.smem_per_block = 0;
  const auto o = static_cast<double>(cfg.output());
  k.grid_blocks = grid_for(static_cast<double>(cfg.batch) *
                               static_cast<double>(cfg.filters) * o * o,
                           k.block_threads);
  k.flops = conv_pass_flops(cfg);  // group-aware: 2*N*F*o^2*k^2
  k.global_load_bytes = input_bytes(cfg) + filter_bytes(cfg);
  k.global_store_bytes = output_bytes(cfg);
  // One thread per output pixel walking a contiguous row window:
  // coalesced apart from the halo columns.
  k.gld_efficiency = 0.85;
  k.gst_efficiency = 0.90;
  k.gld_dram_factor = 1.05;
  k.gst_dram_factor = 1.05;
  k.shared_bytes = 0.0;
  k.shared_efficiency = 1.0;
  k.warp_exec_efficiency = 0.97;
  k.compute_efficiency = 0.45;  // latency-bound at k*k MACs per element
  k.achieved_occupancy_factor = 0.90;
  k.occupancy_needed = 0.25;    // no ILP from a reduction loop
  return k;
}

// Winograd F(4x4,3x3) dispatch (cuDNN's later winograd/winogradNonfused
// algorithms): 4x4 output tiles become 6x6 spectral planes and the
// convolution collapses to 36 tile-position GEMMs — 36 multiplies where
// the direct form spends 144 MACs per tile, a 4x arithmetic reduction.
// The GEMM operands are dense SoA planes, so unlike the implicit-GEMM
// kernels these stream global memory with near-unit coalescing.
//
// Transform kernels (input/filter scatter, inverse gather): memory-bound
// streamers whose loads walk strided 6x6 tile windows but whose stores
// hit contiguous per-position planes.
gpusim::KernelProfile cudnn_winograd_transform(const char* name,
                                               double load_bytes,
                                               double store_bytes) {
  gpusim::KernelProfile k;
  k.name = name;
  k.kind = gpusim::KernelClass::kPrecompute;
  k.block_threads = 256;
  k.regs_per_thread = 48;
  k.smem_per_block = 0;
  k.grid_blocks =
      grid_for((load_bytes + store_bytes) / kFloatBytes, k.block_threads);
  k.global_load_bytes = load_bytes;
  k.global_store_bytes = store_bytes;
  k.gld_efficiency = 0.55;  // strided tile-window gathers with halos
  k.gst_efficiency = 0.90;  // SoA spectral planes write coalesced
  k.shared_efficiency = 1.0;
  k.warp_exec_efficiency = 0.95;
  k.compute_efficiency = 0.5;
  k.achieved_occupancy_factor = 0.85;
  k.occupancy_needed = 0.25;
  return k;
}

// The batched multiply: one m x n x kk GEMM per tile position, 36
// positions per launch.
gpusim::KernelProfile cudnn_winograd_gemm(const char* name, double m,
                                          double n, double kk) {
  constexpr double kPositions = 36.0;  // 6x6 points of F(4x4,3x3)
  gpusim::KernelProfile k;
  k.name = name;
  k.kind = gpusim::KernelClass::kWinograd;
  k.block_threads = 256;
  k.regs_per_thread = 72;
  k.smem_per_block = static_cast<std::size_t>(16 * 1024);
  k.grid_blocks = grid_for(kPositions * m * n / 16.0, k.block_threads);
  k.flops = 2.0 * kPositions * m * n * kk;
  k.global_load_bytes = kPositions * (m * kk + kk * n) * kFloatBytes;
  k.global_store_bytes = kPositions * m * n * kFloatBytes;
  k.gld_efficiency = 0.80;  // dense per-position panels, unit stride
  k.gst_efficiency = 0.85;
  k.gld_dram_factor = 1.10;
  k.gst_dram_factor = 1.05;
  k.shared_bytes = k.flops * 0.5;
  k.shared_efficiency = 1.25;  // broadcast-heavy GEMM tiles
  k.warp_exec_efficiency = 0.99;
  const GemmDims dims{static_cast<std::size_t>(m),
                      static_cast<std::size_t>(n),
                      static_cast<std::size_t>(kk)};
  k.compute_efficiency = 0.60 * gemm_utilization(dims);
  k.achieved_occupancy_factor = 0.88;
  k.occupancy_needed = 0.20;
  return k;
}

class Cudnn final : public Framework {
 public:
  [[nodiscard]] FrameworkId id() const override {
    return FrameworkId::kCudnn;
  }
  [[nodiscard]] conv::Strategy strategy() const override {
    return conv::Strategy::kUnrolling;
  }
  [[nodiscard]] ShapeSupport supports(const ConvConfig&) const override {
    return {};
  }

  [[nodiscard]] ExecutionPlan plan(const ConvConfig& cfg) const override {
    const PlanScope obs_scope("cudnn");
    ExecutionPlan plan;
    if (cfg.groups == cfg.channels && cfg.groups > 1) {
      // Depthwise path: no im2col identity to exploit, no pre-transforms,
      // no algorithm workspace — three memory-bound streaming kernels.
      plan.kernels.push_back(tagged(
          cudnn_depthwise_kernel(cfg, "cuDNN_depthwise.fwd"),
          gpusim::Pass::kForward));
      plan.kernels.push_back(tagged(
          cudnn_depthwise_kernel(cfg, "cuDNN_depthwise.bwd_data"),
          gpusim::Pass::kBackwardData));
      plan.kernels.push_back(tagged(
          cudnn_depthwise_kernel(cfg, "cuDNN_depthwise.bwd_filter"),
          gpusim::Pass::kBackwardFilter));
      add_activation_memory(plan, cfg, /*with_gradient_buffers=*/true,
                            120.0, "cudnn");
      add_batch_transfers(plan, cfg, /*pinned=*/true, /*overlap=*/0.98);
      return plan;
    }
    if (g_winograd_plan.load(std::memory_order_relaxed) &&
        cfg.kernel == 3 && cfg.stride == 1 && cfg.groups == 1 &&
        cfg.pad <= 2) {
      // Winograd path: per-pass (scatter transform, 36-position batched
      // GEMM, inverse gather). U/V/M spectral planes live in workspace.
      const double o = static_cast<double>(cfg.output());
      const double t1 = std::ceil(o / 4.0);  // 4x4 output tiles per row
      const double p = static_cast<double>(cfg.batch) * t1 * t1;
      const double c = static_cast<double>(cfg.channels);
      const double f = static_cast<double>(cfg.filters);
      constexpr double kPositions = 36.0;
      const double u_bytes = kPositions * f * c * kFloatBytes;
      const double v_bytes = kPositions * c * p * kFloatBytes;
      const double m_bytes = kPositions * f * p * kFloatBytes;
      plan.kernels.push_back(tagged(
          cudnn_winograd_transform("winograd_transform.fwd",
                                   input_bytes(cfg) + filter_bytes(cfg),
                                   u_bytes + v_bytes),
          gpusim::Pass::kForward));
      plan.kernels.push_back(tagged(
          cudnn_winograd_gemm("winograd_gemm.fwd", f, p, c),
          gpusim::Pass::kForward));
      plan.kernels.push_back(tagged(
          cudnn_winograd_transform("winograd_output.fwd", m_bytes,
                                   output_bytes(cfg)),
          gpusim::Pass::kForward));
      // Backward-data is the forward on rotated filters; dY scatters in
      // place of the input.
      plan.kernels.push_back(tagged(
          cudnn_winograd_transform("winograd_transform.bwd_data",
                                   output_bytes(cfg) + filter_bytes(cfg),
                                   u_bytes + m_bytes),
          gpusim::Pass::kBackwardData));
      plan.kernels.push_back(tagged(
          cudnn_winograd_gemm("winograd_gemm.bwd_data", c, p, f),
          gpusim::Pass::kBackwardData));
      plan.kernels.push_back(tagged(
          cudnn_winograd_transform("winograd_output.bwd_data", v_bytes,
                                   input_bytes(cfg)),
          gpusim::Pass::kBackwardData));
      // Backward-filter: dU_t = dM_t * V_t^T, gathered back through the
      // filter-transform adjoint.
      plan.kernels.push_back(tagged(
          cudnn_winograd_transform("winograd_transform.bwd_filter",
                                   input_bytes(cfg) + output_bytes(cfg),
                                   v_bytes + m_bytes),
          gpusim::Pass::kBackwardFilter));
      plan.kernels.push_back(tagged(
          cudnn_winograd_gemm("winograd_gemm.bwd_filter", f, c, p),
          gpusim::Pass::kBackwardFilter));
      plan.kernels.push_back(tagged(
          cudnn_winograd_transform("winograd_output.bwd_filter", u_bytes,
                                   filter_bytes(cfg)),
          gpusim::Pass::kBackwardFilter));
      add_activation_memory(plan, cfg, /*with_gradient_buffers=*/true,
                            120.0, "cudnn");
      plan.memory.push_back({"cudnn:winograd-workspace",
                             u_bytes + v_bytes + m_bytes,
                             /*workspace=*/true});
      add_batch_transfers(plan, cfg, /*pinned=*/true, /*overlap=*/0.98);
      return plan;
    }
    plan.kernels.push_back(tagged(
        cudnn_precompute(cfg, "cudnn_transform.fwd"),
        gpusim::Pass::kForward));
    plan.kernels.push_back(tagged(
        cudnn_main_kernel(cfg, "cuDNN_gemm.fwd", forward_gemm(cfg), 1.0),
        gpusim::Pass::kForward));
    plan.kernels.push_back(tagged(
        cudnn_main_kernel(cfg, "cuDNN_gemm.bwd_data",
                          backward_data_gemm(cfg), 1.0),
        gpusim::Pass::kBackwardData));
    plan.kernels.push_back(tagged(
        cudnn_precompute(cfg, "cudnn_transform.bwd"),
        gpusim::Pass::kBackwardData));
    // wgrad alg0 recomputes tile halos: ~15% extra arithmetic.
    plan.kernels.push_back(tagged(
        cudnn_main_kernel(cfg, "wgrad_alg0_engine",
                          backward_filter_gemm(cfg), 1.15),
        gpusim::Pass::kBackwardFilter));

    // Runs inside Caffe in the paper's setup: diff blobs + prefetching.
    add_activation_memory(plan, cfg, /*with_gradient_buffers=*/true, 120.0,
                          "cudnn");
    plan.memory.push_back({"cudnn:algo-workspace",
                           2.0 * col_image_bytes(cfg), /*workspace=*/true});
    add_batch_transfers(plan, cfg, /*pinned=*/true, /*overlap=*/0.98);
    return plan;
  }

  [[nodiscard]] const conv::ConvEngine& engine() const override {
    return shared_engine(conv::Strategy::kUnrolling);
  }
  [[nodiscard]] std::size_t table2_registers() const override { return 80; }
  [[nodiscard]] double table2_smem_kb() const override { return 8.4; }
};

}  // namespace

std::unique_ptr<Framework> make_cudnn() { return std::make_unique<Cudnn>(); }

}  // namespace gpucnn::frameworks::detail

namespace gpucnn::frameworks {

bool set_cudnn_winograd_plan(bool enabled) {
  return detail::g_winograd_plan.exchange(enabled,
                                          std::memory_order_relaxed);
}

}  // namespace gpucnn::frameworks
