// The seven CNN convolution implementations the paper evaluates (§III.B):
// Caffe, cuDNN(v3), Torch-cunn, Theano-CorrMM, Theano-fft, cuda-convnet2
// and fbfft.
//
// Each implementation model answers three questions about one training
// iteration (forward + backward-data + backward-filter) of a single
// convolutional layer:
//   * supports(cfg)  — the shape limitations of §IV.B;
//   * plan(cfg)      — the kernel-launch sequence, host/device transfers
//                      and device allocations, which the gpusim device
//                      model turns into Figures 3–7;
//   * engine()       — the real CPU numerics of the underlying strategy,
//                      so every framework can also *compute* convolutions
//                      (used by examples and correctness tests).
#pragma once

#include <array>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "conv/conv_engine.hpp"
#include "core/shape.hpp"
#include "gpusim/kernel.hpp"
#include "gpusim/transfer.hpp"

namespace gpucnn::frameworks {

/// Identifier for each of the paper's seven implementations.
enum class FrameworkId {
  kCaffe,
  kCudnn,
  kTorchCunn,
  kTheanoCorrMM,
  kCudaConvnet2,
  kFbfft,
  kTheanoFft,
};

inline constexpr std::array<FrameworkId, 7> kAllFrameworks{
    FrameworkId::kCaffe,        FrameworkId::kCudnn,
    FrameworkId::kTorchCunn,    FrameworkId::kTheanoCorrMM,
    FrameworkId::kCudaConvnet2, FrameworkId::kFbfft,
    FrameworkId::kTheanoFft,
};

[[nodiscard]] std::string_view to_string(FrameworkId id);

/// Result of a shape-limitation check (paper §IV.B).
struct ShapeSupport {
  bool ok = true;
  std::string reason;
};

/// One device allocation live during the iteration.
struct MemoryItem {
  std::string label;
  double bytes = 0.0;
  bool workspace = false;  ///< transient (workspace) vs persistent
};

/// Everything the simulator needs to evaluate one training iteration.
struct ExecutionPlan {
  std::vector<gpusim::KernelProfile> kernels;
  std::vector<gpusim::Transfer> transfers;
  std::vector<MemoryItem> memory;

  /// Peak device footprint: all items are live at the iteration's peak
  /// (activations persist and workspaces overlap the kernels that need
  /// them), matching what nvidia-smi samples in the paper's §V.B.
  [[nodiscard]] double peak_bytes() const {
    double total = 0.0;
    for (const auto& m : memory) total += m.bytes;
    return total;
  }
  [[nodiscard]] double workspace_bytes() const {
    double total = 0.0;
    for (const auto& m : memory) {
      if (m.workspace) total += m.bytes;
    }
    return total;
  }
};

/// One of the paper's seven implementations.
class Framework {
 public:
  virtual ~Framework() = default;

  [[nodiscard]] virtual FrameworkId id() const = 0;
  [[nodiscard]] virtual conv::Strategy strategy() const = 0;
  [[nodiscard]] std::string_view name() const { return to_string(id()); }

  /// Shape limitations (paper §IV.B).
  [[nodiscard]] virtual ShapeSupport supports(const ConvConfig& cfg)
      const = 0;

  /// Plan of one training iteration on this configuration. Throws
  /// gpucnn::Error when the shape is unsupported.
  [[nodiscard]] virtual ExecutionPlan plan(const ConvConfig& cfg) const = 0;

  /// The real numeric engine implementing this framework's strategy.
  [[nodiscard]] virtual const conv::ConvEngine& engine() const = 0;

  /// Registers-per-thread / shared-memory-per-block of the dominant
  /// kernel (the paper's Table II).
  [[nodiscard]] virtual std::size_t table2_registers() const = 0;
  [[nodiscard]] virtual double table2_smem_kb() const = 0;
};

/// Switches the cuDNN model's plan() onto a Winograd F(4x4,3x3)
/// tile-GEMM dispatch for eligible shapes (3x3, stride 1, ungrouped,
/// pad <= 2), returning the previous setting. Off by default — the
/// paper profiles cuDNN v3, whose implicit GEMM predates the winograd
/// algorithms — so the figure benches and paper-claims tests see the
/// historical plan; the winograd sweep tooling flips this on around
/// its run to model the later dispatch.
bool set_cudnn_winograd_plan(bool enabled);

/// Global registry: one immutable instance per implementation.
[[nodiscard]] const Framework& framework(FrameworkId id);

/// All seven, in the paper's order.
[[nodiscard]] std::span<const FrameworkId> all_frameworks();

}  // namespace gpucnn::frameworks
