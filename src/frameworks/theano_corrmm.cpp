// Theano-CorrMM (paper ref [19], Fig. 4(c)): Theano's GpuCorrMM op —
// im2col + cuBLAS, like Caffe, but with the paper's two distinguishing
// behaviours: the lowest global-load efficiency of the field (Fig. 6:
// 11.64%–15.79%, "mainly because of non-coalesced accesses") and a
// cuBLAS call shape that catches up with cuDNN once the filter count is
// large (Fig. 3(c): "Theano-CorrMM slightly outperforms its counterparts
// with large filter numbers"). It also exhibits the Conv2 host-staging
// anomaly of Fig. 7 (>60% transfer share).
#include "frameworks/common.hpp"
#include "frameworks/impl_factory.hpp"

namespace gpucnn::frameworks::detail {
namespace {

UnrollingTraits corrmm_traits() {
  UnrollingTraits t;
  t.gemm_kernel_name = "corrmm_sgemm";
  t.gemm_regs = 72;  // Table II
  t.gemm_smem = 7 * 1024;
  t.gemm_block = 256;
  t.gemm_base_eff = 0.33;  // large-GEMM throughput slightly above Caffe's
  t.large_f_bonus = 0.20;  // catches cuDNN past ~160 filters (Fig. 3(c))
  t.gemm_gld_eff = 0.13;   // the paper's 11.6–15.8% band
  t.gemm_gst_eff = 0.50;
  t.gemm_shared_eff = 1.05;
  t.unroll_gld_eff = 0.22;
  t.unroll_gst_eff = 0.80;
  t.achieved_occ_factor = 0.75;
  t.gradient_buffers = true;  // Theano keeps grad intermediates
  t.context_mb = 115.0;
  t.pinned_input = false;
  t.input_overlap = 0.3;  // Theano batches some copies
  t.host_col_roundtrip = true;
  return t;
}

class TheanoCorrMM final : public Framework {
 public:
  [[nodiscard]] FrameworkId id() const override {
    return FrameworkId::kTheanoCorrMM;
  }
  [[nodiscard]] conv::Strategy strategy() const override {
    return conv::Strategy::kUnrolling;
  }
  [[nodiscard]] ShapeSupport supports(const ConvConfig&) const override {
    return {};
  }
  [[nodiscard]] ExecutionPlan plan(const ConvConfig& cfg) const override {
    const PlanScope obs_scope("theano-corrmm");
    return make_unrolling_plan(cfg, corrmm_traits(), "corrmm");
  }
  [[nodiscard]] const conv::ConvEngine& engine() const override {
    return shared_engine(conv::Strategy::kUnrolling);
  }
  [[nodiscard]] std::size_t table2_registers() const override { return 72; }
  [[nodiscard]] double table2_smem_kb() const override { return 7.0; }
};

}  // namespace

std::unique_ptr<Framework> make_theano_corrmm() {
  return std::make_unique<TheanoCorrMM>();
}

}  // namespace gpucnn::frameworks::detail
