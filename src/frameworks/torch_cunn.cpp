// Torch-cunn's SpatialConvolutionMM (paper ref [20], Fig. 4(b)): the same
// im2col + cuBLAS structure as Caffe, with buffer-sharing that keeps the
// activation footprint near cuda-convnet2's (paper §V.B: "Torch-cunn is
// the overall most memory efficient implementation in unrolling-based
// convolution"), but synchronous input copies (Fig. 7 share 1–15%).
#include "frameworks/common.hpp"
#include "frameworks/impl_factory.hpp"

namespace gpucnn::frameworks::detail {
namespace {

UnrollingTraits torch_traits() {
  UnrollingTraits t;
  t.gemm_kernel_name = "cublas_sgemm";
  t.gemm_regs = 84;  // Table II
  t.gemm_smem = static_cast<std::size_t>(8.1 * 1024);
  t.gemm_block = 512;  // one fat block; 25% theoretical occupancy
  t.gemm_base_eff = 0.30;
  t.gemm_gld_eff = 0.16;
  t.gemm_gst_eff = 0.52;
  t.gemm_shared_eff = 1.08;
  t.unroll_gld_eff = 0.24;
  t.unroll_gst_eff = 0.84;
  t.achieved_occ_factor = 0.82;
  t.gradient_buffers = false;  // shares grad storage via getParameters()
  t.context_mb = 150.0;        // torch/cutorch runtime
  t.pinned_input = false;
  t.input_overlap = 0.0;  // synchronous copies
  return t;
}

class TorchCunn final : public Framework {
 public:
  [[nodiscard]] FrameworkId id() const override {
    return FrameworkId::kTorchCunn;
  }
  [[nodiscard]] conv::Strategy strategy() const override {
    return conv::Strategy::kUnrolling;
  }
  [[nodiscard]] ShapeSupport supports(const ConvConfig&) const override {
    return {};
  }
  [[nodiscard]] ExecutionPlan plan(const ConvConfig& cfg) const override {
    const PlanScope obs_scope("torch-cunn");
    ExecutionPlan plan = make_unrolling_plan(cfg, torch_traits(), "torch");
    // SpatialConvolutionMM keeps a second lowered buffer (fgradInput).
    plan.memory.push_back({"torch:fgradInput-workspace",
                           col_image_bytes(cfg), /*workspace=*/true});
    return plan;
  }
  [[nodiscard]] const conv::ConvEngine& engine() const override {
    return shared_engine(conv::Strategy::kUnrolling);
  }
  [[nodiscard]] std::size_t table2_registers() const override { return 84; }
  [[nodiscard]] double table2_smem_kb() const override { return 8.1; }
};

}  // namespace

std::unique_ptr<Framework> make_torch_cunn() {
  return std::make_unique<TorchCunn>();
}

}  // namespace gpucnn::frameworks::detail
