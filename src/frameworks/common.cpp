#include "frameworks/common.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"

namespace gpucnn::frameworks::detail {

PlanScope::PlanScope(const char* framework)
    : span(obs::tracer(), std::string("plan ") + framework, "frameworks") {
  obs::metrics().counter("frameworks.plan.calls").add(1);
}

double input_bytes(const ConvConfig& cfg) {
  return static_cast<double>(cfg.input_shape().count()) * kFloatBytes;
}

double filter_bytes(const ConvConfig& cfg) {
  return static_cast<double>(cfg.filter_shape().count()) * kFloatBytes;
}

double output_bytes(const ConvConfig& cfg) {
  return static_cast<double>(cfg.output_shape().count()) * kFloatBytes;
}

double col_image_bytes(const ConvConfig& cfg) {
  // The lowered buffer covers one group at a time (it is reused across
  // groups), so grouping shrinks the workspace.
  const double o = static_cast<double>(cfg.output());
  return static_cast<double>(cfg.group_channels()) *
         static_cast<double>(cfg.kernel) * static_cast<double>(cfg.kernel) *
         o * o * kFloatBytes;
}

double conv_pass_flops(const ConvConfig& cfg) { return cfg.forward_flops(); }

GemmDims forward_gemm(const ConvConfig& cfg) {
  const std::size_t o = cfg.output();
  return {cfg.group_filters(), o * o,
          cfg.group_channels() * cfg.kernel * cfg.kernel};
}

GemmDims backward_data_gemm(const ConvConfig& cfg) {
  const std::size_t o = cfg.output();
  return {cfg.group_channels() * cfg.kernel * cfg.kernel, o * o,
          cfg.group_filters()};
}

GemmDims backward_filter_gemm(const ConvConfig& cfg) {
  const std::size_t o = cfg.output();
  return {cfg.group_filters(),
          cfg.group_channels() * cfg.kernel * cfg.kernel, o * o};
}

double gemm_utilization(const GemmDims& dims) {
  constexpr double kTile = 64.0;
  const auto tile_util = [](double extent) {
    const double tiles = std::ceil(extent / kTile);
    const double util = extent / (tiles * kTile);
    // Partial tiles still do useful work on some lanes; damp the penalty.
    return 0.55 + 0.45 * util;
  };
  const double depth_ramp =
      std::min(1.0, 0.40 + static_cast<double>(dims.k) / 384.0);
  return tile_util(static_cast<double>(dims.m)) *
         tile_util(static_cast<double>(dims.n)) * depth_ramp;
}

std::size_t grid_for(double total_threads, std::size_t block_threads) {
  const double blocks =
      std::ceil(total_threads / static_cast<double>(block_threads));
  return static_cast<std::size_t>(std::max(blocks, 1.0));
}

gpusim::Pass pass_from_label(std::string_view label) {
  if (label == "fwd") return gpusim::Pass::kForward;
  if (label == "bwd_data") return gpusim::Pass::kBackwardData;
  if (label == "bwd_filter") return gpusim::Pass::kBackwardFilter;
  return gpusim::Pass::kAuxiliary;
}

gpusim::KernelProfile tagged(gpusim::KernelProfile k, gpusim::Pass pass) {
  k.pass = pass;
  return k;
}

void add_activation_memory(ExecutionPlan& plan, const ConvConfig& cfg,
                           bool with_gradient_buffers, double context_mb,
                           const std::string& who) {
  plan.memory.push_back({who + ":cuda-context", context_mb * 1048576.0});
  plan.memory.push_back({who + ":input", input_bytes(cfg)});
  plan.memory.push_back({who + ":filters", filter_bytes(cfg)});
  plan.memory.push_back({who + ":output", output_bytes(cfg)});
  if (with_gradient_buffers) {
    plan.memory.push_back({who + ":grad-input", input_bytes(cfg)});
    plan.memory.push_back({who + ":grad-filters", filter_bytes(cfg)});
    plan.memory.push_back({who + ":grad-output", output_bytes(cfg)});
  } else {
    // Even buffer-sharing frameworks keep the filter gradient resident
    // for the optimiser step.
    plan.memory.push_back({who + ":grad-filters", filter_bytes(cfg)});
  }
}

void add_batch_transfers(ExecutionPlan& plan, const ConvConfig& cfg,
                         bool pinned, double overlap) {
  plan.transfers.push_back({"input batch h2d",
                            gpusim::TransferDirection::kHostToDevice,
                            input_bytes(cfg), pinned, overlap});
}

namespace {

// Builds the cuBLAS-style GEMM launch of one pass; flops are aggregated
// across the per-image calls (Caffe launches one GEMM per image).
gpusim::KernelProfile unrolling_gemm(const ConvConfig& cfg,
                                     const GemmDims& dims,
                                     const UnrollingTraits& t,
                                     const char* pass) {
  gpusim::KernelProfile k;
  k.name = std::string(t.gemm_kernel_name) + "." + pass;
  k.kind = gpusim::KernelClass::kGemm;
  k.block_threads = t.gemm_block;
  k.grid_blocks = grid_for(
      static_cast<double>(cfg.batch) * static_cast<double>(dims.m) *
          static_cast<double>(dims.n) / 16.0,
      t.gemm_block);
  k.regs_per_thread = t.gemm_regs;
  k.smem_per_block = t.gemm_smem;
  k.flops = conv_pass_flops(cfg);
  // cuBLAS stages operands through shared memory; global traffic is one
  // read of each operand panel and one write of the result per image.
  const double mn =
      static_cast<double>(dims.m) * static_cast<double>(dims.n);
  const double operand_bytes =
      (static_cast<double>(dims.m) + static_cast<double>(dims.n)) *
      static_cast<double>(dims.k) * kFloatBytes;
  k.global_load_bytes = static_cast<double>(cfg.batch) * operand_bytes;
  k.global_store_bytes =
      static_cast<double>(cfg.batch) * mn * kFloatBytes;
  // Transaction replays are absorbed by L2; DRAM sees the panels nearly
  // once.
  k.gld_dram_factor = 1.15;
  k.gst_dram_factor = 1.10;
  // Each FMA re-reads both operands from shared memory, amortised by
  // register tiling (~8x reuse).
  k.shared_bytes = k.flops * 0.5;
  k.gld_efficiency = t.gemm_gld_eff;
  k.gst_efficiency = t.gemm_gst_eff;
  k.shared_efficiency = t.gemm_shared_eff;
  k.warp_exec_efficiency = 0.98;
  double eff = t.gemm_base_eff;
  if (t.large_f_bonus > 0.0) {
    const double f_ramp = std::clamp(
        (static_cast<double>(cfg.filters) - 64.0) / 128.0, 0.0, 1.0);
    const double width_gate =
        std::clamp(static_cast<double>(dims.n) / 6400.0, 0.0, 1.0);
    eff += t.large_f_bonus * f_ramp * width_gate;
  }
  k.compute_efficiency = eff * gemm_utilization(dims);
  k.achieved_occupancy_factor = t.achieved_occ_factor;
  k.occupancy_needed = 0.16;  // GEMM hides latency with ILP
  return k;
}

// im2col / col2im are pure data-movement kernels: one read and one write
// per column element.
gpusim::KernelProfile unrolling_lowering(const ConvConfig& cfg,
                                         const UnrollingTraits& t,
                                         bool is_col2im, const char* pass) {
  gpusim::KernelProfile k;
  k.name = std::string(is_col2im ? t.col2im_kernel_name
                                 : t.im2col_kernel_name) +
           "." + pass;
  k.kind = gpusim::KernelClass::kUnroll;
  k.block_threads = 256;
  k.regs_per_thread = 30;
  k.smem_per_block = 0;
  const double col_total =
      static_cast<double>(cfg.batch) * col_image_bytes(cfg);
  k.grid_blocks = grid_for(col_total / kFloatBytes, k.block_threads);
  k.flops = 0.0;
  // The k^2-fold re-reads of the gather side hit L1/L2; DRAM sees the
  // dense side (input plane) roughly once and the column side once.
  if (is_col2im) {
    k.global_load_bytes = col_total;
    k.global_store_bytes = input_bytes(cfg) * 1.2;
    k.gld_dram_factor = 1.10;
    k.gst_dram_factor = 1.15;
  } else {
    k.global_load_bytes = input_bytes(cfg) * 1.2;
    k.global_store_bytes = col_total;
    k.gld_dram_factor = 1.30;
    k.gst_dram_factor = 1.05;
  }
  k.gld_efficiency = t.unroll_gld_eff;
  k.gst_efficiency = t.unroll_gst_eff;
  k.shared_efficiency = 1.0;
  k.shared_bytes = 0.0;
  k.warp_exec_efficiency = 0.97;
  k.compute_efficiency = 0.5;
  k.achieved_occupancy_factor = 0.9;
  k.occupancy_needed = 0.30;  // bandwidth kernels need many warps
  return k;
}

}  // namespace

ExecutionPlan make_unrolling_plan(const ConvConfig& cfg,
                                  const UnrollingTraits& t,
                                  const std::string& who) {
  ExecutionPlan plan;

  // Forward: im2col + GEMM.
  plan.kernels.push_back(tagged(unrolling_lowering(cfg, t, false, "fwd"),
                                gpusim::Pass::kForward));
  plan.kernels.push_back(tagged(
      unrolling_gemm(cfg, forward_gemm(cfg), t, "fwd"),
      gpusim::Pass::kForward));
  // Backward data: GEMM + col2im.
  plan.kernels.push_back(tagged(
      unrolling_gemm(cfg, backward_data_gemm(cfg), t, "bwd_data"),
      gpusim::Pass::kBackwardData));
  plan.kernels.push_back(tagged(unrolling_lowering(cfg, t, true, "bwd_data"),
                                gpusim::Pass::kBackwardData));
  // Backward filter: im2col + GEMM.
  plan.kernels.push_back(tagged(
      unrolling_lowering(cfg, t, false, "bwd_filter"),
      gpusim::Pass::kBackwardFilter));
  plan.kernels.push_back(tagged(
      unrolling_gemm(cfg, backward_filter_gemm(cfg), t, "bwd_filter"),
      gpusim::Pass::kBackwardFilter));

  add_activation_memory(plan, cfg, t.gradient_buffers, t.context_mb, who);
  plan.memory.push_back(
      {who + ":col-workspace", col_image_bytes(cfg), /*workspace=*/true});

  add_batch_transfers(plan, cfg, t.pinned_input, t.input_overlap);

  if (t.host_col_roundtrip) {
    // Theano's border-mode fallback: the lowered buffer of the whole
    // batch round-trips through the host when a small kernel is unrolled
    // over a large, many-channel input (the paper's Conv2 anomaly,
    // Fig. 7). Triggered only for k < 5, i >= 64, c >= 16.
    if (cfg.kernel < 5 && cfg.input >= 64 && cfg.channels >= 16) {
      const double col_total =
          static_cast<double>(cfg.batch) * col_image_bytes(cfg);
      plan.transfers.push_back({"host col staging d2h",
                                gpusim::TransferDirection::kDeviceToHost,
                                col_total, false, 0.0});
      plan.transfers.push_back({"host col staging h2d",
                                gpusim::TransferDirection::kHostToDevice,
                                col_total, false, 0.0});
      // The host-side repack runs at memcpy speed and is synchronous;
      // model it as an un-overlapped pageable-rate "transfer".
      plan.transfers.push_back({"host col repack",
                                gpusim::TransferDirection::kHostToDevice,
                                col_total * 1.6, false, 0.0});
    }
  }
  return plan;
}

}  // namespace gpucnn::frameworks::detail
