// Shared calibration helpers for the seven implementation models.
//
// Every constant here is structural (buffer sizes, FLOP counts, GEMM tile
// utilisation) or calibrated once against the paper's reported bands
// (per-framework efficiency factors — see DESIGN.md "Calibration notes").
// No figure-specific tuning exists anywhere: the figure benches all read
// the same plans.
#pragma once

#include <cstddef>
#include <string>

#include "core/shape.hpp"
#include "frameworks/framework.hpp"
#include "gpusim/kernel.hpp"
#include "obs/trace.hpp"

namespace gpucnn::frameworks::detail {

/// Observability scope entered by every implementation's plan(): a trace
/// span on the calling thread plus the frameworks.plan.calls counter.
struct PlanScope {
  explicit PlanScope(const char* framework);
  obs::Span span;
};

inline constexpr double kFloatBytes = 4.0;

/// Dense buffer sizes of one layer (bytes).
[[nodiscard]] double input_bytes(const ConvConfig& cfg);
[[nodiscard]] double filter_bytes(const ConvConfig& cfg);
[[nodiscard]] double output_bytes(const ConvConfig& cfg);
/// im2col buffer of a single image: (C*k*k) x (o*o) floats.
[[nodiscard]] double col_image_bytes(const ConvConfig& cfg);

/// FLOPs of one direct/unrolled forward pass (2*N*F*C*o^2*k^2); the
/// backward-data and backward-filter passes cost the same.
[[nodiscard]] double conv_pass_flops(const ConvConfig& cfg);

/// GEMM dimensions of the three unrolling passes, per image.
struct GemmDims {
  std::size_t m = 0, n = 0, k = 0;
};
[[nodiscard]] GemmDims forward_gemm(const ConvConfig& cfg);
[[nodiscard]] GemmDims backward_data_gemm(const ConvConfig& cfg);
[[nodiscard]] GemmDims backward_filter_gemm(const ConvConfig& cfg);

/// Tile-quantisation utilisation of a GEMM on 64x64 output tiles with a
/// depth ramp for short reduction dimensions: cuBLAS-style kernels waste
/// lanes on partial tiles and cannot stream short k. Returns (0, 1].
[[nodiscard]] double gemm_utilization(const GemmDims& dims);

/// Number of blocks needed to cover `total_threads` work items.
[[nodiscard]] std::size_t grid_for(double total_threads,
                                   std::size_t block_threads);

/// Maps the plan builders' pass labels ("fwd", "bwd_data", "bwd_filter")
/// to the gpusim pass tag.
[[nodiscard]] gpusim::Pass pass_from_label(std::string_view label);

/// Returns `k` tagged with the pass.
[[nodiscard]] gpusim::KernelProfile tagged(gpusim::KernelProfile k,
                                           gpusim::Pass pass);

/// Appends the persistent activation/parameter buffers every framework
/// keeps resident: input, filters, output — and, when
/// `with_gradient_buffers` (Caffe-style diff blobs), a second copy of
/// each. `context_mb` models the CUDA context nvidia-smi charges to the
/// process.
void add_activation_memory(ExecutionPlan& plan, const ConvConfig& cfg,
                           bool with_gradient_buffers, double context_mb,
                           const std::string& who);

/// Adds the mini-batch input H2D copy (and label D2H) that every
/// framework performs each iteration.
void add_batch_transfers(ExecutionPlan& plan, const ConvConfig& cfg,
                         bool pinned, double overlap);

// ---------------------------------------------------------------------
// Trait bundle for the three explicit-unrolling implementations (Caffe,
// Torch-cunn, Theano-CorrMM), which share the im2col + cuBLAS structure
// of paper Fig. 4(a–c) and differ only in constants.
// ---------------------------------------------------------------------
struct UnrollingTraits {
  const char* gemm_kernel_name = "sgemm";
  const char* im2col_kernel_name = "im2col_gpu_kernel";
  const char* col2im_kernel_name = "col2im_gpu_kernel";

  // Dominant (GEMM) kernel resources — the Table II row.
  std::size_t gemm_regs = 86;
  std::size_t gemm_smem = 8704;
  std::size_t gemm_block = 256;

  double gemm_base_eff = 0.32;      ///< cuBLAS sustained fraction of peak
                                    ///< on per-image skinny GEMMs
  double large_f_bonus = 0.0;       ///< extra efficiency once the filter
                                    ///< dimension fills the tile grid and
                                    ///< the spatial dimension is wide
                                    ///< (Theano-CorrMM, Fig. 3(c))
  double gemm_gld_eff = 0.18;
  double gemm_gst_eff = 0.55;
  double gemm_shared_eff = 1.10;
  double unroll_gld_eff = 0.25;
  double unroll_gst_eff = 0.85;
  double achieved_occ_factor = 0.80;

  bool gradient_buffers = true;     ///< Caffe-style diff blobs
  double context_mb = 110.0;
  bool pinned_input = false;
  double input_overlap = 0.0;       ///< prefetch-thread overlap
  bool host_col_roundtrip = false;  ///< Theano border-mode anomaly
};

/// Builds the full training-iteration plan shared by the explicit
/// unrolling implementations.
[[nodiscard]] ExecutionPlan make_unrolling_plan(const ConvConfig& cfg,
                                                const UnrollingTraits& t,
                                                const std::string& who);

}  // namespace gpucnn::frameworks::detail
