#include "gpusim/transfer.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace gpucnn::gpusim {
namespace {

const DeviceSpec kDev = tesla_k40c();

TEST(Transfer, BandwidthModel) {
  const Transfer t{"x", TransferDirection::kHostToDevice, 6e9, false, 0.0};
  // 6 GB over 6 GB/s pageable = 1000 ms + 8 us latency.
  EXPECT_NEAR(raw_transfer_ms(kDev, t), 1000.0 + 0.008, 0.1);
}

TEST(Transfer, PinnedIsFaster) {
  Transfer t{"x", TransferDirection::kHostToDevice, 1e9, false, 0.0};
  const double pageable = raw_transfer_ms(kDev, t);
  t.pinned = true;
  EXPECT_LT(raw_transfer_ms(kDev, t), pageable);
}

TEST(Transfer, LatencyDominatesSmallCopies) {
  const Transfer t{"x", TransferDirection::kDeviceToHost, 64.0, true, 0.0};
  EXPECT_NEAR(raw_transfer_ms(kDev, t), kDev.pcie_latency_us * 1e-3, 1e-4);
}

TEST(Transfer, OverlapHidesCost) {
  Transfer t{"x", TransferDirection::kHostToDevice, 1e9, true, 0.98};
  EXPECT_NEAR(exposed_transfer_ms(kDev, t),
              raw_transfer_ms(kDev, t) * 0.02, 1e-6);
  t.overlap = 1.0;
  EXPECT_DOUBLE_EQ(exposed_transfer_ms(kDev, t), 0.0);
}

TEST(Transfer, TotalSumsExposedCosts) {
  const std::vector<Transfer> ts{
      {"a", TransferDirection::kHostToDevice, 1e9, false, 0.0},
      {"b", TransferDirection::kHostToDevice, 1e9, false, 0.5},
  };
  EXPECT_NEAR(total_exposed_ms(kDev, ts),
              exposed_transfer_ms(kDev, ts[0]) +
                  exposed_transfer_ms(kDev, ts[1]),
              1e-9);
}

TEST(Transfer, RejectsInvalidInputs) {
  Transfer t{"x", TransferDirection::kHostToDevice, -1.0, false, 0.0};
  EXPECT_THROW((void)raw_transfer_ms(kDev, t), Error);
  t.bytes = 1.0;
  t.overlap = 1.5;
  EXPECT_THROW((void)raw_transfer_ms(kDev, t), Error);
}

}  // namespace
}  // namespace gpucnn::gpusim
