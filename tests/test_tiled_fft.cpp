// Overlap-save tiled FFT convolution: exactness against the direct
// oracle for every tiling, and the tile planner's area economics.
#include "conv/tiled_fft_conv.hpp"

#include <gtest/gtest.h>

#include "conv/direct_conv.hpp"
#include "core/rng.hpp"

namespace gpucnn::conv {
namespace {

void expect_forward_matches(const ConvConfig& cfg, std::size_t tile) {
  Rng rng(51);
  Tensor x(cfg.input_shape());
  x.fill_uniform(rng);
  Tensor w(cfg.filter_shape());
  w.fill_uniform(rng);
  Tensor want(cfg.output_shape());
  DirectConv{}.forward(cfg, x, w, want);
  Tensor got(cfg.output_shape());
  TiledFftConv(tile).forward(cfg, x, w, got);
  EXPECT_LT(max_abs_diff(want, got),
            1e-4 * (1.0 + static_cast<double>(cfg.channels)))
      << "tile " << tile << " cfg " << cfg;
}

TEST(TiledFft, ExactForExactlyDivisibleTiles) {
  // 16x16 input, k=3 -> o=14; tile 16 -> out_tile 14: single tile.
  expect_forward_matches({.batch = 2, .input = 16, .channels = 2,
                          .filters = 3, .kernel = 3, .stride = 1},
                         16);
}

TEST(TiledFft, ExactForOverlappingTiles) {
  // tile 8, k=3 -> out_tile 6; o=14 needs 3x3 tiles with ragged edge.
  expect_forward_matches({.batch = 2, .input = 16, .channels = 2,
                          .filters = 3, .kernel = 3, .stride = 1},
                         8);
}

TEST(TiledFft, ExactWithPadding) {
  expect_forward_matches({.batch = 1, .input = 15, .channels = 3,
                          .filters = 2, .kernel = 5, .stride = 1,
                          .pad = 2},
                         16);
}

TEST(TiledFft, ExactForTinyTiles) {
  // Smallest legal tile for k=3 is 4: out_tile 2, many tiles.
  expect_forward_matches({.batch = 1, .input = 12, .channels = 1,
                          .filters = 1, .kernel = 3, .stride = 1},
                         4);
}

TEST(TiledFft, AutoTileMatchesDirectToo) {
  expect_forward_matches({.batch = 1, .input = 20, .channels = 2,
                          .filters = 2, .kernel = 3, .stride = 1, .pad = 1},
                         0);
}

TEST(TiledFft, BackwardPassesDelegateAndAgree) {
  const ConvConfig cfg{.batch = 2, .input = 10, .channels = 2,
                       .filters = 3, .kernel = 3, .stride = 1, .pad = 1};
  Rng rng(52);
  Tensor x(cfg.input_shape());
  x.fill_uniform(rng);
  Tensor w(cfg.filter_shape());
  w.fill_uniform(rng);
  Tensor gout(cfg.output_shape());
  gout.fill_uniform(rng);

  DirectConv oracle;
  TiledFftConv engine(8);
  Tensor want(cfg.input_shape());
  Tensor got(cfg.input_shape());
  oracle.backward_data(cfg, gout, w, want);
  engine.backward_data(cfg, gout, w, got);
  EXPECT_LT(max_abs_diff(want, got), 1e-4);

  Tensor want_gw(cfg.filter_shape());
  Tensor got_gw(cfg.filter_shape());
  oracle.backward_filter(cfg, x, gout, want_gw);
  engine.backward_filter(cfg, x, gout, got_gw);
  EXPECT_LT(max_abs_diff(want_gw, got_gw), 1e-3);
}

TEST(TiledFft, PlannerPrefersSmallTilesForSmallKernels) {
  // Large input, small kernel: tiling beats one huge padded transform.
  const ConvConfig cfg{.batch = 1, .input = 200, .channels = 1,
                       .filters = 1, .kernel = 3, .stride = 1};
  const TiledFftConv engine(0);
  const std::size_t tile = engine.tile_for(cfg);
  EXPECT_LT(tile, FftConv::transform_size(cfg));
  EXPECT_GE(tile, 8U);
}

TEST(TiledFft, PlannerFallsBackForLargeKernels) {
  // k close to the input: overlap would dominate; use one transform.
  const ConvConfig cfg{.batch = 1, .input = 40, .channels = 1,
                       .filters = 1, .kernel = 31, .stride = 1};
  const TiledFftConv engine(0);
  EXPECT_EQ(engine.tile_for(cfg), FftConv::transform_size(cfg));
}

TEST(TiledFft, RejectsNonPowerOfTwoTile) {
  EXPECT_THROW(TiledFftConv(12), Error);
}

TEST(TiledFft, RejectsTileSmallerThanKernel) {
  const ConvConfig cfg{.batch = 1, .input = 16, .channels = 1,
                       .filters = 1, .kernel = 5, .stride = 1};
  const TiledFftConv engine(4);
  EXPECT_THROW((void)engine.tile_for(cfg), Error);
}

TEST(TiledFft, StrideLimitInherited) {
  const ConvConfig cfg{.batch = 1, .input = 16, .channels = 1,
                       .filters = 1, .kernel = 3, .stride = 2};
  EXPECT_FALSE(TiledFftConv(8).supports(cfg));
}

}  // namespace
}  // namespace gpucnn::conv
