// Unit and finite-difference gradient tests for every nn layer.
#include <gtest/gtest.h>

#include "nn/activation_layer.hpp"
#include "nn/conv_layer.hpp"
#include "nn/dropout_layer.hpp"
#include "nn/fc_layer.hpp"
#include "nn/lrn_layer.hpp"
#include "nn/pool_layer.hpp"
#include "nn/softmax.hpp"

namespace gpucnn::nn {
namespace {

// L = sum(out .* weights); dL/dout = weights.
double weighted_loss(const Tensor& out, const Tensor& weights) {
  double acc = 0.0;
  for (std::size_t i = 0; i < out.count(); ++i) {
    acc += static_cast<double>(out.data()[i]) * weights.data()[i];
  }
  return acc;
}

// Checks layer.backward's input gradient against central differences.
void gradcheck_input(Layer& layer, Tensor& input, double tol = 5e-3,
                     float eps = 1e-2F) {
  Rng rng(99);
  Tensor out;
  layer.forward(input, out);
  Tensor loss_w(out.shape());
  loss_w.fill_uniform(rng);

  // Re-run forward so stateful layers cache the same activation, then
  // take the analytic gradient.
  layer.forward(input, out);
  Tensor grad_in;
  layer.backward(input, loss_w, grad_in);
  ASSERT_EQ(grad_in.shape(), input.shape());

  const std::size_t probes[] = {0, input.count() / 3, input.count() - 1};
  for (const std::size_t idx : probes) {
    const float saved = input.data()[idx];
    input.data()[idx] = saved + eps;
    layer.forward(input, out);
    const double up = weighted_loss(out, loss_w);
    input.data()[idx] = saved - eps;
    layer.forward(input, out);
    const double down = weighted_loss(out, loss_w);
    input.data()[idx] = saved;
    layer.forward(input, out);  // restore cached state
    EXPECT_NEAR(grad_in.data()[idx], (up - down) / (2.0 * eps), tol)
        << "input index " << idx;
  }
}

// --- pooling ---------------------------------------------------------

TEST(PoolLayer, MaxPoolPicksWindowMax) {
  PoolLayer pool("p", 2, 2);
  Tensor in(1, 1, 2, 2);
  in(0, 0, 0, 0) = 1.0F;
  in(0, 0, 0, 1) = 5.0F;
  in(0, 0, 1, 0) = -2.0F;
  in(0, 0, 1, 1) = 0.0F;
  Tensor out;
  pool.forward(in, out);
  EXPECT_EQ(out.shape(), (TensorShape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(out(0, 0, 0, 0), 5.0F);
}

TEST(PoolLayer, MaxPoolBackwardRoutesToWinner) {
  PoolLayer pool("p", 2, 2);
  Tensor in(1, 1, 2, 2);
  in(0, 0, 0, 1) = 5.0F;
  Tensor out;
  pool.forward(in, out);
  Tensor gout(1, 1, 1, 1);
  gout(0, 0, 0, 0) = 3.0F;
  Tensor gin;
  pool.backward(in, gout, gin);
  EXPECT_FLOAT_EQ(gin(0, 0, 0, 1), 3.0F);
  EXPECT_FLOAT_EQ(gin(0, 0, 0, 0), 0.0F);
}

TEST(PoolLayer, AveragePoolValue) {
  PoolLayer pool("p", 2, 2, PoolMode::kAverage);
  Tensor in(1, 1, 2, 2);
  in(0, 0, 0, 0) = 1.0F;
  in(0, 0, 0, 1) = 2.0F;
  in(0, 0, 1, 0) = 3.0F;
  in(0, 0, 1, 1) = 4.0F;
  Tensor out;
  pool.forward(in, out);
  EXPECT_FLOAT_EQ(out(0, 0, 0, 0), 2.5F);
}

TEST(PoolLayer, CeilModeKeepsTrailingColumn) {
  // AlexNet geometry: 13 -> 6 with window 3 stride 2 (exact division),
  // and ceil mode keeps the partial trailing window: 7 -> 4 with
  // window 2 stride 2 (floor mode would give 3).
  PoolLayer pool3("p3", 3, 2);
  EXPECT_EQ(pool3.output_shape({1, 1, 13, 13}),
            (TensorShape{1, 1, 6, 6}));
  PoolLayer pool2("p2", 2, 2);
  EXPECT_EQ(pool2.output_shape({1, 1, 7, 7}), (TensorShape{1, 1, 4, 4}));
}

TEST(PoolLayer, AverageGradcheck) {
  PoolLayer pool("p", 3, 2, PoolMode::kAverage);
  Rng rng(1);
  Tensor in(2, 3, 7, 7);
  in.fill_uniform(rng);
  gradcheck_input(pool, in);
}

TEST(PoolLayer, MaxGradcheck) {
  PoolLayer pool("p", 2, 2);
  Rng rng(2);
  Tensor in(2, 2, 6, 6);
  in.fill_uniform(rng);
  gradcheck_input(pool, in);
}

// --- activations -----------------------------------------------------

TEST(ActivationLayer, ReluClampsNegatives) {
  ActivationLayer relu("r");
  Tensor in(1, 1, 1, 4);
  in(0, 0, 0, 0) = -1.0F;
  in(0, 0, 0, 1) = 2.0F;
  in(0, 0, 0, 2) = 0.0F;
  in(0, 0, 0, 3) = -0.5F;
  Tensor out;
  relu.forward(in, out);
  EXPECT_FLOAT_EQ(out(0, 0, 0, 0), 0.0F);
  EXPECT_FLOAT_EQ(out(0, 0, 0, 1), 2.0F);
}

TEST(ActivationLayer, SigmoidRange) {
  ActivationLayer sig("s", Activation::kSigmoid);
  Rng rng(3);
  Tensor in(1, 2, 4, 4);
  in.fill_uniform(rng, -5.0F, 5.0F);
  Tensor out;
  sig.forward(in, out);
  for (const float v : out.data()) {
    EXPECT_GT(v, 0.0F);
    EXPECT_LT(v, 1.0F);
  }
}

TEST(ActivationLayer, GradchecksAllFunctions) {
  for (const auto fn :
       {Activation::kRelu, Activation::kSigmoid, Activation::kTanh}) {
    ActivationLayer layer("a", fn);
    Rng rng(4);
    Tensor in(2, 2, 3, 3);
    // Keep away from ReLU's kink.
    in.fill_uniform(rng, 0.1F, 1.0F);
    gradcheck_input(layer, in, 1e-2);
  }
}

// --- fully connected -------------------------------------------------

TEST(FcLayer, ForwardIsAffineMap) {
  FcLayer fc("fc", 3, 2);
  // W = [[1,0,0],[0,2,0]], b = [1, -1].
  fc.parameters()[0]->data()[0] = 1.0F;
  fc.parameters()[0]->data()[4] = 2.0F;
  fc.parameters()[1]->data()[0] = 1.0F;
  fc.parameters()[1]->data()[1] = -1.0F;
  Tensor in(1, 3, 1, 1);
  in(0, 0, 0, 0) = 10.0F;
  in(0, 1, 0, 0) = 20.0F;
  Tensor out;
  fc.forward(in, out);
  EXPECT_FLOAT_EQ(out(0, 0, 0, 0), 11.0F);
  EXPECT_FLOAT_EQ(out(0, 1, 0, 0), 39.0F);
}

TEST(FcLayer, FlattensSpatialInput) {
  FcLayer fc("fc", 2 * 3 * 3, 4);
  Rng rng(5);
  fc.initialize(rng);
  Tensor in(2, 2, 3, 3);
  in.fill_uniform(rng);
  Tensor out;
  fc.forward(in, out);
  EXPECT_EQ(out.shape(), (TensorShape{2, 4, 1, 1}));
}

TEST(FcLayer, RejectsFeatureMismatch) {
  FcLayer fc("fc", 10, 4);
  EXPECT_THROW((void)fc.output_shape({1, 3, 2, 2}), Error);
}

TEST(FcLayer, InputGradcheck) {
  FcLayer fc("fc", 12, 5);
  Rng rng(6);
  fc.initialize(rng);
  Tensor in(3, 12, 1, 1);
  in.fill_uniform(rng);
  gradcheck_input(fc, in);
}

TEST(FcLayer, WeightGradcheck) {
  FcLayer fc("fc", 6, 4);
  Rng rng(7);
  fc.initialize(rng);
  Tensor in(2, 6, 1, 1);
  in.fill_uniform(rng);
  Tensor out;
  fc.forward(in, out);
  Tensor loss_w(out.shape());
  loss_w.fill_uniform(rng);
  fc.zero_grad();
  Tensor gin;
  fc.backward(in, loss_w, gin);
  Tensor* w = fc.parameters()[0];
  Tensor* gw = fc.gradients()[0];
  const float eps = 1e-2F;
  for (const std::size_t idx : {0UL, 11UL, w->count() - 1}) {
    const float saved = w->data()[idx];
    w->data()[idx] = saved + eps;
    fc.forward(in, out);
    const double up = weighted_loss(out, loss_w);
    w->data()[idx] = saved - eps;
    fc.forward(in, out);
    const double down = weighted_loss(out, loss_w);
    w->data()[idx] = saved;
    EXPECT_NEAR(gw->data()[idx], (up - down) / (2.0 * eps), 5e-3);
  }
}

// --- dropout ---------------------------------------------------------

TEST(DropoutLayer, IdentityAtInference) {
  DropoutLayer drop("d", 0.5);
  drop.set_training(false);
  Rng rng(8);
  Tensor in(1, 4, 4, 4);
  in.fill_uniform(rng);
  Tensor out;
  drop.forward(in, out);
  EXPECT_EQ(max_abs_diff(in, out), 0.0);
}

TEST(DropoutLayer, PreservesExpectationInTraining) {
  DropoutLayer drop("d", 0.5);
  Tensor in(1, 1, 100, 100);
  in.fill(1.0F);
  Tensor out;
  drop.forward(in, out);
  EXPECT_NEAR(out.sum() / static_cast<double>(out.count()), 1.0, 0.1);
}

TEST(DropoutLayer, BackwardUsesSameMask) {
  DropoutLayer drop("d", 0.5);
  Tensor in(1, 1, 8, 8);
  in.fill(1.0F);
  Tensor out;
  drop.forward(in, out);
  Tensor gout(in.shape());
  gout.fill(1.0F);
  Tensor gin;
  drop.backward(in, gout, gin);
  EXPECT_EQ(max_abs_diff(out, gin), 0.0);  // same mask, same scaling
}

TEST(DropoutLayer, RejectsInvalidRate) {
  EXPECT_THROW(DropoutLayer("d", 1.0), Error);
  EXPECT_THROW(DropoutLayer("d", -0.1), Error);
}

// --- LRN -------------------------------------------------------------

TEST(LrnLayer, NormalisesByWindowEnergy) {
  LrnLayer lrn("l", 5, 1e-4, 0.75, 2.0);
  Tensor in(1, 8, 2, 2);
  in.fill(1.0F);
  Tensor out;
  lrn.forward(in, out);
  // Interior channels see 5 ones: b = 2 + 1e-4; out ~ 1 * b^-0.75.
  const float expect =
      static_cast<float>(std::pow(2.0 + 5.0 * 1e-4 / 5.0 * 5.0, -0.75));
  EXPECT_NEAR(out(0, 4, 0, 0), expect, 1e-3F);
}

TEST(LrnLayer, Gradcheck) {
  LrnLayer lrn("l", 3);
  Rng rng(9);
  Tensor in(2, 6, 3, 3);
  in.fill_uniform(rng, 0.2F, 1.0F);
  gradcheck_input(lrn, in, 1e-2);
}

TEST(LrnLayer, RejectsEvenWindow) { EXPECT_THROW(LrnLayer("l", 4), Error); }

// --- softmax ---------------------------------------------------------

TEST(SoftmaxLayer, RowsSumToOne) {
  SoftmaxLayer sm("s");
  Rng rng(10);
  Tensor in(4, 10, 1, 1);
  in.fill_uniform(rng, -3.0F, 3.0F);
  Tensor out;
  sm.forward(in, out);
  for (std::size_t n = 0; n < 4; ++n) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 10; ++c) sum += out(n, c, 0, 0);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(SoftmaxLayer, StableForLargeLogits) {
  SoftmaxLayer sm("s");
  Tensor in(1, 3, 1, 1);
  in(0, 0, 0, 0) = 1000.0F;
  in(0, 1, 0, 0) = 1000.0F;
  in(0, 2, 0, 0) = -1000.0F;
  Tensor out;
  sm.forward(in, out);
  EXPECT_NEAR(out(0, 0, 0, 0), 0.5F, 1e-5F);
  EXPECT_NEAR(out(0, 2, 0, 0), 0.0F, 1e-6F);
}

TEST(SoftmaxLayer, Gradcheck) {
  SoftmaxLayer sm("s");
  Rng rng(11);
  Tensor in(2, 5, 1, 1);
  in.fill_uniform(rng);
  gradcheck_input(sm, in, 1e-2);
}

TEST(SoftmaxLoss, UniformPredictionGivesLogC) {
  Tensor probs(3, 4, 1, 1);
  probs.fill(0.25F);
  const std::vector<std::size_t> labels{0, 1, 2};
  EXPECT_NEAR(cross_entropy_loss(probs, labels), std::log(4.0), 1e-5);
}

TEST(SoftmaxLoss, LogitsGradIsProbMinusOneHotOverBatch) {
  Tensor probs(2, 3, 1, 1);
  probs.fill(1.0F / 3.0F);
  const std::vector<std::size_t> labels{0, 2};
  Tensor grad;
  cross_entropy_grad(probs, labels, grad);
  EXPECT_NEAR(grad(0, 0, 0, 0), (1.0F / 3.0F - 1.0F) / 2.0F, 1e-6F);
  EXPECT_NEAR(grad(0, 1, 0, 0), (1.0F / 3.0F) / 2.0F, 1e-6F);
}

TEST(SoftmaxLoss, ProbGradThroughSoftmaxEqualsLogitsGrad) {
  // Feeding the probability-space gradient through SoftmaxLayer's
  // backward must reproduce (p - onehot)/N at the logits — the identity
  // network training relies on.
  SoftmaxLayer sm("s");
  Rng rng(20);
  Tensor logits(3, 4, 1, 1);
  logits.fill_uniform(rng, -2.0F, 2.0F);
  Tensor probs;
  sm.forward(logits, probs);
  const std::vector<std::size_t> labels{1, 3, 0};

  Tensor prob_grad;
  cross_entropy_prob_grad(probs, labels, prob_grad);
  Tensor through_softmax;
  sm.backward(logits, prob_grad, through_softmax);

  Tensor direct;
  cross_entropy_grad(probs, labels, direct);
  EXPECT_LT(max_abs_diff(through_softmax, direct), 1e-5);
}

TEST(SoftmaxLoss, AccuracyCountsArgmaxHits) {
  Tensor probs(2, 2, 1, 1);
  probs(0, 0, 0, 0) = 0.9F;
  probs(0, 1, 0, 0) = 0.1F;
  probs(1, 0, 0, 0) = 0.2F;
  probs(1, 1, 0, 0) = 0.8F;
  EXPECT_DOUBLE_EQ(accuracy(probs, std::vector<std::size_t>{0, 0}), 0.5);
  EXPECT_DOUBLE_EQ(accuracy(probs, std::vector<std::size_t>{0, 1}), 1.0);
}

TEST(SoftmaxLoss, RejectsBadLabels) {
  Tensor probs(1, 3, 1, 1);
  probs.fill(1.0F / 3.0F);
  EXPECT_THROW((void)cross_entropy_loss(probs, std::vector<std::size_t>{5}),
               Error);
}

// --- conv layer (integration with engines) ---------------------------

TEST(ConvLayer, InputGradcheck) {
  ConvLayer layer("c",
                  ConvConfig{.batch = 1, .input = 6, .channels = 2,
                             .filters = 3, .kernel = 3, .stride = 1,
                             .pad = 1});
  Rng rng(12);
  layer.initialize(rng);
  Tensor in(2, 2, 6, 6);
  in.fill_uniform(rng);
  gradcheck_input(layer, in);
}

TEST(ConvLayer, AdaptsToBatchSize) {
  ConvLayer layer("c",
                  ConvConfig{.batch = 1, .input = 5, .channels = 1,
                             .filters = 2, .kernel = 3, .stride = 1});
  Rng rng(13);
  layer.initialize(rng);
  for (const std::size_t n : {1UL, 3UL, 8UL}) {
    Tensor in(n, 1, 5, 5);
    in.fill_uniform(rng);
    Tensor out;
    layer.forward(in, out);
    EXPECT_EQ(out.shape().n, n);
  }
}

TEST(ConvLayer, BiasIsAdded) {
  ConvLayer layer("c",
                  ConvConfig{.batch = 1, .input = 3, .channels = 1,
                             .filters = 1, .kernel = 3, .stride = 1});
  layer.parameters()[1]->fill(7.0F);  // bias only; weights zero
  Tensor in(1, 1, 3, 3);
  in.fill(1.0F);
  Tensor out;
  layer.forward(in, out);
  EXPECT_FLOAT_EQ(out(0, 0, 0, 0), 7.0F);
}

TEST(ConvLayer, StrategySwapPreservesOutput) {
  ConvLayer layer("c",
                  ConvConfig{.batch = 1, .input = 9, .channels = 2,
                             .filters = 4, .kernel = 3, .stride = 1});
  Rng rng(14);
  layer.initialize(rng);
  Tensor in(2, 2, 9, 9);
  in.fill_uniform(rng);
  Tensor unroll;
  layer.forward(in, unroll);
  layer.set_strategy(conv::Strategy::kFft);
  Tensor fft;
  layer.forward(in, fft);
  EXPECT_LT(max_abs_diff(unroll, fft), 1e-4);
}

}  // namespace
}  // namespace gpucnn::nn
