// Implicit-GEMM convolution: numerically identical to the explicit
// im2col+GEMM path on every pass and geometry.
#include "conv/implicit_gemm_conv.hpp"

#include <gtest/gtest.h>

#include "conv/direct_conv.hpp"
#include "core/rng.hpp"

namespace gpucnn::conv {
namespace {

struct Case {
  ConvConfig cfg;
  const char* label;
};

std::ostream& operator<<(std::ostream& os, const Case& c) {
  return os << c.label;
}

class ImplicitGemmAgreement : public ::testing::TestWithParam<Case> {};

TEST_P(ImplicitGemmAgreement, AllPassesMatchDirect) {
  const ConvConfig cfg = GetParam().cfg;
  Rng rng(77);
  Tensor x(cfg.input_shape());
  x.fill_uniform(rng);
  Tensor w(cfg.filter_shape());
  w.fill_uniform(rng);
  Tensor gout(cfg.output_shape());
  gout.fill_uniform(rng);

  DirectConv oracle;
  ImplicitGemmConv engine;
  const double tol = 1e-3;

  Tensor want_y(cfg.output_shape());
  Tensor got_y(cfg.output_shape());
  oracle.forward(cfg, x, w, want_y);
  engine.forward(cfg, x, w, got_y);
  EXPECT_LT(max_abs_diff(want_y, got_y), tol);

  Tensor want_gx(cfg.input_shape());
  Tensor got_gx(cfg.input_shape());
  oracle.backward_data(cfg, gout, w, want_gx);
  engine.backward_data(cfg, gout, w, got_gx);
  EXPECT_LT(max_abs_diff(want_gx, got_gx), tol);

  Tensor want_gw(cfg.filter_shape());
  Tensor got_gw(cfg.filter_shape());
  oracle.backward_filter(cfg, x, gout, want_gw);
  engine.backward_filter(cfg, x, gout, got_gw);
  EXPECT_LT(max_abs_diff(want_gw, got_gw),
            tol * (1.0 + 0.05 * static_cast<double>(cfg.batch *
                                                    cfg.output())));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ImplicitGemmAgreement,
    ::testing::Values(
        Case{{.batch = 1, .input = 8, .channels = 2, .filters = 3,
              .kernel = 3, .stride = 1},
             "basic"},
        Case{{.batch = 2, .input = 12, .channels = 3, .filters = 4,
              .kernel = 5, .stride = 2, .pad = 2},
             "strided_padded"},
        Case{{.batch = 1, .input = 9, .channels = 1, .filters = 1,
              .kernel = 1, .stride = 1},
             "pointwise"},
        // Output positions not a multiple of the 64-wide tile.
        Case{{.batch = 1, .input = 19, .channels = 2, .filters = 2,
              .kernel = 4, .stride = 1},
             "ragged_tiles"},
        Case{{.batch = 3, .input = 16, .channels = 4, .filters = 8,
              .kernel = 3, .stride = 1, .pad = 1},
             "vgg_ish"}));

TEST(ImplicitGemm, IdentifiesAsUnrollingStrategy) {
  ImplicitGemmConv engine;
  EXPECT_EQ(engine.strategy(), Strategy::kUnrolling);
  EXPECT_EQ(engine.name(), "implicit-gemm");
  EXPECT_TRUE(engine.supports({.batch = 1, .input = 7, .channels = 1,
                               .filters = 1, .kernel = 3, .stride = 3}));
}

TEST(ImplicitGemm, ShapeValidation) {
  const ConvConfig cfg{.batch = 1, .input = 8, .channels = 1, .filters = 1,
                       .kernel = 3, .stride = 1};
  ImplicitGemmConv engine;
  Tensor x(cfg.input_shape());
  Tensor w(cfg.filter_shape());
  Tensor bad(1, 1, 3, 3);
  EXPECT_THROW(engine.forward(cfg, x, w, bad), Error);
}

}  // namespace
}  // namespace gpucnn::conv
