#include "core/tensor.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace gpucnn {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  const Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.count(), 0U);
}

TEST(Tensor, ConstructZeroInitialises) {
  const Tensor t(2, 3, 4, 5);
  EXPECT_EQ(t.count(), 120U);
  for (const float v : t.data()) EXPECT_EQ(v, 0.0F);
}

TEST(Tensor, NchwIndexing) {
  Tensor t(2, 3, 4, 5);
  t(1, 2, 3, 4) = 42.0F;
  // offset = ((1*3 + 2)*4 + 3)*5 + 4 = 119 — the very last element
  EXPECT_EQ(t.data()[119], 42.0F);
  EXPECT_EQ(t(1, 2, 3, 4), 42.0F);
}

TEST(Tensor, AtChecksBounds) {
  Tensor t(1, 1, 2, 2);
  EXPECT_NO_THROW(t.at(0, 0, 1, 1));
  EXPECT_THROW(t.at(0, 0, 2, 0), Error);
  EXPECT_THROW(t.at(1, 0, 0, 0), Error);
}

TEST(Tensor, PlanePointsIntoStorage) {
  Tensor t(2, 2, 2, 2);
  t(1, 0, 0, 0) = 7.0F;
  EXPECT_EQ(t.plane(1, 0)[0], 7.0F);
  EXPECT_EQ(t.plane(0, 0), t.raw());
}

TEST(Tensor, FillSetsEveryElement) {
  Tensor t(1, 2, 3, 4);
  t.fill(1.5F);
  for (const float v : t.data()) EXPECT_EQ(v, 1.5F);
}

TEST(Tensor, FillUniformRespectsRangeAndSeed) {
  Tensor a(1, 1, 8, 8);
  Tensor b(1, 1, 8, 8);
  Rng r1(99);
  Rng r2(99);
  a.fill_uniform(r1, -2.0F, 2.0F);
  b.fill_uniform(r2, -2.0F, 2.0F);
  EXPECT_EQ(max_abs_diff(a, b), 0.0);
  for (const float v : a.data()) {
    EXPECT_GE(v, -2.0F);
    EXPECT_LT(v, 2.0F);
  }
}

TEST(Tensor, FillNormalIsDeterministic) {
  Tensor a(1, 1, 16, 16);
  Tensor b(1, 1, 16, 16);
  Rng r1(5);
  Rng r2(5);
  a.fill_normal(r1);
  b.fill_normal(r2);
  EXPECT_EQ(max_abs_diff(a, b), 0.0);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t(1, 2, 3, 4);
  t(0, 1, 2, 3) = 9.0F;
  t.reshape({2, 2, 3, 2});
  EXPECT_EQ(t.shape(), (TensorShape{2, 2, 3, 2}));
  EXPECT_EQ(t.data()[23], 9.0F);
}

TEST(Tensor, ReshapeRejectsCountChange) {
  Tensor t(1, 2, 3, 4);
  EXPECT_THROW(t.reshape({1, 1, 1, 1}), Error);
}

TEST(Tensor, ResizeZeroes) {
  Tensor t(1, 1, 2, 2);
  t.fill(3.0F);
  t.resize({1, 1, 4, 4});
  EXPECT_EQ(t.count(), 16U);
  for (const float v : t.data()) EXPECT_EQ(v, 0.0F);
}

TEST(Tensor, SumAndMaxAbs) {
  Tensor t(1, 1, 1, 4);
  t(0, 0, 0, 0) = 1.0F;
  t(0, 0, 0, 1) = -5.0F;
  t(0, 0, 0, 2) = 2.0F;
  EXPECT_DOUBLE_EQ(t.sum(), -2.0);
  EXPECT_EQ(t.max_abs(), 5.0F);
}

TEST(Tensor, MaxAbsDiffRejectsShapeMismatch) {
  const Tensor a(1, 1, 2, 2);
  const Tensor b(1, 1, 2, 3);
  EXPECT_THROW(max_abs_diff(a, b), Error);
}

TEST(Tensor, StorageIsCacheLineAligned) {
  const Tensor t(1, 1, 3, 3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(t.raw()) % 64, 0U);
}

}  // namespace
}  // namespace gpucnn
