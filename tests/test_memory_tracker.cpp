#include "gpusim/memory_tracker.hpp"

#include <gtest/gtest.h>

namespace gpucnn::gpusim {
namespace {

constexpr double kMB = 1048576.0;

TEST(MemoryTracker, TracksCurrentAndPeak) {
  MemoryTracker t(tesla_k40c());
  const auto a = t.allocate("a", 100 * kMB);
  const auto b = t.allocate("b", 50 * kMB);
  EXPECT_DOUBLE_EQ(t.current_bytes(), 150 * kMB);
  EXPECT_DOUBLE_EQ(t.peak_mb(), 150.0);
  t.release(a);
  EXPECT_DOUBLE_EQ(t.current_bytes(), 50 * kMB);
  EXPECT_DOUBLE_EQ(t.peak_mb(), 150.0);  // peak sticks
  t.release(b);
  EXPECT_DOUBLE_EQ(t.current_bytes(), 0.0);
}

TEST(MemoryTracker, ThrowsOnExhaustion) {
  MemoryTracker t(tesla_k40c());
  t.allocate("big", 11000 * kMB);
  EXPECT_THROW(t.allocate("straw", 2000 * kMB), OutOfDeviceMemory);
  // The failed allocation does not count.
  EXPECT_DOUBLE_EQ(t.current_bytes(), 11000 * kMB);
}

TEST(MemoryTracker, ExhaustionMessageNamesAllocation) {
  MemoryTracker t(tesla_k40c());
  t.allocate("base", 12000 * kMB);
  try {
    t.allocate("fbfft-spectra", 1000 * kMB);
    FAIL();
  } catch (const OutOfDeviceMemory& e) {
    EXPECT_NE(std::string(e.what()).find("fbfft-spectra"),
              std::string::npos);
  }
}

TEST(MemoryTracker, ReleaseUnknownIdThrows) {
  MemoryTracker t(tesla_k40c());
  EXPECT_THROW(t.release(999), Error);
}

TEST(MemoryTracker, LiveBreakdownSortedDescending) {
  MemoryTracker t(tesla_k40c());
  t.allocate("small", 10 * kMB);
  t.allocate("large", 100 * kMB);
  t.allocate("medium", 50 * kMB);
  const auto live = t.live();
  ASSERT_EQ(live.size(), 3U);
  EXPECT_EQ(live[0].first, "large");
  EXPECT_EQ(live[2].first, "small");
  EXPECT_EQ(t.live_allocations(), 3U);
}

TEST(MemoryTracker, ResetClearsEverything) {
  MemoryTracker t(tesla_k40c());
  t.allocate("x", 100 * kMB);
  t.reset();
  EXPECT_DOUBLE_EQ(t.current_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(t.peak_bytes(), 0.0);
  EXPECT_EQ(t.live_allocations(), 0U);
}

TEST(MemoryTracker, ZeroByteAllocationAllowed) {
  MemoryTracker t(tesla_k40c());
  EXPECT_NO_THROW(t.allocate("empty", 0.0));
  EXPECT_THROW(t.allocate("negative", -1.0), Error);
}

}  // namespace
}  // namespace gpucnn::gpusim
