// Tests for the observability layer (src/obs/): trace JSON
// well-formedness and nesting balance, metrics thread-safety under
// parallel_for, CSV/JSON table round-trips, and the manifest schema.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/thread_pool.hpp"
#include "obs/exporter.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gpucnn::obs {
namespace {

namespace fs = std::filesystem;

/// Fresh global tracer/metrics state per test; restores on scope exit.
struct ObsSandbox {
  ObsSandbox() {
    tracer().clear();
    tracer().enable(false);
    metrics().reset();
  }
  ~ObsSandbox() {
    tracer().clear();
    tracer().enable(false);
    metrics().reset();
  }
};

/// A throw-away directory under the system temp path.
struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("gpucnn_obs_test_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ---------------------------------------------------------------- Json

TEST(JsonTest, EscapesAndTypes) {
  Json doc = Json::object();
  doc.set("s", "a\"b\\c\n\t");
  doc.set("i", 42);
  doc.set("d", 2.5);
  doc.set("b", true);
  doc.set("n", Json());
  EXPECT_EQ(doc.dump_string(),
            R"({"s":"a\"b\\c\n\t","i":42,"d":2.5,"b":true,"n":null})");
}

TEST(JsonTest, NonFiniteNumbersBecomeNull) {
  Json arr = Json::array();
  arr.push(std::numeric_limits<double>::infinity());
  arr.push(std::numeric_limits<double>::quiet_NaN());
  arr.push(1.0);
  EXPECT_EQ(arr.dump_string(), "[null,null,1]");
}

TEST(JsonTest, SetReplacesExistingKey) {
  Json doc = Json::object();
  doc.set("k", 1).set("k", 2);
  EXPECT_EQ(doc.dump_string(), R"({"k":2})");
}

// --------------------------------------------------------------- Trace

TEST(TraceTest, DisabledTracerRecordsNothing) {
  ObsSandbox sandbox;
  {
    Span span(tracer(), "ignored", "test");
  }
  EXPECT_EQ(tracer().event_count(), 0U);
}

TEST(TraceTest, SpansNestAndBalance) {
  ObsSandbox sandbox;
  tracer().enable(true);
  {
    Span outer(tracer(), "outer", "test");
    {
      Span inner(tracer(), "inner", "test");
    }
  }
  const auto events = tracer().events();
  ASSERT_EQ(events.size(), 2U);
  // Destructor order: inner completes first, and lies inside outer.
  const auto& inner = events[0];
  const auto& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_LE(outer.start_us, inner.start_us);
  EXPECT_GE(outer.start_us + outer.duration_us,
            inner.start_us + inner.duration_us);
}

TEST(TraceTest, ChromeJsonIsWellFormedAndNested) {
  ObsSandbox sandbox;
  tracer().enable(true);
  {
    Span a(tracer(), "a", "test");
    Span b(tracer(), "b", "test");
    b.arg("key", "value \"quoted\"");
  }
  const auto gpu = tracer().virtual_track("sim:gpu");
  tracer().append_at_cursor(gpu, "k1", "sim.kernel", 10.0, {});
  tracer().append_at_cursor(gpu, "k2", "sim.kernel", 5.0, {});

  std::ostringstream os;
  tracer().write_chrome_json(os);
  const std::string text = os.str();

  // Structural checks without a JSON parser: balanced braces/brackets
  // and the two required top-level keys.
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\""), std::string::npos);
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string && (c == '{' || c == '[')) {
      ++depth;
    } else if (!in_string && (c == '}' || c == ']')) {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
}

TEST(TraceTest, VirtualTrackCursorAppendsEndToEnd) {
  ObsSandbox sandbox;
  tracer().enable(true);
  const auto track = tracer().virtual_track("sim:gpu");
  const double t0 = tracer().append_at_cursor(track, "a", "sim.kernel",
                                              100.0, {});
  const double t1 = tracer().append_at_cursor(track, "b", "sim.kernel",
                                              50.0, {});
  EXPECT_DOUBLE_EQ(t0, 0.0);
  EXPECT_DOUBLE_EQ(t1, 100.0);
  EXPECT_DOUBLE_EQ(tracer().cursor_us(track), 150.0);
  // Same name resolves to the same track.
  EXPECT_EQ(tracer().virtual_track("sim:gpu"), track);
}

TEST(TraceTest, ThreadsGetDistinctTracks) {
  ObsSandbox sandbox;
  tracer().enable(true);
  {
    Span main_span(tracer(), "main", "test");
    std::thread worker([] { Span s(tracer(), "worker", "test"); });
    worker.join();
  }
  const auto events = tracer().events();
  ASSERT_EQ(events.size(), 2U);
  EXPECT_NE(events[0].track, events[1].track);
}

// ------------------------------------------------------------- Metrics

TEST(MetricsTest, CountersRaceFreeUnderParallelFor) {
  ObsSandbox sandbox;
  auto& counter = metrics().counter("test.counter");
  auto& hist = metrics().histogram("test.hist");
  constexpr std::size_t kItems = 100000;
  parallel_for(0, kItems, [&](std::size_t i) {
    counter.add(1);
    hist.record(static_cast<double>(i % 17));
  });
  EXPECT_EQ(counter.value(), static_cast<std::int64_t>(kItems));
  EXPECT_EQ(hist.snapshot().count, static_cast<std::int64_t>(kItems));
}

TEST(MetricsTest, HistogramSnapshotStatistics) {
  ObsSandbox sandbox;
  auto& hist = metrics().histogram("test.stats");
  for (const double v : {1.0, 2.0, 4.0, 8.0}) hist.record(v);
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, 4);
  EXPECT_DOUBLE_EQ(snap.sum, 15.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 8.0);
}

TEST(MetricsTest, ResetKeepsReferencesValid) {
  ObsSandbox sandbox;
  auto& counter = metrics().counter("test.reset");
  counter.add(7);
  metrics().reset();
  EXPECT_EQ(counter.value(), 0);
  counter.add(3);
  EXPECT_EQ(metrics().counter("test.reset").value(), 3);
}

TEST(MetricsTest, SnapshotIsValidJson) {
  ObsSandbox sandbox;
  metrics().counter("c").add(2);
  metrics().gauge("g").set(1.5);
  metrics().histogram("h").record(3.0);
  const auto snap = metrics().snapshot();
  const std::string text = snap.dump_string();
  EXPECT_NE(text.find("\"counters\""), std::string::npos);
  EXPECT_NE(text.find("\"gauges\""), std::string::npos);
  EXPECT_NE(text.find("\"histograms\""), std::string::npos);
}

// ------------------------------------------------------------ Exporter

TEST(ExporterTest, SanitizeColumn) {
  EXPECT_EQ(sanitize_column("time (ms)"), "time_ms");
  EXPECT_EQ(sanitize_column("Theano-CorrMM"), "theano_corrmm");
  EXPECT_EQ(sanitize_column("  Shared Memory (KB) "), "shared_memory_kb");
  EXPECT_EQ(sanitize_column("wee(%)"), "wee");
}

TEST(ExporterTest, ParseStripsFlagsAndKeepsPositionalDir) {
  const char* raw[] = {"tool", "--json", "outdir", "--trace", "--keep"};
  char* argv[5];
  for (int i = 0; i < 5; ++i) argv[i] = const_cast<char*>(raw[i]);
  int argc = 5;
  const auto opts = ExportOptions::parse(argc, argv);
  EXPECT_TRUE(opts.json);
  EXPECT_TRUE(opts.trace);
  EXPECT_FALSE(opts.csv);
  EXPECT_EQ(opts.dir, fs::path("outdir"));
  ASSERT_EQ(argc, 2);  // unrecognised flag left for the caller
  EXPECT_STREQ(argv[1], "--keep");
}

TEST(ExporterTest, InactiveExporterWritesNothing) {
  ObsSandbox sandbox;
  TempDir tmp;
  ExportOptions opts;
  opts.dir = tmp.path / "never";
  {
    RunExporter exporter(opts, "test_tool");
    exporter.add_table("t", "desc", {"a"}, {{"1"}});
    exporter.finish();
  }
  EXPECT_FALSE(fs::exists(opts.dir));
}

TEST(ExporterTest, TableRoundTripsThroughCsvAndJson) {
  ObsSandbox sandbox;
  TempDir tmp;
  ExportOptions opts;
  opts.json = true;
  opts.csv = true;
  opts.dir = tmp.path;
  {
    RunExporter exporter(opts, "test_tool");
    exporter.add_table("t", "a table",
                       {"Name", "time (ms)", "note"},
                       {{"alpha, \"quoted\"", "1.5", "n/s"},
                        {"beta", "2", ""}});
  }
  // CSV: RFC 4180 quoting, sanitised header.
  const std::string csv = slurp(tmp.path / "t.csv");
  EXPECT_EQ(csv,
            "name,time_ms,note\n"
            "\"alpha, \"\"quoted\"\"\",1.5,n/s\n"
            "beta,2,\n");
  // JSON: typed cells — numbers as numbers, empty as null.
  const std::string json = slurp(tmp.path / "t.json");
  EXPECT_NE(json.find("\"schema_version\": \"1.0.0\""), std::string::npos);
  EXPECT_NE(json.find("\"time_ms\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"time_ms\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"note\": \"n/s\""), std::string::npos);
  EXPECT_NE(json.find("\"note\": null"), std::string::npos);
}

TEST(ExporterTest, ManifestCarriesSchemaVersionAndArtifacts) {
  ObsSandbox sandbox;
  TempDir tmp;
  ExportOptions opts;
  opts.json = true;
  opts.trace = true;
  opts.dir = tmp.path;
  {
    RunExporter exporter(opts, "test_tool");
    EXPECT_TRUE(tracer().enabled());
    exporter.annotate("device", "Tesla K40c");
    exporter.add_table("t", "a table", {"x"}, {{"1"}});
    const auto manifest = exporter.finish();
    EXPECT_EQ(manifest, tmp.path / "manifest.json");
  }
  const std::string text = slurp(tmp.path / "manifest.json");
  EXPECT_NE(text.find("\"schema_version\": \"1.0.0\""), std::string::npos);
  EXPECT_NE(text.find("\"tool\": \"test_tool\""), std::string::npos);
  EXPECT_NE(text.find("\"device\": \"Tesla K40c\""), std::string::npos);
  EXPECT_NE(text.find("\"t.json\""), std::string::npos);
  EXPECT_NE(text.find("\"trace.json\""), std::string::npos);
  EXPECT_TRUE(fs::exists(tmp.path / "trace.json"));
  // finish() disables the tracer it enabled.
  EXPECT_FALSE(tracer().enabled());
}

}  // namespace
}  // namespace gpucnn::obs
