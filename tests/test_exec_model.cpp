#include "gpusim/exec_model.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace gpucnn::gpusim {
namespace {

const DeviceSpec kDev = tesla_k40c();

KernelProfile compute_kernel(double flops) {
  KernelProfile k;
  k.name = "compute";
  k.block_threads = 256;
  k.regs_per_thread = 32;
  k.flops = flops;
  k.compute_efficiency = 0.5;
  k.gld_dram_factor = 1.0;
  k.gst_dram_factor = 1.0;
  return k;
}

KernelProfile memory_kernel(double bytes) {
  KernelProfile k;
  k.name = "copy";
  k.block_threads = 256;
  k.regs_per_thread = 32;
  k.global_load_bytes = bytes / 2;
  k.global_store_bytes = bytes / 2;
  k.gld_dram_factor = 1.0;
  k.gst_dram_factor = 1.0;
  return k;
}

TEST(ExecModel, ComputeBoundDuration) {
  // 1e9 flops at 4291 GFLOP/s peak and 0.5 efficiency: ~0.47 ms + launch.
  const auto m = simulate_kernel(kDev, compute_kernel(1e9));
  const double expect_ms =
      1e9 / (kDev.peak_sp_gflops() * 1e9 * 0.5 * 1.0) * 1e3;
  EXPECT_NEAR(m.duration_ms, expect_ms + kDev.launch_overhead_us * 1e-3,
              expect_ms * 0.02);
  EXPECT_EQ(m.bottleneck, Bottleneck::kCompute);
}

TEST(ExecModel, MemoryBoundDuration) {
  const auto m = simulate_kernel(kDev, memory_kernel(1e9));
  const double expect_ms =
      1e9 / (kDev.sustained_bandwidth_gbs() * 1e9) * 1e3;
  EXPECT_NEAR(m.duration_ms, expect_ms + kDev.launch_overhead_us * 1e-3,
              expect_ms * 0.02);
  EXPECT_EQ(m.bottleneck, Bottleneck::kGlobalMemory);
}

TEST(ExecModel, LaunchBoundForTinyKernels) {
  const auto m = simulate_kernel(kDev, compute_kernel(1e3));
  EXPECT_EQ(m.bottleneck, Bottleneck::kLaunch);
  EXPECT_NEAR(m.duration_ms, kDev.launch_overhead_us * 1e-3, 1e-4);
}

TEST(ExecModel, SharedMemoryBound) {
  KernelProfile k = compute_kernel(1e6);
  k.shared_bytes = 1e10;
  k.shared_efficiency = 1.0;
  const auto m = simulate_kernel(kDev, k);
  EXPECT_EQ(m.bottleneck, Bottleneck::kSharedMemory);
}

TEST(ExecModel, BankConflictsSlowSharedPipeline) {
  KernelProfile k = compute_kernel(1e6);
  k.shared_bytes = 1e10;
  k.shared_efficiency = 1.0;
  const auto clean = simulate_kernel(kDev, k);
  k.shared_efficiency = 0.25;  // 4-way conflicts
  const auto conflicted = simulate_kernel(kDev, k);
  EXPECT_NEAR(conflicted.duration_ms / clean.duration_ms, 4.0, 0.2);
  EXPECT_GT(conflicted.shared_load_bank_conflicts, 0.0);
  EXPECT_GT(conflicted.shared_store_bank_conflicts, 0.0);
  EXPECT_EQ(clean.shared_load_bank_conflicts, 0.0);
}

TEST(ExecModel, DivergenceSlowsCompute) {
  KernelProfile k = compute_kernel(1e9);
  const auto full = simulate_kernel(kDev, k);
  k.warp_exec_efficiency = 0.5;
  const auto divergent = simulate_kernel(kDev, k);
  EXPECT_NEAR(divergent.duration_ms / full.duration_ms, 2.0, 0.1);
  EXPECT_DOUBLE_EQ(divergent.warp_execution_efficiency, 50.0);
}

TEST(ExecModel, LowOccupancyDegradesLatencyHiding) {
  KernelProfile k = compute_kernel(1e9);
  k.occupancy_needed = 0.5;
  k.regs_per_thread = 128;  // 16 warps -> 25% theoretical
  k.achieved_occupancy_factor = 0.8;  // 20% achieved < 50% needed
  const auto m = simulate_kernel(kDev, k);
  EXPECT_LT(m.latency_hiding, 0.5);
  // Duration scales with the deficit.
  KernelProfile light = compute_kernel(1e9);
  light.occupancy_needed = 0.5;
  const auto fast = simulate_kernel(kDev, light);
  EXPECT_GT(m.duration_ms, fast.duration_ms * 1.5);
}

TEST(ExecModel, DramFactorDefaultsToInverseEfficiency) {
  KernelProfile k = memory_kernel(1e9);
  k.gld_dram_factor = 0.0;  // derive from efficiency
  k.gst_dram_factor = 0.0;
  k.gld_efficiency = 0.25;
  k.gst_efficiency = 0.25;
  const auto replayed = simulate_kernel(kDev, k);
  const auto clean = simulate_kernel(kDev, memory_kernel(1e9));
  EXPECT_NEAR(replayed.duration_ms / clean.duration_ms, 4.0, 0.2);
}

TEST(ExecModel, MetricsEchoProfileFactors) {
  KernelProfile k = compute_kernel(1e9);
  k.gld_efficiency = 0.13;
  k.gst_efficiency = 0.5;
  k.shared_efficiency = 1.32;
  k.warp_exec_efficiency = 0.97;
  const auto m = simulate_kernel(kDev, k);
  EXPECT_DOUBLE_EQ(m.gld_efficiency, 13.0);
  EXPECT_DOUBLE_EQ(m.gst_efficiency, 50.0);
  EXPECT_DOUBLE_EQ(m.shared_efficiency, 132.0);
  EXPECT_DOUBLE_EQ(m.warp_execution_efficiency, 97.0);
}

TEST(ExecModel, AchievedOccupancyBelowTheoretical) {
  KernelProfile k = compute_kernel(1e9);
  k.achieved_occupancy_factor = 0.8;
  const auto m = simulate_kernel(kDev, k);
  EXPECT_LE(m.achieved_occupancy, m.occupancy.theoretical);
  EXPECT_NEAR(m.achieved_occupancy, m.occupancy.theoretical * 0.8, 1e-9);
}

TEST(ExecModel, IpcPositiveAndBounded) {
  const auto m = simulate_kernel(kDev, compute_kernel(1e10));
  EXPECT_GT(m.ipc, 0.0);
  EXPECT_LE(m.ipc, 7.0);
}

TEST(ExecModel, SustainedGflopsNeverExceedPeak) {
  for (const double eff : {0.1, 0.5, 1.0}) {
    KernelProfile k = compute_kernel(1e11);
    k.compute_efficiency = eff;
    const auto m = simulate_kernel(kDev, k);
    EXPECT_LE(m.sustained_gflops, kDev.peak_sp_gflops() * 1.001);
  }
}

TEST(ExecModel, RejectsInvalidFactors) {
  KernelProfile k = compute_kernel(1e9);
  k.warp_exec_efficiency = 0.0;
  EXPECT_THROW((void)simulate_kernel(kDev, k), Error);
  k = compute_kernel(1e9);
  k.compute_efficiency = 1.5;
  EXPECT_THROW((void)simulate_kernel(kDev, k), Error);
  k = compute_kernel(1e9);
  k.gld_efficiency = 0.0;
  EXPECT_THROW((void)simulate_kernel(kDev, k), Error);
}

}  // namespace
}  // namespace gpucnn::gpusim
