#include "core/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "core/error.hpp"

namespace gpucnn {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ChunksCoverRangeWithoutOverlap) {
  ThreadPool pool(3);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for_chunks(10, 110, [&](std::size_t lo, std::size_t hi) {
    const std::scoped_lock lock(m);
    chunks.emplace_back(lo, hi);
  });
  std::size_t total = 0;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_LT(lo, hi);
    total += hi - lo;
  }
  EXPECT_EQ(total, 100U);
}

TEST(ThreadPool, SumMatchesSerial) {
  std::atomic<long long> sum{0};
  parallel_for(0, 10000, [&](std::size_t i) {
    sum += static_cast<long long>(i);
  });
  EXPECT_EQ(sum.load(), 10000LL * 9999 / 2);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t i) {
                          if (i == 57) throw Error("inner failure");
                        }),
      Error);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 10, [](std::size_t) { throw Error("x"); }),
      Error);
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  std::atomic<int> count{0};
  parallel_for(0, 8, [&](std::size_t) {
    parallel_for(0, 8, [&](std::size_t) { ++count; });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1U);
  std::vector<int> order;
  pool.parallel_for(0, 5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&global_pool(), &global_pool());
  EXPECT_GE(global_pool().size(), 1U);
}

TEST(ThreadPool, SerialThresholdRunsOnCaller) {
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  parallel_for(0, 1, [&](std::size_t) { seen = std::this_thread::get_id(); },
               /*serial_threshold=*/4);
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, ChunkedPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for_chunks(0, 1000,
                                        [](std::size_t lo, std::size_t) {
                                          if (lo == 0) {
                                            throw Error("chunk failure");
                                          }
                                        }),
               Error);
  // Pool must stay usable after the throw.
  std::atomic<std::size_t> covered{0};
  pool.parallel_for_chunks(0, 100, [&](std::size_t lo, std::size_t hi) {
    covered += hi - lo;
  });
  EXPECT_EQ(covered.load(), 100U);
}

TEST(ThreadPool, NestedChunkedCallsDoNotDeadlock) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  pool.parallel_for_chunks(0, 40, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      pool.parallel_for_chunks(0, 10, [&](std::size_t l, std::size_t h) {
        total += h - l;
      });
    }
  });
  EXPECT_EQ(total.load(), 400U);
}

TEST(ThreadPool, SingleWorkerChunksCoverInOrder) {
  ThreadPool pool(1);
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for_chunks(0, 37, [&](std::size_t lo, std::size_t hi) {
    chunks.emplace_back(lo, hi);
  });
  ASSERT_FALSE(chunks.empty());
  EXPECT_EQ(chunks.front().first, 0U);
  EXPECT_EQ(chunks.back().second, 37U);
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].first, chunks[i - 1].second);
  }
}

TEST(ThreadPool, RepeatedSmallDispatchStress) {
  // Thousands of tiny dispatches through the shared job slot: exercises
  // publish/retire churn, which is where a racy slot protocol shows up.
  ThreadPool pool(4);
  std::atomic<long long> sum{0};
  for (int round = 0; round < 2000; ++round) {
    pool.parallel_for(0, 5, [&](std::size_t i) {
      sum += static_cast<long long>(i);
    });
  }
  EXPECT_EQ(sum.load(), 2000LL * (0 + 1 + 2 + 3 + 4));
}

TEST(ThreadPool, BusyPoolInlineFallbackAllowsNesting) {
  // While another thread's job owns the pool, a second top-level
  // dispatch falls back to running inline. That inline body must run
  // outside the pool mutex and be free to nest further dispatches —
  // pre-fix this re-locked the non-recursive mutex and deadlocked.
  ThreadPool pool(2);
  std::atomic<bool> owner_running{false};
  std::atomic<bool> release_owner{false};
  std::atomic<std::size_t> nested_total{0};
  std::thread owner([&] {
    pool.parallel_for_chunks(0, 4, [&](std::size_t, std::size_t) {
      owner_running = true;
      while (!release_owner) std::this_thread::yield();
    });
  });
  while (!owner_running) std::this_thread::yield();
  // The owner's job is published and blocked, so this dispatch takes
  // the busy-pool inline path; its body nests another dispatch.
  pool.parallel_for_chunks(0, 8, [&](std::size_t lo, std::size_t hi) {
    pool.parallel_for_chunks(lo, hi, [&](std::size_t l, std::size_t h) {
      nested_total += h - l;
    });
  });
  release_owner = true;
  owner.join();
  EXPECT_EQ(nested_total.load(), 8U);
}

TEST(ThreadPool, ConcurrentTopLevelInvocations) {
  // Two user threads drive the global pool at once; completion tracking
  // must not cross wires.
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  std::thread t1([&] {
    for (int r = 0; r < 20; ++r) {
      parallel_for(0, 64, [&](std::size_t) { ++a; });
    }
  });
  std::thread t2([&] {
    for (int r = 0; r < 20; ++r) {
      parallel_for(0, 64, [&](std::size_t) { ++b; });
    }
  });
  t1.join();
  t2.join();
  EXPECT_EQ(a.load(), 20 * 64);
  EXPECT_EQ(b.load(), 20 * 64);
}

}  // namespace
}  // namespace gpucnn
