#include "tune/autotuner.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "conv/conv_engine.hpp"
#include "core/cpu_features.hpp"
#include "obs/metrics.hpp"

namespace gpucnn::tune {
namespace {

// Every test pins trials to 1 and restores the tuner's global state, so
// suites can run in any order.
class TunerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    tuner_ = &Autotuner::instance();
    mode_before_ = tuner_->mode();
    trials_before_ = tuner_->set_trials_for_testing(1);
    path_before_ = tuner_->set_cache_path("");
    tuner_->clear();
  }
  void TearDown() override {
    tuner_->clear();
    (void)tuner_->set_cache_path(path_before_);
    tuner_->set_trials_for_testing(trials_before_);
    tuner_->set_mode(mode_before_);
  }

  static ConvConfig small_config() {
    return ConvConfig{.batch = 1, .input = 8, .channels = 2, .filters = 4,
                      .kernel = 3, .stride = 1, .pad = 1, .groups = 1};
  }

  Autotuner* tuner_ = nullptr;
  Mode mode_before_{};
  int trials_before_ = 0;
  std::string path_before_;
};

TEST(TuneMode, ParseAndPrintRoundTrip) {
  EXPECT_EQ(parse_mode("off"), Mode::kOff);
  EXPECT_EQ(parse_mode("heuristic"), Mode::kHeuristic);
  EXPECT_EQ(parse_mode("measure"), Mode::kMeasure);
  EXPECT_FALSE(parse_mode("fastest").has_value());
  EXPECT_EQ(to_string(Mode::kMeasure), "measure");
  EXPECT_EQ(to_string(Pass::kBackwardData), "backward-data");
}

TEST_F(TunerFixture, OffModeChoosesNothing) {
  tuner_->set_mode(Mode::kOff);
  EXPECT_EQ(tuner_->choose(small_config(), Pass::kForward), nullptr);
}

TEST_F(TunerFixture, EligibilityRespectsEngineShapeLimits) {
  // Stride 2 rules out both FFT engines and Winograd; kernel 4 rules out
  // Winograd even at stride 1. measure_all must mark them ineligible and
  // never run them.
  ConvConfig strided = small_config();
  strided.stride = 2;
  const auto timings = tuner_->measure_all(strided, Pass::kForward);
  ASSERT_EQ(timings.size(), 8U);
  for (const auto& t : timings) {
    // Depthwise is also out: the config is ungrouped multi-channel.
    const bool ineligible = t.engine_name == "fft" ||
                            t.engine_name == "fft-tiled" ||
                            t.engine_name == "winograd" ||
                            t.engine_name == "winograd-f4" ||
                            t.engine_name == "depthwise";
    EXPECT_EQ(t.eligible, !ineligible) << t.engine_name;
    if (!t.eligible) {
      EXPECT_EQ(t.ms, 0.0) << t.engine_name << " was timed while ineligible";
    } else {
      EXPECT_GT(t.ms, 0.0) << t.engine_name;
    }
  }
}

TEST_F(TunerFixture, HeuristicPicksASupportedEngineWithoutTiming) {
  tuner_->set_mode(Mode::kHeuristic);
  const auto trials_before =
      obs::metrics().counter("tune.trials").value();
  ConvConfig grouped = small_config();
  grouped.groups = 2;  // only direct + unrolling support groups
  const Decision d = tuner_->decide(grouped, Pass::kForward);
  ASSERT_NE(d.engine, nullptr);
  EXPECT_TRUE(d.engine->supports(grouped));
  EXPECT_FALSE(d.measured);
  EXPECT_EQ(obs::metrics().counter("tune.trials").value(), trials_before)
      << "heuristic mode must not run engines";
}

TEST_F(TunerFixture, HeuristicPrefersDepthwiseOnDepthwiseShapes) {
  tuner_->set_mode(Mode::kHeuristic);
  ConvConfig dw = small_config();
  dw.channels = 8;
  dw.filters = 16;  // multiplier 2
  dw.groups = 8;
  const Decision d = tuner_->decide(dw, Pass::kForward);
  ASSERT_NE(d.engine, nullptr);
  EXPECT_EQ(d.engine_name, "depthwise");

  // Ungrouped configs keep their previous heuristic picks: the
  // depthwise engine accepts channels == 1 but must not jump the queue.
  tuner_->clear();
  const Decision plain = tuner_->decide(small_config(), Pass::kForward);
  ASSERT_NE(plain.engine, nullptr);
  EXPECT_NE(plain.engine_name, "depthwise");
}

TEST_F(TunerFixture, MeasuredDecisionIsDeterministicAndMemoized) {
  // Pinning the SIMD level makes the candidate set and the memo key
  // deterministic; the winner itself is whatever the machine measures,
  // but repeated decides must return the memoized pick without rerunning.
  const simd::Level level_before =
      simd::set_active_for_testing(simd::Level::kPortable);
  tuner_->set_mode(Mode::kMeasure);
  const Decision first = tuner_->decide(small_config(), Pass::kForward);
  ASSERT_NE(first.engine, nullptr);
  EXPECT_TRUE(first.measured);
  EXPECT_GT(first.best_ms, 0.0);
  EXPECT_GT(first.baseline_ms, 0.0);
  // The winner is a min over candidates that includes the default, so it
  // can never be slower than the default.
  EXPECT_LE(first.best_ms, first.baseline_ms);

  const auto trials_after_first =
      obs::metrics().counter("tune.trials").value();
  const Decision second = tuner_->decide(small_config(), Pass::kForward);
  EXPECT_EQ(second.engine_name, first.engine_name);
  EXPECT_EQ(obs::metrics().counter("tune.trials").value(),
            trials_after_first)
      << "memoized decision must not re-measure";
  simd::set_active_for_testing(level_before);
}

TEST_F(TunerFixture, CacheRoundTripPreservesDecisions) {
  const std::string path = testing::TempDir() + "tune_cache_rt.json";
  tuner_->set_mode(Mode::kMeasure);
  const Decision fwd = tuner_->decide(small_config(), Pass::kForward);
  const Decision bwd = tuner_->decide(small_config(), Pass::kBackwardData);
  ASSERT_TRUE(tuner_->save_cache(path));

  tuner_->clear();
  EXPECT_EQ(tuner_->size(), 0U);
  EXPECT_EQ(tuner_->load_cache(path), 2U);
  const auto trials_before = obs::metrics().counter("tune.trials").value();
  EXPECT_EQ(tuner_->decide(small_config(), Pass::kForward).engine_name,
            fwd.engine_name);
  EXPECT_EQ(tuner_->decide(small_config(), Pass::kBackwardData).engine_name,
            bwd.engine_name);
  EXPECT_EQ(obs::metrics().counter("tune.trials").value(), trials_before)
      << "reloaded decisions must be warm";
}

TEST_F(TunerFixture, CacheInvalidatesOnKeyMismatch) {
  const std::string path = testing::TempDir() + "tune_cache_inv.json";
  tuner_->set_mode(Mode::kMeasure);
  (void)tuner_->decide(small_config(), Pass::kForward);
  ASSERT_TRUE(tuner_->save_cache(path));

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string original = buf.str();

  const auto tampered_reload = [&](std::string text, std::string_view from,
                                   std::string_view to) {
    const auto at = text.find(from);
    EXPECT_NE(at, std::string::npos) << from;
    text.replace(at, from.size(), to);
    std::ofstream out(path);
    out << text;
    out.close();
    tuner_->clear();
    return tuner_->load_cache(path);
  };

  // Wrong SIMD level: the whole file is discarded.
  EXPECT_EQ(tampered_reload(original,
                            std::string("\"simd\": \"") +
                                simd::name(simd::active()) + '"',
                            "\"simd\": \"sve2\""),
            0U);
  // Wrong thread count: the whole file is discarded.
  EXPECT_EQ(tampered_reload(original, "\"threads\"", "\"threads_x\""), 0U);
  // Wrong schema version: discarded.
  EXPECT_EQ(tampered_reload(original, "\"tune_cache_version\": 2",
                            "\"tune_cache_version\": 999"),
            0U);
  // Wrong engine set (a binary with different engines wrote the file):
  // discarded.
  EXPECT_EQ(tampered_reload(original, "\"engines\"", "\"engines_x\""), 0U);
  // Entry dtype missing (pre-v2 entry shape): that entry is dropped.
  EXPECT_EQ(tampered_reload(original, "\"dtype\"", "\"dtype_x\""), 0U);
  // Edited config field: the per-entry hash no longer matches, so the
  // entry (here, the only one) is dropped while the file stays valid.
  EXPECT_EQ(tampered_reload(original, "\"kernel\": 3", "\"kernel\": 5"),
            0U);
  // Untampered file loads back.
  {
    std::ofstream out(path);
    out << original;
  }
  tuner_->clear();
  EXPECT_EQ(tuner_->load_cache(path), 1U);
}

TEST_F(TunerFixture, KeyHashSeparatesConfigsAndPasses) {
  const ConvConfig a = small_config();
  ConvConfig b = small_config();
  b.pad = 0;
  EXPECT_NE(Autotuner::key_hash(a, Pass::kForward),
            Autotuner::key_hash(b, Pass::kForward));
  EXPECT_NE(Autotuner::key_hash(a, Pass::kForward),
            Autotuner::key_hash(a, Pass::kBackwardFilter));
  EXPECT_EQ(Autotuner::key_hash(a, Pass::kForward),
            Autotuner::key_hash(small_config(), Pass::kForward));
}

TEST_F(TunerFixture, KeyHashSeparatesDtypes) {
  const ConvConfig a = small_config();
  EXPECT_NE(Autotuner::key_hash(a, Pass::kForward, Dtype::kF32),
            Autotuner::key_hash(a, Pass::kForward, Dtype::kInt8));
  EXPECT_EQ(Autotuner::key_hash(a, Pass::kForward),
            Autotuner::key_hash(a, Pass::kForward, Dtype::kF32));
}

TEST_F(TunerFixture, Int8PoolOnlyExtendsTheForwardPass) {
  // The int8 engines join the candidate pool for (kForward, kInt8) only:
  // fp32 callers keep the exact eight engines, and no backward pass ever
  // sees an inference-only engine.
  const ConvConfig cfg = small_config();
  EXPECT_EQ(tuner_->measure_all(cfg, Pass::kForward).size(), 8U);
  EXPECT_EQ(tuner_->measure_all(cfg, Pass::kBackwardData, Dtype::kInt8)
                .size(),
            8U);
  const auto timings = tuner_->measure_all(cfg, Pass::kForward, Dtype::kInt8);
  ASSERT_EQ(timings.size(), 10U);
  bool unrolling_int8 = false;
  bool implicit_int8 = false;
  for (const auto& t : timings) {
    unrolling_int8 |= t.engine_name == "unrolling-int8";
    implicit_int8 |= t.engine_name == "implicit-int8";
  }
  EXPECT_TRUE(unrolling_int8);
  EXPECT_TRUE(implicit_int8);
}

TEST_F(TunerFixture, Int8DecisionsMemoizeSeparatelyAndRoundTrip) {
  const std::string path = testing::TempDir() + "tune_cache_int8.json";
  tuner_->set_mode(Mode::kMeasure);
  const Decision f32 = tuner_->decide(small_config(), Pass::kForward);
  const Decision int8 =
      tuner_->decide(small_config(), Pass::kForward, Dtype::kInt8);
  ASSERT_NE(f32.engine, nullptr);
  ASSERT_NE(int8.engine, nullptr);
  EXPECT_EQ(tuner_->size(), 2U) << "dtypes must get separate memo keys";

  ASSERT_TRUE(tuner_->save_cache(path));
  tuner_->clear();
  EXPECT_EQ(tuner_->load_cache(path), 2U);
  EXPECT_EQ(
      tuner_->decide(small_config(), Pass::kForward, Dtype::kInt8)
          .engine_name,
      int8.engine_name);
  EXPECT_EQ(tuner_->decide(small_config(), Pass::kForward).engine_name,
            f32.engine_name);
}

TEST_F(TunerFixture, PreInt8CacheIsRejectedWholesale) {
  // A handcrafted v1-era cache (no engines field, no dtype, version 1)
  // must load zero entries rather than resurrect stale decisions.
  const std::string path = testing::TempDir() + "tune_cache_v1.json";
  {
    std::ofstream out(path);
    out << "{\"tune_cache_version\": 1, \"simd\": \""
        << simd::name(simd::active()) << "\", \"threads\": 1, "
        << "\"entries\": []}";
  }
  tuner_->clear();
  EXPECT_EQ(tuner_->load_cache(path), 0U);
}

TEST_F(TunerFixture, DefaultEngineIsTheStaticUnrollingStrategy) {
  EXPECT_EQ(default_engine().name(), "unrolling");
  EXPECT_EQ(default_engine().strategy(), conv::Strategy::kUnrolling);
}

}  // namespace
}  // namespace gpucnn::tune
