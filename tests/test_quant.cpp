#include "quant/quant.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "blas/igemm.hpp"
#include "core/cpu_features.hpp"
#include "core/error.hpp"

namespace gpucnn::quant {
namespace {

// ---------------------------------------------------------------------
// Activation quantization

TEST(ActQuantTest, ChooseCoversRangeAndRepresentsZeroExactly) {
  const ActQuant q = choose_act_quant(-1.5F, 3.0F);
  EXPECT_GT(q.scale, 0.0F);
  EXPECT_GE(q.zero_point, 0);
  EXPECT_LE(q.zero_point, 255);
  // Real zero must quantize to the zero point exactly (padding relies
  // on this) and dequantize back to exactly 0.
  EXPECT_EQ(quantize_act(0.0F, q), q.zero_point);
  EXPECT_EQ(dequantize_act(quantize_act(0.0F, q), q), 0.0F);
}

TEST(ActQuantTest, PositiveOnlyRangeIsWidenedToIncludeZero) {
  const ActQuant q = choose_act_quant(2.0F, 6.0F);
  EXPECT_EQ(q.zero_point, 0);  // lo widened to 0 -> zp at the bottom
  EXPECT_NEAR(q.scale, 6.0F / 255.0F, 1e-6F);
}

TEST(ActQuantTest, DegenerateRangeGetsIdentityScale) {
  const ActQuant q = choose_act_quant(0.0F, 0.0F);
  EXPECT_EQ(q.scale, 1.0F);
  EXPECT_EQ(q.zero_point, 0);
}

TEST(ActQuantTest, RoundTripErrorBoundedByHalfScale) {
  const float lo = -4.0F;
  const float hi = 4.0F;
  const ActQuant q = choose_act_quant(lo, hi);
  std::mt19937 rng(7);
  std::uniform_real_distribution<float> dist(lo, hi);
  for (int i = 0; i < 1000; ++i) {
    const float x = dist(rng);
    const float back = dequantize_act(quantize_act(x, q), q);
    EXPECT_LE(std::fabs(back - x), q.scale * 0.5F + 1e-6F) << x;
  }
}

TEST(ActQuantTest, ValidateRejectsBadParameters) {
  EXPECT_THROW(validate(ActQuant{0.0F, 0}), Error);
  EXPECT_THROW(validate(ActQuant{-1.0F, 0}), Error);
  EXPECT_THROW(validate(ActQuant{1.0F, -1}), Error);
  EXPECT_THROW(validate(ActQuant{1.0F, 256}), Error);
  EXPECT_NO_THROW(validate(ActQuant{1.0F, 255}));
}

TEST(ActQuantTest, QuantizeSaturatesOutOfRangeValues) {
  const ActQuant q{0.1F, 128};
  EXPECT_EQ(quantize_act(1e30F, q), 255);
  EXPECT_EQ(quantize_act(-1e30F, q), 0);
  EXPECT_EQ(quantize_act(std::numeric_limits<float>::quiet_NaN(), q), 0);
}

TEST(ActQuantTest, BulkQuantizeCountsClippedValues) {
  const ActQuant q = choose_act_quant(-1.0F, 1.0F);
  const std::vector<float> src = {0.0F, 0.5F, -1.0F, 1.0F, 50.0F, -50.0F};
  std::vector<std::uint8_t> dst(src.size());
  EXPECT_EQ(quantize_acts(src, q, dst), 2U);  // only the +/-50 clip
  EXPECT_EQ(dst[4], 255);
  EXPECT_EQ(dst[5], 0);
}

TEST(ActQuantTest, RequantizeClampsBeforeIntegerConversion) {
  // An accumulator far outside uint8 range must saturate, not invoke a
  // float->int conversion UB. Exercises values near INT32_MAX.
  const ActQuant out{1.0F, 0};
  EXPECT_EQ(requantize(static_cast<float>(
                           std::numeric_limits<std::int32_t>::max()),
                       out),
            255);
  EXPECT_EQ(requantize(static_cast<float>(
                           std::numeric_limits<std::int32_t>::min()),
                       out),
            0);
}

// ---------------------------------------------------------------------
// Weight quantization

TEST(WeightQuantTest, PerChannelScalesTrackEachRowsAbsmax) {
  // Two rows with very different magnitudes: per-channel scales must
  // differ, and each row's codes must span up to kWeightQMax.
  const std::vector<float> w = {0.5F, -1.0F, 0.25F,   // absmax 1.0
                                100.0F, 50.0F, -200.0F};  // absmax 200
  const QuantizedFilters q = quantize_filters(w, 2, 3);
  EXPECT_NEAR(q.scales[0], 1.0F / 63.0F, 1e-6F);
  EXPECT_NEAR(q.scales[1], 200.0F / 63.0F, 1e-4F);
  EXPECT_EQ(q.data[1], -63);  // row 0 absmax hits the negative end
  EXPECT_EQ(q.data[5], -63);  // row 1 absmax
}

TEST(WeightQuantTest, CodesStayWithinTheMaddubsSafeRange) {
  std::mt19937 rng(11);
  std::uniform_real_distribution<float> dist(-3.0F, 3.0F);
  std::vector<float> w(8 * 37);
  for (auto& v : w) v = dist(rng);
  const QuantizedFilters q = quantize_filters(w, 8, 37);
  for (const std::int8_t v : q.data) {
    EXPECT_GE(v, -kWeightQMax);
    EXPECT_LE(v, kWeightQMax);
  }
  // Row sums must match the quantized codes (the zero-point correction
  // depends on them being exact).
  for (std::size_t r = 0; r < 8; ++r) {
    std::int32_t sum = 0;
    for (std::size_t c = 0; c < 37; ++c) sum += q.data[r * 37 + c];
    EXPECT_EQ(q.row_sums[r], sum);
  }
}

TEST(WeightQuantTest, RoundTripErrorBoundedByHalfScalePerRow) {
  std::mt19937 rng(13);
  std::uniform_real_distribution<float> dist(-2.0F, 2.0F);
  std::vector<float> w(4 * 25);
  for (auto& v : w) v = dist(rng);
  const QuantizedFilters q = quantize_filters(w, 4, 25);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 25; ++c) {
      const float back = dequantize_weight(q.data[r * 25 + c], q.scales[r]);
      EXPECT_LE(std::fabs(back - w[r * 25 + c]), q.scales[r] * 0.5F + 1e-6F);
    }
  }
}

TEST(WeightQuantTest, AllZeroRowGetsIdentityScaleAndZeroCodes) {
  const std::vector<float> w(2 * 4, 0.0F);
  const QuantizedFilters q = quantize_filters(w, 2, 4);
  EXPECT_EQ(q.scales[0], 1.0F);
  EXPECT_EQ(q.row_sums[0], 0);
  for (const std::int8_t v : q.data) EXPECT_EQ(v, 0);
}

// ---------------------------------------------------------------------
// Observer

TEST(ObserverTest, MinMaxTracksExtremesAcrossBatches) {
  Observer ob(Observer::Kind::kMinMax);
  EXPECT_FALSE(ob.seen());
  const std::vector<float> a = {-1.0F, 2.0F};
  const std::vector<float> b = {-3.0F, 0.5F};
  ob.observe(a);
  ob.observe(b);
  EXPECT_TRUE(ob.seen());
  EXPECT_EQ(ob.min(), -3.0F);
  EXPECT_EQ(ob.max(), 2.0F);
  const ActQuant q = ob.quant();
  EXPECT_NEAR(q.scale, 5.0F / 255.0F, 1e-6F);
}

TEST(ObserverTest, PercentileClipsRareOutliers) {
  // 10k small values and one huge outlier: the percentile observer's
  // scale must track the bulk, the min/max observer's the outlier.
  std::vector<float> values(10000, 0.0F);
  std::mt19937 rng(17);
  std::uniform_real_distribution<float> dist(-1.0F, 1.0F);
  for (auto& v : values) v = dist(rng);
  values[5000] = 1000.0F;
  Observer pct(Observer::Kind::kPercentile);
  Observer mm(Observer::Kind::kMinMax);
  pct.observe(values);
  mm.observe(values);
  EXPECT_LT(pct.quant().scale, mm.quant().scale / 100.0F);
}

TEST(ObserverTest, QuantRequiresData) {
  const Observer ob;
  EXPECT_THROW((void)ob.quant(), Error);
}

// ---------------------------------------------------------------------
// Int8 GEMM exactness

void fill_random_operands(std::size_t m, std::size_t n, std::size_t k,
                          std::vector<std::int8_t>& a,
                          std::vector<std::uint8_t>& b, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> wa(-kWeightQMax, kWeightQMax);
  std::uniform_int_distribution<int> wb(0, 255);
  a.resize(m * k);
  b.resize(k * n);
  for (auto& v : a) v = static_cast<std::int8_t>(wa(rng));
  for (auto& v : b) v = static_cast<std::uint8_t>(wb(rng));
}

void expect_igemm_matches_naive(std::size_t m, std::size_t n,
                                std::size_t k, unsigned seed) {
  std::vector<std::int8_t> a;
  std::vector<std::uint8_t> b;
  fill_random_operands(m, n, k, a, b, seed);
  std::vector<std::int32_t> expect(m * n);
  std::vector<std::int32_t> got(m * n, -1);
  blas::igemm_s32_naive(m, n, k, a, k, b, n, expect, n);
  blas::igemm_s32(m, n, k, a, k, b, n, got, n);
  EXPECT_EQ(got, expect) << m << "x" << n << "x" << k;
}

TEST(IgemmTest, MatchesNaiveOnMicroKernelMultiples) {
  expect_igemm_matches_naive(4, 16, 32, 1);
  expect_igemm_matches_naive(8, 32, 64, 2);
}

TEST(IgemmTest, MatchesNaiveOnRaggedEdges) {
  expect_igemm_matches_naive(1, 1, 1, 3);
  expect_igemm_matches_naive(5, 17, 9, 4);
  expect_igemm_matches_naive(7, 31, 30, 5);
  expect_igemm_matches_naive(13, 50, 130, 6);
}

TEST(IgemmTest, MatchesNaiveAcrossKBlockBoundary) {
  // kKc is 1536: a k beyond it exercises the multi-block staging path.
  expect_igemm_matches_naive(5, 18, 1600, 8);
}

TEST(IgemmTest, MatchesNaiveAcrossMBlockBoundary) {
  // kMc is 96: an m beyond it exercises multiple row blocks.
  expect_igemm_matches_naive(100, 17, 40, 9);
}

TEST(IgemmTest, PortableAndActiveKernelsAgree) {
  const simd::Level before =
      simd::set_active_for_testing(simd::Level::kPortable);
  std::vector<std::int8_t> a;
  std::vector<std::uint8_t> b;
  fill_random_operands(9, 33, 70, a, b, 10);
  std::vector<std::int32_t> portable(9 * 33);
  blas::igemm_s32(9, 33, 70, a, 70, b, 33, portable, 33);
  simd::set_active_for_testing(before);
  std::vector<std::int32_t> active(9 * 33);
  blas::igemm_s32(9, 33, 70, a, 70, b, 33, active, 33);
  EXPECT_EQ(active, portable);
}

TEST(IgemmTest, EpilogueDequantizesBiasesAndClamps) {
  // 2x3x2: hand-checkable. Row scales differ; row 1 has a negative
  // pre-ReLU value that must clamp to zero.
  const std::vector<std::int8_t> a = {1, 2, -3, -4};          // 2x2
  const std::vector<std::uint8_t> b = {10, 0, 5, 20, 1, 0};   // 2x3
  const std::vector<float> scales = {0.5F, 0.25F};
  const std::vector<std::int32_t> offsets = {3, -2};
  const std::vector<float> bias = {1.0F, -10.0F};
  blas::QEpilogue ep;
  ep.scales = scales.data();
  ep.row_offsets = offsets.data();
  ep.bias = bias.data();
  ep.relu = true;
  std::vector<float> c(2 * 3);
  blas::igemm(2, 3, 2, a, 2, b, 3, ep, c, 3);
  // Row 0: acc = {50, 2, 5}; (acc-3)*0.5+1 = {24.5, 0.5, 2.0}
  EXPECT_FLOAT_EQ(c[0], 24.5F);
  EXPECT_FLOAT_EQ(c[1], 0.5F);
  EXPECT_FLOAT_EQ(c[2], 2.0F);
  // Row 1: acc = {-110, -4, -15}; (acc+2)*0.25-10 = {-37, -10.5, -13.25}
  // -> ReLU clamps all to 0.
  EXPECT_FLOAT_EQ(c[3], 0.0F);
  EXPECT_FLOAT_EQ(c[4], 0.0F);
  EXPECT_FLOAT_EQ(c[5], 0.0F);
}

TEST(IgemmTest, U8OutputRequantizesAndSaturates) {
  const std::vector<std::int8_t> a = {1, 1};        // 1x2
  const std::vector<std::uint8_t> b = {200, 100};   // 2x1
  const std::vector<float> scales = {1.0F};
  const std::vector<std::int32_t> offsets = {0};
  blas::QEpilogue ep;
  ep.scales = scales.data();
  ep.row_offsets = offsets.data();
  ep.out = blas::QEpilogue::Out::kU8;
  ep.out_scale = 1.0F;
  ep.out_zero_point = 10;
  std::vector<std::uint8_t> c(1);
  blas::igemm(1, 1, 2, a, 2, b, 1, ep, c, 1);
  EXPECT_EQ(c[0], 255);  // 300 + 10 saturates
  ep.out_scale = 10.0F;
  blas::igemm(1, 1, 2, a, 2, b, 1, ep, c, 1);
  EXPECT_EQ(c[0], 40);  // round(300/10) + 10
}

TEST(IgemmTest, EpilogueAppliesToAllKBlocksOnce) {
  // Across the k-block boundary the epilogue must fire once on the
  // summed accumulator, not per block: compare against naive + manual
  // epilogue.
  const std::size_t m = 3;
  const std::size_t n = 20;
  const std::size_t k = 1700;
  std::vector<std::int8_t> a;
  std::vector<std::uint8_t> b;
  fill_random_operands(m, n, k, a, b, 12);
  std::vector<std::int32_t> acc(m * n);
  blas::igemm_s32_naive(m, n, k, a, k, b, n, acc, n);
  const std::vector<float> scales = {0.01F, 0.02F, 0.03F};
  const std::vector<std::int32_t> offsets = {100, -50, 0};
  blas::QEpilogue ep;
  ep.scales = scales.data();
  ep.row_offsets = offsets.data();
  std::vector<float> c(m * n);
  blas::igemm(m, n, k, a, k, b, n, ep, c, n);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t j = 0; j < n; ++j) {
      const float want =
          scales[r] * static_cast<float>(acc[r * n + j] - offsets[r]);
      EXPECT_FLOAT_EQ(c[r * n + j], want) << r << "," << j;
    }
  }
}

}  // namespace
}  // namespace gpucnn::quant
