// The paper's qualitative findings, encoded as tests over the simulator.
// Each test cites the claim it checks; together they pin the *shape* of
// every figure (who wins, where crossovers fall, which bands hold).
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/conv_runner.hpp"
#include "analysis/model_breakdown.hpp"
#include "analysis/sweep.hpp"

namespace gpucnn::analysis {
namespace {

using frameworks::FrameworkId;

const LayerResult& of(const std::vector<LayerResult>& rs, FrameworkId id) {
  for (const auto& r : rs) {
    if (r.framework == id) return r;
  }
  throw Error("framework missing from results");
}

double runtime(const ConvConfig& cfg, FrameworkId id) {
  const auto r = evaluate(id, cfg);
  check(r.supported, "unsupported config in claim test");
  return r.runtime_ms;
}

// ---- Figure 3 -------------------------------------------------------

TEST(Fig3, FbfftFastestAtBaseConfiguration) {
  // §IV.B: "fbfft is the overall fastest convolutional implementation".
  const auto rs = evaluate_all(base_config());
  const double fb = of(rs, FrameworkId::kFbfft).runtime_ms;
  for (const auto& r : rs) {
    if (r.framework == FrameworkId::kFbfft || !r.supported) continue;
    EXPECT_GT(r.runtime_ms, fb) << frameworks::to_string(r.framework);
  }
}

TEST(Fig3, CudnnSecondBestAtBase) {
  // §IV.B: "cuDNN performs the second best in most scenarios."
  const auto rs = evaluate_all(base_config());
  const double cudnn = of(rs, FrameworkId::kCudnn).runtime_ms;
  int faster = 0;
  for (const auto& r : rs) {
    if (!r.supported) continue;
    faster += r.runtime_ms < cudnn ? 1 : 0;
  }
  EXPECT_LE(faster, 1);  // only fbfft ahead
}

TEST(Fig3, FbfftFastestAcrossBatchSweep) {
  // Fig. 3(a): fbfft leads at every mini-batch size.
  SweepSpec spec{SweepParameter::kBatch, {32, 64, 128, 256, 512}};
  for (const auto& p : run_sweep(spec)) {
    const double fb = of(p.results, FrameworkId::kFbfft).runtime_ms;
    for (const auto& r : p.results) {
      if (r.framework == FrameworkId::kFbfft || !r.supported ||
          r.out_of_memory) {
        continue;
      }
      EXPECT_GT(r.runtime_ms, fb)
          << "b=" << p.value << " " << frameworks::to_string(r.framework);
    }
  }
}

TEST(Fig3, TheanoFftSlowestAcrossBatchSweep) {
  // Fig. 3(a): "Theano-fft results in the slowest speed."
  SweepSpec spec{SweepParameter::kBatch, {32, 64, 128, 256}};
  for (const auto& p : run_sweep(spec)) {
    const double th = of(p.results, FrameworkId::kTheanoFft).runtime_ms;
    for (const auto& r : p.results) {
      if (r.framework == FrameworkId::kTheanoFft || !r.supported) continue;
      EXPECT_LT(r.runtime_ms, th)
          << "b=" << p.value << " " << frameworks::to_string(r.framework);
    }
  }
}

TEST(Fig3, CudnnFastestUnrollingImplementation) {
  // §IV.B: "For unrolling-based convolution, cuDNN has consistent
  // superior performance in all given mini-batch and input sizes."
  for (const std::size_t b : {32UL, 128UL, 512UL}) {
    ConvConfig cfg = base_config();
    cfg.batch = b;
    const auto rs = evaluate_all(cfg);
    const double cudnn = of(rs, FrameworkId::kCudnn).runtime_ms;
    for (const auto id :
         {FrameworkId::kCaffe, FrameworkId::kTorchCunn,
          FrameworkId::kTheanoCorrMM}) {
      EXPECT_GT(of(rs, id).runtime_ms, cudnn) << "b=" << b;
    }
  }
}

TEST(Fig3, Convnet2ShinesAtMultiplesOf128) {
  // §IV.B: "cuda-convnet2 performs well only for certain cases, such as
  // for mini-batch sizes of multiple of 128": per-image cost drops at
  // the 128-multiple sweet spots.
  ConvConfig cfg = base_config();
  cfg.batch = 96;
  const double off = runtime(cfg, FrameworkId::kCudaConvnet2) / 96.0;
  cfg.batch = 128;
  const double on = runtime(cfg, FrameworkId::kCudaConvnet2) / 128.0;
  EXPECT_LT(on, off * 0.9);
}

TEST(Fig3, CudnnBeatsFbfftForSmallKernels) {
  // §IV.B: "For small kernels (smaller than 7 in our experiment), cuDNN
  // outperforms fbfft" — by 1.21x to 2.62x.
  for (const std::size_t k : {3UL, 5UL}) {
    ConvConfig cfg = base_config();
    cfg.kernel = k;
    const double ratio = runtime(cfg, FrameworkId::kFbfft) /
                         runtime(cfg, FrameworkId::kCudnn);
    EXPECT_GT(ratio, 1.1) << "k=" << k;
    EXPECT_LT(ratio, 3.0) << "k=" << k;
  }
}

TEST(Fig3, FbfftBeatsCudnnForLargeKernels) {
  // §IV.B: "Otherwise, fbfft is faster than cuDNN" with the advantage
  // growing in kernel size (up to 19x in the paper's sweep).
  double last_ratio = 0.0;
  for (const std::size_t k : {9UL, 15UL, 23UL, 31UL}) {
    ConvConfig cfg = base_config();
    cfg.kernel = k;
    const double ratio = runtime(cfg, FrameworkId::kCudnn) /
                         runtime(cfg, FrameworkId::kFbfft);
    EXPECT_GT(ratio, 1.0) << "k=" << k;
    EXPECT_GT(ratio, last_ratio) << "k=" << k;  // monotone growth
    last_ratio = ratio;
  }
  EXPECT_GT(last_ratio, 8.0);  // double-digit advantage at k=31
}

TEST(Fig3, FbfftRuntimeIndependentOfKernelSize) {
  // Fig. 3(d): "the runtime of fbfft tends to be a constant value."
  ConvConfig small = base_config();
  small.kernel = 3;
  ConvConfig large = base_config();
  large.kernel = 31;
  const double a = runtime(small, FrameworkId::kFbfft);
  const double b = runtime(large, FrameworkId::kFbfft);
  EXPECT_NEAR(a, b, 0.15 * a);
}

TEST(Fig3, CorrMMOvertakesCudnnAtLargeFilterCounts) {
  // §IV.B: "for large filter numbers (greater than 160 in our
  // experiment), Theano-CorrMM slightly outperforms cuDNN."
  ConvConfig cfg = base_config();
  cfg.filters = 64;
  EXPECT_LT(runtime(cfg, FrameworkId::kCudnn),
            runtime(cfg, FrameworkId::kTheanoCorrMM));
  cfg.filters = 512;
  const double cudnn = runtime(cfg, FrameworkId::kCudnn);
  const double corrmm = runtime(cfg, FrameworkId::kTheanoCorrMM);
  EXPECT_LT(corrmm, cudnn);
  EXPECT_GT(corrmm, cudnn * 0.8);  // "slightly"
}

TEST(Fig3, CudnnBestForStridedConvolution) {
  // Fig. 3(e): "For greater stride (greater than 1), cuDNN results in
  // the best performance" (FFT engines cannot run at all).
  for (const std::size_t s : {2UL, 3UL, 4UL}) {
    ConvConfig cfg = base_config();
    cfg.stride = s;
    const auto rs = evaluate_all(cfg);
    EXPECT_FALSE(of(rs, FrameworkId::kFbfft).supported);
    EXPECT_FALSE(of(rs, FrameworkId::kTheanoFft).supported);
    const double cudnn = of(rs, FrameworkId::kCudnn).runtime_ms;
    for (const auto& r : rs) {
      if (!r.supported || r.framework == FrameworkId::kCudnn) continue;
      EXPECT_GT(r.runtime_ms, cudnn) << "s=" << s;
    }
  }
}

// ---- Figure 4 -------------------------------------------------------

TEST(Fig4, GemmDominatesExplicitUnrollingImplementations) {
  // §V.A: GEMM takes 87%/83%/80% of Caffe/Torch-cunn/Theano-CorrMM.
  for (const auto id :
       {FrameworkId::kCaffe, FrameworkId::kTorchCunn,
        FrameworkId::kTheanoCorrMM}) {
    const auto r = evaluate(id, base_config());
    double gemm_ms = 0.0;
    double total = 0.0;
    for (const auto& h : r.hotspots) {
      if (h.kind == gpusim::KernelClass::kGemm) gemm_ms += h.total_ms;
      total += h.total_ms;
    }
    const double share = gemm_ms / total;
    EXPECT_GT(share, 0.75) << frameworks::to_string(id);
    EXPECT_LT(share, 0.95) << frameworks::to_string(id);
  }
}

TEST(Fig4, UnrollKernelsTakeTheRest) {
  const auto r = evaluate(FrameworkId::kCaffe, base_config());
  double unroll_ms = 0.0;
  double total = 0.0;
  for (const auto& h : r.hotspots) {
    if (h.kind == gpusim::KernelClass::kUnroll) unroll_ms += h.total_ms;
    total += h.total_ms;
  }
  EXPECT_GT(unroll_ms / total, 0.05);
  EXPECT_LT(unroll_ms / total, 0.25);
}

TEST(Fig4, CudnnDominatedByWgradAndGemmKernels) {
  // §V.A: "wgrad_alg0_engine and cuDNN_gemm dominate the runtime."
  const auto r = evaluate(FrameworkId::kCudnn, base_config());
  ASSERT_GE(r.hotspots.size(), 2U);
  for (const auto& h : {r.hotspots[0], r.hotspots[1]}) {
    EXPECT_TRUE(h.name.find("cuDNN_gemm") != std::string::npos ||
                h.name.find("wgrad_alg0_engine") != std::string::npos)
        << h.name;
  }
}

TEST(Fig4, Convnet2UsesThreeDirectKernels) {
  // §V.A: filterActs / img_acts / weight_acts.
  const auto r = evaluate(FrameworkId::kCudaConvnet2, base_config());
  ASSERT_EQ(r.hotspots.size(), 3U);
  for (const auto& h : r.hotspots) {
    EXPECT_EQ(h.kind, gpusim::KernelClass::kDirectConv);
  }
}

TEST(Fig4, FbfftSplitsAcrossFftTransposeCgemm) {
  // §V.A: "GEMM, FFT transform, FFT inverse and data transposition
  // account for most of the runtime in fbfft."
  const auto r = evaluate(FrameworkId::kFbfft, base_config());
  double fft = 0.0;
  double transpose = 0.0;
  double gemm = 0.0;
  double total = 0.0;
  for (const auto& h : r.hotspots) {
    using KC = gpusim::KernelClass;
    if (h.kind == KC::kFft || h.kind == KC::kFftInverse) fft += h.total_ms;
    if (h.kind == KC::kTranspose) transpose += h.total_ms;
    if (h.kind == KC::kGemm) gemm += h.total_ms;
    total += h.total_ms;
  }
  EXPECT_GT((fft + transpose + gemm) / total, 0.80);
  EXPECT_GT(fft / total, 0.10);
  EXPECT_GT(transpose / total, 0.10);
  EXPECT_GT(gemm / total, 0.05);
}

TEST(Fig4, TheanoFftDominatedByPreparationAndTransfer) {
  // §V.A: "most of the runtime is spent on data preparation and data
  // transfer between CPU and GPU in Theano-fft" — a visible share, far
  // above other implementations'.
  const auto th = evaluate(FrameworkId::kTheanoFft, base_config());
  const auto fb = evaluate(FrameworkId::kFbfft, base_config());
  EXPECT_GT(th.transfer_share, 5.0 * fb.transfer_share);
  EXPECT_GT(th.transfer_ms, 5.0);
}

// ---- Figure 5 -------------------------------------------------------

TEST(Fig5, Convnet2MostMemoryEfficientEverywhere) {
  // §V.B: "cuda-convnet2 is the most memory efficient one in all
  // scenarios given in our experiment."
  for (const auto& spec : paper_sweeps()) {
    for (const std::size_t v : {spec.values.front(), spec.values.back()}) {
      const auto rs = evaluate_all(spec.config_for(v));
      const double cn2 = of(rs, FrameworkId::kCudaConvnet2).peak_mb;
      for (const auto& r : rs) {
        if (!r.supported || r.framework == FrameworkId::kCudaConvnet2) {
          continue;
        }
        EXPECT_GE(r.peak_mb, cn2)
            << to_string(spec.parameter) << "=" << v << " "
            << frameworks::to_string(r.framework);
      }
    }
  }
}

TEST(Fig5, TorchMostMemoryEfficientUnrolling) {
  // §V.B: "Torch-cunn is the overall most memory efficient implementation
  // in unrolling-based convolution."
  const auto rs = evaluate_all(base_config());
  const double torch = of(rs, FrameworkId::kTorchCunn).peak_mb;
  for (const auto id :
       {FrameworkId::kCaffe, FrameworkId::kCudnn,
        FrameworkId::kTheanoCorrMM}) {
    EXPECT_GT(of(rs, id).peak_mb, torch);
  }
}

TEST(Fig5, FbfftRequiresTheMostMemory) {
  // §V.B: "fbfft requires the most memory, followed by Theano-fft."
  const auto rs = evaluate_all(base_config());
  const double fb = of(rs, FrameworkId::kFbfft).peak_mb;
  const double th = of(rs, FrameworkId::kTheanoFft).peak_mb;
  for (const auto& r : rs) {
    if (r.framework == FrameworkId::kFbfft) continue;
    EXPECT_LT(r.peak_mb, fb) << frameworks::to_string(r.framework);
  }
  for (const auto& r : rs) {
    if (r.framework == FrameworkId::kFbfft ||
        r.framework == FrameworkId::kTheanoFft) {
      continue;
    }
    EXPECT_LT(r.peak_mb, th) << frameworks::to_string(r.framework);
  }
}

TEST(Fig5, MemoryBandsMatchPaperOrders) {
  // Spot checks against the paper's reported ranges (within 2x).
  ConvConfig big = base_config();
  big.batch = 512;
  const auto rs = evaluate_all(big);
  EXPECT_NEAR(of(rs, FrameworkId::kCudaConvnet2).peak_mb, 2076, 600);
  EXPECT_NEAR(of(rs, FrameworkId::kCaffe).peak_mb, 3809, 1000);
  EXPECT_NEAR(of(rs, FrameworkId::kTorchCunn).peak_mb, 2093, 600);
  EXPECT_NEAR(of(rs, FrameworkId::kFbfft).peak_mb, 10866, 2500);
}

// ---- Figure 6 -------------------------------------------------------

TEST(Fig6, MostImplementationsBelowThirtyPercentOccupancy) {
  // §V.C.1: "most implementations have relatively low achieved occupancy
  // (less than 30%)."
  const auto rs = evaluate_all(TableOne::layer(0));
  int below = 0;
  int total = 0;
  for (const auto& r : rs) {
    if (!r.supported) continue;
    ++total;
    below += r.metrics.achieved_occupancy < 33.0 ? 1 : 0;
  }
  EXPECT_GE(below, total - 2);
}

TEST(Fig6, Convnet2OccupancyInPaperBand) {
  // §V.C.1: cuda-convnet2 achieved occupancy 14%–22%.
  for (std::size_t i = 0; i < TableOne::kCount; ++i) {
    const auto r = evaluate(FrameworkId::kCudaConvnet2, TableOne::layer(i));
    EXPECT_GT(r.metrics.achieved_occupancy, 12.0) << i;
    EXPECT_LT(r.metrics.achieved_occupancy, 24.0) << i;
  }
}

TEST(Fig6, TheanoFftHighOccupancyButWorstPerformance) {
  // §V.C.1: "Theano-fft has higher percentages (39% to 59%) but worse
  // performance."
  for (std::size_t i = 0; i < TableOne::kCount; ++i) {
    const auto cfg = TableOne::layer(i);
    const auto th = evaluate(FrameworkId::kTheanoFft, cfg);
    EXPECT_GT(th.metrics.achieved_occupancy, 37.0) << i;
    EXPECT_LT(th.metrics.achieved_occupancy, 61.0) << i;
    EXPECT_GT(th.runtime_ms,
              evaluate(FrameworkId::kFbfft, cfg).runtime_ms)
        << i;
  }
}

TEST(Fig6, CorrMMGlobalLoadEfficiencyBand) {
  // §V.C.2: Theano-CorrMM gld efficiency 11.64%–15.79%.
  for (std::size_t i = 0; i < TableOne::kCount; ++i) {
    const auto r = evaluate(FrameworkId::kTheanoCorrMM, TableOne::layer(i));
    EXPECT_GT(r.metrics.gld_efficiency, 10.0) << i;
    EXPECT_LT(r.metrics.gld_efficiency, 17.0) << i;
  }
}

TEST(Fig6, CudnnGlobalEfficiencyNearZero) {
  // §V.C.2: cuDNN's top kernels compute on shared memory only; their
  // global access efficiency is ~0%.
  const auto r = evaluate(FrameworkId::kCudnn, TableOne::layer(0));
  EXPECT_LT(r.metrics.gld_efficiency, 8.0);
}

TEST(Fig6, WarpExecutionEfficiencyBands) {
  // §V.C.4: WEE > 97% everywhere except Theano-fft (66%–81%).
  const auto rs = evaluate_all(TableOne::layer(1));
  for (const auto& r : rs) {
    if (!r.supported) continue;
    if (r.framework == FrameworkId::kTheanoFft) {
      EXPECT_GT(r.metrics.warp_execution_efficiency, 64.0);
      EXPECT_LT(r.metrics.warp_execution_efficiency, 83.0);
    } else {
      EXPECT_GT(r.metrics.warp_execution_efficiency, 96.0)
          << frameworks::to_string(r.framework);
    }
  }
}

TEST(Fig6, SharedEfficiencyBands) {
  // §V.C.3: Theano-fft 8%–20%; cuDNN over 130%; cuBLAS-based unrolling
  // implementations high.
  const auto rs = evaluate_all(TableOne::layer(0));
  EXPECT_LT(of(rs, FrameworkId::kTheanoFft).metrics.shared_efficiency,
            21.0);
  EXPECT_GT(of(rs, FrameworkId::kTheanoFft).metrics.shared_efficiency,
            7.0);
  EXPECT_GT(of(rs, FrameworkId::kCudnn).metrics.shared_efficiency, 130.0);
  EXPECT_GT(of(rs, FrameworkId::kCaffe).metrics.shared_efficiency, 95.0);
}

TEST(Fig6, CudnnFastestUnrollingOnTableOne) {
  // §V.C intro: "cuDNN is the fastest implementation in unrolling-based
  // convolution and fbfft is the fastest one in FFT-based convolution."
  for (std::size_t i = 0; i < TableOne::kCount; ++i) {
    const auto cfg = TableOne::layer(i);
    const auto rs = evaluate_all(cfg);
    const double cudnn = of(rs, FrameworkId::kCudnn).kernel_ms;
    for (const auto id :
         {FrameworkId::kCaffe, FrameworkId::kTorchCunn}) {
      EXPECT_GT(of(rs, id).kernel_ms, cudnn) << "Conv" << i + 1;
    }
    EXPECT_LT(of(rs, FrameworkId::kFbfft).kernel_ms,
              of(rs, FrameworkId::kTheanoFft).kernel_ms)
        << "Conv" << i + 1;
  }
}

// ---- Figure 7 -------------------------------------------------------

TEST(Fig7, PrefetchingImplementationsNearZeroTransfer) {
  // Caffe, cuDNN and fbfft hide their copies (~0%).
  for (std::size_t i = 0; i < TableOne::kCount; ++i) {
    for (const auto id :
         {FrameworkId::kCaffe, FrameworkId::kCudnn, FrameworkId::kFbfft}) {
      const auto r = evaluate(id, TableOne::layer(i));
      EXPECT_LT(r.transfer_share, 0.02)
          << frameworks::to_string(id) << " Conv" << i + 1;
    }
  }
}

TEST(Fig7, SynchronousImplementationsLowButVisible) {
  // Torch-cunn, cuda-convnet2 and Theano-fft: 1%–15% (we allow up to 20).
  for (std::size_t i = 0; i < TableOne::kCount; ++i) {
    for (const auto id :
         {FrameworkId::kTorchCunn, FrameworkId::kCudaConvnet2,
          FrameworkId::kTheanoFft}) {
      const auto r = evaluate(id, TableOne::layer(i));
      EXPECT_GT(r.transfer_share, 0.002)
          << frameworks::to_string(id) << " Conv" << i + 1;
      EXPECT_LT(r.transfer_share, 0.20)
          << frameworks::to_string(id) << " Conv" << i + 1;
    }
  }
}

TEST(Fig7, CorrMMAnomalyAtConv2) {
  // "Theano-CorrMM in the second configuration (Conv2) has a significant
  // data transfer overhead (more than 60% of its total runtime)."
  const auto conv2 = evaluate(FrameworkId::kTheanoCorrMM,
                              TableOne::layer(1));
  EXPECT_GT(conv2.transfer_share, 0.60);
  // And it is an anomaly: every other Table I configuration stays low.
  for (const std::size_t i : {0UL, 2UL, 3UL, 4UL}) {
    const auto r = evaluate(FrameworkId::kTheanoCorrMM, TableOne::layer(i));
    EXPECT_LT(r.transfer_share, 0.10) << "Conv" << i + 1;
  }
}

// ---- Figure 2 -------------------------------------------------------

TEST(Fig2, ConvolutionDominatesAllFourModels) {
  // §IV.A: conv consumes 86%/89%/90%/94% of GoogLeNet/VGG/OverFeat/
  // AlexNet runtime.
  for (const auto& model : nn::figure2_models()) {
    const auto b = breakdown_model(model);
    EXPECT_GT(b.share(nn::LayerSpec::Kind::kConv), 0.85) << model.name;
    EXPECT_LT(b.share(nn::LayerSpec::Kind::kConv), 0.99) << model.name;
  }
}

TEST(Fig2, OnlyGoogLeNetHasConcatTime) {
  for (const auto& model : nn::figure2_models()) {
    const auto b = breakdown_model(model);
    const double concat = b.share(nn::LayerSpec::Kind::kConcat);
    if (model.name == "GoogLeNet") {
      EXPECT_GT(concat, 0.0);
    } else {
      EXPECT_DOUBLE_EQ(concat, 0.0);
    }
  }
}

}  // namespace
}  // namespace gpucnn::analysis
