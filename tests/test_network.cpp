// Network container, optimiser and end-to-end training tests.
#include <gtest/gtest.h>

#include "conv/conv_engine.hpp"
#include "nn/activation_layer.hpp"
#include "nn/conv_layer.hpp"
#include "nn/fc_layer.hpp"
#include "nn/network.hpp"
#include "nn/pool_layer.hpp"
#include "nn/sgd.hpp"
#include "nn/softmax.hpp"
#include "nn/synthetic_data.hpp"

namespace gpucnn::nn {
namespace {

Network tiny_net(conv::Strategy strategy = conv::Strategy::kUnrolling) {
  Network net;
  net.emplace<ConvLayer>("conv",
                         ConvConfig{.batch = 1, .input = 8, .channels = 1,
                                    .filters = 4, .kernel = 3, .stride = 1,
                                    .pad = 1},
                         strategy);
  net.emplace<ActivationLayer>("relu");
  net.emplace<PoolLayer>("pool", 2, 2);
  net.emplace<FcLayer>("fc", 4 * 4 * 4, 3);
  net.emplace<SoftmaxLayer>("prob");
  return net;
}

TEST(Network, OutputShapePropagates) {
  auto net = tiny_net();
  EXPECT_EQ(net.output_shape({5, 1, 8, 8}), (TensorShape{5, 3, 1, 1}));
}

TEST(Network, ForwardProducesProbabilities) {
  auto net = tiny_net();
  Rng rng(1);
  net.initialize(rng);
  Tensor in(2, 1, 8, 8);
  in.fill_uniform(rng);
  const Tensor& out = net.forward(in);
  for (std::size_t n = 0; n < 2; ++n) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) sum += out(n, c, 0, 0);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Network, BackwardRequiresForward) {
  auto net = tiny_net();
  Tensor grad(2, 3, 1, 1);
  EXPECT_THROW(net.backward(grad), Error);
}

TEST(Network, ParametersAndGradientsAligned) {
  auto net = tiny_net();
  EXPECT_EQ(net.parameters().size(), net.gradients().size());
  EXPECT_EQ(net.parameters().size(), 4U);  // conv W/b + fc W/b
  for (std::size_t i = 0; i < net.parameters().size(); ++i) {
    EXPECT_EQ(net.parameters()[i]->shape(), net.gradients()[i]->shape());
  }
}

TEST(Network, ZeroGradClearsGradients) {
  auto net = tiny_net();
  Rng rng(2);
  net.initialize(rng);
  Tensor in(2, 1, 8, 8);
  in.fill_uniform(rng);
  const Tensor& probs = net.forward(in);
  // A uniform output gradient would vanish through softmax (it is
  // orthogonal to the probability simplex); use a real loss gradient.
  Tensor grad;
  cross_entropy_prob_grad(probs, std::vector<std::size_t>{0, 1}, grad);
  net.backward(grad);
  bool any_nonzero = false;
  for (Tensor* g : net.gradients()) any_nonzero |= g->max_abs() > 0.0F;
  EXPECT_TRUE(any_nonzero);
  net.zero_grad();
  for (Tensor* g : net.gradients()) EXPECT_EQ(g->max_abs(), 0.0F);
}

TEST(Network, EndToEndGradcheckThroughWholeStack) {
  auto net = tiny_net();
  Rng rng(3);
  net.initialize(rng);
  Tensor in(2, 1, 8, 8);
  in.fill_uniform(rng);
  const std::vector<std::size_t> labels{0, 2};

  net.zero_grad();
  const Tensor& probs = net.forward(in);
  Tensor grad;
  cross_entropy_prob_grad(probs, labels, grad);
  net.backward(grad);

  // Finite differences on a few parameters of each tensor.
  const auto params = net.parameters();
  const auto grads = net.gradients();
  const float eps = 1e-2F;
  for (std::size_t t = 0; t < params.size(); ++t) {
    for (const std::size_t idx : {0UL, params[t]->count() / 2}) {
      const float saved = params[t]->data()[idx];
      params[t]->data()[idx] = saved + eps;
      const double up =
          cross_entropy_loss(net.forward(in), labels);
      params[t]->data()[idx] = saved - eps;
      const double down =
          cross_entropy_loss(net.forward(in), labels);
      params[t]->data()[idx] = saved;
      EXPECT_NEAR(grads[t]->data()[idx], (up - down) / (2.0 * eps), 2e-2)
          << "tensor " << t << " index " << idx;
    }
  }
}

TEST(Sgd, MovesAgainstGradient) {
  Network net;
  net.emplace<FcLayer>("fc", 2, 1);
  auto& fc = dynamic_cast<FcLayer&>(net.layer(0));
  fc.parameters()[0]->fill(1.0F);
  fc.gradients()[0]->fill(0.5F);
  Sgd sgd(net, {.learning_rate = 0.1, .momentum = 0.0});
  sgd.step();
  EXPECT_FLOAT_EQ(fc.parameters()[0]->data()[0], 1.0F - 0.05F);
}

TEST(Sgd, MomentumAccumulates) {
  Network net;
  net.emplace<FcLayer>("fc", 1, 1);
  auto& fc = dynamic_cast<FcLayer&>(net.layer(0));
  fc.parameters()[0]->fill(0.0F);
  Sgd sgd(net, {.learning_rate = 1.0, .momentum = 0.5});
  fc.gradients()[0]->fill(1.0F);
  sgd.step();  // v = 1, p = -1
  sgd.step();  // v = 1.5, p = -2.5
  EXPECT_FLOAT_EQ(fc.parameters()[0]->data()[0], -2.5F);
}

TEST(Sgd, WeightDecayShrinksParameters) {
  Network net;
  net.emplace<FcLayer>("fc", 1, 1);
  auto& fc = dynamic_cast<FcLayer&>(net.layer(0));
  fc.parameters()[0]->fill(10.0F);
  fc.gradients()[0]->fill(0.0F);
  Sgd sgd(net, {.learning_rate = 0.1, .momentum = 0.0,
                .weight_decay = 0.1});
  sgd.step();
  EXPECT_LT(fc.parameters()[0]->data()[0], 10.0F);
}

class TrainingConvergence
    : public ::testing::TestWithParam<conv::Strategy> {};

TEST_P(TrainingConvergence, LossDropsOnSyntheticTask) {
  // The same training run must converge under every convolution
  // strategy — the paper's interchangeability premise.
  auto net = tiny_net(GetParam());
  Rng rng(4);
  net.initialize(rng);
  SyntheticDataset data(3, 1, 8, 0.3);
  Sgd sgd(net, {.learning_rate = 0.05, .momentum = 0.9});

  double first_loss = 0.0;
  double last_loss = 0.0;
  Tensor grad;
  for (int step = 0; step < 60; ++step) {
    const auto batch = data.sample(16);
    net.zero_grad();
    const Tensor& probs = net.forward(batch.images);
    const double loss = cross_entropy_loss(probs, batch.labels);
    if (step == 0) first_loss = loss;
    last_loss = loss;
    cross_entropy_prob_grad(probs, batch.labels, grad);
    net.backward(grad);
    sgd.step();
  }
  EXPECT_LT(last_loss, first_loss * 0.5);
}

INSTANTIATE_TEST_SUITE_P(Strategies, TrainingConvergence,
                         ::testing::Values(conv::Strategy::kDirect,
                                           conv::Strategy::kUnrolling,
                                           conv::Strategy::kFft));

}  // namespace
}  // namespace gpucnn::nn
