// Network container, optimiser and end-to-end training tests.
#include <gtest/gtest.h>

#include "conv/conv_engine.hpp"
#include "nn/activation_layer.hpp"
#include "nn/conv_layer.hpp"
#include "nn/fc_layer.hpp"
#include "nn/inception_layer.hpp"
#include "nn/network.hpp"
#include "nn/pool_layer.hpp"
#include "nn/sgd.hpp"
#include "nn/softmax.hpp"
#include "nn/synthetic_data.hpp"

namespace gpucnn::nn {
namespace {

Network tiny_net(conv::Strategy strategy = conv::Strategy::kUnrolling) {
  Network net;
  net.emplace<ConvLayer>("conv",
                         ConvConfig{.batch = 1, .input = 8, .channels = 1,
                                    .filters = 4, .kernel = 3, .stride = 1,
                                    .pad = 1},
                         strategy);
  net.emplace<ActivationLayer>("relu");
  net.emplace<PoolLayer>("pool", 2, 2);
  net.emplace<FcLayer>("fc", 4 * 4 * 4, 3);
  net.emplace<SoftmaxLayer>("prob");
  return net;
}

TEST(Network, OutputShapePropagates) {
  auto net = tiny_net();
  EXPECT_EQ(net.output_shape({5, 1, 8, 8}), (TensorShape{5, 3, 1, 1}));
}

TEST(Network, ForwardProducesProbabilities) {
  auto net = tiny_net();
  Rng rng(1);
  net.initialize(rng);
  Tensor in(2, 1, 8, 8);
  in.fill_uniform(rng);
  const Tensor& out = net.forward(in);
  for (std::size_t n = 0; n < 2; ++n) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) sum += out(n, c, 0, 0);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Network, BackwardRequiresForward) {
  auto net = tiny_net();
  Tensor grad(2, 3, 1, 1);
  EXPECT_THROW(net.backward(grad), Error);
}

TEST(Network, ParametersAndGradientsAligned) {
  auto net = tiny_net();
  EXPECT_EQ(net.parameters().size(), net.gradients().size());
  EXPECT_EQ(net.parameters().size(), 4U);  // conv W/b + fc W/b
  for (std::size_t i = 0; i < net.parameters().size(); ++i) {
    EXPECT_EQ(net.parameters()[i]->shape(), net.gradients()[i]->shape());
  }
}

TEST(Network, ZeroGradClearsGradients) {
  auto net = tiny_net();
  Rng rng(2);
  net.initialize(rng);
  Tensor in(2, 1, 8, 8);
  in.fill_uniform(rng);
  const Tensor& probs = net.forward(in);
  // A uniform output gradient would vanish through softmax (it is
  // orthogonal to the probability simplex); use a real loss gradient.
  Tensor grad;
  cross_entropy_prob_grad(probs, std::vector<std::size_t>{0, 1}, grad);
  net.backward(grad);
  bool any_nonzero = false;
  for (Tensor* g : net.gradients()) any_nonzero |= g->max_abs() > 0.0F;
  EXPECT_TRUE(any_nonzero);
  net.zero_grad();
  for (Tensor* g : net.gradients()) EXPECT_EQ(g->max_abs(), 0.0F);
}

TEST(Network, EndToEndGradcheckThroughWholeStack) {
  auto net = tiny_net();
  Rng rng(3);
  net.initialize(rng);
  Tensor in(2, 1, 8, 8);
  in.fill_uniform(rng);
  const std::vector<std::size_t> labels{0, 2};

  net.zero_grad();
  const Tensor& probs = net.forward(in);
  Tensor grad;
  cross_entropy_prob_grad(probs, labels, grad);
  net.backward(grad);

  // Finite differences on a few parameters of each tensor.
  const auto params = net.parameters();
  const auto grads = net.gradients();
  const float eps = 1e-2F;
  for (std::size_t t = 0; t < params.size(); ++t) {
    for (const std::size_t idx : {0UL, params[t]->count() / 2}) {
      const float saved = params[t]->data()[idx];
      params[t]->data()[idx] = saved + eps;
      const double up =
          cross_entropy_loss(net.forward(in), labels);
      params[t]->data()[idx] = saved - eps;
      const double down =
          cross_entropy_loss(net.forward(in), labels);
      params[t]->data()[idx] = saved;
      EXPECT_NEAR(grads[t]->data()[idx], (up - down) / (2.0 * eps), 2e-2)
          << "tensor " << t << " index " << idx;
    }
  }
}

TEST(Sgd, MovesAgainstGradient) {
  Network net;
  net.emplace<FcLayer>("fc", 2, 1);
  auto& fc = dynamic_cast<FcLayer&>(net.layer(0));
  fc.parameters()[0]->fill(1.0F);
  fc.gradients()[0]->fill(0.5F);
  Sgd sgd(net, {.learning_rate = 0.1, .momentum = 0.0});
  sgd.step();
  EXPECT_FLOAT_EQ(fc.parameters()[0]->data()[0], 1.0F - 0.05F);
}

TEST(Sgd, MomentumAccumulates) {
  Network net;
  net.emplace<FcLayer>("fc", 1, 1);
  auto& fc = dynamic_cast<FcLayer&>(net.layer(0));
  fc.parameters()[0]->fill(0.0F);
  Sgd sgd(net, {.learning_rate = 1.0, .momentum = 0.5});
  fc.gradients()[0]->fill(1.0F);
  sgd.step();  // v = 1, p = -1
  sgd.step();  // v = 1.5, p = -2.5
  EXPECT_FLOAT_EQ(fc.parameters()[0]->data()[0], -2.5F);
}

TEST(Sgd, WeightDecayShrinksParameters) {
  Network net;
  net.emplace<FcLayer>("fc", 1, 1);
  auto& fc = dynamic_cast<FcLayer&>(net.layer(0));
  fc.parameters()[0]->fill(10.0F);
  fc.gradients()[0]->fill(0.0F);
  Sgd sgd(net, {.learning_rate = 0.1, .momentum = 0.0,
                .weight_decay = 0.1});
  sgd.step();
  EXPECT_LT(fc.parameters()[0]->data()[0], 10.0F);
}

class TrainingConvergence
    : public ::testing::TestWithParam<conv::Strategy> {};

TEST_P(TrainingConvergence, LossDropsOnSyntheticTask) {
  // The same training run must converge under every convolution
  // strategy — the paper's interchangeability premise.
  auto net = tiny_net(GetParam());
  Rng rng(4);
  net.initialize(rng);
  SyntheticDataset data(3, 1, 8, 0.3);
  Sgd sgd(net, {.learning_rate = 0.05, .momentum = 0.9});

  double first_loss = 0.0;
  double last_loss = 0.0;
  Tensor grad;
  for (int step = 0; step < 60; ++step) {
    const auto batch = data.sample(16);
    net.zero_grad();
    const Tensor& probs = net.forward(batch.images);
    const double loss = cross_entropy_loss(probs, batch.labels);
    if (step == 0) first_loss = loss;
    last_loss = loss;
    cross_entropy_prob_grad(probs, batch.labels, grad);
    net.backward(grad);
    sgd.step();
  }
  EXPECT_LT(last_loss, first_loss * 0.5);
}

// --- conv+ReLU fusion -------------------------------------------------

TEST(NetworkFusion, FuseConvReluMatchesUnfusedBitForBit) {
  auto fused_net = tiny_net();
  auto plain_net = tiny_net();
  Rng r1(7);
  fused_net.initialize(r1);
  Rng r2(7);
  plain_net.initialize(r2);

  EXPECT_EQ(fused_net.fuse_conv_relu(), 1U);
  EXPECT_EQ(fused_net.size(), plain_net.size() - 1);

  Rng rng(9);
  Tensor in(2, 1, 8, 8);
  in.fill_uniform(rng);
  const Tensor& fused_out = fused_net.forward(in);
  const Tensor& plain_out = plain_net.forward(in);
  EXPECT_EQ(max_abs_diff(fused_out, plain_out), 0.0);

  // Gradients of every parameter must also match bit for bit.
  Tensor grad(fused_out.shape());
  grad.fill_uniform(rng);
  fused_net.zero_grad();
  plain_net.zero_grad();
  fused_net.backward(grad);
  plain_net.backward(grad);
  const auto fg = fused_net.gradients();
  const auto pg = plain_net.gradients();
  ASSERT_EQ(fg.size(), pg.size());
  for (std::size_t i = 0; i < fg.size(); ++i) {
    EXPECT_EQ(max_abs_diff(*fg[i], *pg[i]), 0.0) << "gradient " << i;
  }
}

TEST(NetworkFusion, OnlyReluPairsFuse) {
  Network net;
  net.emplace<ConvLayer>("conv",
                         ConvConfig{.batch = 1, .input = 6, .channels = 1,
                                    .filters = 2, .kernel = 3, .stride = 1,
                                    .pad = 1});
  net.emplace<ActivationLayer>("tanh", Activation::kTanh);
  EXPECT_EQ(net.fuse_conv_relu(), 0U);
  EXPECT_EQ(net.size(), 2U);
}

// --- activation memory planner ----------------------------------------

TEST(NetworkPlanner, PlannedInferenceMatchesUnplanned) {
  auto planned = tiny_net();
  auto plain = tiny_net();
  Rng r1(11);
  planned.initialize(r1);
  Rng r2(11);
  plain.initialize(r2);
  planned.set_training(false);
  plain.set_training(false);
  planned.set_memory_planning(true);

  Rng rng(13);
  Tensor in(3, 1, 8, 8);
  in.fill_uniform(rng);
  const Tensor& a = planned.forward(in);
  const Tensor& b = plain.forward(in);
  EXPECT_EQ(max_abs_diff(a, b), 0.0);

  // The plan must beat the naive sum-of-activations footprint, and the
  // stats must be populated.
  EXPECT_GT(planned.naive_activation_bytes(), 0U);
  EXPECT_LT(planned.planned_activation_bytes(),
            planned.naive_activation_bytes());
}

TEST(NetworkPlanner, AdjacentActivationsNeverAlias) {
  // Lifetimes [i, i+1] overlap for adjacent layers: layer i+1 reads
  // activation i while writing activation i+1. A planner bug aliasing
  // the two would corrupt the forward value — the bit-match above
  // guards it dynamically; here we re-run with a second batch size to
  // force a re-plan and check the output is still consistent.
  auto planned = tiny_net();
  Rng r1(17);
  planned.initialize(r1);
  planned.set_training(false);
  planned.set_memory_planning(true);

  auto plain = tiny_net();
  Rng r2(17);
  plain.initialize(r2);
  plain.set_training(false);

  Rng rng(19);
  for (const std::size_t batch : {1U, 4U, 2U}) {
    Tensor in(batch, 1, 8, 8);
    in.fill_uniform(rng);
    const Tensor& a = planned.forward(in);
    const Tensor& b = plain.forward(in);
    EXPECT_EQ(max_abs_diff(a, b), 0.0) << "batch " << batch;
  }
}

TEST(NetworkPlanner, PlannedForwardForbidsBackward) {
  auto net = tiny_net();
  Rng rng(23);
  net.initialize(rng);
  net.set_training(false);
  net.set_memory_planning(true);
  Tensor in(1, 1, 8, 8);
  in.fill_uniform(rng);
  const Tensor& out = net.forward(in);
  Tensor grad(out.shape());
  EXPECT_THROW(net.backward(grad), Error);

  // Returning to training mode restores the standard path.
  net.set_training(true);
  net.forward(in);
  grad.fill(0.25F);
  EXPECT_NO_THROW(net.backward(grad));
}

// --- parallel inception branches --------------------------------------

TEST(NetworkInception, ParallelBranchesMatchSerialComposition) {
  // The inception forward/backward runs its branches on the thread pool;
  // gradients and outputs must be identical to a from-scratch layer run
  // (same seed), and a gradcheck-style agreement holds between runs.
  const InceptionParams params{"t", 8, 4, 8, 2, 4, 4};
  InceptionLayer a("incept_a", 3, 6, params);
  InceptionLayer b("incept_b", 3, 6, params);
  Rng r1(29);
  a.initialize(r1);
  Rng r2(29);
  b.initialize(r2);

  Rng rng(31);
  Tensor in(2, 3, 6, 6);
  in.fill_uniform(rng);
  Tensor out_a;
  Tensor out_b;
  a.forward(in, out_a);
  b.forward(in, out_b);
  EXPECT_EQ(max_abs_diff(out_a, out_b), 0.0);

  Tensor grad(out_a.shape());
  grad.fill_uniform(rng);
  Tensor gin_a;
  Tensor gin_b;
  a.zero_grad();
  b.zero_grad();
  a.backward(in, grad, gin_a);
  b.backward(in, grad, gin_b);
  EXPECT_EQ(max_abs_diff(gin_a, gin_b), 0.0);
  const auto ga = a.gradients();
  const auto gb = b.gradients();
  ASSERT_EQ(ga.size(), gb.size());
  for (std::size_t i = 0; i < ga.size(); ++i) {
    EXPECT_EQ(max_abs_diff(*ga[i], *gb[i]), 0.0) << "gradient " << i;
  }
}

TEST(NetworkInception, InternalFusionPreservesResults) {
  const InceptionParams params{"t", 8, 4, 8, 2, 4, 4};
  InceptionLayer fused("incept_f", 3, 6, params);
  InceptionLayer plain("incept_p", 3, 6, params);
  Rng r1(37);
  fused.initialize(r1);
  Rng r2(37);
  plain.initialize(r2);
  // 6 conv -> relu pairs: 1 (1x1) + 2 (3x3 branch) + 2 (5x5) + 1 (pool).
  EXPECT_EQ(fused.fuse_relu_pairs(), 6U);

  Rng rng(41);
  Tensor in(1, 3, 6, 6);
  in.fill_uniform(rng);
  Tensor out_f;
  Tensor out_p;
  fused.forward(in, out_f);
  plain.forward(in, out_p);
  EXPECT_EQ(max_abs_diff(out_f, out_p), 0.0);

  Tensor grad(out_f.shape());
  grad.fill_uniform(rng);
  Tensor gin_f;
  Tensor gin_p;
  fused.zero_grad();
  plain.zero_grad();
  fused.backward(in, grad, gin_f);
  plain.backward(in, grad, gin_p);
  EXPECT_EQ(max_abs_diff(gin_f, gin_p), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Strategies, TrainingConvergence,
                         ::testing::Values(conv::Strategy::kDirect,
                                           conv::Strategy::kUnrolling,
                                           conv::Strategy::kFft));

}  // namespace
}  // namespace gpucnn::nn
