#include "nn/adam.hpp"

#include <gtest/gtest.h>

#include "nn/activation_layer.hpp"
#include "nn/conv_layer.hpp"
#include "nn/fc_layer.hpp"
#include "nn/softmax.hpp"
#include "nn/synthetic_data.hpp"

namespace gpucnn::nn {
namespace {

TEST(Adam, FirstStepMovesByLearningRate) {
  // With m_hat = g and v_hat = g^2, the first update is
  // -lr * g / (|g| + eps) ~ -lr * sign(g).
  Network net;
  net.emplace<FcLayer>("fc", 1, 1);
  auto& fc = dynamic_cast<FcLayer&>(net.layer(0));
  fc.parameters()[0]->fill(0.0F);
  fc.gradients()[0]->fill(2.0F);
  Adam adam(net, {.learning_rate = 0.1});
  adam.step();
  EXPECT_NEAR(fc.parameters()[0]->data()[0], -0.1F, 1e-4F);
  EXPECT_EQ(adam.steps_taken(), 1U);
}

TEST(Adam, UpdateMagnitudeInvariantToGradientScale) {
  // Adam's signature property: scaling all gradients leaves the step
  // size (asymptotically) unchanged.
  const auto run = [](float scale) {
    Network net;
    net.emplace<FcLayer>("fc", 1, 1);
    auto& fc = dynamic_cast<FcLayer&>(net.layer(0));
    fc.parameters()[0]->fill(0.0F);
    Adam adam(net, {.learning_rate = 0.01});
    for (int i = 0; i < 10; ++i) {
      fc.gradients()[0]->fill(scale);
      adam.step();
    }
    return fc.parameters()[0]->data()[0];
  };
  EXPECT_NEAR(run(1.0F), run(100.0F), 1e-4F);
}

TEST(Adam, WeightDecayShrinksParameters) {
  Network net;
  net.emplace<FcLayer>("fc", 1, 1);
  auto& fc = dynamic_cast<FcLayer&>(net.layer(0));
  fc.parameters()[0]->fill(5.0F);
  fc.gradients()[0]->fill(0.0F);
  Adam adam(net, {.learning_rate = 0.01, .weight_decay = 0.1});
  adam.step();
  EXPECT_LT(fc.parameters()[0]->data()[0], 5.0F);
}

TEST(Adam, TrainsSmallCnn) {
  Network net;
  net.emplace<ConvLayer>("c",
                         ConvConfig{.batch = 1, .input = 8, .channels = 1,
                                    .filters = 4, .kernel = 3, .stride = 1,
                                    .pad = 1});
  net.emplace<ActivationLayer>("r");
  net.emplace<FcLayer>("fc", 4 * 8 * 8, 3);
  net.emplace<SoftmaxLayer>("s");
  Rng rng(1);
  net.initialize(rng);
  SyntheticDataset data(3, 1, 8, 0.25);
  Adam adam(net, {.learning_rate = 3e-3});

  double first = 0.0;
  double last = 0.0;
  Tensor grad;
  for (int step = 0; step < 60; ++step) {
    const auto batch = data.sample(16);
    net.zero_grad();
    const Tensor& probs = net.forward(batch.images);
    const double loss = cross_entropy_loss(probs, batch.labels);
    if (step == 0) first = loss;
    last = loss;
    cross_entropy_prob_grad(probs, batch.labels, grad);
    net.backward(grad);
    adam.step();
  }
  EXPECT_LT(last, first * 0.6);
}

}  // namespace
}  // namespace gpucnn::nn
