#include "core/workspace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <utility>

namespace gpucnn::ws {
namespace {

TEST(Workspace, AcquireIsCacheLineAligned) {
  for (const std::size_t bytes : {1UL, 17UL, 256UL, 4097UL, 1UL << 20}) {
    void* p = acquire(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kAlignment, 0U)
        << "for " << bytes << " bytes";
    release(p, bytes);
  }
  trim();
}

TEST(Workspace, ReleaseParksAndAcquireReuses) {
  trim();
  void* first = acquire(1000);
  release(first, 1000);
  EXPECT_GT(retained_bytes(), 0U);
  // Same size class (1000 and 800 both round to 1024) -> same block back.
  void* second = acquire(800);
  EXPECT_EQ(second, first);
  release(second, 800);
  trim();
  EXPECT_EQ(retained_bytes(), 0U);
}

TEST(Workspace, DistinctSizeClassesDoNotAlias) {
  trim();
  void* small = acquire(100);
  void* big = acquire(100000);
  EXPECT_NE(small, big);
  release(small, 100);
  release(big, 100000);
  trim();
}

TEST(Workspace, ArenasArePerThread) {
  trim();
  void* mine = acquire(2048);
  release(mine, 2048);
  // Another thread's arena starts empty: it must not see this thread's
  // parked block, and its own park must not leak into ours.
  std::size_t other_retained_before = 1;
  std::thread t([&] {
    other_retained_before = retained_bytes();
    void* p = acquire(2048);
    release(p, 2048);
    trim();
  });
  t.join();
  EXPECT_EQ(other_retained_before, 0U);
  EXPECT_GT(retained_bytes(), 0U);
  trim();
}

TEST(WorkspaceScratch, SpanAndFill) {
  Scratch<float> s(37);
  EXPECT_EQ(s.size(), 37U);
  EXPECT_EQ(s.span().size(), 37U);
  s.fill(2.5F);
  for (const float v : s.span()) EXPECT_EQ(v, 2.5F);
}

TEST(WorkspaceScratch, ZeroRequestZeroes) {
  // Dirty a block, return it, re-acquire with zero = true: the reused
  // storage must come back zeroed.
  {
    Scratch<float> dirty(64);
    dirty.fill(9.0F);
  }
  Scratch<float> s(64, /*zero=*/true);
  for (const float v : s.span()) EXPECT_EQ(v, 0.0F);
}

TEST(WorkspaceScratch, MoveTransfersOwnership) {
  Scratch<int> a(16);
  a.fill(7);
  int* data = a.data();
  Scratch<int> b(std::move(a));
  EXPECT_EQ(b.data(), data);
  EXPECT_EQ(b.size(), 16U);
  EXPECT_EQ(b.span()[15], 7);
}

}  // namespace
}  // namespace gpucnn::ws
