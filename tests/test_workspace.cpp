#include "core/workspace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <latch>
#include <thread>
#include <utility>
#include <vector>

namespace gpucnn::ws {
namespace {

/// Restores the retention cap / poison flag a test overrides.
struct RetainCapOverride {
  explicit RetainCapOverride(std::size_t cap)
      : previous_(set_retain_cap_for_testing(cap)) {}
  ~RetainCapOverride() { set_retain_cap_for_testing(previous_); }
  std::size_t previous_;
};

struct PoisonOverride {
  explicit PoisonOverride(bool on) : previous_(set_poison_scratch(on)) {}
  ~PoisonOverride() { set_poison_scratch(previous_); }
  bool previous_;
};

TEST(Workspace, AcquireIsCacheLineAligned) {
  for (const std::size_t bytes : {1UL, 17UL, 256UL, 4097UL, 1UL << 20}) {
    void* p = acquire(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kAlignment, 0U)
        << "for " << bytes << " bytes";
    release(p, bytes);
  }
  trim();
}

TEST(Workspace, ReleaseParksAndAcquireReuses) {
  trim();
  void* first = acquire(1000);
  release(first, 1000);
  EXPECT_GT(retained_bytes(), 0U);
  // Same size class (1000 and 800 both round to 1024) -> same block back.
  void* second = acquire(800);
  EXPECT_EQ(second, first);
  release(second, 800);
  trim();
  EXPECT_EQ(retained_bytes(), 0U);
}

TEST(Workspace, DistinctSizeClassesDoNotAlias) {
  trim();
  void* small = acquire(100);
  void* big = acquire(100000);
  EXPECT_NE(small, big);
  release(small, 100);
  release(big, 100000);
  trim();
}

TEST(Workspace, ArenasArePerThread) {
  trim();
  void* mine = acquire(2048);
  release(mine, 2048);
  // Another thread's arena starts empty: it must not see this thread's
  // parked block, and its own park must not leak into ours.
  std::size_t other_retained_before = 1;
  std::thread t([&] {
    other_retained_before = retained_bytes();
    void* p = acquire(2048);
    release(p, 2048);
    trim_thread();
  });
  t.join();
  EXPECT_EQ(other_retained_before, 0U);
  EXPECT_GT(retained_bytes(), 0U);
  trim();
}

TEST(Workspace, SizeClassGeometry) {
  using detail::class_bytes;
  using detail::class_of;
  using detail::kMinClassBytes;
  using detail::kNumClasses;
  // Sub-minimum requests share the first class.
  EXPECT_EQ(class_of(1), 0U);
  EXPECT_EQ(class_of(kMinClassBytes), 0U);
  EXPECT_EQ(class_of(kMinClassBytes + 1), 1U);
  // A request of exactly a class capacity maps to that class.
  for (std::size_t cls = 0; cls < kNumClasses; ++cls) {
    EXPECT_EQ(class_of(class_bytes(cls)), cls);
  }
  // The last class is open-ended: anything larger still maps to it...
  const std::size_t last = kNumClasses - 1;
  EXPECT_EQ(class_of(class_bytes(last) + 1), last);
  EXPECT_EQ(class_of(class_bytes(last) * 8), last);
  // ...but is flagged oversized, so release() frees instead of parking
  // a block whose real capacity exceeds the recorded class capacity.
  EXPECT_FALSE(detail::oversized(class_bytes(last)));
  EXPECT_TRUE(detail::oversized(class_bytes(last) + 1));
  EXPECT_FALSE(detail::oversized(1));
}

TEST(Workspace, RetainCapEvictsIncomingBlocksOnly) {
  trim();
  const RetainCapOverride cap(2 * 4096);
  // Park two 4 KiB-class blocks: exactly at the cap, both retained.
  void* a = acquire(4096);
  void* b = acquire(4096);
  void* c = acquire(4096);
  release(a, 4096);
  release(b, 4096);
  EXPECT_EQ(retained_bytes(), 2 * 4096U);
  // A third release would exceed the cap: the incoming block is freed,
  // the already-parked ones stay (LIFO order preserved).
  release(c, 4096);
  EXPECT_EQ(retained_bytes(), 2 * 4096U);
  EXPECT_EQ(acquire(4096), b);
  EXPECT_EQ(acquire(4096), a);
  EXPECT_EQ(retained_bytes(), 0U);
  release(a, 4096);
  release(b, 4096);
  trim();
}

TEST(Workspace, PoisonFillsAcquiredBlocksWithSignalingNans) {
  trim();
  const PoisonOverride poison(true);
  // Fresh allocation: poisoned.
  const std::size_t n = 512 / sizeof(float);
  auto* fresh = static_cast<float*>(acquire(512));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(std::isnan(fresh[i])) << "element " << i;
    std::uint32_t bits = 0;
    std::memcpy(&bits, &fresh[i], sizeof(bits));
    EXPECT_EQ(bits, detail::kPoisonWord);
  }
  // Recycled block: dirtied contents are re-poisoned on reacquire.
  fresh[0] = 1.0F;
  release(fresh, 512);
  auto* reused = static_cast<float*>(acquire(512));
  EXPECT_EQ(reused, fresh);
  EXPECT_TRUE(std::isnan(reused[0]));
  release(reused, 512);
  trim();
}

TEST(Workspace, PoisonOffLeavesRecycledContents) {
  trim();
  const PoisonOverride poison(false);
  auto* p = static_cast<float*>(acquire(256));
  p[0] = 42.0F;
  release(p, 256);
  auto* q = static_cast<float*>(acquire(256));
  ASSERT_EQ(q, p);
  EXPECT_EQ(q[0], 42.0F);
  release(q, 256);
  trim();
}

TEST(Workspace, RetainedGaugeTracksProcessTotalAcrossThreads) {
  trim();
  ASSERT_EQ(process_retained_bytes(), 0U);
  // Two worker threads each park one block and hold position until the
  // main thread has observed the total: the process-wide count must be
  // the sum, not whichever thread updated it last.
  constexpr std::size_t kThreads = 2;
  constexpr std::size_t kBytes = 8192;
  std::latch parked(kThreads + 1);
  std::latch checked(kThreads + 1);
  std::vector<std::thread> workers;
  for (std::size_t i = 0; i < kThreads; ++i) {
    workers.emplace_back([&] {
      void* p = acquire(kBytes);
      release(p, kBytes);
      parked.arrive_and_wait();
      checked.arrive_and_wait();
      trim_thread();
    });
  }
  parked.arrive_and_wait();
  EXPECT_EQ(process_retained_bytes(), kThreads * kBytes);
  checked.arrive_and_wait();
  for (auto& t : workers) t.join();
  EXPECT_EQ(process_retained_bytes(), 0U);
}

TEST(Workspace, TrimFromMainThreadReclaimsWorkerRetainedBytes) {
  trim();
  ASSERT_EQ(process_retained_bytes(), 0U);
  constexpr std::size_t kBytes = 16384;
  std::latch parked(2);
  std::latch trimmed(2);
  // The worker parks a block and stays alive across the main-thread
  // trim: pre-registry, those bytes were unreachable until thread exit.
  std::thread worker([&] {
    void* p = acquire(kBytes);
    release(p, kBytes);
    parked.arrive_and_wait();
    trimmed.arrive_and_wait();
    EXPECT_EQ(retained_bytes(), 0U);  // main's trim drained this arena
  });
  parked.arrive_and_wait();
  EXPECT_EQ(process_retained_bytes(), kBytes);
  trim();
  EXPECT_EQ(process_retained_bytes(), 0U);
  trimmed.arrive_and_wait();
  worker.join();
}

TEST(Workspace, DyingThreadReturnsItsRetainedBytes) {
  trim();
  ASSERT_EQ(process_retained_bytes(), 0U);
  std::thread t([] {
    void* p = acquire(4096);
    release(p, 4096);
    EXPECT_GT(retained_bytes(), 0U);
  });
  t.join();
  // ~Arena freed the parked block and settled the process total.
  EXPECT_EQ(process_retained_bytes(), 0U);
}

TEST(WorkspaceScratch, SpanAndFill) {
  Scratch<float> s(37);
  EXPECT_EQ(s.size(), 37U);
  EXPECT_EQ(s.span().size(), 37U);
  s.fill(2.5F);
  for (const float v : s.span()) EXPECT_EQ(v, 2.5F);
}

TEST(WorkspaceScratch, ZeroRequestZeroes) {
  // Dirty a block, return it, re-acquire with zero = true: the reused
  // storage must come back zeroed.
  {
    Scratch<float> dirty(64);
    dirty.fill(9.0F);
  }
  Scratch<float> s(64, /*zero=*/true);
  for (const float v : s.span()) EXPECT_EQ(v, 0.0F);
}

TEST(WorkspaceScratch, ZeroRequestZeroesUnderPoison) {
  const PoisonOverride poison(true);
  Scratch<float> s(64, /*zero=*/true);
  for (const float v : s.span()) EXPECT_EQ(v, 0.0F);
  trim();
}

TEST(WorkspaceScratch, MoveTransfersOwnership) {
  Scratch<int> a(16);
  a.fill(7);
  int* data = a.data();
  Scratch<int> b(std::move(a));
  EXPECT_EQ(b.data(), data);
  EXPECT_EQ(b.size(), 16U);
  EXPECT_EQ(b.span()[15], 7);
}

}  // namespace
}  // namespace gpucnn::ws
