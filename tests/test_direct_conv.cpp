#include "conv/direct_conv.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"

namespace gpucnn::conv {
namespace {

TEST(DirectConv, IdentityKernelPassesThrough) {
  const ConvConfig cfg{.batch = 2, .input = 4, .channels = 1, .filters = 1,
                       .kernel = 1, .stride = 1};
  Tensor input(cfg.input_shape());
  Rng rng(1);
  input.fill_uniform(rng);
  Tensor filters(cfg.filter_shape());
  filters.fill(1.0F);
  Tensor output(cfg.output_shape());
  DirectConv{}.forward(cfg, input, filters, output);
  EXPECT_EQ(max_abs_diff(input, output), 0.0);
}

TEST(DirectConv, BoxFilterSumsWindow) {
  const ConvConfig cfg{.batch = 1, .input = 3, .channels = 1, .filters = 1,
                       .kernel = 2, .stride = 1};
  Tensor input(cfg.input_shape());
  for (std::size_t i = 0; i < 9; ++i) {
    input.data()[i] = static_cast<float>(i + 1);
  }
  Tensor filters(cfg.filter_shape());
  filters.fill(1.0F);
  Tensor output(cfg.output_shape());
  DirectConv{}.forward(cfg, input, filters, output);
  EXPECT_FLOAT_EQ(output(0, 0, 0, 0), 1 + 2 + 4 + 5);
  EXPECT_FLOAT_EQ(output(0, 0, 0, 1), 2 + 3 + 5 + 6);
  EXPECT_FLOAT_EQ(output(0, 0, 1, 0), 4 + 5 + 7 + 8);
  EXPECT_FLOAT_EQ(output(0, 0, 1, 1), 5 + 6 + 8 + 9);
}

TEST(DirectConv, CrossCorrelationNotFlipped) {
  // Asymmetric kernel [1 0; 0 0] at stride 1 must read the top-left
  // element of each window (cross-correlation), not the bottom-right
  // (which true convolution's flip would give).
  const ConvConfig cfg{.batch = 1, .input = 2, .channels = 1, .filters = 1,
                       .kernel = 2, .stride = 1};
  Tensor input(cfg.input_shape());
  input(0, 0, 0, 0) = 5.0F;
  input(0, 0, 1, 1) = 7.0F;
  Tensor filters(cfg.filter_shape());
  filters(0, 0, 0, 0) = 1.0F;
  Tensor output(cfg.output_shape());
  DirectConv{}.forward(cfg, input, filters, output);
  EXPECT_FLOAT_EQ(output(0, 0, 0, 0), 5.0F);
}

TEST(DirectConv, ChannelsAreSummed) {
  const ConvConfig cfg{.batch = 1, .input = 2, .channels = 3, .filters = 1,
                       .kernel = 2, .stride = 1};
  Tensor input(cfg.input_shape());
  input.fill(1.0F);
  Tensor filters(cfg.filter_shape());
  filters.fill(1.0F);
  Tensor output(cfg.output_shape());
  DirectConv{}.forward(cfg, input, filters, output);
  EXPECT_FLOAT_EQ(output(0, 0, 0, 0), 12.0F);  // 3 channels * 4 taps
}

TEST(DirectConv, PaddingContributesZero) {
  const ConvConfig cfg{.batch = 1, .input = 2, .channels = 1, .filters = 1,
                       .kernel = 3, .stride = 1, .pad = 1};
  Tensor input(cfg.input_shape());
  input.fill(1.0F);
  Tensor filters(cfg.filter_shape());
  filters.fill(1.0F);
  Tensor output(cfg.output_shape());
  DirectConv{}.forward(cfg, input, filters, output);
  // Output is 2x2; each window covers the full 2x2 input plus padding.
  for (std::size_t y = 0; y < 2; ++y) {
    for (std::size_t x = 0; x < 2; ++x) {
      EXPECT_FLOAT_EQ(output(0, 0, y, x), 4.0F);
    }
  }
}

TEST(DirectConv, StrideSubsamples) {
  const ConvConfig cfg{.batch = 1, .input = 5, .channels = 1, .filters = 1,
                       .kernel = 1, .stride = 2};
  Tensor input(cfg.input_shape());
  for (std::size_t i = 0; i < 25; ++i) {
    input.data()[i] = static_cast<float>(i);
  }
  Tensor filters(cfg.filter_shape());
  filters.fill(1.0F);
  Tensor output(cfg.output_shape());
  DirectConv{}.forward(cfg, input, filters, output);
  EXPECT_EQ(cfg.output(), 3U);
  EXPECT_FLOAT_EQ(output(0, 0, 0, 0), 0.0F);
  EXPECT_FLOAT_EQ(output(0, 0, 0, 1), 2.0F);
  EXPECT_FLOAT_EQ(output(0, 0, 1, 0), 10.0F);
  EXPECT_FLOAT_EQ(output(0, 0, 2, 2), 24.0F);
}

TEST(DirectConv, ShapeValidation) {
  const ConvConfig cfg{.batch = 1, .input = 4, .channels = 1, .filters = 1,
                       .kernel = 2, .stride = 1};
  Tensor input(cfg.input_shape());
  Tensor filters(cfg.filter_shape());
  Tensor bad_output(1, 1, 2, 2);  // should be 3x3
  DirectConv engine;
  EXPECT_THROW(engine.forward(cfg, input, filters, bad_output), Error);
}

// Finite-difference gradient checks: the analytic backward passes must
// match numeric derivatives of the forward pass.
class DirectConvGradient : public ::testing::Test {
 protected:
  static double loss(const Tensor& out, const Tensor& weights) {
    // L = sum(out * weights) gives dL/dout = weights.
    double acc = 0.0;
    for (std::size_t i = 0; i < out.count(); ++i) {
      acc += static_cast<double>(out.data()[i]) * weights.data()[i];
    }
    return acc;
  }
};

TEST_F(DirectConvGradient, BackwardDataMatchesFiniteDifference) {
  const ConvConfig cfg{.batch = 2, .input = 5, .channels = 2, .filters = 3,
                       .kernel = 3, .stride = 2, .pad = 1};
  Rng rng(42);
  Tensor input(cfg.input_shape());
  input.fill_uniform(rng);
  Tensor filters(cfg.filter_shape());
  filters.fill_uniform(rng);
  Tensor loss_w(cfg.output_shape());
  loss_w.fill_uniform(rng);

  DirectConv engine;
  Tensor grad_input(cfg.input_shape());
  engine.backward_data(cfg, loss_w, filters, grad_input);

  Tensor output(cfg.output_shape());
  const float eps = 1e-2F;
  for (const std::size_t idx : {0UL, 7UL, 23UL, input.count() - 1}) {
    const float saved = input.data()[idx];
    input.data()[idx] = saved + eps;
    engine.forward(cfg, input, filters, output);
    const double up = loss(output, loss_w);
    input.data()[idx] = saved - eps;
    engine.forward(cfg, input, filters, output);
    const double down = loss(output, loss_w);
    input.data()[idx] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(grad_input.data()[idx], numeric, 5e-3)
        << "at flat index " << idx;
  }
}

TEST_F(DirectConvGradient, BackwardFilterMatchesFiniteDifference) {
  const ConvConfig cfg{.batch = 2, .input = 6, .channels = 2, .filters = 2,
                       .kernel = 3, .stride = 1, .pad = 1};
  Rng rng(43);
  Tensor input(cfg.input_shape());
  input.fill_uniform(rng);
  Tensor filters(cfg.filter_shape());
  filters.fill_uniform(rng);
  Tensor loss_w(cfg.output_shape());
  loss_w.fill_uniform(rng);

  DirectConv engine;
  Tensor grad_filters(cfg.filter_shape());
  engine.backward_filter(cfg, input, loss_w, grad_filters);

  Tensor output(cfg.output_shape());
  const float eps = 1e-2F;
  for (const std::size_t idx : {0UL, 5UL, 17UL, filters.count() - 1}) {
    const float saved = filters.data()[idx];
    filters.data()[idx] = saved + eps;
    engine.forward(cfg, input, filters, output);
    const double up = loss(output, loss_w);
    filters.data()[idx] = saved - eps;
    engine.forward(cfg, input, filters, output);
    const double down = loss(output, loss_w);
    filters.data()[idx] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(grad_filters.data()[idx], numeric, 5e-2)
        << "at flat index " << idx;
  }
}

}  // namespace
}  // namespace gpucnn::conv
