#include "nn/synthetic_data.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace gpucnn::nn {
namespace {

TEST(SyntheticData, BatchShapesAndLabels) {
  SyntheticDataset data(5, 3, 16);
  const auto batch = data.sample(8);
  EXPECT_EQ(batch.images.shape(), (TensorShape{8, 3, 16, 16}));
  ASSERT_EQ(batch.labels.size(), 8U);
  for (const auto l : batch.labels) EXPECT_LT(l, 5U);
}

TEST(SyntheticData, DeterministicForSameSeed) {
  SyntheticDataset a(4, 1, 8, 0.3, 42);
  SyntheticDataset b(4, 1, 8, 0.3, 42);
  const auto ba = a.sample(16);
  const auto bb = b.sample(16);
  EXPECT_EQ(ba.labels, bb.labels);
  EXPECT_EQ(max_abs_diff(ba.images, bb.images), 0.0);
}

TEST(SyntheticData, TemplatesDifferAcrossClasses) {
  SyntheticDataset data(4, 1, 16);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      EXPECT_GT(max_abs_diff(data.class_template(i),
                             data.class_template(j)),
                0.5)
          << i << " vs " << j;
    }
  }
}

TEST(SyntheticData, SamplesClusterAroundTemplates) {
  SyntheticDataset data(3, 1, 12, /*noise=*/0.1);
  const auto batch = data.sample(32);
  for (std::size_t i = 0; i < 32; ++i) {
    // The matching template must be the nearest of the three.
    double best = 1e18;
    std::size_t best_label = 99;
    for (std::size_t c = 0; c < 3; ++c) {
      const auto& tpl = data.class_template(c);
      double dist = 0.0;
      for (std::size_t p = 0; p < tpl.count(); ++p) {
        const double d = batch.images.plane(i, 0)[p] - tpl.data()[p];
        dist += d * d;
      }
      if (dist < best) {
        best = dist;
        best_label = c;
      }
    }
    EXPECT_EQ(best_label, batch.labels[i]) << "sample " << i;
  }
}

TEST(SyntheticData, AllClassesAppear) {
  SyntheticDataset data(4, 1, 8);
  const auto batch = data.sample(256);
  std::vector<int> seen(4, 0);
  for (const auto l : batch.labels) ++seen[l];
  for (const int count : seen) EXPECT_GT(count, 20);
}

TEST(SyntheticData, RequiresTwoClasses) {
  EXPECT_THROW(SyntheticDataset(1, 1, 8), Error);
}

TEST(SyntheticData, TemplateOutOfRangeThrows) {
  SyntheticDataset data(3, 1, 8);
  EXPECT_THROW((void)data.class_template(3), Error);
}

}  // namespace
}  // namespace gpucnn::nn
