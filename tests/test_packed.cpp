// Prepacked GEMM (blas/packed.hpp): sgemm_prepacked / igemm_prepacked
// must be bit-identical to the staged drivers — same micro-kernels, same
// panel bytes, same write-back order — including the fused epilogues,
// the naive small-problem fallback, and the stale-pack (SIMD switch)
// fallback.
#include "blas/packed.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/cpu_features.hpp"
#include "core/rng.hpp"
#include "obs/metrics.hpp"

namespace gpucnn::blas {
namespace {

class SimdGuard {
 public:
  explicit SimdGuard(simd::Level level)
      : previous_(simd::set_active_for_testing(level)) {}
  ~SimdGuard() { simd::set_active_for_testing(previous_); }
  SimdGuard(const SimdGuard&) = delete;
  SimdGuard& operator=(const SimdGuard&) = delete;

 private:
  simd::Level previous_;
};

std::vector<float> random_matrix(std::size_t rows, std::size_t cols,
                                 Rng& rng) {
  std::vector<float> m(rows * cols);
  for (auto& v : m) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

struct PrepackCase {
  std::size_t m, n, k;
  Trans ta, tb;
  bool epilogue;
};

// Shapes pinned to hit every driver path: the naive small fallback
// (8*12*16), one k block (96*130*80), a multi-k-block reduction
// (150*96*300, k > KC), an m crossing MC (250*96*128) and an n crossing
// NC (70*2100*64) so the jc-window slice of the pack is exercised.
const PrepackCase kCases[] = {
    {8, 12, 16, Trans::kNo, Trans::kNo, false},
    {8, 12, 16, Trans::kNo, Trans::kNo, true},
    {96, 130, 80, Trans::kNo, Trans::kNo, false},
    {96, 130, 80, Trans::kNo, Trans::kNo, true},
    {96, 130, 80, Trans::kYes, Trans::kNo, false},
    {96, 130, 80, Trans::kNo, Trans::kYes, true},
    {150, 96, 300, Trans::kNo, Trans::kNo, true},
    {150, 96, 300, Trans::kYes, Trans::kYes, false},
    {250, 96, 128, Trans::kNo, Trans::kNo, true},
    {70, 2100, 64, Trans::kNo, Trans::kNo, false},
    {5, 97, 601, Trans::kNo, Trans::kNo, true},
};

void expect_bitwise_equal(const std::vector<float>& expected,
                          const std::vector<float>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i], actual[i]) << "element " << i;
  }
}

void run_fp32_case(const PrepackCase& pc) {
  Rng rng(pc.m * 7919 + pc.n * 131 + pc.k);
  const auto a = pc.ta == Trans::kNo ? random_matrix(pc.m, pc.k, rng)
                                     : random_matrix(pc.k, pc.m, rng);
  const auto b = pc.tb == Trans::kNo ? random_matrix(pc.k, pc.n, rng)
                                     : random_matrix(pc.n, pc.k, rng);
  const std::size_t lda = pc.ta == Trans::kNo ? pc.k : pc.m;
  const std::size_t ldb = pc.tb == Trans::kNo ? pc.n : pc.k;
  std::vector<float> bias(pc.m);
  for (auto& v : bias) v = static_cast<float>(rng.uniform(-0.5, 0.5));
  const Epilogue ep = pc.epilogue ? Epilogue{bias.data(), true}
                                  : Epilogue{};

  std::vector<float> c_staged(pc.m * pc.n, 0.0F);
  std::vector<float> c_pa(pc.m * pc.n, 0.0F);
  std::vector<float> c_pb(pc.m * pc.n, 0.0F);
  sgemm(pc.ta, pc.tb, pc.m, pc.n, pc.k, 1.0F, a, lda, b, ldb, 0.0F,
        c_staged, pc.n, ep);

  const PackedMatrix packed_a_mat = pack_a(pc.ta, pc.m, pc.k, a, lda);
  sgemm_prepacked(pc.m, pc.n, pc.k, 1.0F, packed_a_mat, pc.tb, b, ldb,
                  0.0F, c_pa, pc.n, ep);
  expect_bitwise_equal(c_staged, c_pa);

  const PackedMatrix packed_b_mat = pack_b(pc.tb, pc.k, pc.n, b, ldb);
  sgemm_prepacked(pc.ta, pc.m, pc.n, pc.k, 1.0F, a, lda, packed_b_mat,
                  0.0F, c_pb, pc.n, ep);
  expect_bitwise_equal(c_staged, c_pb);
}

class PrepackAgreement : public ::testing::TestWithParam<PrepackCase> {};

TEST_P(PrepackAgreement, BitIdenticalToStaged) { run_fp32_case(GetParam()); }

TEST_P(PrepackAgreement, BitIdenticalToStagedPortable) {
  const SimdGuard guard(simd::Level::kPortable);
  run_fp32_case(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Shapes, PrepackAgreement,
                         ::testing::ValuesIn(kCases));

TEST(Prepack, AlphaBetaMatchStaged) {
  Rng rng(42);
  const std::size_t m = 96;
  const std::size_t n = 80;
  const std::size_t k = 70;
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  std::vector<float> c_staged(m * n);
  std::vector<float> c_pre(m * n);
  for (std::size_t i = 0; i < m * n; ++i) {
    c_staged[i] = c_pre[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  sgemm(Trans::kNo, Trans::kNo, m, n, k, 1.3F, a, k, b, n, 0.7F, c_staged,
        n);
  const PackedMatrix pa = pack_a(Trans::kNo, m, k, a, k);
  sgemm_prepacked(m, n, k, 1.3F, pa, Trans::kNo, b, n, 0.7F, c_pre, n);
  expect_bitwise_equal(c_staged, c_pre);
}

TEST(Prepack, StalePackFallsBackBitIdentically) {
  if (!simd::cpu_has_avx2()) GTEST_SKIP() << "needs AVX2 to switch levels";
  Rng rng(7);
  const std::size_t m = 96;
  const std::size_t n = 130;
  const std::size_t k = 80;
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);

  PackedMatrix pa;
  {
    const SimdGuard avx2(simd::Level::kAvx2);
    pa = pack_a(Trans::kNo, m, k, a, k);
    EXPECT_TRUE(pa.valid());
  }
  const SimdGuard portable(simd::Level::kPortable);
  EXPECT_TRUE(pa.packed());
  EXPECT_FALSE(pa.valid());  // packed for 6x16, 8x8 kernels now dispatch

  std::vector<float> c_staged(m * n, 0.0F);
  std::vector<float> c_pre(m * n, 0.0F);
  sgemm(Trans::kNo, Trans::kNo, m, n, k, 1.0F, a, k, b, n, 0.0F, c_staged,
        n);
  sgemm_prepacked(m, n, k, 1.0F, pa, Trans::kNo, b, n, 0.0F, c_pre, n);
  expect_bitwise_equal(c_staged, c_pre);
}

TEST(Prepack, HitsCountedAndWeightRepackingEliminated) {
  auto& m_reg = obs::metrics();
  auto& hits = m_reg.counter("blas.sgemm.prepack_hits");
  auto& bytes_a = m_reg.counter("blas.sgemm.bytes_packed_a");
  auto& bytes_b = m_reg.counter("blas.sgemm.bytes_packed_b");

  Rng rng(11);
  const std::size_t m = 96;
  const std::size_t n = 130;
  const std::size_t k = 80;
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  std::vector<float> c(m * n, 0.0F);
  const PackedMatrix pa = pack_a(Trans::kNo, m, k, a, k);

  const auto hits0 = hits.value();
  const auto a0 = bytes_a.value();
  const auto b0 = bytes_b.value();
  sgemm_prepacked(m, n, k, 1.0F, pa, Trans::kNo, b, n, 0.0F, c, n);
  EXPECT_EQ(hits.value(), hits0 + 1);
  // The A (weight) operand came from the cache: zero A-packing traffic;
  // the B operand still packs per call.
  EXPECT_EQ(bytes_a.value(), a0);
  EXPECT_GT(bytes_b.value(), b0);
}

std::vector<std::int8_t> random_weights(std::size_t count, Rng& rng) {
  std::vector<std::int8_t> w(count);
  for (auto& v : w) {
    v = static_cast<std::int8_t>(rng.uniform(-63.0, 63.0));
  }
  return w;
}

std::vector<std::uint8_t> random_acts(std::size_t count, Rng& rng) {
  std::vector<std::uint8_t> u(count);
  for (auto& v : u) {
    v = static_cast<std::uint8_t>(rng.uniform(0.0, 255.0));
  }
  return u;
}

struct IgemmCase {
  std::size_t m, n, k;
};

// Naive fallback (4*8*16), one k block, a ragged-edge shape and a
// multi-k-block reduction (k > 1536).
const IgemmCase kIgemmCases[] = {
    {4, 8, 16}, {32, 64, 128}, {33, 130, 100}, {16, 64, 2000}};

class IgemmPrepackAgreement : public ::testing::TestWithParam<IgemmCase> {};

void run_igemm_case(const IgemmCase& ic) {
  Rng rng(ic.m * 31 + ic.n * 17 + ic.k);
  const auto a = random_weights(ic.m * ic.k, rng);
  const auto b = random_acts(ic.k * ic.n, rng);
  const PackedMatrixI8 pa = pack_a_i8(ic.m, ic.k, a, ic.k);

  std::vector<std::int32_t> c_staged(ic.m * ic.n, -1);
  std::vector<std::int32_t> c_pre(ic.m * ic.n, -2);
  igemm_s32(ic.m, ic.n, ic.k, a, ic.k, b, ic.n, c_staged, ic.n);
  igemm_prepacked(ic.m, ic.n, ic.k, pa, b, ic.n, c_pre, ic.n);
  for (std::size_t i = 0; i < c_staged.size(); ++i) {
    ASSERT_EQ(c_staged[i], c_pre[i]) << "s32 element " << i;
  }

  std::vector<float> scales(ic.m);
  std::vector<std::int32_t> offsets(ic.m);
  std::vector<float> bias(ic.m);
  for (std::size_t i = 0; i < ic.m; ++i) {
    scales[i] = 0.001F + 0.0001F * static_cast<float>(i);
    offsets[i] = static_cast<std::int32_t>(i * 13);
    bias[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  QEpilogue ep;
  ep.scales = scales.data();
  ep.row_offsets = offsets.data();
  ep.bias = bias.data();
  ep.relu = true;

  std::vector<float> f_staged(ic.m * ic.n, -1.0F);
  std::vector<float> f_pre(ic.m * ic.n, -2.0F);
  igemm(ic.m, ic.n, ic.k, a, ic.k, b, ic.n, ep, f_staged, ic.n);
  igemm_prepacked(ic.m, ic.n, ic.k, pa, b, ic.n, ep, f_pre, ic.n);
  for (std::size_t i = 0; i < f_staged.size(); ++i) {
    ASSERT_EQ(f_staged[i], f_pre[i]) << "f32 element " << i;
  }

  ep.out = QEpilogue::Out::kU8;
  ep.out_scale = 0.05F;
  ep.out_zero_point = 3;
  std::vector<std::uint8_t> u_staged(ic.m * ic.n, 1);
  std::vector<std::uint8_t> u_pre(ic.m * ic.n, 2);
  igemm(ic.m, ic.n, ic.k, a, ic.k, b, ic.n, ep, u_staged, ic.n);
  igemm_prepacked(ic.m, ic.n, ic.k, pa, b, ic.n, ep, u_pre, ic.n);
  for (std::size_t i = 0; i < u_staged.size(); ++i) {
    ASSERT_EQ(u_staged[i], u_pre[i]) << "u8 element " << i;
  }
}

TEST_P(IgemmPrepackAgreement, BitExactAgainstStaged) {
  run_igemm_case(GetParam());
}

TEST_P(IgemmPrepackAgreement, BitExactAgainstStagedPortable) {
  const SimdGuard guard(simd::Level::kPortable);
  run_igemm_case(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Shapes, IgemmPrepackAgreement,
                         ::testing::ValuesIn(kIgemmCases));

TEST(IgemmPrepack, StalePackFallsBackExactly) {
  if (!simd::cpu_has_avx2()) GTEST_SKIP() << "needs AVX2 to switch levels";
  Rng rng(5);
  const std::size_t m = 32;
  const std::size_t n = 64;
  const std::size_t k = 128;
  const auto a = random_weights(m * k, rng);
  const auto b = random_acts(k * n, rng);
  PackedMatrixI8 pa;
  {
    const SimdGuard avx2(simd::Level::kAvx2);
    pa = pack_a_i8(m, k, a, k);
    EXPECT_TRUE(pa.valid());
  }
  const SimdGuard portable(simd::Level::kPortable);
  EXPECT_FALSE(pa.valid());
  std::vector<std::int32_t> c_staged(m * n);
  std::vector<std::int32_t> c_pre(m * n);
  igemm_s32(m, n, k, a, k, b, n, c_staged, n);
  igemm_prepacked(m, n, k, pa, b, n, c_pre, n);
  EXPECT_EQ(c_staged, c_pre);
}

}  // namespace
}  // namespace gpucnn::blas
