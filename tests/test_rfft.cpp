// Real-input FFT fast path: rfft2/irfft2 half-spectrum transforms, the
// batched column transform they ride on, and the process-wide PlanCache.
// The conv cross-check at the bottom pins the half-spectrum engine to the
// full-complex reference on all three passes.
#include "fft/rfft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "conv/fft_conv.hpp"
#include "core/rng.hpp"
#include "fft/plan_cache.hpp"
#include "obs/metrics.hpp"

namespace gpucnn::fft {
namespace {

std::vector<float> random_plane(std::size_t s, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(s * s);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

class Rfft2 : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Rfft2, RoundTripRecoversInput) {
  const std::size_t s = GetParam();
  const Plan plan(s);
  const auto input = random_plane(s, 31 * s + 1);
  std::vector<Complex> spec(half_spectrum_size(s));
  std::vector<float> back(s * s);
  rfft2(input, spec, plan);
  irfft2(spec, back, plan);
  for (std::size_t i = 0; i < input.size(); ++i) {
    EXPECT_NEAR(back[i], input[i], 1e-5F * std::sqrt(static_cast<float>(s)))
        << "element " << i;
  }
}

TEST_P(Rfft2, MatchesFullComplexTransform) {
  // Every retained bin must equal the corresponding bin of the dense
  // complex 2-D transform of the same real input.
  const std::size_t s = GetParam();
  const Plan plan(s);
  const auto input = random_plane(s, 7 * s + 3);

  std::vector<Complex> spec(half_spectrum_size(s));
  rfft2(input, spec, plan);

  std::vector<Complex> full(s * s);
  for (std::size_t i = 0; i < s * s; ++i) full[i] = Complex(input[i], 0.0F);
  transform_2d(full, plan, plan, Direction::kForward);

  const std::size_t hc = half_cols(s);
  for (std::size_t ky = 0; ky < s; ++ky) {
    for (std::size_t kx = 0; kx < hc; ++kx) {
      const Complex got = spec[ky * hc + kx];
      const Complex want = full[ky * s + kx];
      EXPECT_NEAR(std::abs(got - want), 0.0F,
                  1e-4F * std::sqrt(static_cast<float>(s)))
          << "bin (" << ky << ", " << kx << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Rfft2,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128));

TEST(Rfft2Layout, SelfConjugateColumnsAreHermitian) {
  // Columns kx = 0 and kx = s/2 pair with themselves under conjugate
  // symmetry: spec[ky][kx] == conj(spec[(s-ky) mod s][kx]). In
  // particular the (0,0) and (s/2, s/2) bins are purely real.
  const std::size_t s = 16;
  const std::size_t hc = half_cols(s);
  const Plan plan(s);
  const auto input = random_plane(s, 404);
  std::vector<Complex> spec(half_spectrum_size(s));
  rfft2(input, spec, plan);

  for (const std::size_t kx : {std::size_t{0}, s / 2}) {
    for (std::size_t ky = 0; ky < s; ++ky) {
      const Complex a = spec[ky * hc + kx];
      const Complex b = spec[((s - ky) % s) * hc + kx];
      EXPECT_NEAR(std::abs(a - std::conj(b)), 0.0F, 1e-4F)
          << "column " << kx << " row " << ky;
    }
  }
  EXPECT_NEAR(spec[0].imag(), 0.0F, 1e-4F);
  EXPECT_NEAR(spec[(s / 2) * hc + s / 2].imag(), 0.0F, 1e-4F);
}

TEST(Rfft2Layout, ParsevalWithColumnWeights) {
  // Interior columns 0 < kx < s/2 stand in for their dropped mirrors, so
  // they count twice in the energy sum; columns 0 and s/2 count once.
  const std::size_t s = 32;
  const std::size_t hc = half_cols(s);
  const Plan plan(s);
  const auto input = random_plane(s, 777);
  std::vector<Complex> spec(half_spectrum_size(s));
  rfft2(input, spec, plan);

  double time_energy = 0.0;
  for (const float v : input) time_energy += static_cast<double>(v) * v;

  double freq_energy = 0.0;
  for (std::size_t ky = 0; ky < s; ++ky) {
    for (std::size_t kx = 0; kx < hc; ++kx) {
      const double w = (kx == 0 || kx == s / 2) ? 1.0 : 2.0;
      freq_energy += w * std::norm(spec[ky * hc + kx]);
    }
  }
  EXPECT_NEAR(freq_energy / static_cast<double>(s * s), time_energy,
              1e-3 * time_energy);
}

TEST(TransformColumns, MatchesStridedPerColumn) {
  // The batched column pass must agree with the scalar strided transform
  // it replaced, for both schedules and both directions.
  const std::size_t n = 16;
  const std::size_t cols = 9;  // deliberately not a power of two
  Rng rng(55);
  std::vector<Complex> base(n * cols);
  for (auto& v : base) {
    v = Complex(static_cast<float>(rng.uniform(-1.0, 1.0)),
                static_cast<float>(rng.uniform(-1.0, 1.0)));
  }
  for (const Schedule sched : {Schedule::kDit, Schedule::kDif}) {
    for (const Direction dir : {Direction::kForward, Direction::kInverse}) {
      const Plan plan(n, sched);
      auto batched = base;
      plan.transform_columns(batched, cols, cols, dir);
      auto scalar = base;
      for (std::size_t c = 0; c < cols; ++c) {
        plan.transform_strided(std::span(scalar).subspan(c), cols, dir);
      }
      for (std::size_t i = 0; i < base.size(); ++i) {
        EXPECT_NEAR(std::abs(batched[i] - scalar[i]), 0.0F, 1e-4F)
            << "schedule " << static_cast<int>(sched) << " dir "
            << static_cast<int>(dir) << " element " << i;
      }
    }
  }
}

TEST(PlanCacheTest, SecondLookupIsAHit) {
  auto& cache = PlanCache::instance();
  cache.clear();
  auto& hits = obs::metrics().counter("fft.plan_cache.hits");
  auto& misses = obs::metrics().counter("fft.plan_cache.misses");
  const auto hits0 = hits.value();
  const auto misses0 = misses.value();

  const auto a = cache.get(64);
  const auto b = cache.get(64);
  EXPECT_EQ(a.get(), b.get());  // shared, not rebuilt
  EXPECT_EQ(misses.value() - misses0, 1);
  EXPECT_EQ(hits.value() - hits0, 1);
  EXPECT_EQ(cache.size(), 1U);
  EXPECT_GT(obs::metrics().gauge("fft.plan_cache.bytes").value(), 0.0);
}

TEST(PlanCacheTest, ScheduleIsPartOfTheKey) {
  auto& cache = PlanCache::instance();
  cache.clear();
  const auto dit = cache.get(32, Schedule::kDit);
  const auto dif = cache.get(32, Schedule::kDif);
  EXPECT_NE(dit.get(), dif.get());
  EXPECT_EQ(cache.size(), 2U);
}

TEST(PlanCacheTest, PlansSurviveClear) {
  auto& cache = PlanCache::instance();
  cache.clear();
  const auto plan = cache.get(16);
  cache.clear();
  EXPECT_EQ(cache.size(), 0U);
  // The outstanding shared_ptr keeps the dropped plan alive and usable.
  std::vector<Complex> data(16, Complex{});
  data[0] = Complex(1.0F, 0.0F);
  plan->transform(data, Direction::kForward);
  EXPECT_NEAR(data[5].real(), 1.0F, 1e-6F);
}

TEST(PlanCacheTest, ConcurrentFirstUseBuildsOnePlan) {
  auto& cache = PlanCache::instance();
  cache.clear();
  auto& misses = obs::metrics().counter("fft.plan_cache.misses");
  const auto misses0 = misses.value();

  constexpr std::size_t kThreads = 8;
  std::vector<std::shared_ptr<const Plan>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &got, t] { got[t] = cache.get(256); });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(misses.value() - misses0, 1);
  EXPECT_EQ(cache.size(), 1U);
  for (std::size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(got[t].get(), got[0].get());
  }
}

// Half-spectrum vs full-complex engine: identical math, half the bins.
class HalfVsFullSpectrum
    : public ::testing::TestWithParam<ConvConfig> {};

TEST_P(HalfVsFullSpectrum, AllThreePassesAgree) {
  const ConvConfig cfg = GetParam();
  const conv::FftConv half(conv::FftConv::Spectrum::kHalf);
  const conv::FftConv full(conv::FftConv::Spectrum::kFull);
  ASSERT_TRUE(half.supports(cfg));
  Rng rng(909);

  Tensor input(cfg.input_shape());
  input.fill_uniform(rng);
  Tensor filters(cfg.filter_shape());
  filters.fill_uniform(rng);
  Tensor grad_output(cfg.output_shape());
  grad_output.fill_uniform(rng);

  Tensor out_half(cfg.output_shape());
  Tensor out_full(cfg.output_shape());
  half.forward(cfg, input, filters, out_half);
  full.forward(cfg, input, filters, out_full);
  EXPECT_LT(max_abs_diff(out_half, out_full), 1e-4);

  Tensor gin_half(cfg.input_shape());
  Tensor gin_full(cfg.input_shape());
  half.backward_data(cfg, grad_output, filters, gin_half);
  full.backward_data(cfg, grad_output, filters, gin_full);
  EXPECT_LT(max_abs_diff(gin_half, gin_full), 1e-4);

  Tensor gw_half(cfg.filter_shape());
  Tensor gw_full(cfg.filter_shape());
  half.backward_filter(cfg, input, grad_output, gw_half);
  full.backward_filter(cfg, input, grad_output, gw_full);
  EXPECT_LT(max_abs_diff(gw_half, gw_full), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, HalfVsFullSpectrum,
    ::testing::Values(
        // batch, input, channels, filters, kernel, stride, pad
        ConvConfig{2, 8, 3, 4, 3, 1, 1},
        ConvConfig{1, 13, 2, 3, 5, 1, 2},   // odd input, pads to 32
        ConvConfig{2, 16, 2, 2, 9, 1, 0},   // paper's large kernel
        ConvConfig{1, 7, 1, 1, 7, 1, 3}));  // kernel == input

}  // namespace
}  // namespace gpucnn::fft
