#include "gpusim/profiler.hpp"

#include <gtest/gtest.h>

namespace gpucnn::gpusim {
namespace {

KernelProfile named_kernel(const char* name, double flops) {
  KernelProfile k;
  k.name = name;
  k.block_threads = 256;
  k.regs_per_thread = 32;
  k.flops = flops;
  k.compute_efficiency = 0.5;
  k.gld_dram_factor = 1.0;
  k.gst_dram_factor = 1.0;
  return k;
}

TEST(Profiler, AggregatesByKernelName) {
  Profiler p(tesla_k40c());
  p.launch(named_kernel("gemm", 1e9));
  p.launch(named_kernel("gemm", 1e9));
  p.launch(named_kernel("im2col", 1e8));
  const auto hot = p.hotspots();
  ASSERT_EQ(hot.size(), 2U);
  EXPECT_EQ(hot[0].name, "gemm");
  EXPECT_EQ(hot[0].launches, 2U);
  EXPECT_GT(hot[0].share, 0.9);
  EXPECT_NEAR(hot[0].share + hot[1].share, 1.0, 1e-9);
}

TEST(Profiler, KernelTimeIsSumOfLaunches) {
  Profiler p(tesla_k40c());
  const auto& m1 = p.launch(named_kernel("a", 1e9));
  const double first = m1.duration_ms;
  p.launch(named_kernel("b", 1e9));
  EXPECT_NEAR(p.kernel_ms(), 2.0 * first, first * 0.01);
}

TEST(Profiler, TransferShare) {
  Profiler p(tesla_k40c());
  p.launch(named_kernel("a", 1e9));
  const double kernel = p.kernel_ms();
  // Pick a transfer costing exactly as much as the kernels: share = 50%.
  const double bytes = kernel * 1e-3 * 6.0e9 -
                       p.device().pcie_latency_us * 1e-6 * 6.0e9;
  p.transfer({"input", TransferDirection::kHostToDevice, bytes, false,
              0.0});
  EXPECT_NEAR(p.transfer_share(), 0.5, 0.01);
  EXPECT_NEAR(p.total_ms(), 2.0 * kernel, kernel * 0.02);
}

TEST(Profiler, WeightedMetricsWeightByRuntime) {
  Profiler p(tesla_k40c());
  auto heavy = named_kernel("heavy", 1e10);
  heavy.warp_exec_efficiency = 1.0;
  auto light = named_kernel("light", 1e8);
  light.warp_exec_efficiency = 0.5;
  p.launch(heavy);
  p.launch(light);
  // Coverage 1.0 includes both; the heavy kernel dominates the average.
  const auto wm = p.weighted_metrics(1.0);
  EXPECT_GT(wm.warp_execution_efficiency, 95.0);
}

TEST(Profiler, CoverageLimitsToTopKernels) {
  Profiler p(tesla_k40c());
  auto heavy = named_kernel("heavy", 1e10);
  heavy.warp_exec_efficiency = 1.0;
  auto light = named_kernel("light", 1e8);
  light.warp_exec_efficiency = 0.5;
  p.launch(heavy);
  p.launch(light);
  // 90% coverage is satisfied by the heavy kernel alone.
  const auto wm = p.weighted_metrics(0.9);
  EXPECT_DOUBLE_EQ(wm.warp_execution_efficiency, 100.0);
}

TEST(Profiler, EmptyProfilerIsZero) {
  Profiler p(tesla_k40c());
  EXPECT_DOUBLE_EQ(p.kernel_ms(), 0.0);
  EXPECT_DOUBLE_EQ(p.transfer_share(), 0.0);
  EXPECT_TRUE(p.hotspots().empty());
}

TEST(Profiler, ResetClearsRecords) {
  Profiler p(tesla_k40c());
  p.launch(named_kernel("a", 1e9));
  p.transfer({"t", TransferDirection::kHostToDevice, 1e6, false, 0.0});
  p.reset();
  EXPECT_DOUBLE_EQ(p.total_ms(), 0.0);
  EXPECT_TRUE(p.launches().empty());
}

}  // namespace
}  // namespace gpucnn::gpusim
