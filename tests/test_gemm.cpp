#include "blas/gemm.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/rng.hpp"

namespace gpucnn::blas {
namespace {

std::vector<float> random_matrix(std::size_t rows, std::size_t cols,
                                 Rng& rng) {
  std::vector<float> m(rows * cols);
  for (auto& v : m) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

TEST(GemmNaive, TwoByTwoHandComputed) {
  // A = [1 2; 3 4], B = [5 6; 7 8] -> C = [19 22; 43 50]
  const std::vector<float> a{1, 2, 3, 4};
  const std::vector<float> b{5, 6, 7, 8};
  std::vector<float> c(4, 0.0F);
  sgemm_naive(Trans::kNo, Trans::kNo, 2, 2, 2, 1.0F, a, 2, b, 2, 0.0F, c, 2);
  EXPECT_FLOAT_EQ(c[0], 19.0F);
  EXPECT_FLOAT_EQ(c[1], 22.0F);
  EXPECT_FLOAT_EQ(c[2], 43.0F);
  EXPECT_FLOAT_EQ(c[3], 50.0F);
}

TEST(GemmNaive, AlphaBetaSemantics) {
  const std::vector<float> a{1, 0, 0, 1};  // identity
  const std::vector<float> b{2, 3, 4, 5};
  std::vector<float> c{10, 10, 10, 10};
  sgemm_naive(Trans::kNo, Trans::kNo, 2, 2, 2, 2.0F, a, 2, b, 2, 0.5F, c, 2);
  EXPECT_FLOAT_EQ(c[0], 2 * 2 + 5.0F);
  EXPECT_FLOAT_EQ(c[3], 2 * 5 + 5.0F);
}

TEST(GemmNaive, TransposeAMatchesManual) {
  // op(A) = A^T where A is k x m = 2x2: A = [1 2; 3 4], A^T = [1 3; 2 4].
  const std::vector<float> a{1, 2, 3, 4};
  const std::vector<float> b{1, 0, 0, 1};
  std::vector<float> c(4, 0.0F);
  sgemm_naive(Trans::kYes, Trans::kNo, 2, 2, 2, 1.0F, a, 2, b, 2, 0.0F, c, 2);
  EXPECT_FLOAT_EQ(c[0], 1.0F);
  EXPECT_FLOAT_EQ(c[1], 3.0F);
  EXPECT_FLOAT_EQ(c[2], 2.0F);
  EXPECT_FLOAT_EQ(c[3], 4.0F);
}

struct GemmCase {
  std::size_t m, n, k;
  Trans ta, tb;
};

class GemmAgreement : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmAgreement, BlockedMatchesNaive) {
  const auto [m, n, k, ta, tb] = GetParam();
  Rng rng(m * 1000 + n * 100 + k);
  const auto a = ta == Trans::kNo ? random_matrix(m, k, rng)
                                  : random_matrix(k, m, rng);
  const auto b = tb == Trans::kNo ? random_matrix(k, n, rng)
                                  : random_matrix(n, k, rng);
  std::vector<float> c_ref(m * n);
  std::vector<float> c_blk(m * n);
  for (std::size_t i = 0; i < m * n; ++i) {
    c_ref[i] = c_blk[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  const std::size_t lda = ta == Trans::kNo ? k : m;
  const std::size_t ldb = tb == Trans::kNo ? n : k;
  sgemm_naive(ta, tb, m, n, k, 1.3F, a, lda, b, ldb, 0.7F, c_ref, n);
  sgemm(ta, tb, m, n, k, 1.3F, a, lda, b, ldb, 0.7F, c_blk, n);
  for (std::size_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(c_ref[i], c_blk[i],
                2e-4F * (1.0F + static_cast<float>(k) * 0.01F))
        << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmAgreement,
    ::testing::Values(
        GemmCase{1, 1, 1, Trans::kNo, Trans::kNo},
        GemmCase{3, 5, 7, Trans::kNo, Trans::kNo},
        GemmCase{64, 64, 64, Trans::kNo, Trans::kNo},
        GemmCase{65, 67, 63, Trans::kNo, Trans::kNo},
        GemmCase{128, 96, 256, Trans::kNo, Trans::kNo},
        GemmCase{200, 300, 100, Trans::kNo, Trans::kNo},
        GemmCase{129, 257, 255, Trans::kNo, Trans::kNo},
        GemmCase{100, 100, 300, Trans::kYes, Trans::kNo},
        GemmCase{100, 300, 100, Trans::kNo, Trans::kYes},
        GemmCase{150, 150, 150, Trans::kYes, Trans::kYes},
        GemmCase{8, 2048, 64, Trans::kNo, Trans::kNo},
        GemmCase{2048, 8, 64, Trans::kNo, Trans::kNo}));

TEST(Gemm, ZeroKScalesByBeta) {
  std::vector<float> c{4.0F, 8.0F};
  sgemm(Trans::kNo, Trans::kNo, 1, 2, 0, 1.0F, {}, 1, {}, 2, 0.5F, c, 2);
  EXPECT_FLOAT_EQ(c[0], 2.0F);
  EXPECT_FLOAT_EQ(c[1], 4.0F);
}

TEST(Gemm, ZeroAlphaOnlyAppliesBeta) {
  Rng rng(3);
  const auto a = random_matrix(70, 70, rng);
  const auto b = random_matrix(70, 70, rng);
  std::vector<float> c(70 * 70, 2.0F);
  sgemm(Trans::kNo, Trans::kNo, 70, 70, 70, 0.0F, a, 70, b, 70, 3.0F, c, 70);
  for (const float v : c) EXPECT_FLOAT_EQ(v, 6.0F);
}

TEST(Gemm, ConvenienceOverloadMatchesExplicit) {
  Rng rng(11);
  const auto a = random_matrix(90, 110, rng);
  const auto b = random_matrix(110, 70, rng);
  std::vector<float> c1(90 * 70, 0.0F);
  std::vector<float> c2(90 * 70, 0.0F);
  sgemm(Trans::kNo, Trans::kNo, 90, 70, 110, 1.0F, a, 110, b, 70, 0.0F, c1,
        70);
  sgemm(Trans::kNo, Trans::kNo, 90, 70, 110, 1.0F, a, b, 0.0F, c2);
  for (std::size_t i = 0; i < c1.size(); ++i) EXPECT_EQ(c1[i], c2[i]);
}

TEST(Gemm, FlopsFormula) {
  EXPECT_DOUBLE_EQ(gemm_flops(10, 20, 30), 12000.0);
}

}  // namespace
}  // namespace gpucnn::blas
