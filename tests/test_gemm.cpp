#include "blas/gemm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "core/cpu_features.hpp"
#include "core/rng.hpp"

namespace gpucnn::blas {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();

// Pins the SIMD dispatch level for one test and restores it after.
class SimdGuard {
 public:
  explicit SimdGuard(simd::Level level)
      : previous_(simd::set_active_for_testing(level)) {}
  ~SimdGuard() { simd::set_active_for_testing(previous_); }
  SimdGuard(const SimdGuard&) = delete;
  SimdGuard& operator=(const SimdGuard&) = delete;

 private:
  simd::Level previous_;
};

std::vector<float> random_matrix(std::size_t rows, std::size_t cols,
                                 Rng& rng) {
  std::vector<float> m(rows * cols);
  for (auto& v : m) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

TEST(GemmNaive, TwoByTwoHandComputed) {
  // A = [1 2; 3 4], B = [5 6; 7 8] -> C = [19 22; 43 50]
  const std::vector<float> a{1, 2, 3, 4};
  const std::vector<float> b{5, 6, 7, 8};
  std::vector<float> c(4, 0.0F);
  sgemm_naive(Trans::kNo, Trans::kNo, 2, 2, 2, 1.0F, a, 2, b, 2, 0.0F, c, 2);
  EXPECT_FLOAT_EQ(c[0], 19.0F);
  EXPECT_FLOAT_EQ(c[1], 22.0F);
  EXPECT_FLOAT_EQ(c[2], 43.0F);
  EXPECT_FLOAT_EQ(c[3], 50.0F);
}

TEST(GemmNaive, AlphaBetaSemantics) {
  const std::vector<float> a{1, 0, 0, 1};  // identity
  const std::vector<float> b{2, 3, 4, 5};
  std::vector<float> c{10, 10, 10, 10};
  sgemm_naive(Trans::kNo, Trans::kNo, 2, 2, 2, 2.0F, a, 2, b, 2, 0.5F, c, 2);
  EXPECT_FLOAT_EQ(c[0], 2 * 2 + 5.0F);
  EXPECT_FLOAT_EQ(c[3], 2 * 5 + 5.0F);
}

TEST(GemmNaive, TransposeAMatchesManual) {
  // op(A) = A^T where A is k x m = 2x2: A = [1 2; 3 4], A^T = [1 3; 2 4].
  const std::vector<float> a{1, 2, 3, 4};
  const std::vector<float> b{1, 0, 0, 1};
  std::vector<float> c(4, 0.0F);
  sgemm_naive(Trans::kYes, Trans::kNo, 2, 2, 2, 1.0F, a, 2, b, 2, 0.0F, c, 2);
  EXPECT_FLOAT_EQ(c[0], 1.0F);
  EXPECT_FLOAT_EQ(c[1], 3.0F);
  EXPECT_FLOAT_EQ(c[2], 2.0F);
  EXPECT_FLOAT_EQ(c[3], 4.0F);
}

struct GemmCase {
  std::size_t m, n, k;
  Trans ta, tb;
};

class GemmAgreement : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmAgreement, BlockedMatchesNaive) {
  const auto [m, n, k, ta, tb] = GetParam();
  Rng rng(m * 1000 + n * 100 + k);
  const auto a = ta == Trans::kNo ? random_matrix(m, k, rng)
                                  : random_matrix(k, m, rng);
  const auto b = tb == Trans::kNo ? random_matrix(k, n, rng)
                                  : random_matrix(n, k, rng);
  std::vector<float> c_ref(m * n);
  std::vector<float> c_blk(m * n);
  for (std::size_t i = 0; i < m * n; ++i) {
    c_ref[i] = c_blk[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  const std::size_t lda = ta == Trans::kNo ? k : m;
  const std::size_t ldb = tb == Trans::kNo ? n : k;
  sgemm_naive(ta, tb, m, n, k, 1.3F, a, lda, b, ldb, 0.7F, c_ref, n);
  sgemm(ta, tb, m, n, k, 1.3F, a, lda, b, ldb, 0.7F, c_blk, n);
  for (std::size_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(c_ref[i], c_blk[i],
                2e-4F * (1.0F + static_cast<float>(k) * 0.01F))
        << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmAgreement,
    ::testing::Values(
        GemmCase{1, 1, 1, Trans::kNo, Trans::kNo},
        GemmCase{3, 5, 7, Trans::kNo, Trans::kNo},
        GemmCase{64, 64, 64, Trans::kNo, Trans::kNo},
        GemmCase{65, 67, 63, Trans::kNo, Trans::kNo},
        GemmCase{128, 96, 256, Trans::kNo, Trans::kNo},
        GemmCase{200, 300, 100, Trans::kNo, Trans::kNo},
        GemmCase{129, 257, 255, Trans::kNo, Trans::kNo},
        GemmCase{100, 100, 300, Trans::kYes, Trans::kNo},
        GemmCase{100, 300, 100, Trans::kNo, Trans::kYes},
        GemmCase{150, 150, 150, Trans::kYes, Trans::kYes},
        GemmCase{8, 2048, 64, Trans::kNo, Trans::kNo},
        GemmCase{2048, 8, 64, Trans::kNo, Trans::kNo}));

// BLAS semantics: beta == 0 must overwrite C without reading it, so a
// C full of NaN (e.g. fresh uninitialised scratch) must come out clean.
TEST(GemmNaive, BetaZeroOverwritesNaNFilledC) {
  Rng rng(21);
  const auto a = random_matrix(5, 7, rng);
  const auto b = random_matrix(7, 6, rng);
  std::vector<float> c(5 * 6, kNaN);
  sgemm_naive(Trans::kNo, Trans::kNo, 5, 6, 7, 1.0F, a, 7, b, 6, 0.0F, c, 6);
  for (const float v : c) EXPECT_FALSE(std::isnan(v));
}

TEST(Gemm, BetaZeroOverwritesNaNFilledCBlockedPath) {
  // 80^3 > 64^3 forces the blocked/packed path.
  Rng rng(22);
  const std::size_t n = 80;
  const auto a = random_matrix(n, n, rng);
  const auto b = random_matrix(n, n, rng);
  std::vector<float> c_blk(n * n, kNaN);
  std::vector<float> c_ref(n * n, 0.0F);
  sgemm(Trans::kNo, Trans::kNo, n, n, n, 1.0F, a, n, b, n, 0.0F, c_blk, n);
  sgemm_naive(Trans::kNo, Trans::kNo, n, n, n, 1.0F, a, n, b, n, 0.0F, c_ref,
              n);
  for (std::size_t i = 0; i < c_blk.size(); ++i) {
    ASSERT_FALSE(std::isnan(c_blk[i])) << "NaN leaked at " << i;
    EXPECT_NEAR(c_ref[i], c_blk[i], 2e-3F);
  }
}

TEST(Gemm, BetaZeroOverwritesNaNFilledCSmallPath) {
  // Below the 64^3 threshold sgemm delegates to the naive kernel; the
  // overwrite contract must hold there too.
  Rng rng(23);
  const auto a = random_matrix(8, 8, rng);
  const auto b = random_matrix(8, 8, rng);
  std::vector<float> c(8 * 8, kNaN);
  sgemm(Trans::kNo, Trans::kNo, 8, 8, 8, 2.0F, a, 8, b, 8, 0.0F, c, 8);
  for (const float v : c) EXPECT_FALSE(std::isnan(v));
}

// Leading dimensions larger than the logical row length: operands are
// embedded in wider storage whose padding is poisoned with NaN, so any
// out-of-row read or write shows up immediately. All four transpose
// combinations go through the blocked path (96*80*72 > 64^3).
TEST(Gemm, PaddedLeadingDimensionsAllTransposeCombos) {
  const std::size_t m = 96, n = 80, k = 72, pad = 5;
  for (const Trans ta : {Trans::kNo, Trans::kYes}) {
    for (const Trans tb : {Trans::kNo, Trans::kYes}) {
      Rng rng(31);
      // Stored A is m x k (kNo) or k x m (kYes); same for B.
      const std::size_t a_rows = ta == Trans::kNo ? m : k;
      const std::size_t lda = (ta == Trans::kNo ? k : m) + pad;
      const std::size_t b_rows = tb == Trans::kNo ? k : n;
      const std::size_t ldb = (tb == Trans::kNo ? n : k) + pad;
      const std::size_t ldc = n + pad;
      std::vector<float> a(a_rows * lda, kNaN);
      std::vector<float> b(b_rows * ldb, kNaN);
      std::vector<float> c_ref(m * ldc, 0.25F);
      std::vector<float> c_blk(m * ldc, 0.25F);
      for (std::size_t r = 0; r < a_rows; ++r) {
        for (std::size_t col = 0; col + pad < lda; ++col) {
          a[r * lda + col] = static_cast<float>(rng.uniform(-1.0, 1.0));
        }
      }
      for (std::size_t r = 0; r < b_rows; ++r) {
        for (std::size_t col = 0; col + pad < ldb; ++col) {
          b[r * ldb + col] = static_cast<float>(rng.uniform(-1.0, 1.0));
        }
      }
      sgemm_naive(ta, tb, m, n, k, 1.1F, a, lda, b, ldb, 0.5F, c_ref, ldc);
      sgemm(ta, tb, m, n, k, 1.1F, a, lda, b, ldb, 0.5F, c_blk, ldc);
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          EXPECT_NEAR(c_ref[i * ldc + j], c_blk[i * ldc + j], 2e-3F)
              << "ta=" << static_cast<int>(ta) << " tb="
              << static_cast<int>(tb) << " at (" << i << "," << j << ")";
        }
        // Padding columns of C must be untouched.
        for (std::size_t j = n; j < ldc; ++j) {
          EXPECT_FLOAT_EQ(c_blk[i * ldc + j], 0.25F);
        }
      }
    }
  }
}

// The blocked path runs whenever m*n*k >= 64^3 regardless of how skewed
// the shape is; sub-micro-tile edges (m < mr, n < nr) exercise the
// zero-padded packing and partial write_tile in the same breath.
INSTANTIATE_TEST_SUITE_P(
    SubMicroTileShapes, GemmAgreement,
    ::testing::Values(GemmCase{2, 2, 70000, Trans::kNo, Trans::kNo},
                      GemmCase{4, 8, 16384, Trans::kNo, Trans::kYes},
                      GemmCase{5, 2048, 40, Trans::kNo, Trans::kNo},
                      GemmCase{2048, 5, 40, Trans::kYes, Trans::kNo},
                      GemmCase{3, 3, 65536, Trans::kYes, Trans::kYes}));

// Shapes straddling the 64^3 = 262144 flop-product dispatch threshold:
// 63*64*64 and 65*64*63 stay naive, 64^3 and 65*65*63 go blocked. The
// answer must agree either way.
INSTANTIATE_TEST_SUITE_P(
    DispatchBoundary, GemmAgreement,
    ::testing::Values(GemmCase{63, 64, 64, Trans::kNo, Trans::kNo},
                      GemmCase{64, 64, 64, Trans::kNo, Trans::kYes},
                      GemmCase{65, 64, 63, Trans::kYes, Trans::kNo},
                      GemmCase{65, 65, 63, Trans::kNo, Trans::kNo}));

// Portable (8x8) and AVX2 (6x16) micro-kernels must agree on the same
// problem. Skipped where the CPU lacks AVX2 — the portable path is then
// the only one and is already covered by the agreement suite.
TEST(Gemm, PortableAndAvx2KernelsAgree) {
  if (!simd::cpu_has_avx2()) {
    GTEST_SKIP() << "CPU lacks AVX2; nothing to compare";
  }
  Rng rng(41);
  const std::size_t m = 130, n = 96, k = 100;
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  std::vector<float> c_portable(m * n, 0.0F);
  std::vector<float> c_avx2(m * n, 0.0F);
  {
    const SimdGuard guard(simd::Level::kPortable);
    ASSERT_EQ(simd::active(), simd::Level::kPortable);
    sgemm(Trans::kNo, Trans::kNo, m, n, k, 1.0F, a, k, b, n, 0.0F,
          c_portable, n);
  }
  {
    const SimdGuard guard(simd::Level::kAvx2);
    ASSERT_EQ(simd::active(), simd::Level::kAvx2);
    sgemm(Trans::kNo, Trans::kNo, m, n, k, 1.0F, a, k, b, n, 0.0F, c_avx2,
          n);
  }
  for (std::size_t i = 0; i < c_portable.size(); ++i) {
    EXPECT_NEAR(c_portable[i], c_avx2[i], 2e-3F) << "at " << i;
  }
}

TEST(Gemm, ZeroKScalesByBeta) {
  std::vector<float> c{4.0F, 8.0F};
  sgemm(Trans::kNo, Trans::kNo, 1, 2, 0, 1.0F, {}, 1, {}, 2, 0.5F, c, 2);
  EXPECT_FLOAT_EQ(c[0], 2.0F);
  EXPECT_FLOAT_EQ(c[1], 4.0F);
}

TEST(Gemm, ZeroAlphaOnlyAppliesBeta) {
  Rng rng(3);
  const auto a = random_matrix(70, 70, rng);
  const auto b = random_matrix(70, 70, rng);
  std::vector<float> c(70 * 70, 2.0F);
  sgemm(Trans::kNo, Trans::kNo, 70, 70, 70, 0.0F, a, 70, b, 70, 3.0F, c, 70);
  for (const float v : c) EXPECT_FLOAT_EQ(v, 6.0F);
}

TEST(Gemm, ConvenienceOverloadMatchesExplicit) {
  Rng rng(11);
  const auto a = random_matrix(90, 110, rng);
  const auto b = random_matrix(110, 70, rng);
  std::vector<float> c1(90 * 70, 0.0F);
  std::vector<float> c2(90 * 70, 0.0F);
  sgemm(Trans::kNo, Trans::kNo, 90, 70, 110, 1.0F, a, 110, b, 70, 0.0F, c1,
        70);
  sgemm(Trans::kNo, Trans::kNo, 90, 70, 110, 1.0F, a, b, 0.0F, c2);
  for (std::size_t i = 0; i < c1.size(); ++i) EXPECT_EQ(c1[i], c2[i]);
}

TEST(Gemm, FlopsFormula) {
  EXPECT_DOUBLE_EQ(gemm_flops(10, 20, 30), 12000.0);
}

// Fused-epilogue agreement: sgemm with an Epilogue must equal the plain
// sgemm followed by the separate bias-broadcast and ReLU passes, bit for
// bit — the property the fused ConvLayer relies on. Sizes cover both the
// small naive fallback and the blocked path (which applies the epilogue
// per write-back tile on the last k-block only).
void reference_epilogue(std::vector<float>& c, std::size_t m,
                        std::size_t n, const float* bias, bool relu) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float& v = c[i * n + j];
      if (bias != nullptr) v += bias[i];
      if (relu) v = v > 0.0F ? v : 0.0F;
    }
  }
}

class GemmEpilogue
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::size_t>> {};

TEST_P(GemmEpilogue, MatchesUnfusedBitForBit) {
  const auto [m, n, k] = GetParam();
  Rng rng(17);
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  const auto bias = random_matrix(m, 1, rng);

  std::vector<float> unfused(m * n, 0.0F);
  sgemm(Trans::kNo, Trans::kNo, m, n, k, 1.0F, a, k, b, n, 0.0F, unfused,
        n);
  reference_epilogue(unfused, m, n, bias.data(), true);

  std::vector<float> fused(m * n, kNaN);  // beta = 0 must overwrite NaN
  sgemm(Trans::kNo, Trans::kNo, m, n, k, 1.0F, a, k, b, n, 0.0F, fused, n,
        Epilogue{.bias = bias.data(), .relu = true});

  for (std::size_t i = 0; i < unfused.size(); ++i) {
    EXPECT_EQ(unfused[i], fused[i]) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmEpilogue,
    ::testing::Values(std::tuple<std::size_t, std::size_t, std::size_t>{
                          8, 12, 16},  // naive small path
                      std::tuple<std::size_t, std::size_t, std::size_t>{
                          96, 130, 80},  // blocked, one k-block
                      std::tuple<std::size_t, std::size_t, std::size_t>{
                          150, 96, 300}  // blocked, multiple k-blocks
                      ));

TEST(GemmEpilogue, BiasOnlyAndReluOnly) {
  Rng rng(23);
  const std::size_t m = 70, n = 90, k = 120;
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  const auto bias = random_matrix(m, 1, rng);

  std::vector<float> plain(m * n, 0.0F);
  sgemm(Trans::kNo, Trans::kNo, m, n, k, 1.0F, a, k, b, n, 0.0F, plain, n);

  std::vector<float> bias_only(m * n, 0.0F);
  sgemm(Trans::kNo, Trans::kNo, m, n, k, 1.0F, a, k, b, n, 0.0F, bias_only,
        n, Epilogue{.bias = bias.data(), .relu = false});
  std::vector<float> relu_only(m * n, 0.0F);
  sgemm(Trans::kNo, Trans::kNo, m, n, k, 1.0F, a, k, b, n, 0.0F, relu_only,
        n, Epilogue{.bias = nullptr, .relu = true});

  auto expected_bias = plain;
  reference_epilogue(expected_bias, m, n, bias.data(), false);
  auto expected_relu = plain;
  reference_epilogue(expected_relu, m, n, nullptr, true);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(bias_only[i], expected_bias[i]) << "at " << i;
    EXPECT_EQ(relu_only[i], expected_relu[i]) << "at " << i;
  }
}

TEST(GemmEpilogue, InactiveEpilogueIsPlainGemm) {
  Rng rng(29);
  const std::size_t m = 40, n = 40, k = 40;
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  std::vector<float> c1(m * n, 0.0F);
  std::vector<float> c2(m * n, 0.0F);
  sgemm(Trans::kNo, Trans::kNo, m, n, k, 1.0F, a, k, b, n, 0.0F, c1, n);
  sgemm(Trans::kNo, Trans::kNo, m, n, k, 1.0F, a, k, b, n, 0.0F, c2, n,
        Epilogue{});
  for (std::size_t i = 0; i < c1.size(); ++i) EXPECT_EQ(c1[i], c2[i]);
}

}  // namespace
}  // namespace gpucnn::blas
