#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"
#include "nn/conv_layer.hpp"
#include "nn/fc_layer.hpp"

namespace gpucnn::nn {
namespace {

Network small_net() {
  Network net;
  net.emplace<ConvLayer>("c",
                         ConvConfig{.batch = 1, .input = 6, .channels = 1,
                                    .filters = 2, .kernel = 3,
                                    .stride = 1});
  net.emplace<FcLayer>("fc", 2 * 4 * 4, 3);
  return net;
}

TEST(Serialize, RoundTripRestoresExactBits) {
  auto a = small_net();
  Rng rng(1);
  a.initialize(rng);
  std::stringstream buf;
  save_parameters(a, buf);

  auto b = small_net();
  Rng other(2);
  b.initialize(other);
  load_parameters(b, buf);

  const auto pa = a.parameters();
  const auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(max_abs_diff(*pa[i], *pb[i]), 0.0) << "tensor " << i;
  }
}

TEST(Serialize, RestoredNetworkComputesIdentically) {
  auto a = small_net();
  Rng rng(3);
  a.initialize(rng);
  std::stringstream buf;
  save_parameters(a, buf);
  auto b = small_net();
  load_parameters(b, buf);

  Tensor in(2, 1, 6, 6);
  in.fill_uniform(rng);
  const Tensor out_a = [&] {
    Tensor t(a.forward(in).shape());
    std::copy(a.forward(in).data().begin(), a.forward(in).data().end(),
              t.data().begin());
    return t;
  }();
  EXPECT_EQ(max_abs_diff(out_a, b.forward(in)), 0.0);
}

TEST(Serialize, RejectsBadMagic) {
  auto net = small_net();
  std::stringstream buf("NOPE-not-a-checkpoint");
  EXPECT_THROW(load_parameters(net, buf), Error);
}

TEST(Serialize, RejectsTruncatedStream) {
  auto net = small_net();
  Rng rng(4);
  net.initialize(rng);
  std::stringstream buf;
  save_parameters(net, buf);
  const std::string full = buf.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_parameters(net, cut), Error);
}

TEST(Serialize, RejectsArchitectureMismatch) {
  auto a = small_net();
  Rng rng(5);
  a.initialize(rng);
  std::stringstream buf;
  save_parameters(a, buf);

  Network different;
  different.emplace<FcLayer>("fc", 8, 2);
  EXPECT_THROW(load_parameters(different, buf), Error);
}

TEST(Serialize, FileRoundTrip) {
  auto a = small_net();
  Rng rng(6);
  a.initialize(rng);
  const std::string path = ::testing::TempDir() + "/gpucnn_ckpt.bin";
  save_parameters(a, path);
  auto b = small_net();
  load_parameters(b, path);
  EXPECT_EQ(max_abs_diff(*a.parameters()[0], *b.parameters()[0]), 0.0);
}

TEST(Serialize, MissingFileThrows) {
  auto net = small_net();
  EXPECT_THROW(load_parameters(net, "/nonexistent/dir/ckpt.bin"), Error);
}

}  // namespace
}  // namespace gpucnn::nn
