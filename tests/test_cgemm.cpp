#include "blas/cgemm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/rng.hpp"

namespace gpucnn::blas {
namespace {

std::vector<Complex> random_cmatrix(std::size_t rows, std::size_t cols,
                                    Rng& rng) {
  std::vector<Complex> m(rows * cols);
  for (auto& v : m) {
    v = Complex(static_cast<float>(rng.uniform(-1.0, 1.0)),
                static_cast<float>(rng.uniform(-1.0, 1.0)));
  }
  return m;
}

// Slow, index-literal oracle for each variant.
Complex oracle_nt_conj(std::span<const Complex> a, std::span<const Complex> b,
                       std::size_t i, std::size_t j, std::size_t k,
                       std::size_t lda, std::size_t ldb) {
  Complex acc{};
  for (std::size_t p = 0; p < k; ++p) {
    acc += a[i * lda + p] * std::conj(b[j * ldb + p]);
  }
  return acc;
}

TEST(CgemmNtConj, MatchesOracle) {
  Rng rng(1);
  const std::size_t m = 5, n = 7, k = 9;
  const auto a = random_cmatrix(m, k, rng);
  const auto b = random_cmatrix(n, k, rng);
  std::vector<Complex> c(m * n, Complex{});
  cgemm_nt_conj(m, n, k, {1.0F, 0.0F}, a, k, b, k, {0.0F, 0.0F}, c, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const Complex want = oracle_nt_conj(a, b, i, j, k, k, k);
      EXPECT_NEAR(std::abs(c[i * n + j] - want), 0.0F, 1e-5F);
    }
  }
}

TEST(CgemmNn, MatchesOracle) {
  Rng rng(2);
  const std::size_t m = 4, n = 6, k = 8;
  const auto a = random_cmatrix(m, k, rng);
  const auto b = random_cmatrix(k, n, rng);
  std::vector<Complex> c(m * n, Complex{});
  cgemm_nn(m, n, k, {1.0F, 0.0F}, a, k, b, n, {0.0F, 0.0F}, c, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      Complex want{};
      for (std::size_t p = 0; p < k; ++p) want += a[i * k + p] * b[p * n + j];
      EXPECT_NEAR(std::abs(c[i * n + j] - want), 0.0F, 1e-5F);
    }
  }
}

TEST(CgemmCtn, MatchesOracle) {
  Rng rng(3);
  const std::size_t m = 6, n = 4, k = 10;
  const auto a = random_cmatrix(k, m, rng);
  const auto b = random_cmatrix(k, n, rng);
  std::vector<Complex> c(m * n, Complex{});
  cgemm_ctn(m, n, k, {1.0F, 0.0F}, a, m, b, n, {0.0F, 0.0F}, c, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      Complex want{};
      for (std::size_t p = 0; p < k; ++p) {
        want += std::conj(a[p * m + i]) * b[p * n + j];
      }
      EXPECT_NEAR(std::abs(c[i * n + j] - want), 0.0F, 1e-5F);
    }
  }
}

TEST(Cgemm, AlphaBetaSemantics) {
  // 1x1x1: c = alpha*a*conj(b) + beta*c.
  const std::vector<Complex> a{{2.0F, 1.0F}};
  const std::vector<Complex> b{{1.0F, -1.0F}};
  std::vector<Complex> c{{10.0F, 0.0F}};
  cgemm_nt_conj(1, 1, 1, {2.0F, 0.0F}, a, 1, b, 1, {0.5F, 0.0F}, c, 1);
  // a * conj(b) = (2+i)(1+i) = 1 + 3i; alpha* = 2+6i; +beta*c = 7+6i.
  EXPECT_NEAR(c[0].real(), 7.0F, 1e-6F);
  EXPECT_NEAR(c[0].imag(), 6.0F, 1e-6F);
}

TEST(Cgemm, ConjugationActuallyConjugates) {
  const std::vector<Complex> a{{0.0F, 1.0F}};
  const std::vector<Complex> b{{0.0F, 1.0F}};
  std::vector<Complex> c{{0.0F, 0.0F}};
  // i * conj(i) = i * (-i) = 1.
  cgemm_nt_conj(1, 1, 1, {1.0F, 0.0F}, a, 1, b, 1, {0.0F, 0.0F}, c, 1);
  EXPECT_NEAR(c[0].real(), 1.0F, 1e-6F);
  EXPECT_NEAR(c[0].imag(), 0.0F, 1e-6F);
}

TEST(Cgemm, EmptyDimensionsAreNoops) {
  std::vector<Complex> c{{3.0F, 4.0F}};
  cgemm_nn(0, 0, 5, {1.0F, 0.0F}, {}, 1, {}, 1, {0.0F, 0.0F}, c, 1);
  EXPECT_EQ(c[0], (Complex{3.0F, 4.0F}));
}

TEST(Cgemm, FlopsFormula) {
  EXPECT_DOUBLE_EQ(cgemm_flops(2, 3, 4), 8.0 * 24);
}

// BLAS beta == 0 semantics: C is overwritten without being read, so a
// NaN-poisoned C (fresh scratch) must come out finite for all three
// variants. Shapes are big enough to hit the vectorised paths.
TEST(Cgemm, BetaZeroOverwritesNaNFilledC) {
  constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
  Rng rng(9);
  const std::size_t m = 8, n = 8, k = 8;
  const auto a = random_cmatrix(m, k, rng);
  const auto b = random_cmatrix(n, k, rng);  // row-major n x k for nt
  const auto b_nn = random_cmatrix(k, n, rng);
  const std::vector<Complex> poison(m * n, Complex{kNaN, kNaN});

  std::vector<Complex> c = poison;
  cgemm_nt_conj(m, n, k, {1.0F, 0.0F}, a, k, b, k, {0.0F, 0.0F}, c, n);
  for (const Complex& v : c) {
    EXPECT_FALSE(std::isnan(v.real()) || std::isnan(v.imag()));
  }

  c = poison;
  cgemm_nn(m, n, k, {1.0F, 0.0F}, a, k, b_nn, n, {0.0F, 0.0F}, c, n);
  for (const Complex& v : c) {
    EXPECT_FALSE(std::isnan(v.real()) || std::isnan(v.imag()));
  }

  c = poison;
  // ctn: a is k x m (conjugate-transposed), output m x n.
  const auto a_ct = random_cmatrix(k, m, rng);
  cgemm_ctn(m, n, k, {1.0F, 0.0F}, a_ct, m, b_nn, n, {0.0F, 0.0F}, c, n);
  for (const Complex& v : c) {
    EXPECT_FALSE(std::isnan(v.real()) || std::isnan(v.imag()));
  }
}

}  // namespace
}  // namespace gpucnn::blas
