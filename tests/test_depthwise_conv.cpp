// DepthwiseConv against the DirectConv oracle on all three passes, the
// fused epilogue's bit-identity contract, GemmConv's pointwise (1x1)
// im2col-skip fast path, and a seeded depthwise fuzz batch.
#include "conv/depthwise_conv.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/conv_fuzz.hpp"
#include "conv/direct_conv.hpp"
#include "conv/gemm_conv.hpp"
#include "core/rng.hpp"

namespace gpucnn::conv {
namespace {

class DepthwiseConvTest : public ::testing::TestWithParam<ConvConfig> {};

TEST_P(DepthwiseConvTest, ForwardMatchesDirect) {
  const ConvConfig cfg = GetParam();
  DepthwiseConv engine;
  ASSERT_TRUE(engine.supports(cfg));

  Rng rng(61);
  Tensor x(cfg.input_shape());
  x.fill_uniform(rng);
  Tensor w(cfg.filter_shape());
  w.fill_uniform(rng);

  DirectConv direct;
  Tensor want(cfg.output_shape());
  direct.forward(cfg, x, w, want);
  Tensor got(cfg.output_shape());
  engine.forward(cfg, x, w, got);
  EXPECT_LT(max_abs_diff(want, got), 1e-5);
}

TEST_P(DepthwiseConvTest, BackwardDataMatchesDirect) {
  const ConvConfig cfg = GetParam();
  Rng rng(62);
  Tensor w(cfg.filter_shape());
  w.fill_uniform(rng);
  Tensor gout(cfg.output_shape());
  gout.fill_uniform(rng);

  DirectConv direct;
  Tensor want(cfg.input_shape());
  direct.backward_data(cfg, gout, w, want);
  DepthwiseConv engine;
  Tensor got(cfg.input_shape());
  engine.backward_data(cfg, gout, w, got);
  EXPECT_LT(max_abs_diff(want, got), 1e-5);
}

TEST_P(DepthwiseConvTest, BackwardFilterMatchesDirect) {
  const ConvConfig cfg = GetParam();
  Rng rng(63);
  Tensor x(cfg.input_shape());
  x.fill_uniform(rng);
  Tensor gout(cfg.output_shape());
  gout.fill_uniform(rng);

  DirectConv direct;
  Tensor want(cfg.filter_shape());
  direct.backward_filter(cfg, x, gout, want);
  DepthwiseConv engine;
  Tensor got(cfg.filter_shape());
  engine.backward_filter(cfg, x, gout, got);
  EXPECT_LT(max_abs_diff(want, got), 1e-4);
}

TEST_P(DepthwiseConvTest, FusedEpilogueIsBitIdenticalToUnfused) {
  // forward_fused must equal forward() + (v += bias; v = max(v, 0))
  // exactly: the epilogue is one float add and one max per element, both
  // of which round identically in the scalar and SIMD kernels.
  const ConvConfig cfg = GetParam();
  Rng rng(64);
  Tensor x(cfg.input_shape());
  x.fill_uniform(rng);
  Tensor w(cfg.filter_shape());
  w.fill_uniform(rng);
  std::vector<float> bias(cfg.filters);
  for (auto& b : bias) b = static_cast<float>(rng.uniform(-0.5, 0.5));

  DepthwiseConv engine;
  Tensor fused(cfg.output_shape());
  ASSERT_TRUE(engine.forward_fused(cfg, x, w, bias, /*relu=*/true, fused));

  Tensor want(cfg.output_shape());
  engine.forward(cfg, x, w, want);
  const std::size_t o2 = cfg.output() * cfg.output();
  for (std::size_t n = 0; n < cfg.batch; ++n) {
    for (std::size_t f = 0; f < cfg.filters; ++f) {
      float* row = want.plane(n, f);
      for (std::size_t i = 0; i < o2; ++i) {
        row[i] += bias[f];
        row[i] = std::max(row[i], 0.0F);
      }
    }
  }
  EXPECT_EQ(max_abs_diff(want, fused), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DepthwiseConvTest,
    ::testing::Values(
        // Multiplier 1, the MobileNet bread-and-butter 3x3 pad-1.
        ConvConfig{.batch = 2, .input = 12, .channels = 8, .filters = 8,
                   .kernel = 3, .stride = 1, .pad = 1, .groups = 8},
        // Channel multiplier 2: filter f reads channel f / 2.
        ConvConfig{.batch = 2, .input = 9, .channels = 6, .filters = 12,
                   .kernel = 3, .stride = 1, .pad = 1, .groups = 6},
        // Multiplier 3 with stride 2 (strided per-pixel path).
        ConvConfig{.batch = 1, .input = 11, .channels = 4, .filters = 12,
                   .kernel = 5, .stride = 2, .pad = 2, .groups = 4},
        // Halo-heavy: pad == kernel, every border tap out of range.
        ConvConfig{.batch = 1, .input = 7, .channels = 3, .filters = 3,
                   .kernel = 3, .stride = 1, .pad = 3, .groups = 3},
        // 1x1 depthwise (a per-channel scale) and single channel.
        ConvConfig{.batch = 2, .input = 8, .channels = 5, .filters = 5,
                   .kernel = 1, .stride = 1, .pad = 0, .groups = 5},
        ConvConfig{.batch = 1, .input = 16, .channels = 1, .filters = 2,
                   .kernel = 3, .stride = 1, .pad = 1, .groups = 1}));

TEST(DepthwiseSupports, OnlyDepthwiseDegenerateGroupings) {
  DepthwiseConv engine;
  // Grouped but not depthwise: two channels per group.
  EXPECT_FALSE(engine.supports({.batch = 1, .input = 8, .channels = 4,
                                .filters = 4, .kernel = 3, .stride = 1,
                                .groups = 2}));
  // Ungrouped multi-channel.
  EXPECT_FALSE(engine.supports({.batch = 1, .input = 8, .channels = 4,
                                .filters = 4, .kernel = 3, .stride = 1,
                                .groups = 1}));
  // Depthwise with a multiplier.
  EXPECT_TRUE(engine.supports({.batch = 1, .input = 8, .channels = 4,
                               .filters = 8, .kernel = 3, .stride = 1,
                               .groups = 4}));
  // A single-channel ungrouped conv is trivially depthwise.
  EXPECT_TRUE(engine.supports({.batch = 1, .input = 8, .channels = 1,
                               .filters = 3, .kernel = 3, .stride = 1,
                               .groups = 1}));
}

// RAII toggle so a failing assertion cannot leave the fast path off for
// the rest of the test binary.
struct FastPathGuard {
  explicit FastPathGuard(bool on) : previous(set_pointwise_fast_path(on)) {}
  ~FastPathGuard() { set_pointwise_fast_path(previous); }
  bool previous;
};

TEST(PointwiseFastPath, BitIdenticalToIm2colOnAllPasses) {
  // On 1x1 stride-1 pad-0 shapes the column matrix IS the input plane
  // block, so skipping im2col must be exactly bit-identical, not merely
  // close — both paths feed the same operands to the same sgemm.
  const ConvConfig configs[] = {
      {.batch = 2, .input = 14, .channels = 8, .filters = 16, .kernel = 1,
       .stride = 1, .pad = 0, .groups = 1},
      {.batch = 1, .input = 7, .channels = 6, .filters = 9, .kernel = 1,
       .stride = 1, .pad = 0, .groups = 3},
  };
  for (const ConvConfig& cfg : configs) {
    Rng rng(65);
    Tensor x(cfg.input_shape());
    x.fill_uniform(rng);
    Tensor w(cfg.filter_shape());
    w.fill_uniform(rng);
    Tensor gout(cfg.output_shape());
    gout.fill_uniform(rng);
    std::vector<float> bias(cfg.filters);
    for (auto& b : bias) b = static_cast<float>(rng.uniform(-0.5, 0.5));

    GemmConv engine;
    Tensor fast_y(cfg.output_shape());
    Tensor fast_fused(cfg.output_shape());
    Tensor fast_gx(cfg.input_shape());
    Tensor fast_gw(cfg.filter_shape());
    Tensor slow_y(cfg.output_shape());
    Tensor slow_fused(cfg.output_shape());
    Tensor slow_gx(cfg.input_shape());
    Tensor slow_gw(cfg.filter_shape());
    {
      FastPathGuard guard(true);
      engine.forward(cfg, x, w, fast_y);
      ASSERT_TRUE(
          engine.forward_fused(cfg, x, w, bias, /*relu=*/true, fast_fused));
      engine.backward_data(cfg, gout, w, fast_gx);
      engine.backward_filter(cfg, x, gout, fast_gw);
    }
    {
      FastPathGuard guard(false);
      engine.forward(cfg, x, w, slow_y);
      ASSERT_TRUE(
          engine.forward_fused(cfg, x, w, bias, /*relu=*/true, slow_fused));
      engine.backward_data(cfg, gout, w, slow_gx);
      engine.backward_filter(cfg, x, gout, slow_gw);
    }
    EXPECT_EQ(max_abs_diff(fast_y, slow_y), 0.0);
    EXPECT_EQ(max_abs_diff(fast_fused, slow_fused), 0.0);
    EXPECT_EQ(max_abs_diff(fast_gx, slow_gx), 0.0);
    EXPECT_EQ(max_abs_diff(fast_gw, slow_gw), 0.0);
  }
}

TEST(PointwiseFastPath, StridedOrPaddedOneByOneStaysOnIm2col) {
  // 1x1 with stride or pad is NOT the identity lowering; those shapes
  // must keep the staged path and still match DirectConv.
  const ConvConfig cfg{.batch = 1, .input = 9, .channels = 4, .filters = 6,
                       .kernel = 1, .stride = 2, .pad = 0, .groups = 1};
  Rng rng(66);
  Tensor x(cfg.input_shape());
  x.fill_uniform(rng);
  Tensor w(cfg.filter_shape());
  w.fill_uniform(rng);

  DirectConv direct;
  Tensor want(cfg.output_shape());
  direct.forward(cfg, x, w, want);
  GemmConv engine;
  Tensor got(cfg.output_shape());
  engine.forward(cfg, x, w, got);
  EXPECT_LT(max_abs_diff(want, got), 1e-5);
}

TEST(DepthwiseFuzz, FortyConfigBatchFindsNoFailures) {
  analysis::FuzzOptions options;
  options.seed = 11;
  options.count = 40;
  options.depthwise = true;
  const analysis::FuzzReport report = analysis::run_fuzz(options);
  EXPECT_EQ(report.configs_run, options.count);
  EXPECT_GT(report.engine_checks, 0U);
  for (const auto& failure : report.failures) {
    ADD_FAILURE() << '[' << failure.index << "] "
                  << failure.config.to_string() << ": " << failure.what
                  << "\n  repro: "
                  << analysis::repro_command(options.seed, failure.index,
                                             /*depthwise=*/true);
  }
}

}  // namespace
}  // namespace gpucnn::conv
