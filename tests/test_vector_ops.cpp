#include "blas/vector_ops.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/error.hpp"

namespace gpucnn::blas {
namespace {

TEST(VectorOps, Axpy) {
  const std::vector<float> x{1, 2, 3};
  std::vector<float> y{10, 20, 30};
  axpy(2.0F, x, y);
  EXPECT_EQ(y, (std::vector<float>{12, 24, 36}));
}

TEST(VectorOps, AxpySizeMismatchThrows) {
  const std::vector<float> x{1, 2};
  std::vector<float> y{1};
  EXPECT_THROW(axpy(1.0F, x, y), Error);
}

TEST(VectorOps, Scale) {
  std::vector<float> x{2, 4, 6};
  scale(0.5F, x);
  EXPECT_EQ(x, (std::vector<float>{1, 2, 3}));
}

TEST(VectorOps, DotAccumulatesInDouble) {
  const std::vector<float> x{1, 2, 3, 4};
  const std::vector<float> y{4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(dot(x, y), 20.0);
}

TEST(VectorOps, AddBiasPerChannel) {
  // outer=2, channels=2, inner=3
  std::vector<float> data(12, 0.0F);
  const std::vector<float> bias{1.0F, -2.0F};
  add_bias(data, bias, 2, 2, 3);
  for (std::size_t o = 0; o < 2; ++o) {
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(data[(o * 2 + 0) * 3 + i], 1.0F);
      EXPECT_EQ(data[(o * 2 + 1) * 3 + i], -2.0F);
    }
  }
}

TEST(VectorOps, AddBiasValidatesSizes) {
  std::vector<float> data(11, 0.0F);
  const std::vector<float> bias{1.0F, 2.0F};
  EXPECT_THROW(add_bias(data, bias, 2, 2, 3), Error);
}

TEST(VectorOps, ReduceBiasGradSumsChannels) {
  // outer=2, channels=2, inner=2; channel 0 holds ones, channel 1 twos.
  std::vector<float> data{1, 1, 2, 2, 1, 1, 2, 2};
  std::vector<float> grad(2, 0.5F);
  reduce_bias_grad(data, grad, 2, 2, 2);
  EXPECT_FLOAT_EQ(grad[0], 0.5F + 4.0F);
  EXPECT_FLOAT_EQ(grad[1], 0.5F + 8.0F);
}

TEST(VectorOps, ReduceBiasGradValidatesSizes) {
  std::vector<float> data(8, 0.0F);
  std::vector<float> grad(3, 0.0F);
  EXPECT_THROW(reduce_bias_grad(data, grad, 2, 2, 2), Error);
}

}  // namespace
}  // namespace gpucnn::blas
