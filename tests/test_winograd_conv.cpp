// The rebuilt Winograd engine's contracts, beyond the direct-agreement
// suite in test_winograd.cpp: the scalar transform identities the
// scattered-GEMM formulation is built on, bit-identity of the fused
// epilogue, the prepacked-panel lifecycle, F(2x2,3x3)-vs-F(4x4,3x3)
// agreement on all three passes, and the fallback counter.
#include "conv/winograd_conv.hpp"

#include <array>
#include <vector>

#include <gtest/gtest.h>

#include "conv/direct_conv.hpp"
#include "core/rng.hpp"
#include "obs/metrics.hpp"

namespace gpucnn::conv {
namespace {

constexpr std::array<WinogradTile, 2> kTiles{WinogradTile::kF2,
                                             WinogradTile::kF4};

std::size_t alpha_of(WinogradTile tile) {
  return tile == WinogradTile::kF2 ? 4U : 6U;
}

const char* label_of(WinogradTile tile) {
  return tile == WinogradTile::kF2 ? "F(2x2,3x3)" : "F(4x4,3x3)";
}

// --- Transform identities -------------------------------------------------

TEST(WinogradTransforms, RoundTripEqualsDirectTileConvolution) {
  // The algorithm's defining identity, per tile:
  //   A^T [(G g G^T) .* (B^T d B)] A  ==  conv_valid(d, g)
  // Checked against the direct engine on a single alpha x alpha image.
  for (const WinogradTile tile : kTiles) {
    const std::size_t alpha = alpha_of(tile);
    const std::size_t m = alpha - 2;
    const ConvConfig cfg{.batch = 1, .input = alpha, .channels = 1,
                         .filters = 1, .kernel = 3, .stride = 1};
    Rng rng(31);
    Tensor d(cfg.input_shape());
    d.fill_uniform(rng);
    Tensor g(cfg.filter_shape());
    g.fill_uniform(rng);

    std::vector<float> v(alpha * alpha);
    std::vector<float> u(alpha * alpha);
    std::vector<float> prod(alpha * alpha);
    std::vector<float> y(m * m);
    wino_detail::transform_data(tile, d.data().data(), v.data());
    wino_detail::transform_filter(tile, g.data().data(), u.data());
    for (std::size_t i = 0; i < prod.size(); ++i) prod[i] = u[i] * v[i];
    wino_detail::transform_output(tile, prod.data(), y.data());

    Tensor want(cfg.output_shape());
    DirectConv{}.forward(cfg, d, g, want);
    const std::span<const float> ref = want.data();
    double max_diff = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      max_diff =
          std::max(max_diff, static_cast<double>(std::abs(y[i] - ref[i])));
    }
    EXPECT_LT(max_diff, 1e-5) << label_of(tile);
  }
}

TEST(WinogradTransforms, CentreDeltaFilterExtractsTheTileInterior) {
  // conv_valid(d, centre delta) is the interior m x m of the tile, so
  // the three transforms composed around the delta spectrum must act as
  // that restriction — a joint identity on B, G and A.
  for (const WinogradTile tile : kTiles) {
    const std::size_t alpha = alpha_of(tile);
    const std::size_t m = alpha - 2;
    std::array<float, 9> g{};
    g[4] = 1.0F;  // centre tap
    Rng rng(30);
    std::vector<float> d(alpha * alpha);
    for (auto& x : d) x = static_cast<float>(rng.uniform(-1.0, 1.0));

    std::vector<float> u(alpha * alpha);
    std::vector<float> v(alpha * alpha);
    std::vector<float> prod(alpha * alpha);
    std::vector<float> y(m * m);
    wino_detail::transform_filter(tile, g.data(), u.data());
    wino_detail::transform_data(tile, d.data(), v.data());
    for (std::size_t i = 0; i < prod.size(); ++i) prod[i] = u[i] * v[i];
    wino_detail::transform_output(tile, prod.data(), y.data());
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < m; ++c) {
        EXPECT_NEAR(y[r * m + c], d[(r + 1) * alpha + (c + 1)], 1e-5)
            << label_of(tile) << " at (" << r << "," << c << ")";
      }
    }
  }
}

TEST(WinogradTransforms, TransformsAreLinear) {
  // Each transform is a fixed linear map; scattering tiles into SoA
  // planes and batching GEMMs over them relies on exactly this.
  for (const WinogradTile tile : kTiles) {
    const std::size_t alpha = alpha_of(tile);
    Rng rng(32);
    std::vector<float> a(alpha * alpha);
    std::vector<float> b(alpha * alpha);
    for (auto& x : a) x = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto& x : b) x = static_cast<float>(rng.uniform(-1.0, 1.0));
    std::vector<float> sum(alpha * alpha);
    for (std::size_t i = 0; i < sum.size(); ++i) sum[i] = a[i] + b[i];

    std::vector<float> va(alpha * alpha);
    std::vector<float> vb(alpha * alpha);
    std::vector<float> vsum(alpha * alpha);
    wino_detail::transform_data(tile, a.data(), va.data());
    wino_detail::transform_data(tile, b.data(), vb.data());
    wino_detail::transform_data(tile, sum.data(), vsum.data());
    for (std::size_t i = 0; i < vsum.size(); ++i) {
      EXPECT_NEAR(vsum[i], va[i] + vb[i], 1e-5) << label_of(tile);
    }
  }
}

// --- Fused epilogue -------------------------------------------------------

TEST(WinogradFused, BiasReluMatchesUnfusedBitForBit) {
  // The epilogue rides the inverse transform's write-back: add-then-max
  // in the same float order as the separate passes, so the comparison
  // demands exact equality, not tolerance.
  const ConvConfig cfg{.batch = 2, .input = 11, .channels = 3, .filters = 4,
                       .kernel = 3, .stride = 1, .pad = 1};
  Rng rng(33);
  Tensor in(cfg.input_shape());
  in.fill_uniform(rng);
  Tensor w(cfg.filter_shape());
  w.fill_uniform(rng);
  std::vector<float> bias(cfg.filters);
  for (auto& b : bias) b = static_cast<float>(rng.uniform(-0.5, 0.5));

  for (const WinogradTile tile : kTiles) {
    const WinogradConv engine(tile);
    Tensor unfused(cfg.output_shape());
    engine.forward(cfg, in, w, unfused);
    const std::size_t plane = cfg.output() * cfg.output();
    const std::span<float> data = unfused.data();
    for (std::size_t n = 0; n < cfg.batch; ++n) {
      for (std::size_t f = 0; f < cfg.filters; ++f) {
        const std::span<float> p =
            data.subspan((n * cfg.filters + f) * plane, plane);
        for (std::size_t i = 0; i < plane; ++i) {
          p[i] = std::max(0.0F, p[i] + bias[f]);
        }
      }
    }
    Tensor fused(cfg.output_shape());
    ASSERT_TRUE(engine.forward_fused(cfg, in, w, bias, /*relu=*/true, fused))
        << label_of(tile);
    EXPECT_EQ(max_abs_diff(unfused, fused), 0.0) << label_of(tile);
  }
}

// --- Prepacked panels -----------------------------------------------------

TEST(WinogradPrepack, PackBuildsOnePanelPerTilePosition) {
  const ConvConfig cfg{.batch = 1, .input = 12, .channels = 5, .filters = 6,
                       .kernel = 3, .stride = 1, .pad = 1};
  Rng rng(34);
  Tensor w(cfg.filter_shape());
  w.fill_uniform(rng);

  const PackedFilters packed = prepack_filters(cfg, w);
  EXPECT_EQ(packed.winograd_f2.size(), winograd_positions(WinogradTile::kF2));
  EXPECT_EQ(packed.winograd_f4.size(), winograd_positions(WinogradTile::kF4));
  EXPECT_EQ(packed.winograd_f2_data.size(),
            16 * cfg.filters * cfg.channels);
  EXPECT_EQ(packed.winograd_f4_data.size(),
            36 * cfg.filters * cfg.channels);
  // The pack accounts for the panels it owns.
  std::size_t gemm_only = 0;
  for (const auto& g : packed.groups) gemm_only += g.bytes();
  EXPECT_GT(packed.bytes(), gemm_only);
}

TEST(WinogradPrepack, IneligibleConfigsGetNoWinogradSections) {
  const ConvConfig cfg{.batch = 1, .input = 12, .channels = 2, .filters = 2,
                       .kernel = 5, .stride = 1, .pad = 2};
  Rng rng(35);
  Tensor w(cfg.filter_shape());
  w.fill_uniform(rng);
  const PackedFilters packed = prepack_filters(cfg, w);
  EXPECT_TRUE(packed.winograd_f2.empty());
  EXPECT_TRUE(packed.winograd_f4.empty());
  EXPECT_TRUE(packed.winograd_f2_data.empty());
  EXPECT_TRUE(packed.winograd_f4_data.empty());
}

TEST(WinogradPrepack, PrepackedForwardIsBitIdenticalToStaged) {
  const ConvConfig cfg{.batch = 2, .input = 14, .channels = 4, .filters = 5,
                       .kernel = 3, .stride = 1, .pad = 1};
  Rng rng(36);
  Tensor in(cfg.input_shape());
  in.fill_uniform(rng);
  Tensor w(cfg.filter_shape());
  w.fill_uniform(rng);
  std::vector<float> bias(cfg.filters);
  for (auto& b : bias) b = static_cast<float>(rng.uniform(-0.5, 0.5));
  const PackedFilters packed = prepack_filters(cfg, w);

  for (const WinogradTile tile : kTiles) {
    const WinogradConv engine(tile);
    for (const bool relu : {false, true}) {
      Tensor staged(cfg.output_shape());
      ASSERT_TRUE(engine.forward_fused(cfg, in, w, bias, relu, staged));
      Tensor prepacked(cfg.output_shape());
      ASSERT_TRUE(engine.forward_prepacked(cfg, in, packed, w, bias, relu,
                                           prepacked))
          << label_of(tile);
      EXPECT_EQ(max_abs_diff(staged, prepacked), 0.0)
          << label_of(tile) << " relu=" << relu;
    }
  }
}

TEST(WinogradPrepack, PackWithoutPanelsFallsBackAndCounts) {
  const ConvConfig cfg{.batch = 1, .input = 8, .channels = 2, .filters = 2,
                       .kernel = 3, .stride = 1, .pad = 1};
  Rng rng(37);
  Tensor in(cfg.input_shape());
  in.fill_uniform(rng);
  Tensor w(cfg.filter_shape());
  w.fill_uniform(rng);
  Tensor out(cfg.output_shape());

  const auto& fallbacks =
      obs::metrics().counter("conv.winograd.fallbacks");
  const std::int64_t before = fallbacks.value();
  const PackedFilters empty_pack;  // no winograd sections at all
  EXPECT_FALSE(WinogradConv{}.forward_prepacked(cfg, in, empty_pack, w, {},
                                                false, out));
  EXPECT_EQ(fallbacks.value(), before + 1);
}

// --- Tile-size agreement --------------------------------------------------

TEST(WinogradTileAgreement, F2AndF4AgreeOnAllThreePasses) {
  // Same contract as the fuzzer's cross-check: both tile sizes are the
  // same convolution, differing only in rounding.
  const ConvConfig cfg{.batch = 2, .input = 13, .channels = 5, .filters = 4,
                       .kernel = 3, .stride = 1, .pad = 1};
  const WinogradConv f2(WinogradTile::kF2);
  const WinogradConv f4(WinogradTile::kF4);
  Rng rng(38);
  Tensor in(cfg.input_shape());
  in.fill_uniform(rng);
  Tensor w(cfg.filter_shape());
  w.fill_uniform(rng);
  Tensor gout(cfg.output_shape());
  gout.fill_uniform(rng);

  Tensor fwd2(cfg.output_shape());
  Tensor fwd4(cfg.output_shape());
  f2.forward(cfg, in, w, fwd2);
  f4.forward(cfg, in, w, fwd4);
  EXPECT_LT(max_abs_diff(fwd2, fwd4),
            1e-4 * (1.0 + static_cast<double>(cfg.channels)));

  Tensor gin2(cfg.input_shape());
  Tensor gin4(cfg.input_shape());
  f2.backward_data(cfg, gout, w, gin2);
  f4.backward_data(cfg, gout, w, gin4);
  EXPECT_LT(max_abs_diff(gin2, gin4),
            1e-4 * (1.0 + static_cast<double>(cfg.filters)));

  Tensor gw2(cfg.filter_shape());
  Tensor gw4(cfg.filter_shape());
  f2.backward_filter(cfg, in, gout, gw2);
  f4.backward_filter(cfg, in, gout, gw4);
  const double tol = 1e-4 * (1.0 + 0.05 * static_cast<double>(cfg.batch) *
                                       static_cast<double>(cfg.output()));
  EXPECT_LT(max_abs_diff(gw2, gw4), tol);
}

TEST(WinogradTileAgreement, EngineVariantsAreDistinct) {
  EXPECT_EQ(WinogradConv{}.name(), "winograd");
  EXPECT_EQ(WinogradConv{WinogradTile::kF4}.name(), "winograd-f4");
  EXPECT_EQ(winograd_positions(WinogradTile::kF2), 16U);
  EXPECT_EQ(winograd_positions(WinogradTile::kF4), 36U);
  // Both own the same shape family.
  const ConvConfig eligible{.batch = 1, .input = 8, .channels = 1,
                            .filters = 1, .kernel = 3, .stride = 1,
                            .pad = 2};
  EXPECT_TRUE(WinogradConv{WinogradTile::kF4}.supports(eligible));
  EXPECT_FALSE(WinogradConv{WinogradTile::kF4}.supports(
      {.batch = 1, .input = 8, .channels = 2, .filters = 2, .kernel = 3,
       .stride = 1, .pad = 1, .groups = 2}));
}

}  // namespace
}  // namespace gpucnn::conv
