#include "analysis/layer_profiler.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "nn/model_spec.hpp"

namespace gpucnn::analysis {
namespace {

TEST(LayerProfiler, OneEntryPerLayerWithPositiveTimes) {
  auto net = nn::lenet5(4).instantiate();
  Rng rng(1);
  net.initialize(rng);
  Tensor input(4, 1, 32, 32);
  input.fill_uniform(rng);
  const auto profile = profile_network(net, input, 2);
  EXPECT_EQ(profile.layers.size(), net.size());
  EXPECT_GT(profile.total_ms, 0.0);
  double sum = 0.0;
  for (const auto& l : profile.layers) {
    EXPECT_GE(l.forward_ms, 0.0) << l.name;
    EXPECT_GE(l.backward_ms, 0.0) << l.name;
    sum += l.total_ms();
  }
  EXPECT_NEAR(sum, profile.total_ms, 1e-9);
}

TEST(LayerProfiler, ConvDominatesLeNet) {
  // The paper's Fig. 2 conclusion reproduced on real CPU numerics: the
  // convolutional layers take the bulk of the iteration.
  auto net = nn::lenet5(16).instantiate();
  Rng rng(2);
  net.initialize(rng);
  Tensor input(16, 1, 32, 32);
  input.fill_uniform(rng);
  const auto profile = profile_network(net, input, 3);
  const auto shares = profile.share_by_type();
  ASSERT_TRUE(shares.count("conv"));
  EXPECT_GT(shares.at("conv"), 0.5);
}

TEST(LayerProfiler, SharesSumToOne) {
  auto net = nn::lenet5(2).instantiate();
  Rng rng(3);
  net.initialize(rng);
  Tensor input(2, 1, 32, 32);
  input.fill_uniform(rng);
  const auto profile = profile_network(net, input, 1);
  double total = 0.0;
  for (const auto& [type, share] : profile.share_by_type()) total += share;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(LayerProfiler, DoesNotUpdateParameters) {
  auto net = nn::lenet5(2).instantiate();
  Rng rng(4);
  net.initialize(rng);
  const Tensor before = [&] {
    Tensor t(net.parameters()[0]->shape());
    std::copy(net.parameters()[0]->data().begin(),
              net.parameters()[0]->data().end(), t.data().begin());
    return t;
  }();
  Tensor input(2, 1, 32, 32);
  input.fill_uniform(rng);
  (void)profile_network(net, input, 1);
  EXPECT_EQ(max_abs_diff(before, *net.parameters()[0]), 0.0);
}

TEST(LayerProfiler, RejectsZeroIterations) {
  auto net = nn::lenet5(2).instantiate();
  Tensor input(2, 1, 32, 32);
  EXPECT_THROW(profile_network(net, input, 0), Error);
}

}  // namespace
}  // namespace gpucnn::analysis
