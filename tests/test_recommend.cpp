#include "analysis/recommend.hpp"

#include <gtest/gtest.h>

#include "analysis/sweep.hpp"

namespace gpucnn::analysis {
namespace {

using frameworks::FrameworkId;

TEST(Recommend, BaseConfigMatchesPaperSummary) {
  // §IV.B/V.B summaries at the representative configuration: fbfft is
  // fastest, cuda-convnet2 is the memory pick.
  const auto rec = recommend(base_config());
  ASSERT_TRUE(rec.fastest.has_value());
  EXPECT_EQ(*rec.fastest, FrameworkId::kFbfft);
  ASSERT_TRUE(rec.most_memory_lean.has_value());
  EXPECT_EQ(*rec.most_memory_lean, FrameworkId::kCudaConvnet2);
  ASSERT_TRUE(rec.balanced.has_value());
  // The balanced pick must actually satisfy the footprint constraint.
  double lean_mb = 0.0;
  double balanced_mb = 0.0;
  for (const auto& r : rec.results) {
    if (r.framework == *rec.most_memory_lean) lean_mb = r.peak_mb;
    if (r.framework == *rec.balanced) balanced_mb = r.peak_mb;
  }
  EXPECT_LE(balanced_mb, 2.0 * lean_mb);
}

TEST(Recommend, SmallKernelsSwingTheFastestPick) {
  // §IV.B: "For small kernels, cuDNN would be a good choice."
  ConvConfig cfg = base_config();
  cfg.kernel = 3;
  const auto rec = recommend(cfg);
  ASSERT_TRUE(rec.fastest.has_value());
  EXPECT_NE(*rec.fastest, FrameworkId::kFbfft);
}

TEST(Recommend, StridedConfigsPickCudnn) {
  ConvConfig cfg = base_config();
  cfg.stride = 2;
  const auto rec = recommend(cfg);
  ASSERT_TRUE(rec.fastest.has_value());
  EXPECT_EQ(*rec.fastest, FrameworkId::kCudnn);
}

TEST(Recommend, OomImplementationsAreExcluded) {
  // At an extreme shape fbfft exceeds the card; it must not be picked
  // even though it is the fastest on paper.
  ConvConfig cfg = base_config();
  cfg.batch = 128;
  cfg.filters = 512;
  const auto rec = recommend(cfg);
  // fbfft's spectra exceed the card at this shape...
  for (const auto& r : rec.results) {
    if (r.framework == FrameworkId::kFbfft) {
      ASSERT_TRUE(r.out_of_memory);
    }
  }
  // ...so the pick falls to a fitting implementation.
  ASSERT_TRUE(rec.fastest.has_value());
  EXPECT_NE(*rec.fastest, FrameworkId::kFbfft);
}

TEST(Recommend, GroupedConfigsExcludeFftImplementations) {
  ConvConfig cfg = base_config();
  cfg.channels = 4;
  cfg.filters = 64;
  cfg.groups = 2;
  const auto rec = recommend(cfg);
  ASSERT_TRUE(rec.fastest.has_value());
  EXPECT_NE(*rec.fastest, FrameworkId::kFbfft);
  EXPECT_NE(*rec.fastest, FrameworkId::kTheanoFft);
}

TEST(Recommend, BalanceFactorOneMeansLeanest) {
  const auto rec = recommend(base_config(), 1.0);
  ASSERT_TRUE(rec.balanced.has_value());
  EXPECT_EQ(*rec.balanced, *rec.most_memory_lean);
}

TEST(Recommend, RejectsInvalidBalanceFactor) {
  EXPECT_THROW((void)recommend(base_config(), 0.5), Error);
}

TEST(Recommend, ResultsAlwaysComplete) {
  const auto rec = recommend(base_config());
  EXPECT_EQ(rec.results.size(), 7U);
}

}  // namespace
}  // namespace gpucnn::analysis
