#include "fft/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace gpucnn::fft {
namespace {

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> v(n);
  for (auto& x : v) {
    x = Complex(static_cast<float>(rng.uniform(-1.0, 1.0)),
                static_cast<float>(rng.uniform(-1.0, 1.0)));
  }
  return v;
}

double max_err(std::span<const Complex> a, std::span<const Complex> b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, static_cast<double>(std::abs(a[i] - b[i])));
  }
  return m;
}

TEST(FftUtil, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
}

TEST(FftUtil, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1U);
  EXPECT_EQ(next_pow2(2), 2U);
  EXPECT_EQ(next_pow2(3), 4U);
  EXPECT_EQ(next_pow2(129), 256U);
  EXPECT_EQ(next_pow2(138), 256U);  // the fbfft padding case in Fig. 5
}

TEST(FftPlan, RejectsNonPow2) { EXPECT_THROW(Plan(12), Error); }

TEST(FftPlan, LengthTwoByHand) {
  Plan plan(2);
  std::vector<Complex> data{{1.0F, 0.0F}, {2.0F, 0.0F}};
  plan.transform(data, Direction::kForward);
  EXPECT_NEAR(data[0].real(), 3.0F, 1e-6F);
  EXPECT_NEAR(data[1].real(), -1.0F, 1e-6F);
}

TEST(FftPlan, ImpulseGivesFlatSpectrum) {
  Plan plan(16);
  std::vector<Complex> data(16, Complex{});
  data[0] = Complex(1.0F, 0.0F);
  plan.transform(data, Direction::kForward);
  for (const auto& v : data) {
    EXPECT_NEAR(v.real(), 1.0F, 1e-6F);
    EXPECT_NEAR(v.imag(), 0.0F, 1e-6F);
  }
}

class FftMatchesDft : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftMatchesDft, DitForward) {
  const std::size_t n = GetParam();
  const auto input = random_signal(n, n);
  std::vector<Complex> want(n);
  dft_reference(input, want, Direction::kForward);
  auto got = input;
  Plan(n, Schedule::kDit).transform(got, Direction::kForward);
  EXPECT_LT(max_err(got, want), 1e-3 * std::sqrt(static_cast<double>(n)));
}

TEST_P(FftMatchesDft, DifForward) {
  const std::size_t n = GetParam();
  const auto input = random_signal(n, n + 1);
  std::vector<Complex> want(n);
  dft_reference(input, want, Direction::kForward);
  auto got = input;
  Plan(n, Schedule::kDif).transform(got, Direction::kForward);
  EXPECT_LT(max_err(got, want), 1e-3 * std::sqrt(static_cast<double>(n)));
}

TEST_P(FftMatchesDft, RoundTripDit) {
  const std::size_t n = GetParam();
  const auto input = random_signal(n, 3 * n);
  auto data = input;
  const Plan plan(n);
  plan.transform(data, Direction::kForward);
  plan.transform(data, Direction::kInverse);
  EXPECT_LT(max_err(data, input), 1e-5 * std::sqrt(static_cast<double>(n)));
}

TEST_P(FftMatchesDft, RoundTripDif) {
  const std::size_t n = GetParam();
  const auto input = random_signal(n, 7 * n);
  auto data = input;
  const Plan plan(n, Schedule::kDif);
  plan.transform(data, Direction::kForward);
  plan.transform(data, Direction::kInverse);
  EXPECT_LT(max_err(data, input), 1e-5 * std::sqrt(static_cast<double>(n)));
}

TEST_P(FftMatchesDft, SchedulesAgree) {
  const std::size_t n = GetParam();
  const auto input = random_signal(n, 11 * n);
  auto dit = input;
  auto dif = input;
  Plan(n, Schedule::kDit).transform(dit, Direction::kForward);
  Plan(n, Schedule::kDif).transform(dif, Direction::kForward);
  EXPECT_LT(max_err(dit, dif), 1e-4 * std::sqrt(static_cast<double>(n)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftMatchesDft,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128, 256,
                                           512));

TEST(FftPlan, LinearityProperty) {
  const std::size_t n = 64;
  const auto a = random_signal(n, 1);
  const auto b = random_signal(n, 2);
  const Plan plan(n);
  std::vector<Complex> sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    sum[i] = 2.0F * a[i] + Complex{0.0F, 1.0F} * b[i];
  }
  auto fa = a;
  auto fb = b;
  auto fsum = sum;
  plan.transform(fa, Direction::kForward);
  plan.transform(fb, Direction::kForward);
  plan.transform(fsum, Direction::kForward);
  for (std::size_t i = 0; i < n; ++i) {
    const Complex want = 2.0F * fa[i] + Complex{0.0F, 1.0F} * fb[i];
    EXPECT_NEAR(std::abs(fsum[i] - want), 0.0F, 1e-3F);
  }
}

TEST(FftPlan, ParsevalProperty) {
  const std::size_t n = 128;
  const auto x = random_signal(n, 99);
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  auto fx = x;
  Plan(n).transform(fx, Direction::kForward);
  double freq_energy = 0.0;
  for (const auto& v : fx) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-3 * time_energy);
}

TEST(FftPlan, StridedColumnTransform) {
  // A 4x4 matrix where each column is an impulse in a different row; the
  // column transform along stride=4 must equal per-column dense FFTs.
  const std::size_t n = 4;
  std::vector<Complex> mat(n * n, Complex{});
  for (std::size_t c = 0; c < n; ++c) mat[c * n + c] = Complex(1.0F, 0.0F);
  const Plan plan(n);
  for (std::size_t c = 0; c < n; ++c) {
    plan.transform_strided(std::span(mat).subspan(c), n,
                           Direction::kForward);
  }
  for (std::size_t c = 0; c < n; ++c) {
    std::vector<Complex> col(n, Complex{});
    col[c] = Complex(1.0F, 0.0F);
    plan.transform(col, Direction::kForward);
    for (std::size_t r = 0; r < n; ++r) {
      EXPECT_NEAR(std::abs(mat[r * n + c] - col[r]), 0.0F, 1e-6F);
    }
  }
}

TEST(Fft2d, RoundTrip) {
  const std::size_t rows = 8;
  const std::size_t cols = 16;
  const auto input = random_signal(rows * cols, 5);
  auto data = input;
  const Plan row_plan(cols);
  const Plan col_plan(rows);
  transform_2d(data, row_plan, col_plan, Direction::kForward);
  transform_2d(data, row_plan, col_plan, Direction::kInverse);
  EXPECT_LT(max_err(data, input), 1e-4);
}

TEST(Fft2d, SeparableAgainstReferenceDft) {
  const std::size_t n = 8;
  const auto input = random_signal(n * n, 21);
  auto fast = input;
  const Plan plan(n);
  transform_2d(fast, plan, plan, Direction::kForward);
  // Reference: row DFTs then column DFTs.
  std::vector<Complex> ref = input;
  std::vector<Complex> tmp(n);
  for (std::size_t r = 0; r < n; ++r) {
    dft_reference(std::span(ref).subspan(r * n, n), tmp,
                  Direction::kForward);
    std::copy(tmp.begin(), tmp.end(), ref.begin() + r * n);
  }
  for (std::size_t c = 0; c < n; ++c) {
    std::vector<Complex> col(n);
    for (std::size_t r = 0; r < n; ++r) col[r] = ref[r * n + c];
    dft_reference(col, tmp, Direction::kForward);
    for (std::size_t r = 0; r < n; ++r) ref[r * n + c] = tmp[r];
  }
  EXPECT_LT(max_err(fast, ref), 1e-3);
}

TEST(Fft2d, CircularConvolutionTheorem) {
  // conv(a, b) computed via FFT equals direct circular convolution.
  const std::size_t n = 8;
  Rng rng(13);
  std::vector<float> a(n), b(n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  std::vector<Complex> fa(n), fb(n);
  for (std::size_t i = 0; i < n; ++i) {
    fa[i] = Complex(a[i], 0.0F);
    fb[i] = Complex(b[i], 0.0F);
  }
  const Plan plan(n);
  plan.transform(fa, Direction::kForward);
  plan.transform(fb, Direction::kForward);
  std::vector<Complex> prod(n);
  for (std::size_t i = 0; i < n; ++i) prod[i] = fa[i] * fb[i];
  plan.transform(prod, Direction::kInverse);

  for (std::size_t y = 0; y < n; ++y) {
    double want = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      want += static_cast<double>(a[k]) * b[(y + n - k) % n];
    }
    EXPECT_NEAR(prod[y].real(), want, 1e-4);
  }
}

TEST(DftReference, InverseNormalises) {
  const auto x = random_signal(16, 8);
  std::vector<Complex> f(16), back(16);
  dft_reference(x, f, Direction::kForward);
  dft_reference(f, back, Direction::kInverse);
  EXPECT_LT(max_err(back, x), 1e-4);
}

}  // namespace
}  // namespace gpucnn::fft
